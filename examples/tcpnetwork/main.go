// TCP network: the same dissemination system over real sockets — a
// three-broker chain on localhost, one publisher, one subscriber. This is
// the deployment mode the paper ran on its cluster and PlanetLab.
package main

import (
	"fmt"
	"log"
	"time"

	xmlrouter "repro"
)

const recipeDTD = `
<!ELEMENT cookbook (recipe+)>
<!ELEMENT recipe (title, ingredient+, step+)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT ingredient (#PCDATA)>
<!ELEMENT step (#PCDATA)>
`

func main() {
	cfg := xmlrouter.BrokerConfig{UseAdvertisements: true, UseCovering: true}

	// Boot three brokers on ephemeral ports, then link them b1-b2-b3.
	mk := func(id string, neighbors map[string]string) (*xmlrouter.BrokerServer, string) {
		c := cfg
		c.ID = id
		srv := xmlrouter.NewBrokerServer(c, neighbors)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		return srv, addr
	}
	n1, n2, n3 := map[string]string{}, map[string]string{}, map[string]string{}
	b1, a1 := mk("b1", n1)
	b2, a2 := mk("b2", n2)
	b3, a3 := mk("b3", n3)
	defer b1.Close()
	defer b2.Close()
	defer b3.Close()
	n1["b2"] = a2
	n2["b1"], n2["b3"] = a1, a3
	n3["b2"] = a2
	b1.Broker().AddNeighbor("b2")
	b2.Broker().AddNeighbor("b1")
	b2.Broker().AddNeighbor("b3")
	b3.Broker().AddNeighbor("b2")
	fmt.Printf("brokers: b1=%s b2=%s b3=%s\n", a1, a2, a3)

	publisher, err := xmlrouter.DialBroker(a1, "publisher")
	if err != nil {
		log.Fatal(err)
	}
	defer publisher.Close()
	subscriber, err := xmlrouter.DialBroker(a3, "subscriber")
	if err != nil {
		log.Fatal(err)
	}
	defer subscriber.Close()

	dtd, err := xmlrouter.ParseDTD(recipeDTD)
	if err != nil {
		log.Fatal(err)
	}
	advs, err := xmlrouter.GenerateAdvertisements(dtd)
	if err != nil {
		log.Fatal(err)
	}
	for i, a := range advs {
		if err := publisher.Send(&xmlrouter.Message{
			Type: xmlrouter.MsgAdvertise, AdvID: fmt.Sprintf("a%d", i), Adv: a,
		}); err != nil {
			log.Fatal(err)
		}
	}
	waitFor(func() bool { return b3.SRTSize() > 0 })
	fmt.Printf("advertised %d patterns; SRT reached the far broker\n", len(advs))

	if err := subscriber.Send(&xmlrouter.Message{
		Type: xmlrouter.MsgSubscribe, XPE: xmlrouter.MustParseXPE("/cookbook/recipe//ingredient"),
	}); err != nil {
		log.Fatal(err)
	}
	waitFor(func() bool { return b1.PRTSize() > 0 })
	fmt.Println("subscription propagated back to the publisher's broker")

	doc, err := xmlrouter.ParseDocument([]byte(
		`<cookbook><recipe><title>Toast</title><ingredient>bread</ingredient><step>toast it</step></recipe></cookbook>`))
	if err != nil {
		log.Fatal(err)
	}
	if err := publisher.Send(&xmlrouter.Message{Type: xmlrouter.MsgPublish, Doc: doc}); err != nil {
		log.Fatal(err)
	}
	m, err := subscriber.WaitDelivery(5 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	delay := time.Since(time.Unix(0, m.Stamp)).Round(time.Microsecond)
	fmt.Printf("subscriber received <%s> after %v over 3 TCP hops\n", m.Doc.Root.Name, delay)
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal("timed out waiting for propagation")
}
