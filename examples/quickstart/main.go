// Quickstart: a three-broker chain in the in-process simulator. A producer
// advertises a tiny stock-feed DTD, two consumers register XPath
// subscriptions, and a document is routed to exactly the interested one.
package main

import (
	"fmt"
	"log"

	xmlrouter "repro"
)

const stockDTD = `
<!ELEMENT feed (stock+)>
<!ELEMENT stock (symbol, quote, volume?)>
<!ELEMENT symbol (#PCDATA)>
<!ELEMENT quote (price, currency?)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT currency (#PCDATA)>
<!ELEMENT volume (#PCDATA)>
`

const stockDoc = `<feed><stock><symbol>ACME</symbol><quote><price>42.10</price></quote></stock></feed>`

func main() {
	// 1. An overlay of three brokers in a chain, with advertisement-based
	//    routing and covering enabled.
	net := xmlrouter.NewNetwork(1)
	ids := xmlrouter.BuildChain(net, 3, xmlrouter.BrokerConfig{
		UseAdvertisements: true,
		UseCovering:       true,
	})

	producer := net.AddClient("producer", ids[0])
	priceWatcher := net.AddClient("price-watcher", ids[2])
	newsWatcher := net.AddClient("news-watcher", ids[2])

	// 2. The producer floods advertisements derived from its DTD.
	dtd, err := xmlrouter.ParseDTD(stockDTD)
	if err != nil {
		log.Fatal(err)
	}
	advs, err := xmlrouter.GenerateAdvertisements(dtd)
	if err != nil {
		log.Fatal(err)
	}
	for i, a := range advs {
		producer.Send(&xmlrouter.Message{Type: xmlrouter.MsgAdvertise, AdvID: fmt.Sprintf("a%d", i), Adv: a})
	}
	net.Run()
	fmt.Printf("producer advertised %d path patterns\n", len(advs))

	// 3. Consumers subscribe with XPath. The price watcher's query matches
	//    the feed; the news watcher's does not, so advertisement-based
	//    routing never forwards it into the network.
	priceWatcher.Send(&xmlrouter.Message{Type: xmlrouter.MsgSubscribe, XPE: xmlrouter.MustParseXPE("/feed/stock//price")})
	newsWatcher.Send(&xmlrouter.Message{Type: xmlrouter.MsgSubscribe, XPE: xmlrouter.MustParseXPE("/news/headline")})
	net.Run()

	// 4. Publish a document; it travels the chain to the interested client.
	doc, err := xmlrouter.ParseDocument([]byte(stockDoc))
	if err != nil {
		log.Fatal(err)
	}
	producer.Send(&xmlrouter.Message{Type: xmlrouter.MsgPublish, Doc: doc})
	net.Run()

	fmt.Printf("price-watcher deliveries: %d (delay %v)\n",
		len(priceWatcher.Deliveries), priceWatcher.Deliveries[0].Delay)
	fmt.Printf("news-watcher deliveries:  %d\n", len(newsWatcher.Deliveries))
	fmt.Printf("messages received by brokers: %d\n", net.TotalBrokerMessages())
}
