// Newswire: the paper's motivating scenario at small scale. A news agency
// publishes NITF articles into a 7-broker dissemination tree; bureaus
// subscribe with overlapping XPath interests. The example contrasts routing
// state and traffic with and without the covering optimisation.
package main

import (
	"fmt"

	xmlrouter "repro"
	"repro/internal/broker"
)

func main() {
	for _, covering := range []bool{false, true} {
		subMsgs, pubMsgs, tableSizes := run(covering)
		mode := "without covering"
		if covering {
			mode = "with covering"
		}
		fmt.Printf("%-17s subscription messages: %3d   publish messages: %4d   PRT sizes per broker: %v\n",
			mode, subMsgs, pubMsgs, tableSizes)
	}
}

func run(covering bool) (int64, int64, []int) {
	net := xmlrouter.NewNetwork(7)
	leaves := xmlrouter.BuildCompleteBinaryTree(net, 3, xmlrouter.BrokerConfig{
		UseAdvertisements: true,
		UseCovering:       covering,
	})

	agency := net.AddClient("agency", "b1")
	advs, err := xmlrouter.GenerateAdvertisements(xmlrouter.NITF())
	if err != nil {
		panic(err)
	}
	for i, a := range advs {
		agency.Send(&xmlrouter.Message{Type: xmlrouter.MsgAdvertise, AdvID: fmt.Sprintf("a%d", i), Adv: a})
	}
	net.Run()

	// Four bureaus with overlapping editorial interests: the sports desk's
	// queries are mostly refinements of the politics desk's broad ones, so
	// covering has something to remove.
	interests := [][]string{
		{"/nitf/body//p", "/nitf/body/body.head/hedline/hl1", "//byline/person"},
		{"/nitf/body//p/em", "/nitf/body/body.head/hedline/*", "//person"},
		{"//block/p", "/nitf/head/docdata/key-list/keyword", "//abstract/p"},
		{"//p", "/nitf/head/title", "/nitf/body/body.content/block/media/media-caption"},
	}
	for i, leaf := range leaves {
		bureau := net.AddClient(fmt.Sprintf("bureau%d", i), leaf)
		for _, q := range interests[i%len(interests)] {
			bureau.Send(&xmlrouter.Message{Type: xmlrouter.MsgSubscribe, XPE: xmlrouter.MustParseXPE(q)})
		}
	}
	net.Run()

	// A day's worth of wire stories.
	gen := xmlrouter.NewDocGenerator(xmlrouter.NITF(), 99)
	for i := 0; i < 20; i++ {
		agency.Send(&xmlrouter.Message{Type: xmlrouter.MsgPublish, Doc: gen.Generate()})
	}
	net.Run()

	var tables []int
	for i := 1; i <= 7; i++ {
		tables = append(tables, net.Broker(fmt.Sprintf("b%d", i)).PRTSize())
	}
	byType := net.BrokerReceived()
	return byType[broker.MsgSubscribe], byType[broker.MsgPublish], tables
}
