// Protein: merging and false positives on the PSD corpus. A bioinformatics
// portal subscribes to many per-protein queries; the edge broker merges them
// (perfectly, then imperfectly), shrinking upstream routing state. The
// example shows that imperfect mergers create in-network false positives
// that the edge filters — subscribers never see them.
package main

import (
	"fmt"

	xmlrouter "repro"
	"repro/internal/broker"
	"repro/internal/merge"
)

func main() {
	advs, err := xmlrouter.GenerateAdvertisements(xmlrouter.PSD())
	if err != nil {
		panic(err)
	}
	est := merge.NewDegreeEstimator(advs, 10, 4000)

	for _, mode := range []struct {
		name    string
		merging broker.MergingMode
		degree  float64
	}{
		{"no merging", xmlrouter.MergeOff, 0},
		{"perfect merging", xmlrouter.MergePerfect, 0},
		{"imperfect (D=0.7)", xmlrouter.MergeImperfect, 0.7},
	} {
		upstream, delivered, fps := run(mode.merging, mode.degree, est, advs)
		fmt.Printf("%-18s upstream PRT: %3d   delivered: %3d   in-network false positives: %d\n",
			mode.name, upstream, delivered, fps)
	}
}

func run(merging broker.MergingMode, degree float64, est *merge.DegreeEstimator, advs []*xmlrouter.Advertisement) (int, int64, int64) {
	net := xmlrouter.NewNetwork(11)
	ids := xmlrouter.BuildChain(net, 2, xmlrouter.BrokerConfig{
		UseAdvertisements: true,
		UseCovering:       true,
		Merging:           merging,
		ImperfectDegree:   degree,
		Estimator:         est,
		MergeEvery:        8,
	})
	database := net.AddClient("database", ids[0])
	portal := net.AddClient("portal", ids[1])

	for i, a := range advs {
		database.Send(&xmlrouter.Message{Type: xmlrouter.MsgAdvertise, AdvID: fmt.Sprintf("a%d", i), Adv: a})
	}
	net.Run()

	// The portal watches many sibling fields — prime merging material.
	queries := []string{
		"/ProteinDatabase/ProteinEntry/header/uid",
		"/ProteinDatabase/ProteinEntry/header/accession",
		"/ProteinDatabase/ProteinEntry/header/created_date",
		"/ProteinDatabase/ProteinEntry/protein/name",
		"/ProteinDatabase/ProteinEntry/protein/alt-name",
		"/ProteinDatabase/ProteinEntry/protein/contains",
		"/ProteinDatabase/ProteinEntry/organism/source",
		"/ProteinDatabase/ProteinEntry/organism/common",
		"/ProteinDatabase/ProteinEntry/organism/formal",
		"/ProteinDatabase/ProteinEntry/reference/refinfo/authors/author",
		"/ProteinDatabase/ProteinEntry/reference/refinfo/citation",
		"/ProteinDatabase/ProteinEntry/reference/refinfo/year",
		"//feature/feature-type",
		"//feature/feature-spec",
		"//summary/length",
		"//summary/type",
		"//classification/superfamily",
	}
	for _, q := range queries {
		portal.Send(&xmlrouter.Message{Type: xmlrouter.MsgSubscribe, XPE: xmlrouter.MustParseXPE(q)})
	}
	net.Run()

	gen := xmlrouter.NewDocGenerator(xmlrouter.PSD(), 5)
	gen.AvgRepeat = 1.5
	for i := 0; i < 25; i++ {
		doc := gen.Generate()
		for _, p := range xmlrouter.ExtractPublications(doc, uint64(i)) {
			database.Send(&xmlrouter.Message{Type: xmlrouter.MsgPublish, Pub: p})
		}
	}
	net.Run()

	edge := net.Broker(ids[1]).Stats()
	return net.Broker(ids[0]).PRTSize(), edge.Deliveries, edge.FalsePositives
}
