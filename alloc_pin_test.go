package xmlrouter

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/broker"
	"repro/internal/metrics"
	"repro/internal/wirefmt"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// publishAllocBaseline is the seed's allocations per untraced publication
// for the workload below, measured on the pre-instrumentation tree (path
// re-interning, the forwarded message copy, ordered-destination scratch,
// sort machinery). The per-stage span instrumentation must not add to it:
// the span lives on the stack, stage observations are lock-free histogram
// increments, and the flight recorder costs one comparison when healthy. A
// regression here means a heap allocation leaked into the publish path —
// fix the code, do not bump the constant without a matching DESIGN.md note.
const publishAllocBaseline = 9

// TestPublishAllocsPinned pins the untraced publish path's allocations per
// operation, with and without a metrics registry attached (the registry
// arms the stage histograms, so both halves of the measure gate are
// covered).
func TestPublishAllocsPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is meaningless under -short's reduced runs")
	}
	pub := xmldoc.Publication{Path: []string{"stock", "quote", "price"}}
	run := func(t *testing.T, reg *metrics.Registry) {
		br := broker.New(broker.Config{ID: "b1", Metrics: reg}, func(to string, m *broker.Message) {})
		br.AddClient("sub")
		br.HandleMessage(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/stock//price")}, "sub")

		avg := testing.AllocsPerRun(200, func() {
			br.HandleMessage(&broker.Message{Type: broker.MsgPublish, Pub: pub}, "producer")
		})
		if avg > publishAllocBaseline {
			t.Errorf("untraced publish = %.1f allocs/op, baseline %d — instrumentation leaked onto the hot path",
				avg, publishAllocBaseline)
		}
	}
	t.Run("no-metrics", func(t *testing.T) { run(t, nil) })
	t.Run("with-metrics", func(t *testing.T) { run(t, metrics.NewRegistry()) })

	// The binary wire codec is pinned to ZERO allocations per publication at
	// steady state, both directions: the per-link symbol dictionary is warm
	// after the first message, the encoder reuses its batch buffers, and the
	// decoder reuses its frame buffer and the caller's message capacities.
	// Any regression here puts a per-message allocation on every broker hop.
	t.Run("wire-encode", func(t *testing.T) {
		m := &broker.Message{Type: broker.MsgPublish, Pub: pub, Stamp: 1}
		enc := wirefmt.NewEncoder(io.Discard, wirefmt.DefaultLimits)
		if err := enc.Encode(m); err != nil { // warm the dictionary
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(200, func() {
			if err := enc.Encode(m); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Errorf("steady-state wire encode = %.1f allocs/op, want 0", avg)
		}
	})
	t.Run("wire-decode", func(t *testing.T) {
		m := &broker.Message{Type: broker.MsgPublish, Pub: pub, Stamp: 1}
		var warm, frame bytes.Buffer
		enc := wirefmt.NewEncoder(io.MultiWriter(&warm, &frame), wirefmt.DefaultLimits)
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
		frame.Reset() // keep only the dictionary-warm frame bytes
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
		dec := wirefmt.NewDecoder(&warm, wirefmt.DefaultLimits)
		var got broker.Message
		if err := dec.Decode(&got); err != nil { // consume the dict frame
			t.Fatal(err)
		}
		if err := dec.Decode(&got); err != nil {
			t.Fatal(err)
		}
		steady := frame.Bytes()
		r := bytes.NewReader(nil)
		avg := testing.AllocsPerRun(200, func() {
			r.Reset(steady)
			dec.Reset(r)
			if err := dec.Decode(&got); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Errorf("steady-state wire decode = %.1f allocs/op, want 0", avg)
		}
	})
}
