// Ablation benchmarks for the design choices DESIGN.md calls out: each
// compares the production algorithm with the baseline it replaced (or the
// paper's unoptimised variant), on the same workload.
package xmlrouter

import (
	"math/rand"
	"testing"

	"repro/internal/advert"
	"repro/internal/cover"
	"repro/internal/dtddata"
	"repro/internal/experiment"
	"repro/internal/gen"
	"repro/internal/subtree"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// relativeWorkload builds advertisements and relative subscriptions for the
// matcher ablations.
func relativeWorkload(tb testing.TB) ([][]string, []*xpath.XPE) {
	tb.Helper()
	advs, err := advert.Generate(dtddata.PSD())
	if err != nil {
		tb.Fatal(err)
	}
	flat := make([][]string, 0, len(advs))
	for _, a := range advs {
		flat = append(flat, a.FlatNames())
	}
	g := gen.NewXPathGenerator(dtddata.PSD(), 0.3, 0, 1)
	g.Relative = 1 // relative expressions only
	g.MinLen = 2
	subs := make([]*xpath.XPE, 400)
	for i := range subs {
		subs[i] = g.Generate()
	}
	return flat, subs
}

// BenchmarkAblationRelMatchAnchored vs ...Naive: the anchored scan replacing
// the paper's (unsound-under-wildcards) KMP proposal, against the try-every-
// offset baseline.
func BenchmarkAblationRelMatchAnchored(b *testing.B) {
	flat, subs := relativeWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range subs {
			for _, a := range flat {
				advert.RelExprAndAdv(a, s)
			}
		}
	}
}

func BenchmarkAblationRelMatchNaive(b *testing.B) {
	flat, subs := relativeWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range subs {
			for _, a := range flat {
				advert.RelExprAndAdvNaive(a, s)
			}
		}
	}
}

// BenchmarkAblationRecursiveNFA vs ...Enumeration: the automaton matcher for
// recursive advertisements against the paper's expansion-enumeration
// strategy (Figure 3 generalised).
func recursiveWorkload(tb testing.TB) ([]*advert.Advertisement, []*xpath.XPE) {
	tb.Helper()
	all, err := advert.Generate(dtddata.NITF())
	if err != nil {
		tb.Fatal(err)
	}
	var rec []*advert.Advertisement
	for _, a := range all {
		if a.Classify() == advert.SimpleRecursive {
			rec = append(rec, a)
			if len(rec) == 200 {
				break
			}
		}
	}
	g := gen.NewXPathGenerator(dtddata.NITF(), 0.2, 0.1, 2)
	subs := make([]*xpath.XPE, 200)
	for i := range subs {
		subs[i] = g.Generate()
	}
	return rec, subs
}

func BenchmarkAblationRecursiveNFA(b *testing.B) {
	rec, subs := recursiveWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range subs {
			for _, a := range rec {
				a.Overlaps(s)
			}
		}
	}
}

func BenchmarkAblationRecursiveEnumeration(b *testing.B) {
	rec, subs := recursiveWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range subs {
			for _, a := range rec {
				advert.OverlapsSimRec(a, s)
			}
		}
	}
}

// BenchmarkAblationCoveringGreedy vs ...Exact: the paper's greedy DesCov
// against the exact automaton-containment procedure, on descendant-bearing
// pairs.
func coveringPairs(tb testing.TB) [][2]*xpath.XPE {
	tb.Helper()
	g := gen.NewXPathGenerator(dtddata.NITF(), 0.2, 0.3, 3)
	g.MinLen = 3
	pairs := make([][2]*xpath.XPE, 500)
	for i := range pairs {
		pairs[i] = [2]*xpath.XPE{g.Generate(), g.Generate()}
	}
	return pairs
}

func BenchmarkAblationCoveringGreedy(b *testing.B) {
	pairs := coveringPairs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pairs {
			cover.DesCov(p[0], p[1])
		}
	}
}

func BenchmarkAblationCoveringExact(b *testing.B) {
	pairs := coveringPairs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pairs {
			cover.CoversExact(p[0], p[1])
		}
	}
}

// BenchmarkAblationMatchTree vs ...Flat: covering-pruned publication
// matching on a compacted subscription tree against the flat full scan —
// the data-structure half of Table 1's effect.
func matchWorkload(tb testing.TB) (*subtree.Tree, *subtree.Tree, []xmldoc.Publication) {
	tb.Helper()
	set, err := experiment.BuildCoveringSet(dtddata.NITF(), 3000, 0.9, 4)
	if err != nil {
		tb.Fatal(err)
	}
	flat := subtree.New()
	covered := subtree.New()
	for _, x := range set.XPEs {
		flat.FlatInsert(x)
		if !covered.IsCovered(x) {
			res := covered.Insert(x)
			for _, c := range res.NewlyCovered {
				covered.Remove(c)
			}
		}
	}
	dg := gen.NewDocGenerator(dtddata.NITF(), 5)
	var pubs []xmldoc.Publication
	for i := 0; i < 20; i++ {
		pubs = append(pubs, xmldoc.Extract(dg.Generate(), uint64(i))...)
	}
	return flat, covered, pubs
}

func BenchmarkAblationMatchFlat(b *testing.B) {
	flat, _, pubs := matchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range pubs {
			flat.MatchPath(pubs[j].Path, func(*subtree.Node) {})
		}
	}
}

func BenchmarkAblationMatchTree(b *testing.B) {
	_, covered, pubs := matchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range pubs {
			covered.MatchPath(pubs[j].Path, func(*subtree.Node) {})
		}
	}
}

// BenchmarkAblationCoversFastPath vs ...ExactOnly: the production covering
// dispatch (prefilter + pairwise/greedy + exact fallback) against always
// running the exact automaton.
func BenchmarkAblationCoversFastPath(b *testing.B) {
	pairs := mixedPairs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pairs {
			cover.Covers(p[0], p[1])
		}
	}
}

func BenchmarkAblationCoversExactOnly(b *testing.B) {
	pairs := mixedPairs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pairs {
			cover.CoversExact(p[0], p[1])
		}
	}
}

func mixedPairs() [][2]*xpath.XPE {
	r := rand.New(rand.NewSource(6))
	g := gen.NewXPathGenerator(dtddata.NITF(), 0.25, 0.15, 6)
	g.Rand = r
	pairs := make([][2]*xpath.XPE, 500)
	for i := range pairs {
		pairs[i] = [2]*xpath.XPE{g.Generate(), g.Generate()}
	}
	return pairs
}
