package xmlrouter

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/broker"
	"repro/internal/xpath"
)

// BenchmarkStreamMatch pins the streaming matcher's headline property
// (internal/stream, DESIGN.md §5e): routing cost is proportional to
// document depth × automaton activity, not document size. The same raw XML
// body is published through two otherwise identical brokers — "stream" runs
// the automaton over the bytes in one pass, "decompose" (the
// Config.DisableStreaming ablation) parses the body into a tree and matches
// every decomposed root-to-leaf path — while the document grows 1×→100× at
// fixed depth. Streaming allocs/op must stay flat across the sweep (the
// matcher, cursor, and per-frame stacks are pooled; only the broker's
// constant per-publication bookkeeping allocates); the decompose column
// grows with size because parsing materialises the tree. EXPERIMENTS.md and
// BENCH_stream.json record measured numbers.
func BenchmarkStreamMatch(b *testing.B) {
	// One fixed-depth section; document size scales by repetition only, so
	// depth, names, and match structure are identical across sizes.
	const section = `<section id="s1" class="x"><head><title>t</title></head>` +
		`<body><p>text &amp; more</p><quote><attrib>q</attrib></quote></body></section>`
	mkRaw := func(n int) []byte {
		var sb strings.Builder
		sb.WriteString("<doc>")
		for i := 0; i < n; i++ {
			sb.WriteString(section)
		}
		sb.WriteString("</doc>")
		return []byte(sb.String())
	}
	subs := []string{
		"/doc/section/head/title",
		"//quote/attrib",
		"/doc//p",
		"/doc/section/body",
		"//head/*",
		"/doc/other/miss",
	}
	newBroker := func(disableStreaming bool) *broker.Broker {
		br := broker.New(broker.Config{ID: "b1", UseCovering: true, DisableStreaming: disableStreaming},
			func(string, *broker.Message) {})
		br.AddNeighbor("n1")
		for _, s := range subs {
			br.HandleMessage(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse(s)}, "n1")
		}
		return br
	}

	for _, scale := range []int{1, 10, 100} {
		raw := mkRaw(4 * scale)
		for _, mode := range []struct {
			name    string
			disable bool
		}{{"stream", false}, {"decompose", true}} {
			b.Run(fmt.Sprintf("doc=%dx/%s", scale, mode.name), func(b *testing.B) {
				br := newBroker(mode.disable)
				msg := &broker.Message{Type: broker.MsgPublish, Raw: raw}
				b.SetBytes(int64(len(raw)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					br.HandleMessage(msg, "producer")
				}
			})
		}
	}
}
