package xmlrouter

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/pmatch"
	"repro/internal/symtab"
	"repro/internal/xpath"
)

// This file measures the control-plane cost the sharded matching engine
// (DESIGN.md §5g) exists to bound: with a single monolithic automaton every
// subscribe/unsubscribe recompiles the whole table, so rebuild time grows
// linearly with the subscriber count; with N shards a change recompiles only
// the ~1/N of the table its root symbol hashes to. BENCH_churn.json records
// measured numbers (TestEmitChurnBench writes it).

// churnXPEs generates n distinct subscriptions over a BOUNDED 200-name
// element alphabet — like a real DTD-driven workload, where a million
// subscribers share a few hundred element names. Uniqueness is structural,
// not symbolic: the trailing three steps spell base+i in base 200, so no
// broker-level subscribe is ever a no-op duplicate and disjoint base ranges
// yield disjoint sets. (Interning a fresh name per subscription would be
// unrealistic AND quadratic: symtab's copy-on-write snapshot is rebuilt per
// new name, by design, because element alphabets are small.) A random one-
// to-three-step prefix spreads roots across shards; one in ten expressions
// is relative and lands in the wild shard.
func churnXPEs(base, n int, seed int64) []*xpath.XPE {
	r := rand.New(rand.NewSource(seed))
	names := make([]string, 200)
	for i := range names {
		names[i] = fmt.Sprintf("e%d", i)
	}
	out := make([]*xpath.XPE, n)
	for i := range out {
		prefix := 1 + r.Intn(3)
		steps := make([]xpath.Step, 0, prefix+3)
		for j := 0; j < prefix; j++ {
			axis := xpath.Child
			if j > 0 && r.Intn(4) == 0 {
				axis = xpath.Descendant
			}
			name := names[r.Intn(len(names))]
			if j > 0 && r.Intn(10) == 0 {
				name = xpath.Wildcard
			}
			steps = append(steps, xpath.Step{Axis: axis, Name: name})
		}
		for v, k := base+i, 0; k < 3; k++ {
			steps = append(steps, xpath.Step{Axis: xpath.Child, Name: names[v%len(names)]})
			v /= len(names)
		}
		out[i] = xpath.New(r.Intn(10) == 0, steps...)
	}
	return out
}

// shardBuckets partitions expressions by ShardIndex for an n-shard table.
func shardBuckets(xs []*xpath.XPE, n int) [][]*xpath.XPE {
	buckets := make([][]*xpath.XPE, pmatch.Slots(n))
	for _, x := range xs {
		slot := pmatch.ShardIndex(x, n)
		buckets[slot] = append(buckets[slot], x)
	}
	return buckets
}

// buildSlot compiles one bucket into an automaton, returning the build time.
func buildSlot(bucket []*xpath.XPE) (time.Duration, *pmatch.Automaton) {
	start := time.Now()
	b := pmatch.NewBuilder()
	for i, x := range bucket {
		b.Add(x, i)
	}
	a := b.Build()
	return time.Since(start), a
}

// BenchmarkControlChurn measures steady-state control-plane churn through
// the real broker: one subscribe of a fresh expression plus its unsubscribe
// per op, against a pre-populated table. shards=1 recompiles the full
// automaton on every change; shards=8 only the affected slot.
// churnBrokerTableSize is the pre-populated table behind
// BenchmarkControlChurn. Populating a shards=1 broker is O(N^2) — every
// subscribe recompiles the whole table, which is the very cost being
// measured — so the size stays modest and the built brokers are cached
// across benchmark rounds (each measured op is a subscribe+unsubscribe
// pair, so the table always returns to its initial contents).
const churnBrokerTableSize = 2000

var churnBrokers = map[int]*broker.Broker{}

func churnBroker(shards int) *broker.Broker {
	if br, ok := churnBrokers[shards]; ok {
		return br
	}
	br := broker.New(broker.Config{ID: "b1", UseCovering: true, Shards: shards},
		func(to string, m *broker.Message) {})
	br.AddNeighbor("n1")
	for _, x := range churnXPEs(0, churnBrokerTableSize, 1) {
		br.HandleMessage(&broker.Message{Type: broker.MsgSubscribe, XPE: x}, "n1")
	}
	churnBrokers[shards] = br
	return br
}

func BenchmarkControlChurn(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("subs=%d/shards=%d", churnBrokerTableSize, shards), func(b *testing.B) {
			br := churnBroker(shards)
			fresh := churnXPEs(churnBrokerTableSize, b.N, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				br.HandleMessage(&broker.Message{Type: broker.MsgSubscribe, XPE: fresh[i]}, "n1")
				br.HandleMessage(&broker.Message{Type: broker.MsgUnsubscribe, XPE: fresh[i]}, "n1")
			}
		})
	}
}

// BenchmarkShardRebuild isolates the recompile cost one control change pays
// at large table sizes: a full monolithic build (shards=1) versus one
// shard's bucket (shards=8). This is the pmatch-layer core of the broker
// measurement above, feasible at table sizes where populating a live
// shards=1 broker would cost O(N^2).
func BenchmarkShardRebuild(b *testing.B) {
	for _, size := range []int{100_000, 1_000_000} {
		xs := churnXPEs(0, size, 3)
		b.Run(fmt.Sprintf("subs=%d/full", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, a := buildSlot(xs)
				if a.NumEntries() != size {
					b.Fatal("bad build")
				}
			}
		})
		b.Run(fmt.Sprintf("subs=%d/one-of-8-shards", size), func(b *testing.B) {
			buckets := shardBuckets(xs, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buildSlot(buckets[i%8])
			}
		})
	}
}

// BenchmarkShardedMatch extends the automaton-size sweep in
// BENCH_pmatch.json to 100k–1M entries: match cost per publication path for
// the monolithic automaton versus the 8-shard partition (two smaller
// automaton runs: the root's shard plus the wild shard).
func BenchmarkShardedMatch(b *testing.B) {
	for _, size := range []int{100_000, 1_000_000} {
		xs := churnXPEs(0, size, 4)
		paths := make([][]symtab.Sym, 64)
		r := rand.New(rand.NewSource(5))
		for i := range paths {
			n := 2 + r.Intn(5)
			path := make([]string, n)
			for j := range path {
				path[j] = fmt.Sprintf("e%d", r.Intn(200))
			}
			paths[i] = symtab.InternPath(path)
		}
		for _, shards := range []int{1, 8} {
			b.Run(fmt.Sprintf("subs=%d/shards=%d", size, shards), func(b *testing.B) {
				sb := pmatch.NewShardedBuilder(shards)
				for i, x := range xs {
					sb.Add(x, i)
				}
				auto := sb.Build()
				hits := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					auto.Match(paths[i%len(paths)], nil, func(any) { hits++ })
				}
			})
		}
	}
}

// TestEmitChurnBench is the CI bench-smoke for the sharded matching engine:
// it measures the per-control-change rebuild cost at 100k subscriptions for
// the monolithic (shards=1) and 8-shard tables and writes the result as
// JSON to the file named by BENCH_CHURN_OUT (skipped when unset). The
// sharded expected rebuild time — per-slot build time weighted by the
// probability a change lands in that slot — must beat the full rebuild by
// well more than the 4x the tentpole targets; the test enforces a soft 1.5x
// floor so CI noise cannot flake it while catastrophic regressions still
// fail.
func TestEmitChurnBench(t *testing.T) {
	out := os.Getenv("BENCH_CHURN_OUT")
	if out == "" {
		t.Skip("BENCH_CHURN_OUT not set")
	}

	const size = 100_000
	const shards = 8
	xs := churnXPEs(0, size, 3)

	// Full rebuild: what every control change costs at shards=1.
	var fullMS []float64
	fullMean := 0.0
	for i := 0; i < 3; i++ {
		d, a := buildSlot(xs)
		if a.NumEntries() != size {
			t.Fatalf("full build entries = %d", a.NumEntries())
		}
		fullMS = append(fullMS, d.Seconds()*1e3)
		fullMean += d.Seconds() * 1e3
	}
	fullMean /= 3

	// Sharded rebuild: a change recompiles only its slot, so the expected
	// cost is the per-slot build time weighted by the slot's share of the
	// table (the probability a uniformly-drawn change hits it).
	type slotResult struct {
		Slot    string  `json:"slot"`
		Entries int     `json:"entries"`
		BuildMS float64 `json:"build_ms"`
	}
	buckets := shardBuckets(xs, shards)
	var slots []slotResult
	expected := 0.0
	for i, bucket := range buckets {
		d, _ := buildSlot(bucket)
		ms := d.Seconds() * 1e3
		slots = append(slots, slotResult{pmatch.SlotName(i, shards), len(bucket), ms})
		expected += ms * float64(len(bucket)) / float64(size)
	}
	ratio := fullMean / expected
	if ratio < 1.5 {
		t.Errorf("sharded rebuild ratio = %.2f, want well above 1.5 (full %.1fms, expected sharded %.1fms)",
			ratio, fullMean, expected)
	}

	doc := struct {
		Benchmark     string       `json:"benchmark"`
		Subscriptions int          `json:"subscriptions"`
		Shards        int          `json:"shards"`
		FullMS        []float64    `json:"full_rebuild_ms"`
		FullMeanMS    float64      `json:"full_rebuild_mean_ms"`
		Slots         []slotResult `json:"per_slot"`
		ExpectedMS    float64      `json:"sharded_expected_rebuild_ms"`
		Ratio         float64      `json:"rebuild_speedup"`
	}{
		Benchmark:     "per-control-change automaton rebuild, monolithic vs sharded (DESIGN.md §5g)",
		Subscriptions: size,
		Shards:        shards,
		FullMS:        fullMS,
		FullMeanMS:    fullMean,
		Slots:         slots,
		ExpectedMS:    expected,
		Ratio:         ratio,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (full %.1fms, sharded expected %.1fms, %.1fx)", out, fullMean, expected, ratio)
}
