package xmlrouter

import (
	"sync/atomic"
	"testing"

	"repro/internal/broker"
	"repro/internal/dtddata"
	"repro/internal/experiment"
	"repro/internal/gen"
	"repro/internal/xmldoc"
)

// BenchmarkConcurrentPublish measures the publication data plane of a single
// broker under the Table 1 workload (a large covering-compacted NITF
// subscription table, publications extracted from generated NITF documents).
// The "serial" variant routes publications one at a time; the "parallel"
// variant routes them from GOMAXPROCS goroutines through the broker's shared
// (read) lock. On a multi-core host the parallel variant should scale close
// to linearly with GOMAXPROCS, because publish takes only the RLock and the
// matching traversal is read-only; run with -cpu=1,2,4 to see the curve.
// EXPERIMENTS.md records measured numbers.
func BenchmarkConcurrentPublish(b *testing.B) {
	set, err := experiment.BuildCoveringSet(dtddata.NITF(), 6000, 0.9, 4)
	if err != nil {
		b.Fatal(err)
	}
	dg := gen.NewDocGenerator(dtddata.NITF(), 6)
	dg.AvgRepeat = 1.5
	var pubs []xmldoc.Publication
	for i := 0; i < 200; i++ {
		doc := dg.Generate()
		pubs = append(pubs, xmldoc.Extract(doc, uint64(i))...)
	}

	// The send sink must be callable from many publishing goroutines at
	// once (the broker invokes it under the shared lock).
	var delivered atomic.Int64
	newBroker := func() *broker.Broker {
		br := broker.New(broker.Config{ID: "b1", UseCovering: true}, func(to string, m *broker.Message) {
			delivered.Add(1)
		})
		br.AddClient("sub")
		for _, x := range set.XPEs {
			br.HandleMessage(&broker.Message{Type: broker.MsgSubscribe, XPE: x}, "sub")
		}
		return br
	}

	b.Run("serial", func(b *testing.B) {
		br := newBroker()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			br.HandleMessage(&broker.Message{Type: broker.MsgPublish, Pub: pubs[i%len(pubs)]}, "producer")
		}
	})

	b.Run("parallel", func(b *testing.B) {
		br := newBroker()
		var next atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(next.Add(1)-1) % len(pubs)
				br.HandleMessage(&broker.Message{Type: broker.MsgPublish, Pub: pubs[i]}, "producer")
			}
		})
	})
}
