package xmlrouter

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/broker"
	"repro/internal/dtddata"
	"repro/internal/experiment"
	"repro/internal/gen"
	"repro/internal/xmldoc"
)

// BenchmarkAutomatonMatch isolates the effect of the shared path-matching
// automaton (internal/pmatch, DESIGN.md §5c) on the publication data plane.
// For each subscription-table size it routes the same publication stream
// through two otherwise identical brokers: "treewalk" evaluates the covering
// trees per publication (Config.DisableSharedNFA), "nfa" runs the shared
// automaton compiled into the routing snapshot. The gap is the per-publication
// matching cost the automaton removes; it widens with the table size because
// the tree walk grows with the number of stored subscriptions while the NFA
// run grows only with shared-prefix fan-out. EXPERIMENTS.md and
// BENCH_pmatch.json record measured numbers.
func BenchmarkAutomatonMatch(b *testing.B) {
	dg := gen.NewDocGenerator(dtddata.NITF(), 6)
	dg.AvgRepeat = 1.5
	var pubs []xmldoc.Publication
	for i := 0; i < 200; i++ {
		doc := dg.Generate()
		pubs = append(pubs, xmldoc.Extract(doc, uint64(i))...)
	}

	var delivered atomic.Int64
	newBroker := func(n int, disableNFA bool) *broker.Broker {
		set, err := experiment.BuildCoveringSet(dtddata.NITF(), n, 0.9, 4)
		if err != nil {
			b.Fatal(err)
		}
		br := broker.New(broker.Config{ID: "b1", UseCovering: true, DisableSharedNFA: disableNFA},
			func(to string, m *broker.Message) { delivered.Add(1) })
		br.AddClient("sub")
		for _, x := range set.XPEs {
			br.HandleMessage(&broker.Message{Type: broker.MsgSubscribe, XPE: x}, "sub")
		}
		return br
	}

	for _, n := range []int{100, 1000, 10000} {
		for _, mode := range []struct {
			name    string
			disable bool
		}{{"treewalk", true}, {"nfa", false}} {
			b.Run(fmt.Sprintf("subs=%d/%s", n, mode.name), func(b *testing.B) {
				br := newBroker(n, mode.disable)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					br.HandleMessage(&broker.Message{Type: broker.MsgPublish, Pub: pubs[i%len(pubs)]}, "producer")
				}
			})
		}
	}
}
