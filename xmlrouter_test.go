package xmlrouter

import (
	"fmt"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	dtdText := `
<!ELEMENT shop (item+)>
<!ELEMENT item (name, price)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`
	d, err := ParseDTD(dtdText)
	if err != nil {
		t.Fatal(err)
	}
	advs, err := GenerateAdvertisements(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(advs) != 2 {
		t.Fatalf("advertisements = %d, want 2", len(advs))
	}

	net := NewNetwork(1)
	ids := BuildChain(net, 2, BrokerConfig{UseAdvertisements: true, UseCovering: true})
	pub := net.AddClient("pub", ids[0])
	sub := net.AddClient("sub", ids[1])
	for i, a := range advs {
		pub.Send(&Message{Type: MsgAdvertise, AdvID: fmt.Sprintf("a%d", i), Adv: a})
	}
	net.Run()
	sub.Send(&Message{Type: MsgSubscribe, XPE: MustParseXPE("/shop/item/price")})
	net.Run()

	doc, err := ParseDocument([]byte(`<shop><item><name>pen</name><price>2</price></item></shop>`))
	if err != nil {
		t.Fatal(err)
	}
	pub.Send(&Message{Type: MsgPublish, Doc: doc})
	net.Run()
	if len(sub.Deliveries) != 1 {
		t.Fatalf("deliveries = %d", len(sub.Deliveries))
	}
}

func TestPublicAlgorithms(t *testing.T) {
	s1 := MustParseXPE("/a//c")
	s2 := MustParseXPE("/a/b/c")
	if !Covers(s1, s2) {
		t.Error("Covers(/a//c, /a/b/c) should hold")
	}
	a, err := ParseAdvertisement("/a(/b)+/c")
	if err != nil {
		t.Fatal(err)
	}
	if !Overlaps(a, MustParseXPE("//b/c")) {
		t.Error("Overlaps should hold")
	}
	m, ok := MergeSubscriptions([]*XPE{MustParseXPE("/a/b/c"), MustParseXPE("/a/b/d")}, false)
	if !ok || m.String() != "/a/b/*" {
		t.Errorf("MergeSubscriptions = %v (%v)", m, ok)
	}
}

func TestPublicCorporaAndGenerators(t *testing.T) {
	if NITF().Root != "nitf" || PSD().Root != "ProteinDatabase" {
		t.Fatal("embedded corpora misconfigured")
	}
	xg := NewXPathGenerator(PSD(), 0.2, 0.1, 1)
	if xg.Generate().Len() == 0 {
		t.Error("empty generated XPE")
	}
	dg := NewDocGenerator(PSD(), 1)
	doc := dg.Generate()
	if doc.Root.Name != "ProteinDatabase" {
		t.Errorf("generated root = %s", doc.Root.Name)
	}
	pubs := ExtractPublications(doc, 1)
	if len(pubs) == 0 {
		t.Error("no publications extracted")
	}
}
