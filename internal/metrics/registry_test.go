package metrics

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// testRegistry builds a registry with one series of every kind and
// deterministic values.
func testRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("test_requests_total", "Requests handled.", "code", "200").Add(3)
	reg.Counter("test_requests_total", "Requests handled.", "code", "500").Inc()
	reg.Gauge("test_queue_depth", "Queue depth.").Set(7)
	reg.GaugeFunc("test_table_size", "Table size.", func() float64 { return 42.5 })
	h := reg.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.5, 2} {
		h.Observe(v)
	}
	// A labelled histogram family — the shape xbroker_stage_seconds uses —
	// so the golden file pins bucket rendering with merged label sets
	// ({le=...} spliced into {stage=...}).
	sh := reg.Histogram("test_stage_seconds", "Stage latency.", []float64{0.001, 0.01}, "stage", "match")
	sh.Observe(0.0005)
	sh.Observe(0.005)
	reg.Histogram("test_stage_seconds", "Stage latency.", []float64{0.001, 0.01}, "stage", "decode").Observe(0.02)
	return reg
}

func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := testRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestWriteKeyValue(t *testing.T) {
	var b strings.Builder
	if err := testRegistry().WriteKeyValue(&b); err != nil {
		t.Fatal(err)
	}
	want := `test_latency_seconds_count=4 test_latency_seconds_sum=2.515 ` +
		`test_queue_depth=7 test_requests_total{code="200"}=3 ` +
		`test_requests_total{code="500"}=1 ` +
		`test_stage_seconds_count{stage="decode"}=1 test_stage_seconds_sum{stage="decode"}=0.02 ` +
		`test_stage_seconds_count{stage="match"}=2 test_stage_seconds_sum{stage="match"}=0.0055 ` +
		`test_table_size=42.5`
	if b.String() != want {
		t.Errorf("key=value line:\ngot  %s\nwant %s", b.String(), want)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "")
	b := reg.Counter("x_total", "")
	if a != b {
		t.Error("same name must return the same counter")
	}
	l1 := reg.Counter("y_total", "", "peer", "b2")
	l2 := reg.Counter("y_total", "", "peer", "b3")
	if l1 == l2 {
		t.Error("different label values must be distinct series")
	}
	defer func() {
		if recover() == nil {
			t.Error("type conflict must panic")
		}
	}()
	reg.Gauge("x_total", "")
}

func TestRegistryUnregister(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("q_depth", "", func() float64 { return 1 }, "peer", "b2")
	reg.GaugeFunc("q_depth", "", func() float64 { return 2 }, "peer", "b3")
	reg.Unregister("q_depth", "peer", "b2")
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	if strings.Contains(out, `peer="b2"`) {
		t.Errorf("unregistered series still rendered:\n%s", out)
	}
	if !strings.Contains(out, `q_depth{peer="b3"} 2`) {
		t.Errorf("remaining series missing:\n%s", out)
	}
	reg.Unregister("q_depth", "peer", "b3")
	b.Reset()
	reg.WritePrometheus(&b)
	if b.Len() != 0 {
		t.Errorf("empty family must render nothing, got:\n%s", b.String())
	}
}

func TestGaugeFuncReplace(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("g", "", func() float64 { return 1 })
	reg.GaugeFunc("g", "", func() float64 { return 2 })
	var b strings.Builder
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), "g 2") {
		t.Errorf("replacement callback not used:\n%s", b.String())
	}
}

// TestRegistryConcurrent hammers registration, observation, and exposition
// together; run under -race in CI.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				reg.Counter("c_total", "").Inc()
				reg.Histogram("h", "", DefBuckets).Observe(float64(j) / 100)
				peer := []string{"a", "b", "c", "d"}[i]
				reg.GaugeFunc("q", "", func() float64 { return float64(j) }, "peer", peer)
				if j%3 == 0 {
					reg.Unregister("q", "peer", peer)
				}
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				var b strings.Builder
				if err := reg.WritePrometheus(&b); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c_total", "").Load(); got != 800 {
		t.Errorf("counter = %d, want 800", got)
	}
}
