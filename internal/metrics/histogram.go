package metrics

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefBuckets are the default histogram bucket upper bounds in seconds,
// spanning sub-microsecond matching work up to multi-second stalls. They
// mirror the decades the broker's hot paths actually occupy: in-memory
// matching sits in the 1µs–1ms range, network hops in 0.1ms–1s.
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5,
}

// Histogram is a fixed-bucket histogram safe for concurrent use. Unlike
// Summary it retains no samples: memory is constant (one atomic counter per
// bucket plus count and sum), and Observe is lock-free — a binary search
// over the bucket bounds and two atomic adds — so it is safe to call from
// the broker's publish data plane.
//
// Bucket semantics follow the Prometheus convention: bucket i counts
// observations v with v <= upper[i] (upper bounds are inclusive), and an
// implicit +Inf bucket catches the rest.
type Histogram struct {
	upper  []float64 // sorted upper bounds; +Inf is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram with the given bucket upper bounds. The
// bounds are copied, sorted, and deduplicated; a trailing +Inf is dropped
// (it is implicit). NewHistogram panics on an empty bucket list.
func NewHistogram(buckets []float64) *Histogram {
	bs := append([]float64(nil), buckets...)
	sort.Float64s(bs)
	out := bs[:0]
	for i, b := range bs {
		if math.IsInf(b, +1) {
			continue
		}
		if i > 0 && len(out) > 0 && b == out[len(out)-1] {
			continue
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		panic("metrics: histogram needs at least one finite bucket")
	}
	return &Histogram{
		upper:  out,
		counts: make([]atomic.Int64, len(out)+1), // final slot is +Inf
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Find the first bucket whose upper bound admits v.
	i := sort.SearchFloat64s(h.upper, v)
	// SearchFloat64s returns the first index with upper[i] >= v, which is
	// exactly the inclusive-upper-bound bucket; v greater than every bound
	// lands on len(upper), the +Inf slot.
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the finite upper bounds.
func (h *Histogram) Buckets() []float64 { return h.upper }

// Cumulative returns the cumulative count per bucket: element i is the
// number of observations <= upper[i], and the final element (index
// len(Buckets())) is the total including the +Inf bucket. The counts are
// read bucket-by-bucket without a lock, so under concurrent Observe the
// snapshot may be mid-update; it is always internally monotonic.
func (h *Histogram) Cumulative() []int64 {
	out := make([]int64, len(h.counts))
	var acc int64
	for i := range h.counts {
		acc += h.counts[i].Load()
		out[i] = acc
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution from the bucket counts, interpolating linearly within the
// winning bucket — the same estimate Prometheus's histogram_quantile()
// computes server-side. With no observations it returns 0. A quantile that
// lands in the +Inf bucket is clamped to the highest finite bound (the
// histogram cannot know how far past it the samples went).
func (h *Histogram) Quantile(q float64) float64 {
	return QuantileFromBuckets(h.upper, h.Cumulative(), q)
}

// QuantileFromBuckets computes the interpolated q-quantile from histogram
// bucket data in the Cumulative() layout: upper holds the finite bucket
// bounds and cum one cumulative count per bound plus a final total
// (the +Inf slot), so len(cum) == len(upper)+1. It is exported so consumers
// of a serialised histogram snapshot (the /statusz endpoint, xtop) can
// compute quantiles without the live *Histogram.
func QuantileFromBuckets(upper []float64, cum []int64, q float64) float64 {
	if len(cum) == 0 || len(cum) != len(upper)+1 {
		return 0
	}
	total := cum[len(cum)-1]
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	i := sort.Search(len(cum), func(i int) bool { return float64(cum[i]) >= rank })
	if i >= len(upper) {
		// The quantile falls in the +Inf bucket: the highest finite bound is
		// the best (lower) estimate available.
		return upper[len(upper)-1]
	}
	lo, below := 0.0, int64(0)
	if i > 0 {
		lo, below = upper[i-1], cum[i-1]
	}
	inBucket := cum[i] - below
	if inBucket == 0 {
		return upper[i]
	}
	return lo + (upper[i]-lo)*(rank-float64(below))/float64(inBucket)
}
