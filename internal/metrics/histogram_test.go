package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the inclusive-upper-bound convention:
// an observation equal to a bucket's bound lands in that bucket, one just
// above lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	h.Observe(0.1)  // == first bound → bucket 0
	h.Observe(0.11) // just above → bucket 1
	h.Observe(1)    // == second bound → bucket 1
	h.Observe(10)   // == last bound → bucket 2
	h.Observe(10.5) // above every bound → +Inf
	h.Observe(-1)   // below every bound → bucket 0

	cum := h.Cumulative()
	want := []int64{2, 4, 5, 6} // cumulative per le=0.1, 1, 10, +Inf
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d (full: %v)", i, cum[i], w, cum)
		}
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.1+0.11+1+10+10.5-1; math.Abs(got-want) > 1e-9 {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}

func TestHistogramNormalisesBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 0.1, 1, math.Inf(1)})
	if got := h.Buckets(); len(got) != 2 || got[0] != 0.1 || got[1] != 1 {
		t.Errorf("Buckets = %v, want [0.1 1]", got)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(DefBuckets)
	h.ObserveDuration(250 * time.Millisecond)
	if got := h.Sum(); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("Sum = %v, want 0.25 (durations are recorded in seconds)", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram([]float64{0.5})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.25)
				h.Observe(0.75)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 16000 {
		t.Errorf("Count = %d, want 16000", h.Count())
	}
	cum := h.Cumulative()
	if cum[0] != 8000 || cum[1] != 16000 {
		t.Errorf("Cumulative = %v, want [8000 16000]", cum)
	}
	if got, want := h.Sum(), 8000*0.25+8000*0.75; math.Abs(got-want) > 1e-6 {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}
