package metrics

import (
	"math"
	"testing"
)

func TestQuantileFromBuckets(t *testing.T) {
	upper := []float64{0.1, 0.5, 1}
	tests := []struct {
		name string
		cum  []int64 // one per finite bound, plus the +Inf total
		q    float64
		want float64
	}{
		{"empty", []int64{0, 0, 0, 0}, 0.5, 0},
		// 10 observations all in the first bucket: interpolate within [0, 0.1].
		{"first bucket midpoint", []int64{10, 10, 10, 10}, 0.5, 0.05},
		{"first bucket p90", []int64{10, 10, 10, 10}, 0.9, 0.09},
		// Uniform spread: 4 per bucket, 12 total, +Inf empty.
		{"across buckets", []int64{4, 8, 12, 12}, 0.5, 0.3},
		// Rank falls in the +Inf bucket: clamp to the highest finite bound.
		{"inf bucket clamps", []int64{4, 8, 12, 16}, 0.99, 1},
		{"q clamped low", []int64{10, 10, 10, 10}, -1, 0},
		{"q clamped high", []int64{10, 10, 10, 10}, 2, 0.1},
	}
	for _, tt := range tests {
		got := QuantileFromBuckets(upper, tt.cum, tt.q)
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("%s: QuantileFromBuckets(q=%v) = %v, want %v", tt.name, tt.q, got, tt.want)
		}
	}
	// Mismatched layout degrades to 0 rather than panicking.
	if got := QuantileFromBuckets(upper, []int64{1, 2}, 0.5); got != 0 {
		t.Errorf("mismatched layout = %v, want 0", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for i := 0; i < 100; i++ {
		h.Observe(0.05) // all in the (0.01, 0.1] bucket
	}
	p50 := h.Quantile(0.5)
	if p50 <= 0.01 || p50 > 0.1 {
		t.Errorf("p50 = %v, want within (0.01, 0.1]", p50)
	}
	if p99 := h.Quantile(0.99); p99 < p50 {
		t.Errorf("p99 %v < p50 %v", p99, p50)
	}
}

func TestRegistryExport(t *testing.T) {
	reg := testRegistry()
	points := reg.Export()
	byKey := make(map[string]SeriesPoint, len(points))
	for i, p := range points {
		byKey[p.Key] = p
		if i > 0 && points[i-1].Name > p.Name {
			t.Errorf("export not sorted by family: %s before %s", points[i-1].Name, p.Name)
		}
	}

	c, ok := byKey[`test_requests_total{code="200"}`]
	if !ok || c.Type != "counter" || c.Value != 3 {
		t.Errorf("counter export = %+v", c)
	}
	if c.Labels["code"] != "200" {
		t.Errorf("counter labels = %v", c.Labels)
	}

	g, ok := byKey["test_table_size"]
	if !ok || g.Type != "gauge" || g.Value != 42.5 {
		t.Errorf("func gauge export = %+v", g)
	}

	h, ok := byKey[`test_stage_seconds{stage="match"}`]
	if !ok || h.Type != "histogram" || h.Histogram == nil {
		t.Fatalf("histogram export = %+v", h)
	}
	hd := h.Histogram
	if hd.Count != 2 || math.Abs(hd.Sum-0.0055) > 1e-12 {
		t.Errorf("histogram data = %+v", hd)
	}
	if len(hd.Cumulative) != len(hd.Upper)+1 {
		t.Errorf("cumulative layout: %d counts for %d bounds", len(hd.Cumulative), len(hd.Upper))
	}
	if q := hd.Quantile(0.5); q <= 0 || q > 0.01 {
		t.Errorf("exported histogram p50 = %v, want within (0, 0.01]", q)
	}

	// The export is a snapshot: mutating the source histogram afterwards
	// must not change already-exported data.
	reg.Histogram("test_stage_seconds", "", nil, "stage", "match").Observe(1)
	if hd.Count != 2 {
		t.Errorf("export aliases live histogram state")
	}
}
