package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	c.Add(5)
	if got := c.Load(); got != 8005 {
		t.Errorf("Load = %d, want 8005", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Load() != 0 || g.High() != 0 {
		t.Error("zero gauge should report zeros")
	}
	g.Add(3)
	g.Add(2)
	g.Add(-4)
	if got := g.Load(); got != 1 {
		t.Errorf("Load = %d, want 1", got)
	}
	if got := g.High(); got != 5 {
		t.Errorf("High = %d, want 5", got)
	}
	g.Set(10)
	if g.Load() != 10 || g.High() != 10 {
		t.Errorf("after Set: Load=%d High=%d", g.Load(), g.High())
	}
	g.Set(2)
	if g.Load() != 2 || g.High() != 10 {
		t.Errorf("Set must not lower the high-water mark: Load=%d High=%d", g.Load(), g.High())
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Load(); got != 0 {
		t.Errorf("Load = %d, want 0", got)
	}
	if high := g.High(); high < 1 || high > 8 {
		t.Errorf("High = %d, want within [1,8]", high)
	}
}

func TestSummaryStats(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Quantile(0.5) != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty summary should report zeros")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Observe(v)
	}
	if s.Count() != 5 {
		t.Errorf("Count = %d", s.Count())
	}
	if s.Mean() != 3 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Quantile(0.5) != 3 {
		t.Errorf("median = %v", s.Quantile(0.5))
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	// Observations after a sorted read must still be accounted for.
	s.Observe(100)
	if s.Max() != 100 {
		t.Errorf("Max after late observe = %v", s.Max())
	}
}

func TestSummaryDurationAndString(t *testing.T) {
	var s Summary
	s.ObserveDuration(1500 * time.Microsecond)
	if got := s.Mean(); got != 1.5 {
		t.Errorf("Mean = %v ms, want 1.5", got)
	}
	if !strings.Contains(s.String(), "n=1") {
		t.Errorf("String = %q", s.String())
	}
}

// TestSummaryBoundedMemory drives a Summary far past the reservoir cap and
// checks that memory stays bounded while the exact statistics stay exact
// and the estimated quantiles stay plausible.
func TestSummaryBoundedMemory(t *testing.T) {
	var s Summary
	const n = 100000
	for i := 1; i <= n; i++ {
		s.Observe(float64(i))
	}
	if got := len(s.samples); got > summaryReservoir {
		t.Fatalf("retained %d samples, cap is %d", got, summaryReservoir)
	}
	if got := s.Count(); got != n {
		t.Errorf("Count = %d, want %d (total observed, not retained)", got, n)
	}
	if got, want := s.Mean(), float64(n+1)/2; got != want {
		t.Errorf("Mean = %v, want exact %v", got, want)
	}
	if s.Min() != 1 || s.Max() != n {
		t.Errorf("Min/Max = %v/%v, want exact 1/%d", s.Min(), s.Max(), n)
	}
	if s.Quantile(0) != 1 || s.Quantile(1) != n {
		t.Errorf("extreme quantiles = %v/%v, want exact 1/%d", s.Quantile(0), s.Quantile(1), n)
	}
	// The median is estimated from a 4096-element uniform reservoir; a
	// ±10% band is ~13 standard errors wide.
	if med := s.Quantile(0.5); med < 0.4*n || med > 0.6*n {
		t.Errorf("median estimate %v implausible for uniform 1..%d", med, n)
	}
}

func TestSummaryExactUnderCap(t *testing.T) {
	var s Summary
	for i := 1; i <= summaryReservoir; i++ {
		s.Observe(float64(i))
	}
	// At exactly the cap nothing has been sampled away: nearest-rank
	// quantiles are exact.
	if got, want := s.Quantile(0.5), math.Ceil(0.5*summaryReservoir); got != want {
		t.Errorf("median = %v, want exact %v", got, want)
	}
}

func TestQuantileBounds(t *testing.T) {
	var s Summary
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Errorf("q1 = %v", got)
	}
	if got := s.Quantile(0.95); got != 95 {
		t.Errorf("q95 = %v", got)
	}
}
