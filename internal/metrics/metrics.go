// Package metrics provides the small statistics helpers the experiment
// harness reports with: streaming counters and latency/size summaries with
// percentiles.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a concurrency-safe monotonic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a concurrency-safe instantaneous value that also tracks its
// high-water mark. The zero value is ready to use. It is implemented with
// atomics only — Add on the hot path never takes a lock.
type Gauge struct {
	v    atomic.Int64
	high atomic.Int64
}

// Add moves the gauge by d (which may be negative) and returns the new
// value, updating the high-water mark.
func (g *Gauge) Add(d int64) int64 {
	v := g.v.Add(d)
	for {
		h := g.high.Load()
		if v <= h || g.high.CompareAndSwap(h, v) {
			return v
		}
	}
}

// Set forces the gauge to v, updating the high-water mark.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	for {
		h := g.high.Load()
		if v <= h || g.high.CompareAndSwap(h, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// High returns the largest value the gauge has held.
func (g *Gauge) High() int64 { return g.high.Load() }

// Summary accumulates float64 samples and reports order statistics. The
// zero value is ready to use; methods are safe for concurrent use.
type Summary struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
}

// Observe records one sample.
func (s *Summary) Observe(v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples = append(s.samples, v)
	s.sorted = false
}

// ObserveDuration records a duration sample in milliseconds.
func (s *Summary) ObserveDuration(d time.Duration) {
	s.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of samples.
func (s *Summary) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// Mean returns the arithmetic mean, or 0 with no samples.
func (s *Summary) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range s.samples {
		total += v
	}
	return total / float64(len(s.samples))
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank, or 0 with
// no samples.
func (s *Summary) Quantile(q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	idx := int(math.Ceil(q*float64(len(s.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.samples) {
		idx = len(s.samples) - 1
	}
	return s.samples[idx]
}

// Min returns the smallest sample, or 0 with no samples.
func (s *Summary) Min() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.samples[0]
}

// Max returns the largest sample, or 0 with no samples.
func (s *Summary) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.samples[len(s.samples)-1]
}

// ensureSorted must be called with the lock held.
func (s *Summary) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}

// String renders count/mean/p50/p95/max.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p95=%.3f max=%.3f",
		s.Count(), s.Mean(), s.Quantile(0.5), s.Quantile(0.95), s.Max())
}
