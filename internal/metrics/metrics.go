// Package metrics provides the small statistics helpers the experiment
// harness reports with: streaming counters and latency/size summaries with
// percentiles.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a concurrency-safe monotonic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a concurrency-safe instantaneous value that also tracks its
// high-water mark. The zero value is ready to use. It is implemented with
// atomics only — Add on the hot path never takes a lock.
type Gauge struct {
	v    atomic.Int64
	high atomic.Int64
}

// Add moves the gauge by d (which may be negative) and returns the new
// value, updating the high-water mark.
func (g *Gauge) Add(d int64) int64 {
	v := g.v.Add(d)
	for {
		h := g.high.Load()
		if v <= h || g.high.CompareAndSwap(h, v) {
			return v
		}
	}
}

// Set forces the gauge to v, updating the high-water mark.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	for {
		h := g.high.Load()
		if v <= h || g.high.CompareAndSwap(h, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// High returns the largest value the gauge has held.
func (g *Gauge) High() int64 { return g.high.Load() }

// summaryReservoir caps the samples a Summary retains. Count, Mean, Min and
// Max stay exact at any volume; quantiles beyond the cap are estimated from
// a uniform reservoir (algorithm R), so a long-running broker's summaries
// use constant memory instead of growing one float64 per observation.
const summaryReservoir = 4096

// Summary accumulates float64 samples and reports order statistics. The
// zero value is ready to use; methods are safe for concurrent use.
//
// Memory is bounded: at most summaryReservoir samples are retained. Up to
// the cap every statistic is exact; past it, Count/Mean/Min/Max remain
// exact (tracked by running accumulators) while quantiles are estimated
// from a uniform random sample of everything observed.
type Summary struct {
	mu      sync.Mutex
	samples []float64 // reservoir
	sorted  bool
	n       int64   // total observations
	sum     float64 // running sum of all observations
	min     float64
	max     float64
	rng     *rand.Rand
}

// Observe records one sample.
func (s *Summary) Observe(v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	s.sum += v
	if s.n == 1 || v < s.min {
		s.min = v
	}
	if s.n == 1 || v > s.max {
		s.max = v
	}
	if len(s.samples) < summaryReservoir {
		s.samples = append(s.samples, v)
		s.sorted = false
		return
	}
	// Reservoir replacement (algorithm R): keep v with probability
	// cap/n, evicting a uniformly random resident. Sorting permutes the
	// reservoir between observations, which does not bias the choice —
	// the evicted slot is uniform either way.
	if s.rng == nil {
		// Fixed seed: summaries are statistics helpers, and deterministic
		// sampling keeps experiment reruns reproducible.
		s.rng = rand.New(rand.NewSource(1))
	}
	if j := s.rng.Int63n(s.n); j < summaryReservoir {
		s.samples[j] = v
		s.sorted = false
	}
}

// ObserveDuration records a duration sample in milliseconds.
func (s *Summary) ObserveDuration(d time.Duration) {
	s.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of samples observed (not the retained subset).
func (s *Summary) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.n)
}

// Mean returns the arithmetic mean of all observations, or 0 with none.
func (s *Summary) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank over the
// retained samples, or 0 with none. The extremes are answered from the
// exact accumulators, so q=0 and q=1 stay right past the reservoir cap.
func (s *Summary) Quantile(q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	s.ensureSorted()
	idx := int(math.Ceil(q*float64(len(s.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.samples) {
		idx = len(s.samples) - 1
	}
	return s.samples[idx]
}

// Min returns the smallest observation, or 0 with none. Exact at any
// volume (tracked outside the reservoir).
func (s *Summary) Min() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.min
}

// Max returns the largest observation, or 0 with none. Exact at any
// volume (tracked outside the reservoir).
func (s *Summary) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.max
}

// ensureSorted must be called with the lock held.
func (s *Summary) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}

// String renders count/mean/p50/p95/max.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p95=%.3f max=%.3f",
		s.Count(), s.Mean(), s.Quantile(0.5), s.Quantile(0.95), s.Max())
}
