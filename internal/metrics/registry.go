package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry is a collection of named metrics rendered in the Prometheus text
// exposition format. Metric constructors are get-or-create: calling
// Counter("x") twice returns the same *Counter, so packages can resolve
// their instruments independently. A metric name plus its sorted label set
// identifies one series; one name holds series of exactly one type.
//
// The registry itself is locked only on registration and exposition — the
// returned Counter/Gauge/Histogram pointers are the same lock-free
// primitives used elsewhere in this package, so instrumented hot paths
// never touch the registry lock. For values that are cheap to read on
// demand (table sizes, queue depths), CounterFunc/GaugeFunc register a
// callback sampled at exposition time instead, costing the hot path
// nothing at all.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	series map[string]*series
}

type series struct {
	labels  string   // rendered `{k="v",...}` or ""
	kv      []string // the original key/value pairs, for Export
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // func-backed counter/gauge
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter series name{labels}, creating it on first
// use. labels are key/value pairs ("peer", "b2"); an odd count or a type
// conflict with an existing family panics (programmer error).
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.getOrCreate(name, help, "counter", labels, func() *series {
		return &series{counter: &Counter{}}
	})
	return s.counter
}

// Gauge returns the gauge series name{labels}, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.getOrCreate(name, help, "gauge", labels, func() *series {
		return &series{gauge: &Gauge{}}
	})
	return s.gauge
}

// Histogram returns the histogram series name{labels} with the given
// buckets, creating it on first use (buckets are ignored when the series
// already exists).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	s := r.getOrCreate(name, help, "histogram", labels, func() *series {
		return &series{hist: NewHistogram(buckets)}
	})
	return s.hist
}

// CounterFunc registers a counter series whose value is read from fn at
// exposition time — for values already maintained as atomics elsewhere
// (broker delivery counts), so the hot path is not instrumented twice.
// Re-registering an existing series replaces its callback.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.registerFunc(name, help, "counter", fn, labels)
}

// GaugeFunc registers a gauge series read from fn at exposition time — for
// instantaneous values that are cheap to compute on demand (routing-table
// sizes, queue depths).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.registerFunc(name, help, "gauge", fn, labels)
}

// Unregister removes the series name{labels}, and the whole family when it
// was the last series. It is used when a labelled resource disappears
// (a peer disconnecting drops its queue-depth gauge).
func (r *Registry) Unregister(name string, labels ...string) {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		return
	}
	delete(f.series, key)
	if len(f.series) == 0 {
		delete(r.families, name)
	}
}

func (r *Registry) registerFunc(name, help, typ string, fn func() float64, labels []string) {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	if old := f.series[key]; old != nil && old.fn == nil {
		panic(fmt.Sprintf("metrics: series %s%s exists as a non-func %s", name, key, typ))
	}
	// Series are immutable once published (renderers read them without the
	// lock), so replacing a callback installs a fresh series object.
	f.series[key] = &series{labels: key, kv: append([]string(nil), labels...), fn: fn}
}

func (r *Registry) getOrCreate(name, help, typ string, labels []string, mk func() *series) *series {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	s := f.series[key]
	if s == nil {
		s = mk()
		s.labels = key
		s.kv = append([]string(nil), labels...)
		f.series[key] = s
	}
	return s
}

// renderLabels turns key/value pairs into a canonical `{k="v",...}` string
// (sorted by key), or "" with no labels.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("metrics: odd label list, want key/value pairs")
	}
	pairs := make([]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		// %q escapes backslash, double quote, and newline — exactly the
		// exposition format's label escaping rules.
		pairs = append(pairs, fmt.Sprintf("%s=%q", kv[i], kv[i+1]))
	}
	sort.Strings(pairs)
	return "{" + strings.Join(pairs, ",") + "}"
}

// labelsWith appends extra pairs (le buckets) inside an already-rendered
// label string.
func labelsWith(rendered, key, value string) string {
	extra := fmt.Sprintf("%s=%q", key, value)
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format, families sorted by name and series by label string, so output is
// deterministic and diffable in golden tests.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshot() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f famView, s *series) error {
	switch {
	case s.hist != nil:
		cum := s.hist.Cumulative()
		for i, ub := range s.hist.Buckets() {
			ls := labelsWith(s.labels, "le", formatFloat(ub))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, ls, cum[i]); err != nil {
				return err
			}
		}
		ls := labelsWith(s.labels, "le", "+Inf")
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, ls, cum[len(cum)-1]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, formatFloat(s.hist.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, s.hist.Count())
		return err
	default:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(seriesValue(s)))
		return err
	}
}

// WriteKeyValue renders every scalar metric as one `name{labels}=value`
// token, space-separated on a single line — the broker's periodic stats
// log. Histograms contribute their _count and _sum.
func (r *Registry) WriteKeyValue(w io.Writer) error {
	first := true
	emit := func(k, v string) error {
		sep := " "
		if first {
			sep, first = "", false
		}
		_, err := fmt.Fprintf(w, "%s%s=%s", sep, k, v)
		return err
	}
	for _, f := range r.snapshot() {
		for _, s := range f.series {
			var err error
			if s.hist != nil {
				if err = emit(f.name+"_count"+s.labels, fmt.Sprint(s.hist.Count())); err == nil {
					err = emit(f.name+"_sum"+s.labels, formatFloat(s.hist.Sum()))
				}
			} else {
				err = emit(f.name+s.labels, formatFloat(seriesValue(s)))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func seriesValue(s *series) float64 {
	switch {
	case s.fn != nil:
		return s.fn()
	case s.counter != nil:
		return float64(s.counter.Load())
	case s.gauge != nil:
		return float64(s.gauge.Load())
	}
	return 0
}

// famView is an immutable snapshot of one family taken under the registry
// lock, so rendering (which calls user callbacks) runs lock-free.
type famView struct {
	name, help, typ string
	series          []*series
}

func (r *Registry) snapshot() []famView {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]famView, 0, len(r.families))
	for _, f := range r.families {
		v := famView{name: f.name, help: f.help, typ: f.typ}
		for _, s := range f.series {
			v.series = append(v.series, s)
		}
		sort.Slice(v.series, func(i, j int) bool { return v.series[i].labels < v.series[j].labels })
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// formatFloat renders a metric value: integers without a decimal point,
// everything else in Go's shortest round-trip form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// SeriesPoint is one series of the registry in machine-readable form — the
// building block of the /statusz JSON snapshot. Key is the full series
// identity (name plus rendered labels) and doubles as the stable map key for
// rate-from-delta computations across scrapes.
type SeriesPoint struct {
	Name      string            `json:"name"`
	Key       string            `json:"key"`
	Type      string            `json:"type"` // "counter", "gauge", "histogram"
	Labels    map[string]string `json:"labels,omitempty"`
	Value     float64           `json:"value,omitempty"`
	Histogram *HistogramData    `json:"histogram,omitempty"`
}

// HistogramData is a histogram snapshot in the Cumulative() layout: one
// cumulative count per finite upper bound plus a final total (the +Inf
// slot). QuantileFromBuckets consumes it directly.
type HistogramData struct {
	Upper      []float64 `json:"upper"`
	Cumulative []int64   `json:"cumulative"`
	Sum        float64   `json:"sum"`
	Count      int64     `json:"count"`
}

// Quantile estimates the interpolated q-quantile of the snapshot.
func (h *HistogramData) Quantile(q float64) float64 {
	return QuantileFromBuckets(h.Upper, h.Cumulative, q)
}

// Export snapshots every series as data, sorted by family name then label
// string — the programmatic counterpart of WritePrometheus. Func-backed
// series are sampled at call time.
func (r *Registry) Export() []SeriesPoint {
	var out []SeriesPoint
	for _, f := range r.snapshot() {
		for _, s := range f.series {
			p := SeriesPoint{Name: f.name, Key: f.name + s.labels, Type: f.typ}
			if len(s.kv) > 0 {
				p.Labels = make(map[string]string, len(s.kv)/2)
				for i := 0; i+1 < len(s.kv); i += 2 {
					p.Labels[s.kv[i]] = s.kv[i+1]
				}
			}
			if s.hist != nil {
				p.Histogram = &HistogramData{
					Upper:      append([]float64(nil), s.hist.Buckets()...),
					Cumulative: s.hist.Cumulative(),
					Sum:        s.hist.Sum(),
					Count:      s.hist.Count(),
				}
			} else {
				p.Value = seriesValue(s)
			}
			out = append(out, p)
		}
	}
	return out
}
