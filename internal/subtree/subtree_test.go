package subtree

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/cover"
	"repro/internal/xpath"
)

func xp(s string) *xpath.XPE { return xpath.MustParse(s) }

func keys(nodes []*Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.XPE.String()
	}
	sort.Strings(out)
	return out
}

func TestInsertHierarchy(t *testing.T) {
	tr := New()
	// Insert from the paper's Figure 4 vocabulary.
	for _, s := range []string{"/a", "/a/b", "/a/b/a", "/a/c", "/a/b/b"} {
		res := tr.Insert(xp(s))
		if res.Duplicate {
			t.Fatalf("unexpected duplicate for %s", s)
		}
	}
	if tr.Size() != 5 {
		t.Fatalf("Size = %d", tr.Size())
	}
	// /a is top level; everything else sits under it.
	top := keys(tr.TopLevel())
	if strings.Join(top, " ") != "/a" {
		t.Fatalf("TopLevel = %v", top)
	}
	a := tr.Lookup(xp("/a"))
	if got := keys(a.Children()); strings.Join(got, " ") != "/a/b /a/c" {
		t.Fatalf("children of /a = %v", got)
	}
	ab := tr.Lookup(xp("/a/b"))
	if got := keys(ab.Children()); strings.Join(got, " ") != "/a/b/a /a/b/b" {
		t.Fatalf("children of /a/b = %v", got)
	}
	if ab.Parent() != a {
		t.Error("parent of /a/b should be /a")
	}
	if a.Parent() != nil {
		t.Error("top-level node should have nil Parent")
	}
}

func TestInsertCoveringArrivesLater(t *testing.T) {
	tr := New()
	r1 := tr.Insert(xp("/a/b/c"))
	r2 := tr.Insert(xp("/a/b/d"))
	if r1.Covered || r2.Covered {
		t.Fatal("independent subscriptions misreported as covered")
	}
	// The covering subscription arrives after the covered ones (case 2).
	res := tr.Insert(xp("/a/b"))
	if res.Covered {
		t.Fatal("/a/b is not covered")
	}
	if got := keys(res.NewlyCovered); strings.Join(got, " ") != "/a/b/c /a/b/d" {
		t.Fatalf("NewlyCovered = %v", got)
	}
	if got := keys(res.Node.Children()); strings.Join(got, " ") != "/a/b/c /a/b/d" {
		t.Fatalf("adopted children = %v", got)
	}
	if len(tr.TopLevel()) != 1 {
		t.Fatalf("TopLevel = %v", keys(tr.TopLevel()))
	}
}

func TestInsertDuplicate(t *testing.T) {
	tr := New()
	first := tr.Insert(xp("/a/b"))
	dup := tr.Insert(xp("/a/b"))
	if !dup.Duplicate || dup.Node != first.Node {
		t.Fatal("duplicate not detected")
	}
	if tr.Size() != 1 {
		t.Fatalf("Size = %d", tr.Size())
	}
}

func TestSuperPointers(t *testing.T) {
	tr := New()
	// Two incomparable top-level nodes both covered by a later wildcard one.
	tr.Insert(xp("/a/b/c"))
	tr.Insert(xp("/x/b/d"))
	res := tr.Insert(xp("*/b"))
	if res.Covered {
		t.Fatal("*/b should not be covered")
	}
	// */b covers both: one may be adopted, the rest via super pointers; all
	// must be reported as newly covered.
	if got := keys(res.NewlyCovered); strings.Join(got, " ") != "/a/b/c /x/b/d" {
		t.Fatalf("NewlyCovered = %v", got)
	}
	total := len(res.Node.Children()) + len(res.Node.Super())
	if total != 2 {
		t.Fatalf("children+super = %d, want 2", total)
	}
}

func TestIsCovered(t *testing.T) {
	tr := New()
	tr.Insert(xp("/a"))
	if !tr.IsCovered(xp("/a/b")) {
		t.Error("/a/b should be covered by /a")
	}
	if !tr.IsCovered(xp("/a")) {
		t.Error("exact duplicate counts as covered")
	}
	if tr.IsCovered(xp("/b")) {
		t.Error("/b is not covered")
	}
}

func TestCoveredByQuery(t *testing.T) {
	tr := New()
	tr.Insert(xp("/a/b"))
	tr.Insert(xp("/a/c"))
	tr.Insert(xp("/x"))
	got := keys(tr.CoveredBy(xp("/a")))
	if strings.Join(got, " ") != "/a/b /a/c" {
		t.Fatalf("CoveredBy(/a) = %v", got)
	}
}

func TestRemoveSplicesChildren(t *testing.T) {
	tr := New()
	tr.Insert(xp("/a"))
	tr.Insert(xp("/a/b"))
	tr.Insert(xp("/a/b/c"))
	n := tr.Lookup(xp("/a/b"))
	tr.Remove(n)
	if tr.Size() != 2 {
		t.Fatalf("Size = %d", tr.Size())
	}
	if tr.Lookup(xp("/a/b")) != nil {
		t.Fatal("removed node still indexed")
	}
	a := tr.Lookup(xp("/a"))
	if got := keys(a.Children()); strings.Join(got, " ") != "/a/b/c" {
		t.Fatalf("children after splice = %v", got)
	}
	if tr.Lookup(xp("/a/b/c")).Parent() != a {
		t.Fatal("spliced child has wrong parent")
	}
	// Removing twice is a no-op.
	tr.Remove(n)
	if tr.Size() != 2 {
		t.Fatal("double remove changed size")
	}
}

func TestRemoveDropsSuperPointers(t *testing.T) {
	tr := New()
	tr.Insert(xp("/a/b/c"))
	tr.Insert(xp("/x/b/d"))
	res := tr.Insert(xp("*/b"))
	var target *Node
	if len(res.Node.Super()) > 0 {
		target = res.Node.Super()[0]
	} else {
		t.Skip("layout adopted both nodes as children")
	}
	tr.Remove(target)
	for _, s := range res.Node.Super() {
		if s == target {
			t.Fatal("super pointer to removed node survives")
		}
	}
}

func TestMatchPath(t *testing.T) {
	tr := New()
	for _, s := range []string{"/a", "/a/b", "/a/c", "/x/y", "b/c"} {
		tr.Insert(xp(s))
	}
	var got []string
	tr.MatchPath([]string{"a", "b", "z"}, func(n *Node) {
		got = append(got, n.XPE.String())
	})
	sort.Strings(got)
	if strings.Join(got, " ") != "/a /a/b" {
		t.Fatalf("MatchPath = %v", got)
	}
	if !tr.MatchPathAny([]string{"a", "b", "c"}) {
		t.Error("MatchPathAny missed a/b/c")
	}
	if tr.MatchPathAny([]string{"q"}) {
		t.Error("MatchPathAny matched q")
	}
}

func TestDepthAndString(t *testing.T) {
	tr := New()
	tr.Insert(xp("/a"))
	tr.Insert(xp("/a/b"))
	tr.Insert(xp("/a/b/c"))
	if tr.Depth() != 3 {
		t.Errorf("Depth = %d", tr.Depth())
	}
	s := tr.String()
	if !strings.Contains(s, "/a/b/c") {
		t.Errorf("String = %q", s)
	}
}

func randomXPE(r *rand.Rand, maxLen int) *xpath.XPE {
	alphabet := []string{"a", "b", "c", xpath.Wildcard}
	n := 1 + r.Intn(maxLen)
	s := &xpath.XPE{Relative: r.Intn(4) == 0}
	for i := 0; i < n; i++ {
		axis := xpath.Child
		if (i > 0 || !s.Relative) && r.Intn(5) == 0 {
			axis = xpath.Descendant
		}
		s.Steps = append(s.Steps, xpath.Step{Axis: axis, Name: alphabet[r.Intn(len(alphabet))]})
	}
	return s
}

// checkInvariants verifies the tree's structural invariants: parents cover
// children, the index is consistent, size matches, and super pointers are
// symmetric covering relations.
func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	count := 0
	tr.Walk(func(n *Node) {
		count++
		if got := tr.Lookup(n.XPE); got != n {
			t.Fatalf("index inconsistent for %s", n.XPE)
		}
		if p := n.Parent(); p != nil && !cover.Covers(p.XPE, n.XPE) {
			t.Fatalf("parent %s does not cover child %s", p.XPE, n.XPE)
		}
		for _, s := range n.Super() {
			if !cover.Covers(n.XPE, s.XPE) {
				t.Fatalf("super pointer %s -> %s without covering", n.XPE, s.XPE)
			}
		}
	})
	if count != tr.Size() {
		t.Fatalf("walked %d nodes, Size = %d", count, tr.Size())
	}
}

func TestQuickInvariantsUnderInsert(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	tr := New()
	for i := 0; i < 600; i++ {
		tr.Insert(randomXPE(r, 4))
	}
	checkInvariants(t, tr)
}

func TestQuickInvariantsUnderChurn(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	tr := New()
	var live []*Node
	for i := 0; i < 1500; i++ {
		if len(live) > 0 && r.Intn(3) == 0 {
			j := r.Intn(len(live))
			tr.Remove(live[j])
			live = append(live[:j], live[j+1:]...)
			continue
		}
		res := tr.Insert(randomXPE(r, 4))
		if !res.Duplicate {
			live = append(live, res.Node)
		}
	}
	checkInvariants(t, tr)
}

// TestQuickMatchEquivalence: covering-pruned matching returns exactly the
// subscriptions a linear scan finds.
func TestQuickMatchEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	tr := New()
	var all []*xpath.XPE
	for i := 0; i < 400; i++ {
		res := tr.Insert(randomXPE(r, 4))
		if !res.Duplicate {
			all = append(all, res.Node.XPE)
		}
	}
	alphabet := []string{"a", "b", "c", "d"}
	for i := 0; i < 500; i++ {
		n := 1 + r.Intn(8)
		path := make([]string, n)
		for j := range path {
			path[j] = alphabet[r.Intn(len(alphabet))]
		}
		want := make(map[string]bool)
		for _, x := range all {
			if x.MatchesPath(path) {
				want[x.Key()] = true
			}
		}
		got := make(map[string]bool)
		tr.MatchPath(path, func(n *Node) { got[n.XPE.Key()] = true })
		if len(got) != len(want) {
			t.Fatalf("path %v: tree found %d, scan found %d\n%s", path, len(got), len(want), tr)
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("path %v: tree missed %s", path, k)
			}
		}
	}
}

// TestQuickCoveredNeverForwardedIsSafe: for any publication matching a
// covered subscription, some top-level subscription also matches — dropping
// covered subscriptions from forwarding loses nothing.
func TestQuickCoveredSafety(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	tr := New()
	for i := 0; i < 300; i++ {
		tr.Insert(randomXPE(r, 4))
	}
	alphabet := []string{"a", "b", "c", "d"}
	for i := 0; i < 2000; i++ {
		n := 1 + r.Intn(8)
		path := make([]string, n)
		for j := range path {
			path[j] = alphabet[r.Intn(len(alphabet))]
		}
		anyMatch := false
		tr.Walk(func(nd *Node) {
			if nd.XPE.MatchesPath(path) {
				anyMatch = true
			}
		})
		if anyMatch && !tr.MatchPathAny(path) {
			t.Fatalf("path %v matches a stored subscription but no top-level one", path)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	xpes := make([]*xpath.XPE, 10000)
	for i := range xpes {
		xpes[i] = randomXPE(r, 6)
	}
	b.ResetTimer()
	tr := New()
	for i := 0; i < b.N; i++ {
		tr.Insert(xpes[i%len(xpes)])
	}
}

func BenchmarkMatchPath(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	tr := New()
	for i := 0; i < 5000; i++ {
		tr.Insert(randomXPE(r, 6))
	}
	path := []string{"a", "b", "c", "a", "b"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.MatchPath(path, func(*Node) {})
	}
}
