// Package subtree implements the paper's novel data structure for managing
// subscriptions at a broker: a tree ordered by the covering relation, where
// every parent covers all subscriptions in its subtree, extended with super
// pointers that record covering relations crossing subtree boundaries. The
// tree plus the super pointers form a DAG capturing the covering partial
// order.
//
// The structure serves three routing operations:
//
//   - deciding whether an arriving subscription is covered by an existing
//     one (and need not be forwarded),
//   - finding the existing subscriptions a new subscription covers (which
//     must be unsubscribed when the new one is forwarded), and
//   - matching a publication path against all stored subscriptions with
//     covering-based pruning: once a node fails to match, its entire
//     subtree is skipped, because a publication outside P(parent) cannot be
//     in P(child) ⊆ P(parent).
//
// # Concurrency
//
// A Tree is not internally synchronised, but its operations divide into two
// classes with a guaranteed contract:
//
//   - READ-ONLY: MatchPath, MatchPathAttrs, MatchSymPath, MatchSymPathAttrs,
//     MatchPathAny, MatchPathAnyAttrs, MatchSymPathAnyAttrs, Lookup, Size,
//     Depth, Walk, Stats, TopLevel, Coverers, CoveredBy, CloneWithData,
//     IsCovered, IsCoveredBesides, String, and the Node accessors. These never mutate
//     the tree (they may not even write transient scratch state into it) and
//     are safe to run concurrently with each other. The broker's publication
//     hot path depends on this invariant to match publications in parallel
//     under a shared lock; changing any of these to mutate the tree is a
//     breaking change and must be flagged in review. A race-detector test
//     (TestMatchIsReadOnlyUnderRace) enforces the invariant.
//
//   - MUTATING: Insert, FlatInsert, Remove, and writes through Node.Data.
//     These require exclusive access relative to every other operation.
//
// Visit callbacks run while the traversal holds no lock of its own; callers
// coordinating concurrent readers must not mutate from inside a callback.
package subtree

import (
	"fmt"
	"strings"

	"repro/internal/cover"
	"repro/internal/symtab"
	"repro/internal/xpath"
)

// Node is a stored subscription. Fields are managed by Tree; callers may
// read them and may use Data freely.
type Node struct {
	XPE *xpath.XPE
	// Data is an arbitrary payload (brokers store routing state here).
	Data any

	parent   *Node
	children []*Node
	// super points to top-level nodes this node covers outside its subtree.
	super []*Node
	// superRefs lists nodes whose super pointers reference this node.
	superRefs []*Node
}

// Parent returns the covering parent, or nil for a top-level node.
func (n *Node) Parent() *Node {
	if n.parent != nil && n.parent.XPE == nil {
		return nil // virtual root
	}
	return n.parent
}

// Children returns the directly covered children. The returned slice is the
// tree's own; callers must not modify it.
func (n *Node) Children() []*Node { return n.children }

// Super returns the node's super pointers (covered nodes outside its
// subtree). The returned slice is the tree's own; callers must not modify it.
func (n *Node) Super() []*Node { return n.super }

// Tree is the subscription tree. The zero value is not usable; call New.
type Tree struct {
	root  *Node // virtual root; XPE == nil, covers everything
	size  int
	index map[string]*Node // exact-expression lookup
}

// New returns an empty subscription tree.
func New() *Tree {
	return &Tree{root: &Node{}, index: make(map[string]*Node)}
}

// Size returns the number of stored subscriptions.
func (t *Tree) Size() int { return t.size }

// Lookup returns the node holding an expression exactly equal to x, or nil.
func (t *Tree) Lookup(x *xpath.XPE) *Node { return t.index[x.Key()] }

// InsertResult reports what Insert found and did.
type InsertResult struct {
	// Node is the stored node (a pre-existing one if Duplicate).
	Node *Node
	// Duplicate is true when an identical expression was already stored.
	Duplicate bool
	// Covered is true when the subscription is covered by an existing,
	// different subscription — a covering-based router does not forward it.
	Covered bool
	// NewlyCovered lists the previously top-level nodes that the new
	// subscription covers (they became children or super-pointer targets).
	// A covering-based router unsubscribes these from its neighbours.
	NewlyCovered []*Node
}

// Insert stores subscription x, maintaining the covering order and super
// pointers, and reports the covering relations relevant to routing.
func (t *Tree) Insert(x *xpath.XPE) InsertResult {
	if n := t.index[x.Key()]; n != nil {
		return InsertResult{Node: n, Duplicate: true, Covered: true}
	}
	n := &Node{XPE: x}

	// Find the insertion parent: descend while some child covers x.
	parent := t.root
	covered := false
descent:
	for {
		for _, c := range parent.children {
			if cover.Covers(c.XPE, x) {
				parent = c
				covered = true
				continue descent
			}
		}
		break
	}

	// Among the parent's children, the ones x covers become x's children.
	var adopted []*Node
	kept := parent.children[:0:0]
	for _, c := range parent.children {
		if cover.Covers(x, c.XPE) {
			adopted = append(adopted, c)
		} else {
			kept = append(kept, c)
		}
	}
	parent.children = kept
	n.parent = parent
	n.children = adopted
	for _, c := range adopted {
		c.parent = n
	}
	parent.children = append(parent.children, n)

	// Super pointers: find the remaining top-level nodes x covers elsewhere
	// in the tree. When x is itself covered this scan is skipped — a
	// covered subscription is never forwarded, so its covered set is not
	// needed for routing; the paper makes the same lazy-update observation.
	var external []*Node
	if !covered {
		external = t.topCoveredExcluding(x, n)
	}
	for _, c := range external {
		n.super = append(n.super, c)
		c.superRefs = append(c.superRefs, n)
	}

	newly := make([]*Node, 0, len(adopted)+len(external))
	newly = append(newly, adopted...)
	newly = append(newly, external...)

	t.index[x.Key()] = n
	t.size++
	return InsertResult{Node: n, Covered: covered, NewlyCovered: newly}
}

// FlatInsert stores x directly at the top level without any covering
// analysis. It models the paper's "no covering" baseline: the routing table
// is a plain list, publication matching scans every entry, and no
// subscription ever suppresses another. Flat and covering inserts must not
// be mixed in one tree.
func (t *Tree) FlatInsert(x *xpath.XPE) InsertResult {
	if n := t.index[x.Key()]; n != nil {
		return InsertResult{Node: n, Duplicate: true, Covered: true}
	}
	n := &Node{XPE: x, parent: t.root}
	t.root.children = append(t.root.children, n)
	t.index[x.Key()] = n
	t.size++
	return InsertResult{Node: n}
}

// IsCovered reports whether x is covered by a stored subscription (including
// an exact duplicate).
func (t *Tree) IsCovered(x *xpath.XPE) bool {
	if t.index[x.Key()] != nil {
		return true
	}
	for _, c := range t.root.children {
		if cover.Covers(c.XPE, x) {
			return true
		}
	}
	return false
}

// Coverers returns the stored top-level subscriptions that cover x
// (excluding an exact duplicate node itself). Only the top level matters to
// routers: deeper nodes are covered by their ancestors and were never
// forwarded.
func (t *Tree) Coverers(x *xpath.XPE) []*Node {
	var out []*Node
	for _, c := range t.root.children {
		if c.XPE != x && cover.Covers(c.XPE, x) {
			out = append(out, c)
		}
	}
	return out
}

// IsCoveredBesides reports whether x is covered by a stored top-level
// subscription other than the excluded node. Routers use it when deciding
// whether a subscription uncovered by an unsubscription must be forwarded.
func (t *Tree) IsCoveredBesides(x *xpath.XPE, exclude *Node) bool {
	for _, c := range t.root.children {
		if c == exclude {
			continue
		}
		if cover.Covers(c.XPE, x) {
			return true
		}
	}
	return false
}

// CoveredBy returns the stored top-level subscriptions that x covers. Only
// "higher level" nodes are reported, as the paper notes: nodes deeper in the
// tree are covered by their ancestors and were never forwarded.
func (t *Tree) CoveredBy(x *xpath.XPE) []*Node {
	return t.topCoveredExcluding(x, nil)
}

// topCoveredExcluding walks the top level of the tree collecting nodes
// covered by x, skipping the excluded node itself.
func (t *Tree) topCoveredExcluding(x *xpath.XPE, exclude *Node) []*Node {
	var out []*Node
	for _, c := range t.root.children {
		if c == exclude {
			continue
		}
		if cover.Covers(x, c.XPE) {
			out = append(out, c)
		}
	}
	return out
}

// Remove deletes a stored node. Its children are spliced up to its parent
// (the parent covers them transitively), and super pointers involving the
// node are dropped.
func (t *Tree) Remove(n *Node) {
	if n == nil || n.XPE == nil {
		return
	}
	if t.index[n.XPE.Key()] != n {
		return // not (or no longer) in this tree
	}
	parent := n.parent
	parent.children = removeNode(parent.children, n)
	for _, c := range n.children {
		c.parent = parent
		parent.children = append(parent.children, c)
	}
	// Drop super pointers from n.
	for _, target := range n.super {
		target.superRefs = removeNode(target.superRefs, n)
	}
	// Drop super pointers to n; the pointer owners now cover n's children
	// transitively through the tree, so no replacement pointers are needed
	// for correctness of CoveredBy (which only reports top-level nodes).
	for _, owner := range n.superRefs {
		owner.super = removeNode(owner.super, n)
	}
	delete(t.index, n.XPE.Key())
	t.size--
	n.parent = nil
	n.children = nil
	n.super = nil
	n.superRefs = nil
}

func removeNode(s []*Node, n *Node) []*Node {
	for i, c := range s {
		if c == n {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// matchWalk is the single covering-pruned traversal behind every MatchPath*
// variant: it invokes visit for every stored subscription whose expression
// satisfies matches, skipping the entire subtree of any node that fails —
// sound because a parent covers its subtree, so a publication outside
// P(parent) cannot be in P(child). It is read-only (see the package
// concurrency contract); the wrappers below differ only in the predicate
// they close over.
func (t *Tree) matchWalk(matches func(*xpath.XPE) bool, visit func(*Node)) {
	var walk func(n *Node)
	walk = func(n *Node) {
		if !matches(n.XPE) {
			return
		}
		visit(n)
		for _, c := range n.children {
			walk(c)
		}
	}
	for _, c := range t.root.children {
		walk(c)
	}
}

// matchAny is the shared top-level scan behind the MatchPathAny* variants.
// Because every node is covered by its top-level ancestor, only the top
// level needs checking.
func (t *Tree) matchAny(matches func(*xpath.XPE) bool) bool {
	for _, c := range t.root.children {
		if matches(c.XPE) {
			return true
		}
	}
	return false
}

// MatchPath invokes visit for every stored subscription matching the
// publication path, pruning subtrees whose root fails to match. It is
// read-only and safe for concurrent use with other readers (see the package
// comment).
func (t *Tree) MatchPath(path []string, visit func(*Node)) {
	t.matchWalk(func(x *xpath.XPE) bool { return x.MatchesPath(path) }, visit)
}

// MatchPathAttrs is MatchPath with attribute predicates evaluated against
// the publication's per-element attributes. Pruning stays sound because the
// tree's covering order is predicate-aware: a parent admits every
// publication its children admit. Like MatchPath it is read-only and safe
// for concurrent use with other readers.
func (t *Tree) MatchPathAttrs(path []string, attrs []map[string]string, visit func(*Node)) {
	t.matchWalk(func(x *xpath.XPE) bool { return x.MatchesPathAttrs(path, attrs) }, visit)
}

// MatchSymPath is MatchPath over an interned publication path — the broker
// data plane's representation. Read-only, like every Match* traversal.
func (t *Tree) MatchSymPath(path []symtab.Sym, visit func(*Node)) {
	t.matchWalk(func(x *xpath.XPE) bool { return x.MatchesSymPath(path) }, visit)
}

// MatchSymPathAttrs is MatchPathAttrs over an interned publication path.
// Read-only, like every Match* traversal.
func (t *Tree) MatchSymPathAttrs(path []symtab.Sym, attrs []map[string]string, visit func(*Node)) {
	t.matchWalk(func(x *xpath.XPE) bool { return x.MatchesSymPathAttrs(path, attrs) }, visit)
}

// MatchPathAnyAttrs reports whether any stored subscription matches the
// annotated path.
func (t *Tree) MatchPathAnyAttrs(path []string, attrs []map[string]string) bool {
	return t.matchAny(func(x *xpath.XPE) bool { return x.MatchesPathAttrs(path, attrs) })
}

// MatchPathAny reports whether any stored subscription matches the path.
func (t *Tree) MatchPathAny(path []string) bool {
	return t.matchAny(func(x *xpath.XPE) bool { return x.MatchesPath(path) })
}

// MatchSymPathAnyAttrs reports whether any stored subscription matches the
// interned annotated path — the edge client filter's hot-path form.
func (t *Tree) MatchSymPathAnyAttrs(path []symtab.Sym, attrs []map[string]string) bool {
	return t.matchAny(func(x *xpath.XPE) bool { return x.MatchesSymPathAttrs(path, attrs) })
}

// TopLevel returns the maximal stored subscriptions (covered by nothing in
// the tree except possibly via incomparable super-pointer owners).
func (t *Tree) TopLevel() []*Node {
	out := make([]*Node, len(t.root.children))
	copy(out, t.root.children)
	return out
}

// Walk visits every stored node in depth-first order.
func (t *Tree) Walk(visit func(*Node)) {
	t.matchWalk(func(*xpath.XPE) bool { return true }, visit)
}

// CloneWithData returns a deep structural copy of the tree: every node,
// covering edge, super pointer, and the expression index are duplicated, so
// subsequent mutations of the receiver never reach the copy. Node
// expressions (*xpath.XPE) are shared — they are immutable once stored.
// Each copied node's Data is produced by mapData from the original node
// (nil mapData carries the Data values over unchanged), which lets the
// broker translate its mutable per-node routing state into the immutable
// form its publish snapshot wants. CloneWithData itself is read-only on the
// receiver.
func (t *Tree) CloneWithData(mapData func(*Node) any) *Tree {
	clone := &Tree{root: &Node{}, size: t.size, index: make(map[string]*Node, len(t.index))}
	mapped := make(map[*Node]*Node, len(t.index)+1)
	mapped[t.root] = clone.root
	var copyNode func(n *Node, parent *Node) *Node
	copyNode = func(n *Node, parent *Node) *Node {
		cp := &Node{XPE: n.XPE, parent: parent}
		if mapData != nil {
			cp.Data = mapData(n)
		} else {
			cp.Data = n.Data
		}
		mapped[n] = cp
		if len(n.children) > 0 {
			cp.children = make([]*Node, len(n.children))
			for i, c := range n.children {
				cp.children[i] = copyNode(c, cp)
			}
		}
		clone.index[n.XPE.Key()] = cp
		return cp
	}
	clone.root.children = make([]*Node, len(t.root.children))
	for i, c := range t.root.children {
		clone.root.children[i] = copyNode(c, clone.root)
	}
	// Super pointers reference nodes anywhere in the tree; rewrite them once
	// every node has its copy.
	t.Walk(func(n *Node) {
		cp := mapped[n]
		if len(n.super) > 0 {
			cp.super = make([]*Node, len(n.super))
			for i, s := range n.super {
				cp.super[i] = mapped[s]
			}
		}
		if len(n.superRefs) > 0 {
			cp.superRefs = make([]*Node, len(n.superRefs))
			for i, s := range n.superRefs {
				cp.superRefs[i] = mapped[s]
			}
		}
	})
	return clone
}

// Stats reports the covering structure's shape for observability: stored
// nodes, parent-child edges, and super-pointer edges. Read-only (see the
// package concurrency contract).
func (t *Tree) Stats() (nodes, edges, superEdges int) {
	t.Walk(func(n *Node) {
		nodes++
		edges += len(n.children)
		superEdges += len(n.super)
	})
	return
}

// Depth returns the maximum node depth (1 for children of the root).
func (t *Tree) Depth() int {
	var depth func(n *Node) int
	depth = func(n *Node) int {
		best := 1
		for _, c := range n.children {
			if d := 1 + depth(c); d > best {
				best = d
			}
		}
		return best
	}
	best := 0
	for _, c := range t.root.children {
		if d := depth(c); d > best {
			best = d
		}
	}
	return best
}

// String renders the tree for debugging.
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(n *Node, indent int)
	walk = func(n *Node, indent int) {
		fmt.Fprintf(&b, "%s%s", strings.Repeat("  ", indent), n.XPE)
		if len(n.super) > 0 {
			b.WriteString(" ->")
			for _, s := range n.super {
				fmt.Fprintf(&b, " %s", s.XPE)
			}
		}
		b.WriteByte('\n')
		for _, c := range n.children {
			walk(c, indent+1)
		}
	}
	for _, c := range t.root.children {
		walk(c, 0)
	}
	return b.String()
}
