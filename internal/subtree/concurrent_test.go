package subtree

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/xpath"
)

// TestMatchIsReadOnlyUnderRace enforces the package's concurrency contract:
// every operation documented as READ-ONLY really performs no writes, so the
// race detector stays silent when they all run at once. The broker's shared-
// lock publication path depends on this; if a future change makes any of
// these mutate the tree (caching, rebalancing, ...), this test fails under
// -race and the broker's locking must be revisited.
func TestMatchIsReadOnlyUnderRace(t *testing.T) {
	tree := New()
	for i := 0; i < 40; i++ {
		tree.Insert(xpath.MustParse(fmt.Sprintf("/a/b%d", i%10)))
		tree.Insert(xpath.MustParse(fmt.Sprintf("/a/b%d/c%d", i%10, i)))
		tree.Insert(xpath.MustParse(fmt.Sprintf("//d%d", i%7)))
	}
	probe := xpath.MustParse("/a/b3/c13")
	paths := [][]string{
		{"a", "b3", "c13"},
		{"a", "b1"},
		{"x", "d4"},
		{"a"},
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 200; rep++ {
				for _, p := range paths {
					tree.MatchPath(p, func(n *Node) { _ = n.XPE })
					tree.MatchPathAttrs(p, nil, func(n *Node) { _ = n.Parent() })
					tree.MatchPathAny(p)
					tree.MatchPathAnyAttrs(p, nil)
				}
				tree.Lookup(probe)
				tree.IsCovered(probe)
				tree.Coverers(probe)
				tree.CoveredBy(probe)
				tree.IsCoveredBesides(probe, nil)
				tree.TopLevel()
				tree.Walk(func(n *Node) { _ = n.Children() })
				_ = tree.Size()
				_ = tree.Depth()
				_ = tree.String()
			}
		}()
	}
	wg.Wait()
}
