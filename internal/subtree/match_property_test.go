package subtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dtddata"
	"repro/internal/gen"
	"repro/internal/xpath"
)

// TestMatchPathPruningEquivalentToFlat is the randomized soundness test for
// the covering-pruned publication matching claim (DESIGN.md §2): on the same
// stored subscription set, the covering tree's pruned traversal must report
// exactly the subscriptions a flat full scan reports, for every publication
// path. Workload per trial: 1,000 random NITF XPEs, 500 root-to-leaf paths
// from random NITF documents.
func TestMatchPathPruningEquivalentToFlat(t *testing.T) {
	const (
		trials   = 3
		numXPEs  = 1000
		numPaths = 500
	)
	d := dtddata.NITF()
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			seed := int64(1000 + trial)
			g := &gen.XPathGenerator{
				DTD:        d,
				Wildcard:   0.25,
				Descendant: 0.15,
				MaxLen:     10,
				MinLen:     1,
				Relative:   0.2,
				Rand:       rand.New(rand.NewSource(seed)),
			}
			covering := New()
			flat := New()
			stored := 0
			for stored < numXPEs {
				x := g.Generate()
				if covering.Lookup(x) != nil {
					continue // duplicates collapse to one node in both modes
				}
				covering.Insert(x)
				flat.FlatInsert(x)
				stored++
			}
			if covering.Size() != flat.Size() {
				t.Fatalf("tree sizes diverge: covering %d, flat %d", covering.Size(), flat.Size())
			}

			dg := gen.NewDocGenerator(d, seed+1)
			dg.AvgRepeat = 1.5
			checked := 0
			for checked < numPaths {
				doc := dg.Generate()
				for _, path := range doc.Paths() {
					if checked == numPaths {
						break
					}
					checked++
					got := matchedKeys(covering, path)
					want := matchedKeys(flat, path)
					if !equalKeys(got, want) {
						t.Fatalf("path /%v: pruned traversal matched %d XPEs, flat scan %d\npruned: %v\nflat:   %v",
							path, len(got), len(want), diff(got, want), diff(want, got))
					}
					// The boolean fast path must agree as well.
					if covering.MatchPathAny(path) != (len(want) > 0) {
						t.Fatalf("path /%v: MatchPathAny = %v but %d matches stored",
							path, covering.MatchPathAny(path), len(want))
					}
				}
			}
		})
	}
}

// matchedKeys collects the canonical keys of all subscriptions the tree
// reports for a path, sorted.
func matchedKeys(tree *Tree, path []string) []string {
	var keys []string
	tree.MatchPath(path, func(n *Node) { keys = append(keys, n.XPE.Key()) })
	sort.Strings(keys)
	return keys
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diff returns the elements of a missing from b.
func diff(a, b []string) []string {
	in := make(map[string]bool, len(b))
	for _, k := range b {
		in[k] = true
	}
	var out []string
	for _, k := range a {
		if !in[k] {
			out = append(out, k)
		}
	}
	return out
}

// TestMatchPathAttrsPruningEquivalentToFlat repeats the cross-validation for
// the predicate-aware matcher with random per-element attributes, since
// predicate-aware covering is the more delicate pruning order.
func TestMatchPathAttrsPruningEquivalentToFlat(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	covering := New()
	flat := New()
	attrsOf := []string{"lang", "type", "v"}
	vals := []string{"a", "b", "c"}
	names := []string{"x", "y", "z", "w"}
	randExpr := func() *xpath.XPE {
		n := 1 + r.Intn(4)
		steps := make([]xpath.Step, n)
		for i := range steps {
			axis := xpath.Child
			if r.Float64() < 0.2 {
				axis = xpath.Descendant
			}
			name := names[r.Intn(len(names))]
			if r.Float64() < 0.2 {
				name = xpath.Wildcard
			}
			var preds []xpath.Pred
			if r.Float64() < 0.4 {
				preds = append(preds, xpath.Pred{Attr: attrsOf[r.Intn(len(attrsOf))], Value: vals[r.Intn(len(vals))]})
			}
			steps[i] = xpath.Step{Axis: axis, Name: name, Preds: xpath.EncodePreds(preds)}
		}
		return xpath.New(r.Float64() < 0.3, steps...)
	}
	for stored := 0; stored < 800; {
		x := randExpr()
		if covering.Lookup(x) != nil {
			continue
		}
		covering.Insert(x)
		flat.FlatInsert(x)
		stored++
	}
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(6)
		path := make([]string, n)
		attrs := make([]map[string]string, n)
		for i := range path {
			path[i] = names[r.Intn(len(names))]
			if r.Float64() < 0.6 {
				attrs[i] = map[string]string{attrsOf[r.Intn(len(attrsOf))]: vals[r.Intn(len(vals))]}
			}
		}
		var got, want []string
		covering.MatchPathAttrs(path, attrs, func(n *Node) { got = append(got, n.XPE.Key()) })
		flat.MatchPathAttrs(path, attrs, func(n *Node) { want = append(want, n.XPE.Key()) })
		sort.Strings(got)
		sort.Strings(want)
		if !equalKeys(got, want) {
			t.Fatalf("path %v attrs %v: pruned %d vs flat %d matches\nmissing: %v\nextra: %v",
				path, attrs, len(got), len(want), diff(want, got), diff(got, want))
		}
	}
}
