package subtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dtddata"
	"repro/internal/gen"
	"repro/internal/symtab"
	"repro/internal/xpath"
)

// TestSymPathMatchingEquivalentToStrings is the cross-representation
// soundness test for symbol interning: on random subscription sets and
// random document paths, the interned-symbol matchers must report exactly
// the subscriptions the string matchers report — at the tree level (pruned
// traversal) and at the single-expression level. Any divergence means the
// Sym adapters changed matching semantics, which would silently misroute
// publications.
func TestSymPathMatchingEquivalentToStrings(t *testing.T) {
	const (
		trials   = 3
		numXPEs  = 600
		numPaths = 400
	)
	d := dtddata.NITF()
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			seed := int64(4000 + trial)
			g := &gen.XPathGenerator{
				DTD:        d,
				Wildcard:   0.25,
				Descendant: 0.15,
				MaxLen:     10,
				MinLen:     1,
				Relative:   0.2,
				Rand:       rand.New(rand.NewSource(seed)),
			}
			tree := New()
			var exprs []*xpath.XPE
			for len(exprs) < numXPEs {
				x := g.Generate()
				if tree.Lookup(x) != nil {
					continue
				}
				tree.Insert(x)
				exprs = append(exprs, x)
			}

			dg := gen.NewDocGenerator(d, seed+1)
			dg.AvgRepeat = 1.5
			checked := 0
			for checked < numPaths {
				doc := dg.Generate()
				paths := doc.Paths()
				symPaths := doc.SymPaths()
				if len(symPaths) != len(paths) {
					t.Fatalf("SymPaths returned %d paths, Paths %d", len(symPaths), len(paths))
				}
				for pi, path := range paths {
					if checked == numPaths {
						break
					}
					checked++
					syms := symPaths[pi]

					got := symMatchedKeys(tree, syms)
					want := matchedKeys(tree, path)
					if !equalKeys(got, want) {
						t.Fatalf("path /%v: sym matcher found %d, string matcher %d\nsym-only: %v\nstring-only: %v",
							path, len(got), len(want), diff(got, want), diff(want, got))
					}

					// Single-expression adapters must agree too (the tree
					// walk prunes, so it exercises different code paths).
					for _, x := range exprs[:20] {
						if x.MatchesSymPath(syms) != x.MatchesPath(path) {
							t.Fatalf("XPE %s path /%v: MatchesSymPath = %v, MatchesPath = %v",
								x, path, x.MatchesSymPath(syms), x.MatchesPath(path))
						}
					}
				}
			}
		})
	}
}

// TestSymPathAttrsMatchingEquivalentToStrings repeats the cross-validation
// for the predicate-aware matchers with random per-element attributes.
func TestSymPathAttrsMatchingEquivalentToStrings(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	tree := New()
	attrsOf := []string{"lang", "type", "v"}
	vals := []string{"a", "b", "c"}
	names := []string{"x", "y", "z", "w"}
	var exprs []*xpath.XPE
	for len(exprs) < 600 {
		n := 1 + r.Intn(4)
		steps := make([]xpath.Step, n)
		for i := range steps {
			axis := xpath.Child
			if r.Float64() < 0.2 {
				axis = xpath.Descendant
			}
			name := names[r.Intn(len(names))]
			if r.Float64() < 0.2 {
				name = xpath.Wildcard
			}
			var preds []xpath.Pred
			if r.Float64() < 0.4 {
				preds = append(preds, xpath.Pred{Attr: attrsOf[r.Intn(len(attrsOf))], Value: vals[r.Intn(len(vals))]})
			}
			steps[i] = xpath.Step{Axis: axis, Name: name, Preds: xpath.EncodePreds(preds)}
		}
		x := xpath.New(r.Float64() < 0.3, steps...)
		if tree.Lookup(x) != nil {
			continue
		}
		tree.Insert(x)
		exprs = append(exprs, x)
	}
	for trial := 0; trial < 400; trial++ {
		n := 1 + r.Intn(6)
		path := make([]string, n)
		attrs := make([]map[string]string, n)
		for i := range path {
			path[i] = names[r.Intn(len(names))]
			if r.Float64() < 0.6 {
				attrs[i] = map[string]string{attrsOf[r.Intn(len(attrsOf))]: vals[r.Intn(len(vals))]}
			}
		}
		syms := symtab.InternPath(path)
		var got, want []string
		tree.MatchSymPathAttrs(syms, attrs, func(n *Node) { got = append(got, n.XPE.Key()) })
		tree.MatchPathAttrs(path, attrs, func(n *Node) { want = append(want, n.XPE.Key()) })
		sort.Strings(got)
		sort.Strings(want)
		if !equalKeys(got, want) {
			t.Fatalf("path %v attrs %v: sym %d vs string %d matches\nsym-only: %v\nstring-only: %v",
				path, attrs, len(got), len(want), diff(got, want), diff(want, got))
		}
		if tree.MatchSymPathAnyAttrs(syms, attrs) != (len(want) > 0) {
			t.Fatalf("path %v: MatchSymPathAnyAttrs = %v but %d matches stored",
				path, tree.MatchSymPathAnyAttrs(syms, attrs), len(want))
		}
		for _, x := range exprs[:20] {
			if x.MatchesSymPathAttrs(syms, attrs) != x.MatchesPathAttrs(path, attrs) {
				t.Fatalf("XPE %s path %v attrs %v: sym = %v, string = %v",
					x, path, attrs, x.MatchesSymPathAttrs(syms, attrs), x.MatchesPathAttrs(path, attrs))
			}
		}
	}
}

// symMatchedKeys collects the canonical keys of all subscriptions the tree
// reports for an interned path, sorted.
func symMatchedKeys(tree *Tree, path []symtab.Sym) []string {
	var keys []string
	tree.MatchSymPath(path, func(n *Node) { keys = append(keys, n.XPE.Key()) })
	sort.Strings(keys)
	return keys
}
