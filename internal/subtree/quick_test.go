package subtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cover"
	"repro/internal/xpath"
)

// TestQuickInsertReportsExactCoverState: Insert's Covered flag agrees with a
// brute-force covering check against all previously stored expressions, and
// NewlyCovered contains exactly the previously top-level expressions the new
// one covers.
func TestQuickInsertReportsExactCoverState(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New()
		var stored []*xpath.XPE
		for i := 0; i < 60; i++ {
			x := randomXPE(r, 4)
			// Brute-force expectations before the insert mutates the tree.
			dup := tr.Lookup(x) != nil
			expectCovered := dup
			for _, y := range stored {
				if !y.Equal(x) && cover.Covers(y, x) {
					expectCovered = true
					break
				}
			}
			top := tr.TopLevel()
			expectNewly := 0
			if !expectCovered {
				for _, n := range top {
					if cover.Covers(x, n.XPE) {
						expectNewly++
					}
				}
			}
			res := tr.Insert(x)
			if !dup {
				stored = append(stored, x)
			}
			if res.Duplicate != dup {
				return false
			}
			if dup {
				continue
			}
			if res.Covered != expectCovered {
				return false
			}
			if !res.Covered && len(res.NewlyCovered) != expectNewly {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickTopLevelIsMaximalSet: after arbitrary inserts, the top level is
// exactly the set of stored expressions not strictly covered by any other
// stored expression... except where equal-set expressions nest (mutual
// covering), in which case one of them represents the other at the top.
func TestQuickTopLevelIsMaximalSet(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New()
		var stored []*xpath.XPE
		for i := 0; i < 40; i++ {
			res := tr.Insert(randomXPE(r, 4))
			if !res.Duplicate {
				stored = append(stored, res.Node.XPE)
			}
		}
		top := make(map[string]bool)
		for _, n := range tr.TopLevel() {
			top[n.XPE.Key()] = true
		}
		for _, x := range stored {
			covered := false
			for _, y := range stored {
				if !y.Equal(x) && cover.Covers(y, x) && !cover.Covers(x, y) {
					covered = true
					break
				}
			}
			// A strictly-covered expression must not be top-level; an
			// uncovered one must be reachable at the top unless a mutual-
			// covering twin holds its spot.
			if covered && top[x.Key()] {
				// Strictly covered expressions may still sit at the top if
				// they arrived before their coverer and the coverer was
				// inserted elsewhere... which Insert prevents by adoption.
				return false
			}
			if !covered && !top[x.Key()] {
				mutual := false
				for _, y := range stored {
					if !y.Equal(x) && cover.Covers(y, x) && cover.Covers(x, y) {
						mutual = true
						break
					}
				}
				if !mutual {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
