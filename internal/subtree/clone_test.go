package subtree

import (
	"reflect"
	"testing"

	"repro/internal/xpath"
)

// buildCloneFixture returns a tree with covering depth, payloads, and a
// hand-wired super pointer (Insert adopts every covered top-level node as a
// child, so cross-subtree super pointers are constructed directly here —
// CloneWithData must remap them whenever they exist).
func buildCloneFixture(t *testing.T) (*Tree, *Node, *Node) {
	t.Helper()
	tr := New()
	top := tr.Insert(xpath.MustParse("/a")).Node
	mid := tr.Insert(xpath.MustParse("/a/b")).Node
	leaf := tr.Insert(xpath.MustParse("/a/b/c")).Node
	other := tr.Insert(xpath.MustParse("/x/y")).Node
	top.Data = []string{"h1", "h2"}
	mid.Data = []string{"h3"}
	leaf.Data = map[string]bool{"h4": true}
	// Wire mid -> other as a super pointer (a covering relation crossing
	// subtree boundaries).
	mid.super = append(mid.super, other)
	other.superRefs = append(other.superRefs, mid)
	return tr, mid, other
}

func TestCloneWithDataPreservesStructureAndSuperPointers(t *testing.T) {
	tr, mid, other := buildCloneFixture(t)
	clone := tr.CloneWithData(nil)

	if clone.Size() != tr.Size() {
		t.Fatalf("clone size %d, want %d", clone.Size(), tr.Size())
	}
	n1, e1, s1 := tr.Stats()
	n2, e2, s2 := clone.Stats()
	if n1 != n2 || e1 != e2 || s1 != s2 {
		t.Fatalf("stats diverge: orig (%d,%d,%d) clone (%d,%d,%d)", n1, e1, s1, n2, e2, s2)
	}
	if s2 != 1 {
		t.Fatalf("super edges = %d, want the wired one", s2)
	}

	cmid := clone.Lookup(mid.XPE)
	cother := clone.Lookup(other.XPE)
	if cmid == nil || cother == nil {
		t.Fatal("clone index must resolve every expression")
	}
	if cmid == mid || cother == other {
		t.Fatal("clone shares node identity with the original")
	}
	// Super pointers must be REMAPPED into the clone, not aliased.
	if len(cmid.Super()) != 1 || cmid.Super()[0] != cother {
		t.Fatalf("clone super pointer = %v, want the clone's own node", cmid.Super())
	}
	if len(cother.superRefs) != 1 || cother.superRefs[0] != cmid {
		t.Fatal("clone superRefs must point at clone nodes")
	}
	// Parent/child wiring is remapped too.
	if cmid.Parent() == nil || cmid.Parent() == mid.Parent() {
		t.Fatal("clone parent must be the clone's own node")
	}
	if cmid.Parent().XPE.String() != "/a" {
		t.Fatalf("clone parent = %s", cmid.Parent().XPE)
	}
	// Expressions are shared (immutable), Data carried over by nil mapData.
	if cmid.XPE != mid.XPE {
		t.Fatal("expressions should be shared pointers")
	}
	if !reflect.DeepEqual(cmid.Data, mid.Data) {
		t.Fatalf("Data not carried over: %v vs %v", cmid.Data, mid.Data)
	}
}

func TestCloneWithDataMapsData(t *testing.T) {
	tr, _, _ := buildCloneFixture(t)
	clone := tr.CloneWithData(func(n *Node) any {
		if hops, ok := n.Data.([]string); ok {
			return len(hops)
		}
		return nil
	})
	var got []any
	clone.Walk(func(n *Node) { got = append(got, n.Data) })
	counts := map[any]int{}
	for _, d := range got {
		counts[d]++
	}
	// /a -> 2 hops, /a/b -> 1 hop, the map payload and the plain node -> nil.
	if counts[2] != 1 || counts[1] != 1 || counts[nil] != 2 {
		t.Fatalf("mapped data distribution %v", counts)
	}
	// The original keeps its payloads untouched.
	orig := 0
	tr.Walk(func(n *Node) {
		if _, ok := n.Data.([]string); ok {
			orig++
		}
	})
	if orig != 2 {
		t.Fatalf("original payloads disturbed: %d", orig)
	}
}

func TestCloneWithDataDeepCopyIndependence(t *testing.T) {
	tr, mid, _ := buildCloneFixture(t)
	clone := tr.CloneWithData(nil)
	sizeBefore := clone.Size()
	superBefore := len(clone.Lookup(mid.XPE).Super())

	// Mutate the original in every structural way: insert, remove (which
	// also drops the wired super pointer), and payload writes.
	tr.Insert(xpath.MustParse("/a/b/c/d"))
	tr.Remove(tr.Lookup(xpath.MustParse("/x/y")))
	mid.Data = []string{"overwritten"}

	if clone.Size() != sizeBefore {
		t.Fatalf("clone size changed to %d after original mutation", clone.Size())
	}
	if clone.Lookup(xpath.MustParse("/a/b/c/d")) != nil {
		t.Fatal("insert into original leaked into clone")
	}
	if clone.Lookup(xpath.MustParse("/x/y")) == nil {
		t.Fatal("remove from original leaked into clone")
	}
	if got := len(clone.Lookup(mid.XPE).Super()); got != superBefore {
		t.Fatalf("clone super pointers changed: %d -> %d", superBefore, got)
	}
	if got := clone.Lookup(mid.XPE).Data.([]string); got[0] != "h3" {
		t.Fatalf("payload write leaked into clone: %v", got)
	}
	// And the other direction: mutating the clone leaves the original alone.
	clone.Remove(clone.Lookup(xpath.MustParse("/a/b/c")))
	if tr.Lookup(xpath.MustParse("/a/b/c")) == nil {
		t.Fatal("clone removal leaked into original")
	}
}
