package stream

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/xmldoc"
)

// The scanner's contract is boolean parity with xmldoc.Parse (which is
// encoding/xml in strict mode): every input here must be accepted by both
// or rejected by both. The table walks the parser's edge cases one
// construct at a time; the differential and fuzz tests cover the cross
// products.

func checkParity(t *testing.T, src string) {
	t.Helper()
	_, perr := xmldoc.Parse([]byte(src))
	serr := Scan([]byte(src), Limits{})
	if (perr == nil) != (serr == nil) {
		t.Errorf("verdict divergence on %q:\n  xmldoc.Parse: %v\n  stream.Scan:  %v", src, perr, serr)
	}
}

func TestScanParityStructure(t *testing.T) {
	for _, src := range []string{
		``, ` `, `x`, `<a/>`, `<a></a>`, `<a>text</a>`, `<a><b/><b/></a>`,
		`<a>`, `</a>`, `<a></b>`, `<a><b></a></b>`, `<a/><b/>`,
		`<a/>trailing`, `leading<a/>`, `  <a/>  `,
		`<a`, `<a b`, `<a /`, `< a/>`, `<a/ >`, `<a//>`,
		`<a><b></b>`, `<a></a></a>`, `<a><a></a></a>`,
		"\xef\xbb\xbf<a/>", // BOM is not valid before the root tag
		`<a>\u0000</a>`,    // literal backslash-u, fine
		"<a>\x00</a>", "<a>\x0b</a>", "<a>\x7f</a>", "<a>\xc3\x28</a>",
		"<a>\xed\xa0\x80</a>", // UTF-8-encoded surrogate
		"<a>\xf4\x8f\xbf\xbf</a>", "<a>\xf4\x90\x80\x80</a>",
		"<a>\r\n\t</a>", "<a>]]</a>", "<a>]]></a>", "<a>x]]&gt;y</a>",
		`<a>]] ></a>`, "<a><![CDATA[x]]>]]></a>",
	} {
		checkParity(t, src)
	}
}

func TestScanParityNames(t *testing.T) {
	for _, src := range []string{
		`<ns:a></ns:a>`, `<ns:a/>`, `<ns:a></a>`, `<a></ns:a>`,
		`<x:y:z/>`, `<:a/>`, `<a:/>`, `<:a></:a>`, `<a:></a:>`,
		`<1a/>`, `<-a/>`, `<.a/>`, `<a-b.c_d/>`, `<_a/>`, `<a1/>`,
		"<\xc3\xa9l\xc3\xa9ment/>", // élément
		"<a\xc2\xb7b/>",            // middle dot: valid continuation
		"<\xc2\xb7a/>",             // middle dot: invalid start
		"<\xff\xfe/>",              // invalid UTF-8 name
		`<a xmlns="u"/>`, `<x:a xmlns:x="u"></x:a>`, `<x:a xmlns:y="u"/>`,
		`<a x:b="1"/>`, `<a xmlns:x="u" x:b="1"/>`, `<a x:y:z="1"/>`,
	} {
		checkParity(t, src)
	}
}

func TestScanParityAttrs(t *testing.T) {
	for _, src := range []string{
		`<a b="c"/>`, `<a b='c'/>`, `<a b="c" d="e"/>`, `<a b="c"d="e"/>`,
		`<a b="c"></a>`, `<a  b = "c" />`, `<a b=c/>`, `<a b=/>`, `<a b/>`,
		`<a b="c/>`, `<a b="c'/>`, `<a b='c"d'/>`, `<a b="c'd"/>`,
		`<a b="c" b="d"/>`, `<a b="<"/>`, `<a b=">"/>`, `<a b="&lt;"/>`,
		`<a b="x]]>y"/>`, `<a b="&"/>`, `<a b="&amp"/>`, "<a b=\"\x01\"/>",
		`<a ="v"/>`, `<a b"v"/>`, `<a b ="v" c= 'w'/>`,
	} {
		checkParity(t, src)
	}
}

func TestScanParityEntities(t *testing.T) {
	for _, src := range []string{
		`<a>&lt;&gt;&amp;&apos;&quot;</a>`,
		`<a>&#65;&#x41;&#x4a;&#X41;</a>`, // &#X is not a hex marker
		`<a>&#0;</a>`, `<a>&#8;</a>`, `<a>&#9;</a>`, `<a>&#31;</a>`,
		`<a>&#55296;</a>`, `<a>&#xD800;</a>`, `<a>&#xFFFE;</a>`,
		`<a>&#x10FFFF;</a>`, `<a>&#x110000;</a>`, `<a>&#1114112;</a>`,
		`<a>&#99999999999999999999;</a>`, `<a>&#;</a>`, `<a>&#x;</a>`,
		`<a>&#xg;</a>`, `<a>&#65</a>`, `<a>&#65 ;</a>`,
		`<a>&nbsp;</a>`, `<a>&unknown;</a>`, `<a>&lt</a>`, `<a>&lt ;</a>`,
		`<a>&;</a>`, `<a>& lt;</a>`, `<a>&</a>`, `<a>&l`, `<a>&#`,
		`<a>&amp;amp;</a>`, `<a>]]&gt;</a>`, `<a>&quot;]]&gt;&quot;</a>`,
		"<a>&\xc3\xa9;</a>", // non-ASCII entity name
	} {
		checkParity(t, src)
	}
}

func TestScanParityCommentsPIs(t *testing.T) {
	for _, src := range []string{
		`<!-- c --><a/>`, `<a><!-- c --></a>`, `<a/><!-- c -->`,
		`<!----><a/>`, `<!-----><a/>`, `<!------><a/>`, // "--" illegal inside
		`<!-- a-b --><a/>`, `<!-- a--b --><a/>`, `<!--- x ---><a/>`,
		`<!- bad --><a/>`, `<!--unterminated <a/>`, `<a><!-- <b> --></a>`,
		"<!-- \x01 --><a/>", // comments are not character-validated
		`<?pi data?><a/>`, `<a><?pi?></a>`, `<?pi ??></a>`,
		`<?pi unterminated <a/>`, `<?1bad?><a/>`, `<??></a>`,
		`<?x:y:z data?><a/>`, // PI targets have no namespace colon rules
		`<?xml version="1.0"?><a/>`, `<?xml version='1.0'?><a/>`,
		`<?xml version="2.0"?><a/>`, `<?xml version=""?><a/>`,
		`<?xml version="1.0" encoding="utf-8"?><a/>`,
		`<?xml version="1.0" encoding="UTF-8"?><a/>`,
		`<?xml version="1.0" encoding="Utf-8"?><a/>`,
		`<?xml version="1.0" encoding="latin-1"?><a/>`,
		`<?xml encoding=unquoted?><a/>`, `<?xml notversion="2.0"?><a/>`,
		`<a><?xml version="2.0"?></a>`, // "xml" PI rules apply anywhere
	} {
		checkParity(t, src)
	}
}

func TestScanParityCDATADirectives(t *testing.T) {
	for _, src := range []string{
		`<a><![CDATA[hello]]></a>`, `<a><![CDATA[]]></a>`,
		`<a><![CDATA[ <b> & </b> ]]></a>`, `<a><![CDATA[ ]] ]]></a>`,
		`<a><![CDATA[a]b]]c]]></a>`, `<a><![CDATA[unterminated</a>`,
		`<a><![CDAT[x]]></a>`, `<a><![cdata[x]]></a>`, `<![CDATA[x]]><a/>`,
		"<a><![CDATA[\x02]]></a>", "<a><![CDATA[\xff]]></a>",
		`<!DOCTYPE a><a/>`, `<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>`,
		`<!DOCTYPE a [<!-- > -->]><a/>`, `<!DOCTYPE a "unclosed><a/>`,
		`<!DOCTYPE a '>' ><a/>`, `<!DOCTYPE a [" <!-- "]><a/>`,
		`<!DOCTYPE a <inner <more>>><a/>`, `<!DOCTYPE a <!-><a/>`,
		`<!'><a/>`, // first directive byte bypasses the quote machine
		`<!DOCTYPE unterminated <a/>`, `<!X <!-- --> Y><a/>`,
		`<!X <!-- > --> Y><a/>`, `<!X <!--> Y><a/>`,
	} {
		checkParity(t, src)
	}
}

// TestScanParityGenerated crosses a set of fragments through a set of
// document templates — cheap combinatorial coverage of constructs in
// element, attribute, and top-level positions.
func TestScanParityGenerated(t *testing.T) {
	fragments := []string{
		``, `x`, `&lt;`, `&#x41;`, `&bad;`, `]]>`, `<!-- c -->`, `<b/>`,
		`<b>y</b>`, `<?p d?>`, `<![CDATA[z]]>`, "\r\n", `&`, `<`, `>`,
	}
	templates := []string{
		`<a>%s</a>`, `<a t="v">%s</a>`, `%s<a/>`, `<a/>%s`, `<a><b>%s</b></a>`,
	}
	for _, tpl := range templates {
		for _, frag := range fragments {
			checkParity(t, fmt.Sprintf(tpl, frag))
		}
	}
	// Attribute-value position (quotes differ from element content).
	for _, frag := range []string{
		``, `x`, `&lt;`, `&#x41;`, `&bad;`, `]]>`, `'`, `"`, `<`, `>`, "\r\nx",
	} {
		checkParity(t, fmt.Sprintf(`<a t="%s"/>`, frag))
		checkParity(t, fmt.Sprintf(`<a t='%s'/>`, frag))
	}
}

// TestAttrDecodeParity compares the lazily-decoded attribute values (and
// local names, in document order) against what encoding/xml produces.
func TestAttrDecodeParity(t *testing.T) {
	for _, src := range []string{
		`<a b="plain"/>`,
		`<a b="&lt;&gt;&amp;&apos;&quot;"/>`,
		`<a b="&#65;&#x2603;x"/>`,
		"<a b=\"one\rtwo\"/>",
		"<a b=\"one\r\ntwo\"/>",
		"<a b=\"\r&#10;\n\"/>",
		"<a b=\"a\r\"/>",
		`<a b="" c="2"/>`,
		`<a b="dup" b="wins"/>`,
		`<ns:a ns:b="v" xmlns:ns="u"/>`,
		`<a b="&#xD7FF;&#xE000;"/>`,
		"<a b='mixed\"quote'/>",
	} {
		doc, err := xmldoc.Parse([]byte(src))
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		var got [][2]string
		var sc scanner
		sc.reset([]byte(src), Limits{})
		sc.onOpen = func(local span, attrs []attrSpan) {
			for _, a := range attrs {
				got = append(got, [2]string{
					string(a.local.of(sc.data)),
					decodeAttrValue(sc.data, a),
				})
			}
		}
		if err := sc.run(); err != nil {
			t.Fatalf("Scan(%q): %v", src, err)
		}
		var want [][2]string
		var walk func(e *xmldoc.Elem)
		walk = func(e *xmldoc.Elem) {
			for _, a := range e.Attrs {
				want = append(want, [2]string{a.Name, a.Value})
			}
			for _, c := range e.Children {
				walk(c)
			}
		}
		walk(doc.Root)
		if len(got) != len(want) {
			t.Fatalf("%q: %d attrs scanned, %d parsed", src, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%q attr %d: scanned %q=%q, parsed %q=%q",
					src, i, got[i][0], got[i][1], want[i][0], want[i][1])
			}
		}
	}
}

// Wire-bound enforcement: the incremental checks during the scan must agree
// with CheckDoc over the parsed tree, including exactly at the bounds.

func nestedDoc(depth int) string {
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("<a>")
	}
	b.WriteString("<leaf/>")
	for i := 0; i < depth; i++ {
		b.WriteString("</a>")
	}
	return b.String()
}

func flatDoc(elems int) string {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 1; i < elems; i++ {
		b.WriteString("<c/>")
	}
	b.WriteString("</r>")
	return b.String()
}

func TestScanWireBounds(t *testing.T) {
	cases := []struct {
		name string
		src  string
		ok   bool
	}{
		// nestedDoc(d) has depth d+1 (the leaf), i.e. the leaf has d ancestors.
		{"depth-at-bound", nestedDoc(MaxDocDepth), true},
		{"depth-over-bound", nestedDoc(MaxDocDepth + 1), false},
		{"elems-at-bound", flatDoc(MaxDocElems), true},
		{"elems-over-bound", flatDoc(MaxDocElems + 1), false},
		{"name-at-bound", "<" + strings.Repeat("n", MaxDocName) + "/>", true},
		{"name-over-bound", "<" + strings.Repeat("n", MaxDocName+1) + "/>", false},
		// Attribute names and prefixes are not bounded (local name only).
		{"attr-name-unbounded", `<a ` + strings.Repeat("n", MaxDocName+1) + `="v"/>`, true},
		{"prefix-unbounded", "<" + strings.Repeat("p", MaxDocName) + ":a/>", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serr := Scan([]byte(tc.src), WireLimits)
			if (serr == nil) != tc.ok {
				t.Fatalf("Scan: err=%v, want ok=%v", serr, tc.ok)
			}
			doc, perr := xmldoc.Parse([]byte(tc.src))
			if perr != nil {
				t.Fatalf("Parse: %v", perr)
			}
			cerr := CheckDoc(doc, WireLimits)
			if (cerr == nil) != (serr == nil) {
				t.Fatalf("bound divergence: Scan=%v CheckDoc=%v", serr, cerr)
			}
		})
	}
}

func TestScanLimitsZeroUnbounded(t *testing.T) {
	src := nestedDoc(MaxDocDepth + 10)
	if err := Scan([]byte(src), Limits{}); err != nil {
		t.Fatalf("unbounded Scan rejected: %v", err)
	}
	if err := Scan([]byte(src), WireLimits); err == nil {
		t.Fatal("WireLimits Scan accepted an over-deep document")
	}
}

func TestCheckDocNil(t *testing.T) {
	if err := CheckDoc(nil, WireLimits); err == nil {
		t.Fatal("nil document accepted")
	}
	if err := CheckDoc(&xmldoc.Document{}, WireLimits); err == nil {
		t.Fatal("rootless document accepted")
	}
	d := &xmldoc.Document{Root: &xmldoc.Elem{Name: "a", Children: []*xmldoc.Elem{nil}}}
	if err := CheckDoc(d, WireLimits); err == nil {
		t.Fatal("nil child accepted")
	}
}
