package stream

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/dtddata"
	"repro/internal/gen"
	"repro/internal/pmatch"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// The differential harness is the correctness centrepiece of the streaming
// matcher: for random workloads (expressions × documents) it asserts that
// four independent evaluation routes produce the SAME verdict set —
//
//	streaming over raw bytes  ≡  streaming over the parsed tree
//	                          ≡  decompose-into-paths + pmatch per path
//	                          ≡  per-expression tree-walk oracle
//
// Documents are serialised with randomised decorations (comments, PIs,
// CDATA, entity-encoded text and attribute values, whitespace, quote
// styles) so the raw-byte route exercises the scanner, not just the happy
// path of xmldoc's serialiser.

var diffAlphabet = []string{"a", "b", "c", "d", "e"}

func diffXPE(r *rand.Rand) *xpath.XPE {
	n := 1 + r.Intn(4)
	steps := make([]xpath.Step, n)
	for i := range steps {
		axis := xpath.Child
		if i > 0 && r.Intn(3) == 0 {
			axis = xpath.Descendant
		}
		if i == 0 && r.Intn(5) == 0 {
			axis = xpath.Descendant
		}
		name := diffAlphabet[r.Intn(len(diffAlphabet))]
		if r.Intn(5) == 0 {
			name = xpath.Wildcard
		}
		var preds string
		if r.Intn(6) == 0 {
			preds = xpath.EncodePreds([]xpath.Pred{{Attr: "k", Value: diffAlphabet[r.Intn(2)]}})
		}
		steps[i] = xpath.Step{Axis: axis, Name: name, Preds: preds}
	}
	relative := r.Intn(3) == 0
	if relative {
		steps[0].Axis = xpath.Child
	}
	return xpath.New(relative, steps...)
}

func diffTree(r *rand.Rand, depth int) *xmldoc.Elem {
	e := &xmldoc.Elem{Name: diffAlphabet[r.Intn(len(diffAlphabet))]}
	switch r.Intn(3) {
	case 0:
		e.Attrs = append(e.Attrs, xmldoc.Attr{Name: "k", Value: diffAlphabet[r.Intn(2)]})
	case 1:
		e.Attrs = append(e.Attrs, xmldoc.Attr{Name: "other", Value: "x"})
	}
	if depth < 5 {
		for i := r.Intn(4) - 1; i >= 0; i-- {
			e.Children = append(e.Children, diffTree(r, depth+1))
		}
	}
	return e
}

// decorate serialises the tree with randomised but always-valid XML noise,
// so scanning it must accept and must reach the same verdicts.
func decorate(r *rand.Rand, e *xmldoc.Elem, b *strings.Builder) {
	b.WriteString("<" + e.Name)
	for _, a := range e.Attrs {
		q := `"`
		if r.Intn(2) == 0 {
			q = `'`
		}
		val := a.Value
		switch r.Intn(4) {
		case 0: // decimal character references
			var enc strings.Builder
			for _, c := range val {
				enc.WriteString("&#" + strings.TrimLeft(intToDec(int(c)), "0") + ";")
			}
			val = enc.String()
		case 1:
			val = "&#x" + hexOf(val) // single-char values only in this corpus
		}
		b.WriteString(" " + a.Name + "=" + q + val + q)
	}
	if len(e.Children) == 0 && r.Intn(2) == 0 {
		b.WriteString("/>")
		return
	}
	b.WriteString(">")
	noise := func() {
		switch r.Intn(8) {
		case 0:
			b.WriteString("<!-- noise -->")
		case 1:
			b.WriteString("<?pi noise?>")
		case 2:
			b.WriteString("<![CDATA[ ]] > & < ]]>")
		case 3:
			b.WriteString("text &lt;&amp;&#65; ]]&gt;")
		case 4:
			b.WriteString(" \r\n\t ")
		}
	}
	noise()
	for _, c := range e.Children {
		decorate(r, c, b)
		noise()
	}
	b.WriteString("</" + e.Name + ">")
}

func intToDec(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

// hexOf encodes the single-character values of the diff corpus.
func hexOf(s string) string {
	const hexdig = "0123456789abcdef"
	c := s[0]
	return string([]byte{hexdig[c>>4], hexdig[c&0xf]}) + ";"
}

// diffAutomatons compiles the workload into the single-shard (monolithic)
// and a 4-shard partitioned automaton: the harness asserts the four-way
// equivalence for both, so sharding cannot change a verdict.
func diffAutomatons(xs []*xpath.XPE) map[string]*pmatch.ShardedAutomaton {
	mono := pmatch.NewBuilder()
	sharded := pmatch.NewShardedBuilder(4)
	for i, x := range xs {
		mono.Add(x, i)
		sharded.Add(x, i)
	}
	return map[string]*pmatch.ShardedAutomaton{
		"shards=1": pmatch.Single(mono.Build()),
		"shards=4": sharded.Build(),
	}
}

// fourWayVerdicts evaluates the same workload along all four routes and
// returns the sorted entry-index sets.
func fourWayVerdicts(t *testing.T, auto *pmatch.ShardedAutomaton, xs []*xpath.XPE, doc *xmldoc.Document, raw []byte) (streamed, treed, decomposed, oracle []int) {
	t.Helper()
	collectInto := func(dst *[]int) func(any) {
		seen := map[int]bool{}
		return func(d any) {
			if i := d.(int); !seen[i] {
				seen[i] = true
				*dst = append(*dst, i)
			}
		}
	}
	if err := Match(raw, auto, Limits{}, collectInto(&streamed)); err != nil {
		t.Fatalf("stream.Match rejected %q: %v", raw, err)
	}
	sort.Ints(streamed)

	MatchDoc(doc, auto, collectInto(&treed))
	sort.Ints(treed)

	paths, attrs := doc.AnnotatedSymPaths()
	addD := collectInto(&decomposed)
	for i, p := range paths {
		auto.Match(p, attrs[i], addD)
	}
	sort.Ints(decomposed)

	for i, x := range xs {
		for pi, p := range paths {
			if x.MatchesSymPathAttrs(p, attrs[pi]) {
				oracle = append(oracle, i)
				break
			}
		}
	}
	return streamed, treed, decomposed, oracle
}

func assertFourWay(t *testing.T, auto *pmatch.ShardedAutomaton, xs []*xpath.XPE, doc *xmldoc.Document, raw []byte, ctx string) {
	t.Helper()
	streamed, treed, decomposed, oracle := fourWayVerdicts(t, auto, xs, doc, raw)
	if !eqIntSlices(streamed, oracle) || !eqIntSlices(treed, oracle) || !eqIntSlices(decomposed, oracle) {
		var exprs []string
		for _, x := range xs {
			exprs = append(exprs, x.String())
		}
		t.Fatalf("%s: verdict divergence\n  raw:        %q\n  streamed:   %v\n  tree:       %v\n  decomposed: %v\n  oracle:     %v\n  exprs:      %s",
			ctx, raw, streamed, treed, decomposed, oracle, strings.Join(exprs, " ; "))
	}
}

func eqIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestQuickStreamEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for round := 0; round < 40; round++ {
		nx := 1 + r.Intn(30)
		xs := make([]*xpath.XPE, nx)
		for i := range xs {
			xs[i] = diffXPE(r)
		}
		autos := diffAutomatons(xs)
		for trial := 0; trial < 15; trial++ {
			doc := &xmldoc.Document{Root: diffTree(r, 0)}
			var sb strings.Builder
			decorate(r, doc.Root, &sb)
			for name, auto := range autos {
				assertFourWay(t, auto, xs, doc, []byte(sb.String()), "quick/"+name)
				// The undecorated serialisation too (self-closing vs explicit
				// close, escaped attrs through xmldoc's own writer).
				assertFourWay(t, auto, xs, doc, doc.Marshal(), "quick-marshal/"+name)
			}
		}
	}
}

// TestDTDStreamEquivalence runs the harness over realistic documents: the
// DTD-driven generators (NITF news, protein DB) with expressions from the
// paper's XPath workload generator, predicates injected against the
// documents' real attribute pairs (and some that match nothing).
func TestDTDStreamEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		dtd  func() *gen.DocGenerator
		xg   *gen.XPathGenerator
	}{
		{"psd", func() *gen.DocGenerator { return gen.NewDocGenerator(dtddata.PSD(), 101) },
			gen.NewXPathGenerator(dtddata.PSD(), 0.3, 0.3, 102)},
		{"nitf", func() *gen.DocGenerator { return gen.NewDocGenerator(dtddata.NITF(), 103) },
			gen.NewXPathGenerator(dtddata.NITF(), 0.3, 0.3, 104)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(105))
			dg := tc.dtd()
			docs := make([]*xmldoc.Document, 12)
			var pairs []xmldoc.Attr
			for i := range docs {
				docs[i] = dg.Generate()
				var walk func(e *xmldoc.Elem)
				walk = func(e *xmldoc.Elem) {
					pairs = append(pairs, e.Attrs...)
					for _, c := range e.Children {
						walk(c)
					}
				}
				walk(docs[i].Root)
			}
			var xs []*xpath.XPE
			for i := 0; i < 40; i++ {
				x := tc.xg.Generate()
				if len(pairs) > 0 && r.Intn(3) == 0 {
					// Inject a predicate: a real attribute pair 2/3 of the
					// time, an impossible one otherwise.
					p := pairs[r.Intn(len(pairs))]
					if r.Intn(3) == 0 {
						p.Value = "no-such-value"
					}
					steps := append([]xpath.Step(nil), x.Steps...)
					si := r.Intn(len(steps))
					steps[si].Preds = xpath.EncodePreds([]xpath.Pred{{Attr: p.Name, Value: p.Value}})
					x = xpath.New(x.Relative, steps...)
				}
				xs = append(xs, x)
			}
			autos := diffAutomatons(xs)
			for _, doc := range docs {
				for name, auto := range autos {
					assertFourWay(t, auto, xs, doc, doc.Marshal(), tc.name+"/"+name)
				}
			}
		})
	}
}

// TestStreamEquivalenceConcurrent hammers one automaton from many
// goroutines mixing raw and tree streaming — pooled matchers and cursors
// must not leak state between concurrent runs (run under -race in CI).
func TestStreamEquivalenceConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	b := pmatch.NewShardedBuilder(4) // pooled sharded cursors race here too
	xs := make([]*xpath.XPE, 25)
	for i := range xs {
		xs[i] = diffXPE(r)
		b.Add(xs[i], i)
	}
	auto := b.Build()
	type work struct {
		doc *xmldoc.Document
		raw []byte
	}
	jobs := make([]work, 64)
	for i := range jobs {
		doc := &xmldoc.Document{Root: diffTree(r, 0)}
		var sb strings.Builder
		decorate(r, doc.Root, &sb)
		jobs[i] = work{doc: doc, raw: []byte(sb.String())}
	}
	// Per-job expected sets, computed serially first.
	want := make([][]int, len(jobs))
	for i, j := range jobs {
		paths, attrs := j.doc.AnnotatedSymPaths()
		seen := map[int]bool{}
		for pi, p := range paths {
			auto.Match(p, attrs[pi], func(d any) {
				if k := d.(int); !seen[k] {
					seen[k] = true
					want[i] = append(want[i], k)
				}
			})
		}
		sort.Ints(want[i])
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for rep := 0; rep < 30; rep++ {
				i := (g*13 + rep*7) % len(jobs)
				var got []int
				seen := map[int]bool{}
				collect := func(d any) {
					if k := d.(int); !seen[k] {
						seen[k] = true
						got = append(got, k)
					}
				}
				if rep%2 == 0 {
					if err := Match(jobs[i].raw, auto, Limits{}, collect); err != nil {
						done <- err
						return
					}
				} else {
					MatchDoc(jobs[i].doc, auto, collect)
				}
				sort.Ints(got)
				if !eqIntSlices(got, want[i]) {
					t.Errorf("goroutine %d job %d: got %v want %v", g, i, got, want[i])
					done <- nil
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent match error: %v", err)
		}
	}
}
