package stream

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/pmatch"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// FuzzStreamEquivalence feeds arbitrary bytes to both pipelines:
//
//	parse-then-check:  xmldoc.Parse + CheckDoc(WireLimits) + decompose + pmatch
//	streaming:         stream.Match(WireLimits)
//
// and requires (1) identical accept/reject verdicts, (2) identical match
// sets for every automaton derived from the seed when both accept, and
// (3) identical element names and decoded attributes in document order.
// Any divergence the fuzzer finds is a scanner bug by definition — the
// parsed pipeline is the oracle.
func FuzzStreamEquivalence(f *testing.F) {
	for _, s := range []string{
		`<a><b k="a">text</b><c/></a>`,
		`<a>&lt;&#65;&#x10FFFF;</a>`,
		`<?xml version="1.0" encoding="UTF-8"?><a b='1'/>`,
		`<!DOCTYPE a [<!-- > -->]><a/>`,
		`<a><![CDATA[ ]]> text ]]&gt;</a>`,
		`<ns:a xmlns:ns="u" ns:k="v"></ns:a>`,
		`<a k="&quot;&#xD7FF;"/>`,
		"<a>\r\n<b/>\r</a>",
		`<a/><!-- trailing -->`,
		`<a><b><a><b/></a></b></a>`,
	} {
		f.Add([]byte(s), uint64(3))
	}
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		r := rand.New(rand.NewSource(int64(seed)))
		nx := 1 + int(seed%8)
		// Shard count varies with the seed (1 = monolithic), so the fuzzer
		// also hunts for sharding-induced verdict divergence.
		b := pmatch.NewShardedBuilder(1 + int(seed%4))
		xs := make([]*xpath.XPE, nx)
		for i := range xs {
			xs[i] = diffXPE(r)
			b.Add(xs[i], i)
		}
		auto := b.Build()

		doc, perr := xmldoc.Parse(data)
		parsedOK := perr == nil && CheckDoc(doc, WireLimits) == nil

		var streamed []int
		seen := map[int]bool{}
		serr := Match(data, auto, WireLimits, func(d any) {
			if i := d.(int); !seen[i] {
				seen[i] = true
				streamed = append(streamed, i)
			}
		})
		if parsedOK != (serr == nil) {
			t.Fatalf("verdict divergence on %q: parse+check ok=%v, stream err=%v (parse err=%v)",
				data, parsedOK, serr, perr)
		}
		if !parsedOK {
			return
		}

		// Match-set equivalence: streaming vs decompose vs tree streaming.
		var decomposed []int
		seenD := map[int]bool{}
		paths, attrs := doc.AnnotatedSymPaths()
		for i, p := range paths {
			auto.Match(p, attrs[i], func(d any) {
				if k := d.(int); !seenD[k] {
					seenD[k] = true
					decomposed = append(decomposed, k)
				}
			})
		}
		var treed []int
		seenT := map[int]bool{}
		MatchDoc(doc, auto, func(d any) {
			if k := d.(int); !seenT[k] {
				seenT[k] = true
				treed = append(treed, k)
			}
		})
		sort.Ints(streamed)
		sort.Ints(decomposed)
		sort.Ints(treed)
		if !eqIntSlices(streamed, decomposed) || !eqIntSlices(treed, decomposed) {
			t.Fatalf("match divergence on %q: streamed=%v treed=%v decomposed=%v",
				data, streamed, treed, decomposed)
		}

		// Structural equivalence: names and decoded attributes, in document
		// order, must be what the parser produced.
		type elemShape struct {
			name  string
			attrs [][2]string
		}
		var got []elemShape
		var sc scanner
		sc.reset(data, WireLimits)
		sc.onOpen = func(local span, as []attrSpan) {
			e := elemShape{name: string(local.of(sc.data))}
			for _, a := range as {
				e.attrs = append(e.attrs, [2]string{
					string(a.local.of(sc.data)),
					decodeAttrValue(sc.data, a),
				})
			}
			got = append(got, e)
		}
		if err := sc.run(); err != nil {
			t.Fatalf("re-scan of accepted input %q failed: %v", data, err)
		}
		var want []elemShape
		var walk func(e *xmldoc.Elem)
		walk = func(e *xmldoc.Elem) {
			s := elemShape{name: e.Name}
			for _, a := range e.Attrs {
				s.attrs = append(s.attrs, [2]string{a.Name, a.Value})
			}
			want = append(want, s)
			for _, c := range e.Children {
				walk(c)
			}
		}
		walk(doc.Root)
		if len(got) != len(want) {
			t.Fatalf("element count divergence on %q: scanned %d, parsed %d", data, len(got), len(want))
		}
		for i := range got {
			if got[i].name != want[i].name {
				t.Fatalf("element %d name divergence on %q: scanned %q, parsed %q",
					i, data, got[i].name, want[i].name)
			}
			if len(got[i].attrs) != len(want[i].attrs) {
				t.Fatalf("element %d attr count divergence on %q: %v vs %v",
					i, data, got[i].attrs, want[i].attrs)
			}
			for j := range got[i].attrs {
				if got[i].attrs[j] != want[i].attrs[j] {
					t.Fatalf("element %d attr %d divergence on %q: scanned %v, parsed %v",
						i, j, data, got[i].attrs[j], want[i].attrs[j])
				}
			}
		}
	})
}
