package stream

import (
	"bytes"
	"fmt"
	"unicode"
	"unicode/utf8"
)

// scanner is a strict, allocation-free XML tokenizer over an in-memory
// document. It is a semantic mirror of encoding/xml's rawToken/Token
// machinery in the exact configuration xmldoc.Parse uses (Strict mode, no
// custom Entity map, no CharsetReader): every document it accepts is
// accepted by xmldoc.Parse and vice versa — the differential tests and the
// FuzzStreamEquivalence target pin this byte for byte. It deliberately does
// NOT build tokens: element names and attribute values stay as spans into
// the input, text and CDATA sections are validated (character range, UTF-8,
// entities) and discarded, and the wire document bounds are enforced
// incrementally as tags are opened, so one pass over the bytes both
// validates the document and drives the matcher.
//
// The structural callbacks (onOpen/onClose) fire in document order; a
// self-closing tag fires both. End-tag balance is checked on the RAW
// (pre-namespace-translation) names, which is exactly what encoding/xml's
// popElement compares — Token translates names only after the match.

// span is a half-open byte range into scanner.data.
type span struct{ start, end int32 }

func (sp span) of(data []byte) []byte { return data[sp.start:sp.end] }

// attrSpan is one attribute of a start tag: the local part of its name and
// its raw (undecoded) value. esc records whether decoding the value would
// change it ('&' entities or '\r' rewriting).
type attrSpan struct {
	local span
	value span
	esc   bool
}

type scanner struct {
	data  []byte
	pos   int
	lim   Limits
	elems int

	names []span     // raw full names of the open elements, for balance
	attrs []attrSpan // attributes of the tag currently being parsed

	onOpen  func(local span, attrs []attrSpan) // nil for validation-only scans
	onClose func()
}

func (s *scanner) reset(data []byte, lim Limits) {
	s.data, s.pos, s.lim, s.elems = data, 0, lim, 0
	s.names = s.names[:0]
	s.attrs = s.attrs[:0]
}

func (s *scanner) errf(format string, args ...any) error {
	return fmt.Errorf("stream: syntax error: "+format, args...)
}

func (s *scanner) mustgetc() (byte, error) {
	if s.pos >= len(s.data) {
		return 0, s.errf("unexpected EOF")
	}
	b := s.data[s.pos]
	s.pos++
	return b, nil
}

// space skips XML whitespace, like Decoder.space.
func (s *scanner) space() {
	for s.pos < len(s.data) {
		switch s.data[s.pos] {
		case ' ', '\r', '\n', '\t':
			s.pos++
		default:
			return
		}
	}
}

// run scans one whole document. It folds the token loop of xmldoc.Parse
// into the tokenizer: exactly one root element, balanced tags, and clean
// EOF are required; top-level text, comments, PIs, and directives are
// validated and skipped.
func (s *scanner) run() error {
	sawRoot := false
	for {
		if s.pos >= len(s.data) {
			if len(s.names) > 0 {
				return s.errf("unexpected EOF")
			}
			if !sawRoot {
				return s.errf("no root element")
			}
			return nil
		}
		b := s.data[s.pos]
		s.pos++
		if b != '<' {
			s.pos--
			if _, err := s.text(-1, false); err != nil {
				return err
			}
			continue
		}
		b, err := s.mustgetc()
		if err != nil {
			return err
		}
		switch b {
		case '/':
			if err := s.endTag(); err != nil {
				return err
			}
		case '?':
			if err := s.procInstTok(); err != nil {
				return err
			}
		case '!':
			if err := s.bangTok(); err != nil {
				return err
			}
		default:
			s.pos--
			if len(s.names) == 0 && sawRoot {
				return s.errf("multiple root elements")
			}
			sawRoot = true
			if err := s.startTag(); err != nil {
				return err
			}
		}
	}
}

// startTag parses one start tag (name consumed from just after '<'),
// enforces the document limits in checkWireDoc's order (depth, element
// count, local name length), and fires the structural callbacks.
func (s *scanner) startTag() error {
	full, local, err := s.nsname("expected element name after <")
	if err != nil {
		return err
	}
	if s.lim.MaxDepth > 0 && len(s.names) > s.lim.MaxDepth {
		return fmt.Errorf("stream: document deeper than %d", s.lim.MaxDepth)
	}
	s.elems++
	if s.lim.MaxElems > 0 && s.elems > s.lim.MaxElems {
		return fmt.Errorf("stream: document with more than %d elements", s.lim.MaxElems)
	}
	if s.lim.MaxName > 0 && int(local.end-local.start) > s.lim.MaxName {
		return fmt.Errorf("stream: element name of %d bytes exceeds %d", local.end-local.start, s.lim.MaxName)
	}
	s.attrs = s.attrs[:0]
	selfClose := false
	for {
		s.space()
		b, err := s.mustgetc()
		if err != nil {
			return err
		}
		if b == '/' {
			if b, err = s.mustgetc(); err != nil {
				return err
			}
			if b != '>' {
				return s.errf("expected /> in element")
			}
			selfClose = true
			break
		}
		if b == '>' {
			break
		}
		s.pos--
		_, alocal, err := s.nsname("expected attribute name in element")
		if err != nil {
			return err
		}
		s.space()
		if b, err = s.mustgetc(); err != nil {
			return err
		}
		if b != '=' {
			return s.errf("attribute name without = in element")
		}
		s.space()
		if b, err = s.mustgetc(); err != nil {
			return err
		}
		if b != '"' && b != '\'' {
			return s.errf("unquoted or missing attribute value in element")
		}
		vstart := s.pos
		esc, err := s.text(int(b), false)
		if err != nil {
			return err
		}
		s.attrs = append(s.attrs, attrSpan{
			local: alocal,
			value: span{int32(vstart), int32(s.pos - 1)}, // excludes the closing quote
			esc:   esc,
		})
	}
	if s.onOpen != nil {
		s.onOpen(local, s.attrs)
	}
	if selfClose {
		if s.onClose != nil {
			s.onClose()
		}
	} else {
		s.names = append(s.names, full)
	}
	return nil
}

// endTag parses "</name >" (the "</" is already consumed) and pops the
// element stack, rejecting unbalanced or mismatched closes.
func (s *scanner) endTag() error {
	full, _, err := s.nsname("expected element name after </")
	if err != nil {
		return err
	}
	s.space()
	b, err := s.mustgetc()
	if err != nil {
		return err
	}
	if b != '>' {
		return s.errf("invalid characters between </%s and >", full.of(s.data))
	}
	if len(s.names) == 0 {
		return s.errf("unexpected end element </%s>", full.of(s.data))
	}
	top := s.names[len(s.names)-1]
	if !bytes.Equal(top.of(s.data), full.of(s.data)) {
		return s.errf("element <%s> closed by </%s>", top.of(s.data), full.of(s.data))
	}
	s.names = s.names[:len(s.names)-1]
	if s.onClose != nil {
		s.onClose()
	}
	return nil
}

// rawName reads one XML name (Decoder.readName + isName): ASCII name bytes
// or any multi-byte rune, validated against the XML name character classes.
// A non-name first byte reports errMsg; EOF and invalid characters report
// their own errors — exactly the stdlib's split between "not a name here"
// and "broken name".
func (s *scanner) rawName(errMsg string) (span, error) {
	start := s.pos
	if s.pos >= len(s.data) {
		return span{}, s.errf("unexpected EOF")
	}
	if b := s.data[s.pos]; b < utf8.RuneSelf && !isNameByte(b) {
		return span{}, s.errf("%s", errMsg)
	}
	s.pos++
	for {
		if s.pos >= len(s.data) {
			// readName's mustgetc fails here: a name running into EOF is
			// an error even though the bytes so far form a valid name.
			return span{}, s.errf("unexpected EOF")
		}
		if b := s.data[s.pos]; b < utf8.RuneSelf && !isNameByte(b) {
			break
		}
		s.pos++
	}
	raw := s.data[start:s.pos]
	if !validName(raw) {
		return span{}, s.errf("invalid XML name: %s", raw)
	}
	return span{int32(start), int32(s.pos)}, nil
}

// nsname is rawName plus the namespace-prefix rules of Decoder.nsname:
// more than one colon rejects; the local part is the piece after the first
// colon, except that a leading or trailing colon leaves the whole name as
// the local part.
func (s *scanner) nsname(errMsg string) (full, local span, err error) {
	full, err = s.rawName(errMsg)
	if err != nil {
		return full, local, err
	}
	raw := full.of(s.data)
	c := bytes.IndexByte(raw, ':')
	if c < 0 || c == 0 || c == len(raw)-1 {
		return full, full, nil
	}
	if bytes.IndexByte(raw[c+1:], ':') >= 0 {
		return full, local, s.errf("%s", errMsg)
	}
	return full, span{full.start + int32(c) + 1, full.end}, nil
}

// validName reports whether b is a valid XML name (isName semantics), with
// an ASCII fast path for the common case.
func validName(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	i := 0
	if b[0] < utf8.RuneSelf {
		if !isNameStartByte(b[0]) {
			return false
		}
		for i = 1; i < len(b) && b[i] < utf8.RuneSelf; i++ {
			if !isNameByte(b[i]) {
				return false
			}
		}
		if i == len(b) {
			return true
		}
	}
	rest := b[i:]
	first := i == 0
	for len(rest) > 0 {
		c, n := utf8.DecodeRune(rest)
		if c == utf8.RuneError && n == 1 {
			return false
		}
		if first {
			if !unicode.Is(nameStart, c) {
				return false
			}
			first = false
		} else if !unicode.Is(nameStart, c) && !unicode.Is(nameMore, c) {
			return false
		}
		rest = rest[n:]
	}
	return true
}

// text validates one text region without materialising it, mirroring
// Decoder.text: quote < 0 scans element text up to '<' or EOF; quote is the
// delimiter byte for attribute values; cdata scans to "]]>". Entities are
// validated and their decoded runes range-checked; raw segments are
// UTF-8- and character-range-checked. esc reports whether decoding would
// rewrite the region (entities or '\r').
func (s *scanner) text(quote int, cdata bool) (esc bool, err error) {
	var b0, b1 byte
	segStart := s.pos
	for {
		if s.pos >= len(s.data) {
			if cdata {
				return esc, s.errf("unexpected EOF in CDATA section")
			}
			break
		}
		b := s.data[s.pos]
		s.pos++
		// "]]>" ends CDATA and is an error in plain text, but is allowed
		// inside quoted strings.
		if quote < 0 && b0 == ']' && b1 == ']' && b == '>' {
			if cdata {
				break
			}
			return esc, s.errf("unescaped ]]> not in CDATA section")
		}
		if b == '<' && !cdata {
			if quote >= 0 {
				return esc, s.errf("unescaped < inside quoted string")
			}
			s.pos-- // the '<' belongs to the next token
			break
		}
		if quote >= 0 && b == byte(quote) {
			break
		}
		if b == '&' && !cdata {
			if err := s.checkChars(s.data[segStart : s.pos-1]); err != nil {
				return esc, err
			}
			if err := s.entity(); err != nil {
				return esc, err
			}
			esc = true
			segStart = s.pos
			b0, b1 = 0, 0 // entity substitution resets the ]]> detector
			continue
		}
		if b == '\r' {
			esc = true // decoding rewrites \r and \r\n to \n
		}
		b0, b1 = b1, b
	}
	// The bytes consumed past the content (closing quote, "]]>") are valid
	// characters, so validating them along with the final segment is
	// harmless.
	return esc, s.checkChars(s.data[segStart:s.pos])
}

// checkChars validates a raw text segment: well-formed UTF-8 and every rune
// inside the XML character range.
func (s *scanner) checkChars(b []byte) error {
	for i := 0; i < len(b); {
		c := b[i]
		if c < utf8.RuneSelf {
			if c >= 0x20 || c == 0x09 || c == 0x0A || c == 0x0D {
				i++
				continue
			}
			return s.errf("illegal character code %U", rune(c))
		}
		r, size := utf8.DecodeRune(b[i:])
		if r == utf8.RuneError && size == 1 {
			return s.errf("invalid UTF-8")
		}
		if !isInCharacterRange(r) {
			return s.errf("illegal character code %U", r)
		}
		i += size
	}
	return nil
}

// entity validates one character entity; s.pos is just past the '&'. In
// strict mode with no custom entity map only "&#d;", "&#xh;" (value within
// the rune space and the XML character range after the string(rune)
// normalisation), and the five predefined named entities are legal —
// anything else is an error, mirroring Decoder.text's entity branch.
func (s *scanner) entity() error {
	b, err := s.mustgetc()
	if err != nil {
		return err
	}
	if b == '#' {
		if b, err = s.mustgetc(); err != nil {
			return err
		}
		base := 10
		if b == 'x' {
			base = 16
			if b, err = s.mustgetc(); err != nil {
				return err
			}
		}
		start := s.pos - 1
		for '0' <= b && b <= '9' ||
			base == 16 && 'a' <= b && b <= 'f' ||
			base == 16 && 'A' <= b && b <= 'F' {
			if b, err = s.mustgetc(); err != nil {
				return err
			}
		}
		if b != ';' {
			return s.errf("invalid character entity (no semicolon)")
		}
		digits := s.data[start : s.pos-1]
		if len(digits) == 0 {
			return s.errf("invalid character entity")
		}
		var n uint64
		for _, c := range digits {
			var v uint64
			switch {
			case '0' <= c && c <= '9':
				v = uint64(c - '0')
			case 'a' <= c && c <= 'f':
				v = uint64(c-'a') + 10
			default:
				v = uint64(c-'A') + 10
			}
			if n = n*uint64(base) + v; n > unicode.MaxRune {
				return s.errf("invalid character entity")
			}
		}
		r := rune(n)
		if !utf8.ValidRune(r) {
			r = utf8.RuneError // string(rune(n)) yields U+FFFD for surrogates
		}
		if !isInCharacterRange(r) {
			return s.errf("illegal character code %U", r)
		}
		return nil
	}
	// Named entity: name bytes, ';', and membership in the predefined five.
	if b < utf8.RuneSelf && !isNameByte(b) {
		return s.errf("invalid character entity")
	}
	start := s.pos - 1
	for {
		if s.pos >= len(s.data) {
			return s.errf("unexpected EOF")
		}
		if c := s.data[s.pos]; c < utf8.RuneSelf && !isNameByte(c) {
			break
		}
		s.pos++
	}
	name := s.data[start:s.pos]
	if s.data[s.pos] != ';' {
		return s.errf("invalid character entity &%s (no semicolon)", name)
	}
	s.pos++
	if entityRune(name) == 0 {
		return s.errf("invalid character entity &%s;", name)
	}
	return nil
}

// entityRune resolves the five predefined entities (0 for anything else).
func entityRune(name []byte) rune {
	switch string(name) { // compiles to a no-copy comparison
	case "lt":
		return '<'
	case "gt":
		return '>'
	case "amp":
		return '&'
	case "apos":
		return '\''
	case "quot":
		return '"'
	}
	return 0
}

// procInstTok validates a processing instruction ("<?" consumed). The
// target is a plain name (no namespace colon rules, like Decoder.name), the
// body is scanned to "?>" without character validation, and an "xml"
// declaration's version/encoding parameters are checked the way the stdlib
// checks them with a nil CharsetReader.
func (s *scanner) procInstTok() error {
	target, err := s.rawName("expected target name after <?")
	if err != nil {
		return err
	}
	s.space()
	start := s.pos
	var b0 byte
	for {
		b, err := s.mustgetc()
		if err != nil {
			return err
		}
		if b0 == '?' && b == '>' {
			break
		}
		b0 = b
	}
	if string(target.of(s.data)) == "xml" {
		content := s.data[start : s.pos-2]
		if ver := procInstParam(verParam, content); len(ver) > 0 && string(ver) != "1.0" {
			return fmt.Errorf("stream: unsupported version %q; only version 1.0 is supported", ver)
		}
		if enc := procInstParam(encParam, content); len(enc) > 0 && !equalFoldUTF8(enc) {
			return fmt.Errorf("stream: encoding %q declared but only UTF-8 is supported", enc)
		}
	}
	return nil
}

var (
	verParam = []byte("version=")
	encParam = []byte("encoding=")
)

// procInstParam extracts a pseudo-attribute from an xml declaration,
// mirroring the stdlib's (self-describedly lame but compatible) procInst.
func procInstParam(param, s []byte) []byte {
	lenp := len(param)
	i := 0
	var sep byte
	for i < len(s) {
		sub := s[i:]
		k := bytes.Index(sub, param)
		if k < 0 || lenp+k >= len(sub) {
			return nil
		}
		i += lenp + k + 1
		if c := sub[lenp+k]; c == '\'' || c == '"' {
			sep = c
			break
		}
	}
	if sep == 0 {
		return nil
	}
	j := bytes.IndexByte(s[i:], sep)
	if j < 0 {
		return nil
	}
	return s[i : i+j]
}

// equalFoldUTF8 reports whether enc case-folds to "utf-8" (ASCII fold is
// all strings.EqualFold needs here).
func equalFoldUTF8(enc []byte) bool {
	const want = "utf-8"
	if len(enc) != len(want) {
		return false
	}
	for i := 0; i < len(want); i++ {
		c := enc[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != want[i] {
			return false
		}
	}
	return true
}

// bangTok handles "<!": comments, CDATA sections, and directives
// (<!DOCTYPE ...> etc.), with the stdlib's exact accept/reject behaviour —
// including "--" being illegal inside comments and the quote/nesting/
// embedded-comment machinery of directive scanning.
func (s *scanner) bangTok() error {
	b, err := s.mustgetc()
	if err != nil {
		return err
	}
	switch b {
	case '-': // <!-- comment
		if b, err = s.mustgetc(); err != nil {
			return err
		}
		if b != '-' {
			return s.errf("invalid sequence <!- not part of <!--")
		}
		var b0, b1 byte
		for {
			if b, err = s.mustgetc(); err != nil {
				return err
			}
			if b0 == '-' && b1 == '-' {
				if b != '>' {
					return s.errf(`invalid sequence "--" not allowed in comments`)
				}
				return nil
			}
			b0, b1 = b1, b
		}
	case '[': // <![CDATA[
		for i := 0; i < 6; i++ {
			if b, err = s.mustgetc(); err != nil {
				return err
			}
			if b != "CDATA["[i] {
				return s.errf("invalid <![ sequence")
			}
		}
		_, err = s.text(-1, true)
		return err
	}
	// Directive. The first byte after "<!" is NOT run through the state
	// machine (the stdlib only buffers it), so a quote or bracket there has
	// no effect — replicated faithfully.
	var inquote byte
	depth := 0
	for {
		if b, err = s.mustgetc(); err != nil {
			return err
		}
		if inquote == 0 && b == '>' && depth == 0 {
			return nil
		}
	HandleB:
		switch {
		case b == inquote:
			inquote = 0
		case inquote != 0:
			// In quotes: no special action.
		case b == '\'' || b == '"':
			inquote = b
		case b == '>' && inquote == 0:
			depth--
		case b == '<' && inquote == 0:
			// Look for <!-- to begin a comment; a failed match replays the
			// mismatched byte through the state machine (skipping the
			// loop-top break check), exactly like the stdlib's goto.
			const seq = "!--"
			for i := 0; i < len(seq); i++ {
				if b, err = s.mustgetc(); err != nil {
					return err
				}
				if b != seq[i] {
					depth++
					goto HandleB
				}
			}
			// Comment inside a directive: scan to "-->" ("--" is legal here).
			var b0, b1 byte
			for {
				if b, err = s.mustgetc(); err != nil {
					return err
				}
				if b0 == '-' && b1 == '-' && b == '>' {
					break
				}
				b0, b1 = b1, b
			}
		}
	}
}
