// Package stream implements streaming SAX-path matching: it drives the
// shared path-matching automaton (internal/pmatch) directly over the raw
// bytes of an XML document, so a publication is routed in one pass without
// ever materialising the element tree or its root-to-leaf paths. This is
// the software form of the FPGA filtering architecture's token-stream
// evaluation (PAPERS.md): routing cost becomes proportional to document
// depth × automaton activity instead of document size.
//
// The scanner (scan.go) is a strict mirror of encoding/xml's accept/reject
// behaviour in the configuration xmldoc.Parse uses, so a broker that
// streams a raw body reaches exactly the verdict it would have reached by
// parsing, decomposing, and matching — the differential tests and the
// FuzzStreamEquivalence target pin this equivalence. Wire document bounds
// (depth, element count, name length) are enforced incrementally during the
// scan, so an oversized document is rejected as soon as it exceeds a bound,
// not after a full decode.
//
// Attribute predicates are evaluated lazily: element events drive the
// automaton with interned symbols only, and attribute spans are decoded
// into maps only when an entry with predicates structurally accepts — the
// post-filter then replays XPE.MatchesSymPathAttrs against the live
// root-to-node stack. Documents that trigger no predicate-carrying entry
// never decode an attribute.
package stream

import (
	"fmt"
	"sync"
	"unicode/utf8"

	"repro/internal/pmatch"
	"repro/internal/symtab"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// Limits bounds a document during a scan. A zero field disables that bound.
// The checks run in the transport's checkWireDoc order — depth, element
// count, local name length — as each start tag is parsed.
type Limits struct {
	// MaxDepth is the maximum element nesting depth, with the root at
	// depth 0: a document is rejected when an element has more than
	// MaxDepth ancestors.
	MaxDepth int
	// MaxElems is the maximum total element count.
	MaxElems int
	// MaxName is the maximum byte length of an element's local name.
	MaxName int
}

// The wire document bounds, shared with internal/transport: documents
// accepted from the network are capped at this depth, element count, and
// element name length.
const (
	MaxDocDepth = 256
	MaxDocElems = 1 << 16
	MaxDocName  = 256
)

// WireLimits is the Limits form of the wire document bounds.
var WireLimits = Limits{MaxDepth: MaxDocDepth, MaxElems: MaxDocElems, MaxName: MaxDocName}

// matcher binds a scanner to an automaton cursor: scanner callbacks push
// and pop the cursor in document order and maintain the root-to-node
// context (interned symbols, lazily-built attribute maps) the predicate
// post-filter needs. Pooled; one matcher serves one Match call at a time.
type matcher struct {
	sc    scanner
	cur   *pmatch.ShardedCursor
	visit func(data any)

	// Per-open-element stacks, index = depth (root at 0).
	syms  []symtab.Sym        // interned element names, the post-filter path
	maps  []map[string]string // attribute maps, built on first predicate accept
	built []bool              // whether maps[d] has been built

	// Raw mode: attribute spans per frame, flattened (arena[arenaOff[d]:
	// arenaOff[d+1]] belongs to depth d).
	arena    []attrSpan
	arenaOff []int32

	// Doc mode (MatchDoc): the element stack instead of spans.
	elems []*xmldoc.Elem

	accept pmatch.AcceptFunc // bound method value, allocated once
}

var matcherPool = sync.Pool{New: func() any {
	m := &matcher{arenaOff: []int32{0}}
	m.accept = m.onAccept
	m.sc.onOpen = m.openRaw
	m.sc.onClose = m.closeElem
	return m
}}

// Match scans one raw XML document, validates it exactly as xmldoc.Parse
// would, enforces lim incrementally, and invokes visit for the payload of
// every automaton entry whose expression matches some root-to-node path of
// the document — the same verdict set as decomposing the parsed document
// and matching every annotated path with a.Match, with each payload visited
// at most once. A nil automaton validates only. On error the document is
// rejected; any visits already made must be discarded by the caller.
// Safe for concurrent use.
//
// The automaton is the broker's sharded form (pmatch.Single wraps a
// monolithic one): the cursor binds the document root's anchored shard at
// the first start tag and drives it alongside the wild shard.
func Match(data []byte, a *pmatch.ShardedAutomaton, lim Limits, visit func(data any)) error {
	m := matcherPool.Get().(*matcher)
	defer m.release()
	m.sc.reset(data, lim)
	if a != nil {
		m.cur = a.Cursor()
		m.visit = visit
	}
	return m.sc.run()
}

// Scan validates a raw document (syntax and limits) without matching.
func Scan(data []byte, lim Limits) error {
	return Match(data, nil, lim, nil)
}

// MatchDoc runs the automaton over an already-parsed document with the same
// verdict semantics as Match over its serialisation: one pre-order walk,
// accept events per element, predicates post-filtered against the live
// stack. The broker's parsed-publication path uses it so streaming on/off
// differs only in parsing, never in matching. Safe for concurrent use.
func MatchDoc(d *xmldoc.Document, a *pmatch.ShardedAutomaton, visit func(data any)) {
	if d == nil || d.Root == nil || a == nil {
		return
	}
	m := matcherPool.Get().(*matcher)
	defer m.release()
	m.cur = a.Cursor()
	m.visit = visit
	m.matchElem(d.Root)
}

// CheckDoc validates a parsed document against lim with the transport's
// checkWireDoc semantics (pre-order; depth, then count, then name length;
// nil elements rejected). The transport delegates its wire-bound check
// here, and the broker uses it to keep the ablation path (streaming off)
// bound-equivalent to the streaming scan.
func CheckDoc(d *xmldoc.Document, lim Limits) error {
	if d == nil || d.Root == nil {
		return fmt.Errorf("stream: document without root element")
	}
	n := 0
	var walk func(e *xmldoc.Elem, depth int) error
	walk = func(e *xmldoc.Elem, depth int) error {
		if lim.MaxDepth > 0 && depth > lim.MaxDepth {
			return fmt.Errorf("stream: document deeper than %d", lim.MaxDepth)
		}
		if n++; lim.MaxElems > 0 && n > lim.MaxElems {
			return fmt.Errorf("stream: document with more than %d elements", lim.MaxElems)
		}
		if lim.MaxName > 0 && len(e.Name) > lim.MaxName {
			return fmt.Errorf("stream: element name of %d bytes exceeds %d", len(e.Name), lim.MaxName)
		}
		for _, c := range e.Children {
			if c == nil {
				return fmt.Errorf("stream: nil element in document")
			}
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(d.Root, 0)
}

// release returns the matcher to the pool with no references retained.
func (m *matcher) release() {
	if m.cur != nil {
		m.cur.Release()
		m.cur = nil
	}
	m.visit = nil
	for i := range m.maps {
		m.maps[i] = nil
	}
	for i := range m.elems {
		m.elems[i] = nil
	}
	m.syms = m.syms[:0]
	m.maps = m.maps[:0]
	m.built = m.built[:0]
	m.arena = m.arena[:0]
	m.arenaOff = append(m.arenaOff[:0], 0)
	m.elems = m.elems[:0]
	m.sc.data = nil
	matcherPool.Put(m)
}

// openRaw is the scanner's start-tag callback: intern the name (unknown
// names become symtab.None, which only wildcards match), bank the attribute
// spans, and advance the cursor.
func (m *matcher) openRaw(local span, attrs []attrSpan) {
	if m.cur == nil {
		return // validation-only scan
	}
	sym, _ := symtab.LookupBytes(local.of(m.sc.data))
	m.syms = append(m.syms, sym)
	m.maps = append(m.maps, nil)
	m.built = append(m.built, false)
	m.arena = append(m.arena, attrs...)
	m.arenaOff = append(m.arenaOff, int32(len(m.arena)))
	m.cur.Enter(sym, m.accept)
}

// closeElem pops one frame (both raw and doc modes).
func (m *matcher) closeElem() {
	if m.cur == nil {
		return
	}
	d := len(m.syms) - 1
	m.maps[d] = nil
	m.syms = m.syms[:d]
	m.maps = m.maps[:d]
	m.built = m.built[:d]
	if len(m.elems) > 0 {
		m.elems[d] = nil
		m.elems = m.elems[:d]
	} else {
		m.arena = m.arena[:m.arenaOff[d]]
		m.arenaOff = m.arenaOff[:d+1]
	}
	m.cur.Leave()
}

// matchElem drives the cursor from a parsed tree (MatchDoc).
func (m *matcher) matchElem(e *xmldoc.Elem) {
	sym, _ := symtab.Lookup(e.Name)
	m.syms = append(m.syms, sym)
	m.maps = append(m.maps, nil)
	m.built = append(m.built, false)
	m.elems = append(m.elems, e)
	m.cur.Enter(sym, m.accept)
	for _, c := range e.Children {
		if c != nil {
			m.matchElem(c)
		}
	}
	m.closeElem()
}

// onAccept handles one structural accept event from the cursor. Entries
// without predicates are settled immediately. Predicate-carrying entries
// are post-filtered against the live root-to-node stack: success visits and
// settles; failure keeps the entry eligible at later accept events, which
// makes the union-over-paths verdict identical to matching every decomposed
// path separately.
func (m *matcher) onAccept(x *xpath.XPE, hasPreds bool, data any) bool {
	if !hasPreds {
		m.visit(data)
		return true
	}
	m.buildMaps()
	if x.MatchesSymPathAttrs(m.syms, m.maps) {
		m.visit(data)
		return true
	}
	return false
}

// buildMaps materialises the attribute maps of every open frame that does
// not have one yet. Work is bounded by depth × accept events, independent
// of document size.
func (m *matcher) buildMaps() {
	docMode := len(m.elems) > 0
	for d := range m.syms {
		if m.built[d] {
			continue
		}
		m.built[d] = true
		if docMode {
			m.maps[d] = elemAttrMap(m.elems[d])
			continue
		}
		spans := m.arena[m.arenaOff[d]:m.arenaOff[d+1]]
		if len(spans) == 0 {
			continue // nil map, like AnnotatedPaths
		}
		mp := make(map[string]string, len(spans))
		for _, a := range spans {
			// Duplicate names: last wins, matching AnnotatedPaths' attrMap.
			mp[string(a.local.of(m.sc.data))] = decodeAttrValue(m.sc.data, a)
		}
		m.maps[d] = mp
	}
}

// elemAttrMap mirrors xmldoc.AnnotatedPaths' attrMap: nil for
// attribute-less elements, last duplicate wins.
func elemAttrMap(e *xmldoc.Elem) map[string]string {
	if len(e.Attrs) == 0 {
		return nil
	}
	mp := make(map[string]string, len(e.Attrs))
	for _, a := range e.Attrs {
		mp[a.Name] = a.Value
	}
	return mp
}

// decodeAttrValue decodes one attribute value the way encoding/xml's text()
// does for input the scanner already validated: entities expanded, \r and
// \r\n rewritten to \n (with the entity-substitution reset of the pair
// detector replicated).
func decodeAttrValue(data []byte, a attrSpan) string {
	raw := a.value.of(data)
	if !a.esc {
		return string(raw)
	}
	buf := make([]byte, 0, len(raw))
	var prev byte
	for i := 0; i < len(raw); {
		c := raw[i]
		if c == '&' {
			r, next := decodeEntity(raw, i)
			buf = utf8.AppendRune(buf, r)
			i = next
			prev = 0 // entity text resets the \r\n pair detector
			continue
		}
		i++
		switch {
		case c == '\r':
			buf = append(buf, '\n')
		case prev == '\r' && c == '\n':
			// \r\n collapsed to the \n already written.
		default:
			buf = append(buf, c)
		}
		prev = c
	}
	return string(buf)
}

// decodeEntity decodes the validated entity starting at raw[i] == '&',
// returning its rune and the index just past the ';'.
func decodeEntity(raw []byte, i int) (rune, int) {
	j := i + 1
	if raw[j] == '#' {
		j++
		base := uint64(10)
		if raw[j] == 'x' {
			base = 16
			j++
		}
		var n uint64
		for raw[j] != ';' {
			c := raw[j]
			var v uint64
			switch {
			case '0' <= c && c <= '9':
				v = uint64(c - '0')
			case 'a' <= c && c <= 'f':
				v = uint64(c-'a') + 10
			default:
				v = uint64(c-'A') + 10
			}
			n = n*base + v
			j++
		}
		r := rune(n)
		if r >= 0xD800 && r < 0xE000 { // string(rune) surrogate normalisation
			r = 0xFFFD
		}
		return r, j + 1
	}
	for raw[j] != ';' {
		j++
	}
	return entityRune(raw[i+1 : j]), j + 1
}
