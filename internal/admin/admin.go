// Package admin serves a broker's observability endpoints over HTTP:
//
//	/metrics        Prometheus text exposition of the metrics registry
//	/debug/traces   JSON dump of the per-hop publication trace ring
//	                (?id=<trace-id> filters to one publication)
//	/debug/routes   JSON snapshot of the SRT and PRT routing tables
//	/debug/pprof/*  the standard Go profiler endpoints
//
// SECURITY: the endpoints are unauthenticated and expose routing state and
// profiling data; bind the admin listener to localhost (or a management
// network) only — never to the broker's public address.
package admin

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Handler builds the admin mux. Any of reg, ring, and routes may be nil;
// the corresponding endpoint then responds 404. routes is called per
// request and must be safe for concurrent use (the broker's Routes method
// is).
func Handler(reg *metrics.Registry, ring *trace.Ring, routes func() any) http.Handler {
	mux := http.NewServeMux()
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w)
		})
	}
	if ring != nil {
		mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
			if id := r.URL.Query().Get("id"); id != "" {
				writeJSON(w, ring.ByID(id))
				return
			}
			writeJSON(w, ring.Snapshot())
		})
	}
	if routes != nil {
		mux.HandleFunc("/debug/routes", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, routes())
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Serve binds addr and serves h in the background, returning the bound
// address (useful with port 0) and a shutdown function.
func Serve(addr string, h http.Handler) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
