// Package admin serves a broker's observability endpoints over HTTP:
//
//	/metrics        Prometheus text exposition of the metrics registry
//	/statusz        machine-readable status snapshot (uptime, counter
//	                rates, per-stage latency quantiles, link health,
//	                queue depths) — what xtop polls
//	/debug/traces   JSON dump of the per-hop publication trace ring
//	                (?id=<trace-id> filters to one publication)
//	/debug/routes   JSON snapshot of the SRT and PRT routing tables
//	/debug/slow     JSON dump of the slow-publication flight recorder
//	/debug/pprof/*  the standard Go profiler endpoints
//
// SECURITY: the endpoints are unauthenticated and expose routing state and
// profiling data; bind the admin listener to localhost (or a management
// network) only — never to the broker's public address.
package admin

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"

	"repro/internal/metrics"
	"repro/internal/slowlog"
	"repro/internal/trace"
)

// Endpoints collects the components behind the admin mux. Any nil field
// leaves its endpoint unregistered (404).
type Endpoints struct {
	// Metrics backs /metrics.
	Metrics *metrics.Registry
	// Traces backs /debug/traces.
	Traces *trace.Ring
	// Routes backs /debug/routes; called per request, must be safe for
	// concurrent use (the broker's Routes method is).
	Routes func() any
	// Slow backs /debug/slow.
	Slow *slowlog.Log
	// Status backs /statusz.
	Status *Status
}

// Handler builds the admin mux from the populated endpoints.
func (e Endpoints) Handler() http.Handler {
	mux := http.NewServeMux()
	if e.Metrics != nil {
		reg := e.Metrics
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w)
		})
	}
	if e.Traces != nil {
		ring := e.Traces
		mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
			if id := r.URL.Query().Get("id"); id != "" {
				writeJSON(w, ring.ByID(id))
				return
			}
			writeJSON(w, ring.Snapshot())
		})
	}
	if e.Routes != nil {
		routes := e.Routes
		mux.HandleFunc("/debug/routes", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, routes())
		})
	}
	if e.Slow != nil {
		slow := e.Slow
		mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, struct {
				ThresholdSeconds float64         `json:"threshold_seconds"`
				Total            int64           `json:"total"`
				Entries          []slowlog.Entry `json:"entries"`
			}{slow.Threshold().Seconds(), slow.Total(), slow.Snapshot()})
		})
	}
	if e.Status != nil {
		st := e.Status
		mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, st.Snapshot())
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Handler builds the admin mux from the three original components. It
// predates Endpoints and keeps its signature for existing callers; new code
// should populate Endpoints directly.
func Handler(reg *metrics.Registry, ring *trace.Ring, routes func() any) http.Handler {
	return Endpoints{Metrics: reg, Traces: ring, Routes: routes}.Handler()
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Serve binds addr and serves h in the background, returning the bound
// address (useful with port 0) and a shutdown function.
func Serve(addr string, h http.Handler) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
