package admin

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/metrics"
	"repro/internal/slowlog"
	"repro/internal/xmldoc"
	"repro/internal/xpath"

	"net/http/httptest"
)

// TestStatusRates drives Snapshot with a fake clock: the first scrape has no
// baseline so no rates, subsequent scrapes report (cur-prev)/dt, and a
// counter that went backwards (a restarted broker re-registering the same
// series) is treated as reset — the delta is the post-reset value, never
// negative.
func TestStatusRates(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.Counter("xbroker_msgs_in_total", "", "type", "publish")
	c.Add(100)

	clock := time.Unix(1000, 0)
	st := &Status{
		Broker:   "b1",
		Started:  clock.Add(-time.Minute),
		Registry: reg,
		Now:      func() time.Time { return clock },
	}
	key := `xbroker_msgs_in_total{type="publish"}`

	first := st.Snapshot()
	if first.RatesPerSec != nil {
		t.Errorf("first scrape has rates: %v", first.RatesPerSec)
	}
	if first.Counters[key] != 100 {
		t.Errorf("counters = %v", first.Counters)
	}
	if got := first.UptimeSeconds; got != 60 {
		t.Errorf("uptime = %v, want 60", got)
	}

	c.Add(50)
	clock = clock.Add(10 * time.Second)
	second := st.Snapshot()
	if got := second.RatesPerSec[key]; got != 5 {
		t.Errorf("rate after +50 over 10s = %v, want 5", got)
	}

	// Counter reset: swap in a fresh registry whose series restarts at 30.
	reg2 := metrics.NewRegistry()
	reg2.Counter("xbroker_msgs_in_total", "", "type", "publish").Add(30)
	st.Registry = reg2
	clock = clock.Add(10 * time.Second)
	third := st.Snapshot()
	if got := third.RatesPerSec[key]; got != 3 {
		t.Errorf("rate after reset to 30 over 10s = %v, want 3 (reset convention)", got)
	}
}

// TestStatusAndSlowUnderConcurrentPublish serves /statusz and /debug/slow
// while the broker's publish path runs hot from several goroutines — the
// scrape path and the data plane share the registry, the histograms, and
// the flight recorder, so this is the race-detector workout for the whole
// observability layer (run with -race in CI).
func TestStatusAndSlowUnderConcurrentPublish(t *testing.T) {
	reg := metrics.NewRegistry()
	slow := slowlog.New(time.Nanosecond, 16) // capture everything
	queues := func() map[string]int { return map[string]int{"b2": 3} }
	br := broker.New(broker.Config{ID: "b1", Metrics: reg, SlowLog: slow, QueueDepths: queues},
		func(to string, m *broker.Message) {})
	br.AddClient("sub")
	br.HandleMessage(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/stock//price")}, "sub")

	srv := httptest.NewServer(Endpoints{
		Metrics: reg,
		Slow:    slow,
		Status: &Status{
			Broker:   "b1",
			Started:  time.Now(),
			Registry: reg,
			Queues:   queues,
			Slow:     slow,
		},
	}.Handler())
	defer srv.Close()

	const publishers, perPub = 4, 250
	var wg sync.WaitGroup
	for g := 0; g < publishers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pub := xmldoc.Publication{Path: []string{"stock", "quote", "price"}}
			for i := 0; i < perPub; i++ {
				br.HandleMessage(&broker.Message{Type: broker.MsgPublish, Pub: pub}, "producer")
			}
		}()
	}
	// Scrape both endpoints concurrently with the publishing.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var snap StatusSnapshot
				body, _ := get(t, srv.URL+"/statusz")
				if err := json.Unmarshal([]byte(body), &snap); err != nil {
					t.Errorf("/statusz mid-publish: %v", err)
				}
				get(t, srv.URL+"/debug/slow")
			}
		}()
	}
	wg.Wait()

	var snap StatusSnapshot
	body, _ := get(t, srv.URL+"/statusz")
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/statusz: %v\n%s", err, body)
	}
	if snap.Broker != "b1" {
		t.Errorf("broker = %q", snap.Broker)
	}
	total := float64(publishers * perPub)
	if got := snap.Counters[`xbroker_msgs_in_total{type="publish"}`]; got != total {
		t.Errorf("publish counter = %v, want %v", got, total)
	}
	stages := make(map[string]StageQuantiles, len(snap.Stages))
	for i, s := range snap.Stages {
		stages[s.Stage] = s
		if i > 0 && stageOrder[snap.Stages[i-1].Stage] > stageOrder[s.Stage] {
			t.Errorf("stages out of pipeline order: %s before %s", snap.Stages[i-1].Stage, s.Stage)
		}
	}
	for _, name := range []string{"match", "filter", "enqueue"} {
		s, ok := stages[name]
		if !ok || s.Count != int64(total) {
			t.Errorf("stage %s = %+v, want count %v", name, s, total)
		}
		if s.P50 < 0 || s.P50 > s.P90 || s.P90 > s.P99 {
			t.Errorf("stage %s quantiles not monotone: %+v", name, s)
		}
	}
	if snap.SlowTotal != int64(total) {
		t.Errorf("slow_total = %d, want %v (1ns threshold captures all)", snap.SlowTotal, total)
	}
	if snap.Queues["b2"] != 3 {
		t.Errorf("queues = %v", snap.Queues)
	}

	// /debug/slow: well-formed envelope, ring at capacity, entries carry
	// stage breakdowns and the queue-depth snapshot.
	var slowDoc struct {
		ThresholdSeconds float64         `json:"threshold_seconds"`
		Total            int64           `json:"total"`
		Entries          []slowlog.Entry `json:"entries"`
	}
	body, ctype := get(t, srv.URL+"/debug/slow")
	if ctype != "application/json" {
		t.Errorf("/debug/slow content type = %q", ctype)
	}
	if err := json.Unmarshal([]byte(body), &slowDoc); err != nil {
		t.Fatalf("/debug/slow: %v\n%s", err, body)
	}
	if slowDoc.Total != int64(total) || len(slowDoc.Entries) != 16 {
		t.Errorf("/debug/slow total=%d entries=%d, want %v and 16", slowDoc.Total, len(slowDoc.Entries), total)
	}
	e := slowDoc.Entries[len(slowDoc.Entries)-1]
	if e.Broker != "b1" || len(e.Stages) == 0 || len(e.Destinations) != 1 || e.Destinations[0] != "sub" {
		t.Errorf("slow entry = %+v", e)
	}
	if e.QueueDepths["b2"] != 3 {
		t.Errorf("slow entry queue depths = %v", e.QueueDepths)
	}
}
