package admin

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/advert"
	"repro/internal/broker"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("up_total", "").Inc()
	ring := trace.NewRing(8)
	ring.Record(trace.Event{TraceID: "t1", Broker: "b1"})
	ring.Record(trace.Event{TraceID: "t2", Broker: "b1"})
	routes := func() any { return map[string]string{"broker": "b1"} }
	srv := httptest.NewServer(Handler(reg, ring, routes))
	defer srv.Close()

	body, ctype := get(t, srv.URL+"/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	if !strings.Contains(body, "up_total 1") {
		t.Errorf("/metrics body:\n%s", body)
	}

	body, ctype = get(t, srv.URL+"/debug/traces")
	if ctype != "application/json" {
		t.Errorf("/debug/traces content type = %q", ctype)
	}
	var evs []trace.Event
	if err := json.Unmarshal([]byte(body), &evs); err != nil || len(evs) != 2 {
		t.Errorf("/debug/traces: %d events, err %v:\n%s", len(evs), err, body)
	}

	body, _ = get(t, srv.URL+"/debug/traces?id=t2")
	if err := json.Unmarshal([]byte(body), &evs); err != nil || len(evs) != 1 || evs[0].TraceID != "t2" {
		t.Errorf("/debug/traces?id=t2:\n%s", body)
	}

	body, _ = get(t, srv.URL+"/debug/routes")
	if !strings.Contains(body, `"broker": "b1"`) {
		t.Errorf("/debug/routes:\n%s", body)
	}

	if resp, err := http.Get(srv.URL + "/debug/pprof/cmdline"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
}

func TestHandlerNilComponents(t *testing.T) {
	srv := httptest.NewServer(Handler(nil, nil, nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/traces", "/debug/routes"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s with nil component: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestServe(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Gauge("g", "").Set(1)
	addr, stop, err := Serve("127.0.0.1:0", Handler(reg, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	body, _ := get(t, "http://"+addr+"/metrics")
	if !strings.Contains(body, "g 1") {
		t.Errorf("served /metrics:\n%s", body)
	}
}

// TestThreeBrokerChainObservability is the acceptance test for the
// observability layer: a 3-broker TCP chain, a traced publication crossing
// all of it, verified through the admin endpoints — /metrics shows the
// match-latency histogram, routing-table gauges, and per-peer queue
// depths; /debug/traces shows the full hop list; and the subscriber's
// delivered frame carries the complete path.
func TestThreeBrokerChainObservability(t *testing.T) {
	const n = 3
	regs := make([]*metrics.Registry, n)
	rings := make([]*trace.Ring, n)
	servers := make([]*transport.Server, n)
	admins := make([]*httptest.Server, n)
	addrs := make([]string, n)
	neighbors := make([]map[string]string, n)
	for i := range servers {
		neighbors[i] = make(map[string]string)
	}
	for i := range servers {
		regs[i] = metrics.NewRegistry()
		rings[i] = trace.NewRing(64)
		cfg := broker.Config{
			ID:                fmt.Sprintf("b%d", i+1),
			UseAdvertisements: true,
			UseCovering:       true,
			Metrics:           regs[i],
			TraceSink:         rings[i],
		}
		servers[i] = transport.NewServer(cfg, neighbors[i])
		addr, err := servers[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
		t.Cleanup(servers[i].Close)
		srv := servers[i]
		admins[i] = httptest.NewServer(Handler(regs[i], rings[i], func() any { return srv.Broker().Routes() }))
		t.Cleanup(admins[i].Close)
	}
	for i := range servers {
		if i > 0 {
			neighbors[i][fmt.Sprintf("b%d", i)] = addrs[i-1]
			servers[i].Broker().AddNeighbor(fmt.Sprintf("b%d", i))
		}
		if i < n-1 {
			neighbors[i][fmt.Sprintf("b%d", i+2)] = addrs[i+1]
			servers[i].Broker().AddNeighbor(fmt.Sprintf("b%d", i+2))
		}
	}

	pub, err := transport.Dial(addrs[0], "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	sub, err := transport.Dial(addrs[2], "sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	if err := pub.Send(&broker.Message{Type: broker.MsgAdvertise, AdvID: "a1", Adv: advert.MustParse("/stock/quote/price")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "advertisement flood", func() bool { return servers[2].SRTSize() == 1 })
	if err := sub.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/stock")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "subscription propagation", func() bool { return servers[0].PRTSize() == 1 })

	traceID := trace.NewID()
	if err := pub.Send(&broker.Message{
		Type:    broker.MsgPublish,
		Pub:     xmldoc.Publication{DocID: 1, Path: []string{"stock", "quote", "price"}},
		TraceID: traceID,
	}); err != nil {
		t.Fatal(err)
	}
	got, err := sub.WaitDelivery(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// The delivered frame carries the full hop list.
	if len(got.Hops) != 3 {
		t.Fatalf("delivered hop list = %v, want 3 hops", got.Hops)
	}
	for i, want := range []string{"b1", "b2", "b3"} {
		if got.Hops[i].Broker != want {
			t.Errorf("hop[%d] = %s, want %s", i, got.Hops[i].Broker, want)
		}
	}

	// Brokers record the trace event just after forwarding, so the
	// delivery can arrive before the last ring write; wait for the rings.
	waitFor(t, "trace rings", func() bool {
		for _, r := range rings {
			if len(r.ByID(traceID)) == 0 {
				return false
			}
		}
		return true
	})

	// Every broker's /debug/traces knows the trace; the last broker's
	// event shows the full upstream path and the client delivery.
	for i := range admins {
		body, _ := get(t, admins[i].URL+"/debug/traces?id="+traceID)
		var evs []trace.Event
		if err := json.Unmarshal([]byte(body), &evs); err != nil || len(evs) != 1 {
			t.Fatalf("broker %d /debug/traces: err %v, body:\n%s", i+1, err, body)
		}
		if len(evs[0].Hops) != i+1 {
			t.Errorf("broker %d recorded %d hops, want %d", i+1, len(evs[0].Hops), i+1)
		}
	}
	body, _ := get(t, admins[2].URL+"/debug/traces?id="+traceID)
	var evs []trace.Event
	json.Unmarshal([]byte(body), &evs)
	if len(evs) == 1 {
		if want := []string{"b1", "b2", "b3"}; len(evs[0].Hops) == 3 {
			for i := range want {
				if evs[0].Hops[i].Broker != want[i] {
					t.Errorf("edge trace hop[%d] = %s, want %s", i, evs[0].Hops[i].Broker, want[i])
				}
			}
		}
		if len(evs[0].DeliveredTo) != 1 || evs[0].DeliveredTo[0] != "sub" {
			t.Errorf("edge trace DeliveredTo = %v, want [sub]", evs[0].DeliveredTo)
		}
	}

	// /metrics on the middle broker: histogram, table gauges, queue depths.
	metricsBody, _ := get(t, admins[1].URL+"/metrics")
	for _, want := range []string{
		`xbroker_match_seconds_count{strategy="adv+cov"} 1`,
		`xbroker_prt_subscriptions 1`,
		`xbroker_srt_advertisements 1`,
		`xbroker_send_queue_depth{peer="b1"}`,
		`xbroker_send_queue_depth{peer="b3"}`,
		`xbroker_pool_workers`,
		`xbroker_msgs_in_total{type="publish"} 1`,
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("middle broker /metrics missing %q:\n%s", want, metricsBody)
		}
	}
	// The edge broker delivered to its client.
	edgeBody, _ := get(t, admins[2].URL+"/metrics")
	if !strings.Contains(edgeBody, "xbroker_deliveries_total 1") {
		t.Errorf("edge broker /metrics missing delivery count:\n%s", edgeBody)
	}

	// /debug/routes on the first broker shows the subscription learned
	// from the chain.
	routesBody, _ := get(t, admins[0].URL+"/debug/routes")
	var rt broker.RouteTables
	if err := json.Unmarshal([]byte(routesBody), &rt); err != nil {
		t.Fatalf("/debug/routes: %v:\n%s", err, routesBody)
	}
	if rt.Broker != "b1" || len(rt.Subscriptions) != 1 || rt.Subscriptions[0].XPE != "/stock" {
		t.Errorf("b1 routes = %+v", rt)
	}
}

func get(t *testing.T, url string) (body, contentType string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(b), resp.Header.Get("Content-Type")
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}
