package admin

import (
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/slowlog"
	"repro/internal/trace"
)

// Status produces the machine-readable /statusz snapshot: one JSON document
// per scrape with the broker's identity, uptime, raw counter and gauge
// values, per-scrape rates computed from counter deltas, and per-stage
// latency quantiles interpolated from histogram buckets. It is the data
// source xtop polls; everything it reports is derived from the metrics
// registry plus the injected callbacks, so it adds no instrumentation of its
// own.
//
// Rates are stateful: each Snapshot remembers the counter values it saw and
// the next Snapshot reports (cur-prev)/dt per counter. A counter that went
// backwards (process restart behind the same address, registry swap) is
// treated as reset: the delta is the current value, the standard
// counter-reset convention. The first scrape reports no rates.
type Status struct {
	// Broker is the broker ID reported in every snapshot.
	Broker string
	// Started anchors the uptime computation.
	Started time.Time
	// Registry is the broker's metrics registry (nil leaves counters,
	// gauges, rates, and stages empty).
	Registry *metrics.Registry
	// Links, when non-nil, reports neighbour-link health; the transport
	// server's Links method fits. The value is embedded verbatim in the
	// snapshot JSON.
	Links func() any
	// Queues, when non-nil, reports per-peer send-queue depths; the
	// transport server's QueueDepths method fits.
	Queues func() map[string]int
	// Slow, when non-nil, contributes the flight recorder's capture count
	// and threshold.
	Slow *slowlog.Log
	// Shards, when non-nil, reports the matching engine's per-shard state;
	// the broker's ShardStatus method fits. The value is embedded verbatim
	// in the snapshot JSON.
	Shards func() any
	// Publog, when non-nil, reports the publication log backing durable
	// subscriptions (segments, bytes, per-name cursors); the publog store's
	// Status method fits. The value is embedded verbatim in the snapshot
	// JSON.
	Publog func() any

	// Now, when non-nil, replaces time.Now — tests inject a fake clock to
	// exercise rate computation deterministically.
	Now func() time.Time

	mu     sync.Mutex
	prev   map[string]float64
	prevAt time.Time
}

// StageQuantiles is one pipeline stage's latency summary, interpolated from
// the xbroker_stage_seconds histogram buckets (histogram_quantile-style).
type StageQuantiles struct {
	Stage string  `json:"stage"`
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// StatusSnapshot is the /statusz response body.
type StatusSnapshot struct {
	Broker        string  `json:"broker"`
	UnixNano      int64   `json:"unix_nano"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Epoch mirrors the xbroker_snapshot_epoch gauge for convenience.
	Epoch uint64 `json:"epoch,omitempty"`
	// Counters and Gauges hold every scalar series, keyed by full series
	// identity (name plus rendered labels).
	Counters map[string]float64 `json:"counters,omitempty"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
	// RatesPerSec holds per-counter rates from deltas against the previous
	// scrape; absent on the first scrape.
	RatesPerSec map[string]float64 `json:"rates_per_sec,omitempty"`
	// Stages summarises the publish pipeline's stage latencies in pipeline
	// order (decode, queue, match, filter, enqueue, flush).
	Stages []StageQuantiles `json:"stages,omitempty"`
	// Links is the transport's neighbour-link health (see transport.LinkStatus).
	Links any `json:"links,omitempty"`
	// Queues maps peer ID to outbound send-queue depth.
	Queues map[string]int `json:"queues,omitempty"`
	// SlowTotal and SlowThresholdSeconds summarise the flight recorder; the
	// captured entries themselves are served by /debug/slow.
	SlowTotal            int64   `json:"slow_total,omitempty"`
	SlowThresholdSeconds float64 `json:"slow_threshold_seconds,omitempty"`
	// Shards is the matching engine's per-shard state (see
	// broker.ShardStatus): entries, compiled states, the snapshot epoch of
	// the slot's last rebuild, and that rebuild's duration.
	Shards any `json:"shards,omitempty"`
	// Publog is the durable-subscription publication log's state (see
	// publog.Status): segment count, byte size, and per-name cursor lag.
	Publog any `json:"publog,omitempty"`
}

// stageOrder fixes the pipeline order for the Stages list.
var stageOrder = map[string]int{
	trace.StageDecode:  0,
	trace.StageQueue:   1,
	trace.StageMatch:   2,
	trace.StageFilter:  3,
	trace.StageEnqueue: 4,
	trace.StageFlush:   5,
}

// Snapshot assembles one /statusz document and advances the rate baseline.
// Safe for concurrent use.
func (st *Status) Snapshot() StatusSnapshot {
	now := time.Now
	if st.Now != nil {
		now = st.Now
	}
	t := now()
	out := StatusSnapshot{
		Broker:        st.Broker,
		UnixNano:      t.UnixNano(),
		UptimeSeconds: t.Sub(st.Started).Seconds(),
	}
	if st.Registry != nil {
		cur := make(map[string]float64)
		for _, p := range st.Registry.Export() {
			switch p.Type {
			case "counter":
				if out.Counters == nil {
					out.Counters = make(map[string]float64)
				}
				out.Counters[p.Key] = p.Value
				cur[p.Key] = p.Value
			case "gauge":
				if out.Gauges == nil {
					out.Gauges = make(map[string]float64)
				}
				out.Gauges[p.Key] = p.Value
			case "histogram":
				if p.Name != "xbroker_stage_seconds" || p.Histogram == nil {
					continue
				}
				h := p.Histogram
				out.Stages = append(out.Stages, StageQuantiles{
					Stage: p.Labels["stage"],
					Count: h.Count,
					P50:   h.Quantile(0.50),
					P90:   h.Quantile(0.90),
					P99:   h.Quantile(0.99),
				})
			}
		}
		sort.Slice(out.Stages, func(i, j int) bool {
			return stageOrder[out.Stages[i].Stage] < stageOrder[out.Stages[j].Stage]
		})
		out.Epoch = uint64(out.Gauges["xbroker_snapshot_epoch"])
		out.RatesPerSec = st.rates(cur, t)
	}
	if st.Links != nil {
		out.Links = st.Links()
	}
	if st.Queues != nil {
		out.Queues = st.Queues()
	}
	if st.Slow != nil {
		out.SlowTotal = st.Slow.Total()
		out.SlowThresholdSeconds = st.Slow.Threshold().Seconds()
	}
	if st.Shards != nil {
		out.Shards = st.Shards()
	}
	if st.Publog != nil {
		out.Publog = st.Publog()
	}
	return out
}

// rates computes per-counter rates against the previous scrape and installs
// cur as the new baseline.
func (st *Status) rates(cur map[string]float64, t time.Time) map[string]float64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	prev, prevAt := st.prev, st.prevAt
	st.prev, st.prevAt = cur, t
	if prev == nil {
		return nil
	}
	dt := t.Sub(prevAt).Seconds()
	if dt <= 0 {
		return nil
	}
	out := make(map[string]float64, len(cur))
	for k, v := range cur {
		d := v - prev[k]
		if d < 0 {
			// Counter reset: the series restarted from zero, so everything
			// it shows now accumulated since the reset.
			d = v
		}
		out[k] = d / dt
	}
	return out
}
