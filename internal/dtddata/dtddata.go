// Package dtddata embeds the two DTD corpora used throughout the evaluation:
// a recursive NITF-like news schema and a non-recursive PSD-like protein
// schema. Both are synthetic stand-ins for the proprietary DTDs the paper
// used; DESIGN.md documents why the substitution preserves the experiments'
// behaviour.
package dtddata

import (
	_ "embed"
	"sync"

	"repro/internal/dtd"
)

//go:embed nitf.dtd
var nitfText string

//go:embed psd.dtd
var psdText string

// NITFText returns the raw NITF-like DTD source.
func NITFText() string { return nitfText }

// PSDText returns the raw PSD-like DTD source.
func PSDText() string { return psdText }

var (
	nitfOnce sync.Once
	nitfDTD  *dtd.DTD
	psdOnce  sync.Once
	psdDTD   *dtd.DTD
)

// NITF returns the parsed NITF-like DTD. The result is shared; callers must
// not mutate it.
func NITF() *dtd.DTD {
	nitfOnce.Do(func() { nitfDTD = dtd.MustParse(nitfText) })
	return nitfDTD
}

// PSD returns the parsed PSD-like DTD. The result is shared; callers must
// not mutate it.
func PSD() *dtd.DTD {
	psdOnce.Do(func() { psdDTD = dtd.MustParse(psdText) })
	return psdDTD
}
