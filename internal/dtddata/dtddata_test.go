package dtddata

import "testing"

func TestPSDParsesAndValidates(t *testing.T) {
	d := PSD()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Root != "ProteinDatabase" {
		t.Errorf("root = %q", d.Root)
	}
	if d.IsRecursive() {
		t.Error("PSD-like DTD must be non-recursive")
	}
	if n := len(d.Names()); n < 40 {
		t.Errorf("PSD-like DTD has %d elements, want >= 40", n)
	}
}

func TestNITFParsesAndValidates(t *testing.T) {
	d := NITF()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Root != "nitf" {
		t.Errorf("root = %q", d.Root)
	}
	if !d.IsRecursive() {
		t.Error("NITF-like DTD must be recursive")
	}
	rec := d.RecursiveElements()
	for _, want := range []string{"em", "block", "bq", "block-quote", "dl", "dd"} {
		if !rec[want] {
			t.Errorf("element %q should be recursive; got %v", want, rec)
		}
	}
	if n := len(d.Names()); n < 100 {
		t.Errorf("NITF-like DTD has %d elements, want >= 100", n)
	}
}

func TestSharedInstances(t *testing.T) {
	if NITF() != NITF() || PSD() != PSD() {
		t.Error("parsed DTDs should be shared singletons")
	}
}
