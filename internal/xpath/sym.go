package xpath

import (
	"sync/atomic"

	"repro/internal/symtab"
)

// This file threads the interned symbol alphabet (package symtab) through
// expression matching. An XPE lazily compiles its step name tests into
// []symtab.Sym once and caches the result, so the publication hot path
// compares uint32 symbols instead of strings. The string-based matchers
// (MatchesPath, MatchesPathAttrs) remain as the compatibility surface;
// publication paths converted once per hop (xmldoc.Publication.SymPath) are
// matched with the MatchesSymPath variants.

// Syms returns the interned name tests of all steps, with wildcard steps
// mapped to symtab.Wildcard. The slice is computed against the symtab
// Default table — and ONLY that table — on first use and cached; callers
// must treat it as read-only. It is safe for concurrent use: racing first
// calls compute equivalent slices and publish one atomically.
//
// The cache is keyed to nothing: it is valid precisely because Syms always
// interns against symtab.Default and a table never reassigns a symbol. A
// caller needing another table must use SymsIn, which guards the cache
// against cross-table pollution.
func (x *XPE) Syms() []symtab.Sym {
	return x.SymsIn(symtab.Default)
}

// SymsIn is Syms against an explicit symbol table. Results are cached only
// for symtab.Default; any other table is converted afresh on every call, so
// a multi-table caller can never read symbols cached from a different
// table (the symbols of two tables are unrelated integers — mixing them up
// would silently mis-route). TestSymsCacheIsDefaultTableOnly pins this.
func (x *XPE) SymsIn(t *symtab.Table) []symtab.Sym {
	cacheable := t == symtab.Default
	if cacheable {
		if s := x.syms.Load(); s != nil {
			return *s
		}
	}
	syms := make([]symtab.Sym, len(x.Steps))
	for i, st := range x.Steps {
		syms[i] = t.Intern(st.Name)
	}
	if cacheable {
		x.syms.Store(&syms)
	}
	return syms
}

// SymOverlaps is SymbolOverlaps over interned symbols: two name tests
// overlap unless both are concrete and differ.
func SymOverlaps(a, b symtab.Sym) bool {
	return a == symtab.Wildcard || b == symtab.Wildcard || a == b
}

// SymCovers is SymbolCovers over interned symbols: a covers b if a is the
// wildcard, or both are concrete and equal.
func SymCovers(a, b symtab.Sym) bool {
	if a == symtab.Wildcard {
		return true
	}
	return b != symtab.Wildcard && a == b
}

// StepCoversSym is StepCovers with the name-test comparison done on
// pre-interned symbols (sa, sb are the interned names of a, b). It lets bulk
// covering scans avoid re-comparing strings for every step pair.
func StepCoversSym(sa, sb symtab.Sym, a, b Step) bool {
	if !SymCovers(sa, sb) {
		return false
	}
	if a.Preds == "" || a.Preds == b.Preds {
		return true
	}
	return predsSubset(DecodePreds(a.Preds), DecodePreds(b.Preds))
}

// MatchesSymPath is MatchesPath over an interned publication path. Path
// elements outside the interned alphabet appear as symtab.None, which only
// wildcard steps match — exactly the string semantics, since a concrete step
// whose name was never interned cannot exist (Syms interns it).
func (x *XPE) MatchesSymPath(path []symtab.Sym) bool {
	if len(x.Steps) == 0 {
		return false
	}
	syms := x.Syms()
	if needsMemo(x.Steps) {
		return matchTable(x.Steps, len(path), x.Relative, func(i, p int) bool {
			return symStepMatches(syms[i], path[p])
		})
	}
	if x.Relative {
		for start := 0; start+len(syms) <= len(path); start++ {
			if symMatchFrom(x.Steps, syms, path, start) {
				return true
			}
		}
		return false
	}
	return symMatchFrom(x.Steps, syms, path, 0)
}

// symMatchFrom mirrors matchFrom with the name tests compared as symbols;
// steps and syms advance in lockstep (syms[i] is steps[i]'s interned name).
func symMatchFrom(steps []Step, syms []symtab.Sym, path []symtab.Sym, pos int) bool {
	if len(syms) == 0 {
		return true
	}
	if steps[0].Axis == Child {
		if pos >= len(path) || !symStepMatches(syms[0], path[pos]) {
			return false
		}
		return symMatchFrom(steps[1:], syms[1:], path, pos+1)
	}
	for p := pos; p < len(path); p++ {
		if symStepMatches(syms[0], path[p]) && symMatchFrom(steps[1:], syms[1:], path, p+1) {
			return true
		}
	}
	return false
}

func symStepMatches(step, elem symtab.Sym) bool {
	return step == symtab.Wildcard || step == elem
}

// MatchesSymPathAttrs is MatchesPathAttrs over an interned path: symbol
// comparison for the name tests, string evaluation for the attribute
// predicates (attrs[i] belongs to path[i]).
func (x *XPE) MatchesSymPathAttrs(path []symtab.Sym, attrs []map[string]string) bool {
	if len(x.Steps) == 0 {
		return false
	}
	if !x.HasPredicates() {
		return x.MatchesSymPath(path)
	}
	at := func(i int) map[string]string {
		if i < len(attrs) {
			return attrs[i]
		}
		return nil
	}
	syms := x.Syms()
	if needsMemo(x.Steps) {
		return matchTable(x.Steps, len(path), x.Relative, func(i, p int) bool {
			return symStepMatches(syms[i], path[p]) && predsSatisfied(x.Steps[i], at(p))
		})
	}
	if x.Relative {
		for start := 0; start+len(syms) <= len(path); start++ {
			if symMatchFromAttrs(x.Steps, syms, path, start, at) {
				return true
			}
		}
		return false
	}
	return symMatchFromAttrs(x.Steps, syms, path, 0, at)
}

func symMatchFromAttrs(steps []Step, syms []symtab.Sym, path []symtab.Sym, pos int, at func(int) map[string]string) bool {
	if len(syms) == 0 {
		return true
	}
	if steps[0].Axis == Child {
		if pos >= len(path) || !symStepMatches(syms[0], path[pos]) || !predsSatisfied(steps[0], at(pos)) {
			return false
		}
		return symMatchFromAttrs(steps[1:], syms[1:], path, pos+1, at)
	}
	for p := pos; p < len(path); p++ {
		if symStepMatches(syms[0], path[p]) && predsSatisfied(steps[0], at(p)) &&
			symMatchFromAttrs(steps[1:], syms[1:], path, p+1, at) {
			return true
		}
	}
	return false
}

// symsView is the cached compiled form; a named type keeps the XPE field
// declaration readable.
type symsView = atomic.Pointer[[]symtab.Sym]
