package xpath

// This file bounds the cost of expression matching. The recursive matchers
// (matchFrom and its symbol/predicate variants) backtrack at every "//"
// step: the step may bind at any remaining path position, and on a
// non-matching path the recursion explores the full choice tree — with d
// descendant steps that is O(path^d). Parsed expressions are rarely deep
// enough to matter, but XPEs also arrive gob-decoded off the wire, where
// nothing limits the step list, and a crafted "//*//*//*..." expression
// wedges a broker's matching workers at full CPU.
//
// Expressions with at most one descendant step cannot blow up (the choice
// tree is linear), so the common case keeps the allocation-free recursion;
// everything else goes through matchTable, a bottom-up evaluation of the
// same recurrence in O(steps × path) time and O(path) space.

// needsMemo reports whether naive backtracking could be super-linear: two
// or more descendant steps.
func needsMemo(steps []Step) bool {
	n := 0
	for _, s := range steps {
		if s.Axis == Descendant {
			if n++; n == 2 {
				return true
			}
		}
	}
	return false
}

// matchTable evaluates the matchFrom recurrence without backtracking.
// match(i, p) reports whether steps[i]'s name test (and predicates, for the
// annotated variants) accepts path element p; plen is the path length. For
// a relative expression every start position is tried, sharing the one
// table. The recurrence per row i (processed last step first):
//
//	t[p] = match(i, p) && next[p+1]          // bind the step at p
//	     || (steps[i].Axis == Descendant && t[p+1])  // or "//" skips p
//
// which unrolls the descendant case to "the step binds at some p' >= p",
// exactly the recursive matchers' loop.
func matchTable(steps []Step, plen int, relative bool, match func(i, p int) bool) bool {
	if len(steps) == 0 {
		return false
	}
	t := make([]bool, plen+1)
	next := make([]bool, plen+1)
	for p := range next {
		next[p] = true // row len(steps): no steps left matches everywhere
	}
	for i := len(steps) - 1; i >= 0; i-- {
		desc := steps[i].Axis == Descendant
		t[plen] = false // a remaining step cannot bind past the path's end
		for p := plen - 1; p >= 0; p-- {
			ok := match(i, p) && next[p+1]
			if !ok && desc {
				ok = t[p+1]
			}
			t[p] = ok
		}
		t, next = next, t
	}
	if relative {
		for start := 0; start+len(steps) <= plen; start++ {
			if next[start] {
				return true
			}
		}
		return false
	}
	return next[0]
}
