package xpath

import (
	"fmt"
	"sort"
	"strings"
)

// Pred is an attribute equality predicate on a location step:
// "[@name='value']". The paper notes its approach "could be easily extended
// to element attributes and content ... through value comparison"; this file
// is that extension. A step may carry several predicates; all must hold.
//
// On a Step, predicates are stored in canonical encoded form (Step.Preds),
// which keeps Step a comparable value type; EncodePreds and DecodePreds
// convert.
type Pred struct {
	Attr  string
	Value string
}

// String renders the predicate in XPath syntax. The value is single-quoted
// unless it contains a single quote, in which case double quotes are used —
// a parsed value never contains its own quote character, so rendering a
// parsed predicate always round-trips. (A hand-built Pred whose value holds
// BOTH quote characters is not expressible in the syntax at all.)
func (p Pred) String() string {
	if strings.Contains(p.Value, "'") {
		return "[@" + p.Attr + "=\"" + p.Value + "\"]"
	}
	return "[@" + p.Attr + "='" + p.Value + "']"
}

// EncodePreds renders predicates in canonical (sorted) form, the
// representation Step.Preds holds. It returns "" for no predicates.
func EncodePreds(preds []Pred) string {
	if len(preds) == 0 {
		return ""
	}
	sorted := make([]Pred, len(preds))
	copy(sorted, preds)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Attr != sorted[j].Attr {
			return sorted[i].Attr < sorted[j].Attr
		}
		return sorted[i].Value < sorted[j].Value
	})
	var b strings.Builder
	for _, p := range sorted {
		b.WriteString(p.String())
	}
	return b.String()
}

// DecodePreds parses a canonical predicate string back into predicates.
// Malformed input yields nil; Step.Preds is only ever produced by
// EncodePreds or the parser, which guarantee well-formedness.
func DecodePreds(encoded string) []Pred {
	if encoded == "" {
		return nil
	}
	preds, rest, err := parsePredicates(encoded, 0)
	if err != nil || rest != len(encoded) {
		return nil
	}
	return preds
}

// canonicalPreds re-encodes a predicate string in canonical (sorted) order.
// Parser- and EncodePreds-produced strings are already canonical and come
// back unchanged; a hand-built unsorted encoding is normalised so Key() is
// stable under predicate order. Strings that do not parse as predicates are
// returned verbatim (they can only come from hand-built steps, and keeping
// them distinct is the safe choice).
func canonicalPreds(encoded string) string {
	if encoded == "" {
		return ""
	}
	preds := DecodePreds(encoded)
	if preds == nil {
		return encoded
	}
	if canonical := EncodePreds(preds); canonical != encoded {
		return canonical
	}
	return encoded
}

// HasPredicates reports whether any step carries attribute predicates.
func (x *XPE) HasPredicates() bool {
	for _, s := range x.Steps {
		if s.Preds != "" {
			return true
		}
	}
	return false
}

// predsSatisfied reports whether the step's predicates hold for the
// attributes of one path element. A missing attribute fails its predicate.
func predsSatisfied(s Step, attrs map[string]string) bool {
	if s.Preds == "" {
		return true
	}
	for _, p := range DecodePreds(s.Preds) {
		if attrs == nil {
			return false
		}
		if v, ok := attrs[p.Attr]; !ok || v != p.Value {
			return false
		}
	}
	return true
}

// stepMatchesAnnotated is stepMatches plus predicate evaluation.
func stepMatchesAnnotated(s Step, name string, attrs map[string]string) bool {
	return stepMatches(s, name) && predsSatisfied(s, attrs)
}

// MatchesPathAttrs is MatchesPath with attribute predicates evaluated
// against per-element attribute maps (attrs[i] belongs to path[i]; a nil
// slice or nil entry means "no attributes", which fails any predicate).
// Expressions without predicates behave exactly like MatchesPath.
func (x *XPE) MatchesPathAttrs(path []string, attrs []map[string]string) bool {
	if len(x.Steps) == 0 {
		return false
	}
	if !x.HasPredicates() {
		return x.MatchesPath(path)
	}
	at := func(i int) map[string]string {
		if i < len(attrs) {
			return attrs[i]
		}
		return nil
	}
	if needsMemo(x.Steps) {
		return matchTable(x.Steps, len(path), x.Relative, func(i, p int) bool {
			return stepMatchesAnnotated(x.Steps[i], path[p], at(p))
		})
	}
	if x.Relative {
		for start := 0; start+len(x.Steps) <= len(path); start++ {
			if matchFromAttrs(x.Steps, path, start, at) {
				return true
			}
		}
		return false
	}
	return matchFromAttrs(x.Steps, path, 0, at)
}

func matchFromAttrs(steps []Step, path []string, pos int, at func(int) map[string]string) bool {
	if len(steps) == 0 {
		return true
	}
	s := steps[0]
	if s.Axis == Child {
		if pos >= len(path) || !stepMatchesAnnotated(s, path[pos], at(pos)) {
			return false
		}
		return matchFromAttrs(steps[1:], path, pos+1, at)
	}
	for p := pos; p < len(path); p++ {
		if stepMatchesAnnotated(s, path[p], at(p)) && matchFromAttrs(steps[1:], path, p+1, at) {
			return true
		}
	}
	return false
}

// StepCovers extends the element-wise covering rule to predicates: step a
// covers step b iff a's name test covers b's and a's predicates are a
// subset of b's (fewer constraints admit more publications).
func StepCovers(a, b Step) bool {
	if !SymbolCovers(a.Name, b.Name) {
		return false
	}
	if a.Preds == "" || a.Preds == b.Preds {
		return true
	}
	return predsSubset(DecodePreds(a.Preds), DecodePreds(b.Preds))
}

// predsSubset reports whether every predicate of a also appears in b.
func predsSubset(a, b []Pred) bool {
	if len(a) > len(b) {
		return false
	}
outer:
	for _, pa := range a {
		for _, pb := range b {
			if pa == pb {
				continue outer
			}
		}
		return false
	}
	return true
}

// parsePredicates consumes zero or more "[@name='value']" groups starting
// at input[i], returning the predicates and the new offset.
func parsePredicates(input string, i int) ([]Pred, int, error) {
	var preds []Pred
	for i < len(input) && input[i] == '[' {
		j := i + 1
		if j >= len(input) || input[j] != '@' {
			return nil, i, fmt.Errorf("expected '@' after '[' at offset %d", i)
		}
		j++
		nameStart := j
		for j < len(input) && input[j] != '=' {
			j++
		}
		if j >= len(input) {
			return nil, i, fmt.Errorf("unterminated predicate at offset %d", i)
		}
		name := input[nameStart:j]
		if name == "" {
			return nil, i, fmt.Errorf("empty attribute name at offset %d", nameStart)
		}
		j++ // '='
		if j >= len(input) || (input[j] != '\'' && input[j] != '"') {
			return nil, i, fmt.Errorf("expected quoted value at offset %d", j)
		}
		quote := input[j]
		j++
		valStart := j
		end := strings.IndexByte(input[j:], quote)
		if end < 0 {
			return nil, i, fmt.Errorf("unterminated value at offset %d", valStart)
		}
		j += end
		value := input[valStart:j]
		j++ // closing quote
		if j >= len(input) || input[j] != ']' {
			return nil, i, fmt.Errorf("expected ']' at offset %d", j)
		}
		j++
		preds = append(preds, Pred{Attr: name, Value: value})
		i = j
	}
	return preds, i, nil
}
