package xpath

import "testing"

// FuzzParseXPE fuzzes the XPath parser. For every input the parser accepts,
// the canonical rendering must re-parse to a structurally equal expression
// (String is a fixpoint), and the matching entry points must not panic. The
// seed corpus is drawn from the expressions the unit tests exercise,
// including the attribute-predicate extension with both quote styles.
func FuzzParseXPE(f *testing.F) {
	seeds := []string{
		"/a",
		"//a",
		"/a/b/c",
		"/a//b",
		"a/b",
		"*/c//d",
		"/stock/quote/price",
		"/a/*//b",
		"//*",
		"/nitf/body//p",
		"/a[@x='1']",
		"/a[@x='1'][@y='2']/b",
		`/a[@x="it's"]`,
		"//claim[@lang='en']//part",
		"/",
		"//",
		"/a/",
		"a[",
		"/a[@]",
		"/a[@x=''] ",
		"/a[@x='v]",
		"/a b",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		x, err := Parse(input)
		if err != nil {
			return // rejected input: only absence of panics is required
		}
		canonical := x.String()
		y, err := Parse(canonical)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canonical, input, err)
		}
		if !x.Equal(y) {
			t.Fatalf("round-trip changed %q: %q vs %q", input, canonical, y.String())
		}
		if again := y.String(); again != canonical {
			t.Fatalf("String is not a fixpoint: %q -> %q", canonical, again)
		}
		// The matchers must tolerate any accepted expression.
		for _, path := range [][]string{nil, {"a"}, {"a", "b", "c"}} {
			x.MatchesPath(path)
			x.MatchesPathAttrs(path, []map[string]string{{"x": "1"}})
		}
		_ = x.Segments()
		_ = x.IsSimple()
		_ = x.HasWildcard()
		_ = x.HasPredicates()
	})
}
