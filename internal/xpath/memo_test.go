package xpath

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/symtab"
)

// A wire-decoded expression made of many descendant wildcard steps used to
// drive the recursive matcher into exponential backtracking — enough to
// wedge a broker's matching workers. The memoised table must answer in
// microseconds.
func TestHostileDescendantExpressionCompletes(t *testing.T) {
	steps := make([]Step, 0, 41)
	for i := 0; i < 40; i++ {
		steps = append(steps, Step{Axis: Descendant, Name: Wildcard})
	}
	steps = append(steps, Step{Axis: Child, Name: "never"})
	x := New(false, steps...)
	path := make([]string, 80)
	for i := range path {
		path[i] = "a"
	}

	done := make(chan bool, 1)
	go func() { done <- x.MatchesPath(path) }()
	select {
	case got := <-done:
		if got {
			t.Error("expression with unmatched trailing step reported a match")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("MatchesPath did not return — exponential backtracking is back")
	}

	// The same expression minus the impossible tail must still match.
	ok := New(false, steps[:40]...)
	if !ok.MatchesPath(path) {
		t.Error("pure descendant-wildcard expression must match a long path")
	}
}

// matchTable must agree with the recursive matcher on every input; the
// recursion is the executable spec for sizes where it is tractable.
func TestMatchTableAgreesWithRecursion(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	names := []string{"a", "b", "c", Wildcard}
	for trial := 0; trial < 5000; trial++ {
		nsteps := 1 + r.Intn(5)
		steps := make([]Step, nsteps)
		for i := range steps {
			axis := Child
			if r.Intn(2) == 0 {
				axis = Descendant
			}
			steps[i] = Step{Axis: axis, Name: names[r.Intn(len(names))]}
		}
		relative := r.Intn(2) == 0
		if relative {
			steps[0].Axis = Child
		}
		path := make([]string, r.Intn(7))
		for i := range path {
			path[i] = names[r.Intn(3)] // concrete names only
		}

		var want bool
		if relative {
			for start := 0; start+len(steps) <= len(path); start++ {
				if matchFrom(steps, path, start) {
					want = true
					break
				}
			}
		} else {
			want = matchFrom(steps, path, 0)
		}
		got := matchTable(steps, len(path), relative, func(i, p int) bool {
			return stepMatches(steps[i], path[p])
		})
		if got != want {
			x := New(relative, steps...)
			t.Fatalf("trial %d: %s on %v: matchTable=%v recursion=%v", trial, x, path, got, want)
		}

		// The symbol matcher must agree too, through the public entry point
		// (needsMemo decides the engine; both answers must equal the spec).
		x := New(relative, steps...)
		if x.MatchesPath(path) != want {
			t.Fatalf("trial %d: MatchesPath disagrees with spec on %s %v", trial, x, path)
		}
		if x.MatchesSymPath(symtab.InternPath(path)) != want {
			t.Fatalf("trial %d: MatchesSymPath disagrees with spec on %s %v", trial, x, path)
		}
	}
}

func TestValidate(t *testing.T) {
	for _, src := range []string{"/a/b", "//a//*", "a/b[@x='1']", "/a//b/c"} {
		if err := MustParse(src).Validate(); err != nil {
			t.Errorf("parsed %q fails Validate: %v", src, err)
		}
	}
	bad := []*XPE{
		New(false),                           // no steps
		New(false, Step{Axis: 7, Name: "a"}), // unknown axis
		New(false, Step{Axis: Child, Name: ""}),
		New(false, Step{Axis: Child, Name: "a/b"}),
		New(true, Step{Axis: Descendant, Name: "a"}), // relative with leading //
		New(false, Step{Axis: Child, Name: "a", Preds: "garbage"}),
	}
	for i, x := range bad {
		if err := x.Validate(); err == nil {
			t.Errorf("bad[%d] (%#v) passed Validate", i, x.Steps)
		}
	}
}
