package xpath

import (
	"testing"

	"repro/internal/symtab"
)

// TestSymsCacheIsDefaultTableOnly is the regression guard for the Syms
// cache contract: the cached slice belongs to symtab.Default alone. A
// future caller interning the same expression into a private table must get
// that table's symbols — never the Default-table cache — and must not
// poison the cache for Default-table users in either call order.
func TestSymsCacheIsDefaultTableOnly(t *testing.T) {
	private := symtab.NewTable()
	// Offset the private table's assignments so equal names get different
	// symbols in the two tables — a cross-table cache read then cannot pass
	// by coincidence.
	private.Intern("offset-0")
	private.Intern("offset-1")

	t.Run("private-then-default", func(t *testing.T) {
		x := MustParse("/guard-a/*/guard-b")
		fromPrivate := x.SymsIn(private)
		if x.syms.Load() != nil {
			t.Fatal("SymsIn(private) must not populate the Default cache")
		}
		fromDefault := x.Syms()
		if x.syms.Load() == nil {
			t.Fatal("Syms must populate the Default cache")
		}
		checkAgainst(t, x, private, fromPrivate)
		checkAgainst(t, x, symtab.Default, fromDefault)
		if fromPrivate[0] == fromDefault[0] && fromPrivate[2] == fromDefault[2] {
			t.Fatal("tables unexpectedly agree; the guard test lost its teeth")
		}
	})

	t.Run("default-then-private", func(t *testing.T) {
		x := MustParse("/guard-c/guard-d")
		fromDefault := x.Syms()
		fromPrivate := x.SymsIn(private)
		checkAgainst(t, x, symtab.Default, fromDefault)
		checkAgainst(t, x, private, fromPrivate)
		// The cache must still serve Default-table symbols.
		again := x.Syms()
		for i := range again {
			if again[i] != fromDefault[i] {
				t.Fatalf("cache poisoned: step %d %v != %v", i, again[i], fromDefault[i])
			}
		}
	})

	t.Run("wildcard-is-shared-sentinel", func(t *testing.T) {
		// The Wildcard sentinel is table-independent by construction.
		x := MustParse("/*")
		if got := x.SymsIn(private)[0]; got != symtab.Wildcard {
			t.Fatalf("wildcard interned to %v", got)
		}
	})
}

// checkAgainst verifies every returned symbol round-trips through the table
// it was requested from.
func checkAgainst(t *testing.T, x *XPE, tbl *symtab.Table, syms []symtab.Sym) {
	t.Helper()
	if len(syms) != len(x.Steps) {
		t.Fatalf("len(syms) = %d, want %d", len(syms), len(x.Steps))
	}
	for i, s := range x.Steps {
		want := s.Name
		if got := tbl.NameOf(syms[i]); got != want {
			t.Fatalf("step %d: symbol %v names %q in its table, want %q", i, syms[i], got, want)
		}
	}
}
