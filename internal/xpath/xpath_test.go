package xpath

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseValid(t *testing.T) {
	tests := []struct {
		in       string
		relative bool
		steps    []Step
	}{
		{"/a", false, []Step{{Axis: Child, Name: "a"}}},
		{"/a/b/c", false, []Step{{Axis: Child, Name: "a"}, {Axis: Child, Name: "b"}, {Axis: Child, Name: "c"}}},
		{"/a//b", false, []Step{{Axis: Child, Name: "a"}, {Axis: Descendant, Name: "b"}}},
		{"//a", false, []Step{{Axis: Descendant, Name: "a"}}},
		{"//a/b", false, []Step{{Axis: Descendant, Name: "a"}, {Axis: Child, Name: "b"}}},
		{"a/b", true, []Step{{Axis: Child, Name: "a"}, {Axis: Child, Name: "b"}}},
		{"*/c", true, []Step{{Axis: Child, Name: "*"}, {Axis: Child, Name: "c"}}},
		{"d/a", true, []Step{{Axis: Child, Name: "d"}, {Axis: Child, Name: "a"}}},
		{"*/a//d/*/c//b", true, []Step{
			{Axis: Child, Name: "*"}, {Axis: Child, Name: "a"}, {Axis: Descendant, Name: "d"},
			{Axis: Child, Name: "*"}, {Axis: Child, Name: "c"}, {Axis: Descendant, Name: "b"},
		}},
		{"/a/*/*/c/c/d", false, []Step{
			{Axis: Child, Name: "a"}, {Axis: Child, Name: "*"}, {Axis: Child, Name: "*"},
			{Axis: Child, Name: "c"}, {Axis: Child, Name: "c"}, {Axis: Child, Name: "d"},
		}},
		{"/ns:item/sub-part/x_1", false, []Step{
			{Axis: Child, Name: "ns:item"}, {Axis: Child, Name: "sub-part"}, {Axis: Child, Name: "x_1"},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			x, err := Parse(tt.in)
			if err != nil {
				t.Fatalf("Parse(%q) error: %v", tt.in, err)
			}
			if x.Relative != tt.relative {
				t.Errorf("Relative = %v, want %v", x.Relative, tt.relative)
			}
			if len(x.Steps) != len(tt.steps) {
				t.Fatalf("got %d steps, want %d", len(x.Steps), len(tt.steps))
			}
			for i := range tt.steps {
				if x.Steps[i] != tt.steps[i] {
					t.Errorf("step %d = %+v, want %+v", i, x.Steps[i], tt.steps[i])
				}
			}
		})
	}
}

func TestParseInvalid(t *testing.T) {
	for _, in := range []string{
		"", "/", "//", "/a/", "/a//", "a//", "/a///b", "/a b", "/a/&x", "/a//%",
	} {
		t.Run(in, func(t *testing.T) {
			if _, err := Parse(in); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", in)
			}
		})
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, in := range []string{
		"/a", "/a/b/c", "/a//b", "//a", "//a/b/*", "a/b", "*/c//d", "/a/*/*/c",
	} {
		x := MustParse(in)
		if got := x.String(); got != in {
			t.Errorf("String(Parse(%q)) = %q", in, got)
		}
	}
}

func TestSegments(t *testing.T) {
	tests := []struct {
		in   string
		want []Segment
	}{
		{"/a/b/c", []Segment{{Names: []string{"a", "b", "c"}}}},
		{"/a//b/c", []Segment{
			{Names: []string{"a"}},
			{Names: []string{"b", "c"}, AfterDescendant: true},
		}},
		{"//a", []Segment{{Names: []string{"a"}, AfterDescendant: true}}},
		{"*/a//d/*/c//b", []Segment{
			{Names: []string{"*", "a"}},
			{Names: []string{"d", "*", "c"}, AfterDescendant: true},
			{Names: []string{"b"}, AfterDescendant: true},
		}},
	}
	for _, tt := range tests {
		segs := MustParse(tt.in).Segments()
		if len(segs) != len(tt.want) {
			t.Fatalf("%s: got %d segments, want %d", tt.in, len(segs), len(tt.want))
		}
		for i, s := range segs {
			if s.AfterDescendant != tt.want[i].AfterDescendant {
				t.Errorf("%s seg %d AfterDescendant = %v", tt.in, i, s.AfterDescendant)
			}
			if strings.Join(s.Names, "/") != strings.Join(tt.want[i].Names, "/") {
				t.Errorf("%s seg %d names = %v, want %v", tt.in, i, s.Names, tt.want[i].Names)
			}
		}
	}
}

func TestMatchesPath(t *testing.T) {
	tests := []struct {
		xpe  string
		path string // '/'-joined
		want bool
	}{
		{"/a", "a", true},
		{"/a", "a/b", true}, // selects the a node, which exists
		{"/a", "b/a", false},
		{"/a/b", "a/b/c", true},
		{"/a/b", "a/c/b", false},
		{"/a/*", "a/x/y", true},
		{"/a//c", "a/b/c", true},
		{"/a//c", "a/c", true}, // zero-gap descendant
		{"/a//c", "c/a", false},
		{"//c", "a/b/c", true},
		{"//c", "a/b/d", false},
		{"b/c", "a/b/c", true},
		{"b/c", "a/b/d", false},
		{"*/c", "a/c/x", true},
		{"/a/b//d//f", "a/b/c/d/e/f", true},
		{"/a/b//d//f", "a/b/c/e/f", false},
		{"/a/b/c/d", "a/b/c", false}, // XPE longer than path
		{"*", "anything", true},
		{"/*", "x/y", true},
	}
	for _, tt := range tests {
		t.Run(tt.xpe+" vs "+tt.path, func(t *testing.T) {
			x := MustParse(tt.xpe)
			path := strings.Split(tt.path, "/")
			if got := x.MatchesPath(path); got != tt.want {
				t.Errorf("MatchesPath = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSymbolRules(t *testing.T) {
	tests := []struct {
		a, b           string
		overlap, cover bool
	}{
		{"*", "*", true, true},
		{"*", "t", true, true},
		{"t", "*", true, false},
		{"t", "t", true, true},
		{"t1", "t2", false, false},
	}
	for _, tt := range tests {
		if got := SymbolOverlaps(tt.a, tt.b); got != tt.overlap {
			t.Errorf("SymbolOverlaps(%q,%q) = %v, want %v", tt.a, tt.b, got, tt.overlap)
		}
		if got := SymbolCovers(tt.a, tt.b); got != tt.cover {
			t.Errorf("SymbolCovers(%q,%q) = %v, want %v", tt.a, tt.b, got, tt.cover)
		}
	}
}

func TestIsSimpleAndWildcard(t *testing.T) {
	if !MustParse("/a/b").IsSimple() {
		t.Error("/a/b should be simple")
	}
	if MustParse("/a//b").IsSimple() {
		t.Error("/a//b should not be simple")
	}
	if MustParse("/a/b").HasWildcard() {
		t.Error("/a/b has no wildcard")
	}
	if !MustParse("/a/*").HasWildcard() {
		t.Error("/a/* has a wildcard")
	}
}

func TestCloneAndEqual(t *testing.T) {
	x := MustParse("/a/*//b")
	y := x.Clone()
	if !x.Equal(y) {
		t.Fatal("clone not equal")
	}
	y.Steps[0].Name = "z"
	if x.Equal(y) {
		t.Fatal("mutated clone still equal")
	}
	if x.Steps[0].Name != "a" {
		t.Fatal("clone aliases original")
	}
	if x.Equal(MustParse("a/*//b")) {
		t.Error("absolute equals relative")
	}
}

// randomXPE builds a random expression over a small alphabet.
func randomXPE(r *rand.Rand, maxLen int) *XPE {
	n := 1 + r.Intn(maxLen)
	x := &XPE{Relative: r.Intn(2) == 0}
	alphabet := []string{"a", "b", "c", "d", Wildcard}
	for i := 0; i < n; i++ {
		axis := Child
		if i > 0 || !x.Relative {
			if r.Intn(4) == 0 {
				axis = Descendant
			}
		}
		x.Steps = append(x.Steps, Step{Axis: axis, Name: alphabet[r.Intn(len(alphabet))]})
	}
	return x
}

func randomPath(r *rand.Rand, maxLen int) []string {
	n := 1 + r.Intn(maxLen)
	alphabet := []string{"a", "b", "c", "d", "e"}
	p := make([]string, n)
	for i := range p {
		p[i] = alphabet[r.Intn(len(alphabet))]
	}
	return p
}

func TestQuickStringParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		x := randomXPE(r, 8)
		y, err := Parse(x.String())
		return err == nil && x.Equal(y)
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickRelativeImpliesFloating checks that a relative XPE matches a path
// iff it matches when prefixed by a leading descendant operator.
func TestQuickRelativeImpliesFloating(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		x := randomXPE(r, 6)
		if !x.Relative {
			continue
		}
		anchored := x.Clone()
		anchored.Relative = false
		anchored.Steps[0].Axis = Descendant
		p := randomPath(r, 10)
		if x.MatchesPath(p) != anchored.MatchesPath(p) {
			t.Fatalf("relative %s and anchored %s disagree on %v", x, anchored, p)
		}
	}
}

// TestQuickWildcardWidens checks monotonicity: replacing a name test by the
// wildcard can only grow the set of matched paths.
func TestQuickWildcardWidens(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		x := randomXPE(r, 6)
		w := x.Clone()
		w.Steps[r.Intn(len(w.Steps))].Name = Wildcard
		p := randomPath(r, 10)
		if x.MatchesPath(p) && !w.MatchesPath(p) {
			t.Fatalf("%s matches %v but widened %s does not", x, p, w)
		}
	}
}

// TestQuickChildToDescendantWidens checks that loosening a "/" into "//"
// grows the matched set.
func TestQuickChildToDescendantWidens(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		x := randomXPE(r, 6)
		w := x.Clone()
		j := r.Intn(len(w.Steps))
		if j == 0 && w.Relative {
			continue
		}
		w.Steps[j].Axis = Descendant
		p := randomPath(r, 10)
		if x.MatchesPath(p) && !w.MatchesPath(p) {
			t.Fatalf("%s matches %v but loosened %s does not", x, p, w)
		}
	}
}

// TestQuickPrefixMatchesExtensions: if an absolute XPE matches a path, it
// matches every extension of that path (the selected node still exists).
func TestQuickPrefixMatchesExtensions(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		x := randomXPE(r, 6)
		p := randomPath(r, 8)
		if !x.MatchesPath(p) {
			continue
		}
		ext := append(append([]string{}, p...), "zz")
		if !x.MatchesPath(ext) {
			t.Fatalf("%s matches %v but not its extension", x, p)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse("/a/*/b//c/d/*//e/f/g"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchesPath(b *testing.B) {
	x := MustParse("/a/*//d/*/c//b")
	path := []string{"a", "x", "q", "d", "y", "c", "m", "n", "b"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.MatchesPath(path)
	}
}
