// Package xpath implements the XPath expression (XPE) fragment used by the
// XML/XPath routing system: single-path expressions built from the
// parent-child operator "/", the ancestor-descendant operator "//", element
// name tests, and the wildcard "*".
//
// An XPE is either absolute (it begins with "/" or "//") or relative. A
// publication in the routing system is a root-to-leaf path of an XML
// document, represented as a sequence of element names; XPEs are evaluated
// against such paths. An absolute XPE matches a path if it matches a prefix
// of it (the expression then selects an existing node of the document), a
// relative XPE may begin matching at any position, and a "//" step may skip
// any number of intermediate elements.
package xpath

import (
	"fmt"
	"strings"
)

// Wildcard is the element test that matches any element name.
const Wildcard = "*"

// Axis identifies the operator that connects a step to the part of the
// expression before it.
type Axis uint8

const (
	// Child is the parent-child operator "/".
	Child Axis = iota
	// Descendant is the ancestor-descendant operator "//".
	Descendant
)

// String returns the XPath spelling of the axis.
func (a Axis) String() string {
	if a == Descendant {
		return "//"
	}
	return "/"
}

// Step is a single location step: an axis and an element name test. Name is
// either an element name or Wildcard. Preds holds attribute predicates in
// the canonical encoded form produced by EncodePreds ("" when there are
// none); keeping the encoding in a string keeps Step comparable.
type Step struct {
	Axis  Axis
	Name  string
	Preds string
}

// IsWildcard reports whether the step's name test matches any element.
func (s Step) IsWildcard() bool { return s.Name == Wildcard }

// XPE is a parsed single-path XPath expression.
//
// The zero value is an empty absolute expression, which is not valid;
// construct XPEs with Parse or New.
type XPE struct {
	// Relative records whether the expression lacks a leading "/" (or "//").
	Relative bool
	// Steps holds the location steps in document order. For an absolute
	// expression, Steps[0].Axis is the operator that follows the root: "/a"
	// yields {Child, "a"} and "//a" yields {Descendant, "a"}. For a relative
	// expression, Steps[0].Axis is always Child.
	Steps []Step

	// syms caches the interned form of the step name tests (see Syms). It is
	// populated lazily and atomically, so concurrent matchers share one
	// compilation. Steps must not be mutated after the first Syms call.
	syms symsView
}

// New constructs an XPE from explicit steps. It does not validate names.
func New(relative bool, steps ...Step) *XPE {
	return &XPE{Relative: relative, Steps: steps}
}

// Len returns the number of location steps.
func (x *XPE) Len() int { return len(x.Steps) }

// IsAbsolute reports whether the expression is anchored at the document root.
func (x *XPE) IsAbsolute() bool { return !x.Relative }

// IsSimple reports whether the expression contains no "//" operator beyond a
// possible leading one on a relative expression. The paper calls expressions
// without any "//" operator "simple"; we apply that test to all steps.
func (x *XPE) IsSimple() bool {
	for _, s := range x.Steps {
		if s.Axis == Descendant {
			return false
		}
	}
	return true
}

// HasWildcard reports whether any step's name test is the wildcard.
func (x *XPE) HasWildcard() bool {
	for _, s := range x.Steps {
		if s.IsWildcard() {
			return true
		}
	}
	return false
}

// Names returns the sequence of name tests of all steps.
func (x *XPE) Names() []string {
	names := make([]string, len(x.Steps))
	for i, s := range x.Steps {
		names[i] = s.Name
	}
	return names
}

// Clone returns a deep copy of the expression.
func (x *XPE) Clone() *XPE {
	steps := make([]Step, len(x.Steps))
	copy(steps, x.Steps)
	return &XPE{Relative: x.Relative, Steps: steps}
}

// Equal reports structural equality of two expressions.
func (x *XPE) Equal(y *XPE) bool {
	if x.Relative != y.Relative || len(x.Steps) != len(y.Steps) {
		return false
	}
	for i := range x.Steps {
		if x.Steps[i] != y.Steps[i] {
			return false
		}
	}
	return true
}

// String renders the expression in XPath syntax. The result round-trips
// through Parse.
func (x *XPE) String() string {
	var b strings.Builder
	for i, s := range x.Steps {
		switch {
		case i == 0 && x.Relative:
			// A relative expression has no leading operator.
		default:
			b.WriteString(s.Axis.String())
		}
		b.WriteString(s.Name)
		b.WriteString(s.Preds)
	}
	return b.String()
}

// Key returns a canonical map key for the expression: the String rendering
// with every step's predicates in canonical (sorted) order. Parsed
// expressions already store canonical predicate encodings, so for them Key
// equals String; hand-built steps whose Preds list the same predicates in a
// different order still produce the same Key, so routing tables never store
// one logical subscription twice.
func (x *XPE) Key() string {
	var b strings.Builder
	for i, s := range x.Steps {
		switch {
		case i == 0 && x.Relative:
			// A relative expression has no leading operator.
		default:
			b.WriteString(s.Axis.String())
		}
		b.WriteString(s.Name)
		b.WriteString(canonicalPreds(s.Preds))
	}
	return b.String()
}

// Segment is a maximal run of steps connected only by "/" operators. The
// covering and advertisement-matching algorithms decompose an XPE at its
// "//" operators into segments.
type Segment struct {
	// Names are the name tests of the run, in order.
	Names []string
	// AfterDescendant records whether the segment is preceded by a "//"
	// operator (true for every segment except possibly the first).
	AfterDescendant bool
}

// Segments splits the expression at its "//" operators. The first segment of
// an absolute expression starting with "/" has AfterDescendant == false; a
// leading "//" yields a first segment with AfterDescendant == true. A
// relative expression's first segment has AfterDescendant == false but is
// unanchored by virtue of x.Relative.
func (x *XPE) Segments() []Segment {
	if len(x.Steps) == 0 {
		return nil
	}
	var segs []Segment
	cur := Segment{AfterDescendant: x.Steps[0].Axis == Descendant}
	for i, s := range x.Steps {
		if i > 0 && s.Axis == Descendant {
			segs = append(segs, cur)
			cur = Segment{AfterDescendant: true}
		}
		cur.Names = append(cur.Names, s.Name)
	}
	segs = append(segs, cur)
	return segs
}

// Parse parses an XPath expression of the supported fragment. It accepts
// absolute expressions ("/a/*//b", "//a"), and relative expressions ("a/b",
// "*/c//d"). It rejects empty expressions, empty steps, and names containing
// characters outside the NCName-like set [A-Za-z0-9._:-].
func Parse(input string) (*XPE, error) {
	if input == "" {
		return nil, fmt.Errorf("xpath: empty expression")
	}
	x := &XPE{Relative: true}
	i := 0
	axis := Child
	switch {
	case strings.HasPrefix(input, "//"):
		x.Relative = false
		axis = Descendant
		i = 2
	case input[0] == '/':
		x.Relative = false
		i = 1
	}
	for {
		start := i
		for i < len(input) && input[i] != '/' && input[i] != '[' {
			i++
		}
		name := input[start:i]
		if err := validateName(name); err != nil {
			return nil, fmt.Errorf("xpath: %q at offset %d: %w", input, start, err)
		}
		preds, next, err := parsePredicates(input, i)
		if err != nil {
			return nil, fmt.Errorf("xpath: %q: %w", input, err)
		}
		i = next
		x.Steps = append(x.Steps, Step{Axis: axis, Name: name, Preds: EncodePreds(preds)})
		if i == len(input) {
			break
		}
		if strings.HasPrefix(input[i:], "//") {
			axis = Descendant
			i += 2
		} else if input[i] == '/' {
			axis = Child
			i++
		} else {
			return nil, fmt.Errorf("xpath: %q: expected '/' at offset %d", input, i)
		}
		if i == len(input) {
			return nil, fmt.Errorf("xpath: %q: trailing operator", input)
		}
	}
	return x, nil
}

// MustParse is Parse for statically known expressions; it panics on error.
func MustParse(input string) *XPE {
	x, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return x
}

// Validate re-checks the structural invariants Parse guarantees, for
// expressions that arrived by other means: gob decoding hands the routing
// layer arbitrary Steps that never went through the parser. It rejects
// empty expressions, unknown axes, invalid name tests, malformed predicate
// encodings, and a relative expression whose first step is not a Child step
// (Parse never produces one, and the matchers assume it).
func (x *XPE) Validate() error {
	if len(x.Steps) == 0 {
		return fmt.Errorf("xpath: no steps")
	}
	if x.Relative && x.Steps[0].Axis != Child {
		return fmt.Errorf("xpath: relative expression with leading descendant step")
	}
	for i, s := range x.Steps {
		if s.Axis != Child && s.Axis != Descendant {
			return fmt.Errorf("xpath: step %d: unknown axis %d", i, s.Axis)
		}
		if err := validateName(s.Name); err != nil {
			return fmt.Errorf("xpath: step %d: %w", i, err)
		}
		if s.Preds != "" && DecodePreds(s.Preds) == nil {
			return fmt.Errorf("xpath: step %d: malformed predicates %q", i, s.Preds)
		}
	}
	return nil
}

func validateName(name string) error {
	if name == "" {
		return fmt.Errorf("empty step")
	}
	if name == Wildcard {
		return nil
	}
	for j := 0; j < len(name); j++ {
		c := name[j]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == ':', c == '-':
		default:
			return fmt.Errorf("invalid character %q in step %q", c, name)
		}
	}
	return nil
}

// SymbolOverlaps implements the advertisement/subscription overlap rules of
// the paper (Fig. 2(b)): two name tests overlap unless both are concrete
// element names and differ.
func SymbolOverlaps(a, b string) bool {
	return a == Wildcard || b == Wildcard || a == b
}

// SymbolCovers implements the element-wise covering rule: test a covers test
// b if a is the wildcard, or if neither is the wildcard and they are equal.
// Note that a concrete name never covers the wildcard.
func SymbolCovers(a, b string) bool {
	if a == Wildcard {
		return true
	}
	return b != Wildcard && a == b
}

// MatchesPath reports whether the expression selects a node on the given
// root-to-leaf element path. An absolute expression must match a prefix of
// the path; a relative expression may begin at any position; a "//" step may
// skip zero or more additional elements.
func (x *XPE) MatchesPath(path []string) bool {
	if len(x.Steps) == 0 {
		return false
	}
	if needsMemo(x.Steps) {
		return matchTable(x.Steps, len(path), x.Relative, func(i, p int) bool {
			return stepMatches(x.Steps[i], path[p])
		})
	}
	if x.Relative {
		for start := 0; start+len(x.Steps) <= len(path); start++ {
			if matchFrom(x.Steps, path, start) {
				return true
			}
		}
		return false
	}
	return matchFrom(x.Steps, path, 0)
}

// matchFrom matches steps against path beginning exactly at path[pos]
// (step 0's own axis is honoured: a Descendant first step may still skip
// ahead from pos).
func matchFrom(steps []Step, path []string, pos int) bool {
	if len(steps) == 0 {
		return true
	}
	s := steps[0]
	if s.Axis == Child {
		if pos >= len(path) || !stepMatches(s, path[pos]) {
			return false
		}
		return matchFrom(steps[1:], path, pos+1)
	}
	// Descendant: the step's element may appear at pos, pos+1, ...
	for p := pos; p < len(path); p++ {
		if stepMatches(s, path[p]) && matchFrom(steps[1:], path, p+1) {
			return true
		}
	}
	return false
}

func stepMatches(s Step, name string) bool {
	return s.IsWildcard() || s.Name == name
}
