package xpath

import "testing"

func TestParsePredicates(t *testing.T) {
	x, err := Parse(`/insurance/claim[@lang='en']/expert`)
	if err != nil {
		t.Fatal(err)
	}
	if x.Steps[1].Preds != `[@lang='en']` {
		t.Errorf("Preds = %q", x.Steps[1].Preds)
	}
	if !x.HasPredicates() {
		t.Error("HasPredicates should be true")
	}
	// Multiple predicates canonicalise in sorted order regardless of input
	// order, and double quotes are accepted.
	a := MustParse(`/a/b[@y="2"][@x='1']`)
	b := MustParse(`/a/b[@x='1'][@y='2']`)
	if !a.Equal(b) {
		t.Errorf("predicate order not canonical: %s vs %s", a, b)
	}
	if got := a.String(); got != `/a/b[@x='1'][@y='2']` {
		t.Errorf("String = %q", got)
	}
}

func TestParsePredicateErrors(t *testing.T) {
	for _, in := range []string{
		`/a[@x]`, `/a[x='1']`, `/a[@='1']`, `/a[@x='1'`, `/a[@x='1"]`, `/a[@x=1]`, `/a[]`,
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

func TestEncodeDecodePreds(t *testing.T) {
	preds := []Pred{{Attr: "z", Value: "9"}, {Attr: "a", Value: "1"}}
	enc := EncodePreds(preds)
	if enc != `[@a='1'][@z='9']` {
		t.Errorf("EncodePreds = %q", enc)
	}
	back := DecodePreds(enc)
	if len(back) != 2 || back[0] != (Pred{Attr: "a", Value: "1"}) {
		t.Errorf("DecodePreds = %v", back)
	}
	if EncodePreds(nil) != "" || DecodePreds("") != nil {
		t.Error("empty predicate round trip broken")
	}
}

func TestMatchesPathAttrs(t *testing.T) {
	x := MustParse(`/claim[@lang='en']/detail`)
	path := []string{"claim", "detail"}
	en := []map[string]string{{"lang": "en"}, nil}
	fr := []map[string]string{{"lang": "fr"}, nil}
	none := []map[string]string{nil, nil}
	if !x.MatchesPathAttrs(path, en) {
		t.Error("matching attributes rejected")
	}
	if x.MatchesPathAttrs(path, fr) {
		t.Error("wrong attribute value accepted")
	}
	if x.MatchesPathAttrs(path, none) {
		t.Error("missing attribute accepted")
	}
	if x.MatchesPathAttrs(path, nil) {
		t.Error("nil attribute slice accepted")
	}
	// Predicate-free expressions ignore attributes entirely.
	y := MustParse("/claim/detail")
	if !y.MatchesPathAttrs(path, nil) {
		t.Error("predicate-free expression should match")
	}
}

func TestMatchesPathAttrsDescendant(t *testing.T) {
	x := MustParse(`//item[@kind='book']`)
	path := []string{"shop", "aisle", "item"}
	attrs := []map[string]string{nil, nil, {"kind": "book"}}
	if !x.MatchesPathAttrs(path, attrs) {
		t.Error("descendant with predicate should match")
	}
	attrs[2] = map[string]string{"kind": "dvd"}
	if x.MatchesPathAttrs(path, attrs) {
		t.Error("descendant with wrong predicate matched")
	}
}

func TestStepCovers(t *testing.T) {
	mk := func(s string) Step {
		x := MustParse("/" + s)
		return x.Steps[0]
	}
	tests := []struct {
		a, b string
		want bool
	}{
		{"t", "t", true},
		{"*", "t[@x='1']", true},
		{"t", "t[@x='1']", true},  // fewer constraints cover more
		{"t[@x='1']", "t", false}, // a predicate never covers its absence
		{"t[@x='1']", "t[@x='1']", true},
		{"t[@x='1']", "t[@x='2']", false},
		{"t[@x='1']", "t[@x='1'][@y='2']", true},
		{"t[@x='1'][@y='2']", "t[@x='1']", false},
	}
	for _, tt := range tests {
		if got := StepCovers(mk(tt.a), mk(tt.b)); got != tt.want {
			t.Errorf("StepCovers(%s, %s) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestPredicateRoundTripThroughString(t *testing.T) {
	in := `/a[@k='v']/b//c[@m='1'][@n='2']`
	x := MustParse(in)
	if got := x.String(); got != in {
		t.Errorf("round trip = %q", got)
	}
	y := MustParse(x.String())
	if !x.Equal(y) {
		t.Error("re-parse changed expression")
	}
}

// TestKeyStableUnderPredicateOrder pins the regression where two hand-built
// steps listing the same predicates in different orders produced different
// Key() renderings, letting one logical subscription occupy two routing-table
// slots. Key must canonicalise predicate order; inequivalent predicate sets
// must still yield distinct keys.
func TestKeyStableUnderPredicateOrder(t *testing.T) {
	mk := func(preds string) *XPE {
		return &XPE{Steps: []Step{
			{Axis: Child, Name: "a"},
			{Axis: Child, Name: "b", Preds: preds},
		}}
	}
	sorted := mk(`[@m='1'][@n='2']`)
	reversed := mk(`[@n='2'][@m='1']`)
	if sorted.Key() != reversed.Key() {
		t.Errorf("Key differs under predicate order: %q vs %q", sorted.Key(), reversed.Key())
	}
	// The canonical form matches what the parser would have produced.
	parsed := MustParse(`/a/b[@m='1'][@n='2']`)
	if reversed.Key() != parsed.Key() {
		t.Errorf("hand-built key %q != parsed key %q", reversed.Key(), parsed.Key())
	}
	// Same attributes, different values: still distinct subscriptions.
	other := mk(`[@m='2'][@n='1']`)
	if other.Key() == sorted.Key() {
		t.Errorf("distinct predicate sets collide on key %q", other.Key())
	}
	// A Preds string that does not parse as predicates is kept verbatim
	// rather than silently dropped or merged.
	junk := mk(`[not-a-pred`)
	if junk.Key() == mk("").Key() {
		t.Error("malformed predicate encoding vanished from the key")
	}
}
