package cover

import (
	"repro/internal/xpath"
)

// CoversExact decides covering (path-language inclusion L(s2) ⊆ L(s1))
// exactly, for any combination of supported expression forms.
//
// Each XPE denotes a regular language of element paths: a child step
// consumes one compatible element, a descendant step may skip arbitrarily
// many elements first, a relative expression may start anywhere, and any
// matched path remains matched under extension (the selected node still
// exists). Containment over the infinite element alphabet reduces to
// containment over the names occurring in either expression plus one fresh
// symbol, because the expressions can only test equality against their own
// names. Both expressions are at most a dozen steps, so the subset-product
// search is trivially small.
func CoversExact(s1, s2 *xpath.XPE) bool {
	if s1.Len() == 0 || s2.Len() == 0 {
		return false
	}
	if s1.Len() > 16 || s2.Len() > 16 {
		// Masks are uint32; routing workloads cap expression length at 10.
		panic("cover: expression too long for exact containment check")
	}
	var alphabet [34]string
	names := collectNames(s1, s2, alphabet[:0])
	accept1 := uint32(1) << uint(s1.Len())
	accept2 := uint32(1) << uint(s2.Len())

	// The product search keeps its visited set and work queue on the stack:
	// reachable product states number in the tens for routing-sized
	// expressions, and this procedure is the inner loop of bulk covering
	// scans.
	var seen prodSet
	var queueBuf [96]uint64
	queue := queueBuf[:0]
	push := func(m1, m2 uint32) {
		if m2 == 0 {
			return // the word has left L(s2)'s reachable set entirely
		}
		k := uint64(m1)<<32 | uint64(m2)
		if seen.add(k) {
			queue = append(queue, k)
		}
	}
	push(startMask(s1), startMask(s2))
	for len(queue) > 0 {
		k := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		m1, m2 := uint32(k>>32), uint32(k)
		if m2&accept2 != 0 && m1&accept1 == 0 {
			return false // a path matching s2 but not s1
		}
		for _, sym := range names {
			push(stepMask(s1, m1, sym), stepMask(s2, m2, sym))
		}
	}
	return true
}

// prodSet is a small open-addressing set of uint64 keys (0 is never a valid
// key: the s2 mask component is always non-zero). It spills to a map only in
// pathological cases.
type prodSet struct {
	slots    [256]uint64
	overflow map[uint64]bool
}

// add inserts k, reporting whether it was absent.
func (s *prodSet) add(k uint64) bool {
	i := (k * 0x9E3779B97F4A7C15) >> 56
	for probes := 0; probes < len(s.slots); probes++ {
		switch s.slots[i] {
		case 0:
			s.slots[i] = k
			return true
		case k:
			return false
		}
		i = (i + 1) % uint64(len(s.slots))
	}
	if s.overflow == nil {
		s.overflow = make(map[uint64]bool)
	}
	if s.overflow[k] {
		return false
	}
	s.overflow[k] = true
	return true
}

// freshName is an element name guaranteed not to occur in any expression
// (parsers reject it), standing in for "every other element".
const freshName = "\x00fresh"

func collectNames(s1, s2 *xpath.XPE, dst []string) []string {
	dst = append(dst, freshName)
	for _, s := range []*xpath.XPE{s1, s2} {
	steps:
		for _, st := range s.Steps {
			if st.IsWildcard() {
				continue
			}
			for _, have := range dst {
				if have == st.Name {
					continue steps
				}
			}
			dst = append(dst, st.Name)
		}
	}
	return dst
}

// startMask returns the initial state set of the XPE's path automaton.
// State i means "i steps consumed"; state Len(s) is the absorbing accept.
func startMask(s *xpath.XPE) uint32 {
	return 1
}

// stepMask advances the state set of s's path automaton over symbol sym.
// From state i < k: if step i may be preceded by skipped elements (a
// descendant step, or the start of a relative expression) the state
// persists; if the step's test admits sym the automaton moves to i+1.
// State k is absorbing (extensions of matched paths stay matched).
func stepMask(s *xpath.XPE, mask uint32, sym string) uint32 {
	k := s.Len()
	var out uint32
	for i := 0; i <= k; i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if i == k {
			out |= 1 << uint(i)
			continue
		}
		st := s.Steps[i]
		if st.Axis == xpath.Descendant || (i == 0 && s.Relative) {
			out |= 1 << uint(i)
		}
		if st.IsWildcard() || st.Name == sym {
			out |= 1 << uint(i+1)
		}
	}
	return out
}
