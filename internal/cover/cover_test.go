package cover

import (
	"math/rand"
	"testing"

	"repro/internal/xpath"
)

func xp(s string) *xpath.XPE { return xpath.MustParse(s) }

func TestAbsSimCov(t *testing.T) {
	tests := []struct {
		s1, s2 string
		want   bool
	}{
		{"/a", "/a/b", true},
		{"/a", "/a", true},
		{"/a/b", "/a", false}, // longer never covers shorter
		{"/a/*", "/a/b", true},
		{"/a/b", "/a/*", false}, // a name never covers the wildcard
		{"/*", "/a", true},
		{"/a/b", "/a/c", false},
		{"/a/*/c", "/a/b/c/d", true},
		{"/a/*/c", "/a/b/d/c", false},
	}
	for _, tt := range tests {
		if got := AbsSimCov(xp(tt.s1), xp(tt.s2)); got != tt.want {
			t.Errorf("AbsSimCov(%s, %s) = %v, want %v", tt.s1, tt.s2, got, tt.want)
		}
	}
}

func TestRelSimCov(t *testing.T) {
	tests := []struct {
		s1, s2 string
		want   bool
	}{
		{"b", "/a/b", true},
		{"b", "/a/b/c", true},
		{"b/c", "/a/b/c", true},
		{"b/c", "/a/c/b", false},
		{"*/c", "/a/b/c", true},
		{"b", "a/b", true},  // relative covers relative
		{"b/c", "b", false}, // longer never covers shorter
		{"d/a", "/x/d/a", true},
		{"b/*", "/a/b", false}, // would need a position beyond s2's end
	}
	for _, tt := range tests {
		if got := RelSimCov(xp(tt.s1), xp(tt.s2)); got != tt.want {
			t.Errorf("RelSimCov(%s, %s) = %v, want %v", tt.s1, tt.s2, got, tt.want)
		}
	}
}

func TestCoversDispatch(t *testing.T) {
	tests := []struct {
		s1, s2 string
		want   bool
	}{
		{"/a", "/a/b", true},
		{"b", "/a/b", true},
		{"/a/b", "b", false}, // absolute never covers relative
		{"/a//c", "/a/b/c", true},
		{"/a/b/c", "/a//c", false},
		{"//c", "/a/b/c", true},
		{"/a//c", "/a//b//c", true},
		{"/a//b//c", "/a//c", false},
		{"*", "/a", true},
		{"*", "anything", true},
	}
	for _, tt := range tests {
		if got := Covers(xp(tt.s1), xp(tt.s2)); got != tt.want {
			t.Errorf("Covers(%s, %s) = %v, want %v", tt.s1, tt.s2, got, tt.want)
		}
	}
}

// TestDesCovPaperExamples encodes the worked examples of Section 4.2.
func TestDesCovPaperExamples(t *testing.T) {
	// Example 1: s1 = /*/a//*/c covers s2 = /a/a/*//c/e/c/d.
	s1 := xp("/*/a//*/c")
	s2 := xp("/a/a/*//c/e/c/d")
	if !DesCov(s1, s2) {
		t.Error("example 1: DesCov should detect the covering")
	}
	if !CoversExact(s1, s2) {
		t.Error("example 1: CoversExact should detect the covering")
	}

	// Special-case example: s1 = /a/*//*/d covers s2 = /a//b/c/d.
	s3 := xp("/a/*//*/d")
	s4 := xp("/a//b/c/d")
	if !CoversExact(s3, s4) {
		t.Error("special case: CoversExact should detect the covering")
	}

	// Example 2: s1 = /*/a//*/c vs s2 = /a/a/*//c/b/d. The paper's greedy
	// algorithm reports no covering. Under path semantics the covering in
	// fact holds — the c required by s2 always has an immediate predecessor
	// — which the exact procedure detects; DesCov's miss illustrates its
	// incompleteness and is documented in DESIGN.md.
	s5 := xp("/*/a//*/c")
	s6 := xp("/a/a/*//c/b/d")
	if !CoversExact(s5, s6) {
		t.Error("example 2: exact containment should hold")
	}
}

func TestCoversExact(t *testing.T) {
	tests := []struct {
		s1, s2 string
		want   bool
	}{
		{"/a//c", "/a/b/c", true},
		{"/a//c", "/a/b/d", false},
		{"/a//c", "/a//b/c", true},
		{"/a//b/c", "/a//c", false},
		{"//c", "c", true}, // both float: identical languages
		{"c", "//c", true},
		{"/a//*", "/a/b", true},
		{"/a//*", "/a", false}, // s2 admits the single-element path "a"
		{"/a", "/a//*", true},
		{"/*//*", "/a/b", true},
		{"b//d", "/a/b/c/d", true},
		{"b//d", "/a/b/d", true},
		{"b//d", "/a/d/b", false},
	}
	for _, tt := range tests {
		if got := CoversExact(xp(tt.s1), xp(tt.s2)); got != tt.want {
			t.Errorf("CoversExact(%s, %s) = %v, want %v", tt.s1, tt.s2, got, tt.want)
		}
	}
}

func TestCoversAdvertisement(t *testing.T) {
	tests := []struct {
		a1, a2 []string
		want   bool
	}{
		{[]string{"a", "*"}, []string{"a", "b"}, true},
		{[]string{"a", "b"}, []string{"a", "b"}, true},
		{[]string{"a"}, []string{"a", "b"}, false}, // different publication lengths
		{[]string{"a", "b"}, []string{"a", "*"}, false},
	}
	for _, tt := range tests {
		if got := CoversAdvertisement(tt.a1, tt.a2); got != tt.want {
			t.Errorf("CoversAdvertisement(%v, %v) = %v, want %v", tt.a1, tt.a2, got, tt.want)
		}
	}
}

func randomXPE(r *rand.Rand, maxLen int) *xpath.XPE {
	alphabet := []string{"a", "b", "c", xpath.Wildcard}
	n := 1 + r.Intn(maxLen)
	s := &xpath.XPE{Relative: r.Intn(2) == 0}
	for i := 0; i < n; i++ {
		axis := xpath.Child
		if (i > 0 || !s.Relative) && r.Intn(4) == 0 {
			axis = xpath.Descendant
		}
		s.Steps = append(s.Steps, xpath.Step{Axis: axis, Name: alphabet[r.Intn(len(alphabet))]})
	}
	return s
}

func randomPath(r *rand.Rand, maxLen int) []string {
	alphabet := []string{"a", "b", "c", "d"}
	n := 1 + r.Intn(maxLen)
	p := make([]string, n)
	for i := range p {
		p[i] = alphabet[r.Intn(len(alphabet))]
	}
	return p
}

// TestQuickCoversSemantics: whenever Covers(s1, s2) holds, every path
// matching s2 must match s1 — the defining property of covering.
func TestQuickCoversSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	covered := 0
	for i := 0; i < 20000; i++ {
		s1 := randomXPE(r, 5)
		s2 := randomXPE(r, 5)
		if !Covers(s1, s2) {
			continue
		}
		covered++
		for j := 0; j < 40; j++ {
			p := randomPath(r, 9)
			if s2.MatchesPath(p) && !s1.MatchesPath(p) {
				t.Fatalf("Covers(%s, %s) but path %v matches s2 only", s1, s2, p)
			}
		}
	}
	if covered < 500 {
		t.Errorf("only %d covering pairs sampled; workload too sparse", covered)
	}
}

// TestQuickDesCovSoundAgainstExact: the paper's greedy procedure must never
// claim a covering the exact procedure rejects.
func TestQuickDesCovSoundAgainstExact(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	var greedyHits, exactHits int
	for i := 0; i < 20000; i++ {
		s1 := randomXPE(r, 5)
		s2 := randomXPE(r, 5)
		g := DesCov(s1, s2)
		e := CoversExact(s1, s2)
		if g {
			greedyHits++
		}
		if e {
			exactHits++
		}
		if g && !e {
			t.Fatalf("DesCov(%s, %s) claims covering; exact procedure disagrees", s1, s2)
		}
	}
	if greedyHits == 0 || exactHits < greedyHits {
		t.Errorf("hits: greedy %d, exact %d (exact must dominate)", greedyHits, exactHits)
	}
}

// TestQuickSimpleAgreesWithExact: for simple expressions the paper's
// pairwise algorithms are exact; they must agree with the automaton.
func TestQuickSimpleAgreesWithExact(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 20000; i++ {
		s1 := randomXPE(r, 5)
		s2 := randomXPE(r, 5)
		if !s1.IsSimple() || !s2.IsSimple() {
			continue
		}
		if got, want := Covers(s1, s2), CoversExact(s1, s2); got != want {
			t.Fatalf("Covers(%s, %s) = %v, exact = %v", s1, s2, got, want)
		}
	}
}

// TestQuickCoveringPartialOrder: covering is reflexive and transitive.
func TestQuickCoveringPartialOrder(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for i := 0; i < 4000; i++ {
		s1 := randomXPE(r, 4)
		if !Covers(s1, s1) {
			t.Fatalf("Covers(%s, %s) should be reflexive", s1, s1)
		}
		s2 := randomXPE(r, 4)
		s3 := randomXPE(r, 4)
		if Covers(s1, s2) && Covers(s2, s3) && !Covers(s1, s3) {
			t.Fatalf("covering not transitive: %s ⊒ %s ⊒ %s", s1, s2, s3)
		}
	}
}

func BenchmarkAbsSimCov(b *testing.B) {
	s1 := xp("/a/*/c/d/e")
	s2 := xp("/a/b/c/d/e/f/g")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AbsSimCov(s1, s2)
	}
}

func BenchmarkCoversExact(b *testing.B) {
	s1 := xp("/a/*//*/d")
	s2 := xp("/a//b/c/d")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CoversExact(s1, s2)
	}
}
