// Package cover implements covering (containment) detection between XPath
// expressions: s1 covers s2 iff every publication matching s2 also matches
// s1 (P(s1) ⊇ P(s2)). Covering is what lets a broker drop redundant
// subscriptions from its routing table.
//
// The package provides the paper's Section 4.2 algorithms — AbsSimCov and
// RelSimCov (exact for simple expressions) and DesCov (the greedy
// segment-matching procedure for expressions with descendant operators,
// which is sound but may miss some covering relations) — plus an exact
// automaton-inclusion decision procedure used as the production path for
// descendant expressions and as the testing oracle.
package cover

import (
	"repro/internal/symtab"
	"repro/internal/xpath"
)

// Covers reports whether s1 covers s2 (P(s1) ⊇ P(s2)). It is exact for all
// supported expression forms: simple expressions dispatch to the paper's
// pairwise algorithms, expressions with descendant operators use automaton
// inclusion.
func Covers(s1, s2 *xpath.XPE) bool {
	if s1.Len() == 0 || s2.Len() == 0 {
		return false
	}
	if !necessary(s1, s2) {
		return false
	}
	if s1.IsSimple() && s2.IsSimple() {
		if s1.Relative {
			return RelSimCov(s1, s2)
		}
		if !s2.Relative {
			return AbsSimCov(s1, s2)
		}
		// Absolute s1 against relative s2. The paper states this case never
		// covers, but an all-wildcard absolute prefix such as "/*/*" does
		// cover any expression guaranteeing enough path length; the exact
		// procedure handles the corner case.
		return !s1.HasPredicates() && CoversExact(s1, s2)
	}
	// Descendant-bearing expressions: the greedy procedure and the exact
	// automaton reason over structure only, so a predicate-carrying s1 is
	// conservatively reported as not covering (predicates only narrow s1,
	// and missing a covering relation is always safe). A predicate-carrying
	// s2 needs no special handling: it only narrows s2.
	if s1.HasPredicates() {
		return false
	}
	// The greedy procedure is sound and cheap; it settles almost every pair.
	// Only its (rare) misses pay for the exact automaton check.
	if DesCov(s1, s2) {
		return true
	}
	return CoversExact(s1, s2)
}

// necessary applies O(n) conditions every covering pair satisfies, so that
// bulk scans reject non-covering pairs without reaching the automaton:
// s1 may not have more steps than s2 (each step consumes at least one path
// element), and s1's concrete name tests must embed as an ordered
// subsequence of s2's (instantiate s2's wildcards with fresh names: the
// resulting path matches s2, so it must match s1, whose concrete names then
// all align with concrete names of s2, in order).
func necessary(s1, s2 *xpath.XPE) bool {
	if s1.Len() > s2.Len() {
		return false
	}
	a, b := s1.Syms(), s2.Syms()
	j := 0
	for _, sym := range a {
		if sym == symtab.Wildcard {
			continue
		}
		for {
			if j == len(b) {
				return false
			}
			j++
			if b[j-1] == sym {
				break
			}
		}
	}
	return true
}

// AbsSimCov is the paper's covering algorithm for two absolute simple XPEs:
// s1 covers s2 iff s1 is no longer than s2 and every aligned pair of element
// tests satisfies the covering rule.
func AbsSimCov(s1, s2 *xpath.XPE) bool {
	if s1.Len() > s2.Len() {
		return false
	}
	a, b := s1.Syms(), s2.Syms()
	for i, st := range s1.Steps {
		if !xpath.StepCoversSym(a[i], b[i], st, s2.Steps[i]) {
			return false
		}
	}
	return true
}

// RelSimCov is the paper's covering algorithm for a relative simple s1
// against a simple s2 (absolute or relative): s1 covers s2 iff s1's tests
// cover an aligned run of s2's tests at some offset. The alignment must fit
// entirely within s2's constrained region — a path matching s2 may end right
// after it.
func RelSimCov(s1, s2 *xpath.XPE) bool {
	k := s1.Len()
	if k > s2.Len() {
		return false
	}
	a, b := s1.Syms(), s2.Syms()
	for c := 0; c+k <= s2.Len(); c++ {
		if relCovAt(s1, s2, a, b, c) {
			return true
		}
	}
	return false
}

func relCovAt(s1, s2 *xpath.XPE, a, b []symtab.Sym, c int) bool {
	for i, st := range s1.Steps {
		if !xpath.StepCoversSym(a[i], b[c+i], st, s2.Steps[c+i]) {
			return false
		}
	}
	return true
}

// DesCov is the paper's greedy covering procedure for expressions with
// descendant operators: s1 is split at its "//" operators into simple
// segments that are matched in order against s2's segments. A segment of s1
// normally may not span a "//" of s2 (the gap admits arbitrary elements,
// which only wildcards can cover); the special case the paper identifies —
// a segment ending in wildcards may extend across a gap that ends at its
// final test — is handled by letting trailing wildcards of a segment absorb
// gap positions.
//
// DesCov is sound (it never claims a covering that does not hold) but, being
// greedy over segment placements, it may fail to detect some coverings;
// CoversExact is the complete decision procedure. Both are exercised against
// each other in the package tests.
func DesCov(s1, s2 *xpath.XPE) bool {
	if s1.Len() > s2.Len() {
		return false
	}
	if !s1.Relative && s2.Relative {
		return false
	}
	segs1 := s1.Segments()
	segs2 := s2.Segments()
	// anchored: the first segment of an absolute s1 must align at the very
	// start of an absolute s2's first segment.
	anchored := !s1.Relative && !segs1[0].AfterDescendant
	if anchored && segs2[0].AfterDescendant {
		// s2 may start arbitrarily deep; an anchored s1 cannot cover it.
		return false
	}
	j := 0   // current segment of s2
	off := 0 // offset within segs2[j]
	for si, sg1 := range segs1 {
		placed := false
		for ; j < len(segs2); j, off = j+1, 0 {
			sg2 := segs2[j]
			if si == 0 && anchored {
				if coverAt(sg1.Names, sg2.Names, 0) {
					off = len(sg1.Names)
					placed = true
					break
				}
				return false
			}
			p := findCover(sg1.Names, sg2.Names, off)
			if p >= 0 {
				off = p + len(sg1.Names)
				placed = true
				break
			}
		}
		if !placed {
			return false
		}
		// A segment of s1 connected to its successor by "//" may leave the
		// rest of segs2[j] to the gap; a segment connected by the end of s1
		// leaves the remainder to s1's implicit trailing freedom.
		_ = si
	}
	return true
}

// coverAt reports whether seg1 covers seg2[c:c+len(seg1)]. Trailing tests of
// seg1 that are wildcards may extend past seg2's end into the following gap
// only when the caller knows a gap follows; this basic form requires the run
// to fit.
func coverAt(seg1, seg2 []string, c int) bool {
	if c+len(seg1) > len(seg2) {
		return false
	}
	for i, name := range seg1 {
		if !xpath.SymbolCovers(name, seg2[c+i]) {
			return false
		}
	}
	return true
}

// findCover returns the smallest offset >= from at which seg1 covers a run
// of seg2, or -1.
func findCover(seg1, seg2 []string, from int) int {
	for c := from; c+len(seg1) <= len(seg2); c++ {
		if coverAt(seg1, seg2, c) {
			return c
		}
	}
	return -1
}

// CoversAdvertisement reports whether non-recursive advertisement tests a1
// cover a2. Advertisements use the same pairwise covering rule as absolute
// simple XPEs, but their publication sets contain only paths of exactly the
// advertisement's length, so covering additionally requires equal length —
// a shorter advertisement describes different-length publications, and
// dropping the longer one would lose subscriptions routed toward it.
func CoversAdvertisement(a1, a2 []string) bool {
	if len(a1) != len(a2) {
		return false
	}
	for i, n := range a1 {
		if !xpath.SymbolCovers(n, a2[i]) {
			return false
		}
	}
	return true
}
