package dtd

import "testing"

func TestNullable(t *testing.T) {
	d := MustParse(`
<!ELEMENT root (strict, loose, mix, empty, anyel)>
<!ELEMENT strict (a, b+)>
<!ELEMENT loose (a?, b*)>
<!ELEMENT mix (#PCDATA | a)*>
<!ELEMENT empty EMPTY>
<!ELEMENT anyel ANY>
<!ELEMENT choicey (a | b?)>
<!ELEMENT groupopt ((a, b))?>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
`)
	tests := []struct {
		name string
		want bool
	}{
		{"root", false},
		{"strict", false},
		{"loose", true},
		{"mix", true},
		{"empty", true},
		{"anyel", true},
		{"choicey", true}, // the choice can pick b?, which is optional
		{"groupopt", true},
		{"a", true},
		{"undeclared", false},
	}
	for _, tt := range tests {
		if got := d.CanBeChildless(tt.name); got != tt.want {
			t.Errorf("CanBeChildless(%q) = %v, want %v", tt.name, got, tt.want)
		}
	}
}
