package dtd

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

const bookDTD = `
<!-- a small non-recursive catalogue -->
<!ELEMENT catalog (book+, publisher*)>
<!ELEMENT book (title, author+, price?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT publisher (name, address?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT address (#PCDATA)>
<!ATTLIST book isbn CDATA #REQUIRED
               lang (en|fr|de) "en">
`

const recursiveDTD = `
<!ELEMENT doc (section+)>
<!ELEMENT section (heading, (para | section)*)>
<!ELEMENT heading (#PCDATA)>
<!ELEMENT para (#PCDATA | emph)*>
<!ELEMENT emph (#PCDATA | emph)*>
`

func TestParseBookDTD(t *testing.T) {
	d, err := Parse(bookDTD)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root != "catalog" {
		t.Errorf("Root = %q, want catalog", d.Root)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.Children("catalog"); !reflect.DeepEqual(got, []string{"book", "publisher"}) {
		t.Errorf("Children(catalog) = %v", got)
	}
	if got := d.Children("book"); !reflect.DeepEqual(got, []string{"title", "author", "price"}) {
		t.Errorf("Children(book) = %v", got)
	}
	if !d.IsLeaf("title") || d.IsLeaf("book") {
		t.Error("leaf detection wrong")
	}
	if d.IsRecursive() {
		t.Error("book DTD must not be recursive")
	}
	book := d.Element("book")
	if len(book.Attrs) != 2 {
		t.Fatalf("book attrs = %+v", book.Attrs)
	}
	if book.Attrs[0].Name != "isbn" || book.Attrs[0].Default != "#REQUIRED" {
		t.Errorf("isbn attr = %+v", book.Attrs[0])
	}
	if book.Attrs[1].Name != "lang" || book.Attrs[1].Default != "en" {
		t.Errorf("lang attr = %+v", book.Attrs[1])
	}
}

func TestParseRecursiveDTD(t *testing.T) {
	d := MustParse(recursiveDTD)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if !d.IsRecursive() {
		t.Fatal("recursive DTD not detected")
	}
	rec := d.RecursiveElements()
	var names []string
	for n := range rec {
		names = append(names, n)
	}
	sort.Strings(names)
	if !reflect.DeepEqual(names, []string{"emph", "section"}) {
		t.Errorf("RecursiveElements = %v, want [emph section]", names)
	}
}

func TestContentModelString(t *testing.T) {
	d := MustParse(recursiveDTD)
	got := d.Element("section").Model.String()
	want := "(heading, (para | section)*)"
	if got != want {
		t.Errorf("Model.String() = %q, want %q", got, want)
	}
}

func TestParameterEntities(t *testing.T) {
	src := `
<!ENTITY % inline "b | i | span">
<!ENTITY % blocks "(para | list)+">
<!ELEMENT doc %blocks;>
<!ELEMENT para (#PCDATA | %inline;)*>
<!ELEMENT list (item+)>
<!ELEMENT item (#PCDATA)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT i (#PCDATA)>
<!ELEMENT span (#PCDATA)>
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.Children("para"); !reflect.DeepEqual(got, []string{"b", "i", "span"}) {
		t.Errorf("Children(para) = %v", got)
	}
	if got := d.Children("doc"); !reflect.DeepEqual(got, []string{"para", "list"}) {
		t.Errorf("Children(doc) = %v", got)
	}
}

func TestNestedEntities(t *testing.T) {
	src := `
<!ENTITY % base "b | i">
<!ENTITY % more "%base; | u">
<!ELEMENT p (#PCDATA | %more;)*>
<!ELEMENT b EMPTY><!ELEMENT i EMPTY><!ELEMENT u EMPTY>
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Children("p"); !reflect.DeepEqual(got, []string{"b", "i", "u"}) {
		t.Errorf("Children(p) = %v", got)
	}
}

func TestEntityCycleRejected(t *testing.T) {
	src := `
<!ENTITY % a "%b;">
<!ENTITY % b "%a;">
<!ELEMENT doc (%a;)>
`
	if _, err := Parse(src); err == nil {
		t.Fatal("cyclic parameter entities accepted")
	}
}

func TestAnyContent(t *testing.T) {
	d := MustParse(`<!ELEMENT a ANY><!ELEMENT b EMPTY><!ELEMENT c (#PCDATA)>`)
	if got := d.Children("a"); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Children(ANY) = %v", got)
	}
	if !d.IsRecursive() {
		t.Error("ANY containing itself should be recursive")
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct{ name, src string }{
		{"empty", ""},
		{"garbage", "hello"},
		{"unterminated element", "<!ELEMENT a (b"},
		{"missing content", "<!ELEMENT a >"},
		{"double declaration", "<!ELEMENT a EMPTY><!ELEMENT a EMPTY>"},
		{"mixed separators", "<!ELEMENT a (b, c | d)>"},
		{"unterminated comment", "<!-- never closed <!ELEMENT a EMPTY>"},
		{"unterminated pi", "<?xml version='1.0'"},
		{"bad mixed", "<!ELEMENT a (#PCDATA, b)>"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.src); err == nil {
				t.Errorf("Parse accepted %q", tt.src)
			}
		})
	}
}

func TestValidateCatchesUndeclared(t *testing.T) {
	d := MustParse(`<!ELEMENT a (b, c)><!ELEMENT b EMPTY>`)
	err := d.Validate()
	if err == nil || !strings.Contains(err.Error(), `undeclared "c"`) {
		t.Errorf("Validate = %v", err)
	}
}

func TestReachable(t *testing.T) {
	d := MustParse(`
<!ELEMENT a (b)><!ELEMENT b EMPTY>
<!ELEMENT orphan (b)>
`)
	r := d.Reachable()
	if !r["a"] || !r["b"] || r["orphan"] {
		t.Errorf("Reachable = %v", r)
	}
}

func TestSelfLoopRecursion(t *testing.T) {
	d := MustParse(`<!ELEMENT a (a | b)><!ELEMENT b EMPTY>`)
	rec := d.RecursiveElements()
	if !rec["a"] || rec["b"] {
		t.Errorf("RecursiveElements = %v", rec)
	}
}

func TestOccurrenceString(t *testing.T) {
	d := MustParse(`<!ELEMENT a (b?, c*, d+, e)><!ELEMENT b EMPTY><!ELEMENT c EMPTY><!ELEMENT d EMPTY><!ELEMENT e EMPTY>`)
	got := d.Element("a").Model.String()
	want := "(b?, c*, d+, e)"
	if got != want {
		t.Errorf("Model = %q, want %q", got, want)
	}
}
