// Package dtd implements a Document Type Definition parser and the
// structural analyses the routing system needs: the element containment
// graph, leaf detection, and recursion detection. Advertisements are derived
// from a DTD by package advert; conforming documents are generated from a
// DTD by package gen.
package dtd

import (
	"fmt"
	"sort"
	"strings"
)

// Occurrence is the repetition modifier attached to a content particle.
type Occurrence byte

const (
	// One means the particle appears exactly once (no modifier).
	One Occurrence = iota
	// Optional is the "?" modifier.
	Optional
	// ZeroOrMore is the "*" modifier.
	ZeroOrMore
	// OneOrMore is the "+" modifier.
	OneOrMore
)

// String returns the DTD spelling of the modifier.
func (o Occurrence) String() string {
	switch o {
	case Optional:
		return "?"
	case ZeroOrMore:
		return "*"
	case OneOrMore:
		return "+"
	default:
		return ""
	}
}

// ParticleKind distinguishes the node types of a content model tree.
type ParticleKind byte

const (
	// NameParticle is a reference to a child element by name.
	NameParticle ParticleKind = iota
	// SeqParticle is a sequence group "(a, b, c)".
	SeqParticle
	// ChoiceParticle is a choice group "(a | b | c)".
	ChoiceParticle
)

// Particle is a node of a content model tree.
type Particle struct {
	Kind     ParticleKind
	Name     string      // for NameParticle
	Children []*Particle // for SeqParticle and ChoiceParticle
	Occ      Occurrence
}

// String renders the particle in DTD syntax.
func (p *Particle) String() string {
	var b strings.Builder
	p.write(&b)
	return b.String()
}

func (p *Particle) write(b *strings.Builder) {
	switch p.Kind {
	case NameParticle:
		b.WriteString(p.Name)
	case SeqParticle, ChoiceParticle:
		sep := ", "
		if p.Kind == ChoiceParticle {
			sep = " | "
		}
		b.WriteByte('(')
		for i, c := range p.Children {
			if i > 0 {
				b.WriteString(sep)
			}
			c.write(b)
		}
		b.WriteByte(')')
	}
	b.WriteString(p.Occ.String())
}

// ContentKind classifies an element declaration's content specification.
type ContentKind byte

const (
	// EmptyContent is EMPTY.
	EmptyContent ContentKind = iota
	// AnyContent is ANY.
	AnyContent
	// MixedContent is (#PCDATA | a | b)* or (#PCDATA).
	MixedContent
	// ChildrenContent is an element content model.
	ChildrenContent
)

// Attr is a single attribute declaration from an ATTLIST. Attribute routing
// is outside the paper's scope; attributes are recorded for completeness and
// used by the document generator.
type Attr struct {
	Name    string
	Type    string // CDATA, ID, IDREF, NMTOKEN, enumeration source text, ...
	Default string // #REQUIRED, #IMPLIED, #FIXED "v", or a literal default
}

// Element is a parsed element declaration.
type Element struct {
	Name    string
	Content ContentKind
	// Model is the content model tree for ChildrenContent, or nil.
	Model *Particle
	// MixedNames lists the element names admitted by MixedContent.
	MixedNames []string
	// Attrs holds attribute declarations from ATTLISTs, in order.
	Attrs []Attr
}

// DTD is a parsed document type definition.
type DTD struct {
	// Root is the document root element. Parse sets it to the first declared
	// element; it may be overridden.
	Root string
	// Elements maps element names to declarations.
	Elements map[string]*Element
	// order preserves declaration order for deterministic iteration.
	order []string
}

// Names returns all declared element names in declaration order.
func (d *DTD) Names() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// Element returns the declaration for name, or nil.
func (d *DTD) Element(name string) *Element { return d.Elements[name] }

// Children returns the distinct element names that may appear as direct
// children of name, in deterministic order. For AnyContent it returns all
// declared elements.
func (d *DTD) Children(name string) []string {
	el := d.Elements[name]
	if el == nil {
		return nil
	}
	switch el.Content {
	case EmptyContent:
		return nil
	case AnyContent:
		return d.Names()
	case MixedContent:
		out := make([]string, len(el.MixedNames))
		copy(out, el.MixedNames)
		return out
	default:
		seen := make(map[string]bool)
		var out []string
		var walk func(*Particle)
		walk = func(p *Particle) {
			if p == nil {
				return
			}
			if p.Kind == NameParticle {
				if !seen[p.Name] {
					seen[p.Name] = true
					out = append(out, p.Name)
				}
				return
			}
			for _, c := range p.Children {
				walk(c)
			}
		}
		walk(el.Model)
		return out
	}
}

// IsLeaf reports whether name can have no element children (EMPTY content or
// text-only mixed content).
func (d *DTD) IsLeaf(name string) bool {
	return len(d.Children(name)) == 0
}

// Validate checks that every element referenced in a content model is
// declared and that the root is declared. It returns a single error listing
// all problems.
func (d *DTD) Validate() error {
	var problems []string
	if d.Root == "" {
		problems = append(problems, "no root element")
	} else if d.Elements[d.Root] == nil {
		problems = append(problems, fmt.Sprintf("root element %q not declared", d.Root))
	}
	for _, name := range d.order {
		for _, c := range d.Children(name) {
			if d.Elements[c] == nil {
				problems = append(problems, fmt.Sprintf("element %q references undeclared %q", name, c))
			}
		}
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		return fmt.Errorf("dtd: invalid: %s", strings.Join(problems, "; "))
	}
	return nil
}

// Reachable returns the set of elements reachable from the root through the
// containment graph, including the root itself.
func (d *DTD) Reachable() map[string]bool {
	seen := make(map[string]bool)
	var visit func(string)
	visit = func(n string) {
		if seen[n] || d.Elements[n] == nil {
			return
		}
		seen[n] = true
		for _, c := range d.Children(n) {
			visit(c)
		}
	}
	visit(d.Root)
	return seen
}

// RecursiveElements returns the set of elements that participate in a cycle
// of the containment graph restricted to elements reachable from the root.
// The DTD is recursive (in the paper's sense) iff the result is non-empty.
func (d *DTD) RecursiveElements() map[string]bool {
	reach := d.Reachable()
	// Tarjan-style strongly connected components; an element is recursive if
	// its SCC has size > 1 or it has a self-loop.
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	next := 0
	out := make(map[string]bool)

	var strongConnect func(v string)
	strongConnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range d.Children(v) {
			if !reach[w] {
				continue
			}
			if _, seen := index[w]; !seen {
				strongConnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
			if w == v {
				out[v] = true // self-loop
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				for _, w := range comp {
					out[w] = true
				}
			}
		}
	}
	for _, n := range d.order {
		if !reach[n] {
			continue
		}
		if _, seen := index[n]; !seen {
			strongConnect(n)
		}
	}
	return out
}

// IsRecursive reports whether the containment graph reachable from the root
// contains a cycle.
func (d *DTD) IsRecursive() bool {
	return len(d.RecursiveElements()) > 0
}
