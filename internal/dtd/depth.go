package dtd

// Unbounded marks elements that cannot terminate (every completion requires
// infinitely many levels); it only arises in malformed DTDs whose cycles
// have no exit.
const Unbounded = 1 << 30

// MinDepthBelow computes, for every declared element, the minimal number of
// levels that must exist below it in a conforming document: 0 if the element
// can be childless, otherwise one more than the depth its cheapest required
// completion needs. Document generators use it to respect a depth budget.
func (d *DTD) MinDepthBelow() map[string]int {
	need := make(map[string]int, len(d.order))
	for _, n := range d.order {
		if d.CanBeChildless(n) {
			need[n] = 0
		} else {
			need[n] = Unbounded
		}
	}
	// Relax to a fixpoint; values only decrease, bounded by element count.
	for changed := true; changed; {
		changed = false
		for _, n := range d.order {
			el := d.Elements[n]
			if el.Content != ChildrenContent || need[n] == 0 {
				continue
			}
			v := minParticleDepth(el.Model, need)
			if v < need[n] {
				need[n] = v
				changed = true
			}
		}
	}
	return need
}

// minParticleDepth returns the minimal subtree depth a particle's cheapest
// required instantiation forces.
func minParticleDepth(p *Particle, need map[string]int) int {
	if p == nil || p.Occ == Optional || p.Occ == ZeroOrMore {
		return 0
	}
	switch p.Kind {
	case NameParticle:
		n := need[p.Name]
		if n >= Unbounded {
			return Unbounded
		}
		return 1 + n
	case ChoiceParticle:
		best := Unbounded
		for _, c := range p.Children {
			if v := minParticleDepth(c, need); v < best {
				best = v
			}
		}
		return best
	default: // SeqParticle: every required child appears; depth is the max.
		worst := 0
		for _, c := range p.Children {
			if v := minParticleDepth(c, need); v > worst {
				worst = v
			}
		}
		return worst
	}
}
