package dtd

import (
	"fmt"
	"strings"
)

// Parse parses DTD text. It supports ELEMENT and ATTLIST declarations, the
// full element content-model grammar (sequence, choice, "?"/"*"/"+"
// modifiers, nesting), EMPTY/ANY/mixed content, comments, processing
// instructions, and textual parameter entities ("<!ENTITY % n '...'>" with
// "%n;" references). The first declared element becomes the root.
func Parse(text string) (*DTD, error) {
	expanded, err := expandParameterEntities(text)
	if err != nil {
		return nil, err
	}
	d := &DTD{Elements: make(map[string]*Element)}
	s := &scanner{src: expanded}
	for {
		s.skipSpaceAndComments()
		if s.eof() {
			break
		}
		switch {
		case s.consume("<!ELEMENT"):
			if err := parseElement(s, d); err != nil {
				return nil, err
			}
		case s.consume("<!ATTLIST"):
			if err := parseAttlist(s, d); err != nil {
				return nil, err
			}
		case s.consume("<!ENTITY"):
			// General entities (and already-expanded parameter entities) are
			// skipped; they do not affect the containment graph.
			if err := s.skipToDeclEnd(); err != nil {
				return nil, err
			}
		case s.consume("<!NOTATION"):
			if err := s.skipToDeclEnd(); err != nil {
				return nil, err
			}
		case s.consume("<?"):
			if !s.skipPast("?>") {
				return nil, s.errorf("unterminated processing instruction")
			}
		default:
			return nil, s.errorf("unexpected input %q", s.peekContext())
		}
	}
	if len(d.order) == 0 {
		return nil, fmt.Errorf("dtd: no element declarations")
	}
	if d.Root == "" {
		d.Root = d.order[0]
	}
	return d, nil
}

// MustParse is Parse for statically known DTDs; it panics on error.
func MustParse(text string) *DTD {
	d, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return d
}

// expandParameterEntities collects <!ENTITY % name "value"> declarations and
// textually replaces %name; references, iterating to support entities that
// reference other entities. Expansion depth is bounded to reject cycles.
func expandParameterEntities(text string) (string, error) {
	entities := make(map[string]string)
	// Collect declarations with a light scan; declarations themselves may not
	// contain the '>' character inside the quoted value per XML rules.
	s := &scanner{src: text}
	for {
		i := strings.Index(s.src[s.pos:], "<!ENTITY")
		if i < 0 {
			break
		}
		s.pos += i + len("<!ENTITY")
		s.skipSpace()
		if !s.consume("%") {
			continue // general entity; leave in place
		}
		s.skipSpace()
		name, err := s.name()
		if err != nil {
			return "", fmt.Errorf("dtd: parameter entity: %w", err)
		}
		s.skipSpace()
		val, err := s.quoted()
		if err != nil {
			return "", fmt.Errorf("dtd: parameter entity %q: %w", name, err)
		}
		entities[name] = val
		s.skipSpace()
		if !s.consume(">") {
			return "", fmt.Errorf("dtd: parameter entity %q: missing '>'", name)
		}
	}
	if len(entities) == 0 {
		return text, nil
	}
	// maxExpandedSize caps the expanded text: entity values referencing other
	// entities can multiply the size each round ("billion laughs"), and the
	// depth bound alone does not prevent the memory blowup.
	const maxExpandedSize = 1 << 22
	out := text
	for depth := 0; strings.Contains(out, "%"); depth++ {
		if depth > 32 {
			return "", fmt.Errorf("dtd: parameter entity expansion too deep (cycle?)")
		}
		changed := false
		for name, val := range entities {
			ref := "%" + name + ";"
			if strings.Contains(out, ref) {
				out = strings.ReplaceAll(out, ref, val)
				changed = true
			}
			if len(out) > maxExpandedSize {
				return "", fmt.Errorf("dtd: parameter entity expansion exceeds %d bytes", maxExpandedSize)
			}
		}
		if !changed {
			break
		}
	}
	return out, nil
}

func parseElement(s *scanner, d *DTD) error {
	s.skipSpace()
	name, err := s.name()
	if err != nil {
		return s.errorf("element declaration: %w", err)
	}
	s.skipSpace()
	el := &Element{Name: name}
	switch {
	case s.consume("EMPTY"):
		el.Content = EmptyContent
	case s.consume("ANY"):
		el.Content = AnyContent
	case s.peekByte() == '(':
		kind, model, mixed, err := parseContentSpec(s)
		if err != nil {
			return fmt.Errorf("dtd: element %q: %w", name, err)
		}
		el.Content = kind
		el.Model = model
		el.MixedNames = mixed
	default:
		return s.errorf("element %q: expected content specification", name)
	}
	s.skipSpace()
	if !s.consume(">") {
		return s.errorf("element %q: missing '>'", name)
	}
	if prev := d.Elements[name]; prev != nil {
		return fmt.Errorf("dtd: element %q declared twice", name)
	}
	d.Elements[name] = el
	d.order = append(d.order, name)
	return nil
}

// parseContentSpec parses either a mixed-content spec or an element content
// model, starting at '('.
func parseContentSpec(s *scanner) (ContentKind, *Particle, []string, error) {
	save := s.pos
	s.consume("(")
	s.skipSpace()
	if s.consume("#PCDATA") {
		var mixed []string
		for {
			s.skipSpace()
			if s.consume(")") {
				s.consume("*") // (#PCDATA)* and (#PCDATA) are both legal
				return MixedContent, nil, mixed, nil
			}
			if !s.consume("|") {
				return 0, nil, nil, s.errorf("mixed content: expected '|' or ')'")
			}
			s.skipSpace()
			n, err := s.name()
			if err != nil {
				return 0, nil, nil, fmt.Errorf("mixed content: %w", err)
			}
			mixed = append(mixed, n)
		}
	}
	s.pos = save
	p, err := parseGroup(s, 0)
	if err != nil {
		return 0, nil, nil, err
	}
	return ChildrenContent, p, nil, nil
}

// maxGroupDepth bounds content-model nesting: the parser recurses per group
// and an adversarial "((((..." input must fail cleanly instead of
// overflowing the goroutine stack. Real DTDs nest a handful of levels.
const maxGroupDepth = 100

// parseGroup parses "(cp (sep cp)*) occ?" where sep is ',' or '|'.
func parseGroup(s *scanner, depth int) (*Particle, error) {
	if depth > maxGroupDepth {
		return nil, s.errorf("content model nested deeper than %d groups", maxGroupDepth)
	}
	if !s.consume("(") {
		return nil, s.errorf("expected '('")
	}
	var children []*Particle
	kind := SeqParticle
	first := true
	for {
		s.skipSpace()
		cp, err := parseCP(s, depth+1)
		if err != nil {
			return nil, err
		}
		children = append(children, cp)
		s.skipSpace()
		switch {
		case s.consume(")"):
			p := &Particle{Kind: kind, Children: children, Occ: parseOcc(s)}
			return p, nil
		case s.consume(","):
			if !first && kind != SeqParticle {
				return nil, s.errorf("mixed ',' and '|' in one group")
			}
			kind = SeqParticle
		case s.consume("|"):
			if !first && kind != ChoiceParticle {
				return nil, s.errorf("mixed ',' and '|' in one group")
			}
			kind = ChoiceParticle
		default:
			return nil, s.errorf("expected ',', '|' or ')'")
		}
		first = false
	}
}

// parseCP parses a content particle: a name or a nested group, with an
// optional occurrence modifier.
func parseCP(s *scanner, depth int) (*Particle, error) {
	if s.peekByte() == '(' {
		return parseGroup(s, depth)
	}
	n, err := s.name()
	if err != nil {
		return nil, err
	}
	return &Particle{Kind: NameParticle, Name: n, Occ: parseOcc(s)}, nil
}

func parseOcc(s *scanner) Occurrence {
	switch {
	case s.consume("?"):
		return Optional
	case s.consume("*"):
		return ZeroOrMore
	case s.consume("+"):
		return OneOrMore
	default:
		return One
	}
}

func parseAttlist(s *scanner, d *DTD) error {
	s.skipSpace()
	elName, err := s.name()
	if err != nil {
		return s.errorf("attlist: %w", err)
	}
	for {
		s.skipSpace()
		if s.consume(">") {
			return nil
		}
		attr := Attr{}
		attr.Name, err = s.name()
		if err != nil {
			return s.errorf("attlist %q: attribute name: %w", elName, err)
		}
		s.skipSpace()
		// Attribute type: a keyword, NOTATION group, or enumeration group.
		if s.peekByte() == '(' {
			start := s.pos
			if !s.skipPast(")") {
				return s.errorf("attlist %q: unterminated enumeration", elName)
			}
			attr.Type = strings.TrimSpace(s.src[start:s.pos])
		} else {
			attr.Type, err = s.name()
			if err != nil {
				return s.errorf("attlist %q: attribute type: %w", elName, err)
			}
			if attr.Type == "NOTATION" {
				s.skipSpace()
				start := s.pos
				if !s.skipPast(")") {
					return s.errorf("attlist %q: unterminated NOTATION group", elName)
				}
				attr.Type += " " + strings.TrimSpace(s.src[start:s.pos])
			}
		}
		s.skipSpace()
		switch {
		case s.consume("#REQUIRED"):
			attr.Default = "#REQUIRED"
		case s.consume("#IMPLIED"):
			attr.Default = "#IMPLIED"
		case s.consume("#FIXED"):
			s.skipSpace()
			v, err := s.quoted()
			if err != nil {
				return s.errorf("attlist %q: #FIXED value: %w", elName, err)
			}
			attr.Default = "#FIXED " + v
		default:
			v, err := s.quoted()
			if err != nil {
				return s.errorf("attlist %q: default value: %w", elName, err)
			}
			attr.Default = v
		}
		if el := d.Elements[elName]; el != nil {
			el.Attrs = append(el.Attrs, attr)
		}
		// ATTLISTs for undeclared elements are tolerated and dropped; real
		// DTDs order declarations freely. A second pass is avoided because
		// the routing system never needs attributes of undeclared elements.
	}
}

// scanner is a minimal cursor over the DTD source.
type scanner struct {
	src string
	pos int
}

func (s *scanner) eof() bool { return s.pos >= len(s.src) }

func (s *scanner) peekByte() byte {
	if s.eof() {
		return 0
	}
	return s.src[s.pos]
}

func (s *scanner) consume(tok string) bool {
	if strings.HasPrefix(s.src[s.pos:], tok) {
		s.pos += len(tok)
		return true
	}
	return false
}

func (s *scanner) skipSpace() {
	for !s.eof() {
		switch s.src[s.pos] {
		case ' ', '\t', '\n', '\r':
			s.pos++
		default:
			return
		}
	}
}

func (s *scanner) skipSpaceAndComments() {
	for {
		s.skipSpace()
		if s.consume("<!--") {
			if !s.skipPast("-->") {
				s.pos = len(s.src)
			}
			continue
		}
		return
	}
}

// skipPast advances just past the next occurrence of tok, reporting whether
// it was found.
func (s *scanner) skipPast(tok string) bool {
	i := strings.Index(s.src[s.pos:], tok)
	if i < 0 {
		return false
	}
	s.pos += i + len(tok)
	return true
}

func (s *scanner) skipToDeclEnd() error {
	if !s.skipPast(">") {
		return s.errorf("unterminated declaration")
	}
	return nil
}

func (s *scanner) name() (string, error) {
	start := s.pos
	for !s.eof() {
		c := s.src[s.pos]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '.' || c == '-' || c == '_' || c == ':' || c == '#' {
			s.pos++
			continue
		}
		break
	}
	if s.pos == start {
		return "", fmt.Errorf("expected name at offset %d (near %q)", s.pos, s.peekContext())
	}
	return s.src[start:s.pos], nil
}

func (s *scanner) quoted() (string, error) {
	q := s.peekByte()
	if q != '"' && q != '\'' {
		return "", fmt.Errorf("expected quoted string at offset %d", s.pos)
	}
	s.pos++
	start := s.pos
	i := strings.IndexByte(s.src[s.pos:], q)
	if i < 0 {
		return "", fmt.Errorf("unterminated string at offset %d", start)
	}
	s.pos += i + 1
	return s.src[start : s.pos-1], nil
}

func (s *scanner) peekContext() string {
	end := s.pos + 24
	if end > len(s.src) {
		end = len(s.src)
	}
	return s.src[s.pos:end]
}

func (s *scanner) errorf(format string, args ...any) error {
	return fmt.Errorf("dtd: offset %d: %w", s.pos, fmt.Errorf(format, args...))
}
