package dtd

import "testing"

func TestMinDepthBelow(t *testing.T) {
	d := MustParse(`
<!ELEMENT root (mid)>
<!ELEMENT mid (leaf, opt?)>
<!ELEMENT leaf (#PCDATA)>
<!ELEMENT opt (leaf)>
<!ELEMENT loose (leaf*)>
<!ELEMENT chooser (leaf | mid)>
`)
	need := d.MinDepthBelow()
	tests := []struct {
		el   string
		want int
	}{
		{"leaf", 0},    // text-only: can be childless
		{"loose", 0},   // all-optional model
		{"opt", 1},     // must contain a leaf
		{"mid", 1},     // leaf is required, opt is not
		{"root", 2},    // root -> mid -> leaf
		{"chooser", 1}, // picks the cheaper branch
	}
	for _, tt := range tests {
		if got := need[tt.el]; got != tt.want {
			t.Errorf("MinDepthBelow[%s] = %d, want %d", tt.el, got, tt.want)
		}
	}
}

func TestMinDepthBelowRecursive(t *testing.T) {
	// A cycle with an exit still terminates cheaply; a cycle without one is
	// unbounded.
	d := MustParse(`
<!ELEMENT a (b)>
<!ELEMENT b (a | leaf)>
<!ELEMENT leaf (#PCDATA)>
<!ELEMENT trap (trap2)>
<!ELEMENT trap2 (trap)>
`)
	need := d.MinDepthBelow()
	if need["a"] != 2 { // a -> b -> leaf
		t.Errorf("need[a] = %d, want 2", need["a"])
	}
	if need["b"] != 1 {
		t.Errorf("need[b] = %d, want 1", need["b"])
	}
	if need["trap"] < Unbounded {
		t.Errorf("need[trap] = %d, want unbounded", need["trap"])
	}
}

func TestCorporaDepthsBounded(t *testing.T) {
	// Every element of the embedded corpora must be able to terminate: the
	// document generator relies on it.
	for _, src := range []string{bookDTD, recursiveDTD} {
		d := MustParse(src)
		need := d.MinDepthBelow()
		for _, name := range d.Names() {
			if need[name] >= Unbounded {
				t.Errorf("element %q cannot terminate", name)
			}
		}
	}
}
