package dtd

import "testing"

// FuzzParseDTD fuzzes the DTD parser. Accepted DTDs must satisfy the model
// invariants the rest of the system relies on (a declared root, resolvable
// children, terminating analyses); rejected inputs must fail with an error,
// never a panic, stack overflow, or memory blowup. Seeds cover every
// declaration kind the parser knows plus the hardened corner cases
// (parameter entities, nested groups, enumerations, comments).
func FuzzParseDTD(f *testing.F) {
	seeds := []string{
		`<!ELEMENT a (b, c)> <!ELEMENT b (#PCDATA)> <!ELEMENT c EMPTY>`,
		`<!ELEMENT root (sec+)> <!ELEMENT sec (head?, (par | sec)*)> <!ELEMENT head (#PCDATA)> <!ELEMENT par (#PCDATA)>`,
		`<!ELEMENT a ANY>`,
		`<!ELEMENT m (#PCDATA | b)*> <!ELEMENT b EMPTY>`,
		`<!ELEMENT a (b)> <!ELEMENT b (#PCDATA)> <!ATTLIST a x CDATA #REQUIRED y (on|off) "on">`,
		`<!-- comment --> <!ELEMENT a EMPTY> <?pi data?>`,
		`<!ENTITY % core "b, c"> <!ELEMENT a (%core;)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>`,
		`<!ENTITY % x "%y;"> <!ENTITY % y "%x;"> <!ELEMENT a (%x;)>`,
		`<!ELEMENT a ((((b))))> <!ELEMENT b EMPTY>`,
		`<!ELEMENT a (b`,
		`<!ELEMENT a>`,
		`<!ATTLIST a x NOTATION (n1|n2) #IMPLIED>`,
		`<!NOTATION n SYSTEM "u"> <!ELEMENT a EMPTY>`,
		`<!ELEMENT `,
		`((((((((((`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return // keep individual executions fast; blowups are covered below the cap too
		}
		d, err := Parse(input)
		if err != nil {
			return
		}
		if d.Root == "" {
			t.Fatal("accepted DTD has empty root")
		}
		if d.Elements[d.Root] == nil {
			t.Fatalf("root %q not in element table", d.Root)
		}
		// The analyses the generators and advertisement derivation run must
		// terminate and not panic on anything the parser accepts.
		for _, name := range d.Names() {
			_ = d.Children(name)
			_ = d.IsLeaf(name)
			_ = d.CanBeChildless(name)
		}
		_ = d.Reachable()
		_ = d.RecursiveElements()
		_ = d.MinDepthBelow()
	})
}
