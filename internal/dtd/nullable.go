package dtd

// Nullable reports whether the particle can match the empty element sequence
// (i.e. an element with this content model may have no element children).
func (p *Particle) Nullable() bool {
	if p == nil {
		return true
	}
	if p.Occ == Optional || p.Occ == ZeroOrMore {
		return true
	}
	switch p.Kind {
	case NameParticle:
		return false
	case ChoiceParticle:
		for _, c := range p.Children {
			if c.Nullable() {
				return true
			}
		}
		return false
	default: // SeqParticle
		for _, c := range p.Children {
			if !c.Nullable() {
				return false
			}
		}
		return true
	}
}

// CanBeChildless reports whether an element with the given name may appear in
// a conforming document with no element children, making it a possible
// terminus of a root-to-leaf path. EMPTY, ANY, and mixed content can always
// be childless; element content can iff its model is nullable.
func (d *DTD) CanBeChildless(name string) bool {
	el := d.Elements[name]
	if el == nil {
		return false
	}
	switch el.Content {
	case EmptyContent, AnyContent, MixedContent:
		return true
	default:
		return el.Model.Nullable()
	}
}
