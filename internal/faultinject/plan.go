// Package faultinject builds seeded, deterministic fault plans for the
// broker overlay and provides a net.Conn wrapper that injects connection
// faults into the TCP transport. The same plan drives both execution modes:
// the discrete-event simulator consumes partition/crash schedules on its
// virtual clock (sim.Network.InjectPlan), and transport tests wrap real
// connections with deterministic drop/delay/corrupt behaviour. Determinism
// is the point — a failing chaos run reproduces from its seed alone.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Kind enumerates fault-plan events.
type Kind uint8

const (
	// KindPartition severs the overlay link A-B in both directions.
	KindPartition Kind = iota
	// KindHeal restores the link A-B; both ends resync control state.
	KindHeal
	// KindCrash takes broker A down; it loses all routing state and every
	// frame addressed to it while down.
	KindCrash
	// KindRestart brings broker A back with empty tables; neighbours resync
	// it and its clients replay their control messages.
	KindRestart
)

// String names the kind for logs and test failures.
func (k Kind) String() string {
	switch k {
	case KindPartition:
		return "partition"
	case KindHeal:
		return "heal"
	case KindCrash:
		return "crash"
	case KindRestart:
		return "restart"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one scheduled fault transition.
type Event struct {
	// At is the event time on the consumer's clock (virtual for the
	// simulator, since-start for wall-clock consumers).
	At   time.Duration
	Kind Kind
	// A and B are the link endpoints for partition/heal; for crash/restart
	// only A is set (the broker).
	A, B string
}

// String renders one event compactly: "12ms partition b1-b2".
func (e Event) String() string {
	if e.B != "" {
		return fmt.Sprintf("%v %s %s-%s", e.At, e.Kind, e.A, e.B)
	}
	return fmt.Sprintf("%v %s %s", e.At, e.Kind, e.A)
}

// Plan is a deterministic fault schedule: every fault opens with a
// partition/crash event and closes with its matching heal/restart strictly
// before Horizon, so a consumer that runs the plan to its horizon is
// guaranteed a fully healed overlay.
type Plan struct {
	Seed    int64
	Horizon time.Duration
	Events  []Event // sorted by At
}

// Options bounds plan generation.
type Options struct {
	// Links are the partitionable overlay links.
	Links [][2]string
	// Brokers are the crashable brokers.
	Brokers []string
	// Faults is the number of fault windows to schedule (default 4).
	Faults int
	// Horizon is the plan length; every fault heals strictly before it
	// (default 1s).
	Horizon time.Duration
	// MinDown and MaxDown bound each fault window's duration (defaults
	// Horizon/20 and Horizon/4).
	MinDown, MaxDown time.Duration
}

// New generates a fault plan from a seed. The same seed and options always
// yield the same plan. Windows on the same resource (one link, one broker)
// never overlap; windows on different resources may, so partitions and
// crashes compound.
func New(seed int64, o Options) *Plan {
	if o.Faults <= 0 {
		o.Faults = 4
	}
	if o.Horizon <= 0 {
		o.Horizon = time.Second
	}
	if o.MaxDown <= 0 {
		o.MaxDown = o.Horizon / 4
	}
	if o.MinDown <= 0 {
		o.MinDown = o.Horizon / 20
	}
	if o.MinDown > o.MaxDown {
		o.MinDown = o.MaxDown
	}
	r := rand.New(rand.NewSource(seed))
	p := &Plan{Seed: seed, Horizon: o.Horizon}

	type window struct{ start, end time.Duration }
	busy := make(map[string][]window) // resource key -> scheduled windows
	resources := len(o.Links) + len(o.Brokers)
	if resources == 0 {
		return p
	}
	overlaps := func(key string, s, e time.Duration) bool {
		for _, w := range busy[key] {
			if s < w.end && w.start < e {
				return true
			}
		}
		return false
	}
	for placed, attempts := 0, 0; placed < o.Faults && attempts < o.Faults*50; attempts++ {
		pick := r.Intn(resources)
		dur := o.MinDown
		if span := o.MaxDown - o.MinDown; span > 0 {
			dur += time.Duration(r.Int63n(int64(span)))
		}
		latest := o.Horizon - dur - 1
		if latest <= 0 {
			break // window cannot fit the horizon at all
		}
		start := time.Duration(r.Int63n(int64(latest)))
		var open, close Event
		var key string
		if pick < len(o.Links) {
			l := o.Links[pick]
			key = "link:" + l[0] + "-" + l[1]
			open = Event{At: start, Kind: KindPartition, A: l[0], B: l[1]}
			close = Event{At: start + dur, Kind: KindHeal, A: l[0], B: l[1]}
		} else {
			id := o.Brokers[pick-len(o.Links)]
			key = "broker:" + id
			open = Event{At: start, Kind: KindCrash, A: id}
			close = Event{At: start + dur, Kind: KindRestart, A: id}
		}
		if overlaps(key, start, start+dur) {
			continue
		}
		busy[key] = append(busy[key], window{start, start + dur})
		p.Events = append(p.Events, open, close)
		placed++
	}
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	return p
}

// Validate checks the plan's structural invariants: events sorted by time,
// every partition/crash closed by a matching heal/restart, and everything
// healed strictly before the horizon.
func (p *Plan) Validate() error {
	open := make(map[string]Kind) // resource -> open fault kind
	last := time.Duration(-1)
	for _, e := range p.Events {
		if e.At < last {
			return fmt.Errorf("faultinject: events out of order at %v", e.At)
		}
		last = e.At
		if e.At >= p.Horizon {
			return fmt.Errorf("faultinject: event %s at/after horizon %v", e, p.Horizon)
		}
		key := e.A
		if e.B != "" {
			key = e.A + "-" + e.B
		}
		switch e.Kind {
		case KindPartition, KindCrash:
			if _, dup := open[key]; dup {
				return fmt.Errorf("faultinject: %s already open at %v", key, e.At)
			}
			open[key] = e.Kind
		case KindHeal:
			if k, ok := open[key]; !ok || k != KindPartition {
				return fmt.Errorf("faultinject: heal of %s without open partition", key)
			}
			delete(open, key)
		case KindRestart:
			if k, ok := open[key]; !ok || k != KindCrash {
				return fmt.Errorf("faultinject: restart of %s without open crash", key)
			}
			delete(open, key)
		default:
			return fmt.Errorf("faultinject: unknown kind %d", e.Kind)
		}
	}
	if len(open) > 0 {
		keys := make([]string, 0, len(open))
		for k := range open {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return fmt.Errorf("faultinject: unhealed faults at horizon: %s", strings.Join(keys, ", "))
	}
	return nil
}

// String renders the whole schedule, one event per line — the reproduction
// recipe printed by failing chaos tests.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan seed=%d horizon=%v\n", p.Seed, p.Horizon)
	for _, e := range p.Events {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}
