package faultinject

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

var treeLinks = [][2]string{
	{"b1", "b2"}, {"b1", "b3"}, {"b2", "b4"}, {"b2", "b5"}, {"b3", "b6"}, {"b3", "b7"},
}

func TestPlanDeterminism(t *testing.T) {
	o := Options{Links: treeLinks, Brokers: []string{"b2", "b3"}, Faults: 6}
	for seed := int64(0); seed < 20; seed++ {
		a, b := New(seed, o), New(seed, o)
		if a.String() != b.String() {
			t.Fatalf("seed %d produced two different plans:\n%s\n%s", seed, a, b)
		}
	}
	if New(1, o).String() == New(2, o).String() {
		t.Fatal("different seeds produced identical plans (generator ignores seed?)")
	}
}

func TestPlanValidates(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p := New(seed, Options{Links: treeLinks, Brokers: []string{"b1", "b4"}, Faults: 5})
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: generated plan invalid: %v\n%s", seed, err, p)
		}
		if len(p.Events) == 0 {
			t.Fatalf("seed %d: empty plan", seed)
		}
		if len(p.Events)%2 != 0 {
			t.Fatalf("seed %d: odd event count %d", seed, len(p.Events))
		}
	}
}

func TestPlanHealsBeforeHorizon(t *testing.T) {
	p := New(7, Options{Links: treeLinks, Faults: 8, Horizon: 200 * time.Millisecond})
	for _, e := range p.Events {
		if e.At >= p.Horizon {
			t.Fatalf("event %s at or beyond horizon %v", e, p.Horizon)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanSameResourceNeverOverlaps(t *testing.T) {
	// One single link: every window must be disjoint.
	p := New(3, Options{Links: [][2]string{{"a", "b"}}, Faults: 10, Horizon: time.Second})
	depth := 0
	for _, e := range p.Events {
		switch e.Kind {
		case KindPartition:
			depth++
		case KindHeal:
			depth--
		}
		if depth > 1 {
			t.Fatalf("overlapping partitions of the same link:\n%s", p)
		}
	}
}

func TestPlanEmptyResources(t *testing.T) {
	p := New(1, Options{})
	if len(p.Events) != 0 {
		t.Fatalf("plan with no resources scheduled %d events", len(p.Events))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBrokenPlans(t *testing.T) {
	h := time.Second
	cases := []struct {
		name   string
		events []Event
	}{
		{"unhealed", []Event{{At: 1, Kind: KindPartition, A: "a", B: "b"}}},
		{"heal-without-open", []Event{{At: 1, Kind: KindHeal, A: "a", B: "b"}}},
		{"restart-without-crash", []Event{{At: 1, Kind: KindRestart, A: "a"}}},
		{"double-crash", []Event{
			{At: 1, Kind: KindCrash, A: "a"},
			{At: 2, Kind: KindCrash, A: "a"},
		}},
		{"out-of-order", []Event{
			{At: 5, Kind: KindCrash, A: "a"},
			{At: 1, Kind: KindRestart, A: "a"},
		}},
		{"beyond-horizon", []Event{
			{At: h, Kind: KindCrash, A: "a"},
			{At: h + 1, Kind: KindRestart, A: "a"},
		}},
		{"unknown-kind", []Event{{At: 1, Kind: Kind(99), A: "a"}}},
	}
	for _, tc := range cases {
		p := &Plan{Horizon: h, Events: tc.events}
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken plan", tc.name)
		}
	}
}

func TestEventAndKindStrings(t *testing.T) {
	e := Event{At: 12 * time.Millisecond, Kind: KindPartition, A: "b1", B: "b2"}
	if got := e.String(); got != "12ms partition b1-b2" {
		t.Errorf("link event rendered %q", got)
	}
	c := Event{At: time.Millisecond, Kind: KindCrash, A: "b3"}
	if got := c.String(); got != "1ms crash b3" {
		t.Errorf("crash event rendered %q", got)
	}
	if got := fmt.Sprint(KindHeal, KindRestart, Kind(42)); got != "heal restart kind(42)" {
		t.Errorf("kind strings rendered %q", got)
	}
	p := New(9, Options{Brokers: []string{"b1"}, Faults: 1})
	if !strings.Contains(p.String(), "seed=9") {
		t.Errorf("plan string missing seed: %q", p.String())
	}
}
