package faultinject

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// pipePair returns the two ends of an in-memory connection.
func pipePair() (net.Conn, net.Conn) { return net.Pipe() }

func TestWrapZeroFaultsIsIdentity(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	if Wrap(a, ConnFaults{}) != a {
		t.Fatal("zero ConnFaults should return the original conn")
	}
}

func TestCloseAfterWrites(t *testing.T) {
	a, b := pipePair()
	defer b.Close()
	w := Wrap(a, ConnFaults{CloseAfterWrites: 3})
	go func() { // drain the reader side so writes complete
		buf := make([]byte, 16)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 2; i++ {
		if _, err := w.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d failed early: %v", i+1, err)
		}
	}
	if _, err := w.Write([]byte("boom")); err == nil {
		t.Fatal("third write should have failed")
	}
	if _, err := w.Write([]byte("after")); err == nil {
		t.Fatal("writes after the close should keep failing")
	}
}

func TestCloseAfterReads(t *testing.T) {
	a, b := pipePair()
	defer b.Close()
	r := Wrap(a, ConnFaults{CloseAfterReads: 2})
	go func() {
		b.Write([]byte("x"))
	}()
	buf := make([]byte, 1)
	if _, err := r.Read(buf); err != nil {
		t.Fatalf("first read failed: %v", err)
	}
	if _, err := r.Read(buf); err == nil {
		t.Fatal("second read should have failed")
	}
}

func TestCorruptWriteFlipsBytes(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	w := Wrap(a, ConnFaults{CorruptWrite: 2})
	got := make(chan []byte, 2)
	go func() {
		for i := 0; i < 2; i++ {
			buf := make([]byte, 4)
			n, err := b.Read(buf)
			if err != nil {
				close(got)
				return
			}
			got <- buf[:n]
		}
	}()
	w.Write([]byte{0x10, 0x20})
	w.Write([]byte{0x10, 0x20})
	first, second := <-got, <-got
	if !bytes.Equal(first, []byte{0x10, 0x20}) {
		t.Fatalf("first write corrupted: %x", first)
	}
	if !bytes.Equal(second, []byte{0x11, 0x21}) {
		t.Fatalf("second write not corrupted as specified: %x", second)
	}
}

func TestWriteDelay(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	w := Wrap(a, ConnFaults{WriteDelay: 30 * time.Millisecond})
	go func() {
		buf := make([]byte, 4)
		b.Read(buf)
	}()
	start := time.Now()
	if _, err := w.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("write returned after %v, want >= ~30ms of injected delay", elapsed)
	}
}

func TestSequenceAppliesInOrder(t *testing.T) {
	hook := Sequence(ConnFaults{CloseAfterWrites: 1}, ConnFaults{})
	a1, b1 := pipePair()
	defer b1.Close()
	c1 := hook(a1)
	if _, err := c1.Write([]byte("x")); err == nil {
		t.Fatal("first connection should die on its first write")
	}
	a2, b2 := pipePair()
	defer a2.Close()
	defer b2.Close()
	if hook(a2) != a2 {
		t.Fatal("second connection should pass through unwrapped (zero faults)")
	}
	a3, b3 := pipePair()
	defer a3.Close()
	defer b3.Close()
	if hook(a3) != a3 {
		t.Fatal("connections beyond the sequence should pass through")
	}
}
