package faultinject

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ConnFaults describes deterministic faults injected into one connection.
// The zero value injects nothing.
type ConnFaults struct {
	// CloseAfterWrites closes the connection before the Nth write (1-based;
	// 0 disables) — the mid-stream peer kill.
	CloseAfterWrites int
	// CloseAfterReads closes the connection before the Nth read.
	CloseAfterReads int
	// WriteDelay is added before every write — a slow or congested link.
	WriteDelay time.Duration
	// CorruptWrite flips the low bit of every byte of the Nth write
	// (1-based; 0 disables) — a corrupt frame on the wire. The peer's
	// decoder must reject it and close the connection without panicking.
	CorruptWrite int
}

// faultConn wraps a net.Conn applying ConnFaults. Counters are atomic:
// reads and writes may come from different goroutines.
type faultConn struct {
	net.Conn
	f      ConnFaults
	writes atomic.Int64
	reads  atomic.Int64
}

// Wrap applies the fault description to a connection. A zero ConnFaults
// returns the connection unchanged.
func Wrap(c net.Conn, f ConnFaults) net.Conn {
	if f == (ConnFaults{}) {
		return c
	}
	return &faultConn{Conn: c, f: f}
}

func (c *faultConn) Write(p []byte) (int, error) {
	n := c.writes.Add(1)
	if c.f.CloseAfterWrites > 0 && n >= int64(c.f.CloseAfterWrites) {
		c.Conn.Close()
		return 0, net.ErrClosed
	}
	if c.f.WriteDelay > 0 {
		time.Sleep(c.f.WriteDelay)
	}
	if c.f.CorruptWrite > 0 && n == int64(c.f.CorruptWrite) {
		corrupted := make([]byte, len(p))
		for i, b := range p {
			corrupted[i] = b ^ 0x01
		}
		return c.Conn.Write(corrupted)
	}
	return c.Conn.Write(p)
}

func (c *faultConn) Read(p []byte) (int, error) {
	n := c.reads.Add(1)
	if c.f.CloseAfterReads > 0 && n >= int64(c.f.CloseAfterReads) {
		c.Conn.Close()
		return 0, net.ErrClosed
	}
	return c.Conn.Read(p)
}

// Sequence returns a connection-wrap hook that applies faults[k] to the
// k-th wrapped connection (in wrap order) and passes later connections
// through untouched. It is the transport's fault-injection entry point:
// "kill the first connection after three frames, let the reconnection
// live" is Sequence(ConnFaults{CloseAfterWrites: 3}).
func Sequence(faults ...ConnFaults) func(net.Conn) net.Conn {
	var mu sync.Mutex
	next := 0
	return func(c net.Conn) net.Conn {
		mu.Lock()
		defer mu.Unlock()
		if next < len(faults) {
			f := faults[next]
			next++
			return Wrap(c, f)
		}
		return c
	}
}
