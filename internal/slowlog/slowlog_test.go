package slowlog

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestRingEviction(t *testing.T) {
	l := New(time.Millisecond, 3)
	for i := 0; i < 5; i++ {
		l.Record(Entry{Broker: "b1", TotalNanos: int64(i)})
	}
	if got := l.Total(); got != 5 {
		t.Errorf("Total = %d, want 5 (evicted entries still counted)", got)
	}
	snap := l.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Snapshot retained %d entries, want 3", len(snap))
	}
	// Oldest-first: entries 2, 3, 4 survive.
	for i, e := range snap {
		if e.TotalNanos != int64(i+2) {
			t.Errorf("snap[%d].TotalNanos = %d, want %d", i, e.TotalNanos, i+2)
		}
	}
}

func TestLoggerCallback(t *testing.T) {
	l := New(time.Millisecond, 4)
	var lines []string
	l.Logger = func(e Entry) { lines = append(lines, e.String()) }
	l.Record(Entry{
		Broker:     "b2",
		From:       "b1",
		TraceID:    "t-42",
		TotalNanos: int64(70 * time.Millisecond),
		Stages: []trace.StageDur{
			{Stage: trace.StageMatch, Nanos: int64(60 * time.Millisecond)},
			{Stage: trace.StageEnqueue, Nanos: int64(10 * time.Millisecond)},
		},
		Epoch:        7,
		Destinations: []string{"b3", "sub"},
		QueueDepths:  map[string]int{"b3": 12},
	})
	if len(lines) != 1 {
		t.Fatalf("Logger invoked %d times, want 1", len(lines))
	}
	for _, want := range []string{
		"broker=b2", "total=70ms", "from=b1", "match=60ms", "enqueue=10ms",
		"epoch=7", "dests=2", "trace=t-42", "max_queue=b3:12",
	} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("log line missing %q: %s", want, lines[0])
		}
	}
}

func TestCapacityFloor(t *testing.T) {
	l := New(time.Millisecond, 0)
	l.Record(Entry{Broker: "a"})
	l.Record(Entry{Broker: "b"})
	snap := l.Snapshot()
	if len(snap) != 1 || snap[0].Broker != "b" {
		t.Errorf("capacity-0 log = %+v, want just the newest entry", snap)
	}
}

// TestConcurrentRecordSnapshot hammers Record against Snapshot/Total; run
// under -race in CI.
func TestConcurrentRecordSnapshot(t *testing.T) {
	l := New(time.Millisecond, 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Record(Entry{Broker: fmt.Sprintf("b%d", g), TotalNanos: int64(i)})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if snap := l.Snapshot(); len(snap) > 8 {
				t.Errorf("snapshot over capacity: %d", len(snap))
			}
			l.Total()
		}
	}()
	wg.Wait()
	if got := l.Total(); got != 800 {
		t.Errorf("Total = %d, want 800", got)
	}
}
