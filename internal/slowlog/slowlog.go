// Package slowlog is the broker's slow-publication flight recorder: a
// bounded in-memory ring that captures the complete per-stage latency
// breakdown, document shape, routing-snapshot epoch, and send-queue depths
// of any publication whose in-broker time exceeded a configurable
// threshold. The admin endpoint /debug/slow serves the ring as JSON, and an
// optional Logger callback emits each capture as a structured log line the
// moment it happens — so "which broker, which stage was slow" is answerable
// both live and post-mortem without tracing every publication.
//
// Recording is strictly off the hot path: the broker only calls Record for
// publications already measured over the threshold, so a healthy broker
// never pays more than the threshold comparison.
package slowlog

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/trace"
)

// Entry is one slow publication capture.
type Entry struct {
	// Broker is the capturing broker's ID.
	Broker string `json:"broker"`
	// From is the peer the publication arrived from ("" for local origins).
	From string `json:"from,omitempty"`
	// TraceID is set when the publication was traced (see package trace).
	TraceID string `json:"trace_id,omitempty"`
	// UnixNano is the broker's wall clock at capture time.
	UnixNano int64 `json:"unix_nano"`
	// TotalNanos is the publication's in-broker time: the sum of the stage
	// durations below, on the monotonic clock.
	TotalNanos int64 `json:"total_nanos"`
	// Stages is the per-stage breakdown (decode, queue, match, filter,
	// enqueue — see trace stage names).
	Stages []trace.StageDur `json:"stages,omitempty"`
	// DocBytes is the raw document size for streaming publications, 0
	// otherwise.
	DocBytes int `json:"doc_bytes,omitempty"`
	// Paths is the number of decomposed paths matched (0 on the streaming
	// route, which never decomposes).
	Paths int `json:"paths,omitempty"`
	// Epoch is the routing-snapshot epoch the publication was matched under.
	Epoch uint64 `json:"epoch,omitempty"`
	// Hops is the length of the carried hop list (traced publications).
	Hops int `json:"hops,omitempty"`
	// Destinations lists the next hops (brokers and clients) the
	// publication was forwarded to.
	Destinations []string `json:"destinations,omitempty"`
	// QueueDepths snapshots the transport's per-peer send-queue depths at
	// capture time — deep queues point at the link, not the matcher.
	QueueDepths map[string]int `json:"queue_depths,omitempty"`
}

// String renders the entry as one key=value log line.
func (e Entry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "broker=%s total=%s", e.Broker, time.Duration(e.TotalNanos))
	if e.From != "" {
		fmt.Fprintf(&b, " from=%s", e.From)
	}
	for _, s := range e.Stages {
		fmt.Fprintf(&b, " %s=%s", s.Stage, time.Duration(s.Nanos))
	}
	fmt.Fprintf(&b, " epoch=%d dests=%d", e.Epoch, len(e.Destinations))
	if e.DocBytes > 0 {
		fmt.Fprintf(&b, " doc_bytes=%d", e.DocBytes)
	}
	if e.Paths > 0 {
		fmt.Fprintf(&b, " paths=%d", e.Paths)
	}
	if e.TraceID != "" {
		fmt.Fprintf(&b, " trace=%s", e.TraceID)
	}
	if len(e.QueueDepths) > 0 {
		max, maxPeer := 0, ""
		for peer, d := range e.QueueDepths {
			if d > max || (d == max && maxPeer == "") {
				max, maxPeer = d, peer
			}
		}
		fmt.Fprintf(&b, " max_queue=%s:%d", maxPeer, max)
	}
	return b.String()
}

// Log is a bounded slow-publication ring. All methods are safe for
// concurrent use; the zero value is not usable — construct with New.
type Log struct {
	threshold time.Duration

	// Logger, when non-nil, receives every captured entry synchronously
	// from Record — set it before the broker starts. It runs on the publish
	// path of an already-slow publication, so it should stay cheap (a log
	// line).
	Logger func(Entry)

	mu    sync.Mutex
	buf   []Entry
	next  int
	total int64
}

// New creates a flight recorder capturing publications slower than
// threshold, retaining up to capacity entries (minimum 1).
func New(threshold time.Duration, capacity int) *Log {
	if capacity < 1 {
		capacity = 1
	}
	return &Log{threshold: threshold, buf: make([]Entry, 0, capacity)}
}

// Threshold returns the capture threshold. The broker compares each
// publication's measured in-broker time against it.
func (l *Log) Threshold() time.Duration { return l.threshold }

// Record stores one capture, evicting the oldest when full, and invokes the
// Logger when set.
func (l *Log) Record(e Entry) {
	l.mu.Lock()
	l.total++
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.next] = e
		l.next = (l.next + 1) % cap(l.buf)
	}
	logger := l.Logger
	l.mu.Unlock()
	if logger != nil {
		logger(e)
	}
}

// Snapshot returns the retained entries oldest-first.
func (l *Log) Snapshot() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, 0, len(l.buf))
	if len(l.buf) == cap(l.buf) {
		out = append(out, l.buf[l.next:]...)
		out = append(out, l.buf[:l.next]...)
	} else {
		out = append(out, l.buf...)
	}
	return out
}

// Total returns how many slow publications were ever captured (including
// entries since evicted from the ring).
func (l *Log) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
