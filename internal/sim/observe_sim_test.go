package sim

import (
	"testing"
	"time"

	"repro/internal/admin"
	"repro/internal/broker"
	"repro/internal/metrics"
	"repro/internal/slowlog"
)

// TestSimulatedBrokersFeedStatus pins that brokers built by the simulator
// expose the same observability surface as deployed ones: per-broker stage
// histograms populate /statusz-style snapshots and the flight recorder
// captures over-threshold publications — so latency experiments can read
// stage breakdowns straight out of a simulation.
func TestSimulatedBrokersFeedStatus(t *testing.T) {
	n := NewNetwork(1)
	regs := make(map[string]*metrics.Registry)
	slows := make(map[string]*slowlog.Log)
	ids := BuildChain(n, 3, func(id string) broker.Config {
		regs[id] = metrics.NewRegistry()
		slows[id] = slowlog.New(time.Nanosecond, 8) // capture everything
		return broker.Config{
			ID:                id,
			UseAdvertisements: true,
			UseCovering:       true,
			Metrics:           regs[id],
			SlowLog:           slows[id],
		}
	})
	pub := n.AddClient("pub", ids[0])
	sub := n.AddClient("sub", ids[2])

	pub.Send(advMsg("a1", "/stock/quote/price"))
	n.Run()
	sub.Send(subMsg("/stock"))
	n.Run()
	for i := 0; i < 5; i++ {
		pub.Send(pubMsg("stock", "quote", "price"))
	}
	n.Run()
	if len(sub.Deliveries) != 5 {
		t.Fatalf("deliveries = %d, want 5", len(sub.Deliveries))
	}

	for _, id := range ids {
		st := &admin.Status{Broker: id, Started: time.Now(), Registry: regs[id], Slow: slows[id]}
		snap := st.Snapshot()
		stages := make(map[string]admin.StageQuantiles, len(snap.Stages))
		for _, s := range snap.Stages {
			stages[s.Stage] = s
		}
		for _, name := range []string{"match", "filter", "enqueue"} {
			s, ok := stages[name]
			if !ok || s.Count != 5 {
				t.Errorf("%s stage %s = %+v, want count 5", id, name, s)
			}
		}
		if snap.SlowTotal != 5 {
			t.Errorf("%s slow_total = %d, want 5", id, snap.SlowTotal)
		}
		entries := slows[id].Snapshot()
		if len(entries) != 5 || len(entries[0].Stages) == 0 {
			t.Errorf("%s flight recorder = %d entries (stages %d)", id, len(entries), len(entries[0].Stages))
		}
	}
}
