// Package sim is a deterministic discrete-event simulator for broker
// overlays. It exists because the paper's network experiments need two
// things wall-clock runs give up: exact message counts (Tables 2 and 3) and
// stable notification delays (Figures 10 and 11). Events are processed on a
// virtual clock; per-hop delay is the sum of a pluggable link latency and,
// optionally, the broker's *measured* real processing time for the message —
// so routing-table compaction genuinely shows up as lower delay, exactly the
// effect the paper measures.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/broker"
	"repro/internal/faultinject"
	"repro/internal/wirefmt"
)

// Delivery records a publication arriving at a client.
type Delivery struct {
	Pub   string
	At    time.Duration
	Delay time.Duration
	// Seq is the durable sequence number stamped on deliveries to a durable
	// subscriber (zero otherwise); Replay marks deliveries that arrived
	// inside a replay-begin/replay-end bracket rather than live.
	Seq    uint64
	Replay bool
}

// Client is a publisher or subscriber attached to an edge broker.
type Client struct {
	ID     string
	Broker string

	// Durable, when set, names a durable subscription on the edge broker:
	// Subscribe/Send convert plain subscriptions to durable registrations
	// under that name, and deliveries carry sequence numbers. AutoAck
	// acknowledges each delivery as it arrives.
	Durable string
	AutoAck bool

	// Deliveries accumulates received publications.
	Deliveries []Delivery

	// record holds the client's live control messages (subscriptions and
	// advertisements, with withdrawals removed) — what a real client's
	// reconnect logic replays. When the edge broker restarts after a crash,
	// the simulator re-enqueues the record.
	record []*broker.Message

	// detached marks a client whose connection is severed: frames addressed
	// to it are lost like any partitioned link's. replaying tracks whether
	// the client is inside a replay bracket.
	detached  bool
	replaying bool

	net *Network
}

// Subscribe registers an XPath subscription at the client's edge broker.
func (c *Client) Subscribe(m *broker.Message) { c.net.enqueueFromClient(c, m) }

// Send submits any message (advertise, subscribe, publish, ...) to the
// client's edge broker at the current virtual time.
func (c *Client) Send(m *broker.Message) { c.net.enqueueFromClient(c, m) }

// Network is the simulated overlay.
type Network struct {
	brokers map[string]*broker.Broker
	clients map[string]*Client
	queue   eventQueue
	seq     int
	now     time.Duration
	rand    *rand.Rand

	// cfgs and adj remember each broker's config and neighbour set so a
	// crashed broker can be rebuilt empty on restart.
	cfgs map[string]broker.Config
	adj  map[string]map[string]bool
	// partitioned marks severed links (canonical "a|b" keys); down marks
	// crashed brokers. Frames touching either are dropped.
	partitioned map[string]bool
	down        map[string]bool
	// faultDrops counts frames lost to injected faults.
	faultDrops int64

	// Latency computes the link delay per message; defaults to a constant
	// 500µs LAN.
	Latency LatencyModel
	// MeasureCompute adds each broker's real message-handling CPU time to
	// the virtual clock, so delays reflect routing-table work.
	MeasureCompute bool
	// Bandwidth, when positive, adds a serialisation delay of
	// wire-size/Bandwidth (bytes per second) per hop, which is how document
	// size reaches the notification delay.
	Bandwidth float64

	// DurableReopen, when set, reopens a restarted broker's durable store
	// (publication log) before the fresh instance is built — the simulated
	// counterpart of a real broker process reopening its -durable-dir on
	// boot. The restart path then runs RecoverDurable after neighbour and
	// client registration, exactly like transport.NewServerOptions.
	DurableReopen func(id string) broker.DurableStore

	// brokerReceived counts messages delivered to brokers, by type — the
	// paper's network-traffic metric.
	brokerReceived map[broker.MsgType]int64

	outbox []outMsg // sends buffered during the current handler call
}

type outMsg struct {
	to  string
	msg *broker.Message
}

type event struct {
	at   time.Duration
	seq  int
	from string
	to   string
	msg  *broker.Message
	// fault, when non-nil, makes this a fault-plan transition instead of a
	// message delivery (see InjectPlan).
	fault *faultinject.Event
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// NewNetwork constructs an empty simulated overlay.
func NewNetwork(seed int64) *Network {
	return &Network{
		brokers:        make(map[string]*broker.Broker),
		clients:        make(map[string]*Client),
		rand:           rand.New(rand.NewSource(seed)),
		Latency:        ConstantLatency(500 * time.Microsecond),
		brokerReceived: make(map[broker.MsgType]int64),
		cfgs:           make(map[string]broker.Config),
		adj:            make(map[string]map[string]bool),
		partitioned:    make(map[string]bool),
		down:           make(map[string]bool),
	}
}

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// AddBroker creates a broker with the given config and places it in the
// overlay.
func (n *Network) AddBroker(cfg broker.Config) *broker.Broker {
	id := cfg.ID
	b := n.newBrokerInstance(cfg)
	n.brokers[id] = b
	n.cfgs[id] = cfg
	if n.adj[id] == nil {
		n.adj[id] = make(map[string]bool)
	}
	return b
}

// newBrokerInstance builds a broker wired to the network's outbox; restart
// uses it to replace a crashed instance with an empty one.
func (n *Network) newBrokerInstance(cfg broker.Config) *broker.Broker {
	return broker.New(cfg, func(to string, m *broker.Message) {
		n.outbox = append(n.outbox, outMsg{to: to, msg: m})
	})
}

// Broker returns a broker by ID, or nil.
func (n *Network) Broker(id string) *broker.Broker { return n.brokers[id] }

// Brokers returns all broker IDs in insertion-independent sorted order.
func (n *Network) Brokers() map[string]*broker.Broker { return n.brokers }

// Connect links two brokers as neighbours.
func (n *Network) Connect(a, b string) {
	ba, bb := n.brokers[a], n.brokers[b]
	if ba == nil || bb == nil {
		panic(fmt.Sprintf("sim: connect %s-%s: unknown broker", a, b))
	}
	ba.AddNeighbor(b)
	bb.AddNeighbor(a)
	n.adj[a][b] = true
	n.adj[b][a] = true
}

// Links returns every broker-broker link once, sorted — the partitionable
// resource list handed to a fault-plan generator.
func (n *Network) Links() [][2]string {
	var out [][2]string
	for a, peers := range n.adj {
		for b := range peers {
			if a < b {
				out = append(out, [2]string{a, b})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// AddClient attaches a client to an edge broker.
func (n *Network) AddClient(id, brokerID string) *Client {
	b := n.brokers[brokerID]
	if b == nil {
		panic(fmt.Sprintf("sim: unknown broker %s", brokerID))
	}
	c := &Client{ID: id, Broker: brokerID, net: n}
	n.clients[id] = c
	b.AddClient(id)
	return c
}

func (n *Network) enqueueFromClient(c *Client, m *broker.Message) {
	if m.Type == broker.MsgPublish && m.Stamp == 0 {
		m.Stamp = int64(n.now)
	}
	// A durable client's subscriptions register under its durable name —
	// converted before recording, so a broker-restart replay re-sends the
	// durable registration (which doubles as reattach).
	if c.Durable != "" && m.Type == broker.MsgSubscribe {
		m.Type = broker.MsgSubscribeDurable
		m.Durable = c.Durable
	}
	c.recordControl(m)
	n.push(&event{
		at:   n.now + n.Latency.Latency(c.ID, c.Broker, n.rand) + n.transfer(m),
		from: c.ID,
		to:   c.Broker,
		msg:  m,
	})
}

// recordControl maintains the client's replayable control state: withdrawals
// cancel the matching prior message instead of being recorded themselves.
func (c *Client) recordControl(m *broker.Message) {
	switch m.Type {
	case broker.MsgSubscribe, broker.MsgAdvertise, broker.MsgSubscribeDurable:
		c.record = append(c.record, m)
	case broker.MsgUnsubscribe:
		c.dropRecord(func(r *broker.Message) bool {
			return r.Type == broker.MsgSubscribe && r.XPE.Key() == m.XPE.Key()
		})
	case broker.MsgUnadvertise:
		c.dropRecord(func(r *broker.Message) bool {
			return r.Type == broker.MsgAdvertise && r.AdvID == m.AdvID
		})
	}
}

func (c *Client) dropRecord(match func(*broker.Message) bool) {
	for i, r := range c.record {
		if match(r) {
			c.record = append(c.record[:i], c.record[i+1:]...)
			return
		}
	}
}

func (n *Network) push(e *event) {
	e.seq = n.seq
	n.seq++
	heap.Push(&n.queue, e)
}

// Run processes events until the queue drains, returning the number of
// events delivered.
func (n *Network) Run() int {
	processed := 0
	for n.queue.Len() > 0 {
		processed += n.step()
	}
	return processed
}

// step pops and processes one event.
func (n *Network) step() int {
	e := heap.Pop(&n.queue).(*event)
	n.now = e.at
	if debugTrace != nil {
		debugTrace(n, e)
	}
	if e.fault != nil {
		n.applyFault(e.fault)
		return 1
	}
	// Injected faults: frames on a severed link or addressed to a crashed
	// broker are lost, exactly like the TCP transport losing a connection
	// mid-stream.
	if n.down[e.to] || n.partitioned[linkKey(e.from, e.to)] {
		n.faultDrops++
		return 1
	}
	if b := n.brokers[e.to]; b != nil {
		n.brokerReceived[e.msg.Type]++
		n.outbox = n.outbox[:0]
		var proc time.Duration
		if n.MeasureCompute {
			start := time.Now()
			b.HandleMessage(e.msg, e.from)
			proc = time.Since(start)
		} else {
			b.HandleMessage(e.msg, e.from)
		}
		for _, om := range n.outbox {
			n.push(&event{
				at:   n.now + proc + n.Latency.Latency(e.to, om.to, n.rand) + n.transfer(om.msg),
				from: e.to,
				to:   om.to,
				msg:  om.msg,
			})
		}
		n.outbox = n.outbox[:0]
		return 1
	}
	if c := n.clients[e.to]; c != nil {
		if c.detached {
			// A severed client connection loses frames exactly like a
			// partitioned link; durable deliveries are already logged
			// broker-side and replay on reattach.
			n.faultDrops++
			return 1
		}
		switch e.msg.Type {
		case broker.MsgPublish:
			d := Delivery{Pub: e.msg.Pub.String(), At: n.now,
				Seq: e.msg.Seq, Replay: c.replaying && e.msg.Durable != ""}
			if e.msg.Stamp != 0 {
				d.Delay = n.now - time.Duration(e.msg.Stamp)
			}
			c.Deliveries = append(c.Deliveries, d)
			if c.AutoAck && e.msg.Durable != "" {
				n.push(&event{
					at:   n.now + n.Latency.Latency(c.ID, c.Broker, n.rand),
					from: c.ID,
					to:   c.Broker,
					msg:  &broker.Message{Type: broker.MsgAck, Durable: e.msg.Durable, Seq: e.msg.Seq},
				})
			}
		case broker.MsgReplayBegin:
			c.replaying = true
		case broker.MsgReplayEnd:
			c.replaying = false
		}
		return 1
	}
	panic(fmt.Sprintf("sim: event for unknown peer %s", e.to))
}

// transfer returns the serialisation delay for a message on a link, sized
// with the binary wire codec's analytic estimator so simulated bandwidth
// costs track what the real transport puts on a warm-dictionary link.
func (n *Network) transfer(m *broker.Message) time.Duration {
	if n.Bandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(wirefmt.EstimateSize(m)) / n.Bandwidth * float64(time.Second))
}

// BrokerReceived returns how many messages of each type brokers received —
// the paper's network-traffic metric.
func (n *Network) BrokerReceived() map[broker.MsgType]int64 {
	out := make(map[broker.MsgType]int64, len(n.brokerReceived))
	for k, v := range n.brokerReceived {
		out[k] = v
	}
	return out
}

// TotalBrokerMessages sums BrokerReceived over all message types.
func (n *Network) TotalBrokerMessages() int64 {
	var total int64
	for _, v := range n.brokerReceived {
		total += v
	}
	return total
}

// ResetTraffic zeroes the traffic counters (useful between workload phases).
func (n *Network) ResetTraffic() {
	n.brokerReceived = make(map[broker.MsgType]int64)
}
