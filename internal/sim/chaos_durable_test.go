package sim

// Durable chaos equivalence: the 7-broker overlay runs its control phase
// under the usual seeded broker-crash/partition schedule, then publishes
// while the durable subscribers themselves detach and reattach on a second
// seeded schedule. The at-least-once contract against a fault-free oracle:
// per client, deduplicating deliveries by sequence number and ordering by
// sequence yields exactly the oracle's delivery list; a sequence is
// delivered live at most once (duplicates come only from replay across a
// reconnect boundary); and live delivery order follows the sequence order,
// i.e. the publisher's order.

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/dtd"
	"repro/internal/faultinject"
	"repro/internal/publog"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// durableRig owns the per-broker publication logs of one overlay run and
// implements the restart-reopen hook.
type durableRig struct {
	t      *testing.T
	dir    string
	stores map[string]*publog.Store
}

func newDurableRig(t *testing.T) *durableRig {
	r := &durableRig{t: t, dir: t.TempDir(), stores: make(map[string]*publog.Store)}
	t.Cleanup(func() {
		for _, s := range r.stores {
			s.Close()
		}
	})
	return r
}

// open opens (or reopens, closing the previous instance first, as a real
// broker process boundary would) the log for one broker.
func (r *durableRig) open(id string) broker.DurableStore {
	if s := r.stores[id]; s != nil {
		if err := s.Close(); err != nil {
			r.t.Fatalf("closing %s store for reopen: %v", id, err)
		}
	}
	s, err := publog.Open(filepath.Join(r.dir, id), publog.Options{SyncAppend: true, NoFsync: true})
	if err != nil {
		r.t.Fatalf("publog.Open(%s): %v", id, err)
	}
	r.stores[id] = s
	return s
}

// template builds the per-broker config with a freshly opened log each.
func (r *durableRig) template(tpl broker.Config) BrokerConfigFn {
	return func(id string) broker.Config {
		cfg := tpl
		cfg.ID = id
		cfg.Durable = r.open(id)
		return cfg
	}
}

// durableChaosResult is one run's observable outcome per durable client.
type durableChaosResult struct {
	// pubs maps client ID to the delivered publication strings in sequence
	// order after deduplication by sequence number.
	pubs map[string][]string
	// dups counts deliveries beyond the first per (client, sequence).
	dups  int
	drops int64
}

// runDurableChaos drives one overlay: control phase under ctrlPlan (may be
// nil), publish phase under pubPlan (client detach windows, may be nil),
// both healed before the final drain.
func runDurableChaos(t *testing.T, ops []chaosOp, docs []*xmldoc.Document, ctrlPlan, pubPlan *faultinject.Plan) durableChaosResult {
	t.Helper()
	rig := newDurableRig(t)
	net := NewNetwork(1)
	net.DurableReopen = rig.open
	leaves := BuildCompleteBinaryTree(net, 3, rig.template(broker.Config{UseCovering: true}))
	pub := net.AddClient("pub", "b2")

	subs := make([]*Client, 4)
	for i := range subs {
		subs[i] = net.AddClient(fmt.Sprintf("sub%d", i), leaves[i%len(leaves)])
		subs[i].Durable = subs[i].ID
		subs[i].AutoAck = true
	}
	if ctrlPlan != nil {
		net.InjectPlan(ctrlPlan)
	}
	// Control phase: durable registrations land while brokers crash and
	// links partition. Durable subscriptions only accumulate (a durable
	// name's expression set is monotone), so withdrawal ops are skipped.
	for _, o := range ops {
		if o.unsub {
			continue
		}
		subs[o.sub].Send(&broker.Message{Type: broker.MsgSubscribe, XPE: o.xpe})
		net.RunFor(3 * time.Millisecond)
	}
	if ctrlPlan != nil {
		net.RunFor(ctrlPlan.Horizon)
	}
	net.Run()

	// Publish phase: subscribers detach and reattach mid-stream. The edge
	// brokers keep sequencing into their logs; reattach replays the gap.
	if pubPlan != nil {
		net.InjectPlan(pubPlan)
	}
	docID := uint64(0)
	for _, doc := range docs {
		for _, p := range xmldoc.Extract(doc, docID) {
			pub.Send(&broker.Message{Type: broker.MsgPublish, Pub: p})
		}
		docID++
		net.RunFor(5 * time.Millisecond)
	}
	if pubPlan != nil {
		net.RunFor(pubPlan.Horizon)
	}
	net.Run()

	res := durableChaosResult{pubs: make(map[string][]string), drops: net.FaultDrops()}
	for _, c := range subs {
		if c.Detached() {
			t.Fatalf("%s still detached after the plan horizon", c.ID)
		}
		bySeq := make(map[uint64]string)
		liveSeen := make(map[uint64]bool)
		var lastLive uint64
		var maxSeq uint64
		for _, d := range c.Deliveries {
			if d.Seq == 0 {
				t.Fatalf("%s received an unsequenced delivery %s", c.ID, d.Pub)
			}
			if prev, ok := bySeq[d.Seq]; ok {
				if prev != d.Pub {
					t.Fatalf("%s: sequence %d delivered two different publications:\n%s\n%s", c.ID, d.Seq, prev, d.Pub)
				}
				res.dups++
			} else {
				bySeq[d.Seq] = d.Pub
			}
			if !d.Replay {
				// Live deliveries follow sequence order (the publisher's
				// order) and never repeat: duplicates must be replays.
				if liveSeen[d.Seq] {
					t.Fatalf("%s: sequence %d live-delivered twice", c.ID, d.Seq)
				}
				liveSeen[d.Seq] = true
				if d.Seq <= lastLive {
					t.Fatalf("%s: live delivery order broken: seq %d after %d", c.ID, d.Seq, lastLive)
				}
				lastLive = d.Seq
			}
			if d.Seq > maxSeq {
				maxSeq = d.Seq
			}
		}
		// Sequences are gapless 1..max: a gap would be a publication that
		// was sequenced but neither live-delivered nor replayed.
		ordered := make([]string, 0, len(bySeq))
		for seq := uint64(1); seq <= maxSeq; seq++ {
			p, ok := bySeq[seq]
			if !ok {
				t.Fatalf("%s: sequence %d never delivered (max %d)", c.ID, seq, maxSeq)
			}
			ordered = append(ordered, p)
		}
		res.pubs[c.ID] = ordered
	}
	return res
}

func TestChaosDurableEquivalence(t *testing.T) {
	chaosDTD := dtd.MustParse(`
<!ELEMENT root (sec+)>
<!ELEMENT sec (head?, (par | sec | list)*)>
<!ELEMENT head (#PCDATA)>
<!ELEMENT par (#PCDATA | ref)*>
<!ELEMENT ref (#PCDATA)>
<!ELEMENT list (item+)>
<!ELEMENT item (#PCDATA | par)*>
`)
	trials := 4
	plansPerTrial := 2
	if testing.Short() {
		trials, plansPerTrial = 2, 1
	}
	var totalDups int
	var totalDrops int64
	for trial := 0; trial < trials; trial++ {
		ops, docs := chaosWorkload(chaosDTD, int64(trial))
		oracle := runDurableChaos(t, ops, docs, nil, nil)
		if oracle.dups != 0 {
			t.Fatalf("trial %d: fault-free oracle produced %d duplicate deliveries", trial, oracle.dups)
		}
		for ps := 0; ps < plansPerTrial; ps++ {
			seed := int64(5000*trial + ps)
			ctrlPlan := chaosPlan(seed)
			pubPlan := clientDetachPlan(seed + 1)
			got := runDurableChaos(t, ops, docs, ctrlPlan, pubPlan)
			totalDups += got.dups
			totalDrops += got.drops
			for id, want := range oracle.pubs {
				gotList := got.pubs[id]
				if len(gotList) != len(want) {
					t.Fatalf("trial %d plan %d: %s delivered %d distinct publications, oracle %d\nctrl:\n%s\ndetach:\n%s",
						trial, ps, id, len(gotList), len(want), ctrlPlan, pubPlan)
				}
				for i := range want {
					if gotList[i] != want[i] {
						t.Fatalf("trial %d plan %d: %s delivery %d diverges\nchaos:  %s\noracle: %s\nctrl:\n%s\ndetach:\n%s",
							trial, ps, id, i, gotList[i], want[i], ctrlPlan, pubPlan)
					}
				}
			}
		}
	}
	// Not vacuous: the schedules must have destroyed frames, and at least
	// one detach window must have forced a replayed duplicate somewhere.
	if totalDrops == 0 {
		t.Fatal("no frames were dropped — the chaos schedules exercised nothing")
	}
	if totalDups == 0 {
		t.Fatal("no duplicate deliveries across the suite — no detach window overlapped live traffic, the replay path was never exercised")
	}
}

// clientDetachPlan schedules detach/reattach windows for the four durable
// subscribers during the publish phase.
func clientDetachPlan(seed int64) *faultinject.Plan {
	subs := make([]string, 4)
	for i := range subs {
		subs[i] = fmt.Sprintf("sub%d", i)
	}
	p := faultinject.New(seed, faultinject.Options{
		Brokers: subs,
		Faults:  5,
		Horizon: 60 * time.Millisecond,
		MinDown: 5 * time.Millisecond,
		MaxDown: 25 * time.Millisecond,
	})
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

// TestDurableColdRestartReplaysOnlyUnacked pins the quiesced-restart story:
// an edge broker that crashes and reopens the same log directory recovers
// its cursors, and the returning client is replayed exactly the records the
// broker never saw acknowledged — including the detach-window publications
// the client has never seen at all.
func TestDurableColdRestartReplaysOnlyUnacked(t *testing.T) {
	rig := newDurableRig(t)
	net := NewNetwork(1)
	net.DurableReopen = rig.open
	BuildCompleteBinaryTree(net, 2, rig.template(broker.Config{}))

	alice := net.AddClient("alice", "b2")
	alice.Durable = "alice"
	pub := net.AddClient("pub", "b3")

	alice.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/root/sec")})
	net.Run()

	publish := func(doc uint64) {
		pub.Send(&broker.Message{
			Type: broker.MsgPublish,
			Pub:  xmldoc.Publication{DocID: doc, Path: []string{"root", "sec"}},
		})
		net.Run()
	}
	for doc := uint64(1); doc <= 6; doc++ {
		publish(doc)
	}
	if got := len(alice.Deliveries); got != 6 {
		t.Fatalf("delivered %d publications before the outage, want 6", got)
	}
	// Explicit ack of 1..4; 5 and 6 stay in the at-least-once window.
	alice.Send(&broker.Message{Type: broker.MsgAck, Durable: "alice", Seq: 4})
	net.Run()

	// Client gone; the broker keeps sequencing 7 and 8 into the log.
	alice.Detach()
	publish(7)
	publish(8)

	// Quiesced cold restart of the edge broker on the same directory.
	plan := &faultinject.Plan{Horizon: 10 * time.Millisecond, Events: []faultinject.Event{
		{At: 1 * time.Millisecond, Kind: faultinject.KindCrash, A: "b2"},
		{At: 5 * time.Millisecond, Kind: faultinject.KindRestart, A: "b2"},
	}}
	net.InjectPlan(plan)
	net.RunFor(plan.Horizon)
	net.Run()

	before := len(alice.Deliveries)
	alice.Reattach()
	net.Run()

	replayed := alice.Deliveries[before:]
	if len(replayed) != 4 {
		t.Fatalf("reattach replayed %d records, want 4 (seqs 5..8)", len(replayed))
	}
	for i, d := range replayed {
		wantSeq := uint64(5 + i)
		if d.Seq != wantSeq || !d.Replay {
			t.Fatalf("replayed delivery %d: seq %d replay %v, want seq %d replay true", i, d.Seq, d.Replay, wantSeq)
		}
	}
	// And nothing more: the acked prefix 1..4 stayed retired.
	if alice.Deliveries[before].Pub != alice.Deliveries[4].Pub {
		t.Fatalf("replay started at %s, want the first unacked publication %s",
			alice.Deliveries[before].Pub, alice.Deliveries[4].Pub)
	}
}
