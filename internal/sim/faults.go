package sim

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/broker"
	"repro/internal/faultinject"
)

// This file is the simulator's side of the self-healing protocol: it applies
// a faultinject.Plan on the virtual clock — severing links, crashing and
// restarting brokers — and performs on heal exactly what the TCP transport
// performs on reconnect: a control-state resync in both directions
// (broker.ResyncFor) plus a client replay of recorded subscriptions and
// advertisements when an edge broker comes back empty. Chaos equivalence
// tests run a plan to its horizon and then hold the overlay to the routing
// state and delivery set of a fault-free oracle run.

// InjectPlan schedules every event of a fault plan into the virtual event
// queue, offset from the current virtual time (event times are
// plan-relative, so a plan can be injected after setup traffic has already
// advanced the clock). Fault events are ordinary events and are processed
// when the clock reaches them.
func (n *Network) InjectPlan(p *faultinject.Plan) {
	for i := range p.Events {
		ev := p.Events[i]
		n.push(&event{at: n.now + ev.At, fault: &ev})
	}
}

// FaultDrops returns how many frames injected faults have destroyed.
func (n *Network) FaultDrops() int64 { return n.faultDrops }

// Partitioned reports whether the link a-b is currently severed.
func (n *Network) Partitioned(a, b string) bool { return n.partitioned[linkKey(a, b)] }

// Down reports whether a broker is currently crashed.
func (n *Network) Down(id string) bool { return n.down[id] }

// linkKey canonicalises an undirected link name.
func linkKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// applyFault executes one fault transition at the current virtual time.
func (n *Network) applyFault(e *faultinject.Event) {
	switch e.Kind {
	case faultinject.KindPartition:
		n.partitioned[linkKey(e.A, e.B)] = true
	case faultinject.KindHeal:
		delete(n.partitioned, linkKey(e.A, e.B))
		// Both ends replay their owed control state, like the transport
		// after a successful reconnect. A still-crashed end resyncs when it
		// restarts instead.
		if !n.down[e.A] && !n.down[e.B] {
			n.invoke(e.A, func(b *broker.Broker) { b.ResyncFor(e.B) })
			n.invoke(e.B, func(b *broker.Broker) { b.ResyncFor(e.A) })
		}
	case faultinject.KindCrash:
		if c := n.clients[e.A]; c != nil {
			c.Detach()
		} else {
			n.down[e.A] = true
		}
	case faultinject.KindRestart:
		if c := n.clients[e.A]; c != nil {
			c.Reattach()
		} else {
			n.restartBroker(e.A)
		}
	default:
		panic(fmt.Sprintf("sim: unknown fault kind %v", e.Kind))
	}
}

// restartBroker replaces a crashed broker with an empty instance and runs
// the recovery protocol: reachable neighbours resync their owed state to it,
// it resyncs its (empty) claim to them — clearing entries they still
// attribute to the dead instance — and its clients replay their recorded
// control messages.
func (n *Network) restartBroker(id string) {
	delete(n.down, id)
	cfg := n.cfgs[id]
	if n.DurableReopen != nil {
		// A real broker process reopens its publication log on boot; the
		// hook hands the restarted instance its recovered store.
		cfg.Durable = n.DurableReopen(id)
		n.cfgs[id] = cfg
	}
	fresh := n.newBrokerInstance(cfg)
	n.brokers[id] = fresh

	neighbors := make([]string, 0, len(n.adj[id]))
	for nb := range n.adj[id] {
		neighbors = append(neighbors, nb)
	}
	sort.Strings(neighbors)
	for _, nb := range neighbors {
		fresh.AddNeighbor(nb)
	}
	clients := n.clientsOf(id)
	for _, c := range clients {
		fresh.AddClient(c.ID)
	}
	if cfg.Durable != nil {
		// After neighbour registration (recovered subscriptions forward
		// upstream) and before the resync exchange — the order the TCP
		// transport's constructor follows.
		n.invoke(id, func(b *broker.Broker) { b.RecoverDurable() })
	}
	for _, nb := range neighbors {
		if n.down[nb] || n.partitioned[linkKey(id, nb)] {
			continue // that link's own heal/restart will resync it
		}
		n.invoke(nb, func(b *broker.Broker) { b.ResyncFor(id) })
		n.invoke(id, func(b *broker.Broker) { b.ResyncFor(nb) })
	}
	for _, c := range clients {
		for _, m := range c.record {
			n.push(&event{
				at:   n.now + n.Latency.Latency(c.ID, c.Broker, n.rand) + n.transfer(m),
				from: c.ID,
				to:   c.Broker,
				msg:  m,
			})
		}
	}
}

// Detach severs the client's connection to its edge broker: frames
// addressed to it are lost until Reattach. The broker keeps sequencing and
// logging the client's durable subscription while it is gone.
func (c *Client) Detach() { c.detached = true }

// Reattach restores the client's connection and replays its recorded
// control state, like a real client's reconnect — a recorded durable
// subscription doubles as reattach and triggers gap replay broker-side.
func (c *Client) Reattach() {
	c.detached = false
	c.replaying = false
	for _, m := range c.record {
		c.net.push(&event{
			at:   c.net.now + c.net.Latency.Latency(c.ID, c.Broker, c.net.rand) + c.net.transfer(m),
			from: c.ID,
			to:   c.Broker,
			msg:  m,
		})
	}
}

// Detached reports whether the client's connection is currently severed.
func (c *Client) Detached() bool { return c.detached }

// clientsOf returns the clients attached to a broker, sorted by ID for
// deterministic replay order.
func (n *Network) clientsOf(brokerID string) []*Client {
	var out []*Client
	for _, c := range n.clients {
		if c.Broker == brokerID {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// invoke runs fn against a broker outside a message delivery and flushes
// whatever it emitted into the event queue — the hook resync calls ride on.
func (n *Network) invoke(id string, fn func(*broker.Broker)) {
	b := n.brokers[id]
	if b == nil {
		panic(fmt.Sprintf("sim: invoke on unknown broker %s", id))
	}
	n.outbox = n.outbox[:0]
	fn(b)
	for _, om := range n.outbox {
		n.push(&event{
			at:   n.now + n.Latency.Latency(id, om.to, n.rand) + n.transfer(om.msg),
			from: id,
			to:   om.to,
			msg:  om.msg,
		})
	}
	n.outbox = n.outbox[:0]
}

// RunFor processes events until the queue drains or the virtual clock would
// pass the deadline; remaining events stay queued. Chaos tests use it to
// advance the clock past a plan's horizon even when no traffic is pending.
func (n *Network) RunFor(d time.Duration) int {
	deadline := n.now + d
	processed := 0
	for n.queue.Len() > 0 && n.queue[0].at <= deadline {
		processed += n.step()
	}
	if n.now < deadline {
		n.now = deadline
	}
	return processed
}
