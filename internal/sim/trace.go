package sim

// debugTrace, when non-nil, observes every event popped from the queue
// (including fault transitions and frames about to be dropped). Chaos tests
// set it to reconstruct how a failing seed unfolded; it is never set in
// production use.
var debugTrace func(*Network, *event)
