package sim

import (
	"fmt"

	"repro/internal/broker"
)

// BrokerConfigFn customises the config of each broker in a generated
// topology; it receives the broker's ID and a template to adjust.
type BrokerConfigFn func(id string) broker.Config

// ConfigTemplate returns a BrokerConfigFn that stamps the same strategy on
// every broker.
func ConfigTemplate(tpl broker.Config) BrokerConfigFn {
	return func(id string) broker.Config {
		cfg := tpl
		cfg.ID = id
		return cfg
	}
}

// BuildCompleteBinaryTree creates the paper's evaluation topology: a
// complete binary tree of brokers with the given number of levels (3 levels
// = 7 brokers, 7 levels = 127 brokers). Broker IDs are "b1".."bN" in
// breadth-first order, b1 being the root. It returns the IDs of the leaf
// brokers, to which the paper attaches one subscriber each.
func BuildCompleteBinaryTree(n *Network, levels int, cfg BrokerConfigFn) []string {
	if levels < 1 {
		panic("sim: binary tree needs at least one level")
	}
	total := (1 << levels) - 1
	ids := make([]string, total+1) // 1-based
	for i := 1; i <= total; i++ {
		id := fmt.Sprintf("b%d", i)
		ids[i] = id
		n.AddBroker(cfg(id))
	}
	for i := 2; i <= total; i++ {
		n.Connect(ids[i/2], ids[i])
	}
	firstLeaf := 1 << (levels - 1)
	leaves := make([]string, 0, total-firstLeaf+1)
	for i := firstLeaf; i <= total; i++ {
		leaves = append(leaves, ids[i])
	}
	return leaves
}

// BuildChain creates a linear chain of brokers "b1"-"b2"-...-"bN", the
// topology of the hop-count experiments (Figures 10 and 11). It returns the
// broker IDs in order.
func BuildChain(n *Network, length int, cfg BrokerConfigFn) []string {
	if length < 1 {
		panic("sim: chain needs at least one broker")
	}
	ids := make([]string, length)
	for i := range ids {
		ids[i] = fmt.Sprintf("b%d", i+1)
		n.AddBroker(cfg(ids[i]))
	}
	for i := 1; i < length; i++ {
		n.Connect(ids[i-1], ids[i])
	}
	return ids
}
