package sim

import (
	"math"
	"math/rand"
	"time"
)

// LatencyModel yields the one-way delay for a message on a link.
type LatencyModel interface {
	Latency(from, to string, r *rand.Rand) time.Duration
}

// ConstantLatency is a fixed per-hop delay — the cluster-LAN model.
type ConstantLatency time.Duration

// Latency implements LatencyModel.
func (c ConstantLatency) Latency(_, _ string, _ *rand.Rand) time.Duration {
	return time.Duration(c)
}

// UniformLatency draws uniformly from [Min, Max].
type UniformLatency struct {
	Min, Max time.Duration
}

// Latency implements LatencyModel.
func (u UniformLatency) Latency(_, _ string, r *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(r.Int63n(int64(u.Max-u.Min)))
}

// PlanetLabLatency models wide-area links: a log-normal delay around Median
// with multiplicative jitter, reproducing the "up to 15% per data point"
// variation the paper reports on PlanetLab.
type PlanetLabLatency struct {
	// Median one-way delay (default 2ms, matching the paper's low
	// millisecond per-hop numbers).
	Median time.Duration
	// Sigma is the log-normal shape parameter (default 0.15).
	Sigma float64
}

// Latency implements LatencyModel.
func (p PlanetLabLatency) Latency(_, _ string, r *rand.Rand) time.Duration {
	median := p.Median
	if median <= 0 {
		median = 2 * time.Millisecond
	}
	sigma := p.Sigma
	if sigma <= 0 {
		sigma = 0.15
	}
	f := math.Exp(r.NormFloat64() * sigma)
	return time.Duration(float64(median) * f)
}
