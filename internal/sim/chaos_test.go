package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/advert"
	"repro/internal/broker"
	"repro/internal/dtd"
	"repro/internal/faultinject"
	"repro/internal/gen"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// TestChaosEquivalence is the self-healing safety property: a broker overlay
// subjected to a seeded schedule of link partitions and broker crash/restart
// cycles — frames destroyed, routing state wiped — must, once every fault
// has healed, hold exactly the routing tables and deliver exactly the
// publication set of a fault-free oracle run of the same workload. Recovery
// is the resync protocol (broker.ResyncFor anti-entropy on heal/restart)
// plus client replay of recorded control messages; this test pins that the
// combination converges, for every strategy and many seeds.
func TestChaosEquivalence(t *testing.T) {
	chaosDTD := dtd.MustParse(`
<!ELEMENT root (sec+)>
<!ELEMENT sec (head?, (par | sec | list)*)>
<!ELEMENT head (#PCDATA)>
<!ELEMENT par (#PCDATA | ref)*>
<!ELEMENT ref (#PCDATA)>
<!ELEMENT list (item+)>
<!ELEMENT item (#PCDATA | par)*>
`)
	// Every strategy must deliver the oracle's publication set after heal.
	// Routing tables are additionally compared entry-for-entry where the
	// strategy propagates them order-independently; covering quenches
	// forwarding based on what was *already* forwarded in a direction, so
	// fault-induced reordering legitimately yields different (equivalent)
	// tables — for those, delivery equivalence is the whole property.
	strategies := []struct {
		cfg           broker.Config
		compareTables bool
	}{
		{broker.Config{}, true},
		{broker.Config{UseAdvertisements: true}, true},
		{broker.Config{UseCovering: true}, false},
		{broker.Config{UseAdvertisements: true, UseCovering: true}, false},
		// The sharded matching engine under the full strategy: crash/resync
		// churn drives per-shard rebuilds, and delivery equivalence pins that
		// partitioning changes nothing (Shards is explicit — the default is
		// GOMAXPROCS, which is 1 on small hosts).
		{broker.Config{UseAdvertisements: true, UseCovering: true, Shards: 4}, false},
	}
	trials := 6
	plansPerTrial := 3
	if testing.Short() {
		trials, plansPerTrial = 2, 2
	}

	var totalDrops int64
	for trial := 0; trial < trials; trial++ {
		ops, docs := chaosWorkload(chaosDTD, int64(trial))
		for si, s := range strategies {
			oracle := runChaosWorkload(t, s.cfg, ops, docs, nil)
			for ps := 0; ps < plansPerTrial; ps++ {
				seed := int64(1000*trial + 10*si + ps)
				plan := chaosPlan(seed)
				got := runChaosWorkload(t, s.cfg, ops, docs, plan)
				totalDrops += got.drops
				if got.deliveries != oracle.deliveries {
					t.Fatalf("trial %d strategy %d: delivered sets diverge after heal\n%s\noracle:\n%s\nchaos:\n%s\noracle tables:\n%s\nchaos tables:\n%s",
						trial, si, plan, oracle.deliveries, got.deliveries, oracle.tables, got.tables)
				}
				if s.compareTables && got.tables != oracle.tables {
					t.Fatalf("trial %d strategy %d: routing tables diverge after heal\n%s\noracle:\n%s\nchaos:\n%s",
						trial, si, plan, oracle.tables, got.tables)
				}
			}
		}
	}
	// The property must not hold vacuously: the schedules have to have
	// actually destroyed frames somewhere across the suite.
	if totalDrops == 0 {
		t.Fatal("no frames were dropped by any fault plan — the chaos schedules exercised nothing")
	}
}

// chaosPlan builds the fault schedule for one run: partitions over the
// 7-broker tree's links plus crash/restart of any broker.
func chaosPlan(seed int64) *faultinject.Plan {
	brokers := make([]string, 0, 7)
	for i := 1; i <= 7; i++ {
		brokers = append(brokers, fmt.Sprintf("b%d", i))
	}
	p := faultinject.New(seed, faultinject.Options{
		Links: [][2]string{
			{"b1", "b2"}, {"b1", "b3"}, {"b2", "b4"}, {"b2", "b5"}, {"b3", "b6"}, {"b3", "b7"},
		},
		Brokers: brokers,
		Faults:  5,
		Horizon: 100 * time.Millisecond,
		MinDown: 4 * time.Millisecond,
		MaxDown: 20 * time.Millisecond,
	})
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

type chaosOp struct {
	sub   int
	unsub bool
	xpe   *xpath.XPE
}

func chaosWorkload(d *dtd.DTD, seed int64) ([]chaosOp, []*xmldoc.Document) {
	r := rand.New(rand.NewSource(seed))
	xg := gen.NewXPathGenerator(d, 0.3, 0.2, seed)
	xg.MinLen = 1
	var ops, live []chaosOp
	for i := 0; i < 30; i++ {
		if len(live) > 4 && r.Intn(5) == 0 {
			j := r.Intn(len(live))
			ops = append(ops, chaosOp{sub: live[j].sub, unsub: true, xpe: live[j].xpe})
			live = append(live[:j], live[j+1:]...)
			continue
		}
		o := chaosOp{sub: r.Intn(4), xpe: xg.Generate()}
		ops = append(ops, o)
		live = append(live, o)
	}
	dg := gen.NewDocGenerator(d, seed)
	dg.AvgRepeat = 1.5
	docs := make([]*xmldoc.Document, 5)
	for i := range docs {
		docs[i] = dg.Generate()
	}
	return ops, docs
}

type chaosResult struct {
	deliveries string
	tables     string
	drops      int64
}

// runChaosWorkload drives one overlay through the workload — with the fault
// plan active during the control phase when plan is non-nil — then holds the
// clock past the plan horizon so every fault heals and resync completes,
// and finally publishes. Publications flow through the healed overlay only;
// what chaos must not corrupt is the control state they are routed by.
func runChaosWorkload(t *testing.T, cfg broker.Config, ops []chaosOp, docs []*xmldoc.Document, plan *faultinject.Plan) chaosResult {
	t.Helper()
	net := NewNetwork(1)
	leaves := BuildCompleteBinaryTree(net, 3, ConfigTemplate(cfg))
	pub := net.AddClient("pub", "b2")
	if cfg.UseAdvertisements {
		advs, err := advert.Generate(dtd.MustParse(`
<!ELEMENT root (sec+)>
<!ELEMENT sec (head?, (par | sec | list)*)>
<!ELEMENT head (#PCDATA)>
<!ELEMENT par (#PCDATA | ref)*>
<!ELEMENT ref (#PCDATA)>
<!ELEMENT list (item+)>
<!ELEMENT item (#PCDATA | par)*>
`))
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range advs {
			pub.Send(&broker.Message{Type: broker.MsgAdvertise, AdvID: fmt.Sprintf("a%d", i), Adv: a})
		}
		net.Run()
	}
	subs := make([]*Client, 4)
	for i := range subs {
		subs[i] = net.AddClient(fmt.Sprintf("sub%d", i), leaves[i%len(leaves)])
	}
	horizon := 100 * time.Millisecond
	if plan != nil {
		net.InjectPlan(plan)
		horizon = plan.Horizon
	}
	// Control phase: one op every 3ms of virtual time, so the fault windows
	// overlap live subscription traffic.
	for _, o := range ops {
		typ := broker.MsgSubscribe
		if o.unsub {
			typ = broker.MsgUnsubscribe
		}
		subs[o.sub].Send(&broker.Message{Type: typ, XPE: o.xpe})
		net.RunFor(3 * time.Millisecond)
	}
	// Heal phase: run past the plan horizon (every fault closes strictly
	// before it) and drain the recovery traffic.
	net.RunFor(horizon)
	net.Run()

	// Publish phase over the healed overlay.
	for i, doc := range docs {
		for _, p := range xmldoc.Extract(doc, uint64(i)) {
			pub.Send(&broker.Message{Type: broker.MsgPublish, Pub: p})
		}
	}
	net.Run()

	var lines []string
	for i, s := range subs {
		for _, d := range s.Deliveries {
			lines = append(lines, fmt.Sprintf("sub%d<-%s", i, d.Pub))
		}
	}
	sort.Strings(lines)
	return chaosResult{
		deliveries: strings.Join(lines, "\n"),
		tables:     renderTables(net),
		drops:      net.FaultDrops(),
	}
}

// renderTables snapshots the convergence-relevant routing state of every
// broker: each subscription's last-hop set and each advertisement's pattern
// and last hop. Transient bookkeeping (forwarding marks, covering-tree
// shape) is deliberately excluded — it may differ with message order while
// routing exactly alike.
func renderTables(net *Network) string {
	ids := make([]string, 0, len(net.Brokers()))
	for id := range net.Brokers() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var b strings.Builder
	for _, id := range ids {
		routes := net.Broker(id).Routes()
		var lines []string
		for _, sr := range routes.Subscriptions {
			if len(sr.LastHops) > 0 {
				lines = append(lines, fmt.Sprintf("  sub %s <- [%s]", sr.XPE, strings.Join(sr.LastHops, " ")))
			}
		}
		advSeen := make(map[string]bool)
		for _, ar := range routes.Advertisements {
			line := fmt.Sprintf("  adv %s <- %s", ar.Expr, ar.LastHop)
			if !advSeen[line] {
				advSeen[line] = true
				lines = append(lines, line)
			}
		}
		sort.Strings(lines)
		fmt.Fprintf(&b, "%s:\n%s\n", id, strings.Join(lines, "\n"))
	}
	return b.String()
}
