package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/advert"
	"repro/internal/broker"
	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/merge"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// TestQuickStrategyDeliveryEquivalence is the core safety property of the
// whole system: whatever combination of routing optimisations the brokers
// run — advertisements, covering, perfect or imperfect merging — every
// subscriber receives exactly the same set of publications. The
// optimisations may only change network traffic and state, never delivery.
func TestQuickStrategyDeliveryEquivalence(t *testing.T) {
	testDTD := dtd.MustParse(`
<!ELEMENT root (sec+)>
<!ELEMENT sec (head?, (par | sec | list)*)>
<!ELEMENT head (#PCDATA)>
<!ELEMENT par (#PCDATA | ref)*>
<!ELEMENT ref (#PCDATA)>
<!ELEMENT list (item+)>
<!ELEMENT item (#PCDATA | par)*>
`)
	advs, err := advert.Generate(testDTD)
	if err != nil {
		t.Fatal(err)
	}
	est := merge.NewDegreeEstimator(advs, 10, 4000)

	strategies := []broker.Config{
		{},
		{UseCovering: true},
		{UseAdvertisements: true},
		{UseAdvertisements: true, UseCovering: true},
		{UseAdvertisements: true, UseCovering: true, Merging: broker.MergePerfect, Estimator: est, MergeEvery: 4},
		{UseAdvertisements: true, UseCovering: true, Merging: broker.MergeImperfect, ImperfectDegree: 0.3, Estimator: est, MergeEvery: 4},
	}

	for trial := 0; trial < 12; trial++ {
		r := rand.New(rand.NewSource(int64(100 + trial)))
		// Random workload: subscriptions per subscriber, with some
		// unsubscriptions sprinkled in, then publications.
		xg := gen.NewXPathGenerator(testDTD, 0.3, 0.2, int64(trial))
		xg.MinLen = 1
		var ops []deliveryOp
		var live []deliveryOp
		for i := 0; i < 40; i++ {
			if len(live) > 4 && r.Intn(5) == 0 {
				j := r.Intn(len(live))
				ops = append(ops, deliveryOp{sub: live[j].sub, unsub: true, xpe: live[j].xpe})
				live = append(live[:j], live[j+1:]...)
				continue
			}
			o := deliveryOp{sub: r.Intn(4), xpe: xg.Generate()}
			ops = append(ops, o)
			live = append(live, o)
		}
		dg := gen.NewDocGenerator(testDTD, int64(trial))
		dg.AvgRepeat = 1.5
		docs := make([]*xmldoc.Document, 6)
		for i := range docs {
			docs[i] = dg.Generate()
		}

		var want string
		for si, cfg := range strategies {
			got := runWorkload(t, cfg, ops, docs)
			if si == 0 {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("trial %d: strategy %d delivered a different set\nbaseline:\n%s\ngot:\n%s",
					trial, si, want, got)
			}
		}
	}
}

type deliveryOp struct {
	sub   int
	unsub bool
	xpe   *xpath.XPE
}

func runWorkload(t *testing.T, cfg broker.Config, ops []deliveryOp, docs []*xmldoc.Document) string {
	t.Helper()
	net := NewNetwork(1)
	leaves := BuildCompleteBinaryTree(net, 3, ConfigTemplate(cfg))
	pub := net.AddClient("pub", "b2") // interior broker: asymmetric paths
	if cfg.UseAdvertisements {
		advs, err := advert.Generate(dtd.MustParse(`
<!ELEMENT root (sec+)>
<!ELEMENT sec (head?, (par | sec | list)*)>
<!ELEMENT head (#PCDATA)>
<!ELEMENT par (#PCDATA | ref)*>
<!ELEMENT ref (#PCDATA)>
<!ELEMENT list (item+)>
<!ELEMENT item (#PCDATA | par)*>
`))
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range advs {
			pub.Send(&broker.Message{Type: broker.MsgAdvertise, AdvID: fmt.Sprintf("a%d", i), Adv: a})
		}
		net.Run()
	}
	subs := make([]*Client, 4)
	for i := range subs {
		subs[i] = net.AddClient(fmt.Sprintf("sub%d", i), leaves[i%len(leaves)])
	}
	for _, o := range ops {
		typ := broker.MsgSubscribe
		if o.unsub {
			typ = broker.MsgUnsubscribe
		}
		subs[o.sub].Send(&broker.Message{Type: typ, XPE: o.xpe})
		net.Run() // sequential operations, as a live system would interleave
	}
	for i, doc := range docs {
		for _, p := range xmldoc.Extract(doc, uint64(i)) {
			pub.Send(&broker.Message{Type: broker.MsgPublish, Pub: p})
		}
	}
	net.Run()

	var lines []string
	for i, s := range subs {
		for _, d := range s.Deliveries {
			lines = append(lines, fmt.Sprintf("sub%d<-%s", i, d.Pub))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
