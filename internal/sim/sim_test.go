package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/advert"
	"repro/internal/broker"
	"repro/internal/wirefmt"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

func pubMsg(path ...string) *broker.Message {
	return &broker.Message{
		Type: broker.MsgPublish,
		Pub:  xmldoc.Publication{DocID: 1, Path: path},
	}
}

func subMsg(s string) *broker.Message {
	return &broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse(s)}
}

func advMsg(id, a string) *broker.Message {
	return &broker.Message{Type: broker.MsgAdvertise, AdvID: id, Adv: advert.MustParse(a)}
}

// buildTriangle is a 3-broker chain with a publisher on one end and two
// subscribers on the other.
func buildTriangle(t *testing.T, cfg broker.Config) (*Network, *Client, *Client, *Client) {
	t.Helper()
	n := NewNetwork(1)
	ids := BuildChain(n, 3, ConfigTemplate(cfg))
	pub := n.AddClient("pub", ids[0])
	s1 := n.AddClient("sub1", ids[2])
	s2 := n.AddClient("sub2", ids[2])
	return n, pub, s1, s2
}

func TestEndToEndWithAdvertisements(t *testing.T) {
	n, pub, s1, s2 := buildTriangle(t, broker.Config{UseAdvertisements: true, UseCovering: true})
	pub.Send(advMsg("a1", "/stock/quote/price"))
	n.Run()
	s1.Send(subMsg("/stock/quote"))
	s2.Send(subMsg("/stock/bond"))
	n.Run()
	pub.Send(pubMsg("stock", "quote", "price"))
	n.Run()
	if len(s1.Deliveries) != 1 {
		t.Fatalf("sub1 deliveries = %d, want 1", len(s1.Deliveries))
	}
	if len(s2.Deliveries) != 0 {
		t.Fatalf("sub2 deliveries = %d, want 0", len(s2.Deliveries))
	}
	if s1.Deliveries[0].Delay <= 0 {
		t.Error("delivery delay not measured")
	}
}

// TestAdvertisementPruning: with advertisements, a subscription matching no
// advertisement is not forwarded at all.
func TestAdvertisementPruning(t *testing.T) {
	n := NewNetwork(1)
	ids := BuildChain(n, 3, ConfigTemplate(broker.Config{UseAdvertisements: true}))
	pub := n.AddClient("pub", ids[0])
	sub := n.AddClient("sub", ids[2])
	pub.Send(advMsg("a1", "/stock/quote"))
	n.Run()
	n.ResetTraffic()
	sub.Send(subMsg("/weather/report"))
	n.Run()
	if got := n.BrokerReceived()[broker.MsgSubscribe]; got != 1 {
		t.Errorf("subscribe messages = %d, want 1 (edge broker only)", got)
	}
	// A matching subscription travels the full chain: 3 broker receipts.
	sub.Send(subMsg("/stock/quote"))
	n.Run()
	if got := n.BrokerReceived()[broker.MsgSubscribe]; got != 4 {
		t.Errorf("subscribe messages = %d, want 4", got)
	}
}

// TestFloodingWithoutAdvertisements: without advertisements subscriptions
// flood everywhere.
func TestFloodingWithoutAdvertisements(t *testing.T) {
	n := NewNetwork(1)
	BuildCompleteBinaryTree(n, 3, ConfigTemplate(broker.Config{}))
	sub := n.AddClient("sub", "b4")
	sub.Send(subMsg("/x/y"))
	n.Run()
	if got := n.BrokerReceived()[broker.MsgSubscribe]; got != 7 {
		t.Errorf("subscribe receipts = %d, want 7 (flooded)", got)
	}
}

// TestCoveringSuppressesForwarding: a covered subscription stops at the edge
// broker.
func TestCoveringSuppressesForwarding(t *testing.T) {
	n, pub, s1, s2 := buildTriangle(t, broker.Config{UseAdvertisements: true, UseCovering: true})
	pub.Send(advMsg("a1", "/stock/quote/price"))
	n.Run()
	s1.Send(subMsg("/stock"))
	n.Run()
	n.ResetTraffic()
	s2.Send(subMsg("/stock/quote")) // covered by /stock
	n.Run()
	if got := n.BrokerReceived()[broker.MsgSubscribe]; got != 1 {
		t.Errorf("covered subscription forwarded: %d receipts, want 1", got)
	}
	// Both subscribers still receive matching publications.
	pub.Send(pubMsg("stock", "quote", "price"))
	n.Run()
	if len(s1.Deliveries) != 1 || len(s2.Deliveries) != 1 {
		t.Fatalf("deliveries = %d/%d, want 1/1", len(s1.Deliveries), len(s2.Deliveries))
	}
}

// TestCoveringUnsubscribesCovered: when a broader subscription arrives, the
// narrower one is withdrawn upstream and the downstream table shrinks.
func TestCoveringUnsubscribesCovered(t *testing.T) {
	n, pub, s1, s2 := buildTriangle(t, broker.Config{UseAdvertisements: true, UseCovering: true})
	pub.Send(advMsg("a1", "/stock/quote/price"))
	n.Run()
	s1.Send(subMsg("/stock/quote"))
	n.Run()
	b1 := n.Broker("b1")
	if b1.PRTSize() != 1 {
		t.Fatalf("b1 PRT = %d, want 1", b1.PRTSize())
	}
	s2.Send(subMsg("/stock")) // covers /stock/quote
	n.Run()
	// b1's table should hold only the broader subscription now.
	if b1.PRTSize() != 1 {
		t.Fatalf("b1 PRT after covering insert = %d, want 1", b1.PRTSize())
	}
	if b1.PRT().Lookup(xpath.MustParse("/stock")) == nil {
		t.Fatal("b1 lost the covering subscription")
	}
	pub.Send(pubMsg("stock", "quote", "price"))
	n.Run()
	if len(s1.Deliveries) != 1 || len(s2.Deliveries) != 1 {
		t.Fatalf("deliveries = %d/%d, want 1/1", len(s1.Deliveries), len(s2.Deliveries))
	}
}

// TestUnsubscribeReforwardsUncovered: withdrawing a covering subscription
// re-forwards the ones it suppressed.
func TestUnsubscribeReforwardsUncovered(t *testing.T) {
	n, pub, s1, s2 := buildTriangle(t, broker.Config{UseAdvertisements: true, UseCovering: true})
	pub.Send(advMsg("a1", "/stock/quote/price"))
	n.Run()
	s1.Send(subMsg("/stock"))
	n.Run()
	s2.Send(subMsg("/stock/quote")) // suppressed by /stock
	n.Run()
	s1.Send(&broker.Message{Type: broker.MsgUnsubscribe, XPE: xpath.MustParse("/stock")})
	n.Run()
	pub.Send(pubMsg("stock", "quote", "price"))
	n.Run()
	if len(s1.Deliveries) != 0 {
		t.Fatalf("unsubscribed client got %d deliveries", len(s1.Deliveries))
	}
	if len(s2.Deliveries) != 1 {
		t.Fatalf("suppressed subscriber got %d deliveries after uncovering, want 1", len(s2.Deliveries))
	}
}

// TestSubscriptionBeforeAdvertisement: a subscription arriving before the
// advertisement is forwarded once the advertisement shows up.
func TestSubscriptionBeforeAdvertisement(t *testing.T) {
	n, pub, s1, _ := buildTriangle(t, broker.Config{UseAdvertisements: true})
	s1.Send(subMsg("/stock/quote"))
	n.Run()
	pub.Send(advMsg("a1", "/stock/quote/price"))
	n.Run()
	pub.Send(pubMsg("stock", "quote", "price"))
	n.Run()
	if len(s1.Deliveries) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(s1.Deliveries))
	}
}

// TestRecursiveAdvertisementRouting: subscriptions route toward recursive
// advertisements, and pumped publications reach them.
func TestRecursiveAdvertisementRouting(t *testing.T) {
	n, pub, s1, _ := buildTriangle(t, broker.Config{UseAdvertisements: true})
	pub.Send(advMsg("a1", "/doc(/sec)+/p"))
	n.Run()
	s1.Send(subMsg("//sec/p"))
	n.Run()
	pub.Send(pubMsg("doc", "sec", "sec", "sec", "p"))
	n.Run()
	if len(s1.Deliveries) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(s1.Deliveries))
	}
}

// TestDocumentPublication: whole-document publications match any path and
// reach only interested subscribers.
func TestDocumentPublication(t *testing.T) {
	n, pub, s1, s2 := buildTriangle(t, broker.Config{UseAdvertisements: false})
	s1.Send(subMsg("/catalog/book/title"))
	s2.Send(subMsg("/catalog/dvd"))
	n.Run()
	doc, err := xmldoc.Parse([]byte(`<catalog><book><title>t</title><author>a</author></book></catalog>`))
	if err != nil {
		t.Fatal(err)
	}
	pub.Send(&broker.Message{Type: broker.MsgPublish, Doc: doc})
	n.Run()
	if len(s1.Deliveries) != 1 || len(s2.Deliveries) != 0 {
		t.Fatalf("deliveries = %d/%d, want 1/0", len(s1.Deliveries), len(s2.Deliveries))
	}
}

// TestMergingForwardsMergerAndFiltersFalsePositives: with imperfect merging
// the merger travels upstream instead of the sources, and false positives
// are filtered at the edge, never reaching clients.
func TestMergingFalsePositiveFiltering(t *testing.T) {
	cfg := broker.Config{
		UseAdvertisements: false,
		UseCovering:       true,
		Merging:           broker.MergeImperfect,
		ImperfectDegree:   1.0,
		MergeEvery:        2,
	}
	n := NewNetwork(1)
	ids := BuildChain(n, 2, ConfigTemplate(cfg))
	pub := n.AddClient("pub", ids[0])
	sub := n.AddClient("sub", ids[1])
	sub.Send(subMsg("/a/b/c"))
	sub.Send(subMsg("/a/b/d"))
	n.Run()
	// The edge broker merged to /a/b/*; b1 should hold one subscription.
	if got := n.Broker("b1").PRTSize(); got != 1 {
		t.Fatalf("b1 PRT = %d, want 1 (merger)", got)
	}
	// /a/b/x matches the merger but neither original: routed to the edge,
	// filtered there.
	pub.Send(pubMsg("a", "b", "x"))
	pub.Send(pubMsg("a", "b", "c"))
	n.Run()
	if len(sub.Deliveries) != 1 {
		t.Fatalf("deliveries = %d, want 1 (false positive must be filtered)", len(sub.Deliveries))
	}
	if !strings.Contains(sub.Deliveries[0].Pub, "a/b/c") {
		t.Errorf("delivered %s", sub.Deliveries[0].Pub)
	}
	st := n.Broker(ids[1]).Stats()
	if st.FalsePositives != 1 {
		t.Errorf("false positives = %d, want 1", st.FalsePositives)
	}
}

// TestBinaryTreeFanout: a publication reaches every interested leaf in a
// 7-broker tree and nobody else.
func TestBinaryTreeFanout(t *testing.T) {
	n := NewNetwork(3)
	leaves := BuildCompleteBinaryTree(n, 3, ConfigTemplate(broker.Config{UseAdvertisements: true, UseCovering: true}))
	if len(leaves) != 4 {
		t.Fatalf("leaves = %v", leaves)
	}
	pub := n.AddClient("pub", "b1")
	var subs []*Client
	for i, leaf := range leaves {
		c := n.AddClient(fmt.Sprintf("sub%d", i), leaf)
		subs = append(subs, c)
	}
	pub.Send(advMsg("a1", "/x/y/z"))
	n.Run()
	subs[0].Send(subMsg("/x"))
	subs[1].Send(subMsg("/x/y"))
	subs[2].Send(subMsg("/q"))
	n.Run()
	pub.Send(pubMsg("x", "y", "z"))
	n.Run()
	for i, want := range []int{1, 1, 0, 0} {
		if len(subs[i].Deliveries) != want {
			t.Errorf("sub%d deliveries = %d, want %d", i, len(subs[i].Deliveries), want)
		}
	}
}

// TestDeterminism: identical runs produce identical traffic and delays.
func TestDeterminism(t *testing.T) {
	run := func() (int64, time.Duration) {
		n := NewNetwork(42)
		n.Latency = UniformLatency{Min: time.Millisecond, Max: 5 * time.Millisecond}
		ids := BuildChain(n, 4, ConfigTemplate(broker.Config{UseAdvertisements: true, UseCovering: true}))
		pub := n.AddClient("pub", ids[0])
		sub := n.AddClient("sub", ids[3])
		pub.Send(advMsg("a1", "/a/b/c"))
		n.Run()
		sub.Send(subMsg("/a/b"))
		n.Run()
		pub.Send(pubMsg("a", "b", "c"))
		n.Run()
		return n.TotalBrokerMessages(), sub.Deliveries[0].Delay
	}
	m1, d1 := run()
	m2, d2 := run()
	if m1 != m2 || d1 != d2 {
		t.Errorf("non-deterministic: msgs %d/%d delay %v/%v", m1, m2, d1, d2)
	}
}

func TestLatencyModels(t *testing.T) {
	n := NewNetwork(7)
	r := n.rand
	c := ConstantLatency(2 * time.Millisecond)
	if c.Latency("a", "b", r) != 2*time.Millisecond {
		t.Error("constant latency wrong")
	}
	u := UniformLatency{Min: time.Millisecond, Max: 3 * time.Millisecond}
	for i := 0; i < 100; i++ {
		l := u.Latency("a", "b", r)
		if l < u.Min || l > u.Max {
			t.Fatalf("uniform latency %v out of range", l)
		}
	}
	p := PlanetLabLatency{Median: 2 * time.Millisecond, Sigma: 0.15}
	var total time.Duration
	for i := 0; i < 2000; i++ {
		total += p.Latency("a", "b", r)
	}
	mean := total / 2000
	if mean < 1500*time.Microsecond || mean > 2500*time.Microsecond {
		t.Errorf("PlanetLab mean latency = %v, want ~2ms", mean)
	}
}

func TestTransferDelay(t *testing.T) {
	n := NewNetwork(1)
	n.Bandwidth = 1e6 // 1 MB/s
	doc, err := xmldoc.Parse([]byte(`<a><b>` + strings.Repeat("x", 10000) + `</b></a>`))
	if err != nil {
		t.Fatal(err)
	}
	m := &broker.Message{Type: broker.MsgPublish, Doc: doc}
	got := n.transfer(m)
	want := time.Duration(float64(wirefmt.EstimateSize(m)) / 1e6 * float64(time.Second))
	if got != want {
		t.Errorf("transfer = %v, want %v", got, want)
	}
	// The wire estimate must stay anchored to the document's actual bulk —
	// the 10KB of character data dominates whatever framing the codec adds.
	if min := time.Duration(float64(doc.Size()) / 1e6 * float64(time.Second)); got < min/2 || got > 2*min {
		t.Errorf("transfer = %v, not within 2x of the %v raw-size delay", got, min)
	}
	if n.transfer(subMsg("/a")) == 0 {
		t.Error("control messages should have a small transfer cost")
	}
}
