package sim

import (
	"testing"

	"repro/internal/broker"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// TestAttributePredicateRouting exercises the paper's attribute extension
// end to end: the motivating insurance scenario — claims routed to the
// expert speaking the requester's language — expressed as an attribute
// predicate.
func TestAttributePredicateRouting(t *testing.T) {
	n := NewNetwork(1)
	ids := BuildChain(n, 3, ConfigTemplate(broker.Config{UseAdvertisements: false, UseCovering: true}))
	broker3 := ids[2]
	pub := n.AddClient("broker-office", ids[0])
	english := n.AddClient("expert-en", broker3)
	french := n.AddClient("expert-fr", broker3)
	anyLang := n.AddClient("supervisor", broker3)

	english.Send(&broker.Message{Type: broker.MsgSubscribe,
		XPE: xpath.MustParse(`/insurance/claim[@lang='en']//detail`)})
	french.Send(&broker.Message{Type: broker.MsgSubscribe,
		XPE: xpath.MustParse(`/insurance/claim[@lang='fr']//detail`)})
	anyLang.Send(&broker.Message{Type: broker.MsgSubscribe,
		XPE: xpath.MustParse(`/insurance/claim//detail`)})
	n.Run()

	doc, err := xmldoc.Parse([]byte(
		`<insurance><claim lang="en" urgency="high"><body><detail>rear-end collision</detail></body></claim></insurance>`))
	if err != nil {
		t.Fatal(err)
	}
	pub.Send(&broker.Message{Type: broker.MsgPublish, Doc: doc})
	n.Run()

	if len(english.Deliveries) != 1 {
		t.Errorf("english expert deliveries = %d, want 1", len(english.Deliveries))
	}
	if len(french.Deliveries) != 0 {
		t.Errorf("french expert deliveries = %d, want 0", len(french.Deliveries))
	}
	if len(anyLang.Deliveries) != 1 {
		t.Errorf("supervisor deliveries = %d, want 1", len(anyLang.Deliveries))
	}
}

// TestPredicateCoveringSuppression: the predicate-free subscription covers
// the predicated one, so covering suppresses the narrower one's forwarding
// while both keep receiving matching publications.
func TestPredicateCoveringSuppression(t *testing.T) {
	n := NewNetwork(2)
	ids := BuildChain(n, 2, ConfigTemplate(broker.Config{UseAdvertisements: false, UseCovering: true}))
	pub := n.AddClient("pub", ids[0])
	s1 := n.AddClient("s1", ids[1])
	s2 := n.AddClient("s2", ids[1])

	s1.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse(`/order/item`)})
	n.Run()
	n.ResetTraffic()
	s2.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse(`/order/item[@sku='7']`)})
	n.Run()
	if got := n.BrokerReceived()[broker.MsgSubscribe]; got != 1 {
		t.Errorf("covered predicated subscription forwarded: %d receipts, want 1", got)
	}

	match := xmldoc.Publication{
		Path:  []string{"order", "item"},
		Attrs: []map[string]string{nil, {"sku": "7"}},
	}
	other := xmldoc.Publication{
		Path:  []string{"order", "item"},
		Attrs: []map[string]string{nil, {"sku": "9"}},
	}
	pub.Send(&broker.Message{Type: broker.MsgPublish, Pub: match})
	pub.Send(&broker.Message{Type: broker.MsgPublish, Pub: other})
	n.Run()

	if len(s1.Deliveries) != 2 {
		t.Errorf("s1 deliveries = %d, want 2", len(s1.Deliveries))
	}
	if len(s2.Deliveries) != 1 {
		t.Errorf("s2 deliveries = %d, want 1 (predicate must filter sku=9)", len(s2.Deliveries))
	}
}

// TestPredicatesFilterInNetwork: a publication matching no predicate is
// dropped at the first broker, not at the edge.
func TestPredicatesFilterInNetwork(t *testing.T) {
	n := NewNetwork(3)
	ids := BuildChain(n, 3, ConfigTemplate(broker.Config{}))
	pub := n.AddClient("pub", ids[0])
	sub := n.AddClient("sub", ids[2])
	sub.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse(`/a/b[@k='v']`)})
	n.Run()
	n.ResetTraffic()
	pub.Send(&broker.Message{Type: broker.MsgPublish, Pub: xmldoc.Publication{
		Path:  []string{"a", "b"},
		Attrs: []map[string]string{nil, {"k": "other"}},
	}})
	n.Run()
	if got := n.BrokerReceived()[broker.MsgPublish]; got != 1 {
		t.Errorf("non-matching publication travelled %d broker hops, want 1", got)
	}
	if len(sub.Deliveries) != 0 {
		t.Errorf("deliveries = %d, want 0", len(sub.Deliveries))
	}
}
