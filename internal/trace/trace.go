// Package trace implements per-hop publication tracing for the
// dissemination network. A publisher stamps a publication with a TraceID;
// every broker the publication crosses appends a Hop to the hop list
// carried in the transport frame and records an Event — what arrived, where
// from, where it went — into a bounded in-memory Ring. The rings of the
// brokers on a path together reconstruct the full dissemination tree of one
// publication; a single broker's ring already shows the upstream path,
// because the hop list travels with the frame.
//
// Tracing is strictly opt-in per publication: a message without a TraceID
// costs the hot path a single string comparison and nothing else.
package trace

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
)

// Stage names of the broker publish path, in pipeline order. Within one
// broker every stage is measured on the monotonic clock (time.Since), so
// stage durations are exact; only the per-hop UnixNano wall stamps compare
// across brokers (see DESIGN.md §5f for the clock-domain rules).
const (
	// StageDecode is wire read + gob decode of the publication frame,
	// measured by the receiving transport from the arrival of the frame's
	// first byte.
	StageDecode = "decode"
	// StageQueue is the wait in the matching worker pool, from dispatch to
	// the worker picking the publication up.
	StageQueue = "queue"
	// StageMatch is the routing computation: one shared-automaton run (or
	// the covering tree walk) over the publication's paths or raw bytes.
	StageMatch = "match"
	// StageFilter is post-match routing bookkeeping: hop ordering, edge
	// client filtering, and trace accounting.
	StageFilter = "filter"
	// StageEnqueue is handing the publication to every next hop's ordered
	// send queue; it grows under backpressure from full queues.
	StageEnqueue = "enqueue"
	// StageFlush is the send-queue wait plus gob encode to the socket,
	// measured by the sending transport's writer goroutine. It happens after
	// the hop record was forwarded, so it appears in histograms but never in
	// a Hop's stage list — across brokers it is part of the wall-clock gap
	// between consecutive hop stamps.
	StageFlush = "flush"
)

// StageDur is one stage's duration inside one broker crossing.
type StageDur struct {
	Stage string `json:"stage"`
	Nanos int64  `json:"nanos"`
}

// Hop is one broker crossing, carried in the message frame.
type Hop struct {
	// Broker is the crossing broker's ID.
	Broker string `json:"broker"`
	// UnixNano is the broker's wall clock when it matched the publication.
	UnixNano int64 `json:"unix_nano"`
	// Epoch is the broker's routing-snapshot epoch the publication was
	// matched under (0 when the broker predates snapshot routing). Two
	// traced publications crossing one broker with different epochs
	// bracketed a control-plane change.
	Epoch uint64 `json:"epoch,omitempty"`
	// Stages breaks the crossing into per-stage durations (decode, queue,
	// match, filter — the stages known when the hop is appended), measured
	// on the broker's monotonic clock. Send-side time (enqueue, flush, wire)
	// is the remainder of the wall-clock gap to the next hop.
	Stages []StageDur `json:"stages,omitempty"`
}

// StageNanos returns the duration of one named stage, or 0 when absent.
func (h Hop) StageNanos(stage string) int64 {
	for _, s := range h.Stages {
		if s.Stage == stage {
			return s.Nanos
		}
	}
	return 0
}

// TotalStageNanos sums the hop's recorded stage durations — the in-broker
// latency of this crossing.
func (h Hop) TotalStageNanos() int64 {
	var t int64
	for _, s := range h.Stages {
		t += s.Nanos
	}
	return t
}

// Event is one broker's record of one traced publication passing through.
type Event struct {
	// TraceID identifies the publication network-wide.
	TraceID string `json:"trace_id"`
	// Broker is the recording broker.
	Broker string `json:"broker"`
	// From is the peer the publication arrived from ("" for local origins).
	From string `json:"from,omitempty"`
	// Hops is the path up to and including the recording broker.
	Hops []Hop `json:"hops"`
	// ForwardedTo lists the broker peers the publication was sent on to.
	ForwardedTo []string `json:"forwarded_to,omitempty"`
	// DeliveredTo lists the client peers that received it here.
	DeliveredTo []string `json:"delivered_to,omitempty"`
	// FilteredFor lists client peers suppressed by edge filtering (false
	// positives of imperfect merging).
	FilteredFor []string `json:"filtered_for,omitempty"`
	// RecvUnixNano is the recording broker's wall clock at match time.
	RecvUnixNano int64 `json:"recv_unix_nano"`
}

// Sink receives trace events; the broker calls Record once per traced
// publication, outside its routing lock. A nil-able interface keeps the
// broker decoupled from the ring.
type Sink interface {
	Record(Event)
}

// Ring is a bounded in-memory event store: the newest events overwrite the
// oldest once capacity is reached. All methods are safe for concurrent use.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int // index of the slot the next event lands in
	total int64
}

// NewRing creates a ring retaining up to capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Record stores one event, evicting the oldest when full.
func (r *Ring) Record(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.next] = ev
	r.next = (r.next + 1) % cap(r.buf)
}

// Snapshot returns the retained events oldest-first.
func (r *Ring) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// ByID returns the retained events for one trace ID, oldest-first.
func (r *Ring) ByID(id string) []Event {
	var out []Event
	for _, ev := range r.Snapshot() {
		if ev.TraceID == id {
			out = append(out, ev)
		}
	}
	return out
}

// Total returns how many events were ever recorded (including evicted).
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// NewID returns a fresh random trace ID (16 hex chars).
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable; trace IDs only need
		// uniqueness, so degrade to a constant rather than crash tracing.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}
