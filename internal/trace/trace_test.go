package trace

import (
	"fmt"
	"sync"
	"testing"
)

func TestRingBounded(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{TraceID: fmt.Sprintf("t%d", i)})
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d events, want 4", len(got))
	}
	// Oldest-first, newest events win.
	for i, ev := range got {
		if want := fmt.Sprintf("t%d", 6+i); ev.TraceID != want {
			t.Errorf("event[%d] = %s, want %s", i, ev.TraceID, want)
		}
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d, want 10", r.Total())
	}
}

func TestRingPartiallyFilled(t *testing.T) {
	r := NewRing(8)
	r.Record(Event{TraceID: "a"})
	r.Record(Event{TraceID: "b"})
	got := r.Snapshot()
	if len(got) != 2 || got[0].TraceID != "a" || got[1].TraceID != "b" {
		t.Errorf("Snapshot = %v", got)
	}
}

func TestRingByID(t *testing.T) {
	r := NewRing(16)
	r.Record(Event{TraceID: "x", Broker: "b1"})
	r.Record(Event{TraceID: "y", Broker: "b1"})
	r.Record(Event{TraceID: "x", Broker: "b2"})
	got := r.ByID("x")
	if len(got) != 2 || got[0].Broker != "b1" || got[1].Broker != "b2" {
		t.Errorf("ByID(x) = %v", got)
	}
	if len(r.ByID("z")) != 0 {
		t.Error("ByID of unknown trace must be empty")
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(32)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Record(Event{TraceID: fmt.Sprintf("g%d", i)})
				if j%10 == 0 {
					r.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	if r.Total() != 4000 {
		t.Errorf("Total = %d, want 4000", r.Total())
	}
	if len(r.Snapshot()) != 32 {
		t.Errorf("retained %d, want 32", len(r.Snapshot()))
	}
}

func TestNewID(t *testing.T) {
	a, b := NewID(), NewID()
	if len(a) != 16 || len(b) != 16 {
		t.Errorf("IDs %q, %q: want 16 hex chars", a, b)
	}
	if a == b {
		t.Error("consecutive IDs must differ")
	}
}
