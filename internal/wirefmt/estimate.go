package wirefmt

import (
	"repro/internal/advert"
	"repro/internal/broker"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// symCost is the assumed wire cost of one dictionary reference: low-ordinal
// ids are one varint byte, a warm link's wider alphabet averages near two.
const symCost = 2

// EstimateSize returns the approximate on-wire bytes of one message frame
// under the binary codec on a dictionary-warm link (symbols already
// interned, so each costs symCost bytes rather than its spelled-out length).
// The simulator uses it to model link serialisation delay; it is an
// analytic walk, not an encode, so it allocates nothing and is deterministic
// across runs regardless of real dictionary state.
func EstimateSize(m *broker.Message) int {
	n := 4 // length prefix + frame kind + message type, rounded up
	switch m.Type {
	case broker.MsgSubscribe, broker.MsgUnsubscribe:
		n += xpeSize(m.XPE)
	case broker.MsgAdvertise:
		n += symCost + advSize(m.Adv)
	case broker.MsgUnadvertise:
		n += symCost
	case broker.MsgPublish:
		n += pubSize(m)
	case broker.MsgResync:
		if r := m.Resync; r != nil {
			n += uvSize(uint64(len(r.Advs))) + uvSize(uint64(len(r.Subs)))
			for _, a := range r.Advs {
				n += symCost + advSize(a.Adv)
			}
			for _, x := range r.Subs {
				n += xpeSize(x)
			}
		}
	case broker.MsgSubscribeDurable:
		n += symCost + xpeSize(m.XPE)
	case broker.MsgAck, broker.MsgReplayBegin, broker.MsgReplayEnd:
		n += symCost + uvSize(m.Seq)
	}
	return n
}

func pubSize(m *broker.Message) int {
	n := 1 + uvSize(m.Pub.DocID) + svSize(int64(m.Pub.PathID)) + svSize(m.Stamp)
	n += uvSize(uint64(len(m.Pub.Path))) + symCost*len(m.Pub.Path)
	if len(m.Pub.Attrs) > 0 {
		n += uvSize(uint64(len(m.Pub.Attrs)))
		for _, am := range m.Pub.Attrs {
			n++
			for _, v := range am {
				n += symCost + uvSize(uint64(len(v))) + len(v)
			}
		}
	}
	if m.Doc != nil && m.Doc.Root != nil {
		n += elemSize(m.Doc.Root)
	}
	if len(m.Raw) > 0 {
		n += uvSize(uint64(len(m.Raw))) + len(m.Raw)
	}
	if m.TraceID != "" || len(m.Hops) > 0 {
		n += uvSize(uint64(len(m.TraceID))) + len(m.TraceID)
		n += uvSize(uint64(len(m.Hops)))
		for _, h := range m.Hops {
			n += symCost + svSize(h.UnixNano) + uvSize(h.Epoch)
			n += uvSize(uint64(len(h.Stages)))
			for _, sd := range h.Stages {
				n += symCost + svSize(sd.Nanos)
			}
		}
	}
	if m.Durable != "" {
		n += symCost + uvSize(m.Seq)
	}
	return n
}

func elemSize(el *xmldoc.Elem) int {
	n := symCost + uvSize(uint64(len(el.Attrs)))
	for _, a := range el.Attrs {
		n += symCost + uvSize(uint64(len(a.Value))) + len(a.Value)
	}
	n += uvSize(uint64(len(el.Text))) + len(el.Text)
	n += uvSize(uint64(len(el.Children)))
	for _, c := range el.Children {
		if c != nil {
			n += elemSize(c)
		}
	}
	return n
}

func xpeSize(x *xpath.XPE) int {
	if x == nil {
		return 0
	}
	n := 1 + uvSize(uint64(len(x.Steps)))
	for _, s := range x.Steps {
		n += 1 + symCost + uvSize(uint64(len(s.Preds))) + len(s.Preds)
	}
	return n
}

func advSize(a *advert.Advertisement) int {
	if a == nil {
		return 0
	}
	return itemsSize(a.Items)
}

func itemsSize(items []advert.Item) int {
	n := uvSize(uint64(len(items)))
	for _, it := range items {
		n++
		if it.IsGroup() {
			n += itemsSize(it.Group)
		} else {
			n += symCost
		}
	}
	return n
}

// uvSize is the LEB128 byte length of v.
func uvSize(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// svSize is the zigzag-varint byte length of v.
func svSize(v int64) int { return uvSize(zigzag(v)) }
