// Package wirefmt is the hand-rolled binary wire codec of the data plane:
// varint-framed records over per-link interned symbol ids, replacing gob on
// broker and client links (DESIGN.md §5h). gob pays reflection on both ends
// of every frame and re-transmits type structure per stream; this codec
// writes each frame with append-only varint arithmetic into a reused batch
// buffer and reads it back with bounds-validated slicing, so steady-state
// publish encode and decode allocate nothing.
//
// Framing. The byte stream after the (gob) attach handshake is a sequence of
// frames, each a uvarint byte length followed by that many payload bytes.
// The first payload byte is the frame kind: dictionary extension or message.
// A batch is simply several frames written in one vectored write
// (net.Buffers); the decoder never needs to know where batches began.
//
// Symbol dictionary. Low-cardinality strings — element names, XPath step
// names, advertisement ids, broker ids, stage names — are sent once per
// link: the encoder assigns the next sequential id on first use and
// declares it in a dictionary-extension frame that precedes (in the same
// batch) the first message frame referencing it. The dictionary starts
// empty at attach (both sides agree on that by the handshake) and only ever
// grows, so ids are stable for the life of the connection. High-cardinality
// values — attribute values, character data, trace ids, predicate strings,
// raw document bytes — travel inline as length-prefixed bytes.
//
// Hostile input. The decoder validates every declared length against both
// the configured Limits and the bytes actually remaining in the frame
// before allocating, so a hostile peer cannot make the receiver allocate
// more than it sends (the gob weakness that wire.go's post-decode checks
// existed to contain). A frame that violates any bound is an error; the
// transport closes the connection.
package wirefmt

import (
	"encoding/binary"
	"fmt"
)

// Frame kinds (first payload byte of every frame).
const (
	frameDict byte = 0x01 // dictionary extension: firstID, count, count strings
	frameMsg  byte = 0x02 // one broker message
)

// Wire bounds shared with the gob path's post-decode validation
// (transport/wire.go aliases these, so the two codecs can never drift). The
// bounds are far above anything the system generates — they exist to cap
// hostile input, not to constrain use.
const (
	MaxSteps     = 64      // location steps per subscription
	MaxName      = 256     // bytes per element name, attribute, or ID
	MaxPath      = 256     // elements per publication path
	MaxAdvItems  = 256     // advertisement items, groups included
	MaxAdvDepth  = 8       // advertisement group nesting
	MaxResync    = 1 << 16 // entries per resync list
	MaxDocElems  = 1 << 16 // elements per whole-document publication
	MaxDocDepth  = MaxPath
	MaxHops      = 1024    // carried trace hops
	MaxRawDoc    = 1 << 20 // bytes per raw-XML publication body
	MaxHopStages = 16      // per-stage durations per carried hop
	MaxStageName = 32      // bytes per stage name

	// MaxStageNanos caps a carried stage duration at one hour: durations
	// are measured monotonic timings, so a larger (or negative) value can
	// only be a forged frame.
	MaxStageNanos = int64(3600) * 1e9

	// MaxDict bounds the per-link symbol dictionary. Element alphabets are
	// small; the largest legitimate consumer is advertisement ids, one per
	// advert (a resync claim spans a whole SRT, ~64k entries). A peer that
	// declares more symbols than this is flooding, and loses the link.
	MaxDict = 1 << 20

	// MaxFrame bounds one frame's declared payload length. Raw documents
	// cap at MaxRawDoc; parsed documents at MaxDocElems elements. The frame
	// buffer grows only as bytes actually arrive, so a hostile declared
	// length costs the sender real traffic, not the receiver memory.
	MaxFrame = 16 << 20
)

// Limits parameterises the decoder's bounds so tests and embedders can
// tighten them; DefaultLimits mirrors the package constants.
type Limits struct {
	MaxSteps     int
	MaxName      int
	MaxPath      int
	MaxAdvItems  int
	MaxAdvDepth  int
	MaxResync    int
	MaxDocElems  int
	MaxDocDepth  int
	MaxHops      int
	MaxRawDoc    int
	MaxHopStages int
	MaxStageName int

	MaxStageNanos int64
	MaxDict       int
	MaxFrame      int
}

// DefaultLimits is the wire-bound set used on broker and client links.
var DefaultLimits = Limits{
	MaxSteps:      MaxSteps,
	MaxName:       MaxName,
	MaxPath:       MaxPath,
	MaxAdvItems:   MaxAdvItems,
	MaxAdvDepth:   MaxAdvDepth,
	MaxResync:     MaxResync,
	MaxDocElems:   MaxDocElems,
	MaxDocDepth:   MaxDocDepth,
	MaxHops:       MaxHops,
	MaxRawDoc:     MaxRawDoc,
	MaxHopStages:  MaxHopStages,
	MaxStageName:  MaxStageName,
	MaxStageNanos: MaxStageNanos,
	MaxDict:       MaxDict,
	MaxFrame:      MaxFrame,
}

// publish-frame flag bits.
const (
	pubFlagDoc     byte = 1 << 0 // carries a parsed whole document
	pubFlagRaw     byte = 1 << 1 // carries a raw-XML body
	pubFlagTrace   byte = 1 << 2 // carries TraceID and hop list
	pubFlagAttrs   byte = 1 << 3 // carries per-element attribute maps
	pubFlagDurable byte = 1 << 4 // carries a durable name and sequence
)

// xpe-record flag bits.
const xpeFlagRelative byte = 1 << 0

// zigzag maps a signed value onto the uvarint space (small magnitudes stay
// small in either sign).
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendUvarint appends v to b in LEB128 form.
func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// errTruncated is the generic inside-a-frame underrun error.
var errTruncated = fmt.Errorf("wirefmt: truncated frame")
