package wirefmt

import (
	"fmt"
	"io"
	"net"

	"repro/internal/advert"
	"repro/internal/broker"
	"repro/internal/trace"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// extThreshold is the payload size above which a byte slice is written by
// reference (its own iovec in the vectored write) instead of being copied
// into the batch buffer. Raw document bodies clear it; everything else is
// cheaper to copy than to add a writev segment for.
const extThreshold = 256

// seg is one wire-ordered piece of a batch: either a range of the encoder's
// scratch buffer (recorded as offsets, so scratch may reallocate while the
// batch grows) or an external message-owned byte slice.
type seg struct {
	off, end int
	ext      []byte
}

// Encoder writes binary frames to one link. It is not safe for concurrent
// use — the transport funnels each connection's writes through a single
// writer goroutine, which is what makes the lock-free dictionary and the
// reused batch buffers sound.
//
// Queue appends a message's frames to the current batch without touching
// the connection; Flush writes the whole batch — a dictionary-extension
// frame for any symbols first used in this batch, then the message frames —
// in one vectored write. Steady state (no new symbols, warm buffers)
// allocates nothing.
type Encoder struct {
	w   io.Writer
	lim Limits

	ids     map[string]uint32
	nextID  uint32
	newSyms []string // symbols interned since the last Flush, in id order

	scratch  []byte
	segs     []seg
	bufs     [][]byte
	nb       net.Buffers // consumable view of bufs for the vectored write
	runStart int         // start of the scratch run being written
	extLen   int         // external bytes of the message being encoded
	pendExt  int         // external bytes of all messages queued this batch
	elems    int         // element budget of the document being encoded
	advCount int         // item budget of the advertisement being encoded

	// Frames counts message frames queued since construction — the
	// transport's per-link frame counter reads it after each Flush.
	Frames int64
}

// NewEncoder builds an encoder for one connection with an empty symbol
// dictionary (the state both ends agree on at attach).
func NewEncoder(w io.Writer, lim Limits) *Encoder {
	return &Encoder{w: w, lim: lim, ids: make(map[string]uint32)}
}

// Queue encodes one message into the current batch. On error the batch is
// left as it was before the call; the error means the message violates a
// wire bound and the link should be torn down (legitimate traffic never
// trips one — inbound frames were bounds-checked on ingress).
func (e *Encoder) Queue(m *broker.Message) error {
	scratchMark, segMark := len(e.scratch), len(e.segs)
	e.segs = append(e.segs, seg{}) // length-prefix placeholder
	plStart := len(e.scratch)
	e.runStart = plStart
	e.extLen = 0
	if err := e.message(m); err != nil {
		e.scratch = e.scratch[:scratchMark]
		e.segs = e.segs[:segMark]
		return err
	}
	if len(e.scratch) > e.runStart {
		e.segs = append(e.segs, seg{off: e.runStart, end: len(e.scratch)})
	}
	payload := len(e.scratch) - plStart + e.extLen
	if payload > e.lim.MaxFrame {
		e.scratch = e.scratch[:scratchMark]
		e.segs = e.segs[:segMark]
		return fmt.Errorf("wirefmt: frame of %d bytes exceeds %d", payload, e.lim.MaxFrame)
	}
	lenOff := len(e.scratch)
	e.scratch = appendUvarint(e.scratch, uint64(payload))
	e.segs[segMark] = seg{off: lenOff, end: len(e.scratch)}
	e.pendExt += e.extLen
	e.Frames++
	return nil
}

// Flush writes the queued batch — new dictionary entries first, then the
// message frames — in one vectored write and resets the batch buffers. It
// returns the bytes written.
func (e *Encoder) Flush() (int64, error) {
	if len(e.segs) == 0 && len(e.newSyms) == 0 {
		return 0, nil
	}
	// The dictionary-extension frame is built in scratch too; every scratch
	// append happens before any slice of scratch is taken, so reallocation
	// cannot invalidate the vectored segments.
	dictOff, dictEnd, dictLenOff := -1, -1, -1
	if len(e.newSyms) > 0 {
		dictOff = len(e.scratch)
		e.scratch = append(e.scratch, frameDict)
		e.scratch = appendUvarint(e.scratch, uint64(e.nextID)-uint64(len(e.newSyms)))
		e.scratch = appendUvarint(e.scratch, uint64(len(e.newSyms)))
		for _, s := range e.newSyms {
			e.scratch = appendUvarint(e.scratch, uint64(len(s)))
			e.scratch = append(e.scratch, s...)
		}
		dictEnd = len(e.scratch)
		dictLenOff = len(e.scratch)
		e.scratch = appendUvarint(e.scratch, uint64(dictEnd-dictOff))
	}
	bufs := e.bufs[:0]
	var total int64
	add := func(b []byte) {
		bufs = append(bufs, b)
		total += int64(len(b))
	}
	if dictOff >= 0 {
		add(e.scratch[dictLenOff:])
		add(e.scratch[dictOff:dictEnd])
	}
	for _, s := range e.segs {
		if s.ext != nil {
			add(s.ext)
		} else {
			add(e.scratch[s.off:s.end])
		}
	}
	// WriteTo consumes its receiver (writev advances the slice), so it gets
	// a throwaway view in a reused field; bufs itself keeps its capacity.
	e.nb = net.Buffers(bufs)
	_, err := e.nb.WriteTo(e.w)
	e.nb = nil
	e.bufs = bufs[:0]
	e.scratch = e.scratch[:0]
	e.segs = e.segs[:0]
	e.newSyms = e.newSyms[:0]
	e.pendExt = 0
	if err != nil {
		return 0, err
	}
	return total, nil
}

// Encode is Queue followed by Flush — the unbatched path (clients, control
// traffic, tests).
func (e *Encoder) Encode(m *broker.Message) error {
	if err := e.Queue(m); err != nil {
		return err
	}
	_, err := e.Flush()
	return err
}

// DictLen returns the number of symbols interned so far (observability).
func (e *Encoder) DictLen() int { return int(e.nextID) }

// Pending returns the approximate bytes queued and not yet flushed — what
// the transport's batching writer compares against its max-batch-bytes cap.
func (e *Encoder) Pending() int { return len(e.scratch) + e.pendExt }

// --- scratch append helpers ---

func (e *Encoder) u(v uint64)  { e.scratch = appendUvarint(e.scratch, v) }
func (e *Encoder) sv(v int64)  { e.scratch = appendUvarint(e.scratch, zigzag(v)) }
func (e *Encoder) byte(b byte) { e.scratch = append(e.scratch, b) }

// str writes a length-prefixed byte string inline.
func (e *Encoder) str(s string) {
	e.u(uint64(len(s)))
	e.scratch = append(e.scratch, s...)
}

// bytesMaybeExt writes a length prefix, then the bytes — inline when small,
// as their own vectored segment when large (the caller must not mutate b
// until the batch is flushed; message payloads are immutable by contract).
func (e *Encoder) bytesMaybeExt(b []byte) {
	e.u(uint64(len(b)))
	if len(b) <= extThreshold {
		e.scratch = append(e.scratch, b...)
		return
	}
	if len(e.scratch) > e.runStart {
		e.segs = append(e.segs, seg{off: e.runStart, end: len(e.scratch)})
	}
	e.segs = append(e.segs, seg{ext: b})
	e.runStart = len(e.scratch)
	e.extLen += len(b)
}

// sym writes a dictionary reference, interning s on first use.
func (e *Encoder) sym(s string) error {
	id, ok := e.ids[s]
	if !ok {
		if len(s) > e.lim.MaxName {
			return fmt.Errorf("wirefmt: symbol of %d bytes exceeds %d", len(s), e.lim.MaxName)
		}
		if int(e.nextID) >= e.lim.MaxDict {
			return fmt.Errorf("wirefmt: symbol dictionary full (%d entries)", e.nextID)
		}
		id = e.nextID
		e.nextID++
		e.ids[s] = id
		e.newSyms = append(e.newSyms, s)
	}
	e.u(uint64(id))
	return nil
}

// --- message bodies ---

func (e *Encoder) message(m *broker.Message) error {
	e.byte(frameMsg)
	e.byte(byte(m.Type))
	switch m.Type {
	case broker.MsgSubscribe, broker.MsgUnsubscribe:
		return e.xpe(m.XPE)
	case broker.MsgAdvertise:
		if err := e.sym(m.AdvID); err != nil {
			return err
		}
		return e.adv(m.Adv)
	case broker.MsgUnadvertise:
		return e.sym(m.AdvID)
	case broker.MsgPublish:
		return e.publish(m)
	case broker.MsgResync:
		return e.resync(m.Resync)
	case broker.MsgHeartbeat:
		return nil
	case broker.MsgSubscribeDurable:
		if m.Durable == "" {
			return fmt.Errorf("wirefmt: durable subscription without a name")
		}
		if err := e.sym(m.Durable); err != nil {
			return err
		}
		return e.xpe(m.XPE)
	case broker.MsgAck, broker.MsgReplayBegin, broker.MsgReplayEnd:
		if m.Durable == "" {
			return fmt.Errorf("wirefmt: %s without a durable name", m.Type)
		}
		if err := e.sym(m.Durable); err != nil {
			return err
		}
		e.u(m.Seq)
		return nil
	default:
		return fmt.Errorf("wirefmt: unknown message type %d", uint8(m.Type))
	}
}

func (e *Encoder) xpe(x *xpath.XPE) error {
	if x == nil {
		return fmt.Errorf("wirefmt: missing expression")
	}
	if len(x.Steps) > e.lim.MaxSteps {
		return fmt.Errorf("wirefmt: expression with %d steps exceeds %d", len(x.Steps), e.lim.MaxSteps)
	}
	var flags byte
	if x.Relative {
		flags |= xpeFlagRelative
	}
	e.byte(flags)
	e.u(uint64(len(x.Steps)))
	for _, s := range x.Steps {
		e.byte(byte(s.Axis))
		if err := e.sym(s.Name); err != nil {
			return err
		}
		e.str(s.Preds)
	}
	return nil
}

func (e *Encoder) adv(a *advert.Advertisement) error {
	if a == nil {
		return fmt.Errorf("wirefmt: missing advertisement")
	}
	e.advCount = 0
	return e.advItems(a.Items, 0)
}

func (e *Encoder) advItems(items []advert.Item, depth int) error {
	if depth > e.lim.MaxAdvDepth {
		return fmt.Errorf("wirefmt: advertisement groups nested deeper than %d", e.lim.MaxAdvDepth)
	}
	e.u(uint64(len(items)))
	for _, it := range items {
		if e.advCount++; e.advCount > e.lim.MaxAdvItems {
			return fmt.Errorf("wirefmt: advertisement with more than %d items", e.lim.MaxAdvItems)
		}
		if it.IsGroup() {
			e.byte(1)
			if err := e.advItems(it.Group, depth+1); err != nil {
				return err
			}
		} else {
			e.byte(0)
			if err := e.sym(it.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *Encoder) publish(m *broker.Message) error {
	var flags byte
	if m.Doc != nil {
		flags |= pubFlagDoc
	}
	if len(m.Raw) > 0 {
		flags |= pubFlagRaw
	}
	if m.TraceID != "" || len(m.Hops) > 0 {
		flags |= pubFlagTrace
	}
	if len(m.Pub.Attrs) > 0 {
		flags |= pubFlagAttrs
	}
	if m.Durable != "" {
		flags |= pubFlagDurable
	}
	if flags&pubFlagDoc != 0 && flags&pubFlagRaw != 0 {
		return fmt.Errorf("wirefmt: publication carrying both raw and parsed document")
	}
	e.byte(flags)
	e.u(m.Pub.DocID)
	e.sv(int64(m.Pub.PathID))
	e.sv(m.Stamp)
	if len(m.Pub.Path) > e.lim.MaxPath {
		return fmt.Errorf("wirefmt: publication path of %d elements exceeds %d", len(m.Pub.Path), e.lim.MaxPath)
	}
	e.u(uint64(len(m.Pub.Path)))
	for _, el := range m.Pub.Path {
		if err := e.sym(el); err != nil {
			return err
		}
	}
	if flags&pubFlagAttrs != 0 {
		if len(m.Pub.Attrs) > e.lim.MaxPath {
			return fmt.Errorf("wirefmt: publication with %d attribute maps exceeds %d", len(m.Pub.Attrs), e.lim.MaxPath)
		}
		e.u(uint64(len(m.Pub.Attrs)))
		for _, am := range m.Pub.Attrs {
			if am == nil {
				e.u(0)
				continue
			}
			e.u(uint64(len(am)) + 1)
			for k, v := range am {
				if err := e.sym(k); err != nil {
					return err
				}
				e.str(v)
			}
		}
	}
	if flags&pubFlagDoc != 0 {
		e.elems = 0
		if m.Doc.Root == nil {
			return fmt.Errorf("wirefmt: document without a root")
		}
		if err := e.elem(m.Doc.Root, 0); err != nil {
			return err
		}
	}
	if flags&pubFlagRaw != 0 {
		if len(m.Raw) > e.lim.MaxRawDoc {
			return fmt.Errorf("wirefmt: raw document of %d bytes exceeds %d", len(m.Raw), e.lim.MaxRawDoc)
		}
		e.bytesMaybeExt(m.Raw)
	}
	if flags&pubFlagTrace != 0 {
		if len(m.TraceID) > e.lim.MaxName {
			return fmt.Errorf("wirefmt: trace id of %d bytes", len(m.TraceID))
		}
		e.str(m.TraceID)
		if len(m.Hops) > e.lim.MaxHops {
			return fmt.Errorf("wirefmt: publication carrying %d hops exceeds %d", len(m.Hops), e.lim.MaxHops)
		}
		e.u(uint64(len(m.Hops)))
		for _, h := range m.Hops {
			if err := e.hop(h); err != nil {
				return err
			}
		}
	}
	if flags&pubFlagDurable != 0 {
		if err := e.sym(m.Durable); err != nil {
			return err
		}
		e.u(m.Seq)
	}
	return nil
}

func (e *Encoder) hop(h trace.Hop) error {
	if err := e.sym(h.Broker); err != nil {
		return err
	}
	e.sv(h.UnixNano)
	e.u(h.Epoch)
	if len(h.Stages) > e.lim.MaxHopStages {
		return fmt.Errorf("wirefmt: hop carrying %d stage durations exceeds %d", len(h.Stages), e.lim.MaxHopStages)
	}
	e.u(uint64(len(h.Stages)))
	for _, sd := range h.Stages {
		if len(sd.Stage) > e.lim.MaxStageName {
			return fmt.Errorf("wirefmt: hop stage name of %d bytes exceeds %d", len(sd.Stage), e.lim.MaxStageName)
		}
		if err := e.sym(sd.Stage); err != nil {
			return err
		}
		if sd.Nanos < 0 || sd.Nanos > e.lim.MaxStageNanos {
			return fmt.Errorf("wirefmt: hop stage duration %dns outside [0, %dns]", sd.Nanos, e.lim.MaxStageNanos)
		}
		e.sv(sd.Nanos)
	}
	return nil
}

func (e *Encoder) elem(el *xmldoc.Elem, depth int) error {
	if depth >= e.lim.MaxDocDepth {
		return fmt.Errorf("wirefmt: document deeper than %d", e.lim.MaxDocDepth)
	}
	if e.elems++; e.elems > e.lim.MaxDocElems {
		return fmt.Errorf("wirefmt: document with more than %d elements", e.lim.MaxDocElems)
	}
	if err := e.sym(el.Name); err != nil {
		return err
	}
	e.u(uint64(len(el.Attrs)))
	for _, a := range el.Attrs {
		if err := e.sym(a.Name); err != nil {
			return err
		}
		e.str(a.Value)
	}
	e.str(el.Text)
	e.u(uint64(len(el.Children)))
	for _, c := range el.Children {
		if c == nil {
			return fmt.Errorf("wirefmt: nil child element")
		}
		if err := e.elem(c, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func (e *Encoder) resync(r *broker.ResyncState) error {
	if r == nil {
		return fmt.Errorf("wirefmt: missing resync payload")
	}
	if len(r.Advs) > e.lim.MaxResync || len(r.Subs) > e.lim.MaxResync {
		return fmt.Errorf("wirefmt: resync with %d advs and %d subs exceeds %d", len(r.Advs), len(r.Subs), e.lim.MaxResync)
	}
	e.u(uint64(len(r.Advs)))
	for _, a := range r.Advs {
		if err := e.sym(a.ID); err != nil {
			return err
		}
		if err := e.adv(a.Adv); err != nil {
			return err
		}
	}
	e.u(uint64(len(r.Subs)))
	for _, x := range r.Subs {
		if err := e.xpe(x); err != nil {
			return err
		}
	}
	return nil
}
