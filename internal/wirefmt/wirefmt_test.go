package wirefmt

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/advert"
	"repro/internal/broker"
	"repro/internal/trace"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// mustXPE parses an expression or fails the test.
func mustXPE(t testing.TB, s string) *xpath.XPE {
	t.Helper()
	x, err := xpath.Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return x
}

// sampleMessages is one message per frame type, exercising every optional
// field: trace hops with stage timings, attribute maps with nil holes,
// whole documents, raw bodies, and resync payloads.
func sampleMessages(t testing.TB) []*broker.Message {
	t.Helper()
	doc, err := xmldoc.Parse([]byte(`<inventory count="3"><book lang="en"><title>Dissemination</title></book><cd/></inventory>`))
	if err != nil {
		t.Fatalf("Parse doc: %v", err)
	}
	return []*broker.Message{
		{Type: broker.MsgSubscribe, XPE: mustXPE(t, "/inventory/book/title")},
		{Type: broker.MsgSubscribe, XPE: mustXPE(t, `//book[@lang="en"]/*`)},
		{Type: broker.MsgUnsubscribe, XPE: mustXPE(t, "/inventory//cd")},
		{
			Type:  broker.MsgAdvertise,
			AdvID: "adv-1",
			Adv: advert.NewAdvertisement(
				advert.Sym("inventory"),
				advert.Rep(advert.Sym("book"), advert.Sym("cd")),
			),
		},
		{Type: broker.MsgUnadvertise, AdvID: "adv-1"},
		{
			Type: broker.MsgPublish,
			Pub: xmldoc.Publication{
				DocID:  42,
				PathID: 7,
				Path:   []string{"inventory", "book", "title"},
				Attrs: []map[string]string{
					{"count": "3"},
					{"lang": "en", "id": "b1"},
					nil,
				},
			},
			Stamp:   1234567890,
			TraceID: "trace-abc",
			Hops: []trace.Hop{
				{Broker: "b1", UnixNano: 1700000000000000000, Epoch: 3, Stages: []trace.StageDur{
					{Stage: "decode", Nanos: 1200},
					{Stage: "match", Nanos: 340},
				}},
				{Broker: "b2", UnixNano: 1700000000000500000, Epoch: 9},
			},
		},
		{
			Type: broker.MsgPublish,
			Pub:  xmldoc.Publication{DocID: 43},
			Doc:  doc,
		},
		{
			Type: broker.MsgPublish,
			Pub:  xmldoc.Publication{DocID: 44},
			Raw:  []byte(`<inventory><book/></inventory>`),
		},
		{
			Type: broker.MsgPublish,
			Pub:  xmldoc.Publication{DocID: 45},
			Raw:  bytes.Repeat([]byte("x"), 4096), // clears extThreshold
		},
		{
			Type: broker.MsgResync,
			Resync: &broker.ResyncState{
				Advs: []broker.ResyncAdv{
					{ID: "adv-a", Adv: advert.NewAdvertisement(advert.Sym("inventory"))},
					{ID: "adv-b", Adv: advert.NewAdvertisement(advert.Sym("cd"), advert.Rep(advert.Sym("dvd")))},
				},
				Subs: []*xpath.XPE{mustXPE(t, "/inventory/book"), mustXPE(t, "//cd")},
			},
		},
		{Type: broker.MsgHeartbeat},
	}
}

// fingerprint renders the wire-visible fields of a message so values that
// crossed different codecs can be compared without tripping on unexported
// caches (xpath syms, advert NFAs, broker arrival stamps).
func fingerprint(m *broker.Message) string {
	var b strings.Builder
	fmt.Fprintf(&b, "type=%d advID=%q stamp=%d traceID=%q\n", m.Type, m.AdvID, m.Stamp, m.TraceID)
	if m.XPE != nil {
		fmt.Fprintf(&b, "xpe=%s relative=%v\n", m.XPE.String(), m.XPE.Relative)
		for _, s := range m.XPE.Steps {
			fmt.Fprintf(&b, "  step axis=%d name=%q preds=%q\n", s.Axis, s.Name, s.Preds)
		}
	}
	if m.Adv != nil {
		fmt.Fprintf(&b, "adv=%s\n", m.Adv.String())
	}
	fmt.Fprintf(&b, "pub docID=%d pathID=%d path=%q\n", m.Pub.DocID, m.Pub.PathID, m.Pub.Path)
	for i, am := range m.Pub.Attrs {
		if am == nil {
			fmt.Fprintf(&b, "attrs[%d]=nil\n", i)
			continue
		}
		fmt.Fprintf(&b, "attrs[%d]=%d{", i, len(am))
		keys := make([]string, 0, len(am))
		for k := range am {
			keys = append(keys, k)
		}
		for i := range keys { // insertion sort: tiny maps
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		for _, k := range keys {
			fmt.Fprintf(&b, "%q=%q ", k, am[k])
		}
		b.WriteString("}\n")
	}
	if len(m.Pub.SymPath) > 0 {
		fmt.Fprintf(&b, "sympath=%v\n", m.Pub.SymPath)
	}
	if m.Doc != nil {
		fmt.Fprintf(&b, "doc=%s\n", m.Doc.Marshal())
	}
	fmt.Fprintf(&b, "raw=%q\n", m.Raw)
	for _, h := range m.Hops {
		fmt.Fprintf(&b, "hop broker=%q t=%d epoch=%d", h.Broker, h.UnixNano, h.Epoch)
		for _, sd := range h.Stages {
			fmt.Fprintf(&b, " %s=%d", sd.Stage, sd.Nanos)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func TestRoundTripAllFrameTypes(t *testing.T) {
	for i, m := range sampleMessages(t) {
		var buf bytes.Buffer
		enc := NewEncoder(&buf, DefaultLimits)
		if err := enc.Encode(m); err != nil {
			t.Fatalf("msg %d: Encode: %v", i, err)
		}
		dec := NewDecoder(&buf, DefaultLimits)
		var got broker.Message
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("msg %d: Decode: %v", i, err)
		}
		if want, have := fingerprint(m), fingerprint(&got); want != have {
			t.Errorf("msg %d round-trip mismatch:\nsent:\n%s\ngot:\n%s", i, want, have)
		}
	}
}

// TestRoundTripSharedStream runs all samples through ONE encoder/decoder
// pair so dictionary reuse across frames is exercised: the second reference
// to any symbol must resolve through the dictionary built by earlier frames.
func TestRoundTripSharedStream(t *testing.T) {
	msgs := sampleMessages(t)
	// Twice over: second pass is fully dictionary-warm.
	msgs = append(msgs, sampleMessages(t)...)
	var buf bytes.Buffer
	enc := NewEncoder(&buf, DefaultLimits)
	for i, m := range msgs {
		if err := enc.Encode(m); err != nil {
			t.Fatalf("msg %d: Encode: %v", i, err)
		}
	}
	dec := NewDecoder(&buf, DefaultLimits)
	for i, m := range msgs {
		var got broker.Message
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("msg %d: Decode: %v", i, err)
		}
		if want, have := fingerprint(m), fingerprint(&got); want != have {
			t.Errorf("msg %d shared-stream mismatch:\nsent:\n%s\ngot:\n%s", i, want, have)
		}
	}
	if enc.DictLen() != dec.DictLen() {
		t.Errorf("dictionary drift: encoder %d symbols, decoder %d", enc.DictLen(), dec.DictLen())
	}
	if dec.DictLen() == 0 {
		t.Error("no symbols interned — dictionary path untested")
	}
}

// TestBatchQueueFlush checks that a multi-message batch produces one
// decodable stream and that Flush reports the bytes written.
func TestBatchQueueFlush(t *testing.T) {
	msgs := sampleMessages(t)
	var buf bytes.Buffer
	enc := NewEncoder(&buf, DefaultLimits)
	for i, m := range msgs {
		if err := enc.Queue(m); err != nil {
			t.Fatalf("msg %d: Queue: %v", i, err)
		}
	}
	n, err := enc.Flush()
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("Flush reported %d bytes, wrote %d", n, buf.Len())
	}
	if enc.Frames != int64(len(msgs)) {
		t.Errorf("Frames = %d, queued %d", enc.Frames, len(msgs))
	}
	dec := NewDecoder(&buf, DefaultLimits)
	for i, m := range msgs {
		var got broker.Message
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("msg %d: Decode: %v", i, err)
		}
		if want, have := fingerprint(m), fingerprint(&got); want != have {
			t.Errorf("msg %d batch mismatch:\nsent:\n%s\ngot:\n%s", i, want, have)
		}
	}
	if _, err := enc.Flush(); err != nil {
		t.Fatalf("empty Flush: %v", err)
	}
}

// TestQueueErrorRollsBack checks that a rejected message leaves the batch
// exactly as it was: earlier queued frames still decode, the bad one leaves
// no partial bytes.
func TestQueueErrorRollsBack(t *testing.T) {
	good := &broker.Message{Type: broker.MsgPublish, Pub: xmldoc.Publication{DocID: 1, Path: []string{"a"}}}
	bad := &broker.Message{Type: broker.MsgPublish, Pub: xmldoc.Publication{DocID: 2, Path: make([]string, MaxPath+1)}}
	for i := range bad.Pub.Path {
		bad.Pub.Path[i] = "x"
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf, DefaultLimits)
	if err := enc.Queue(good); err != nil {
		t.Fatalf("Queue(good): %v", err)
	}
	if err := enc.Queue(bad); err == nil {
		t.Fatal("Queue(bad) accepted an over-limit path")
	}
	if err := enc.Queue(good); err != nil {
		t.Fatalf("Queue(good) after rollback: %v", err)
	}
	if _, err := enc.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	dec := NewDecoder(&buf, DefaultLimits)
	for i := 0; i < 2; i++ {
		var got broker.Message
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("Decode %d after rollback: %v", i, err)
		}
		if got.Pub.DocID != 1 {
			t.Errorf("Decode %d: DocID = %d, want 1", i, got.Pub.DocID)
		}
	}
	var extra broker.Message
	if err := dec.Decode(&extra); err != io.EOF {
		t.Errorf("stream should end after 2 messages, got %v", err)
	}
}

// TestEncoderRejects pins the encoder-side bounds: over-limit values never
// reach the wire.
func TestEncoderRejects(t *testing.T) {
	deep := &xmldoc.Elem{Name: "a"}
	tip := deep
	for i := 0; i < MaxDocDepth+1; i++ {
		c := &xmldoc.Elem{Name: "a"}
		tip.Children = []*xmldoc.Elem{c}
		tip = c
	}
	cases := []struct {
		name string
		m    *broker.Message
	}{
		{"nil xpe", &broker.Message{Type: broker.MsgSubscribe}},
		{"nil adv", &broker.Message{Type: broker.MsgAdvertise, AdvID: "a"}},
		{"nil resync", &broker.Message{Type: broker.MsgResync}},
		{"unknown type", &broker.Message{Type: broker.MsgType(99)}},
		{"raw+doc", &broker.Message{Type: broker.MsgPublish,
			Raw: []byte("<a/>"), Doc: &xmldoc.Document{Root: &xmldoc.Elem{Name: "a"}}}},
		{"deep doc", &broker.Message{Type: broker.MsgPublish, Doc: &xmldoc.Document{Root: deep}}},
		{"rootless doc", &broker.Message{Type: broker.MsgPublish, Doc: &xmldoc.Document{}}},
		{"huge raw", &broker.Message{Type: broker.MsgPublish, Raw: make([]byte, MaxRawDoc+1)}},
		{"long symbol", &broker.Message{Type: broker.MsgUnadvertise, AdvID: strings.Repeat("x", MaxName+1)}},
		{"negative stage", &broker.Message{Type: broker.MsgPublish, TraceID: "t",
			Hops: []trace.Hop{{Broker: "b", Stages: []trace.StageDur{{Stage: "s", Nanos: -1}}}}}},
		{"huge stage", &broker.Message{Type: broker.MsgPublish, TraceID: "t",
			Hops: []trace.Hop{{Broker: "b", Stages: []trace.StageDur{{Stage: "s", Nanos: MaxStageNanos + 1}}}}}},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := NewEncoder(&buf, DefaultLimits).Encode(tc.m); err == nil {
			t.Errorf("%s: encoder accepted it", tc.name)
		}
		if buf.Len() != 0 {
			t.Errorf("%s: rejected message leaked %d bytes to the writer", tc.name, buf.Len())
		}
	}
}

// corrupt builds one valid publish frame and returns its bytes (dictionary
// frame included) for mutation tests.
func validStream(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := NewEncoder(&buf, DefaultLimits)
	if err := enc.Encode(&broker.Message{
		Type: broker.MsgPublish,
		Pub:  xmldoc.Publication{DocID: 1, Path: []string{"inventory", "book"}},
	}); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

// TestDecoderRejectsHostileInput pins the decoder against the attacks the
// fuzz target searches for: each must produce an error, never a panic or a
// huge allocation.
func TestDecoderRejectsHostileInput(t *testing.T) {
	decode := func(b []byte) error {
		var m broker.Message
		return NewDecoder(bytes.NewReader(b), DefaultLimits).Decode(&m)
	}
	t.Run("empty frame", func(t *testing.T) {
		if err := decode([]byte{0x00}); err == nil {
			t.Error("accepted zero-length frame")
		}
	})
	t.Run("oversize frame length", func(t *testing.T) {
		b := appendUvarint(nil, uint64(MaxFrame)+1)
		if err := decode(b); err == nil {
			t.Error("accepted oversize frame length")
		}
	})
	t.Run("declared length never sent", func(t *testing.T) {
		// 1MB declared, 3 bytes sent: must error on EOF, not block a
		// gigantic allocation on the declaration.
		b := appendUvarint(nil, 1<<20)
		b = append(b, frameMsg, byte(broker.MsgHeartbeat), 0)
		if err := decode(b); err == nil {
			t.Error("accepted truncated frame")
		}
	})
	t.Run("unknown frame kind", func(t *testing.T) {
		if err := decode([]byte{1, 0x7f}); err == nil {
			t.Error("accepted unknown frame kind")
		}
	})
	t.Run("unknown dictionary id", func(t *testing.T) {
		// Unadvertise referencing symbol 5 with an empty dictionary.
		pl := []byte{frameMsg, byte(broker.MsgUnadvertise), 5}
		b := appendUvarint(nil, uint64(len(pl)))
		if err := decode(append(b, pl...)); err == nil || !strings.Contains(err.Error(), "dictionary") {
			t.Errorf("unknown id: err = %v", err)
		}
	})
	t.Run("dictionary gap", func(t *testing.T) {
		// Extension starting at id 7 when the dictionary is empty.
		pl := []byte{frameDict, 7, 1, 1, 'a'}
		b := appendUvarint(nil, uint64(len(pl)))
		if err := decode(append(b, pl...)); err == nil || !strings.Contains(err.Error(), "dictionary") {
			t.Errorf("gap: err = %v", err)
		}
	})
	t.Run("hostile element count", func(t *testing.T) {
		// A publish declaring 2^32 path elements inside a 16-byte frame.
		pl := []byte{frameMsg, byte(broker.MsgPublish), 0, 1, 0, 0}
		pl = appendUvarint(pl, 1<<32)
		b := appendUvarint(nil, uint64(len(pl)))
		if err := decode(append(b, pl...)); err == nil {
			t.Error("accepted 2^32-element path declaration")
		}
	})
	t.Run("trailing garbage in frame", func(t *testing.T) {
		pl := []byte{frameMsg, byte(broker.MsgHeartbeat), 0xde, 0xad}
		b := appendUvarint(nil, uint64(len(pl)))
		if err := decode(append(b, pl...)); err == nil || !strings.Contains(err.Error(), "trailing") {
			t.Errorf("trailing garbage: err = %v", err)
		}
	})
	t.Run("every truncation point", func(t *testing.T) {
		full := validStream(t)
		for i := 0; i < len(full); i++ {
			var m broker.Message
			err := NewDecoder(bytes.NewReader(full[:i]), DefaultLimits).Decode(&m)
			if err == nil {
				t.Fatalf("accepted stream truncated at %d/%d", i, len(full))
			}
		}
	})
	t.Run("every single-byte corruption", func(t *testing.T) {
		full := validStream(t)
		for i := 0; i < len(full); i++ {
			for _, delta := range []byte{1, 0x80, 0xff} {
				b := append([]byte(nil), full...)
				b[i] ^= delta
				var m broker.Message
				dec := NewDecoder(bytes.NewReader(b), DefaultLimits)
				// Either an error or a successful (differently-valued)
				// decode is fine; panics and runaway allocation are not.
				_ = dec.Decode(&m)
			}
		}
	})
}

// TestDecoderReuse pins the steady-state contract: decoding into a reused
// message on a dictionary-warm stream performs zero allocations for
// path-only publications.
func TestDecoderReuse(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf, DefaultLimits)
	m := &broker.Message{
		Type: broker.MsgPublish,
		Pub:  xmldoc.Publication{DocID: 1, Path: []string{"inventory", "book", "title"}},
	}
	const rounds = 50
	for i := 0; i < rounds; i++ {
		m.Pub.DocID = uint64(i)
		if err := enc.Encode(m); err != nil {
			t.Fatalf("Encode: %v", err)
		}
	}
	dec := NewDecoder(&buf, DefaultLimits)
	var got broker.Message
	if err := dec.Decode(&got); err != nil { // warm: dictionary + slices
		t.Fatalf("Decode: %v", err)
	}
	allocs := testing.AllocsPerRun(rounds-2, func() {
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("Decode: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state decode allocates %.1f/op, want 0", allocs)
	}
}

// TestResetKeepsDictionary pins Decoder.Reset semantics: swapping the byte
// source keeps the symbol dictionary, so a dictionary-warm frame decodes
// from a fresh reader — with or without the caller's own bufio wrapping.
func TestResetKeepsDictionary(t *testing.T) {
	m := &broker.Message{
		Type: broker.MsgPublish,
		Pub:  xmldoc.Publication{DocID: 9, Path: []string{"inventory", "book"}},
	}
	var warm, frame bytes.Buffer
	enc := NewEncoder(io.MultiWriter(&warm, &frame), DefaultLimits)
	if err := enc.Encode(m); err != nil { // dictionary frame + message
		t.Fatalf("Encode: %v", err)
	}
	frame.Reset()
	if err := enc.Encode(m); err != nil { // dictionary-warm frame only
		t.Fatalf("Encode: %v", err)
	}
	dec := NewDecoder(&warm, DefaultLimits)
	var got broker.Message
	if err := dec.Decode(&got); err != nil {
		t.Fatalf("warm Decode: %v", err)
	}
	for _, r := range []io.Reader{
		bytes.NewReader(frame.Bytes()),
		bufio.NewReader(bytes.NewReader(frame.Bytes())),
	} {
		dec.Reset(r)
		got = broker.Message{}
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("Decode after Reset: %v", err)
		}
		if got.Pub.DocID != 9 || !reflect.DeepEqual(got.Pub.Path, m.Pub.Path) {
			t.Errorf("after Reset got %+v, want %+v", got.Pub, m.Pub)
		}
	}
}

// TestPendingTracksQueue pins the batching writer's byte accounting:
// Pending grows with queued frames (including the dictionary extension of a
// first-seen symbol) and returns to zero after Flush.
func TestPendingTracksQueue(t *testing.T) {
	enc := NewEncoder(io.Discard, DefaultLimits)
	if got := enc.Pending(); got != 0 {
		t.Fatalf("Pending on fresh encoder = %d, want 0", got)
	}
	m := &broker.Message{
		Type: broker.MsgPublish,
		Pub:  xmldoc.Publication{DocID: 1, Path: []string{"inventory", "book"}},
	}
	if err := enc.Queue(m); err != nil {
		t.Fatalf("Queue: %v", err)
	}
	first := enc.Pending()
	if first == 0 {
		t.Fatal("Pending after Queue = 0, want > 0 (message + dictionary extension)")
	}
	if err := enc.Queue(m); err != nil {
		t.Fatalf("Queue: %v", err)
	}
	if second := enc.Pending(); second <= first {
		t.Errorf("Pending after second Queue = %d, want > %d", second, first)
	}
	if _, err := enc.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := enc.Pending(); got != 0 {
		t.Errorf("Pending after Flush = %d, want 0", got)
	}
}

// TestEncoderSteadyStateAllocs pins the encoder side of the same contract.
func TestEncoderSteadyStateAllocs(t *testing.T) {
	enc := NewEncoder(io.Discard, DefaultLimits)
	m := &broker.Message{
		Type: broker.MsgPublish,
		Pub:  xmldoc.Publication{DocID: 1, Path: []string{"inventory", "book", "title"}},
	}
	if err := enc.Encode(m); err != nil { // warm: dictionary + scratch
		t.Fatalf("Encode: %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := enc.Encode(m); err != nil {
			t.Fatalf("Encode: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state encode allocates %.1f/op, want 0", allocs)
	}
}

func TestEstimateSizeTracksEncoding(t *testing.T) {
	for i, m := range sampleMessages(t) {
		var buf bytes.Buffer
		enc := NewEncoder(&buf, DefaultLimits)
		if err := enc.Encode(m); err != nil {
			t.Fatalf("msg %d: Encode: %v", i, err)
		}
		est := EstimateSize(m)
		// Cold encoding carries the dictionary strings the estimate assumes
		// are warm, so actual ≥ estimate is normal on frame one; the
		// estimate must still be within 4× either way.
		if est <= 0 {
			t.Errorf("msg %d: estimate %d ≤ 0", i, est)
		}
		if actual := buf.Len(); est > 4*actual || actual > 4*est+64 {
			t.Errorf("msg %d: estimate %d vs actual %d — off by more than 4×", i, est, actual)
		}
	}
}

func TestEstimateSizeWarm(t *testing.T) {
	// On a warm link the estimate should be close to the real frame size.
	m := &broker.Message{
		Type: broker.MsgPublish,
		Pub:  xmldoc.Publication{DocID: 9, Path: []string{"inventory", "book", "title"}},
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf, DefaultLimits)
	if err := enc.Encode(m); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	buf.Reset()
	if err := enc.Encode(m); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	warm := buf.Len()
	est := EstimateSize(m)
	if diff := est - warm; diff < -8 || diff > 8 {
		t.Errorf("warm frame %d bytes, estimate %d — drifted past ±8", warm, est)
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), 1<<63 - 1, -1 << 63} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("unzigzag(zigzag(%d)) = %d", v, got)
		}
	}
}

func TestDictLimitEnforced(t *testing.T) {
	lim := DefaultLimits
	lim.MaxDict = 4
	enc := NewEncoder(io.Discard, lim)
	var err error
	for i := 0; i < 6 && err == nil; i++ {
		err = enc.Encode(&broker.Message{
			Type: broker.MsgPublish,
			Pub:  xmldoc.Publication{Path: []string{fmt.Sprintf("el%d", i)}},
		})
	}
	if err == nil {
		t.Error("encoder never hit MaxDict=4")
	}

	// Decoder side: a peer declaring past the limit loses the link.
	var pl []byte
	pl = append(pl, frameDict, 0)
	pl = appendUvarint(pl, 5)
	for i := 0; i < 5; i++ {
		pl = append(pl, 1, byte('a'+i))
	}
	b := appendUvarint(nil, uint64(len(pl)))
	var m broker.Message
	if err := NewDecoder(bytes.NewReader(append(b, pl...)), lim).Decode(&m); err == nil {
		t.Error("decoder accepted a dictionary past MaxDict")
	}
}

func TestDeepEqualRoundTripDocs(t *testing.T) {
	// Structural equality on the parsed-document payload, beyond the
	// fingerprint: Attrs order and child pointers must reconstruct exactly.
	doc, err := xmldoc.Parse([]byte(`<a x="1" y="2"><b>text</b><c><d/></c>tail</a>`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var buf bytes.Buffer
	if err := NewEncoder(&buf, DefaultLimits).Encode(&broker.Message{
		Type: broker.MsgPublish, Doc: doc,
	}); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var got broker.Message
	if err := NewDecoder(&buf, DefaultLimits).Decode(&got); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(doc.Root, got.Doc.Root) {
		t.Errorf("document tree not deeply equal:\nsent %#v\ngot  %#v", doc.Root, got.Doc.Root)
	}
}

func BenchmarkWireEncode(b *testing.B) {
	m := &broker.Message{
		Type: broker.MsgPublish,
		Pub:  xmldoc.Publication{DocID: 1, Path: []string{"inventory", "book", "title"}},
	}
	enc := NewEncoder(io.Discard, DefaultLimits)
	if err := enc.Encode(m); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecode(b *testing.B) {
	m := &broker.Message{
		Type: broker.MsgPublish,
		Pub:  xmldoc.Publication{DocID: 1, Path: []string{"inventory", "book", "title"}},
	}
	var one bytes.Buffer
	enc := NewEncoder(&one, DefaultLimits)
	if err := enc.Encode(m); err != nil { // dictionary frame + message
		b.Fatal(err)
	}
	warmDict := append([]byte(nil), one.Bytes()...)
	one.Reset()
	if err := enc.Encode(m); err != nil { // warm frame only
		b.Fatal(err)
	}
	frame := append([]byte(nil), one.Bytes()...)

	dec := NewDecoder(bytes.NewReader(warmDict), DefaultLimits)
	var got broker.Message
	if err := dec.Decode(&got); err != nil {
		b.Fatal(err)
	}
	r := bytes.NewReader(frame)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		dec.Reset(r)
		if err := dec.Decode(&got); err != nil {
			b.Fatal(err)
		}
	}
}
