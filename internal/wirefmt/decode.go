package wirefmt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/advert"
	"repro/internal/broker"
	"repro/internal/trace"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// Decoder reads binary frames from one link. Not safe for concurrent use —
// one connection has one read loop.
//
// Every declared length is validated against the Limits AND against the
// bytes remaining in the frame before anything is allocated, so a hostile
// peer cannot make the decoder allocate more than it actually sent. The
// frame buffer itself grows only as bytes arrive off the wire (never to a
// declared length the peer hasn't paid for) and is reused across frames, so
// steady-state decode of dictionary-hit publications performs no
// allocations beyond the message's own slices — and none at all when the
// caller reuses the target message (see Decode).
type Decoder struct {
	r   *bufio.Reader
	lim Limits

	dict []string

	buf []byte // reused frame buffer
	pb  []byte // payload of the frame being parsed (slice of buf)
	off int    // parse cursor into pb

	elems int // element budget of the document being parsed
}

// NewDecoder builds a decoder for one connection with an empty symbol
// dictionary. If r is not already a *bufio.Reader it is wrapped in one.
func NewDecoder(r io.Reader, lim Limits) *Decoder {
	return &Decoder{r: asBufio(r), lim: lim}
}

func asBufio(r io.Reader) *bufio.Reader {
	if br, ok := r.(*bufio.Reader); ok {
		return br
	}
	return bufio.NewReader(r)
}

// Reset swaps the byte source, keeping the dictionary and buffers — the
// steady-state-reuse hook benchmarks and tests use. It is NOT a new link:
// real reconnects build a fresh Decoder (fresh dictionary).
func (d *Decoder) Reset(r io.Reader) {
	if br, ok := r.(*bufio.Reader); ok {
		d.r = br
		return
	}
	d.r.Reset(r)
}

// DictLen returns the number of symbols received so far (observability).
func (d *Decoder) DictLen() int { return len(d.dict) }

// Decode reads frames until one complete message arrives (consuming any
// dictionary-extension frames on the way) and fills m with it. m is
// overwritten; its Path, Attrs, and Hops slice capacities are reused, so a
// caller that retains the previous decode's message must pass a fresh m.
func (d *Decoder) Decode(m *broker.Message) error {
	for {
		n, err := binary.ReadUvarint(d.r)
		if err != nil {
			return err
		}
		if n == 0 || n > uint64(d.lim.MaxFrame) {
			return fmt.Errorf("wirefmt: frame length %d outside (0, %d]", n, d.lim.MaxFrame)
		}
		if err := d.readFrame(int(n)); err != nil {
			return err
		}
		kind, err := d.b()
		if err != nil {
			return err
		}
		switch kind {
		case frameDict:
			if err := d.dictExt(); err != nil {
				return err
			}
		case frameMsg:
			if err := d.message(m); err != nil {
				return err
			}
			if d.off != len(d.pb) {
				return fmt.Errorf("wirefmt: %d trailing bytes in frame", len(d.pb)-d.off)
			}
			return nil
		default:
			return fmt.Errorf("wirefmt: unknown frame kind %#x", kind)
		}
	}
}

// readFrame fills d.pb with n payload bytes. The buffer grows in bounded
// chunks as bytes actually arrive, so a huge declared length costs the
// sender the traffic before it costs this process the memory.
func (d *Decoder) readFrame(n int) error {
	const chunk = 64 << 10
	buf := d.buf[:0]
	for got := 0; got < n; {
		step := n - got
		if step > chunk {
			step = chunk
		}
		if cap(buf) < got+step {
			grown := make([]byte, got, growCap(cap(buf), got+step, n))
			copy(grown, buf[:got])
			buf = grown
		}
		buf = buf[:got+step]
		if _, err := io.ReadFull(d.r, buf[got:]); err != nil {
			d.buf = buf[:0]
			return err
		}
		got += step
	}
	d.buf = buf[:0]
	d.pb = buf[:n]
	d.off = 0
	return nil
}

// growCap doubles cap toward need without overshooting the frame's total.
func growCap(cur, need, total int) int {
	c := cur * 2
	if c < need {
		c = need
	}
	if c < 4096 {
		c = 4096
	}
	if c > total {
		c = total
	}
	if c < need {
		c = need
	}
	return c
}

// --- payload cursor helpers ---

func (d *Decoder) remaining() int { return len(d.pb) - d.off }

func (d *Decoder) b() (byte, error) {
	if d.off >= len(d.pb) {
		return 0, errTruncated
	}
	c := d.pb[d.off]
	d.off++
	return c, nil
}

func (d *Decoder) u() (uint64, error) {
	v, n := binary.Uvarint(d.pb[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wirefmt: bad varint")
	}
	d.off += n
	return v, nil
}

func (d *Decoder) sv() (int64, error) {
	v, err := d.u()
	return unzigzag(v), err
}

// count reads a sequence length and validates it against max and against
// the frame's remaining bytes at minBytes per element, BEFORE the caller
// allocates anything proportional to it.
func (d *Decoder) count(max, minBytes int, what string) (int, error) {
	v, err := d.u()
	if err != nil {
		return 0, err
	}
	n := int(v)
	if v > uint64(max) {
		return 0, fmt.Errorf("wirefmt: %d %s exceeds %d", v, what, max)
	}
	if minBytes > 0 && n > d.remaining()/minBytes {
		return 0, fmt.Errorf("wirefmt: %d %s in a %d-byte remainder", v, what, d.remaining())
	}
	return n, nil
}

func (d *Decoder) take(n int) ([]byte, error) {
	if n > d.remaining() {
		return nil, errTruncated
	}
	b := d.pb[d.off : d.off+n]
	d.off += n
	return b, nil
}

// str reads a length-prefixed string bounded by max (≤0 means bounded only
// by the frame).
func (d *Decoder) str(max int) (string, error) {
	v, err := d.u()
	if err != nil {
		return "", err
	}
	if max > 0 && v > uint64(max) {
		return "", fmt.Errorf("wirefmt: string of %d bytes exceeds %d", v, max)
	}
	b, err := d.take(int(v))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// sym resolves a dictionary reference. An id the sender never declared is a
// protocol violation.
func (d *Decoder) sym() (string, error) {
	v, err := d.u()
	if err != nil {
		return "", err
	}
	if v >= uint64(len(d.dict)) {
		return "", fmt.Errorf("wirefmt: unknown dictionary id %d (dictionary has %d)", v, len(d.dict))
	}
	return d.dict[v], nil
}

// dictExt applies one dictionary-extension frame. Ids are sequential by
// construction; a gap or overlap means the streams disagree and the link is
// torn down.
func (d *Decoder) dictExt() error {
	first, err := d.u()
	if err != nil {
		return err
	}
	if first != uint64(len(d.dict)) {
		return fmt.Errorf("wirefmt: dictionary extension at id %d, expected %d", first, len(d.dict))
	}
	n, err := d.count(d.lim.MaxDict-len(d.dict), 1, "dictionary entries")
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		s, err := d.str(d.lim.MaxName)
		if err != nil {
			return err
		}
		d.dict = append(d.dict, s)
	}
	if d.off != len(d.pb) {
		return fmt.Errorf("wirefmt: %d trailing bytes in dictionary frame", len(d.pb)-d.off)
	}
	return nil
}

// --- message bodies ---

func (d *Decoder) message(m *broker.Message) error {
	// Recycle the big slice capacities, then zero everything else.
	path := m.Pub.Path[:0]
	attrs := m.Pub.Attrs[:0]
	hops := m.Hops[:0]
	*m = broker.Message{}
	t, err := d.b()
	if err != nil {
		return err
	}
	m.Type = broker.MsgType(t)
	switch m.Type {
	case broker.MsgSubscribe, broker.MsgUnsubscribe:
		m.XPE, err = d.xpe()
		return err
	case broker.MsgAdvertise:
		if m.AdvID, err = d.advID(); err != nil {
			return err
		}
		m.Adv, err = d.adv()
		return err
	case broker.MsgUnadvertise:
		m.AdvID, err = d.advID()
		return err
	case broker.MsgPublish:
		return d.publish(m, path, attrs, hops)
	case broker.MsgResync:
		m.Resync, err = d.resync()
		return err
	case broker.MsgHeartbeat:
		return nil
	case broker.MsgSubscribeDurable:
		if m.Durable, err = d.durName(); err != nil {
			return err
		}
		m.XPE, err = d.xpe()
		return err
	case broker.MsgAck, broker.MsgReplayBegin, broker.MsgReplayEnd:
		if m.Durable, err = d.durName(); err != nil {
			return err
		}
		m.Seq, err = d.u()
		return err
	default:
		return fmt.Errorf("wirefmt: unknown message type %d", t)
	}
}

// advID is a dictionary symbol with the gob path's non-empty invariant.
func (d *Decoder) advID() (string, error) {
	id, err := d.sym()
	if err != nil {
		return "", err
	}
	if id == "" {
		return "", fmt.Errorf("wirefmt: empty advertisement id")
	}
	return id, nil
}

// durName is a dictionary symbol naming a durable subscription; it may
// never be empty where it appears.
func (d *Decoder) durName() (string, error) {
	name, err := d.sym()
	if err != nil {
		return "", err
	}
	if name == "" {
		return "", fmt.Errorf("wirefmt: empty durable name")
	}
	return name, nil
}

func (d *Decoder) xpe() (*xpath.XPE, error) {
	flags, err := d.b()
	if err != nil {
		return nil, err
	}
	n, err := d.count(d.lim.MaxSteps, 3, "steps")
	if err != nil {
		return nil, err
	}
	x := &xpath.XPE{Relative: flags&xpeFlagRelative != 0}
	if n > 0 {
		x.Steps = make([]xpath.Step, n)
	}
	for i := 0; i < n; i++ {
		a, err := d.b()
		if err != nil {
			return nil, err
		}
		if a > byte(xpath.Descendant) {
			return nil, fmt.Errorf("wirefmt: unknown axis %d", a)
		}
		name, err := d.sym()
		if err != nil {
			return nil, err
		}
		preds, err := d.str(0)
		if err != nil {
			return nil, err
		}
		x.Steps[i] = xpath.Step{Axis: xpath.Axis(a), Name: name, Preds: preds}
	}
	return x, nil
}

func (d *Decoder) adv() (*advert.Advertisement, error) {
	d.elems = 0 // reused as the advertisement item budget
	items, err := d.advItems(0)
	if err != nil {
		return nil, err
	}
	if d.elems == 0 {
		return nil, fmt.Errorf("wirefmt: empty advertisement")
	}
	return &advert.Advertisement{Items: items}, nil
}

func (d *Decoder) advItems(depth int) ([]advert.Item, error) {
	if depth > d.lim.MaxAdvDepth {
		return nil, fmt.Errorf("wirefmt: advertisement groups nested deeper than %d", d.lim.MaxAdvDepth)
	}
	n, err := d.count(d.lim.MaxAdvItems-d.elems, 2, "advertisement items")
	if err != nil {
		return nil, err
	}
	if n == 0 && depth > 0 {
		return nil, fmt.Errorf("wirefmt: empty advertisement group")
	}
	var items []advert.Item
	if n > 0 {
		items = make([]advert.Item, n)
	}
	for i := 0; i < n; i++ {
		tag, err := d.b()
		if err != nil {
			return nil, err
		}
		d.elems++
		switch tag {
		case 0:
			name, err := d.sym()
			if err != nil {
				return nil, err
			}
			items[i] = advert.Item{Name: name}
		case 1:
			group, err := d.advItems(depth + 1)
			if err != nil {
				return nil, err
			}
			items[i] = advert.Item{Group: group}
		default:
			return nil, fmt.Errorf("wirefmt: unknown advertisement item tag %d", tag)
		}
	}
	return items, nil
}

func (d *Decoder) publish(m *broker.Message, path []string, attrs []map[string]string, hops []trace.Hop) error {
	flags, err := d.b()
	if err != nil {
		return err
	}
	if flags&pubFlagDoc != 0 && flags&pubFlagRaw != 0 {
		return fmt.Errorf("wirefmt: publication carrying both raw and parsed document")
	}
	if m.Pub.DocID, err = d.u(); err != nil {
		return err
	}
	pid, err := d.sv()
	if err != nil {
		return err
	}
	m.Pub.PathID = int(pid)
	if m.Stamp, err = d.sv(); err != nil {
		return err
	}
	n, err := d.count(d.lim.MaxPath, 1, "path elements")
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		el, err := d.sym()
		if err != nil {
			return err
		}
		path = append(path, el)
	}
	if n > 0 {
		m.Pub.Path = path
	}
	if flags&pubFlagAttrs != 0 {
		na, err := d.count(d.lim.MaxPath, 1, "attribute maps")
		if err != nil {
			return err
		}
		// The recycled attrs slice may still hold last message's maps past
		// its truncated length; positionally matching ones are cleared and
		// refilled instead of reallocated, so a steady stream of
		// identically-shaped publications decodes without touching the heap.
		old := attrs[:cap(attrs)]
		for i := 0; i < na; i++ {
			v, err := d.count(d.remaining(), 2, "attribute pairs")
			if err != nil {
				return err
			}
			if v == 0 {
				attrs = append(attrs, nil)
				continue
			}
			var am map[string]string
			if i < len(old) && old[i] != nil {
				am = old[i]
				clear(am)
			} else {
				am = make(map[string]string, v-1)
			}
			for j := 0; j < v-1; j++ {
				k, err := d.sym()
				if err != nil {
					return err
				}
				val, err := d.str(0)
				if err != nil {
					return err
				}
				am[k] = val
			}
			attrs = append(attrs, am)
		}
		m.Pub.Attrs = attrs
	}
	if flags&pubFlagDoc != 0 {
		d.elems = 0
		root, err := d.elem(0)
		if err != nil {
			return err
		}
		m.Doc = &xmldoc.Document{Root: root}
	}
	if flags&pubFlagRaw != 0 {
		nr, err := d.count(d.lim.MaxRawDoc, 1, "raw bytes")
		if err != nil {
			return err
		}
		if nr == 0 {
			return fmt.Errorf("wirefmt: empty raw body")
		}
		b, err := d.take(nr)
		if err != nil {
			return err
		}
		// Copied out: the frame buffer is reused for the next frame while
		// the broker still holds (and forwards) these bytes.
		m.Raw = append([]byte(nil), b...)
	}
	if flags&pubFlagTrace != 0 {
		if m.TraceID, err = d.str(d.lim.MaxName); err != nil {
			return err
		}
		nh, err := d.count(d.lim.MaxHops, 3, "hops")
		if err != nil {
			return err
		}
		for i := 0; i < nh; i++ {
			h, err := d.hop()
			if err != nil {
				return err
			}
			hops = append(hops, h)
		}
		if nh > 0 {
			m.Hops = hops
		}
	}
	if flags&pubFlagDurable != 0 {
		if m.Durable, err = d.durName(); err != nil {
			return err
		}
		if m.Seq, err = d.u(); err != nil {
			return err
		}
	}
	return nil
}

func (d *Decoder) hop() (trace.Hop, error) {
	var h trace.Hop
	var err error
	if h.Broker, err = d.sym(); err != nil {
		return h, err
	}
	if len(h.Broker) > d.lim.MaxName {
		return h, fmt.Errorf("wirefmt: hop broker id of %d bytes exceeds %d", len(h.Broker), d.lim.MaxName)
	}
	if h.UnixNano, err = d.sv(); err != nil {
		return h, err
	}
	if h.Epoch, err = d.u(); err != nil {
		return h, err
	}
	ns, err := d.count(d.lim.MaxHopStages, 2, "hop stages")
	if err != nil {
		return h, err
	}
	if ns > 0 {
		h.Stages = make([]trace.StageDur, ns)
	}
	for i := 0; i < ns; i++ {
		stage, err := d.sym()
		if err != nil {
			return h, err
		}
		if len(stage) > d.lim.MaxStageName {
			return h, fmt.Errorf("wirefmt: hop stage name of %d bytes exceeds %d", len(stage), d.lim.MaxStageName)
		}
		nanos, err := d.sv()
		if err != nil {
			return h, err
		}
		if nanos < 0 || nanos > d.lim.MaxStageNanos {
			return h, fmt.Errorf("wirefmt: hop stage duration %dns outside [0, %dns]", nanos, d.lim.MaxStageNanos)
		}
		h.Stages[i] = trace.StageDur{Stage: stage, Nanos: nanos}
	}
	return h, nil
}

func (d *Decoder) elem(depth int) (*xmldoc.Elem, error) {
	if depth >= d.lim.MaxDocDepth {
		return nil, fmt.Errorf("wirefmt: document deeper than %d", d.lim.MaxDocDepth)
	}
	if d.elems++; d.elems > d.lim.MaxDocElems {
		return nil, fmt.Errorf("wirefmt: document with more than %d elements", d.lim.MaxDocElems)
	}
	el := &xmldoc.Elem{}
	var err error
	if el.Name, err = d.sym(); err != nil {
		return nil, err
	}
	na, err := d.count(d.remaining(), 2, "element attributes")
	if err != nil {
		return nil, err
	}
	if na > 0 {
		el.Attrs = make([]xmldoc.Attr, na)
	}
	for i := 0; i < na; i++ {
		name, err := d.sym()
		if err != nil {
			return nil, err
		}
		val, err := d.str(0)
		if err != nil {
			return nil, err
		}
		el.Attrs[i] = xmldoc.Attr{Name: name, Value: val}
	}
	if el.Text, err = d.str(0); err != nil {
		return nil, err
	}
	nc, err := d.count(d.remaining(), 2, "child elements")
	if err != nil {
		return nil, err
	}
	if nc > 0 {
		el.Children = make([]*xmldoc.Elem, nc)
	}
	for i := 0; i < nc; i++ {
		c, err := d.elem(depth + 1)
		if err != nil {
			return nil, err
		}
		el.Children[i] = c
	}
	return el, nil
}

func (d *Decoder) resync() (*broker.ResyncState, error) {
	r := &broker.ResyncState{}
	na, err := d.count(d.lim.MaxResync, 2, "resync advertisements")
	if err != nil {
		return nil, err
	}
	for i := 0; i < na; i++ {
		id, err := d.advID()
		if err != nil {
			return nil, err
		}
		a, err := d.adv()
		if err != nil {
			return nil, err
		}
		r.Advs = append(r.Advs, broker.ResyncAdv{ID: id, Adv: a})
	}
	ns, err := d.count(d.lim.MaxResync, 2, "resync subscriptions")
	if err != nil {
		return nil, err
	}
	for i := 0; i < ns; i++ {
		x, err := d.xpe()
		if err != nil {
			return nil, err
		}
		r.Subs = append(r.Subs, x)
	}
	return r, nil
}
