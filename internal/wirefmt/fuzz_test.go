package wirefmt

import (
	"bytes"
	"testing"

	"repro/internal/broker"
)

// FuzzDecode throws arbitrary bytes at the decoder. The contract under
// hostile input is: an error (or a clean decode, if the mutation happens to
// stay valid), never a panic, and never an allocation larger than the input
// actually pays for — the tight Limits make the fuzzer's over-declared
// lengths cheap to detect.
func FuzzDecode(f *testing.F) {
	for _, m := range sampleMessages(f) {
		var buf bytes.Buffer
		enc := NewEncoder(&buf, DefaultLimits)
		if err := enc.Encode(m); err != nil {
			f.Fatalf("seed Encode: %v", err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(appendUvarint(nil, uint64(MaxFrame)))

	lim := DefaultLimits
	lim.MaxFrame = 1 << 16 // keep per-exec work bounded
	lim.MaxRawDoc = 1 << 15
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data), lim)
		var m broker.Message
		for dec.Decode(&m) == nil {
			m = broker.Message{}
		}
	})
}
