package pmatch

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/symtab"
	"repro/internal/xpath"
)

// buildFrom compiles a set of expressions, using each expression's String as
// its payload.
func buildFrom(exprs ...string) (*Automaton, []*xpath.XPE) {
	b := NewBuilder()
	xs := make([]*xpath.XPE, len(exprs))
	for i, e := range exprs {
		xs[i] = xpath.MustParse(e)
		b.Add(xs[i], e)
	}
	return b.Build(), xs
}

// structuralSet runs MatchStructural and returns the sorted payload strings.
func structuralSet(a *Automaton, path []symtab.Sym) []string {
	var got []string
	a.MatchStructural(path, func(d any) { got = append(got, d.(string)) })
	sort.Strings(got)
	return got
}

// flatStructural is the per-XPE oracle: every expression evaluated
// independently with MatchesSymPath.
func flatStructural(xs []*xpath.XPE, path []symtab.Sym) []string {
	var got []string
	for _, x := range xs {
		if x.MatchesSymPath(path) {
			got = append(got, x.String())
		}
	}
	sort.Strings(got)
	return got
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMatchAgainstFlatOracle(t *testing.T) {
	exprs := []string{
		"/a", "/a/b", "/a/b/c", "/a/*/c", "/a//c", "//c", "//b/c",
		"a", "b/c", "*/c", "/x//y//z", "//*", "/*", "/a/b/c/d",
		"/a//b//c", "c//d",
	}
	auto, xs := buildFrom(exprs...)
	paths := [][]string{
		{"a"}, {"a", "b"}, {"a", "b", "c"}, {"a", "x", "c"},
		{"a", "b", "c", "d"}, {"c"}, {"x", "y", "z"}, {"x", "q", "y", "q", "z"},
		{"b", "c"}, {"q"}, {"a", "a", "b", "b", "c", "c"},
		{"c", "x", "d"}, {"a", "b", "x", "c"}, {},
	}
	for _, p := range paths {
		sp := symtab.InternPath(p)
		got := structuralSet(auto, sp)
		want := flatStructural(xs, sp)
		if !eq(got, want) {
			t.Errorf("path %v: automaton=%v flat=%v", p, got, want)
		}
	}
}

func TestMatchUnknownSymbolsOnlyMatchWildcards(t *testing.T) {
	auto, xs := buildFrom("/a/b", "/a/*", "//b", "/*/*")
	// LookupPath maps never-interned names to None; only wildcard steps may
	// match those elements, exactly like the per-XPE matchers.
	path := symtab.LookupPath([]string{"a", "never-interned-name-xyz"})
	got := structuralSet(auto, path)
	want := flatStructural(xs, path)
	if !eq(got, want) {
		t.Fatalf("automaton=%v flat=%v", got, want)
	}
	if len(got) != 2 { // "/a/*" and "/*/*"
		t.Fatalf("want exactly the wildcard matches, got %v", got)
	}
}

func TestMatchLiteralStarElement(t *testing.T) {
	// A path element literally named "*" interns to the Wildcard symbol; a
	// concrete step must not match it, a wildcard step must.
	auto, xs := buildFrom("/a/b", "/a/*")
	path := symtab.InternPath([]string{"a", "*"})
	got := structuralSet(auto, path)
	want := flatStructural(xs, path)
	if !eq(got, want) || !eq(got, []string{"/a/*"}) {
		t.Fatalf("automaton=%v flat=%v", got, want)
	}
}

func TestMatchPredicatePostFilter(t *testing.T) {
	b := NewBuilder()
	xEn := xpath.MustParse(`/claim[@lang='en']/detail`)
	xAny := xpath.MustParse(`/claim/detail`)
	b.Add(xEn, "en")
	b.Add(xAny, "any")
	auto := b.Build()

	path := symtab.InternPath([]string{"claim", "detail"})
	collect := func(attrs []map[string]string) []string {
		var got []string
		auto.Match(path, attrs, func(d any) { got = append(got, d.(string)) })
		sort.Strings(got)
		return got
	}
	if got := collect([]map[string]string{{"lang": "en"}, nil}); !eq(got, []string{"any", "en"}) {
		t.Fatalf("matching attrs: got %v", got)
	}
	if got := collect([]map[string]string{{"lang": "fr"}, nil}); !eq(got, []string{"any"}) {
		t.Fatalf("non-matching attrs: got %v", got)
	}
	if got := collect(nil); !eq(got, []string{"any"}) {
		t.Fatalf("nil attrs must fail predicates: got %v", got)
	}
	// MatchStructural ignores predicates entirely.
	var structural []string
	auto.MatchStructural(path, func(d any) { structural = append(structural, d.(string)) })
	sort.Strings(structural)
	if !eq(structural, []string{"any", "en"}) {
		t.Fatalf("structural: got %v", structural)
	}
}

func TestDuplicateExpressionsEachReported(t *testing.T) {
	b := NewBuilder()
	b.Add(xpath.MustParse("/a/b"), "first")
	b.Add(xpath.MustParse("/a/b"), "second")
	auto := b.Build()
	var got []string
	auto.MatchStructural(symtab.InternPath([]string{"a", "b"}), func(d any) { got = append(got, d.(string)) })
	sort.Strings(got)
	if !eq(got, []string{"first", "second"}) {
		t.Fatalf("got %v", got)
	}
	// Shared accept state, two entries.
	if s := auto.Stats(); s.Entries != 2 || s.AcceptStates != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestEntryReportedOncePerRun(t *testing.T) {
	// A relative expression can match at several start positions; the entry
	// must still be visited exactly once.
	b := NewBuilder()
	b.Add(xpath.MustParse("a"), "rel-a")
	auto := b.Build()
	var n int
	auto.MatchStructural(symtab.InternPath([]string{"a", "a", "a"}), func(any) { n++ })
	if n != 1 {
		t.Fatalf("visited %d times, want 1", n)
	}
}

func TestPrefixSharing(t *testing.T) {
	// "/a/b/c" and "/a/b/d" share the "/a/b" spine: 1 start + 2 shared + 2
	// distinct = 5 states. A third expression "/a/b" adds no state at all.
	b := NewBuilder()
	b.Add(xpath.MustParse("/a/b/c"), 1)
	b.Add(xpath.MustParse("/a/b/d"), 2)
	b.Add(xpath.MustParse("/a/b"), 3)
	s := b.Build().Stats()
	if s.States != 5 {
		t.Fatalf("want 5 states, got %+v", s)
	}
	if s.Entries != 3 || s.AcceptStates != 3 {
		t.Fatalf("stats %+v", s)
	}
}

func TestSkipStateSharing(t *testing.T) {
	// "//a" and "//b" share the start state's skip state.
	b := NewBuilder()
	b.Add(xpath.MustParse("//a"), 1)
	b.Add(xpath.MustParse("//b"), 2)
	b.Add(xpath.MustParse("c"), 3) // relative: same skip state again
	s := b.Build().Stats()
	// start + skip + 3 accept states
	if s.States != 5 {
		t.Fatalf("want 5 states, got %+v", s)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	empty := NewBuilder().Build()
	empty.MatchStructural(symtab.InternPath([]string{"a"}), func(any) {
		t.Fatal("empty automaton must match nothing")
	})
	if s := empty.Stats(); s.States != 1 || s.Entries != 0 {
		t.Fatalf("stats %+v", s)
	}

	b := NewBuilder()
	b.Add(nil, "nil")                    // ignored
	b.Add(&xpath.XPE{}, "zero")          // zero steps: matches nothing
	b.Add(xpath.New(true), "zero-steps") // ditto
	if b.Len() != 0 {
		t.Fatalf("degenerate adds must be ignored, len=%d", b.Len())
	}
	auto := b.Build()
	auto.MatchStructural(symtab.InternPath([]string{"a"}), func(any) {
		t.Fatal("degenerate entries must match nothing")
	})
	// Empty path matches nothing either.
	full, _ := buildFrom("/a", "a", "//a")
	full.MatchStructural(nil, func(any) { t.Fatal("empty path must match nothing") })
}

func TestHandBuiltRelativeDescendantFirstStep(t *testing.T) {
	// Parse never produces a relative XPE whose first axis is Descendant,
	// but New can; its language equals the plain relative form.
	x := xpath.New(true, xpath.Step{Axis: xpath.Descendant, Name: "a"}, xpath.Step{Axis: xpath.Child, Name: "b"})
	b := NewBuilder()
	b.Add(x, "x")
	auto := b.Build()
	for _, tc := range []struct {
		path []string
		want bool
	}{
		{[]string{"a", "b"}, true},
		{[]string{"q", "a", "b"}, true},
		{[]string{"a", "q", "b"}, false},
	} {
		sp := symtab.InternPath(tc.path)
		var hit bool
		auto.MatchStructural(sp, func(any) { hit = true })
		if hit != tc.want {
			t.Errorf("path %v: automaton=%v want %v", tc.path, hit, tc.want)
		}
		if flat := x.MatchesSymPath(sp); flat != tc.want {
			t.Errorf("path %v: oracle disagrees (%v)", tc.path, flat)
		}
	}
}

func TestConcurrentMatch(t *testing.T) {
	exprs := []string{"/a/b", "/a//c", "//b/c", "a", "*/c", "/a/*/c/d"}
	auto, xs := buildFrom(exprs...)
	paths := make([][]symtab.Sym, 0, 16)
	for _, p := range [][]string{
		{"a", "b"}, {"a", "b", "c"}, {"a", "x", "c", "d"}, {"b", "c"},
		{"q", "a", "b", "c"}, {"a"}, {"x"},
	} {
		paths = append(paths, symtab.InternPath(p))
	}
	want := make([][]string, len(paths))
	for i, p := range paths {
		want[i] = flatStructural(xs, p)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				i := iter % len(paths)
				if got := structuralSet(auto, paths[i]); !eq(got, want[i]) {
					t.Errorf("path %d: got %v want %v", i, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestStatsEdges(t *testing.T) {
	b := NewBuilder()
	b.Add(xpath.MustParse("/a//b"), 1)
	s := b.Build().Stats()
	// start --a--> s1 (eps)--> skip(self-loop) --b--> accept:
	// edges = a, eps, self-loop, b = 4; states = start, s1, skip, accept = 4.
	if s.States != 4 || s.Edges != 4 || s.AcceptStates != 1 {
		t.Fatalf("stats %+v", s)
	}
}

// TestDeepSharedWorkload pins the automaton on a larger mixed workload where
// the frontier stays wide (many live skip states).
func TestDeepSharedWorkload(t *testing.T) {
	var exprs []string
	for i := 0; i < 8; i++ {
		exprs = append(exprs,
			fmt.Sprintf("/r/s%d", i),
			fmt.Sprintf("//s%d/t", i),
			fmt.Sprintf("s%d//u", i),
			fmt.Sprintf("/r/*/s%d//t//u", i),
		)
	}
	auto, xs := buildFrom(exprs...)
	paths := [][]string{
		{"r", "s3", "t"},
		{"r", "x", "s5", "q", "t", "q", "u"},
		{"s1", "a", "b", "u"},
		{"r", "s0", "s1", "s2", "t", "u"},
	}
	for _, p := range paths {
		sp := symtab.InternPath(p)
		if got, want := structuralSet(auto, sp), flatStructural(xs, sp); !eq(got, want) {
			t.Errorf("path %v: automaton=%v flat=%v", p, got, want)
		}
	}
}
