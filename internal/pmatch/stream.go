package pmatch

import (
	"repro/internal/symtab"
	"repro/internal/xpath"
)

// This file adds the streaming execution mode of the shared automaton: a
// Cursor runs the same NFA over a document's element OPEN/CLOSE events
// instead of over one flattened root-to-leaf path. The frontier of active
// states is kept per open element — Enter computes the child frontier from
// the parent's exactly like one step of Automaton.run, Leave discards it —
// so a whole document is matched in a single pre-order traversal without
// ever materialising its paths. The language is identical by construction:
// the frontier reached after Enter(e1)...Enter(ek) is the frontier run()
// reaches after consuming the path [e1..ek], and every root-to-node path of
// the document is exactly one such Enter chain.
//
// Acceptance differs from run() only in WHEN predicates are evaluated.
// run() post-filters a predicate-carrying entry once per path with the
// whole path in hand; a Cursor sees paths incrementally, so it reports the
// entry to the visitor at every structural accept and lets the visitor
// decide (returning true settles the entry for the rest of the document,
// false keeps it eligible at later accepts). A visitor that evaluates
// MatchesSymPathAttrs against the current root-to-node stack and settles on
// success computes exactly the union-over-paths verdict of the per-path
// runs: every stack prefix at an accept event is a real root-to-node path
// prefix, and every position at which an expression completes on some path
// generates an accept event on that path's Enter chain.

// AcceptFunc receives one structural accept event: entry's expression x
// completed at the element just entered. Returning true settles the entry —
// it is not reported again for the rest of the run; returning false keeps
// it eligible (used by predicate post-filters that could not yet confirm
// the match). data is the payload registered with Builder.Add.
type AcceptFunc func(x *xpath.XPE, hasPreds bool, data any) bool

// Cursor is a stack-shaped execution of the automaton over a document's
// element events. Obtain one with Automaton.Cursor, drive it with
// Enter/Leave mirroring the document's element nesting, and return it with
// Release. A Cursor is not safe for concurrent use; distinct Cursors on one
// Automaton are.
type Cursor struct {
	a *Automaton
	// frontier holds the active state sets of all open depths back to back;
	// offs[d] is the start of depth d's set (depth 0 is the start closure).
	// Leave is two truncations — the document stack IS the NFA state.
	frontier []int32
	offs     []int32
	// Epoch-stamped dedup, as in scratch: states per position (one Enter is
	// one position), entries per run.
	stateStamp []uint32
	entryStamp []uint32
	stateEpoch uint32
	entryEpoch uint32
}

// Cursor returns a pooled cursor positioned at the document root (depth 0,
// before any Enter): the start state and its epsilon closure are active.
func (a *Automaton) Cursor() *Cursor {
	c := a.cursors.Get().(*Cursor)
	c.Reset()
	return c
}

// Release returns the cursor to its automaton's pool. The cursor must not
// be used afterwards.
func (c *Cursor) Release() { c.a.cursors.Put(c) }

// Reset rewinds the cursor to the root of a new document. Entries settled
// in the previous document become eligible again.
func (c *Cursor) Reset() {
	c.frontier = c.frontier[:0]
	c.offs = c.offs[:0]
	c.entryEpoch++
	if c.entryEpoch == 0 { // epoch wrapped: stale stamps could collide
		clearStamps(c.entryStamp)
		c.entryEpoch = 1
	}
	c.beginPosition()
	c.offs = append(c.offs, 0)
	// Depth 0: the start state and, by epsilon, its skip state. No entry can
	// accept here (expressions have at least one step), so no visitor runs.
	c.push(0, nil)
}

// Depth returns the number of open elements (Enters minus Leaves).
func (c *Cursor) Depth() int { return len(c.offs) - 1 }

// Enter descends into a child element with the given interned name,
// computing the new frontier from the current one (exactly one position of
// Automaton.run) and reporting unsettled entries that accept at the new
// element through visit. Names outside the interned alphabet are passed as
// symtab.None and match only wildcard and skip transitions — LookupBytes
// semantics, identical to the per-path matchers. visit may be nil to ignore
// accepts (validation-only scans).
func (c *Cursor) Enter(sym symtab.Sym, visit AcceptFunc) {
	parentStart := int(c.offs[len(c.offs)-1])
	parentEnd := len(c.frontier)
	c.offs = append(c.offs, int32(parentEnd))
	c.beginPosition()
	// Iterate the parent frontier by index: push appends to the shared
	// backing slice and may reallocate it.
	for i := parentStart; i < parentEnd; i++ {
		st := &c.a.states[c.frontier[i]]
		if st.selfLoop {
			// Skip states consume any element and stay active.
			c.push(c.frontier[i], visit)
		}
		if t, ok := st.next[sym]; ok {
			c.push(t, visit)
		}
		if st.wild != noEdge {
			c.push(st.wild, visit)
		}
	}
}

// Leave closes the current element, discarding its frontier. Calling Leave
// at depth 0 is a programming error and panics.
func (c *Cursor) Leave() {
	if len(c.offs) <= 1 {
		panic("pmatch: Cursor.Leave below document root")
	}
	c.frontier = c.frontier[:c.offs[len(c.offs)-1]]
	c.offs = c.offs[:len(c.offs)-1]
}

// beginPosition opens a fresh state-dedup window (one per Enter).
func (c *Cursor) beginPosition() {
	c.stateEpoch++
	if c.stateEpoch == 0 {
		clearStamps(c.stateStamp)
		c.stateEpoch = 1
	}
}

// push adds a state to the top frontier (deduplicated per position),
// reports its accepting entries, and follows the epsilon edge into its
// skip state — the Cursor form of Automaton.activate.
func (c *Cursor) push(si int32, visit AcceptFunc) {
	for {
		if c.stateStamp[si] == c.stateEpoch {
			return
		}
		c.stateStamp[si] = c.stateEpoch
		c.frontier = append(c.frontier, si)
		st := &c.a.states[si]
		if visit != nil {
			for _, ei := range st.accept {
				if c.entryStamp[ei] == c.entryEpoch {
					continue
				}
				e := &c.a.entries[ei]
				if visit(e.x, e.hasPreds, e.data) {
					c.entryStamp[ei] = c.entryEpoch
				}
			}
		}
		if st.dslash == noEdge {
			return
		}
		si = st.dslash // epsilon into the skip state
	}
}
