package pmatch

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/symtab"
	"repro/internal/xpath"
)

// The property test generates random subscription workloads (wildcards,
// descendant steps, relative expressions, attribute predicates) and random
// annotated publication paths, and checks that the shared automaton's
// accept set is IDENTICAL to evaluating every expression independently with
// MatchesSymPath / MatchesSymPathAttrs. This is the equivalence contract
// the broker's publish path relies on.

var quickAlphabet = []string{"a", "b", "c", "d", "e"}

func randomXPE(r *rand.Rand) *xpath.XPE {
	n := 1 + r.Intn(4)
	steps := make([]xpath.Step, n)
	for i := range steps {
		axis := xpath.Child
		if i > 0 && r.Intn(3) == 0 {
			axis = xpath.Descendant
		}
		if i == 0 && r.Intn(5) == 0 {
			axis = xpath.Descendant
		}
		name := quickAlphabet[r.Intn(len(quickAlphabet))]
		if r.Intn(5) == 0 {
			name = xpath.Wildcard
		}
		var preds string
		if r.Intn(6) == 0 {
			preds = xpath.EncodePreds([]xpath.Pred{{Attr: "k", Value: quickAlphabet[r.Intn(2)]}})
		}
		steps[i] = xpath.Step{Axis: axis, Name: name, Preds: preds}
	}
	relative := r.Intn(3) == 0
	if relative {
		steps[0].Axis = xpath.Child // Parse's invariant; New allows either
	}
	return xpath.New(relative, steps...)
}

func randomPath(r *rand.Rand) ([]string, []map[string]string) {
	n := r.Intn(7)
	path := make([]string, n)
	attrs := make([]map[string]string, n)
	for i := range path {
		path[i] = quickAlphabet[r.Intn(len(quickAlphabet))]
		switch r.Intn(3) {
		case 0:
			attrs[i] = map[string]string{"k": quickAlphabet[r.Intn(2)]}
		case 1:
			attrs[i] = map[string]string{"other": "x"}
		}
	}
	return path, attrs
}

func TestQuickAutomatonEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for round := 0; round < 60; round++ {
		nx := 1 + r.Intn(40)
		b := NewBuilder()
		xs := make([]*xpath.XPE, nx)
		for i := range xs {
			xs[i] = randomXPE(r)
			b.Add(xs[i], i)
		}
		auto := b.Build()
		for trial := 0; trial < 40; trial++ {
			path, attrs := randomPath(r)
			sp := symtab.InternPath(path)

			var gotS []int
			auto.MatchStructural(sp, func(d any) { gotS = append(gotS, d.(int)) })
			sort.Ints(gotS)
			var wantS []int
			for i, x := range xs {
				if x.MatchesSymPath(sp) {
					wantS = append(wantS, i)
				}
			}
			if !eqInts(gotS, wantS) {
				t.Fatalf("round %d: structural mismatch on %v\nautomaton=%v\nflat=%v\nexprs=%s",
					round, path, gotS, wantS, dumpExprs(xs))
			}

			var gotA []int
			auto.Match(sp, attrs, func(d any) { gotA = append(gotA, d.(int)) })
			sort.Ints(gotA)
			var wantA []int
			for i, x := range xs {
				if x.MatchesSymPathAttrs(sp, attrs) {
					wantA = append(wantA, i)
				}
			}
			if !eqInts(gotA, wantA) {
				t.Fatalf("round %d: attr mismatch on %v attrs=%v\nautomaton=%v\nflat=%v\nexprs=%s",
					round, path, attrs, gotA, wantA, dumpExprs(xs))
			}
		}
	}
}

// TestQuickScratchReuse exercises the pooled scratch across many sequential
// runs on one automaton (epoch stamping must never leak accepts or frontier
// state between runs).
func TestQuickScratchReuse(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	b := NewBuilder()
	xs := make([]*xpath.XPE, 25)
	for i := range xs {
		xs[i] = randomXPE(r)
		b.Add(xs[i], i)
	}
	auto := b.Build()
	for trial := 0; trial < 3000; trial++ {
		path, _ := randomPath(r)
		sp := symtab.InternPath(path)
		var got []int
		auto.MatchStructural(sp, func(d any) { got = append(got, d.(int)) })
		sort.Ints(got)
		var want []int
		for i, x := range xs {
			if x.MatchesSymPath(sp) {
				want = append(want, i)
			}
		}
		if !eqInts(got, want) {
			t.Fatalf("trial %d: path %v: automaton=%v flat=%v", trial, path, got, want)
		}
	}
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func dumpExprs(xs []*xpath.XPE) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = x.String()
	}
	return strings.Join(parts, " ; ")
}
