package pmatch

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/symtab"
	"repro/internal/xpath"
)

func TestShardIndexPlacement(t *testing.T) {
	const n = 4
	cases := []struct {
		expr string
		wild bool
	}{
		{"/a/b", false},
		{"/a", false},
		{`/a[@x="1"]/b`, false},
		{"//a/b", true},
		{"/*/b", true},
		{"a/b", true}, // relative
	}
	for _, c := range cases {
		x := xpath.MustParse(c.expr)
		got := ShardIndex(x, n)
		if c.wild {
			if got != n {
				t.Errorf("ShardIndex(%q, %d) = %d, want wild slot %d", c.expr, n, got, n)
			}
		} else {
			want := PathShard(x.Syms()[0], n)
			if got != want || got < 0 || got >= n {
				t.Errorf("ShardIndex(%q, %d) = %d, want anchored slot %d", c.expr, n, got, want)
			}
		}
		if s := ShardIndex(x, 1); s != 0 {
			t.Errorf("ShardIndex(%q, 1) = %d, want 0", c.expr, s)
		}
	}
	if Slots(1) != 1 || Slots(8) != 9 {
		t.Errorf("Slots: got %d,%d want 1,9", Slots(1), Slots(8))
	}
	if SlotName(3, 8) != "3" || SlotName(8, 8) != "wild" || SlotName(0, 1) != "0" || SlotName(12, 16) != "12" {
		t.Errorf("SlotName: got %q %q %q %q", SlotName(3, 8), SlotName(8, 8), SlotName(0, 1), SlotName(12, 16))
	}
}

func TestNewShardedValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("wrong slot count", func() { NewSharded(2, []*Automaton{NewBuilder().Build()}) })
	mustPanic("nil slot", func() { NewSharded(1, []*Automaton{nil}) })
}

// TestShardedMatchEquivalence: for every shard count, the sharded match
// over a partitioned workload is identical to the monolithic automaton
// over the same expressions — the contract the broker's publish path
// relies on when -shards > 1.
func TestShardedMatchEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for _, n := range []int{1, 2, 4, 8} {
		for round := 0; round < 25; round++ {
			nx := 1 + r.Intn(40)
			mb := NewBuilder()
			sb := NewShardedBuilder(n)
			xs := make([]*xpath.XPE, nx)
			for i := range xs {
				xs[i] = randomXPE(r)
				mb.Add(xs[i], i)
				sb.Add(xs[i], i)
			}
			mono, sharded := mb.Build(), sb.Build()
			if sharded.Entries() != nx || sharded.N() != n || sharded.SlotCount() != Slots(n) {
				t.Fatalf("n=%d: Entries=%d N=%d SlotCount=%d", n, sharded.Entries(), sharded.N(), sharded.SlotCount())
			}
			for trial := 0; trial < 30; trial++ {
				path, attrs := randomPath(r)
				sp := symtab.InternPath(path)

				var want, got []int
				mono.Match(sp, attrs, func(d any) { want = append(want, d.(int)) })
				sharded.Match(sp, attrs, func(d any) { got = append(got, d.(int)) })
				sort.Ints(want)
				sort.Ints(got)
				if !eqInts(got, want) {
					t.Fatalf("n=%d round %d: Match on %v: sharded=%v mono=%v\nexprs=%s",
						n, round, path, got, want, dumpExprs(xs))
				}

				want, got = nil, nil
				mono.MatchStructural(sp, func(d any) { want = append(want, d.(int)) })
				sharded.MatchStructural(sp, func(d any) { got = append(got, d.(int)) })
				sort.Ints(want)
				sort.Ints(got)
				if !eqInts(got, want) {
					t.Fatalf("n=%d round %d: MatchStructural on %v: sharded=%v mono=%v\nexprs=%s",
						n, round, path, got, want, dumpExprs(xs))
				}
			}
		}
	}
}

// driveSharded mirrors driveCursor for a ShardedCursor.
func driveSharded(c *ShardedCursor, n *testNode, stack *[]symtab.Sym, stackAttrs *[]map[string]string, got *[]int) {
	sym, _ := symtab.Lookup(n.name)
	*stack = append(*stack, sym)
	*stackAttrs = append(*stackAttrs, n.attrs)
	c.Enter(sym, func(x *xpath.XPE, hasPreds bool, data any) bool {
		if hasPreds && !x.MatchesSymPathAttrs(*stack, *stackAttrs) {
			return false
		}
		*got = append(*got, data.(int))
		return true
	})
	for _, ch := range n.children {
		driveSharded(c, ch, stack, stackAttrs, got)
	}
	*stack = (*stack)[:len(*stack)-1]
	*stackAttrs = (*stackAttrs)[:len(*stackAttrs)-1]
	c.Leave()
}

// TestShardedCursorEquivalence drives the sharded streaming execution over
// random FORESTS (several roots under one cursor, so the per-slot cursor
// reuse and cross-root settlement paths are exercised) and compares against
// the monolithic Cursor — the contract internal/stream relies on.
func TestShardedCursorEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for _, n := range []int{1, 2, 4, 8} {
		for round := 0; round < 20; round++ {
			nx := 1 + r.Intn(40)
			mb := NewBuilder()
			sb := NewShardedBuilder(n)
			xs := make([]*xpath.XPE, nx)
			for i := range xs {
				xs[i] = randomXPE(r)
				mb.Add(xs[i], i)
				sb.Add(xs[i], i)
			}
			mono, sharded := mb.Build(), sb.Build()
			for trial := 0; trial < 15; trial++ {
				forest := make([]*testNode, 1+r.Intn(3))
				for i := range forest {
					forest[i] = randomTree(r, 2)
				}

				mc := mono.Cursor()
				var want []int
				var stack []symtab.Sym
				var stackAttrs []map[string]string
				for _, tree := range forest {
					driveCursor(mc, tree, &stack, &stackAttrs, &want)
				}
				mc.Release()
				sort.Ints(want)

				sc := sharded.Cursor()
				var got []int
				for _, tree := range forest {
					driveSharded(sc, tree, &stack, &stackAttrs, &got)
				}
				if sc.Depth() != 0 {
					t.Fatalf("n=%d: depth %d after balanced walk", n, sc.Depth())
				}
				sc.Release()
				sort.Ints(got)

				if !eqInts(got, want) {
					t.Fatalf("n=%d round %d trial %d: sharded=%v mono=%v\nexprs=%s",
						n, round, trial, got, want, dumpExprs(xs))
				}
			}
		}
	}
}

func TestShardedCursorLeavePanics(t *testing.T) {
	s := NewShardedBuilder(2).Build()
	c := s.Cursor()
	defer c.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Leave at depth 0 did not panic")
		}
	}()
	c.Leave()
}

// TestConcurrentShardRebuildAndMatch pins, under -race, that an Automaton
// really is immutable after Build: matcher goroutines run Match and Cursor
// walks against a snapshot pointer while a rebuilder continuously
// recompiles random subsets of shards on parallel goroutines (one fresh
// Builder each, the broker's selective-rebuild shape), aliasing the
// untouched slots, and swaps the snapshot. Any write into a live automaton
// or cross-goroutine Builder sharing is a race or a guard panic; any
// corruption shows up as an oracle mismatch.
func TestConcurrentShardRebuildAndMatch(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	const n = 4
	xs := make([]*xpath.XPE, 120)
	for i := range xs {
		xs[i] = randomXPE(r)
	}
	buckets := make([][]int, Slots(n))
	for i, x := range xs {
		s := ShardIndex(x, n)
		buckets[s] = append(buckets[s], i)
	}
	buildSlot := func(slot int) *Automaton {
		b := NewBuilder()
		for _, i := range buckets[slot] {
			b.Add(xs[i], i)
		}
		return b.Build()
	}
	buildAll := func() *ShardedAutomaton {
		slots := make([]*Automaton, Slots(n))
		for i := range slots {
			slots[i] = buildSlot(i)
		}
		return NewSharded(n, slots)
	}

	var ptr atomic.Pointer[ShardedAutomaton]
	ptr.Store(buildAll())

	// Pre-generate match work + oracle answers (the entry set never changes
	// across rebuilds — only which slots were recompiled).
	type workItem struct {
		sp    []symtab.Sym
		attrs []map[string]string
		want  []int
	}
	work := make([]workItem, 50)
	for i := range work {
		path, attrs := randomPath(r)
		w := workItem{sp: symtab.InternPath(path), attrs: attrs}
		for j, x := range xs {
			if x.MatchesSymPathAttrs(w.sp, attrs) {
				w.want = append(w.want, j)
			}
		}
		work[i] = w
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := g
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := work[k%len(work)]
				k++
				var got []int
				ptr.Load().Match(w.sp, w.attrs, func(d any) { got = append(got, d.(int)) })
				sort.Ints(got)
				if !eqInts(got, w.want) {
					t.Errorf("matcher %d: got %v want %v", g, got, w.want)
					return
				}
			}
		}(g)
	}

	for round := 0; round < 40; round++ {
		old := ptr.Load()
		slots := make([]*Automaton, Slots(n))
		var dirty []int
		for i := range slots {
			if round%2 == 0 || r.Intn(2) == 0 {
				dirty = append(dirty, i)
			} else {
				slots[i] = old.Slot(i) // alias: shard unchanged
			}
		}
		var bwg sync.WaitGroup
		for _, slot := range dirty {
			bwg.Add(1)
			go func(slot int) {
				defer bwg.Done()
				slots[slot] = buildSlot(slot)
			}(slot)
		}
		bwg.Wait()
		ptr.Store(NewSharded(n, slots))
	}
	close(stop)
	wg.Wait()
}

func TestBuilderUseAfterBuildPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	b := NewBuilder()
	b.Add(xpath.MustParse("/a"), 1)
	b.Build()
	mustPanic("Add after Build", func() { b.Add(xpath.MustParse("/b"), 2) })
	mustPanic("Build after Build", func() { b.Build() })
}

func TestBuilderConcurrentUsePanics(t *testing.T) {
	b := NewBuilder()
	b.begin() // simulate another goroutine mid-Add
	defer func() {
		if recover() == nil {
			t.Fatal("concurrent Add did not panic")
		}
	}()
	b.Add(xpath.MustParse("/a"), 1)
}
