package pmatch

import (
	"sync"

	"repro/internal/symtab"
	"repro/internal/xpath"
)

// This file partitions the shared automaton into independently-built shards
// so a control-plane change recompiles 1/N of the table instead of all of
// it (DESIGN.md §5g). The partition key is the expression's ROOT symbol:
//
//   - an ANCHORED expression — absolute, first step on the child axis with
//     a concrete (non-wildcard) name — can only match paths whose first
//     element is that name, so it lives in shard hash(root)%N and is
//     consulted only for publications rooted there;
//   - everything else (relative expressions, leading "//", leading "/*")
//     may begin matching anywhere and goes to one extra WILD shard that
//     every publication consults.
//
// A path therefore runs against exactly two automatons (its root's shard
// plus the wild shard), and because every expression is placed in exactly
// one shard the union of the two runs visits each entry at most once — the
// per-run dedup of Automaton.Match needs no cross-shard counterpart.
//
// N=1 is special-cased to a single slot holding every expression: it is
// byte-for-byte the pre-sharding monolithic automaton and serves as the
// ablation baseline (-shards=1).

// ShardIndex returns the slot an expression belongs to in an N-shard
// partition: [0,N) for anchored expressions, N (the wild slot) otherwise.
// With n <= 1 everything shares slot 0.
func ShardIndex(x *xpath.XPE, n int) int {
	if n <= 1 {
		return 0
	}
	if x == nil || x.Len() == 0 {
		return 0 // ignored by Builder.Add anyway
	}
	if x.Relative || x.Steps[0].Axis != xpath.Child {
		return n
	}
	root := x.Syms()[0]
	if root == symtab.Wildcard {
		return n
	}
	return PathShard(root, n)
}

// PathShard returns the anchored shard a publication path with the given
// root symbol can hit. Knuth multiplicative hashing spreads the
// sequentially-assigned interned symbols across shards.
func PathShard(root symtab.Sym, n int) int {
	if n <= 1 {
		return 0
	}
	return int((uint64(root) * 2654435761) % uint64(n))
}

// Slots returns the number of automaton slots an N-shard partition uses:
// one per anchored shard plus the wild slot, except N=1 which is a single
// monolithic slot.
func Slots(n int) int {
	if n <= 1 {
		return 1
	}
	return n + 1
}

// SlotName names a slot for metrics and status output: "0".."N-1" for the
// anchored shards, "wild" for the extra slot.
func SlotName(slot, n int) string {
	if n > 1 && slot == n {
		return "wild"
	}
	return itoa(slot)
}

// itoa avoids pulling strconv into the hot-path package for a cold helper.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// ShardedAutomaton is a vector of immutable Automatons partitioned by
// ShardIndex. Like Automaton it is immutable after construction and safe
// for any number of concurrent Match/Cursor calls; slots may be shared
// (aliased) between successive ShardedAutomatons when only some shards were
// rebuilt.
type ShardedAutomaton struct {
	n       int
	slots   []*Automaton
	entries int
	pool    sync.Pool // *ShardedCursor
}

// NewSharded assembles a sharded automaton from per-slot automatons. The
// slice must have Slots(n) elements (anchored shards first, wild slot
// last), each built with expressions whose ShardIndex equals the slot;
// violating the placement contract loses the at-most-once visit guarantee.
func NewSharded(n int, slots []*Automaton) *ShardedAutomaton {
	if n < 1 {
		n = 1
	}
	if len(slots) != Slots(n) {
		panic("pmatch: NewSharded slot count does not match Slots(n)")
	}
	s := &ShardedAutomaton{n: n, slots: slots}
	for _, a := range slots {
		if a == nil {
			panic("pmatch: NewSharded nil slot")
		}
		s.entries += len(a.entries)
	}
	s.pool.New = func() any { return &ShardedCursor{s: s} }
	return s
}

// Single wraps one monolithic automaton as a 1-shard ShardedAutomaton (the
// ablation form; also how pre-sharding call sites adapt).
func Single(a *Automaton) *ShardedAutomaton {
	return NewSharded(1, []*Automaton{a})
}

// N returns the anchored shard count the partition was built with.
func (s *ShardedAutomaton) N() int { return s.n }

// SlotCount returns the number of automaton slots (Slots(N)).
func (s *ShardedAutomaton) SlotCount() int { return len(s.slots) }

// Slot returns the automaton in the given slot (read-only; aliasing it
// into a new ShardedAutomaton is how unchanged shards skip rebuilds).
func (s *ShardedAutomaton) Slot(i int) *Automaton { return s.slots[i] }

// Entries returns the total number of expressions across all slots.
func (s *ShardedAutomaton) Entries() int { return s.entries }

// Stats sums the per-slot automaton sizes. Each slot contributes its own
// start and skip states, so States is slightly larger than a monolithic
// automaton over the same expressions would report.
func (s *ShardedAutomaton) Stats() Stats {
	var out Stats
	for _, a := range s.slots {
		st := a.Stats()
		out.States += st.States
		out.Edges += st.Edges
		out.Entries += st.Entries
		out.AcceptStates += st.AcceptStates
	}
	return out
}

// Match runs the path against the two slots it can hit — its root's
// anchored shard and the wild shard — visiting each matching entry's
// payload exactly once. Semantics are identical to a monolithic
// Automaton.Match over the union of entries. Safe for concurrent use.
func (s *ShardedAutomaton) Match(path []symtab.Sym, attrs []map[string]string, visit func(data any)) {
	if len(path) == 0 {
		return
	}
	if s.n == 1 {
		s.slots[0].Match(path, attrs, visit)
		return
	}
	s.slots[PathShard(path[0], s.n)].Match(path, attrs, visit)
	s.slots[s.n].Match(path, attrs, visit)
}

// MatchStructural is Match with attribute predicates ignored.
func (s *ShardedAutomaton) MatchStructural(path []symtab.Sym, visit func(data any)) {
	if len(path) == 0 {
		return
	}
	if s.n == 1 {
		s.slots[0].MatchStructural(path, visit)
		return
	}
	s.slots[PathShard(path[0], s.n)].MatchStructural(path, visit)
	s.slots[s.n].MatchStructural(path, visit)
}

// ShardedBuilder routes expressions to per-slot Builders by ShardIndex.
// Like Builder it is not safe for concurrent use. The broker's selective
// rebuild drives raw Builders directly (it only recompiles dirty slots);
// this type is the convenient whole-table form for tests and benchmarks.
type ShardedBuilder struct {
	n  int
	bs []*Builder
}

// NewShardedBuilder returns an empty builder set for an n-shard partition.
func NewShardedBuilder(n int) *ShardedBuilder {
	if n < 1 {
		n = 1
	}
	bs := make([]*Builder, Slots(n))
	for i := range bs {
		bs[i] = NewBuilder()
	}
	return &ShardedBuilder{n: n, bs: bs}
}

// Add compiles the expression into its shard's builder.
func (sb *ShardedBuilder) Add(x *xpath.XPE, data any) {
	sb.bs[ShardIndex(x, sb.n)].Add(x, data)
}

// Len returns the number of entries added across all shards.
func (sb *ShardedBuilder) Len() int {
	total := 0
	for _, b := range sb.bs {
		total += b.Len()
	}
	return total
}

// Build finalises every slot. The builder must not be used afterwards.
func (sb *ShardedBuilder) Build() *ShardedAutomaton {
	slots := make([]*Automaton, len(sb.bs))
	for i, b := range sb.bs {
		slots[i] = b.Build()
	}
	return NewSharded(sb.n, slots)
}

// heldCursor remembers which slot's cursor a ShardedCursor acquired so a
// multi-root event stream (Enter at depth 0 after a Leave back to it)
// reuses the SAME underlying cursor per slot, preserving the at-most-once
// entry settlement of a single Cursor run.
type heldCursor struct {
	slot int
	c    *Cursor // nil when the slot's automaton has no entries
}

// ShardedCursor is the streaming execution of a ShardedAutomaton: it
// drives the wild shard's cursor and the root element's anchored-shard
// cursor in lockstep through Enter/Leave. The anchored slot is chosen at
// the first Enter (depth 0), where the document root — shared by every
// root-to-node path — determines the only anchored shard the document can
// hit. Not safe for concurrent use; distinct cursors on one automaton are.
type ShardedCursor struct {
	s     *ShardedAutomaton
	wild  *Cursor // nil when n==1 or the wild slot is empty
	cur   *Cursor // active anchored-slot cursor (nil above root or slot empty)
	held  []heldCursor
	depth int
}

// Cursor returns a pooled sharded cursor positioned at the document root.
func (s *ShardedAutomaton) Cursor() *ShardedCursor {
	c := s.pool.Get().(*ShardedCursor)
	c.depth = 0
	if s.n == 1 {
		c.cur = c.acquire(0)
	} else if len(s.slots[s.n].entries) > 0 {
		c.wild = s.slots[s.n].Cursor()
	}
	return c
}

// acquire returns the (held) cursor for a slot, creating it on first use.
// Slots whose automaton holds no entries yield nil — nothing to drive.
func (c *ShardedCursor) acquire(slot int) *Cursor {
	for _, h := range c.held {
		if h.slot == slot {
			return h.c
		}
	}
	var cur *Cursor
	if a := c.s.slots[slot]; len(a.entries) > 0 {
		cur = a.Cursor()
	}
	c.held = append(c.held, heldCursor{slot: slot, c: cur})
	return cur
}

// Depth returns the number of open elements (Enters minus Leaves).
func (c *ShardedCursor) Depth() int { return c.depth }

// Enter descends into a child element, driving the anchored and wild
// cursors. At depth 0 (a document root) it binds the anchored cursor for
// the root's shard — re-entering the same root later resumes that shard's
// cursor, so settlement state carries across sibling roots as it would in
// a single monolithic cursor.
func (c *ShardedCursor) Enter(sym symtab.Sym, visit AcceptFunc) {
	if c.depth == 0 && c.s.n > 1 {
		c.cur = c.acquire(PathShard(sym, c.s.n))
	}
	c.depth++
	if c.cur != nil {
		c.cur.Enter(sym, visit)
	}
	if c.wild != nil {
		c.wild.Enter(sym, visit)
	}
}

// Leave closes the current element. Calling Leave at depth 0 panics.
func (c *ShardedCursor) Leave() {
	if c.depth == 0 {
		panic("pmatch: ShardedCursor.Leave below document root")
	}
	c.depth--
	if c.cur != nil {
		c.cur.Leave()
	}
	if c.wild != nil {
		c.wild.Leave()
	}
	if c.depth == 0 && c.s.n > 1 {
		c.cur = nil // next root re-binds its own anchored shard
	}
}

// Release returns the cursor (and its held per-slot cursors) to the pools.
// The cursor must not be used afterwards.
func (c *ShardedCursor) Release() {
	for i := range c.held {
		if c.held[i].c != nil {
			c.held[i].c.Release()
		}
		c.held[i] = heldCursor{}
	}
	c.held = c.held[:0]
	if c.wild != nil {
		c.wild.Release()
		c.wild = nil
	}
	c.cur = nil
	c.s.pool.Put(c)
}
