package pmatch

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/symtab"
	"repro/internal/xpath"
)

// The Cursor property test drives the streaming execution over random
// element trees and checks that its accept set is IDENTICAL to running the
// per-path matcher over every root-to-leaf path of the tree — the
// equivalence internal/stream relies on. Trees, not paths: the point of the
// Cursor is that shared prefixes are consumed once.

// testNode is a bare element tree for driving a Cursor.
type testNode struct {
	name     string
	attrs    map[string]string
	children []*testNode
}

func randomTree(r *rand.Rand, depth int) *testNode {
	n := &testNode{name: quickAlphabet[r.Intn(len(quickAlphabet))]}
	switch r.Intn(3) {
	case 0:
		n.attrs = map[string]string{"k": quickAlphabet[r.Intn(2)]}
	case 1:
		n.attrs = map[string]string{"other": "x"}
	}
	if depth < 5 {
		for i := r.Intn(4) - 1; i >= 0; i-- {
			n.children = append(n.children, randomTree(r, depth+1))
		}
	}
	return n
}

// leafPaths flattens the tree into annotated root-to-leaf paths.
func leafPaths(n *testNode) ([][]symtab.Sym, [][]map[string]string) {
	var paths [][]symtab.Sym
	var attrs [][]map[string]string
	var prefix []symtab.Sym
	var prefixAttrs []map[string]string
	var walk func(e *testNode)
	walk = func(e *testNode) {
		prefix = append(prefix, symtab.Intern(e.name))
		prefixAttrs = append(prefixAttrs, e.attrs)
		if len(e.children) == 0 {
			paths = append(paths, append([]symtab.Sym(nil), prefix...))
			attrs = append(attrs, append([]map[string]string(nil), prefixAttrs...))
		}
		for _, c := range e.children {
			walk(c)
		}
		prefix = prefix[:len(prefix)-1]
		prefixAttrs = prefixAttrs[:len(prefixAttrs)-1]
	}
	walk(n)
	return paths, attrs
}

// driveCursor walks the tree with a Cursor, evaluating predicates against
// the live root-to-node stack (the internal/stream post-filter protocol).
func driveCursor(c *Cursor, n *testNode, stack *[]symtab.Sym, stackAttrs *[]map[string]string, got *[]int) {
	sym, _ := symtab.Lookup(n.name)
	*stack = append(*stack, sym)
	*stackAttrs = append(*stackAttrs, n.attrs)
	c.Enter(sym, func(x *xpath.XPE, hasPreds bool, data any) bool {
		if hasPreds && !x.MatchesSymPathAttrs(*stack, *stackAttrs) {
			return false // stay eligible for later accepts
		}
		*got = append(*got, data.(int))
		return true
	})
	for _, ch := range n.children {
		driveCursor(c, ch, stack, stackAttrs, got)
	}
	*stack = (*stack)[:len(*stack)-1]
	*stackAttrs = (*stackAttrs)[:len(*stackAttrs)-1]
	c.Leave()
}

func TestQuickCursorEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for round := 0; round < 40; round++ {
		nx := 1 + r.Intn(40)
		b := NewBuilder()
		xs := make([]*xpath.XPE, nx)
		for i := range xs {
			xs[i] = randomXPE(r)
			b.Add(xs[i], i)
		}
		auto := b.Build()
		for trial := 0; trial < 25; trial++ {
			tree := randomTree(r, 0)
			paths, attrs := leafPaths(tree)

			var want []int
			seen := map[int]bool{}
			for pi, p := range paths {
				auto.Match(p, attrs[pi], func(d any) {
					if i := d.(int); !seen[i] {
						seen[i] = true
						want = append(want, i)
					}
				})
			}
			sort.Ints(want)

			c := auto.Cursor()
			var got []int
			var stack []symtab.Sym
			var stackAttrs []map[string]string
			driveCursor(c, tree, &stack, &stackAttrs, &got)
			if c.Depth() != 0 {
				t.Fatalf("round %d: depth %d after balanced walk", round, c.Depth())
			}
			c.Release()
			sort.Ints(got)

			if !eqInts(got, want) {
				t.Fatalf("round %d trial %d: cursor=%v per-path=%v\nexprs=%s",
					round, trial, got, want, dumpExprs(xs))
			}
		}
	}
}

// TestCursorReuse exercises the pooled cursor across many documents: epoch
// stamping must not leak settled entries or frontier state between Resets.
func TestCursorReuse(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	b := NewBuilder()
	xs := make([]*xpath.XPE, 20)
	for i := range xs {
		xs[i] = randomXPE(r)
		b.Add(xs[i], i)
	}
	auto := b.Build()
	for trial := 0; trial < 500; trial++ {
		tree := randomTree(r, 0)
		paths, attrs := leafPaths(tree)
		var want []int
		seen := map[int]bool{}
		for pi, p := range paths {
			auto.Match(p, attrs[pi], func(d any) {
				if i := d.(int); !seen[i] {
					seen[i] = true
					want = append(want, i)
				}
			})
		}
		sort.Ints(want)
		c := auto.Cursor()
		var got []int
		var stack []symtab.Sym
		var stackAttrs []map[string]string
		driveCursor(c, tree, &stack, &stackAttrs, &got)
		c.Release()
		sort.Ints(got)
		if !eqInts(got, want) {
			t.Fatalf("trial %d: cursor=%v per-path=%v", trial, got, want)
		}
	}
}

func TestCursorEmptyAutomaton(t *testing.T) {
	auto := NewBuilder().Build()
	c := auto.Cursor()
	defer c.Release()
	c.Enter(symtab.Intern("a"), func(x *xpath.XPE, hasPreds bool, data any) bool {
		t.Fatal("accept on empty automaton")
		return true
	})
	if c.Depth() != 1 {
		t.Fatalf("Depth = %d, want 1", c.Depth())
	}
	c.Leave()
	if c.Depth() != 0 {
		t.Fatalf("Depth = %d, want 0", c.Depth())
	}
}

func TestCursorLeavePanics(t *testing.T) {
	auto := NewBuilder().Build()
	c := auto.Cursor()
	defer c.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Leave at depth 0 did not panic")
		}
	}()
	c.Leave()
}

// TestCursorUnknownSym: names outside the interned alphabet arrive as None
// and must match only wildcard and descendant skips, never concrete steps.
func TestCursorUnknownSym(t *testing.T) {
	b := NewBuilder()
	b.Add(xpath.MustParse("/a/*"), "wild")
	b.Add(xpath.MustParse("/a/b"), "concrete")
	b.Add(xpath.MustParse("//b"), "skip")
	auto := b.Build()
	c := auto.Cursor()
	defer c.Release()
	var got []string
	visit := func(x *xpath.XPE, hasPreds bool, data any) bool {
		got = append(got, data.(string))
		return true
	}
	c.Enter(symtab.Intern("a"), visit)
	c.Enter(symtab.None, visit) // e.g. an element name never interned
	sort.Strings(got)
	if len(got) != 1 || got[0] != "wild" {
		t.Fatalf("accepts = %v, want [wild]", got)
	}
}
