// Package pmatch implements a YFilter-style shared path-matching automaton:
// every XPath expression (XPE) of a routing snapshot is compiled into ONE
// nondeterministic finite automaton over the interned symbol alphabet
// (symtab.Sym), so matching a publication path against N subscriptions costs
// one automaton run instead of N per-expression evaluations.
//
// Structure sharing is what makes the shared automaton fast: expressions
// with a common step prefix share the states and transitions of that prefix
// ("/a/b/c" and "/a/b/d" diverge only at the last edge), so the work per
// consumed path element is bounded by the number of DISTINCT live prefixes,
// not by the number of subscriptions. The construction follows the classic
// XML-filtering automata (YFilter; the FPGA filtering architecture in
// PAPERS.md hardware-parallelises the same design):
//
//   - a "/name" step is a transition labelled with the step's interned
//     symbol,
//   - a "/*" step is a wildcard transition (matches every element,
//     including elements outside the interned alphabet),
//   - a "//" step becomes a skip state with a self-loop on any element,
//     entered by an epsilon edge (resolved at activation time, never at
//     runtime) and left by the step's name transition — zero-or-more skipped
//     elements,
//   - a relative expression is compiled as if its first step used "//":
//     "a/b" may begin matching at any path position, which is exactly the
//     language of "//a/b" under the system's prefix-match semantics.
//
// Acceptance mirrors XPE.MatchesSymPath: an expression selects a node as
// soon as all its steps are consumed, so accept states report their entries
// at EVERY path position reached, not only at the end of the path.
//
// Attribute predicates are not compiled into the automaton: an entry whose
// expression carries predicates is structurally matched first and then
// verified with XPE.MatchesSymPathAttrs as a post-filter, exactly once per
// run. This keeps the automaton alphabet small and the transition tables
// dense while preserving MatchesSymPathAttrs semantics bit for bit.
//
// # Concurrency
//
// An Automaton is immutable after Build and safe for any number of
// concurrent Match calls: per-run scratch (active state sets and epoch
// stamps) is pooled via sync.Pool, so steady-state matching allocates
// nothing. The Builder is not safe for concurrent use.
//
// Symbols are interned against symtab.Default (via XPE.Syms); an automaton
// must be matched against paths interned into the same table.
package pmatch

import (
	"sync"
	"sync/atomic"

	"repro/internal/symtab"
	"repro/internal/xpath"
)

// noEdge marks an absent wild/dslash/skip transition.
const noEdge = int32(-1)

// state is one automaton state. Transition lookup is hash-indexed: next maps
// a concrete interned symbol to the target state; wild is the target of the
// wildcard transition (taken on every element); dslash is the skip state
// entered by epsilon when this state activates (for a following "//" step).
// Skip states carry selfLoop=true: once active they stay active, consuming
// any element.
type state struct {
	next     map[symtab.Sym]int32
	wild     int32
	dslash   int32
	selfLoop bool
	// accept lists the entries whose final step lands on this state.
	accept []int32
}

// entry is one compiled expression with its caller payload.
type entry struct {
	x        *xpath.XPE
	data     any
	hasPreds bool
}

// Automaton is the compiled shared matcher. Build one with a Builder.
type Automaton struct {
	states  []state
	entries []entry
	pool    sync.Pool // *scratch
	cursors sync.Pool // *Cursor (streaming execution, see stream.go)
}

// Stats describes an automaton's size for observability.
type Stats struct {
	// States is the number of automaton states (including the start state
	// and "//" skip states).
	States int
	// Edges counts symbol-labelled transitions plus wildcard transitions,
	// self-loops, and epsilon edges into skip states.
	Edges int
	// Entries is the number of expressions compiled in.
	Entries int
	// AcceptStates is the number of states carrying at least one entry.
	AcceptStates int
}

// Builder accumulates expressions and compiles the shared automaton.
// The zero value is not usable; call NewBuilder.
//
// A Builder is single-use and single-goroutine: the busy/done guards turn
// concurrent Add/Build calls and use after Build into panics instead of
// silent corruption — per-shard builders run on parallel goroutines in the
// broker, so the non-concurrency contract is enforced, not just documented.
type Builder struct {
	states  []state
	entries []entry
	busy    atomic.Int32
	done    bool
}

// begin enters a guarded builder operation; end leaves it.
func (b *Builder) begin() {
	if !b.busy.CompareAndSwap(0, 1) {
		panic("pmatch: Builder used concurrently")
	}
	if b.done {
		b.busy.Store(0)
		panic("pmatch: Builder used after Build")
	}
}

func (b *Builder) end() { b.busy.Store(0) }

// NewBuilder returns an empty builder holding only the start state.
func NewBuilder() *Builder {
	return &Builder{states: []state{{wild: noEdge, dslash: noEdge}}}
}

// Len returns the number of entries added so far.
func (b *Builder) Len() int { return len(b.entries) }

// Add compiles one expression into the automaton under construction and
// associates data with it: every Match over a path the expression matches
// will visit data. The same expression may be added multiple times with
// different payloads (each is reported). Expressions with zero steps match
// nothing and are ignored. The expression must not be mutated afterwards
// (its interned step symbols are cached, see XPE.Syms).
func (b *Builder) Add(x *xpath.XPE, data any) {
	b.begin()
	defer b.end()
	if x == nil || x.Len() == 0 {
		return
	}
	syms := x.Syms()
	cur := int32(0)
	for i, st := range x.Steps {
		axis := st.Axis
		if i == 0 && x.Relative {
			// A relative expression may begin at any position: same
			// language as a leading "//" step.
			axis = xpath.Descendant
		}
		from := cur
		if axis == xpath.Descendant {
			from = b.ensureSkip(cur)
		}
		cur = b.ensureEdge(from, syms[i])
	}
	idx := int32(len(b.entries))
	b.entries = append(b.entries, entry{x: x, data: data, hasPreds: x.HasPredicates()})
	b.states[cur].accept = append(b.states[cur].accept, idx)
}

// ensureSkip returns the skip ("//") state hanging off from, creating it on
// first use. All descendant steps leaving the same state share one skip
// state, so "//a" and "//b" from a common prefix share the self-loop.
func (b *Builder) ensureSkip(from int32) int32 {
	if d := b.states[from].dslash; d != noEdge {
		return d
	}
	d := b.newState()
	b.states[d].selfLoop = true
	b.states[from].dslash = d
	return d
}

// ensureEdge returns the target of from's transition for the step symbol,
// creating the edge and target state on first use. Wildcard steps use the
// dedicated wildcard transition so that a concrete path element named "*"
// is still only matched by wildcard steps (mirroring symStepMatches).
func (b *Builder) ensureEdge(from int32, sym symtab.Sym) int32 {
	if sym == symtab.Wildcard {
		if w := b.states[from].wild; w != noEdge {
			return w
		}
		t := b.newState()
		b.states[from].wild = t
		return t
	}
	if t, ok := b.states[from].next[sym]; ok {
		return t
	}
	t := b.newState()
	if b.states[from].next == nil {
		b.states[from].next = make(map[symtab.Sym]int32)
	}
	b.states[from].next[sym] = t
	return t
}

func (b *Builder) newState() int32 {
	b.states = append(b.states, state{wild: noEdge, dslash: noEdge})
	return int32(len(b.states) - 1)
}

// Build finalises the automaton. The builder must not be used afterwards
// (further Add/Build calls panic).
func (b *Builder) Build() *Automaton {
	b.begin()
	defer b.end()
	b.done = true
	a := &Automaton{states: b.states, entries: b.entries}
	nstates, nentries := len(a.states), len(a.entries)
	a.pool.New = func() any {
		return &scratch{
			cur:        make([]int32, 0, nstates),
			nxt:        make([]int32, 0, nstates),
			stateStamp: make([]uint32, nstates),
			entryStamp: make([]uint32, nentries),
		}
	}
	a.cursors.New = func() any {
		return &Cursor{
			a:          a,
			frontier:   make([]int32, 0, nstates),
			offs:       make([]int32, 0, 16),
			stateStamp: make([]uint32, nstates),
			entryStamp: make([]uint32, nentries),
		}
	}
	b.states, b.entries = nil, nil
	return a
}

// NumEntries returns the number of compiled expressions (O(1), unlike the
// full Stats walk — per-shard status surfaces poll it).
func (a *Automaton) NumEntries() int { return len(a.entries) }

// NumStates returns the number of automaton states (O(1)).
func (a *Automaton) NumStates() int { return len(a.states) }

// Stats measures the automaton.
func (a *Automaton) Stats() Stats {
	s := Stats{States: len(a.states), Entries: len(a.entries)}
	for i := range a.states {
		st := &a.states[i]
		s.Edges += len(st.next)
		if st.wild != noEdge {
			s.Edges++
		}
		if st.dslash != noEdge {
			s.Edges++ // the epsilon edge into the skip state
		}
		if st.selfLoop {
			s.Edges++
		}
		if len(st.accept) > 0 {
			s.AcceptStates++
		}
	}
	return s
}

// scratch is the per-run working set: the active state frontier (cur/nxt)
// plus epoch-stamped visited markers. stateEpoch advances once per consumed
// path element (a state may re-activate at a later position); entryEpoch
// advances once per run (each entry is reported at most once per Match).
type scratch struct {
	cur, nxt   []int32
	stateStamp []uint32
	entryStamp []uint32
	stateEpoch uint32
	entryEpoch uint32
}

// Match runs the automaton over one interned publication path and invokes
// visit for the payload of every entry whose expression matches the path,
// with attribute predicates evaluated against attrs (attrs[i] belongs to
// path[i]; nil attrs fail any predicate — the MatchesSymPathAttrs
// contract). Each entry is visited at most once per call, in unspecified
// order. Safe for concurrent use.
func (a *Automaton) Match(path []symtab.Sym, attrs []map[string]string, visit func(data any)) {
	a.run(path, attrs, false, visit)
}

// MatchStructural is Match with attribute predicates ignored: it reports
// every entry whose expression structurally matches the path, mirroring
// XPE.MatchesSymPath. Tests and predicate-free workloads use it.
func (a *Automaton) MatchStructural(path []symtab.Sym, visit func(data any)) {
	a.run(path, nil, true, visit)
}

func (a *Automaton) run(path []symtab.Sym, attrs []map[string]string, structural bool, visit func(data any)) {
	if len(a.entries) == 0 || len(path) == 0 {
		return
	}
	s := a.pool.Get().(*scratch)
	s.entryEpoch++
	if s.entryEpoch == 0 { // epoch wrapped: stale stamps could collide
		clearStamps(s.entryStamp)
		s.entryEpoch = 1
	}
	s.cur = s.cur[:0]
	s.beginPosition()
	// Position 0: the start state and, by epsilon, its skip state. No entry
	// can accept here (expressions have at least one step).
	s.cur = a.activate(0, s.cur, s, path, attrs, structural, visit)
	for _, sym := range path {
		s.beginPosition()
		s.nxt = s.nxt[:0]
		for _, si := range s.cur {
			st := &a.states[si]
			if st.selfLoop {
				// Skip states consume any element and stay active.
				s.nxt = a.activate(si, s.nxt, s, path, attrs, structural, visit)
			}
			if t, ok := st.next[sym]; ok {
				s.nxt = a.activate(t, s.nxt, s, path, attrs, structural, visit)
			}
			if st.wild != noEdge {
				s.nxt = a.activate(st.wild, s.nxt, s, path, attrs, structural, visit)
			}
		}
		s.cur, s.nxt = s.nxt, s.cur
		if len(s.cur) == 0 {
			break // no live prefix can revive
		}
	}
	a.pool.Put(s)
}

// beginPosition opens a fresh state-dedup window.
func (s *scratch) beginPosition() {
	s.stateEpoch++
	if s.stateEpoch == 0 {
		clearStamps(s.stateStamp)
		s.stateEpoch = 1
	}
}

// activate adds a state to the frontier (deduplicated per position),
// reports its accepting entries, and follows the epsilon edge into its skip
// state. Accepting here — at activation, i.e. the moment the entry's last
// step is consumed — implements prefix-match acceptance at every position.
func (a *Automaton) activate(si int32, frontier []int32, s *scratch, path []symtab.Sym, attrs []map[string]string, structural bool, visit func(data any)) []int32 {
	for {
		if s.stateStamp[si] == s.stateEpoch {
			return frontier
		}
		s.stateStamp[si] = s.stateEpoch
		frontier = append(frontier, si)
		st := &a.states[si]
		for _, ei := range st.accept {
			if s.entryStamp[ei] == s.entryEpoch {
				continue
			}
			s.entryStamp[ei] = s.entryEpoch
			e := &a.entries[ei]
			if !structural && e.hasPreds && !e.x.MatchesSymPathAttrs(path, attrs) {
				continue
			}
			visit(e.data)
		}
		if st.dslash == noEdge {
			return frontier
		}
		si = st.dslash // epsilon into the skip state
	}
}

func clearStamps(s []uint32) {
	for i := range s {
		s[i] = 0
	}
}
