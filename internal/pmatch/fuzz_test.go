package pmatch

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/symtab"
	"repro/internal/xpath"
)

// FuzzAutomatonEquivalence cross-checks the shared automaton's accept set
// against flat per-XPE MatchesSymPath evaluation. The fuzzer supplies a
// ';'-separated list of expressions and a '/'-separated publication path;
// unparsable expressions are skipped, so any byte soup still exercises the
// comparison. A mismatch would mean the shared automaton routes differently
// from the per-subscription semantics — the one bug class this package must
// never ship.
func FuzzAutomatonEquivalence(f *testing.F) {
	f.Add("/a/b;//c;a/*", "a/b/c")
	f.Add("/a//b;b//c;//*", "a/x/b/c")
	f.Add("*;/a;//a/a", "a/a/a")
	f.Add("/a[@k='v']/b;a/b", "a/b")
	f.Fuzz(func(t *testing.T, exprList, pathStr string) {
		var xs []*xpath.XPE
		b := NewBuilder()
		for _, src := range strings.Split(exprList, ";") {
			if len(src) > 80 {
				continue // keep match cost bounded
			}
			x, err := xpath.Parse(src)
			if err != nil {
				continue
			}
			b.Add(x, len(xs))
			xs = append(xs, x)
		}
		auto := b.Build()

		var path []string
		for _, el := range strings.Split(pathStr, "/") {
			if el != "" {
				path = append(path, el)
			}
			if len(path) >= 12 {
				break
			}
		}
		sp := symtab.InternPath(path)

		var got []int
		auto.MatchStructural(sp, func(d any) { got = append(got, d.(int)) })
		sort.Ints(got)
		var want []int
		for i, x := range xs {
			if x.MatchesSymPath(sp) {
				want = append(want, i)
			}
		}
		if !eqInts(got, want) {
			t.Fatalf("accept sets diverge on path %q:\nautomaton=%v\nflat=%v\nexprs=%s",
				path, got, want, dumpExprs(xs))
		}
	})
}
