package publog

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/metrics"
	"repro/internal/xmldoc"
)

// syncOpts is the deterministic test mode: every append and cursor update
// is on disk when the call returns, no goroutine timing involved.
var syncOpts = Options{SyncAppend: true, NoFsync: true}

func pubMsg(doc uint64, path ...string) *broker.Message {
	return &broker.Message{
		Type:  broker.MsgPublish,
		Pub:   xmldoc.Publication{DocID: doc, Path: path},
		Stamp: int64(doc),
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func collect(t *testing.T, s *Store, name string, from, to uint64) []uint64 {
	t.Helper()
	var seqs []uint64
	err := s.Replay(name, from, to, func(seq uint64, m *broker.Message) error {
		if m.Type != broker.MsgPublish {
			t.Fatalf("replayed type %v", m.Type)
		}
		seqs = append(seqs, seq)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return seqs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), syncOpts)
	defer s.Close()
	for i := uint64(1); i <= 5; i++ {
		if err := s.Append("alpha", i, pubMsg(i, "a", "b", "c")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	for i := uint64(1); i <= 3; i++ {
		if err := s.Append("beta", i, pubMsg(100+i, "x", "y")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	var got []*broker.Message
	if err := s.Replay("alpha", 2, 4, func(seq uint64, m *broker.Message) error {
		got = append(got, m)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
	for i, m := range got {
		wantDoc := uint64(i + 2)
		if m.Pub.DocID != wantDoc {
			t.Errorf("record %d DocID = %d, want %d", i, m.Pub.DocID, wantDoc)
		}
		if want := []string{"a", "b", "c"}; !reflect.DeepEqual(m.Pub.Path, want) {
			t.Errorf("record %d Path = %v, want %v", i, m.Pub.Path, want)
		}
	}
	if seqs := collect(t, s, "beta", 1, 3); !reflect.DeepEqual(seqs, []uint64{1, 2, 3}) {
		t.Errorf("beta replay = %v", seqs)
	}
	// An empty or inverted range replays nothing.
	if seqs := collect(t, s, "alpha", 6, 10); seqs != nil {
		t.Errorf("out-of-range replay = %v", seqs)
	}
	if seqs := collect(t, s, "alpha", 4, 2); seqs != nil {
		t.Errorf("inverted-range replay = %v", seqs)
	}
}

func TestReopenRecoversState(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, syncOpts)
	for i := uint64(1); i <= 4; i++ {
		if err := s.Append("n", i, pubMsg(i, "p")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Ack("n", 2); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	if err := s.SaveSub("n", []string{"/a/b", "/c"}); err != nil {
		t.Fatalf("SaveSub: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, dir, syncOpts)
	defer s2.Close()
	states := s2.Recover()
	if len(states) != 1 {
		t.Fatalf("Recover returned %d states, want 1", len(states))
	}
	st := states[0]
	if st.Name != "n" || st.LastSeq != 4 || st.Acked != 2 {
		t.Fatalf("recovered state = %+v", st)
	}
	if want := []string{"/a/b", "/c"}; !reflect.DeepEqual(st.Subs, want) {
		t.Fatalf("recovered subs = %v, want %v", st.Subs, want)
	}
	// The unacked gap replays across the reopen; sequence numbers resume.
	if seqs := collect(t, s2, "n", st.Acked+1, st.LastSeq); !reflect.DeepEqual(seqs, []uint64{3, 4}) {
		t.Fatalf("gap replay = %v, want [3 4]", seqs)
	}
	if err := s2.Append("n", 5, pubMsg(5, "p")); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if seqs := collect(t, s2, "n", 5, 5); !reflect.DeepEqual(seqs, []uint64{5}) {
		t.Fatalf("post-reopen replay = %v", seqs)
	}
}

func TestStaleAckIsNoOp(t *testing.T) {
	s := mustOpen(t, t.TempDir(), syncOpts)
	defer s.Close()
	if err := s.Append("n", 1, pubMsg(1, "p")); err != nil {
		t.Fatal(err)
	}
	if err := s.Ack("n", 7); err != nil {
		t.Fatal(err)
	}
	if err := s.Ack("n", 3); err != nil {
		t.Fatal(err)
	}
	if got := s.Recover()[0].Acked; got != 7 {
		t.Fatalf("acked cursor = %d after stale ack, want 7", got)
	}
}

func TestSegmentRollAndAckedRetention(t *testing.T) {
	dir := t.TempDir()
	opts := syncOpts
	opts.SegmentBytes = 256 // force frequent rolls
	s := mustOpen(t, dir, opts)
	defer s.Close()
	const total = 40
	for i := uint64(1); i <= total; i++ {
		if err := s.Append("n", i, pubMsg(i, "some", "longer", "path", "elements")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	s.mu.Lock()
	closedSegs := len(s.segs)
	s.mu.Unlock()
	if closedSegs == 0 {
		t.Fatal("no segment roll despite tiny SegmentBytes")
	}
	// Nothing acked: every record must still replay.
	if seqs := collect(t, s, "n", 1, total); len(seqs) != total {
		t.Fatalf("replayed %d records before ack, want %d", len(seqs), total)
	}
	// Ack everything, then roll once more to trigger retention: fully
	// acknowledged head segments are reclaimed.
	if err := s.Ack("n", total); err != nil {
		t.Fatal(err)
	}
	for i := uint64(total + 1); i <= total+12; i++ {
		if err := s.Append("n", i, pubMsg(i, "some", "longer", "path", "elements")); err != nil {
			t.Fatal(err)
		}
	}
	if s.retentionDeleted.Load() == 0 {
		t.Fatal("retention reclaimed nothing despite full acknowledgement")
	}
	// The unacked tail is intact.
	if seqs := collect(t, s, "n", total+1, total+12); len(seqs) != 12 {
		t.Fatalf("replayed %d unacked records, want 12", len(seqs))
	}
}

func TestRetainBytesForcesDeletion(t *testing.T) {
	opts := syncOpts
	opts.SegmentBytes = 256
	opts.RetainBytes = 512
	s := mustOpen(t, t.TempDir(), opts)
	defer s.Close()
	for i := uint64(1); i <= 60; i++ {
		if err := s.Append("n", i, pubMsg(i, "some", "longer", "path", "elements")); err != nil {
			t.Fatal(err)
		}
	}
	if s.retentionDeleted.Load() == 0 {
		t.Fatal("size budget exceeded but nothing deleted")
	}
	s.mu.Lock()
	size := s.sizeLocked()
	segs := len(s.segs)
	s.mu.Unlock()
	// After the last roll's retention pass the closed backlog is bounded
	// near the budget (the active segment may exceed it until it rolls).
	if segs > 4 {
		t.Fatalf("%d closed segments retained (total %dB) despite 512B budget", segs, size)
	}
	// LastSeq survives even though early segments are gone.
	if got := s.Recover()[0].LastSeq; got != 60 {
		t.Fatalf("LastSeq = %d after forced retention, want 60", got)
	}
}

func TestAsyncReplaySeesUncommittedAppends(t *testing.T) {
	// Group-commit mode with an interval long enough that no commit can
	// happen during the test: Replay must still see buffered appends.
	opts := Options{FsyncInterval: time.Hour, NoFsync: true}
	s := mustOpen(t, t.TempDir(), opts)
	defer s.Close()
	for i := uint64(1); i <= 3; i++ {
		if err := s.Append("n", i, pubMsg(i, "p")); err != nil {
			t.Fatal(err)
		}
	}
	if seqs := collect(t, s, "n", 1, 3); !reflect.DeepEqual(seqs, []uint64{1, 2, 3}) {
		t.Fatalf("replay = %v, want [1 2 3]", seqs)
	}
}

func TestAsyncGroupCommitPersists(t *testing.T) {
	dir := t.TempDir()
	opts := Options{FsyncInterval: time.Millisecond, NoFsync: true}
	s := mustOpen(t, dir, opts)
	for i := uint64(1); i <= 5; i++ {
		if err := s.Append("n", i, pubMsg(i, "p")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Ack("n", 2); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(dir, metaFile)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("group commit never persisted the meta file")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, syncOpts)
	defer s2.Close()
	if seqs := collect(t, s2, "n", 1, 5); len(seqs) != 5 {
		t.Fatalf("replayed %d after async close, want 5", len(seqs))
	}
}

func TestClosedStoreRejectsOps(t *testing.T) {
	s := mustOpen(t, t.TempDir(), syncOpts)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Append("n", 1, pubMsg(1, "p")); err == nil {
		t.Fatal("Append on closed store succeeded")
	}
	if err := s.Ack("n", 1); err == nil {
		t.Fatal("Ack on closed store succeeded")
	}
	if err := s.Replay("n", 1, 1, func(uint64, *broker.Message) error { return nil }); err == nil {
		t.Fatal("Replay on closed store succeeded")
	}
}

func TestCorruptMetaTolerated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, syncOpts)
	if err := s.Append("n", 1, pubMsg(1, "p")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, metaFile), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, syncOpts)
	defer s2.Close()
	// Cursors reset (extra replay is allowed), but the logged records and
	// the sequence high-water mark from the segments themselves survive.
	st := s2.Recover()
	if len(st) != 1 || st[0].LastSeq != 1 || st[0].Acked != 0 {
		t.Fatalf("state after corrupt meta = %+v", st)
	}
}

func TestOversizedNameRejected(t *testing.T) {
	s := mustOpen(t, t.TempDir(), syncOpts)
	defer s.Close()
	big := make([]byte, maxNameLen+1)
	for i := range big {
		big[i] = 'x'
	}
	if err := s.Append(string(big), 1, pubMsg(1, "p")); err == nil {
		t.Fatal("oversized durable name accepted")
	}
}

// TestRegisteredMetricsTrackStore runs a store with real fsyncs (the one
// configuration the rest of the suite avoids for speed) and checks the
// func-backed xbroker_publog_* series read through to live store state.
func TestRegisteredMetricsTrackStore(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SyncAppend: true, SegmentBytes: 64})
	defer s.Close()
	if s.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", s.Dir(), dir)
	}
	reg := metrics.NewRegistry()
	s.RegisterMetrics(reg)

	for i := uint64(1); i <= 8; i++ {
		if err := s.Append("n", i, pubMsg(i, "a", "b")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Ack("n", 3); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSub("n", []string{"/a//b"}); err != nil {
		t.Fatal(err)
	}
	vals := make(map[string]float64)
	for _, p := range reg.Export() {
		vals[p.Key] = p.Value
	}
	if got := vals["xbroker_publog_appends_total"]; got != 8 {
		t.Fatalf("appends_total = %v, want 8", got)
	}
	if got := vals["xbroker_publog_fsyncs_total"]; got < 8 {
		t.Fatalf("fsyncs_total = %v, want >= 8 (SyncAppend fsyncs per record)", got)
	}
	if got := vals["xbroker_publog_lag"]; got != 5 {
		t.Fatalf("lag = %v, want 5", got)
	}
	if got := vals["xbroker_publog_names"]; got != 1 {
		t.Fatalf("names = %v, want 1", got)
	}
	// SegmentBytes 256 forces rolls, so the gauge and the directory agree.
	if got := vals["xbroker_publog_segments"]; got < 2 {
		t.Fatalf("segments = %v, want >= 2 after forced rolls", got)
	}
	if got := vals["xbroker_publog_append_bytes_total"]; got <= 0 {
		t.Fatalf("append_bytes_total = %v, want > 0", got)
	}
	if got := vals["xbroker_publog_size_bytes"]; got <= 0 {
		t.Fatalf("size_bytes = %v, want > 0", got)
	}
}

func TestStatusAndMetrics(t *testing.T) {
	s := mustOpen(t, t.TempDir(), syncOpts)
	defer s.Close()
	for i := uint64(1); i <= 3; i++ {
		if err := s.Append("n", i, pubMsg(i, "p")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Ack("n", 1); err != nil {
		t.Fatal(err)
	}
	st := s.Status()
	if st.Segments != 1 || len(st.Names) != 1 {
		t.Fatalf("status = %+v", st)
	}
	if ns := st.Names[0]; ns.LastSeq != 3 || ns.Acked != 1 || ns.Lag != 2 {
		t.Fatalf("name status = %+v", ns)
	}
	if got := s.maxLag(); got != 2 {
		t.Fatalf("maxLag = %d, want 2", got)
	}
}
