package publog

// FuzzPublogDecode drives the segment scanner over arbitrary bytes. The
// scanner is the recovery path — it runs on whatever a crash left on disk —
// so the contract under fuzzing is absolute: never panic, never read past
// the input, never hand a caller a record the CRC did not bless, and always
// land the torn-tail offset on a valid boundary so truncation converges.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedSegments builds real segment byte strings with the production
// encoder: a multi-record multi-name segment, an empty (header-only) one,
// and a two-segment log's files.
func fuzzSeedSegments(tb testing.TB) [][]byte {
	tb.Helper()
	dir, err := os.MkdirTemp("", "publog-fuzz-seed")
	if err != nil {
		tb.Fatal(err)
	}
	defer os.RemoveAll(dir)
	opts := syncOpts
	opts.SegmentBytes = 400
	s, err := Open(dir, opts)
	if err != nil {
		tb.Fatal(err)
	}
	for i := uint64(1); i <= 16; i++ {
		name := "alpha"
		if i%3 == 0 {
			name = "beta"
		}
		if err := s.Append(name, i, pubMsg(i, "catalog", "book", "title")); err != nil {
			tb.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		tb.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		tb.Fatal(err)
	}
	var out [][]byte
	for _, sn := range segs {
		data, err := os.ReadFile(filepath.Join(dir, sn.name))
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, data)
	}
	return out
}

func FuzzPublogDecode(f *testing.F) {
	for _, seg := range fuzzSeedSegments(f) {
		f.Add(seg)
		// Corruptions of real segments steer the fuzzer at the interesting
		// boundaries: torn tail, flipped length varint, flipped CRC byte.
		if len(seg) > 8 {
			f.Add(seg[:len(seg)-3])
			flip := append([]byte(nil), seg...)
			flip[6] ^= 0xff
			f.Add(flip)
			crc := append([]byte(nil), seg...)
			crc[len(crc)-1] ^= 0x01
			f.Add(crc)
		}
	}
	f.Add([]byte(segMagic))
	f.Add([]byte{})
	f.Add([]byte("XPLG1\x00\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var total int
		end := scanSegment(data, func(name string, seq uint64, frames []byte) error {
			// A record the scanner accepts is bounded by construction; an
			// oversize one means the length guard failed and a hostile
			// input could drive allocation arbitrarily high.
			if len(name) > maxNameLen {
				t.Fatalf("accepted record with %d-byte name", len(name))
			}
			if len(frames) > maxRecordBytes {
				t.Fatalf("accepted record with %d-byte frame block", len(frames))
			}
			total += len(frames)
			return nil
		})
		if end < 0 || end > int64(len(data)) {
			t.Fatalf("scan end %d outside input of %d bytes", end, len(data))
		}
		if total > len(data) {
			t.Fatalf("scanner handed out %d frame bytes from a %d-byte input", total, len(data))
		}
		// Boundary validity: truncating to the reported end and rescanning
		// must consume the whole prefix cleanly — recovery truncation is
		// idempotent only if the scanner's tear offset is a record boundary.
		if end2 := scanSegment(data[:end], func(string, uint64, []byte) error { return nil }); end2 != end {
			t.Fatalf("rescan of clean prefix tore again: %d then %d", end, end2)
		}
	})
}

// TestGenerateFuzzCorpus materialises the seed inputs as files in the
// checked-in corpus directory. Run manually after a format change:
//
//	PUBLOG_GEN_CORPUS=1 go test ./internal/publog -run TestGenerateFuzzCorpus
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("PUBLOG_GEN_CORPUS") == "" {
		t.Skip("set PUBLOG_GEN_CORPUS=1 to regenerate the checked-in corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzPublogDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(label string, data []byte) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, label), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	segs := fuzzSeedSegments(t)
	for i, seg := range segs {
		write(fmt.Sprintf("seed-segment-%d", i), seg)
		if len(seg) > 8 {
			write(fmt.Sprintf("seed-torn-%d", i), seg[:len(seg)-3])
			crc := append([]byte(nil), seg...)
			crc[len(crc)-1] ^= 0x01
			write(fmt.Sprintf("seed-badcrc-%d", i), crc)
		}
	}
	write("seed-header-only", []byte(segMagic))
	write("seed-huge-created", []byte("XPLG1\x00\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
}
