package publog

// Segment file format. Each segment is:
//
//	"XPLG1" || uvarint(createdUnixNano) || record*
//
// and each record is the envelope:
//
//	uvarint(bodyLen) || crc32-IEEE(body, 4B little-endian) || body
//
// with body:
//
//	uvarint(len(name)) || name || uvarint(seq) || wirefmt frames
//
// The wirefmt frames are exactly what internal/wirefmt writes for one
// message on a fresh link: zero or more dictionary-extension frames
// followed by one message frame. The symbol dictionary is PER SEGMENT —
// one persistent encoder writes the whole segment, so repeated element
// names cost one varint after first use, and recovery never needs state
// from another file. That is also why reopening a log always rolls a new
// segment: a half-written dictionary cannot be resumed.
//
// Recovery walks the envelopes: the first record whose length or CRC does
// not check out marks the torn tail, and truncating there lands exactly on
// a record boundary. The CRC covers the body, so a bit flip anywhere in a
// record is a tear, not a decode of garbage.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/broker"
	"repro/internal/wirefmt"
)

const (
	segMagic = "XPLG1"
	// maxRecordBytes bounds one record's body: a maximal wirefmt frame
	// (16 MiB) plus the name/seq preamble. A larger declared length is
	// corruption, not a big record.
	maxRecordBytes = wirefmt.MaxFrame + 1<<10
	// maxNameLen bounds a durable subscription name inside a record,
	// matching the wire's symbol bound.
	maxNameLen = wirefmt.MaxName
)

// segmentInfo describes one segment for retention and replay planning.
type segmentInfo struct {
	index   uint64
	path    string
	size    int64
	created int64 // unix nanos from the segment header (0 if unreadable)
	// names maps each durable name to its highest sequence in this
	// segment — retention deletes a segment once every name's cursor has
	// passed its max, and replay skips segments that cannot hold the range.
	names map[string]uint64
}

// segWriter appends records to the active segment through a buffered
// writer, encoding each message with the segment's persistent wirefmt
// encoder (one symbol dictionary per segment).
type segWriter struct {
	segmentInfo
	f       *os.File
	bw      *bufio.Writer
	enc     *wirefmt.Encoder
	encBuf  bytes.Buffer
	scratch []byte
}

func segName(index uint64) string {
	return fmt.Sprintf("seg-%08d.log", index)
}

func newSegWriter(dir string, index uint64) (*segWriter, error) {
	path := filepath.Join(dir, segName(index))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	w := &segWriter{
		segmentInfo: segmentInfo{
			index:   index,
			path:    path,
			created: time.Now().UnixNano(),
			names:   make(map[string]uint64),
		},
		f:  f,
		bw: bufio.NewWriterSize(f, 64<<10),
	}
	w.enc = wirefmt.NewEncoder(&w.encBuf, wirefmt.DefaultLimits)
	hdr := append([]byte(segMagic), binary.AppendUvarint(nil, uint64(w.created))...)
	if _, err := w.bw.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	w.size = int64(len(hdr))
	return w, nil
}

// append encodes one record and writes its envelope into the buffered
// writer, returning the record's on-disk size.
func (w *segWriter) append(name string, seq uint64, m *broker.Message) (int, error) {
	if name == "" || len(name) > maxNameLen {
		return 0, fmt.Errorf("publog: bad durable name (%d bytes)", len(name))
	}
	w.encBuf.Reset()
	if err := w.enc.Encode(m); err != nil {
		return 0, fmt.Errorf("publog: encode record: %w", err)
	}
	b := w.scratch[:0]
	b = binary.AppendUvarint(b, uint64(len(name)))
	b = append(b, name...)
	b = binary.AppendUvarint(b, seq)
	b = append(b, w.encBuf.Bytes()...)
	w.scratch = b // keep the grown capacity
	var env [binary.MaxVarintLen64 + 4]byte
	n := binary.PutUvarint(env[:], uint64(len(b)))
	binary.LittleEndian.PutUint32(env[n:], crc32.ChecksumIEEE(b))
	n += 4
	if _, err := w.bw.Write(env[:n]); err != nil {
		return 0, err
	}
	if _, err := w.bw.Write(b); err != nil {
		return 0, err
	}
	return n + len(b), nil
}

// segHeaderLen returns the length of data's segment header, or 0 when the
// header itself is invalid.
func segHeaderLen(data []byte) int {
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return 0
	}
	_, n := binary.Uvarint(data[len(segMagic):])
	if n <= 0 {
		return 0
	}
	return len(segMagic) + n
}

// segmentCreated reads the header's creation stamp (0 when unreadable).
func segmentCreated(data []byte) int64 {
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return 0
	}
	v, n := binary.Uvarint(data[len(segMagic):])
	if n <= 0 {
		return 0
	}
	return int64(v)
}

// scanSegment walks data's records, calling fn for each whole one, and
// returns the offset of the torn tail: the byte offset at which the first
// invalid record starts. A fully valid segment returns len(data), so
// truncating at the returned offset is always correct and idempotent —
// rescanning data[:offset] finds no tear. fn returning an error stops the
// scan and marks the current record as the tear (its successors depend on
// the segment dictionary state fn's caller could not advance).
func scanSegment(data []byte, fn func(name string, seq uint64, frames []byte) error) int64 {
	hdr := segHeaderLen(data)
	if hdr == 0 {
		return 0
	}
	off := hdr
	for off < len(data) {
		recStart := off
		bodyLen, n := binary.Uvarint(data[off:])
		if n <= 0 || bodyLen == 0 || bodyLen > maxRecordBytes {
			return int64(recStart)
		}
		off += n
		if len(data)-off < 4+int(bodyLen) {
			return int64(recStart)
		}
		crc := binary.LittleEndian.Uint32(data[off:])
		off += 4
		body := data[off : off+int(bodyLen)]
		off += int(bodyLen)
		if crc32.ChecksumIEEE(body) != crc {
			return int64(recStart)
		}
		name, seq, frames, ok := splitBody(body)
		if !ok {
			return int64(recStart)
		}
		if fn != nil {
			if err := fn(name, seq, frames); err != nil {
				return int64(recStart)
			}
		}
	}
	return int64(len(data))
}

// splitBody parses a record body into its name, sequence, and wirefmt
// frame bytes.
func splitBody(body []byte) (name string, seq uint64, frames []byte, ok bool) {
	nl, n := binary.Uvarint(body)
	if n <= 0 || nl == 0 || nl > maxNameLen || int(nl) > len(body)-n {
		return "", 0, nil, false
	}
	name = string(body[n : n+int(nl)])
	rest := body[n+int(nl):]
	seq, n = binary.Uvarint(rest)
	if n <= 0 {
		return "", 0, nil, false
	}
	return name, seq, rest[n:], true
}

// byteFeeder is the io.Reader a recordDecoder drains record frame areas
// through: replay points it at each record's frames in turn, so one
// decoder (one dictionary) serves the whole segment.
type byteFeeder struct {
	data []byte
}

func (f *byteFeeder) Read(p []byte) (int, error) {
	if len(f.data) == 0 {
		return 0, io.EOF
	}
	n := copy(p, f.data)
	f.data = f.data[n:]
	return n, nil
}

// recordDecoder decodes the wirefmt frame areas of one segment's records
// in order, maintaining the per-segment symbol dictionary.
type recordDecoder struct {
	feeder byteFeeder
	br     *bufio.Reader
	dec    *wirefmt.Decoder
}

func newRecordDecoder() *recordDecoder {
	rd := &recordDecoder{}
	rd.br = bufio.NewReader(&rd.feeder)
	rd.dec = wirefmt.NewDecoder(rd.br, wirefmt.DefaultLimits)
	return rd
}

// decode parses one record's frames into a fresh message. The frames must
// contain exactly one message (plus any dictionary extensions); trailing
// bytes are corruption.
func (rd *recordDecoder) decode(frames []byte) (*broker.Message, error) {
	rd.feeder.data = frames
	m := &broker.Message{}
	if err := rd.dec.Decode(m); err != nil {
		return nil, err
	}
	if len(rd.feeder.data) != 0 || rd.br.Buffered() != 0 {
		return nil, fmt.Errorf("publog: %d trailing bytes in record", len(rd.feeder.data)+rd.br.Buffered())
	}
	return m, nil
}

// indexedName pairs a segment file name with its parsed index for sorting.
type indexedName struct {
	name  string
	index uint64
}

// listSegments returns the directory's segment files in index order.
func listSegments(dir string) ([]indexedName, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []indexedName
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		idx, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".log"), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, indexedName{name: name, index: idx})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].index < out[j].index })
	return out, nil
}
