package publog

// Cursor persistence. The per-name acknowledged cursor, highest assigned
// sequence, and subscription expressions live in a single JSON sidecar
// (meta.json), replaced atomically: write a temp file, fsync it, rename
// over the old one. A crash mid-save leaves the previous meta intact —
// and a stale acked cursor only means extra replay, which at-least-once
// delivery permits.

import (
	"encoding/json"
	"os"
	"path/filepath"
)

const metaFile = "meta.json"

// metaDoc is the on-disk shape of the cursor state.
type metaDoc struct {
	Names map[string]*nameMeta `json:"names"`
}

// loadMeta reads meta.json into s.meta; a missing file is an empty store.
func (s *Store) loadMeta() error {
	data, err := os.ReadFile(filepath.Join(s.dir, metaFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var doc metaDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		// A torn meta write never happens (rename is atomic), but a
		// corrupted file should not brick the log: cursors reset to zero
		// and replay over-delivers, which at-least-once permits.
		return nil
	}
	for name, nm := range doc.Names {
		if nm != nil {
			s.meta[name] = nm
		}
	}
	return nil
}

// saveMetaLocked atomically replaces meta.json. Caller holds s.mu.
func (s *Store) saveMetaLocked() error {
	doc := metaDoc{Names: s.meta}
	data, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, metaFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if !s.opts.NoFsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, metaFile)); err != nil {
		return err
	}
	s.metaDirty = false
	return nil
}
