// Package publog is the broker's write-ahead publication log: the
// durability layer under durable named subscriptions (DESIGN.md §5i).
//
// Every publication matched for a durable subscription is appended as one
// CRC-framed binary record (reusing the internal/wirefmt encoding, so the
// log speaks the same dialect as the wire) to a segmented on-disk log.
// Appends go into a buffered writer under the store lock — no syscall on
// the broker's match path in the common case — and are made durable by a
// group-commit goroutine that flushes and fsyncs on a configurable
// interval, so one fsync amortises over every record appended since the
// last one. Acknowledged cursors and the durable subscription expressions
// persist in a sidecar meta file, atomically replaced on update.
//
// Recovery truncates torn tails: a crash mid-record leaves a suffix that
// fails its length or CRC check, and Open cuts the segment back to the
// last whole record (and drops any later segments, which cannot exist in
// a well-formed log). Every record that was fsynced before the crash
// survives. Replay walks the segments read-only and hands back decoded
// publications in append order.
package publog

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/metrics"
)

// Options tunes one store. The zero value is a production-reasonable
// asynchronous log: 8 MiB segments, unlimited retention, group commit on
// every appender wakeup.
type Options struct {
	// SegmentBytes rolls the active segment once it reaches this size
	// (default 8 MiB). Retention deletes whole closed segments, so the
	// segment size bounds retention granularity.
	SegmentBytes int64
	// RetainBytes force-deletes the oldest closed segments once the log
	// exceeds this total size, even if they hold unacknowledged records
	// (0 = never force by size). Fully-acknowledged head segments are
	// reclaimed regardless.
	RetainBytes int64
	// RetainAge force-deletes closed segments older than this
	// (0 = never force by age).
	RetainAge time.Duration
	// FsyncInterval is the group-commit interval: how long an appended
	// record may wait for its fsync while the batch grows. <= 0 commits on
	// every appender wakeup (fsync per drained batch — still batched under
	// load, minimal latency when idle). Ignored with SyncAppend.
	FsyncInterval time.Duration
	// SyncAppend makes Append flush (and fsync, unless NoFsync) inline
	// before returning, and persists cursor updates inline too. This is the
	// deterministic mode the simulator and the crash tests run in; it is
	// also the "one fsync per append" baseline the group-commit benchmark
	// compares against.
	SyncAppend bool
	// NoFsync skips fsync entirely (data still reaches the OS via flush).
	// For simulation and tests; a production broker wants fsync.
	NoFsync bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	return o
}

// nameMeta is the persistent per-durable-name state: the cursor pair and
// the subscription expressions to re-register after a restart.
type nameMeta struct {
	// Acked is the highest sequence the subscriber has acknowledged;
	// replay starts at Acked+1.
	Acked uint64 `json:"acked"`
	// LastSeq is the highest sequence ever assigned. Persisted because
	// retention may delete the segment holding it — recovery would
	// otherwise re-issue sequence numbers.
	LastSeq uint64 `json:"last_seq"`
	// Subs are the subscription's XPath expressions, canonical form.
	Subs []string `json:"subs,omitempty"`
}

// Store is one broker's publication log. Safe for concurrent use; it
// implements broker.DurableStore.
type Store struct {
	dir  string
	opts Options

	mu        sync.Mutex
	segs      []*segmentInfo // closed segments, oldest first
	active    *segWriter
	meta      map[string]*nameMeta
	metaDirty bool
	unsynced  bool // buffered/flushed writes since the last fsync
	closed    bool

	// Group-commit goroutine wiring (async mode only).
	notify chan struct{}
	stop   chan struct{} // graceful: final commit, then exit
	kill   chan struct{} // crash: exit without committing
	done   chan struct{}

	// Counters, read lock-free by the metrics funcs.
	appends          atomic.Int64
	appendBytes      atomic.Int64
	fsyncs           atomic.Int64
	replayed         atomic.Int64
	truncatedBytes   atomic.Int64
	retentionDeleted atomic.Int64
}

// Open opens (or creates) the log in dir, recovering existing segments:
// torn tails are truncated back to the last whole record, per-name cursors
// are rebuilt from the surviving records and the meta file, and a fresh
// active segment is rolled (each segment carries its own symbol
// dictionary, so an interrupted segment is never appended to again).
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:    dir,
		opts:   opts,
		meta:   make(map[string]*nameMeta),
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		kill:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if err := s.loadMeta(); err != nil {
		return nil, err
	}
	if err := s.recoverSegments(); err != nil {
		return nil, err
	}
	next := uint64(1)
	if n := len(s.segs); n > 0 {
		next = s.segs[n-1].index + 1
	}
	w, err := newSegWriter(dir, next)
	if err != nil {
		return nil, err
	}
	s.active = w
	if !opts.SyncAppend {
		go s.appender()
	} else {
		close(s.done)
	}
	return s, nil
}

// recoverSegments scans the on-disk segments oldest-first, truncating the
// first torn tail and deleting everything after it, and folds each
// surviving record's (name, seq) into the cursor state.
func (s *Store) recoverSegments() error {
	names, err := listSegments(s.dir)
	if err != nil {
		return err
	}
	for i, sn := range names {
		path := filepath.Join(s.dir, sn.name)
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		info := &segmentInfo{index: sn.index, path: path, names: make(map[string]uint64)}
		torn := scanSegment(data, func(name string, seq uint64, frames []byte) error {
			if seq > info.names[name] {
				info.names[name] = seq
			}
			nm := s.metaFor(name)
			if seq > nm.LastSeq {
				nm.LastSeq = seq
			}
			return nil
		})
		info.created = segmentCreated(data)
		if torn < int64(len(data)) {
			s.truncatedBytes.Add(int64(len(data)) - torn)
			if torn <= int64(segHeaderLen(data)) {
				// Nothing valid in the file at all — remove it.
				if err := os.Remove(path); err != nil {
					return err
				}
			} else if err := os.Truncate(path, torn); err != nil {
				return err
			} else {
				info.size = torn
				s.segs = append(s.segs, info)
			}
			// A tear implies the crash happened while this segment was
			// active; later segments cannot be part of a well-formed log.
			for _, later := range names[i+1:] {
				lp := filepath.Join(s.dir, later.name)
				if st, err := os.Stat(lp); err == nil {
					s.truncatedBytes.Add(st.Size())
				}
				if err := os.Remove(lp); err != nil {
					return err
				}
			}
			return nil
		}
		info.size = int64(len(data))
		s.segs = append(s.segs, info)
	}
	return nil
}

func (s *Store) metaFor(name string) *nameMeta {
	nm := s.meta[name]
	if nm == nil {
		nm = &nameMeta{}
		s.meta[name] = nm
	}
	return nm
}

var errClosed = fmt.Errorf("publog: store closed")

// Append writes one publication record for a durable subscription. The
// record goes into the active segment's buffered writer; durability
// arrives with the next group commit (or inline with SyncAppend). The
// caller must not reuse m's referenced buffers before Append returns —
// the record is fully encoded inside the call, so m may be recycled
// afterwards.
func (s *Store) Append(name string, seq uint64, m *broker.Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	n, err := s.active.append(name, seq, m)
	if err != nil {
		return err
	}
	s.active.size += int64(n)
	if seq > s.active.names[name] {
		s.active.names[name] = seq
	}
	nm := s.metaFor(name)
	if seq > nm.LastSeq {
		nm.LastSeq = seq
		s.metaDirty = true
	}
	s.appends.Add(1)
	s.appendBytes.Add(int64(n))
	s.unsynced = true
	if s.active.size >= s.opts.SegmentBytes {
		if err := s.roll(); err != nil {
			return err
		}
	}
	if s.opts.SyncAppend {
		return s.syncActiveLocked()
	}
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return nil
}

// syncActiveLocked flushes the active segment and fsyncs it unless
// NoFsync. Caller holds s.mu.
func (s *Store) syncActiveLocked() error {
	if err := s.active.bw.Flush(); err != nil {
		return err
	}
	if !s.opts.NoFsync {
		if err := s.active.f.Sync(); err != nil {
			return err
		}
		s.fsyncs.Add(1)
	}
	s.unsynced = false
	return nil
}

// roll closes the active segment (flushed and fsynced — a closed segment
// is always whole) and opens the next one with a fresh symbol dictionary.
// Caller holds s.mu.
func (s *Store) roll() error {
	if err := s.active.bw.Flush(); err != nil {
		return err
	}
	if !s.opts.NoFsync {
		if err := s.active.f.Sync(); err != nil {
			return err
		}
		s.fsyncs.Add(1)
	}
	if err := s.active.f.Close(); err != nil {
		return err
	}
	s.unsynced = false
	closed := s.active.segmentInfo
	s.segs = append(s.segs, &closed)
	w, err := newSegWriter(s.dir, closed.index+1)
	if err != nil {
		return err
	}
	s.active = w
	s.retainLocked()
	return nil
}

// Ack advances a subscription's acknowledged cursor (monotonic: a stale
// ack is a no-op). The cursor persists with the next group commit, or
// inline with SyncAppend.
func (s *Store) Ack(name string, seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	nm := s.metaFor(name)
	if seq <= nm.Acked {
		return nil
	}
	nm.Acked = seq
	s.metaDirty = true
	if s.opts.SyncAppend {
		return s.saveMetaLocked()
	}
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return nil
}

// SaveSub persists a subscription's expression list, replacing any prior
// list for that name.
func (s *Store) SaveSub(name string, xpes []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	nm := s.metaFor(name)
	nm.Subs = append([]string(nil), xpes...)
	s.metaDirty = true
	if s.opts.SyncAppend {
		return s.saveMetaLocked()
	}
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return nil
}

// Replay hands every logged record for name with from <= seq <= to to fn,
// in append (= sequence) order. The message passed to fn is freshly
// decoded and may be retained. Replay reads the segment files outside the
// store lock — only the initial flush (so buffered appends are visible)
// synchronises with appenders — so a long replay does not stall the
// publish path.
func (s *Store) Replay(name string, from, to uint64, fn func(seq uint64, m *broker.Message) error) error {
	if to < from {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errClosed
	}
	if err := s.active.bw.Flush(); err != nil {
		s.mu.Unlock()
		return err
	}
	paths := make([]string, 0, len(s.segs)+1)
	for _, seg := range s.segs {
		// Skip segments that cannot hold the range.
		if max, ok := seg.names[name]; !ok || max < from {
			continue
		}
		paths = append(paths, seg.path)
	}
	if s.active.names[name] >= from {
		paths = append(paths, s.active.path)
	}
	s.mu.Unlock()

	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rd := newRecordDecoder()
		var fnErr error
		scanSegment(data, func(recName string, seq uint64, frames []byte) error {
			// Every record's frames must be decoded to keep the segment's
			// symbol dictionary in sync, even ones outside the range.
			m, err := rd.decode(frames)
			if err != nil {
				return err
			}
			if recName != name || seq < from || seq > to {
				return nil
			}
			s.replayed.Add(1)
			if err := fn(seq, m); err != nil {
				fnErr = err
				return err
			}
			return nil
		})
		if fnErr != nil {
			return fnErr
		}
	}
	return nil
}

// Recover reports the per-name durable state rebuilt at Open — the broker
// re-registers each subscription and resumes its sequence counter from it.
func (s *Store) Recover() []broker.DurableState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]broker.DurableState, 0, len(s.meta))
	for name, nm := range s.meta {
		out = append(out, broker.DurableState{
			Name:    name,
			LastSeq: nm.LastSeq,
			Acked:   nm.Acked,
			Subs:    append([]string(nil), nm.Subs...),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// retainLocked deletes closed head segments: always when every record in
// the segment is acknowledged, and regardless of acknowledgement when the
// log is over its size or age budget. It never touches the active segment
// and stops at the first segment it must keep. Caller holds s.mu.
func (s *Store) retainLocked() {
	now := time.Now()
	for len(s.segs) > 0 {
		head := s.segs[0]
		acked := true
		for name, max := range head.names {
			if nm := s.meta[name]; nm == nil || nm.Acked < max {
				acked = false
				break
			}
		}
		forced := false
		if s.opts.RetainBytes > 0 && s.sizeLocked() > s.opts.RetainBytes {
			forced = true
		}
		if !forced && s.opts.RetainAge > 0 && head.created > 0 &&
			now.Sub(time.Unix(0, head.created)) > s.opts.RetainAge {
			forced = true
		}
		if !acked && !forced {
			return
		}
		if err := os.Remove(head.path); err != nil {
			return
		}
		s.retentionDeleted.Add(1)
		s.segs = s.segs[1:]
	}
}

// sizeLocked totals the log's on-disk bytes. Caller holds s.mu.
func (s *Store) sizeLocked() int64 {
	total := s.active.size
	for _, seg := range s.segs {
		total += seg.size
	}
	return total
}

// appender is the group-commit goroutine: it flushes, fsyncs, persists
// dirty cursors, and runs retention — either on every wakeup
// (FsyncInterval <= 0) or on the interval ticker, so any number of
// appends share one fsync.
func (s *Store) appender() {
	defer close(s.done)
	var tickC <-chan time.Time
	if s.opts.FsyncInterval > 0 {
		t := time.NewTicker(s.opts.FsyncInterval)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case <-s.kill:
			return
		case <-s.stop:
			s.commit()
			return
		case <-s.notify:
			if tickC != nil {
				continue // the ticker owns the commit cadence
			}
			s.commit()
		case <-tickC:
			s.commit()
		}
	}
}

// commit is one group commit. The flush happens under the lock; the fsync
// happens outside it, so appends keep flowing into the buffer while the
// disk catches up. A roll racing the fsync closes the file first — the
// roll has already fsynced it, so the lost Sync is harmless.
func (s *Store) commit() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	var f *os.File
	if s.unsynced {
		if err := s.active.bw.Flush(); err == nil {
			f = s.active.f
			s.unsynced = false
		}
	}
	if s.metaDirty {
		s.saveMetaLocked()
	}
	s.retainLocked()
	s.mu.Unlock()
	if f != nil && !s.opts.NoFsync {
		if err := f.Sync(); err == nil {
			s.fsyncs.Add(1)
		}
	}
}

// Close commits everything outstanding and closes the log.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	if !s.opts.SyncAppend {
		close(s.stop)
		<-s.done
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	err := s.active.bw.Flush()
	if err == nil && !s.opts.NoFsync {
		err = s.active.f.Sync()
	}
	if s.metaDirty {
		if merr := s.saveMetaLocked(); err == nil {
			err = merr
		}
	}
	if cerr := s.active.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Crash closes the store the way a process kill would: the group-commit
// goroutine stops without a final commit, the buffered (unflushed) tail of
// the active segment is dropped, and no cursor state is persisted. Bytes
// already flushed to the OS survive, mirroring a crashed process whose
// page cache reached the file. Tests reopen the directory afterwards to
// exercise recovery.
func (s *Store) Crash() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	if !s.opts.SyncAppend {
		close(s.kill)
		<-s.done
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	// No flush: the bufio tail dies with the "process".
	s.active.f.Close()
}

// Dir returns the log directory.
func (s *Store) Dir() string { return s.dir }

// RegisterMetrics publishes the store's instruments as func-backed series
// (xbroker_publog_*) on reg.
func (s *Store) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("xbroker_publog_appends_total",
		"Publication records appended to the write-ahead log.",
		func() float64 { return float64(s.appends.Load()) })
	reg.CounterFunc("xbroker_publog_append_bytes_total",
		"Bytes appended to the write-ahead log.",
		func() float64 { return float64(s.appendBytes.Load()) })
	reg.CounterFunc("xbroker_publog_fsyncs_total",
		"Group commits fsynced to disk.",
		func() float64 { return float64(s.fsyncs.Load()) })
	reg.CounterFunc("xbroker_publog_replayed_records_total",
		"Records decoded and handed back by replay.",
		func() float64 { return float64(s.replayed.Load()) })
	reg.CounterFunc("xbroker_publog_truncated_bytes_total",
		"Torn-tail bytes truncated during crash recovery.",
		func() float64 { return float64(s.truncatedBytes.Load()) })
	reg.CounterFunc("xbroker_publog_retention_segments_deleted_total",
		"Closed segments reclaimed by retention.",
		func() float64 { return float64(s.retentionDeleted.Load()) })
	reg.GaugeFunc("xbroker_publog_segments",
		"Log segments on disk, including the active one.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.segs) + 1)
		})
	reg.GaugeFunc("xbroker_publog_size_bytes",
		"Total log size on disk.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.sizeLocked())
		})
	reg.GaugeFunc("xbroker_publog_names",
		"Durable subscription names tracked by the log.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.meta))
		})
	reg.GaugeFunc("xbroker_publog_lag",
		"Worst-case replay lag: max over durable subscriptions of assigned minus acknowledged sequence.",
		func() float64 { return float64(s.maxLag()) })
}

func (s *Store) maxLag() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var lag uint64
	for _, nm := range s.meta {
		if nm.LastSeq > nm.Acked && nm.LastSeq-nm.Acked > lag {
			lag = nm.LastSeq - nm.Acked
		}
	}
	return lag
}

// NameStatus is one durable subscription's cursor state for /statusz.
type NameStatus struct {
	Name    string   `json:"name"`
	LastSeq uint64   `json:"last_seq"`
	Acked   uint64   `json:"acked"`
	Lag     uint64   `json:"lag"`
	Subs    []string `json:"subs,omitempty"`
}

// StoreStatus is the store's /statusz document.
type StoreStatus struct {
	Dir       string       `json:"dir"`
	Segments  int          `json:"segments"`
	SizeBytes int64        `json:"size_bytes"`
	Names     []NameStatus `json:"names,omitempty"`
}

// Status snapshots the store for the admin endpoint.
func (s *Store) Status() StoreStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStatus{
		Dir:       s.dir,
		Segments:  len(s.segs) + 1,
		SizeBytes: s.sizeLocked(),
	}
	for name, nm := range s.meta {
		ns := NameStatus{Name: name, LastSeq: nm.LastSeq, Acked: nm.Acked, Subs: append([]string(nil), nm.Subs...)}
		if nm.LastSeq > nm.Acked {
			ns.Lag = nm.LastSeq - nm.Acked
		}
		st.Names = append(st.Names, ns)
	}
	sort.Slice(st.Names, func(i, j int) bool { return st.Names[i].Name < st.Names[j].Name })
	return st
}
