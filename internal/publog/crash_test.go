package publog

// Crash-exactness tests: kill the log at seeded byte offsets (derived from
// deterministic faultinject plans, so a failure reproduces from its seed
// alone), reopen, and hold recovery to the format's contract — the torn
// tail is truncated back to a record boundary, every record wholly on disk
// before the kill survives, truncation is idempotent, and the reopened log
// accepts appends.

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// recordEnds walks a segment's envelope chain independently of scanSegment
// (an independent reimplementation, so a bug in the production walk cannot
// hide in the test oracle) and returns each record's end offset.
func recordEnds(t *testing.T, data []byte) []int64 {
	t.Helper()
	off := segHeaderLen(data)
	if off == 0 {
		t.Fatal("reference segment has no valid header")
	}
	var ends []int64
	for off < len(data) {
		bodyLen, n := binary.Uvarint(data[off:])
		if n <= 0 {
			t.Fatalf("reference segment torn at %d", off)
		}
		off += n + 4 + int(bodyLen)
		if off > len(data) {
			t.Fatalf("reference segment truncated mid-record at %d", off)
		}
		ends = append(ends, int64(off))
	}
	return ends
}

// buildRefLog writes a clean single-segment log with total records for name
// "n" and returns its directory and the segment bytes.
func buildRefLog(t *testing.T, total int) (string, []byte) {
	t.Helper()
	dir := t.TempDir()
	s := mustOpen(t, dir, syncOpts)
	for i := 1; i <= total; i++ {
		if err := s.Append("n", uint64(i), pubMsg(uint64(i), "order", "line", "item")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	return dir, data
}

// trialDir builds a fresh log directory holding the damaged segment bytes
// (no meta file: recovery must rebuild cursors from the records alone).
func trialDir(t *testing.T, seg []byte) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(1)), seg, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// seededOffsets turns a faultinject plan into deterministic byte offsets in
// [1, size): each fault event's time, scaled into the file.
func seededOffsets(seed int64, count, size int) []int64 {
	plan := faultinject.New(seed, faultinject.Options{
		Brokers: []string{"publog"},
		Faults:  count,
		Horizon: time.Duration(size) * time.Nanosecond,
		MinDown: 1,
		MaxDown: 2,
	})
	var offs []int64
	for _, ev := range plan.Events {
		off := int64(ev.At) % int64(size)
		if off < 1 {
			off = 1
		}
		offs = append(offs, off)
	}
	return offs
}

func TestCrashTruncationAtSeededOffsets(t *testing.T) {
	const total = 25
	_, data := buildRefLog(t, total)
	ends := recordEnds(t, data)
	if len(ends) != total {
		t.Fatalf("reference log has %d records, want %d", len(ends), total)
	}
	survivors := func(cut int64) int {
		n := 0
		for _, e := range ends {
			if e <= cut {
				n++
			}
		}
		return n
	}
	for _, seed := range []int64{1, 2, 3} {
		for _, off := range seededOffsets(seed, 10, len(data)) {
			dir := trialDir(t, data[:off])
			s, err := Open(dir, syncOpts)
			if err != nil {
				t.Fatalf("seed %d cut %d: Open: %v", seed, off, err)
			}
			want := survivors(off)
			got := collect(t, s, "n", 1, total)
			if len(got) != want {
				t.Fatalf("seed %d cut %d: %d records survived, want %d", seed, off, len(got), want)
			}
			for i, seq := range got {
				if seq != uint64(i+1) {
					t.Fatalf("seed %d cut %d: survivor %d has seq %d", seed, off, i, seq)
				}
			}
			// Sequence numbering resumes above the survivors (no meta file,
			// so LastSeq comes from the records themselves).
			var last uint64
			for _, st := range s.Recover() {
				if st.Name == "n" {
					last = st.LastSeq
				}
			}
			if want > 0 && last != uint64(want) {
				t.Fatalf("seed %d cut %d: recovered LastSeq %d, want %d", seed, off, last, want)
			}
			// The reopened log accepts appends and replays them.
			if err := s.Append("n", last+1, pubMsg(last+1, "post", "crash")); err != nil {
				t.Fatalf("seed %d cut %d: post-recovery append: %v", seed, off, err)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("seed %d cut %d: Close: %v", seed, off, err)
			}
			// Idempotence: a second recovery finds nothing more to truncate.
			s2, err := Open(dir, syncOpts)
			if err != nil {
				t.Fatalf("seed %d cut %d: reopen: %v", seed, off, err)
			}
			if tb := s2.truncatedBytes.Load(); tb != 0 {
				t.Fatalf("seed %d cut %d: second recovery truncated %d bytes", seed, off, tb)
			}
			if got := collect(t, s2, "n", 1, total+1); len(got) != want+1 {
				t.Fatalf("seed %d cut %d: %d records after reopen, want %d", seed, off, len(got), want+1)
			}
			s2.Close()
		}
	}
}

func TestCrashCorruptionAtSeededOffsets(t *testing.T) {
	const total = 20
	_, data := buildRefLog(t, total)
	ends := recordEnds(t, data)
	hdr := int64(segHeaderLen(data))
	// recordOf returns the index of the record containing byte off.
	recordOf := func(off int64) int {
		start := hdr
		for i, e := range ends {
			if off >= start && off < e {
				return i
			}
			start = e
		}
		return len(ends)
	}
	for _, seed := range []int64{7, 8} {
		for _, off := range seededOffsets(seed, 8, len(data)) {
			if off < hdr {
				off = hdr // header corruption is a different failure class
			}
			seg := append([]byte(nil), data...)
			seg[off] ^= 0x40
			dir := trialDir(t, seg)
			s, err := Open(dir, syncOpts)
			if err != nil {
				t.Fatalf("seed %d flip %d: Open: %v", seed, off, err)
			}
			// The CRC catches the flip: everything before the corrupted
			// record survives, the corrupted record and its tail do not
			// (append-only log — a bad record means the tail is untrusted).
			want := recordOf(off)
			if got := collect(t, s, "n", 1, total); len(got) != want {
				t.Fatalf("seed %d flip %d: %d records survived, want %d", seed, off, len(got), want)
			}
			s.Close()
		}
	}
}

func TestCrashMidSegmentDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	opts := syncOpts
	opts.SegmentBytes = 300
	s := mustOpen(t, dir, opts)
	const total = 40
	for i := 1; i <= total; i++ {
		if err := s.Append("n", uint64(i), pubMsg(uint64(i), "some", "longer", "path")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d (err %v)", len(segs), err)
	}
	// Tear the middle segment in half: recovery must keep everything before
	// it, truncate it, and delete every later segment — a tear means the
	// crash happened while that segment was active, so later files cannot
	// belong to this log's history.
	mid := segs[1]
	midPath := filepath.Join(dir, mid.name)
	midData, err := os.ReadFile(midPath)
	if err != nil {
		t.Fatal(err)
	}
	midEnds := recordEnds(t, midData)
	cut := (midEnds[0] + midEnds[len(midEnds)-1]) / 2
	if err := os.Truncate(midPath, cut); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, metaFile)) // cursors rebuilt from records

	s2 := mustOpen(t, dir, opts)
	defer s2.Close()
	seg1Data, err := os.ReadFile(filepath.Join(dir, segName(segs[0].index)))
	if err != nil {
		t.Fatal(err)
	}
	wantSurvivors := len(recordEnds(t, seg1Data))
	for _, e := range midEnds {
		if e <= cut {
			wantSurvivors++
		}
	}
	got := collect(t, s2, "n", 1, total)
	if len(got) != wantSurvivors {
		t.Fatalf("%d records survived mid-segment tear, want %d", len(got), wantSurvivors)
	}
	// The old later segments are gone. (The reopened store rolls a fresh
	// active segment that may reuse the next index, so the check is on
	// content, not file names: anything present must be the new empty
	// segment, not recovered records.)
	for _, later := range segs[2:] {
		st, err := os.Stat(filepath.Join(dir, later.name))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() > int64(len(segMagic)+binary.MaxVarintLen64) {
			t.Fatalf("later segment %s survived a mid-log tear (%d bytes)", later.name, st.Size())
		}
	}
}

func TestCrashDropsBufferedTail(t *testing.T) {
	dir := t.TempDir()
	// Group-commit mode with an interval no test run will reach: appends sit
	// in the buffered writer, and Crash kills the process before any commit.
	s := mustOpen(t, dir, Options{FsyncInterval: time.Hour, NoFsync: true})
	for i := uint64(1); i <= 10; i++ {
		if err := s.Append("n", i, pubMsg(i, "p")); err != nil {
			t.Fatal(err)
		}
	}
	s.Crash()

	s2 := mustOpen(t, dir, syncOpts)
	defer s2.Close()
	// Everything was in the bufio tail; process death loses it all — and
	// recovery must land on the empty-but-valid segment, not an error.
	if got := collect(t, s2, "n", 1, 10); len(got) != 0 {
		t.Fatalf("%d buffered records survived a crash without commit", len(got))
	}
}

func TestShortWriteJunkTailTruncated(t *testing.T) {
	dir, data := buildRefLog(t, 10)
	// A short write at disk-full: the tail of the last record made it only
	// partially, followed by whatever bytes were in the block. Model it as
	// the clean log plus a partial envelope of garbage.
	junk := append(append([]byte(nil), data...), 0x85, 0xff, 0x03, 0x00, 0xde, 0xad)
	segPath := filepath.Join(dir, segName(1))
	if err := os.WriteFile(segPath, junk, 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, syncOpts)
	defer s.Close()
	if got := collect(t, s, "n", 1, 10); len(got) != 10 {
		t.Fatalf("%d records after junk-tail recovery, want 10", len(got))
	}
	if tb := s.truncatedBytes.Load(); tb != 6 {
		t.Fatalf("truncated %d junk bytes, want 6", tb)
	}
}

func TestAppendFailsAfterWriterLoss(t *testing.T) {
	// Disk-full stand-in: the underlying file dies out from under the
	// writer; SyncAppend must surface the error instead of pretending the
	// record is durable.
	s := mustOpen(t, t.TempDir(), Options{SyncAppend: true})
	defer s.Crash()
	s.mu.Lock()
	s.active.f.Close()
	s.mu.Unlock()
	var err error
	// The first writes may land in bufio's buffer; keep appending until the
	// flush hits the dead file.
	for i := uint64(1); i <= 4; i++ {
		if err = s.Append("n", i, pubMsg(i, "p")); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("appends kept succeeding after the segment file was lost")
	}
}
