package broker_test

// Property test for durable subscriptions, run from outside the package so
// it can pair the broker with the real publication log (publog imports
// broker, so the in-package tests cannot). A seeded random interleaving of
// matching publishes, non-matching publishes, acks, and reattach-replays is
// checked step by step against a three-variable model (last sequence,
// acked cursor, delivery count): sequences are assigned monotonically with
// no gaps, the acked cursor never moves backwards, every replay is exactly
// the bracket (acked, last], and replaying twice with nothing in between
// yields the identical sequence run — replay idempotence.

import (
	"math/rand"
	"testing"

	"repro/internal/broker"
	"repro/internal/publog"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// durRig is one broker wired to a real log with a single durable client.
type durRig struct {
	t     *testing.T
	b     *broker.Broker
	store *publog.Store
	dir   string
	sent  []*broker.Message // messages emitted to the client
	read  int               // drain cursor into sent
}

const durClient = "alice"

func newDurRig(t *testing.T, dir string) *durRig {
	t.Helper()
	store, err := publog.Open(dir, publog.Options{SyncAppend: true, NoFsync: true})
	if err != nil {
		t.Fatalf("publog.Open: %v", err)
	}
	r := &durRig{t: t, store: store, dir: dir}
	r.b = broker.New(broker.Config{ID: "b1", Durable: store}, func(to string, m *broker.Message) {
		if to == durClient {
			r.sent = append(r.sent, m)
		}
	})
	r.b.AddClient(durClient)
	t.Cleanup(func() { store.Close() })
	return r
}

// drain returns the messages emitted since the previous drain.
func (r *durRig) drain() []*broker.Message {
	out := r.sent[r.read:]
	r.read = len(r.sent)
	return out
}

func (r *durRig) subscribe(expr string) {
	r.b.HandleMessage(&broker.Message{
		Type: broker.MsgSubscribeDurable, Durable: "orders", XPE: xpath.MustParse(expr),
	}, durClient)
}

func (r *durRig) publish(doc uint64, path ...string) {
	r.b.HandleMessage(&broker.Message{
		Type: broker.MsgPublish,
		Pub:  xmldoc.Publication{DocID: doc, Path: path},
	}, "producer")
}

func (r *durRig) ack(seq uint64) {
	r.b.HandleMessage(&broker.Message{Type: broker.MsgAck, Durable: "orders", Seq: seq}, durClient)
}

// status returns the broker's view of the "orders" subscription.
func (r *durRig) status() broker.DurableStatus {
	for _, st := range r.b.Durables() {
		if st.Name == "orders" {
			return st
		}
	}
	r.t.Fatal("durable subscription missing from Durables()")
	return broker.DurableStatus{}
}

// expectReplay asserts that msgs is exactly one replay bracket covering
// (acked, last] and returns the replayed sequence run.
func expectReplay(t *testing.T, msgs []*broker.Message, acked, last uint64) []uint64 {
	t.Helper()
	if len(msgs) < 2 {
		t.Fatalf("replay produced %d messages, want at least begin+end", len(msgs))
	}
	begin, end := msgs[0], msgs[len(msgs)-1]
	if begin.Type != broker.MsgReplayBegin || begin.Seq != acked+1 {
		t.Fatalf("replay opened with %v seq %d, want begin seq %d", begin.Type, begin.Seq, acked+1)
	}
	if end.Type != broker.MsgReplayEnd || end.Seq != last {
		t.Fatalf("replay closed with %v seq %d, want end seq %d", end.Type, end.Seq, last)
	}
	var seqs []uint64
	for _, m := range msgs[1 : len(msgs)-1] {
		if m.Type != broker.MsgPublish || m.Durable != "orders" {
			t.Fatalf("replay contained %v durable %q", m.Type, m.Durable)
		}
		seqs = append(seqs, m.Seq)
	}
	if uint64(len(seqs)) != last-acked {
		t.Fatalf("replayed %d records for bracket (%d, %d]", len(seqs), acked, last)
	}
	for i, s := range seqs {
		if s != acked+1+uint64(i) {
			t.Fatalf("replayed seq %d at position %d, want %d (contiguous ascending)", s, i, acked+1+uint64(i))
		}
	}
	return seqs
}

func TestDurablePropertyRandomInterleavings(t *testing.T) {
	for _, seed := range []int64{11, 42, 1729} {
		rng := rand.New(rand.NewSource(seed))
		r := newDurRig(t, t.TempDir())
		r.subscribe("/stock//price")
		// Initial subscribe from an attached client replays the empty log.
		expectReplay(t, r.drain(), 0, 0)

		var last, acked uint64 // the model
		var nextDoc uint64 = 1
		for op := 0; op < 400; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // matching publish → one live delivery, seq = last+1
				doc := nextDoc
				nextDoc++
				r.publish(doc, "stock", "quote", "price")
				last++
				got := r.drain()
				if len(got) != 1 || got[0].Type != broker.MsgPublish {
					t.Fatalf("seed %d op %d: matching publish emitted %d messages", seed, op, len(got))
				}
				if got[0].Seq != last || got[0].Durable != "orders" || got[0].Pub.DocID != doc {
					t.Fatalf("seed %d op %d: delivery seq %d durable %q doc %d, want seq %d doc %d",
						seed, op, got[0].Seq, got[0].Durable, got[0].Pub.DocID, last, doc)
				}
			case 4, 5: // non-matching publish → silence, no sequence burned
				r.publish(nextDoc, "weather", "report")
				nextDoc++
				if got := r.drain(); len(got) != 0 {
					t.Fatalf("seed %d op %d: non-matching publish delivered %d messages", seed, op, len(got))
				}
			case 6, 7: // ack a random already-delivered sequence
				if last == 0 {
					continue
				}
				k := uint64(rng.Int63n(int64(last))) + 1
				r.ack(k)
				if k > acked {
					acked = k
				}
				// Stale acks (k <= acked) must not move the cursor back.
				if st := r.status(); st.Acked != acked {
					t.Fatalf("seed %d op %d: acked cursor %d after ack(%d), want %d", seed, op, st.Acked, k, acked)
				}
			case 8, 9: // reattach: re-subscribe replays the unacked bracket
				r.subscribe("/stock//price")
				first := expectReplay(t, r.drain(), acked, last)
				// Idempotence: an immediate second replay is identical.
				r.subscribe("/stock//price")
				second := expectReplay(t, r.drain(), acked, last)
				if len(first) != len(second) {
					t.Fatalf("seed %d op %d: replay not idempotent: %d then %d records", seed, op, len(first), len(second))
				}
			}
			if st := r.status(); st.Seq != last || st.Acked != acked {
				t.Fatalf("seed %d op %d: broker state (seq %d, acked %d) diverged from model (%d, %d)",
					seed, op, st.Seq, st.Acked, last, acked)
			}
		}
	}
}

// TestDurableRecoveryReplaysOnlyUnacked is the cold-restart half: a new
// broker over the same directory recovers cursors and the persisted
// expression, and the client's reattach replays exactly the unacked tail.
func TestDurableRecoveryReplaysOnlyUnacked(t *testing.T) {
	dir := t.TempDir()
	r := newDurRig(t, dir)
	r.subscribe("/stock//price")
	for doc := uint64(1); doc <= 6; doc++ {
		r.publish(doc, "stock", "price")
	}
	r.ack(4)
	if err := r.store.Close(); err != nil {
		t.Fatal(err)
	}

	r2 := newDurRig(t, dir)
	r2.b.RecoverDurable()
	if st := r2.status(); st.Seq != 6 || st.Acked != 4 {
		t.Fatalf("recovered (seq %d, acked %d), want (6, 4)", st.Seq, st.Acked)
	}
	// The recovered subscription must match without the client re-sending
	// its expression: publish before any reattach still sequences and logs.
	r2.publish(7, "stock", "price")
	if st := r2.status(); st.Seq != 7 {
		t.Fatalf("post-recovery publish did not sequence: seq %d", st.Seq)
	}
	r2.drain() // no attached peer yet; nothing should have been emitted
	if r2.read != 0 {
		t.Fatalf("detached durable emitted %d messages", r2.read)
	}
	r2.subscribe("/stock//price")
	seqs := expectReplay(t, r2.drain(), 4, 7)
	if len(seqs) != 3 {
		t.Fatalf("recovery replayed %d records, want 3 (seqs 5..7)", len(seqs))
	}
}
