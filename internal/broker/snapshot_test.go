package broker

import (
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// TestPublishIsLockFree pins the data-plane contract: matching and forwarding
// a publication acquires no broker mutex. The test holds the control-plane
// lock exclusively and requires a concurrent publication to complete anyway —
// if handlePublish touched b.mu (as the pre-snapshot broker did with RLock),
// the publish would block until the timeout.
func TestPublishIsLockFree(t *testing.T) {
	var mu sync.Mutex // guards delivered (the send callback's own state)
	delivered := 0
	b := New(Config{ID: "b1"}, func(to string, m *Message) {
		mu.Lock()
		delivered++
		mu.Unlock()
	})
	b.AddClient("c1")
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: xpath.MustParse("/a/b")}, "c1")

	b.mu.Lock()
	done := make(chan struct{})
	go func() {
		b.HandleMessage(&Message{Type: MsgPublish, Pub: xmldoc.Publication{Path: []string{"a", "b"}}}, "p1")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		b.mu.Unlock()
		t.Fatal("publish blocked while the control-plane lock was held: data plane is not lock-free")
	}
	b.mu.Unlock()
	mu.Lock()
	defer mu.Unlock()
	if delivered != 1 {
		t.Errorf("delivered %d publications under the held lock, want 1", delivered)
	}
}

// TestSnapshotEpochSemantics pins when the epoch moves: every effective
// control-plane change bumps it exactly once, while publications and no-op
// control messages (flood duplicates, pure subscription repeats) leave it
// unchanged.
func TestSnapshotEpochSemantics(t *testing.T) {
	b, _ := newTestBroker(Config{})
	if got := b.SnapshotEpoch(); got != 0 {
		t.Fatalf("fresh broker epoch = %d, want 0", got)
	}

	b.AddClient("c1")
	afterClient := b.SnapshotEpoch()
	if afterClient == 0 {
		t.Error("AddClient did not bump the epoch")
	}

	b.HandleMessage(sub("/a/b"), "c1")
	afterSub := b.SnapshotEpoch()
	if afterSub <= afterClient {
		t.Errorf("subscribe: epoch %d, want > %d", afterSub, afterClient)
	}

	// A pure repeat of the same subscription from the same peer changes no
	// routing state and must not swap the snapshot.
	b.HandleMessage(sub("/a/b"), "c1")
	if got := b.SnapshotEpoch(); got != afterSub {
		t.Errorf("duplicate subscribe bumped the epoch to %d", got)
	}

	// Publications are data plane: they never touch the snapshot.
	for i := 0; i < 3; i++ {
		b.HandleMessage(&Message{Type: MsgPublish, Pub: xmldoc.Publication{Path: []string{"a", "b"}}}, "p1")
	}
	if got := b.SnapshotEpoch(); got != afterSub {
		t.Errorf("publishes bumped the epoch to %d", got)
	}

	b.HandleMessage(&Message{Type: MsgUnsubscribe, XPE: xpath.MustParse("/a/b")}, "c1")
	if got := b.SnapshotEpoch(); got <= afterSub {
		t.Errorf("unsubscribe: epoch %d, want > %d", got, afterSub)
	}

	// Unsubscribing an unknown expression is a no-op.
	before := b.SnapshotEpoch()
	b.HandleMessage(&Message{Type: MsgUnsubscribe, XPE: xpath.MustParse("/nope")}, "c1")
	if got := b.SnapshotEpoch(); got != before {
		t.Errorf("no-op unsubscribe bumped the epoch to %d", got)
	}
}

// TestSnapshotEpochAdvertisements checks the SRT component: effective
// advertisement changes bump the epoch, flood duplicates do not.
func TestSnapshotEpochAdvertisements(t *testing.T) {
	b, _ := newTestBroker(Config{UseAdvertisements: true})
	b.AddNeighbor("b2")
	b.AddNeighbor("b3")

	b.HandleMessage(adv("a1", "/x/y"), "b2")
	afterAdv := b.SnapshotEpoch()
	if afterAdv == 0 {
		t.Error("advertise did not bump the epoch")
	}
	b.HandleMessage(adv("a1", "/x/y"), "b3") // flooding duplicate
	if got := b.SnapshotEpoch(); got != afterAdv {
		t.Errorf("duplicate advertise bumped the epoch to %d", got)
	}
	b.HandleMessage(&Message{Type: MsgUnadvertise, AdvID: "a1"}, "b2")
	if got := b.SnapshotEpoch(); got <= afterAdv {
		t.Errorf("unadvertise: epoch %d, want > %d", got, afterAdv)
	}
}

// TestTraceHopRecordsEpoch checks that traced publications carry the epoch
// they matched under, and that the recorded epoch tracks control changes.
func TestTraceHopRecordsEpoch(t *testing.T) {
	ring := trace.NewRing(8)
	b := New(Config{ID: "b1", TraceSink: ring}, func(string, *Message) {})
	b.AddClient("c1")
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: xpath.MustParse("/a")}, "c1")
	want := b.SnapshotEpoch()

	publish := func(id string) trace.Hop {
		t.Helper()
		b.HandleMessage(&Message{
			Type:    MsgPublish,
			Pub:     xmldoc.Publication{Path: []string{"a"}},
			TraceID: id,
		}, "p1")
		evs := ring.ByID(id)
		if len(evs) != 1 {
			t.Fatalf("ring has %d events for %s, want 1", len(evs), id)
		}
		hops := evs[0].Hops
		if len(hops) != 1 {
			t.Fatalf("hop list = %v, want exactly this broker", hops)
		}
		return hops[0]
	}

	if hop := publish("t1"); hop.Epoch != want {
		t.Errorf("hop epoch = %d, want %d", hop.Epoch, want)
	}
	// A control change moves the epoch; the next traced publication records
	// the new one.
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: xpath.MustParse("/a/b")}, "c1")
	want2 := b.SnapshotEpoch()
	if want2 <= want {
		t.Fatalf("epoch did not advance: %d", want2)
	}
	if hop := publish("t2"); hop.Epoch != want2 {
		t.Errorf("hop epoch after control change = %d, want %d", hop.Epoch, want2)
	}
}

// TestSnapshotSeesControlChange checks the swap ordering: a publication
// handled after HandleMessage returns for a subscribe/unsubscribe observes
// that change (the snapshot is published before the control lock drops).
func TestSnapshotSeesControlChange(t *testing.T) {
	b, cap := newTestBroker(Config{})
	b.AddClient("c1")
	pub := &Message{Type: MsgPublish, Pub: xmldoc.Publication{Path: []string{"a", "b"}}}

	b.HandleMessage(pub, "p1")
	if got := cap.count(MsgPublish); got != 0 {
		t.Fatalf("publish before subscribe delivered %d times", got)
	}
	b.HandleMessage(sub("/a/b"), "c1")
	b.HandleMessage(pub, "p1")
	if got := cap.count(MsgPublish); got != 1 {
		t.Fatalf("publish after subscribe delivered %d times, want 1", got)
	}
	b.HandleMessage(&Message{Type: MsgUnsubscribe, XPE: xpath.MustParse("/a/b")}, "c1")
	b.HandleMessage(pub, "p1")
	if got := cap.count(MsgPublish); got != 1 {
		t.Fatalf("publish after unsubscribe delivered %d times, want still 1", got)
	}
}
