package broker

import (
	"repro/internal/advert"
	"repro/internal/subtree"
	"repro/internal/xpath"
)

// ResyncState is the full control state one broker owes a neighbour: every
// advertisement it would have flooded there and every subscription it has
// forwarded there. It is the payload of a MsgResync message, emitted by
// ResyncFor when a link heals or a crashed neighbour restarts.
//
// The state is a *complete* claim, not an incremental one: the receiver
// treats entries attributed to the sender that are absent from the message
// as withdrawn. That makes resync an anti-entropy exchange — applying it is
// idempotent, and a pair of resyncs (one per direction) converges a healed
// link to the exact tables of a fault-free run even when control messages
// were lost in both directions during the outage.
type ResyncState struct {
	// Advs lists every (ID, advertisement) pair the sender's SRT holds with
	// a last hop other than the receiver — the set the sender's floods would
	// have delivered. Covered-duplicate IDs are listed with the covering
	// entry's pattern so the receiver's own dedup state stays reachable.
	Advs []ResyncAdv
	// Subs lists every PRT expression the sender has forwarded to the
	// receiver (including forwards that were lost in flight: the sender
	// marks forwarding before the network outcome is known).
	Subs []*xpath.XPE
}

// ResyncAdv is one advertisement entry of a resync payload.
type ResyncAdv struct {
	ID  string
	Adv *advert.Advertisement
}

// ResyncFor emits the broker's full owed control state to a neighbouring
// broker as one MsgResync message. Transports call it after a broken link to
// the peer has been re-established (and the discrete-event simulator calls
// it when a partition heals or a crashed broker restarts); the peer applies
// the state as a diff, so calling it spuriously is harmless.
//
// The message is built and emitted under the exclusive control-plane lock:
// no control change can interleave between the snapshot of the tables and
// the emission, so the claim is internally consistent.
func (b *Broker) ResyncFor(peer string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.clients[peer] {
		return // clients resync themselves by replaying their subscriptions
	}
	st := &ResyncState{}
	for id, e := range b.srtByID {
		if e.lastHop != peer {
			st.Advs = append(st.Advs, ResyncAdv{ID: id, Adv: e.adv})
		}
	}
	b.prt.Walk(func(n *subtree.Node) {
		if s := stateOf(n); s != nil && s.forwardedTo[peer] {
			st.Subs = append(st.Subs, n.XPE)
		}
	})
	b.emit(peer, &Message{Type: MsgResync, Resync: st})
}

// handleResync applies a neighbour's resync claim as a diff against the
// local tables. Runs under the exclusive lock (see HandleMessage); the
// snapshot swap after it makes the whole exchange atomic for the publish
// plane. Application order matters: advertisements first (subscription
// forwarding consults the SRT), then garbage collection of entries the
// sender no longer claims, then subscriptions, then subscription GC.
func (b *Broker) handleResync(m *Message, from string) {
	if m.Resync == nil || b.clients[from] {
		return // resync is a broker-to-broker exchange
	}
	// Advertisements the sender claims but we lack: apply through the normal
	// handler so they flood onward and pull existing subscriptions.
	claimed := make(map[string]bool, len(m.Resync.Advs))
	for _, ra := range m.Resync.Advs {
		claimed[ra.ID] = true
		if _, known := b.srtByID[ra.ID]; !known {
			b.handleAdvertise(&Message{Type: MsgAdvertise, AdvID: ra.ID, Adv: ra.Adv}, from)
		}
	}
	// Advertisements we attribute to the sender that it no longer claims
	// (unadvertised while the link was down): withdraw them. An entry
	// survives when any of its alias IDs — covering dedup maps several IDs
	// to one entry — is still claimed.
	aliases := make(map[*advEntry][]string)
	for id, e := range b.srtByID {
		aliases[e] = append(aliases[e], id)
	}
	for _, e := range append([]*advEntry(nil), b.srt...) {
		if e.lastHop != from {
			continue
		}
		alive := false
		for _, id := range aliases[e] {
			if claimed[id] {
				alive = true
				break
			}
		}
		if !alive {
			for _, id := range aliases[e] {
				b.handleUnadvertise(&Message{Type: MsgUnadvertise, AdvID: id}, from)
			}
		}
	}
	// Subscriptions the sender claims: the normal handler records the new
	// direction and re-forwards where reverse-path delivery needs it; pure
	// repeats are no-ops.
	wanted := make(map[string]bool, len(m.Resync.Subs))
	for _, x := range m.Resync.Subs {
		wanted[x.Key()] = true
		b.handleSubscribe(&Message{Type: MsgSubscribe, XPE: x}, from)
	}
	// Subscriptions we attribute to the sender that it no longer claims
	// (unsubscribed while the link was down): withdraw the sender's
	// direction. Collect first — removal mutates the tree under the walk.
	var stale []*xpath.XPE
	b.prt.Walk(func(n *subtree.Node) {
		if s := stateOf(n); s != nil && s.lastHops[from] && !wanted[n.XPE.Key()] {
			stale = append(stale, n.XPE)
		}
	})
	for _, x := range stale {
		b.handleUnsubscribe(&Message{Type: MsgUnsubscribe, XPE: x}, from)
	}
}
