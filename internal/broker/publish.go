package broker

// Publish data plane: lock-free publication matching and forwarding against
// the immutable routing snapshot, plus the per-stage latency span and slow-
// publication capture. Split from broker.go so the sharded matching
// refactor lands in reviewable units; behavior is unchanged.

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pmatch"
	"repro/internal/slowlog"
	"repro/internal/stream"
	"repro/internal/subtree"
	"repro/internal/symtab"
	"repro/internal/trace"
	"repro/internal/xmldoc"
)

// --- publications ---

// handlePublish matches one publication and forwards it. It is the lock-free
// data plane: it loads the routing snapshot once and reads only that
// immutable view plus atomic counters — zero mutex acquisitions, so
// publications never contend with each other or with control-plane updates.
// Matching is one shared-automaton run per publication sym-path (the
// snapshot's pmatch NFA covers the PRT's last-hop entries and every client
// filter expression; see DESIGN.md §5c), falling back to the per-
// subscription covering tree walk when the automaton is absent. Whole
// documents are routed by the streaming matcher by default — one automaton
// pass over the raw bytes (Message.Raw, never parsed into a tree) or over
// the parsed tree (Message.Doc), see DESIGN.md §5e — with
// Config.DisableStreaming falling back to decompose-into-paths. A raw body
// that fails the streaming scan (malformed XML or the wire document
// bounds) is dropped and counted, never forwarded. Publication paths are
// matched in interned symbol form; a publication carrying no pre-interned
// path (hand-built, or a whole document) is converted on arrival. For
// traced publications it returns the hop event for the caller to record;
// untraced traffic returns nil.
func (b *Broker) handlePublish(m *Message, from string) *trace.Event {
	snap := b.snap.Load()
	// Per-stage spans are measured only when someone will read them — an
	// attached metrics registry, the flight recorder, or a trace. For
	// untraced publications on an uninstrumented broker, measure is false and
	// the handler performs no clock reads at all; sp lives on the stack
	// either way, so the span machinery costs the hot path zero allocations.
	var sp pubSpan
	measure := b.stageMatch != nil || b.slow != nil || m.TraceID != ""
	if measure {
		sp.start = time.Now()
		var enqueued time.Time
		sp.decode, enqueued = m.Arrival()
		if !enqueued.IsZero() {
			if sp.queue = sp.start.Sub(enqueued); sp.queue < 0 {
				sp.queue = 0
			}
		}
	}
	// Collect next hops from all matching subscriptions — one shared-NFA
	// run per document or path when the snapshot carries the automaton
	// (the default), else the covering-pruned tree traversal. The same run
	// also computes the per-client edge-filter verdicts (clientMatch
	// payloads), so delivery filtering below re-matches nothing. Attribute
	// predicates are evaluated in-network either way.
	hops := make(map[string]bool)
	var matchedClients map[string]bool
	collect := func(data any) {
		switch v := data.(type) {
		case []string:
			for _, hop := range v {
				if hop != from {
					hops[hop] = true
				}
			}
		case clientMatch:
			if matchedClients == nil {
				matchedClients = make(map[string]bool)
			}
			matchedClients[string(v)] = true
		}
	}
	// paths/attrs stay nil on the streaming routes; the edge filter below
	// only consults them when the automaton is absent, which implies the
	// decomposed route ran.
	var paths [][]symtab.Sym
	var attrs [][]map[string]string
	streaming := snap.auto != nil && !b.cfg.DisableStreaming
	switch {
	case streaming && len(m.Raw) > 0:
		// One pass over the bytes: syntax, wire bounds, and matching.
		if err := stream.Match(m.Raw, snap.auto, stream.WireLimits, collect); err != nil {
			b.stats.badDocs.Add(1)
			return nil
		}
	case streaming && m.Doc != nil:
		stream.MatchDoc(m.Doc, snap.auto, collect)
	default:
		doc := m.Doc
		if doc == nil && len(m.Raw) > 0 {
			// Ablation fallback for raw bodies: parse, then enforce the
			// same wire bounds the streaming scan checks incrementally.
			parsed, err := xmldoc.Parse(m.Raw)
			if err != nil || stream.CheckDoc(parsed, stream.WireLimits) != nil {
				b.stats.badDocs.Add(1)
				return nil
			}
			doc = parsed
		}
		if doc != nil {
			// Distinct variables on purpose: parallelMatch leaks its
			// arguments into worker goroutines, and letting the single-path
			// literals below flow into it would heap-allocate them on the
			// serial hot path too (the alloc pin would regress).
			docPaths, docAttrs := doc.AnnotatedSymPaths()
			paths, attrs = docPaths, docAttrs
			switch pn := b.cfg.ParallelMatchPaths; {
			case snap.auto == nil:
				for i, path := range docPaths {
					snap.prt.MatchSymPathAttrs(path, docAttrs[i], func(n *subtree.Node) {
						for _, hop := range snapshotNodeHops(n) {
							if hop != from {
								hops[hop] = true
							}
						}
					})
				}
			case pn > 0 && len(docPaths) >= pn:
				parallelMatch(snap.auto, docPaths, docAttrs, collect)
			default:
				for i, path := range docPaths {
					snap.auto.Match(path, docAttrs[i], collect)
				}
			}
		} else {
			sp := m.Pub.SymPath
			if sp == nil {
				sp = symtab.InternPath(m.Pub.Path)
			}
			paths = [][]symtab.Sym{sp}
			attrs = [][]map[string]string{m.Pub.Attrs}
			if snap.auto != nil {
				snap.auto.Match(sp, m.Pub.Attrs, collect)
			} else {
				snap.prt.MatchSymPathAttrs(sp, m.Pub.Attrs, func(n *subtree.Node) {
					for _, hop := range snapshotNodeHops(n) {
						if hop != from {
							hops[hop] = true
						}
					}
				})
			}
		}
	}
	var matchEnd time.Time
	if measure {
		matchEnd = time.Now()
		sp.match = matchEnd.Sub(sp.start)
		if b.matchSeconds != nil {
			b.matchSeconds.Observe(sp.match.Seconds())
		}
	}
	ordered := make([]string, 0, len(hops))
	for hop := range hops {
		ordered = append(ordered, hop)
	}
	sort.Strings(ordered)
	var ev *trace.Event
	var nowWall int64
	if m.TraceID != "" {
		nowWall = time.Now().UnixNano()
		ev = &trace.Event{
			TraceID:      m.TraceID,
			Broker:       b.cfg.ID,
			From:         from,
			RecvUnixNano: nowWall,
		}
	}
	// Filter pass: apply edge filtering and trace accounting, compacting the
	// surviving hops in place (kept shares ordered's backing array, so the
	// two-pass structure allocates nothing). Nothing is emitted yet — the
	// traced hop record sealed below can then carry the filter stage's
	// duration.
	kept := ordered[:0]
	for _, hop := range ordered {
		if snap.clients[hop] {
			// Edge filtering: imperfect mergers must not leak false
			// positives to clients. With the automaton the verdict was
			// computed in the same run that produced the hop set.
			passes := matchedClients[hop]
			if snap.auto == nil {
				passes = snap.matchesClient(hop, paths, attrs)
			}
			if !passes {
				b.stats.falsePositives.Add(1)
				if ev != nil {
					ev.FilteredFor = append(ev.FilteredFor, hop)
				}
				continue
			}
			b.stats.deliveries.Add(1)
			if ev != nil {
				ev.DeliveredTo = append(ev.DeliveredTo, hop)
			}
		} else if ev != nil {
			ev.ForwardedTo = append(ev.ForwardedTo, hop)
		}
		kept = append(kept, hop)
	}
	var filterEnd time.Time
	if measure {
		filterEnd = time.Now()
		sp.filter = filterEnd.Sub(matchEnd)
	}
	// Traced publications travel on as a copy with this broker appended to
	// the hop list; the received message is never mutated (simulator peers
	// share message pointers). The hop is sealed after the filter pass so its
	// stage list carries decode, queue, match, and filter; enqueue and flush
	// happen later and appear in histograms and the inter-hop wall-clock gap.
	fwd := m
	if ev != nil {
		hopList := make([]trace.Hop, 0, len(m.Hops)+1)
		hopList = append(hopList, m.Hops...)
		hopList = append(hopList, trace.Hop{
			Broker:   b.cfg.ID,
			UnixNano: nowWall,
			Epoch:    snap.epoch,
			Stages:   sp.hopStages(),
		})
		cp := *m
		cp.Hops = hopList
		fwd = &cp
		ev.Hops = hopList
	}
	for _, hop := range kept {
		// Durable virtual clients stay in kept through the filter pass (so
		// delivery counters see them) and peel off here: sequence + log
		// append + stamped emit to the attached client, if any. The length
		// check keeps the common no-durables case to one branch.
		if len(snap.durables) != 0 {
			if d := snap.durables[hop]; d != nil {
				b.durableDeliver(d, fwd)
				continue
			}
		}
		b.emit(hop, fwd)
	}
	if measure {
		sp.enqueue = time.Since(filterEnd)
		b.observeSpan(&sp)
		if b.slow != nil && sp.total() >= b.slow.Threshold() {
			b.recordSlow(&sp, fwd, from, snap, len(paths), kept)
		}
	}
	return ev
}

// parallelMatch fans a decomposed document's sym-paths across worker
// goroutines (Config.ParallelMatchPaths gates it). The automaton is
// immutable and Match is concurrency-safe, so workers share it freely;
// each worker accumulates raw payloads privately and the results are
// merged serially through collect afterwards, because collect closes over
// the handler's (unsynchronised) hop and client-verdict maps. Payloads may
// repeat across paths exactly as in the serial loop — collect dedups.
func parallelMatch(auto *pmatch.ShardedAutomaton, paths [][]symtab.Sym, attrs [][]map[string]string, collect func(any)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(paths) {
		workers = len(paths)
	}
	if workers <= 1 {
		for i, path := range paths {
			auto.Match(path, attrs[i], collect)
		}
		return
	}
	results := make([][]any, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(paths) {
					return
				}
				auto.Match(paths[i], attrs[i], func(d any) { results[w] = append(results[w], d) })
			}
		}(w)
	}
	wg.Wait()
	for _, rs := range results {
		for _, d := range rs {
			collect(d)
		}
	}
}

// pubSpan accumulates one publication's per-stage timings on the broker's
// monotonic clock. It lives on the publish handler's stack; handlePublish
// decides whether it is measured at all.
type pubSpan struct {
	start   time.Time
	decode  time.Duration
	queue   time.Duration
	match   time.Duration
	filter  time.Duration
	enqueue time.Duration
}

// total is the publication's in-broker time — the value the flight
// recorder's threshold is compared against.
func (s *pubSpan) total() time.Duration {
	return s.decode + s.queue + s.match + s.filter + s.enqueue
}

// hopStages renders the stages known at hop-append time. Enqueue and flush
// happen after the hop record is sealed; across brokers they are part of the
// wall-clock gap between consecutive hop stamps.
func (s *pubSpan) hopStages() []trace.StageDur {
	return []trace.StageDur{
		{Stage: trace.StageDecode, Nanos: int64(s.decode)},
		{Stage: trace.StageQueue, Nanos: int64(s.queue)},
		{Stage: trace.StageMatch, Nanos: int64(s.match)},
		{Stage: trace.StageFilter, Nanos: int64(s.filter)},
	}
}

// observeSpan feeds the broker-side stage histograms. Decode and flush are
// observed by the transport that measures them (see package transport).
func (b *Broker) observeSpan(sp *pubSpan) {
	if b.stageQueue == nil {
		return
	}
	b.stageQueue.Observe(sp.queue.Seconds())
	b.stageMatch.Observe(sp.match.Seconds())
	b.stageFilter.Observe(sp.filter.Seconds())
	b.stageEnqueue.Observe(sp.enqueue.Seconds())
}

// recordSlow captures one over-threshold publication into the flight
// recorder. It runs only for already-slow publications, so its allocations
// and the QueueDepths callback stay off the healthy hot path.
func (b *Broker) recordSlow(sp *pubSpan, m *Message, from string, snap *routeSnapshot, pathCount int, dests []string) {
	e := slowlog.Entry{
		Broker:     b.cfg.ID,
		From:       from,
		TraceID:    m.TraceID,
		UnixNano:   time.Now().UnixNano(),
		TotalNanos: int64(sp.total()),
		Stages: append(sp.hopStages(),
			trace.StageDur{Stage: trace.StageEnqueue, Nanos: int64(sp.enqueue)}),
		DocBytes:     len(m.Raw),
		Paths:        pathCount,
		Epoch:        snap.epoch,
		Hops:         len(m.Hops),
		Destinations: append([]string(nil), dests...),
	}
	if b.cfg.QueueDepths != nil {
		e.QueueDepths = b.cfg.QueueDepths()
	}
	b.slow.Record(e)
}
