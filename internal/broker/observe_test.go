package broker

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

func TestStrategyName(t *testing.T) {
	tests := []struct {
		cfg  Config
		want string
	}{
		{Config{}, "noadv+nocov"},
		{Config{UseAdvertisements: true}, "adv+nocov"},
		{Config{UseAdvertisements: true, UseCovering: true}, "adv+cov"},
		{Config{UseCovering: true, Merging: MergePerfect}, "noadv+cov+merge-perfect"},
		{Config{UseAdvertisements: true, UseCovering: true, Merging: MergeImperfect}, "adv+cov+merge-imperfect"},
	}
	for _, tt := range tests {
		if got := tt.cfg.StrategyName(); got != tt.want {
			t.Errorf("StrategyName = %q, want %q", got, tt.want)
		}
	}
}

// TestBrokerInstrumentation checks that an instrumented broker populates
// the registry: match-latency histogram, delivery counters, and table
// gauges, all observable through the exposition text.
func TestBrokerInstrumentation(t *testing.T) {
	reg := metrics.NewRegistry()
	cfg := Config{ID: "b1", UseCovering: true, Metrics: reg}
	b := New(cfg, func(string, *Message) {})
	b.AddClient("c1")
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: xpath.MustParse("/a/b")}, "c1")
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: xpath.MustParse("/a/*")}, "c1")
	b.HandleMessage(&Message{Type: MsgPublish, Pub: xmldoc.Publication{Path: []string{"a", "b"}}}, "p1")

	h := reg.Histogram("xbroker_match_seconds", "", metrics.DefBuckets, "strategy", cfg.StrategyName())
	if h.Count() != 1 {
		t.Errorf("match histogram count = %d, want 1 (one publication matched)", h.Count())
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`xbroker_match_seconds_count{strategy="noadv+cov"} 1`,
		`xbroker_deliveries_total 1`,
		`xbroker_prt_subscriptions 2`,
		`xbroker_prt_nodes 2`,
		`xbroker_prt_edges 1`, // "/a/*" covers "/a/b"
		`xbroker_msgs_in_total{type="publish"} 1`,
		`xbroker_msgs_in_total{type="subscribe"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestPublishTracing checks hop appending, non-mutation of the received
// frame, and the recorded event's delivery/forward lists.
func TestPublishTracing(t *testing.T) {
	ring := trace.NewRing(8)
	sent := make(map[string][]*Message)
	b := New(Config{ID: "b1", TraceSink: ring}, func(to string, m *Message) {
		sent[to] = append(sent[to], m)
	})
	b.AddNeighbor("b2")
	b.AddClient("c1")
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: xpath.MustParse("/a/b")}, "c1")
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: xpath.MustParse("/a")}, "b2")

	in := &Message{
		Type:    MsgPublish,
		Pub:     xmldoc.Publication{Path: []string{"a", "b"}},
		TraceID: "t1",
		Hops:    []trace.Hop{{Broker: "b0", UnixNano: 1}},
	}
	b.HandleMessage(in, "p1")

	if len(in.Hops) != 1 {
		t.Errorf("received frame mutated: hops = %v", in.Hops)
	}
	for _, to := range []string{"c1", "b2"} {
		var msgs []*Message
		for _, m := range sent[to] { // skip the flooded subscribe forwards
			if m.Type == MsgPublish {
				msgs = append(msgs, m)
			}
		}
		if len(msgs) != 1 {
			t.Fatalf("sent to %s: %d publications, want 1", to, len(msgs))
		}
		hops := msgs[0].Hops
		if len(hops) != 2 || hops[0].Broker != "b0" || hops[1].Broker != "b1" {
			t.Errorf("forwarded hop list to %s = %v, want [b0 b1]", to, hops)
		}
	}

	evs := ring.ByID("t1")
	if len(evs) != 1 {
		t.Fatalf("ring has %d events for t1, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Broker != "b1" || ev.From != "p1" {
		t.Errorf("event broker/from = %s/%s", ev.Broker, ev.From)
	}
	if !reflect.DeepEqual(ev.DeliveredTo, []string{"c1"}) {
		t.Errorf("DeliveredTo = %v, want [c1]", ev.DeliveredTo)
	}
	if !reflect.DeepEqual(ev.ForwardedTo, []string{"b2"}) {
		t.Errorf("ForwardedTo = %v, want [b2]", ev.ForwardedTo)
	}
}

// TestUntracedPublishRecordsNothing pins the opt-in contract: without a
// TraceID no event is recorded and the message is forwarded as-is.
func TestUntracedPublishRecordsNothing(t *testing.T) {
	ring := trace.NewRing(8)
	var forwarded *Message
	b := New(Config{ID: "b1", TraceSink: ring}, func(to string, m *Message) { forwarded = m })
	b.AddClient("c1")
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: xpath.MustParse("/a")}, "c1")
	in := &Message{Type: MsgPublish, Pub: xmldoc.Publication{Path: []string{"a"}}}
	b.HandleMessage(in, "p1")
	if ring.Total() != 0 {
		t.Errorf("untraced publish recorded %d events", ring.Total())
	}
	if forwarded != in {
		t.Error("untraced publish must forward the original message, not a copy")
	}
}

func TestRoutesSnapshot(t *testing.T) {
	b := New(Config{ID: "b1", UseCovering: true}, func(string, *Message) {})
	b.AddNeighbor("b2")
	b.AddClient("c1")
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: xpath.MustParse("/a/*")}, "c1")
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: xpath.MustParse("/a/b")}, "b2")

	rt := b.Routes()
	if rt.Broker != "b1" || rt.Strategy != "noadv+cov" {
		t.Errorf("broker/strategy = %s/%s", rt.Broker, rt.Strategy)
	}
	if !reflect.DeepEqual(rt.Neighbors, []string{"b2"}) || !reflect.DeepEqual(rt.Clients, []string{"c1"}) {
		t.Errorf("neighbors/clients = %v/%v", rt.Neighbors, rt.Clients)
	}
	if len(rt.Subscriptions) != 2 {
		t.Fatalf("subscriptions = %d, want 2", len(rt.Subscriptions))
	}
	byXPE := make(map[string]SubRoute)
	for _, sr := range rt.Subscriptions {
		byXPE[sr.XPE] = sr
	}
	top, ok := byXPE["/a/*"]
	if !ok || top.Parent != "" || !reflect.DeepEqual(top.LastHops, []string{"c1"}) {
		t.Errorf("top-level route = %+v", top)
	}
	child, ok := byXPE["/a/b"]
	if !ok || child.Parent != "/a/*" || !reflect.DeepEqual(child.LastHops, []string{"b2"}) {
		t.Errorf("covered route = %+v", child)
	}
}
