package broker

// Control plane: advertisement and subscription handlers, forwarding rules,
// and the periodic merge pass. Every function here runs with b.mu held
// exclusively (HandleMessage takes it before dispatching) and mutates the
// master tables; publishSnapshot projects the result into the immutable
// routeSnapshot before the lock drops. Split from broker.go so the sharded
// matching refactor lands in reviewable units; behavior is unchanged.

import (
	"sort"

	"repro/internal/advert"
	"repro/internal/cover"
	"repro/internal/merge"
	"repro/internal/subtree"
	"repro/internal/xpath"
)

// --- advertisements ---

func (b *Broker) handleAdvertise(m *Message, from string) {
	if _, dup := b.srtByID[m.AdvID]; dup {
		return // flooding duplicate
	}
	e := &advEntry{id: m.AdvID, adv: m.Adv, lastHop: from}
	if m.Adv.Classify() == advert.NonRecursive {
		e.flat = m.Adv.FlatNames()
	}
	// Advertisement covering: an advertisement covered by an existing one
	// with the same last hop is redundant — subscriptions overlapping it
	// are already routed that way. (Different last hops must both stay:
	// they lead to different producers.)
	if b.cfg.UseCovering && e.flat != nil {
		for _, old := range b.srt {
			if old.lastHop == from && old.flat != nil && cover.CoversAdvertisement(old.flat, e.flat) {
				b.srtByID[m.AdvID] = old // remember the ID for dedup
				return
			}
		}
	}
	b.srt = append(b.srt, e)
	b.srtByID[m.AdvID] = e
	b.dirty.srt = true

	// Flood to all other peers that are brokers.
	for _, nb := range b.neighbors {
		if nb != from {
			b.emit(nb, m)
		}
	}
	// Forward existing subscriptions toward the new advertisement.
	if b.cfg.UseAdvertisements && from != "" {
		for _, n := range b.prt.TopLevel() {
			st := stateOf(n)
			if st == nil || st.forwardedTo[from] {
				continue
			}
			if m.Adv.Overlaps(n.XPE) {
				st.forwardedTo[from] = true
				b.emit(from, &Message{Type: MsgSubscribe, XPE: n.XPE})
			}
		}
	}
}

func (b *Broker) handleUnadvertise(m *Message, from string) {
	e := b.srtByID[m.AdvID]
	if e == nil {
		return
	}
	delete(b.srtByID, m.AdvID)
	for i, cur := range b.srt {
		if cur == e {
			b.srt = append(b.srt[:i], b.srt[i+1:]...)
			b.dirty.srt = true
			break
		}
	}
	for _, nb := range b.neighbors {
		if nb != from {
			b.emit(nb, m)
		}
	}
}

// --- subscriptions ---

func (b *Broker) handleSubscribe(m *Message, from string) {
	if b.clients[from] {
		// Remember the client's original subscription for delivery
		// filtering.
		if cres := b.clientSubs[from].Insert(m.XPE); !cres.Duplicate {
			b.dirty.markClientSubs(from)
			b.markShard(m.XPE) // new client filter entry
		}
	}

	var res subtree.InsertResult
	if b.cfg.UseCovering {
		res = b.prt.Insert(m.XPE)
	} else {
		res = b.prt.FlatInsert(m.XPE)
	}
	st := stateOf(res.Node)
	if st == nil {
		st = &subState{lastHops: make(map[string]bool), forwardedTo: make(map[string]bool)}
		res.Node.Data = st
	}
	newDirection := !st.lastHops[from]
	st.lastHops[from] = true
	if res.Duplicate && !newDirection {
		return // a pure repeat from the same peer changes nothing
	}
	b.dirty.prt = true
	b.markShard(m.XPE) // the node's hop payload changed
	// A known expression arriving from a NEW direction must still
	// propagate: reverse-path delivery needs every broker between the
	// publisher and the new subscriber to record the new interest
	// direction, so the subscription is re-forwarded to the hops it has
	// not reached yet.
	b.forwardSubscription(res.Node, st, from)

	// Withdraw the subscriptions this one covers from the hops both were
	// forwarded to: downstream tables keep routing through the broader
	// subscription.
	if b.cfg.UseCovering {
		for _, covered := range res.NewlyCovered {
			cst := stateOf(covered)
			if cst == nil {
				continue
			}
			for hop := range cst.forwardedTo {
				if st.forwardedTo[hop] {
					b.emit(hop, &Message{Type: MsgUnsubscribe, XPE: covered.XPE})
					delete(cst.forwardedTo, hop)
				}
			}
		}
	}

	// Periodic merging.
	if b.cfg.Merging != MergeOff {
		b.sinceMerge++
		if b.sinceMerge >= b.cfg.MergeEvery {
			b.sinceMerge = 0
			b.runMergePass()
		}
	}
}

// forwardSubscription sends a subscription to the next hops its matching
// advertisements indicate (or floods it without advertisements). With
// covering, a hop is skipped when a covering subscription was already
// forwarded to that same hop — the per-next-hop rule; suppressing a covered
// subscription entirely would lose publications arriving from directions
// the coverer's own path does not serve.
func (b *Broker) forwardSubscription(n *subtree.Node, st *subState, from string) {
	var coverers []*subtree.Node
	if b.cfg.UseCovering {
		coverers = b.prt.Coverers(n.XPE)
	}
	for _, hop := range b.subscriptionNextHops(n.XPE, from) {
		// Skip hops already served. Hops that themselves sent this
		// subscription are NOT skipped: they sent it on behalf of a
		// different subscriber direction and still need to learn of this
		// one for reverse-path delivery.
		if st.forwardedTo[hop] {
			continue
		}
		if coveredAtHop(coverers, hop) {
			continue
		}
		st.forwardedTo[hop] = true
		b.emit(hop, &Message{Type: MsgSubscribe, XPE: n.XPE})
	}
}

// coveredAtHop reports whether any coverer has already been forwarded to the
// hop.
func coveredAtHop(coverers []*subtree.Node, hop string) bool {
	for _, c := range coverers {
		if cst := stateOf(c); cst != nil && cst.forwardedTo[hop] {
			return true
		}
	}
	return false
}

func (b *Broker) subscriptionNextHops(x *xpath.XPE, from string) []string {
	if !b.cfg.UseAdvertisements {
		out := make([]string, 0, len(b.neighbors))
		for _, nb := range b.neighbors {
			if nb != from {
				out = append(out, nb)
			}
		}
		return out
	}
	seen := make(map[string]bool)
	var out []string
	for _, e := range b.srt {
		if e.lastHop == "" || e.lastHop == from || seen[e.lastHop] {
			continue
		}
		if !b.clients[e.lastHop] && e.adv.Overlaps(x) {
			seen[e.lastHop] = true
			out = append(out, e.lastHop)
		}
	}
	sort.Strings(out)
	return out
}

func (b *Broker) handleUnsubscribe(m *Message, from string) {
	if b.clients[from] {
		if n := b.clientSubs[from].Lookup(m.XPE); n != nil {
			b.clientSubs[from].Remove(n)
			b.dirty.markClientSubs(from)
			b.markShard(m.XPE) // client filter entry removed
		}
	}
	n := b.prt.Lookup(m.XPE)
	if n == nil {
		return
	}
	b.dirty.prt = true
	b.markShard(m.XPE) // the node's hop payload changed or it is removed
	st := stateOf(n)
	if st != nil {
		delete(st.lastHops, from)
		if len(st.lastHops) > 0 {
			// Other peers still need the subscription, but a forward to a
			// hop is justified only by interest from some *other* direction.
			// If the sole remaining direction is a hop this subscription was
			// forwarded to, that forward is now vacuous — withdraw it, or
			// the hop keeps a phantom interest entry pointing back here.
			if len(st.lastHops) == 1 {
				for only := range st.lastHops {
					if st.forwardedTo[only] {
						delete(st.forwardedTo, only)
						b.emit(only, &Message{Type: MsgUnsubscribe, XPE: m.XPE})
					}
				}
			}
			return
		}
	}
	// The nodes this subscription covered — its adopted children and its
	// super-pointer targets — may have had forwarding suppressed on hops it
	// served; collect them before the removal destroys the links.
	var uncovered []*subtree.Node
	uncovered = append(uncovered, n.Children()...)
	uncovered = append(uncovered, n.Super()...)
	b.prt.Remove(n)
	// Propagate the withdrawal.
	if st != nil {
		for hop := range st.forwardedTo {
			b.emit(hop, &Message{Type: MsgUnsubscribe, XPE: m.XPE})
		}
	}
	// Uncovering: re-forward what this subscription suppressed. This must
	// run even when the removed node was itself covered — a covering
	// ancestor only serves the hops it was forwarded to, and the removed
	// node may have been the sole subscription forwarded on some hop.
	// forwardSubscription re-applies the per-hop covering rule against the
	// remaining coverers, so hops a surviving coverer already serves are
	// skipped.
	if b.cfg.UseCovering {
		for _, c := range uncovered {
			if cst := stateOf(c); cst != nil {
				b.forwardSubscription(c, cst, "")
			}
		}
	}
}

// runMergePass merges PRT siblings per the configured mode and translates
// each merger into network operations: unsubscribe the sources, subscribe
// the merger.
func (b *Broker) runMergePass() {
	b.dirty.prt = true
	// A merge pass rewrites arbitrary sibling groups across the tree —
	// sources vanish, mergers appear, hop sets union — so every shard may
	// have gained or lost entries.
	b.dirty.shardsAll = true
	maxDegree := 0.0
	if b.cfg.Merging == MergeImperfect {
		maxDegree = b.cfg.ImperfectDegree
	}
	opts := merge.Options{
		MaxDegree: maxDegree,
		Estimator: b.cfg.Estimator,
		OnMerge: func(m *merge.Merger, sources []*subtree.Node, mergerNode *subtree.Node) {
			b.stats.mergers.Add(1)
			st := stateOf(mergerNode)
			if st == nil {
				st = &subState{lastHops: make(map[string]bool), forwardedTo: make(map[string]bool), merger: true}
				mergerNode.Data = st
			}
			var oldForwards map[string]bool
			for _, src := range sources {
				sst := stateOf(src)
				if sst == nil {
					continue
				}
				for hop := range sst.lastHops {
					st.lastHops[hop] = true
				}
				if oldForwards == nil {
					oldForwards = make(map[string]bool)
				}
				for hop := range sst.forwardedTo {
					oldForwards[hop] = true
				}
			}
			// Withdraw the sources upstream and forward the merger instead.
			for _, src := range sources {
				sst := stateOf(src)
				if sst == nil {
					continue
				}
				for hop := range sst.forwardedTo {
					b.emit(hop, &Message{Type: MsgUnsubscribe, XPE: src.XPE})
				}
			}
			for _, hop := range b.subscriptionNextHops(mergerNode.XPE, "") {
				if st.forwardedTo[hop] {
					continue
				}
				st.forwardedTo[hop] = true
				b.emit(hop, &Message{Type: MsgSubscribe, XPE: mergerNode.XPE})
			}
		},
	}
	merge.Pass(b.prt, opts)
}
