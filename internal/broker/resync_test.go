package broker

import (
	"fmt"
	"testing"

	"repro/internal/advert"
	"repro/internal/xpath"
)

// wire is a minimal lossy message fabric for resync tests: brokers exchange
// messages through a FIFO queue, and individual directed links can be cut so
// frames on them are counted as lost instead of delivered — the failure the
// resync protocol must recover from.
type wire struct {
	t       *testing.T
	brokers map[string]*Broker
	queue   []wireMsg
	cut     map[string]bool
	lost    int
	// delivered records publications handed to client peers, keyed by client.
	delivered map[string][]string
}

type wireMsg struct {
	from, to string
	m        *Message
}

func newWire(t *testing.T) *wire {
	return &wire{
		t:         t,
		brokers:   make(map[string]*Broker),
		cut:       make(map[string]bool),
		delivered: make(map[string][]string),
	}
}

func (w *wire) addBroker(cfg Config) *Broker {
	id := cfg.ID
	b := New(cfg, func(to string, m *Message) {
		w.queue = append(w.queue, wireMsg{from: id, to: to, m: m})
	})
	w.brokers[id] = b
	return b
}

func (w *wire) connect(a, b string) {
	w.brokers[a].AddNeighbor(b)
	w.brokers[b].AddNeighbor(a)
}

func (w *wire) link(a, b string) string { return a + ">" + b }

// cutBoth severs both directions of a link.
func (w *wire) cutBoth(a, b string) {
	w.cut[w.link(a, b)] = true
	w.cut[w.link(b, a)] = true
}

func (w *wire) healBoth(a, b string) {
	delete(w.cut, w.link(a, b))
	delete(w.cut, w.link(b, a))
}

// drain delivers queued messages until quiescence, dropping frames on cut
// links.
func (w *wire) drain() {
	for len(w.queue) > 0 {
		wm := w.queue[0]
		w.queue = w.queue[1:]
		if w.cut[w.link(wm.from, wm.to)] {
			w.lost++
			continue
		}
		if b, ok := w.brokers[wm.to]; ok {
			b.HandleMessage(wm.m, wm.from)
			continue
		}
		if wm.m.Type == MsgPublish {
			w.delivered[wm.to] = append(w.delivered[wm.to], wm.m.Pub.String())
		}
	}
}

// subLastHops extracts {expr -> sorted last hops} from a broker.
func subLastHops(b *Broker) map[string][]string {
	out := make(map[string][]string)
	for _, sr := range b.Routes().Subscriptions {
		if len(sr.LastHops) > 0 {
			out[sr.XPE] = sr.LastHops
		}
	}
	return out
}

// advHops extracts {adv expr -> last hop} from a broker.
func advHops(b *Broker) map[string]string {
	out := make(map[string]string)
	for _, ar := range b.Routes().Advertisements {
		out[ar.Expr] = ar.LastHop
	}
	return out
}

func TestResyncRestoresLostSubscription(t *testing.T) {
	w := newWire(t)
	a := w.addBroker(Config{ID: "a"})
	b := w.addBroker(Config{ID: "b"})
	w.connect("a", "b")
	a.AddClient("sub")

	w.cutBoth("a", "b")
	a.HandleMessage(&Message{Type: MsgSubscribe, XPE: xpath.MustParse("/stock/price")}, "sub")
	w.drain()
	if w.lost == 0 {
		t.Fatal("expected the forwarded subscribe to be lost on the cut link")
	}
	if got := subLastHops(b); len(got) != 0 {
		t.Fatalf("b learned a subscription over a cut link: %v", got)
	}

	w.healBoth("a", "b")
	a.ResyncFor("b")
	w.drain()
	got := subLastHops(b)
	if hops := got["/stock/price"]; len(hops) != 1 || hops[0] != "a" {
		t.Fatalf("after resync b should route /stock/price via a, got %v", got)
	}

	// A publication at b now reaches the subscriber through a.
	b.HandleMessage(&Message{Type: MsgPublish, Pub: pub([]string{"stock", "price"}, nil, 1)}, "pubclient")
	w.drain()
	if n := len(w.delivered["sub"]); n != 1 {
		t.Fatalf("subscriber got %d deliveries after heal, want 1", n)
	}
}

func TestResyncWithdrawsLostUnsubscribe(t *testing.T) {
	w := newWire(t)
	a := w.addBroker(Config{ID: "a"})
	b := w.addBroker(Config{ID: "b"})
	w.connect("a", "b")
	a.AddClient("sub")

	x := xpath.MustParse("/stock/price")
	a.HandleMessage(&Message{Type: MsgSubscribe, XPE: x}, "sub")
	w.drain()
	if got := subLastHops(b); len(got) != 1 {
		t.Fatalf("setup: b should hold the subscription, got %v", got)
	}

	w.cutBoth("a", "b")
	a.HandleMessage(&Message{Type: MsgUnsubscribe, XPE: x}, "sub")
	w.drain() // unsubscribe lost
	w.healBoth("a", "b")
	a.ResyncFor("b")
	w.drain()
	if got := subLastHops(b); len(got) != 0 {
		t.Fatalf("after resync b should have dropped the stale subscription, got %v", got)
	}
}

func TestResyncRestoresLostAdvertisementAndGC(t *testing.T) {
	w := newWire(t)
	cfg := Config{UseAdvertisements: true}
	cfg.ID = "a"
	a := w.addBroker(cfg)
	cfg.ID = "b"
	b := w.addBroker(cfg)
	w.connect("a", "b")
	a.AddClient("pub")
	b.AddClient("sub")

	w.cutBoth("a", "b")
	a.HandleMessage(&Message{Type: MsgAdvertise, AdvID: "ad1", Adv: advert.MustParse("/stock/price")}, "pub")
	w.drain() // flood lost
	if got := advHops(b); len(got) != 0 {
		t.Fatalf("b learned an advertisement over a cut link: %v", got)
	}

	w.healBoth("a", "b")
	a.ResyncFor("b")
	w.drain()
	if got := advHops(b); got["/stock/price"] != "a" {
		t.Fatalf("after resync b should hold the advertisement via a, got %v", got)
	}

	// With advertisement routing, a subscription at b is now forwarded to a.
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: xpath.MustParse("/stock/price")}, "sub")
	w.drain()
	if got := subLastHops(a); len(got["/stock/price"]) != 1 {
		t.Fatalf("a should have received the subscription toward the advertisement, got %v", got)
	}

	// Unadvertise lost during a second outage: resync garbage-collects it.
	w.cutBoth("a", "b")
	a.HandleMessage(&Message{Type: MsgUnadvertise, AdvID: "ad1"}, "pub")
	w.drain()
	w.healBoth("a", "b")
	a.ResyncFor("b")
	w.drain()
	if got := advHops(b); len(got) != 0 {
		t.Fatalf("after resync b should have dropped the stale advertisement, got %v", got)
	}
}

func TestResyncAfterCrashRestoresBothDirections(t *testing.T) {
	w := newWire(t)
	a := w.addBroker(Config{ID: "a"})
	b := w.addBroker(Config{ID: "b"})
	w.connect("a", "b")
	a.AddClient("suba")
	b.AddClient("subb")

	a.HandleMessage(&Message{Type: MsgSubscribe, XPE: xpath.MustParse("/stock/price")}, "suba")
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: xpath.MustParse("/news//p")}, "subb")
	w.drain()

	// b crashes and restarts empty: replace the instance.
	b = New(Config{ID: "b"}, func(to string, m *Message) {
		w.queue = append(w.queue, wireMsg{from: "b", to: to, m: m})
	})
	w.brokers["b"] = b
	b.AddNeighbor("a")
	b.AddClient("subb")

	// Both directions resync. a restores b's view of a's subscription; b's
	// empty claim clears a's stale entry for the crashed instance, and b's
	// client replays its own subscription.
	a.ResyncFor("b")
	b.ResyncFor("a")
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: xpath.MustParse("/news//p")}, "subb")
	w.drain()

	wantA := map[string][]string{"/stock/price": {"suba"}, "/news//p": {"b"}}
	wantB := map[string][]string{"/stock/price": {"a"}, "/news//p": {"subb"}}
	assertSubTables(t, "a", subLastHops(a), wantA)
	assertSubTables(t, "b", subLastHops(b), wantB)
}

func TestResyncIsIdempotent(t *testing.T) {
	w := newWire(t)
	a := w.addBroker(Config{ID: "a"})
	b := w.addBroker(Config{ID: "b"})
	w.connect("a", "b")
	a.AddClient("sub")
	a.HandleMessage(&Message{Type: MsgSubscribe, XPE: xpath.MustParse("/stock//price")}, "sub")
	w.drain()

	a.ResyncFor("b")
	w.drain()
	epoch := b.SnapshotEpoch()
	before := fmt.Sprint(subLastHops(b), advHops(b))
	a.ResyncFor("b")
	w.drain()
	if got := fmt.Sprint(subLastHops(b), advHops(b)); got != before {
		t.Fatalf("second resync changed b's tables:\nbefore %s\nafter  %s", before, got)
	}
	if b.SnapshotEpoch() != epoch {
		t.Fatalf("a no-op resync moved b's snapshot epoch %d -> %d", epoch, b.SnapshotEpoch())
	}
}

func TestResyncSkipsClientsAndHeartbeatIsIgnored(t *testing.T) {
	w := newWire(t)
	a := w.addBroker(Config{ID: "a"})
	a.AddClient("c1")
	a.ResyncFor("c1")
	if len(w.queue) != 0 {
		t.Fatalf("ResyncFor(client) emitted %d messages, want 0", len(w.queue))
	}
	// Heartbeats are transport-level; a broker receiving one must not change
	// state (the transport filters them, this pins the defensive behaviour).
	epoch := a.SnapshotEpoch()
	a.HandleMessage(&Message{Type: MsgHeartbeat}, "b")
	if a.SnapshotEpoch() != epoch {
		t.Fatal("heartbeat moved the snapshot epoch")
	}
	if got := a.Stats().MsgsIn[MsgHeartbeat]; got != 1 {
		t.Fatalf("heartbeat not counted in MsgsIn: %d", got)
	}
}

func assertSubTables(t *testing.T, broker string, got, want map[string][]string) {
	t.Helper()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("broker %s subscription table mismatch\n got %v\nwant %v", broker, got, want)
	}
}
