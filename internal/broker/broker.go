package broker

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/advert"
	"repro/internal/cover"
	"repro/internal/merge"
	"repro/internal/metrics"
	"repro/internal/slowlog"
	"repro/internal/stream"
	"repro/internal/subtree"
	"repro/internal/symtab"
	"repro/internal/trace"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// MergingMode selects the broker's merging optimisation.
type MergingMode uint8

const (
	// MergeOff disables merging.
	MergeOff MergingMode = iota
	// MergePerfect applies only perfect mergers (imperfect degree 0).
	MergePerfect
	// MergeImperfect applies mergers up to Config.ImperfectDegree.
	MergeImperfect
)

// String names the merging mode for logs and metric labels.
func (m MergingMode) String() string {
	switch m {
	case MergeOff:
		return "off"
	case MergePerfect:
		return "perfect"
	case MergeImperfect:
		return "imperfect"
	default:
		return "unknown"
	}
}

// Config selects the routing strategy, mirroring the paper's evaluated
// combinations (no-Adv-no-Cov ... with-Adv-with-CovIPM).
type Config struct {
	// ID names the broker; peers address it by ID.
	ID string
	// UseAdvertisements routes subscriptions toward matching advertisements
	// instead of flooding them.
	UseAdvertisements bool
	// UseCovering suppresses forwarding of covered subscriptions and
	// unsubscribes newly covered ones.
	UseCovering bool
	// Merging selects the merging optimisation. Merging presupposes
	// covering (the subscription tree orders merge candidates); enabling it
	// without UseCovering is unsupported.
	Merging MergingMode
	// ImperfectDegree is the D_imperfect tolerance for MergeImperfect.
	ImperfectDegree float64
	// Estimator computes imperfect degrees; required for any merging mode
	// (perfect merging needs it to prove degree 0).
	Estimator *merge.DegreeEstimator
	// MergeEvery runs a merge pass after this many new subscriptions
	// (default 64).
	MergeEvery int

	// DisableSharedNFA turns off the shared path-matching automaton and
	// routes publications by walking the covering tree per subscription, as
	// earlier versions did. The automaton is the default because one NFA
	// run per publication replaces O(subscriptions) per-XPE evaluations;
	// the flag exists as the ablation baseline and as an escape hatch.
	DisableSharedNFA bool

	// DisableStreaming turns off streaming SAX-path matching for
	// publications: raw document bodies (Message.Raw) are parsed into a
	// tree and decomposed into paths before matching, and parsed documents
	// (Message.Doc) are decomposed as earlier versions did, instead of
	// being routed by one automaton pass over the bytes/tree. Streaming is
	// the default because its routing cost is proportional to depth ×
	// automaton activity rather than document size; the flag exists as the
	// ablation baseline alongside DisableSharedNFA. (With DisableSharedNFA
	// set there is no automaton to stream against, so streaming is
	// implicitly off as well.)
	DisableStreaming bool

	// Metrics, when non-nil, receives the broker's instruments: the
	// match-latency histogram (labelled by routing strategy), the
	// per-stage publish-path histograms (xbroker_stage_seconds), plus
	// func-backed counters and gauges reading the broker's existing
	// atomics and table sizes at exposition time, so the publish data
	// plane gains no new contention. Nil disables instrumentation.
	Metrics *metrics.Registry
	// TraceSink, when non-nil, receives one trace.Event per traced
	// publication crossing this broker (see Message.TraceID). Events are
	// recorded after the routing lock is released.
	TraceSink trace.Sink
	// SlowLog, when non-nil, is the slow-publication flight recorder: any
	// publication whose measured in-broker time (decode + queue + match +
	// filter + enqueue) reaches SlowLog.Threshold() is captured with its
	// full stage breakdown. Healthy publications pay one comparison.
	SlowLog *slowlog.Log
	// QueueDepths, when non-nil, snapshots the transport's per-peer send
	// queue depths; it is called only when a slow publication is captured
	// (never on the healthy hot path). The TCP transport installs it.
	QueueDepths func() map[string]int
}

// StrategyName renders the routing strategy compactly for metric labels,
// mirroring the paper's strategy matrix: "adv+cov", "noadv+nocov",
// "adv+cov+merge-imperfect", ...
func (c Config) StrategyName() string {
	parts := make([]string, 0, 3)
	if c.UseAdvertisements {
		parts = append(parts, "adv")
	} else {
		parts = append(parts, "noadv")
	}
	if c.UseCovering {
		parts = append(parts, "cov")
	} else {
		parts = append(parts, "nocov")
	}
	if c.Merging != MergeOff {
		parts = append(parts, "merge-"+c.Merging.String())
	}
	return strings.Join(parts, "+")
}

// Stats counts a broker's activity.
type Stats struct {
	MsgsIn         map[MsgType]int64
	MsgsOut        map[MsgType]int64
	Deliveries     int64 // publications handed to clients
	FalsePositives int64 // publications reaching an edge broker's client filter without a matching client subscription
	Mergers        int64 // subscription mergers applied by the periodic pass
	BadDocuments   int64 // raw publication bodies dropped (malformed XML or wire document bounds)
}

// counters is the broker's internal, lock-free statistics representation.
// Publications are counted on the shared-lock hot path from many goroutines
// at once, so every counter is an atomic; message-type counters are fixed
// arrays indexed by MsgType (small and dense) rather than maps.
type counters struct {
	msgsIn         [msgTypeCount]atomic.Int64
	msgsOut        [msgTypeCount]atomic.Int64
	deliveries     atomic.Int64
	falsePositives atomic.Int64
	mergers        atomic.Int64
	badDocs        atomic.Int64
}

// msgTypeCount bounds the MsgType enum for array-indexed counters.
const msgTypeCount = int(MsgHeartbeat) + 1

// Broker is one content-based XML router, safe for concurrent use.
//
// Concurrency model: broker state splits into a control plane and a data
// plane. Control messages (advertise, unadvertise, subscribe, unsubscribe,
// and the merge pass they trigger) mutate the master SRT and PRT under the
// exclusive lock and, before releasing it, publish an immutable
// routeSnapshot through an atomic pointer. Publish — the hot path —
// acquires no mutex at all: it loads the snapshot once and matches against
// that consistent view (subtree.Match* are read-only, see that package's
// docs), so any number of publications are matched in parallel and never
// contend with control-plane updates. A publication racing a control change
// is routed by either the old or the new table, exactly as if it had
// arrived entirely before or after the change. Counters are atomics and
// never require the lock. The send callback must not mutate the broker from
// publish context; for control messages it is invoked while the exclusive
// lock is held and must not call back into the broker.
type Broker struct {
	cfg  Config
	send func(to string, m *Message)

	// mu serialises the control plane (and guards the master tables below).
	// The publish data plane never takes it.
	mu sync.RWMutex

	// snap is the immutable routing state the publish data plane reads,
	// swapped by publishSnapshot at the end of every control mutation.
	snap atomic.Pointer[routeSnapshot]
	// dirty tracks which master tables the current control message touched;
	// guarded by mu.
	dirty snapDirty

	neighbors []string        // broker peers
	clients   map[string]bool // client peers

	// SRT: advertisements with last hops, deduplicated by AdvID.
	srt     []*advEntry
	srtByID map[string]*advEntry

	// PRT: the subscription tree; node Data holds *subState.
	prt *subtree.Tree
	// clientSubs holds each client's original subscriptions for final
	// delivery filtering: mergers may overapproximate, and the paper's
	// semantics require that false positives never reach clients.
	clientSubs map[string]*subtree.Tree

	sinceMerge int
	stats      counters

	// matchSeconds is the pre-resolved match-latency histogram (nil when
	// Config.Metrics is nil), so the hot path never touches the registry.
	matchSeconds *metrics.Histogram
	// Per-stage publish-path histograms (xbroker_stage_seconds{stage=...}),
	// pre-resolved like matchSeconds; all nil when Config.Metrics is nil.
	// The decode and flush stages live in the transport, which measures
	// them (see package transport).
	stageQueue, stageMatch, stageFilter, stageEnqueue *metrics.Histogram
	// slow mirrors Config.SlowLog for the hot-path nil check.
	slow *slowlog.Log
	// nfaBuildSeconds times shared-automaton recompilation at snapshot
	// publication (control-plane time; nil when Config.Metrics is nil).
	nfaBuildSeconds *metrics.Histogram
}

type advEntry struct {
	id      string
	adv     *advert.Advertisement
	lastHop string
	flat    []string // FlatNames for non-recursive advertisements, else nil
}

// subState is the routing payload of a PRT node.
type subState struct {
	lastHops    map[string]bool
	forwardedTo map[string]bool
	merger      bool
}

func stateOf(n *subtree.Node) *subState {
	s, _ := n.Data.(*subState)
	return s
}

// New constructs a broker. Neighbors and clients are registered afterwards
// with AddNeighbor/AddClient; send delivers a message to a peer by ID.
func New(cfg Config, send func(to string, m *Message)) *Broker {
	if cfg.MergeEvery <= 0 {
		cfg.MergeEvery = 64
	}
	b := &Broker{
		cfg:        cfg,
		send:       send,
		clients:    make(map[string]bool),
		srtByID:    make(map[string]*advEntry),
		prt:        subtree.New(),
		clientSubs: make(map[string]*subtree.Tree),
	}
	b.snap.Store(emptySnapshot())
	b.slow = cfg.SlowLog
	if cfg.Metrics != nil {
		b.registerMetrics(cfg.Metrics)
	}
	return b
}

// registerMetrics publishes the broker's instruments. Counters and table
// gauges are func-backed — they read the existing atomics and sizes at
// exposition time — so only the match-latency histogram adds work (two
// atomic adds) to the publish hot path.
func (b *Broker) registerMetrics(reg *metrics.Registry) {
	strategy := b.cfg.StrategyName()
	b.matchSeconds = reg.Histogram("xbroker_match_seconds",
		"Publication match latency in seconds, by routing strategy.",
		metrics.DefBuckets, "strategy", strategy)
	const stageHelp = "Publish-path stage latency in seconds, by pipeline stage " +
		"(decode, queue, match, filter, enqueue, flush — see DESIGN.md §5f)."
	b.stageQueue = reg.Histogram("xbroker_stage_seconds", stageHelp,
		metrics.DefBuckets, "stage", trace.StageQueue)
	b.stageMatch = reg.Histogram("xbroker_stage_seconds", stageHelp,
		metrics.DefBuckets, "stage", trace.StageMatch)
	b.stageFilter = reg.Histogram("xbroker_stage_seconds", stageHelp,
		metrics.DefBuckets, "stage", trace.StageFilter)
	b.stageEnqueue = reg.Histogram("xbroker_stage_seconds", stageHelp,
		metrics.DefBuckets, "stage", trace.StageEnqueue)
	if b.slow != nil {
		reg.CounterFunc("xbroker_slow_publications_total",
			"Publications captured by the slow-publication flight recorder (/debug/slow).",
			func() float64 { return float64(b.slow.Total()) })
		reg.GaugeFunc("xbroker_slow_threshold_seconds",
			"In-broker latency above which a publication is captured by the flight recorder.",
			func() float64 { return b.slow.Threshold().Seconds() })
	}
	reg.CounterFunc("xbroker_deliveries_total",
		"Publications handed to local clients.",
		func() float64 { return float64(b.stats.deliveries.Load()) })
	reg.CounterFunc("xbroker_false_positives_total",
		"Publications suppressed by the edge client filter (imperfect-merging false positives).",
		func() float64 { return float64(b.stats.falsePositives.Load()) })
	reg.CounterFunc("xbroker_mergers_total",
		"Subscription mergers applied by the periodic merge pass.",
		func() float64 { return float64(b.stats.mergers.Load()) })
	reg.CounterFunc("xbroker_bad_documents_total",
		"Raw publication bodies dropped: malformed XML or wire document bounds.",
		func() float64 { return float64(b.stats.badDocs.Load()) })
	for t := 1; t < msgTypeCount; t++ {
		t := MsgType(t)
		reg.CounterFunc("xbroker_msgs_in_total",
			"Messages received, by protocol type.",
			func() float64 { return float64(b.stats.msgsIn[t].Load()) }, "type", t.String())
		reg.CounterFunc("xbroker_msgs_out_total",
			"Messages sent, by protocol type.",
			func() float64 { return float64(b.stats.msgsOut[t].Load()) }, "type", t.String())
	}
	reg.GaugeFunc("xbroker_srt_advertisements",
		"Advertisements stored in the subscription routing table.",
		func() float64 { return float64(b.SRTSize()) })
	reg.GaugeFunc("xbroker_prt_subscriptions",
		"Subscriptions stored in the publication routing table.",
		func() float64 { return float64(b.PRTSize()) })
	reg.GaugeFunc("xbroker_prt_nodes",
		"Nodes in the covering tree.",
		func() float64 { return float64(b.PRTStats().Nodes) })
	reg.GaugeFunc("xbroker_prt_edges",
		"Parent-child (covering) edges in the covering tree.",
		func() float64 { return float64(b.PRTStats().Edges) })
	reg.GaugeFunc("xbroker_prt_super_edges",
		"Super-pointer edges (cross-subtree covering relations) in the covering tree.",
		func() float64 { return float64(b.PRTStats().SuperEdges) })
	reg.GaugeFunc("xbroker_snapshot_epoch",
		"Routing-snapshot epoch: increments each time a control-plane change swaps the publish view.",
		func() float64 { return float64(b.SnapshotEpoch()) })
	b.nfaBuildSeconds = reg.Histogram("xbroker_nfa_build_seconds",
		"Shared matching-automaton compile time at snapshot publication.",
		metrics.DefBuckets)
	reg.GaugeFunc("xbroker_nfa_states",
		"States in the shared path-matching automaton of the current snapshot.",
		func() float64 { return float64(b.NFAStats().States) })
	reg.GaugeFunc("xbroker_nfa_edges",
		"Transitions (symbol, wildcard, self-loop, and epsilon) in the shared matching automaton.",
		func() float64 { return float64(b.NFAStats().Edges) })
	reg.GaugeFunc("xbroker_nfa_entries",
		"Expressions compiled into the shared matching automaton (PRT last-hop nodes plus client filter entries).",
		func() float64 { return float64(b.NFAStats().Entries) })
}

// ID returns the broker's identifier.
func (b *Broker) ID() string { return b.cfg.ID }

// AddNeighbor registers a neighbouring broker.
func (b *Broker) AddNeighbor(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.neighbors = append(b.neighbors, id)
	sort.Strings(b.neighbors)
}

// AddClient registers a directly connected client.
func (b *Broker) AddClient(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.clients[id] = true
	b.dirty.clients = true
	if b.clientSubs[id] == nil {
		b.clientSubs[id] = subtree.New()
		b.dirty.markClientSubs(id)
	}
	b.publishSnapshot()
}

// Stats returns a snapshot of the broker's counters. It never blocks on the
// broker lock: counters are atomics.
func (b *Broker) Stats() Stats {
	out := Stats{
		MsgsIn:         make(map[MsgType]int64),
		MsgsOut:        make(map[MsgType]int64),
		Deliveries:     b.stats.deliveries.Load(),
		FalsePositives: b.stats.falsePositives.Load(),
		Mergers:        b.stats.mergers.Load(),
		BadDocuments:   b.stats.badDocs.Load(),
	}
	for t := 1; t < msgTypeCount; t++ {
		if v := b.stats.msgsIn[t].Load(); v != 0 {
			out.MsgsIn[MsgType(t)] = v
		}
		if v := b.stats.msgsOut[t].Load(); v != 0 {
			out.MsgsOut[MsgType(t)] = v
		}
	}
	return out
}

// PRTSize returns the number of subscriptions stored in the PRT. It reads
// the routing snapshot and never blocks on the broker lock.
func (b *Broker) PRTSize() int {
	return b.snap.Load().prt.Size()
}

// SRTSize returns the number of advertisements stored in the SRT. It reads
// the routing snapshot and never blocks on the broker lock.
func (b *Broker) SRTSize() int {
	return len(b.snap.Load().srt)
}

// PRT exposes the subscription tree for experiments and tests. The caller
// must not use it concurrently with message handling.
func (b *Broker) PRT() *subtree.Tree { return b.prt }

// TreeStats describes the covering tree's shape.
type TreeStats struct {
	Nodes      int
	Edges      int // parent-child (covering) edges
	SuperEdges int // cross-subtree covering relations
}

// PRTStats measures the covering tree. It walks the immutable routing
// snapshot, so metric exposition never blocks the control plane.
func (b *Broker) PRTStats() TreeStats {
	n, e, s := b.snap.Load().prt.Stats()
	return TreeStats{Nodes: n, Edges: e, SuperEdges: s}
}

// RouteTables is a JSON-serialisable snapshot of the broker's routing
// state, served by the admin endpoint /debug/routes.
type RouteTables struct {
	Broker         string     `json:"broker"`
	Strategy       string     `json:"strategy"`
	Neighbors      []string   `json:"neighbors"`
	Clients        []string   `json:"clients,omitempty"`
	Advertisements []AdvRoute `json:"advertisements"`
	Subscriptions  []SubRoute `json:"subscriptions"`
}

// AdvRoute is one SRT entry.
type AdvRoute struct {
	ID        string `json:"id"`
	Expr      string `json:"expr"`
	LastHop   string `json:"last_hop"`
	Recursive bool   `json:"recursive,omitempty"`
}

// SubRoute is one PRT entry.
type SubRoute struct {
	XPE         string   `json:"xpe"`
	LastHops    []string `json:"last_hops"`
	ForwardedTo []string `json:"forwarded_to,omitempty"`
	// Parent is the covering parent's expression ("" for top-level nodes).
	Parent string `json:"parent,omitempty"`
	Merger bool   `json:"merger,omitempty"`
}

// Routes snapshots both routing tables under the shared lock.
func (b *Broker) Routes() RouteTables {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := RouteTables{
		Broker:         b.cfg.ID,
		Strategy:       b.cfg.StrategyName(),
		Neighbors:      append([]string(nil), b.neighbors...),
		Clients:        sortedKeys(b.clients),
		Advertisements: make([]AdvRoute, 0, len(b.srt)),
		Subscriptions:  make([]SubRoute, 0, b.prt.Size()),
	}
	for _, e := range b.srt {
		out.Advertisements = append(out.Advertisements, AdvRoute{
			ID:        e.id,
			Expr:      e.adv.String(),
			LastHop:   e.lastHop,
			Recursive: e.adv.IsRecursive(),
		})
	}
	b.prt.Walk(func(n *subtree.Node) {
		sr := SubRoute{XPE: n.XPE.String()}
		if p := n.Parent(); p != nil {
			sr.Parent = p.XPE.String()
		}
		if st := stateOf(n); st != nil {
			sr.LastHops = sortedKeys(st.lastHops)
			sr.ForwardedTo = sortedKeys(st.forwardedTo)
			sr.Merger = st.merger
		}
		out.Subscriptions = append(out.Subscriptions, sr)
	})
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// HandleMessage processes one incoming message from peer `from`. It is safe
// for concurrent use: control messages serialise on the exclusive lock (and
// swap the routing snapshot before releasing it) while publications are
// matched lock-free against the snapshot, in parallel with each other and
// with control changes.
func (b *Broker) HandleMessage(m *Message, from string) {
	if int(m.Type) < msgTypeCount {
		b.stats.msgsIn[m.Type].Add(1)
	}
	switch m.Type {
	case MsgPublish:
		ev := b.handlePublish(m, from)
		// Trace events are recorded outside any routing structure, so the
		// sink may lock freely without entering the broker's hierarchy.
		if ev != nil && b.cfg.TraceSink != nil {
			b.cfg.TraceSink.Record(*ev)
		}
	case MsgAdvertise, MsgUnadvertise, MsgSubscribe, MsgUnsubscribe, MsgResync:
		b.mu.Lock()
		defer b.mu.Unlock()
		switch m.Type {
		case MsgAdvertise:
			b.handleAdvertise(m, from)
		case MsgUnadvertise:
			b.handleUnadvertise(m, from)
		case MsgSubscribe:
			b.handleSubscribe(m, from)
		case MsgUnsubscribe:
			b.handleUnsubscribe(m, from)
		case MsgResync:
			b.handleResync(m, from)
		}
		// Swap the publish view before the lock drops: the next publication
		// to load the snapshot observes this control change in full.
		b.publishSnapshot()
	}
}

func (b *Broker) emit(to string, m *Message) {
	if int(m.Type) < msgTypeCount {
		b.stats.msgsOut[m.Type].Add(1)
	}
	b.send(to, m)
}

// --- advertisements ---

func (b *Broker) handleAdvertise(m *Message, from string) {
	if _, dup := b.srtByID[m.AdvID]; dup {
		return // flooding duplicate
	}
	e := &advEntry{id: m.AdvID, adv: m.Adv, lastHop: from}
	if m.Adv.Classify() == advert.NonRecursive {
		e.flat = m.Adv.FlatNames()
	}
	// Advertisement covering: an advertisement covered by an existing one
	// with the same last hop is redundant — subscriptions overlapping it
	// are already routed that way. (Different last hops must both stay:
	// they lead to different producers.)
	if b.cfg.UseCovering && e.flat != nil {
		for _, old := range b.srt {
			if old.lastHop == from && old.flat != nil && cover.CoversAdvertisement(old.flat, e.flat) {
				b.srtByID[m.AdvID] = old // remember the ID for dedup
				return
			}
		}
	}
	b.srt = append(b.srt, e)
	b.srtByID[m.AdvID] = e
	b.dirty.srt = true

	// Flood to all other peers that are brokers.
	for _, nb := range b.neighbors {
		if nb != from {
			b.emit(nb, m)
		}
	}
	// Forward existing subscriptions toward the new advertisement.
	if b.cfg.UseAdvertisements && from != "" {
		for _, n := range b.prt.TopLevel() {
			st := stateOf(n)
			if st == nil || st.forwardedTo[from] {
				continue
			}
			if m.Adv.Overlaps(n.XPE) {
				st.forwardedTo[from] = true
				b.emit(from, &Message{Type: MsgSubscribe, XPE: n.XPE})
			}
		}
	}
}

func (b *Broker) handleUnadvertise(m *Message, from string) {
	e := b.srtByID[m.AdvID]
	if e == nil {
		return
	}
	delete(b.srtByID, m.AdvID)
	for i, cur := range b.srt {
		if cur == e {
			b.srt = append(b.srt[:i], b.srt[i+1:]...)
			b.dirty.srt = true
			break
		}
	}
	for _, nb := range b.neighbors {
		if nb != from {
			b.emit(nb, m)
		}
	}
}

// --- subscriptions ---

func (b *Broker) handleSubscribe(m *Message, from string) {
	if b.clients[from] {
		// Remember the client's original subscription for delivery
		// filtering.
		if cres := b.clientSubs[from].Insert(m.XPE); !cres.Duplicate {
			b.dirty.markClientSubs(from)
		}
	}

	var res subtree.InsertResult
	if b.cfg.UseCovering {
		res = b.prt.Insert(m.XPE)
	} else {
		res = b.prt.FlatInsert(m.XPE)
	}
	st := stateOf(res.Node)
	if st == nil {
		st = &subState{lastHops: make(map[string]bool), forwardedTo: make(map[string]bool)}
		res.Node.Data = st
	}
	newDirection := !st.lastHops[from]
	st.lastHops[from] = true
	if res.Duplicate && !newDirection {
		return // a pure repeat from the same peer changes nothing
	}
	b.dirty.prt = true
	// A known expression arriving from a NEW direction must still
	// propagate: reverse-path delivery needs every broker between the
	// publisher and the new subscriber to record the new interest
	// direction, so the subscription is re-forwarded to the hops it has
	// not reached yet.
	b.forwardSubscription(res.Node, st, from)

	// Withdraw the subscriptions this one covers from the hops both were
	// forwarded to: downstream tables keep routing through the broader
	// subscription.
	if b.cfg.UseCovering {
		for _, covered := range res.NewlyCovered {
			cst := stateOf(covered)
			if cst == nil {
				continue
			}
			for hop := range cst.forwardedTo {
				if st.forwardedTo[hop] {
					b.emit(hop, &Message{Type: MsgUnsubscribe, XPE: covered.XPE})
					delete(cst.forwardedTo, hop)
				}
			}
		}
	}

	// Periodic merging.
	if b.cfg.Merging != MergeOff {
		b.sinceMerge++
		if b.sinceMerge >= b.cfg.MergeEvery {
			b.sinceMerge = 0
			b.runMergePass()
		}
	}
}

// forwardSubscription sends a subscription to the next hops its matching
// advertisements indicate (or floods it without advertisements). With
// covering, a hop is skipped when a covering subscription was already
// forwarded to that same hop — the per-next-hop rule; suppressing a covered
// subscription entirely would lose publications arriving from directions
// the coverer's own path does not serve.
func (b *Broker) forwardSubscription(n *subtree.Node, st *subState, from string) {
	var coverers []*subtree.Node
	if b.cfg.UseCovering {
		coverers = b.prt.Coverers(n.XPE)
	}
	for _, hop := range b.subscriptionNextHops(n.XPE, from) {
		// Skip hops already served. Hops that themselves sent this
		// subscription are NOT skipped: they sent it on behalf of a
		// different subscriber direction and still need to learn of this
		// one for reverse-path delivery.
		if st.forwardedTo[hop] {
			continue
		}
		if coveredAtHop(coverers, hop) {
			continue
		}
		st.forwardedTo[hop] = true
		b.emit(hop, &Message{Type: MsgSubscribe, XPE: n.XPE})
	}
}

// coveredAtHop reports whether any coverer has already been forwarded to the
// hop.
func coveredAtHop(coverers []*subtree.Node, hop string) bool {
	for _, c := range coverers {
		if cst := stateOf(c); cst != nil && cst.forwardedTo[hop] {
			return true
		}
	}
	return false
}

func (b *Broker) subscriptionNextHops(x *xpath.XPE, from string) []string {
	if !b.cfg.UseAdvertisements {
		out := make([]string, 0, len(b.neighbors))
		for _, nb := range b.neighbors {
			if nb != from {
				out = append(out, nb)
			}
		}
		return out
	}
	seen := make(map[string]bool)
	var out []string
	for _, e := range b.srt {
		if e.lastHop == "" || e.lastHop == from || seen[e.lastHop] {
			continue
		}
		if !b.clients[e.lastHop] && e.adv.Overlaps(x) {
			seen[e.lastHop] = true
			out = append(out, e.lastHop)
		}
	}
	sort.Strings(out)
	return out
}

func (b *Broker) handleUnsubscribe(m *Message, from string) {
	if b.clients[from] {
		if n := b.clientSubs[from].Lookup(m.XPE); n != nil {
			b.clientSubs[from].Remove(n)
			b.dirty.markClientSubs(from)
		}
	}
	n := b.prt.Lookup(m.XPE)
	if n == nil {
		return
	}
	b.dirty.prt = true
	st := stateOf(n)
	if st != nil {
		delete(st.lastHops, from)
		if len(st.lastHops) > 0 {
			// Other peers still need the subscription, but a forward to a
			// hop is justified only by interest from some *other* direction.
			// If the sole remaining direction is a hop this subscription was
			// forwarded to, that forward is now vacuous — withdraw it, or
			// the hop keeps a phantom interest entry pointing back here.
			if len(st.lastHops) == 1 {
				for only := range st.lastHops {
					if st.forwardedTo[only] {
						delete(st.forwardedTo, only)
						b.emit(only, &Message{Type: MsgUnsubscribe, XPE: m.XPE})
					}
				}
			}
			return
		}
	}
	// The nodes this subscription covered — its adopted children and its
	// super-pointer targets — may have had forwarding suppressed on hops it
	// served; collect them before the removal destroys the links.
	var uncovered []*subtree.Node
	uncovered = append(uncovered, n.Children()...)
	uncovered = append(uncovered, n.Super()...)
	b.prt.Remove(n)
	// Propagate the withdrawal.
	if st != nil {
		for hop := range st.forwardedTo {
			b.emit(hop, &Message{Type: MsgUnsubscribe, XPE: m.XPE})
		}
	}
	// Uncovering: re-forward what this subscription suppressed. This must
	// run even when the removed node was itself covered — a covering
	// ancestor only serves the hops it was forwarded to, and the removed
	// node may have been the sole subscription forwarded on some hop.
	// forwardSubscription re-applies the per-hop covering rule against the
	// remaining coverers, so hops a surviving coverer already serves are
	// skipped.
	if b.cfg.UseCovering {
		for _, c := range uncovered {
			if cst := stateOf(c); cst != nil {
				b.forwardSubscription(c, cst, "")
			}
		}
	}
}

// runMergePass merges PRT siblings per the configured mode and translates
// each merger into network operations: unsubscribe the sources, subscribe
// the merger.
func (b *Broker) runMergePass() {
	b.dirty.prt = true
	maxDegree := 0.0
	if b.cfg.Merging == MergeImperfect {
		maxDegree = b.cfg.ImperfectDegree
	}
	opts := merge.Options{
		MaxDegree: maxDegree,
		Estimator: b.cfg.Estimator,
		OnMerge: func(m *merge.Merger, sources []*subtree.Node, mergerNode *subtree.Node) {
			b.stats.mergers.Add(1)
			st := stateOf(mergerNode)
			if st == nil {
				st = &subState{lastHops: make(map[string]bool), forwardedTo: make(map[string]bool), merger: true}
				mergerNode.Data = st
			}
			var oldForwards map[string]bool
			for _, src := range sources {
				sst := stateOf(src)
				if sst == nil {
					continue
				}
				for hop := range sst.lastHops {
					st.lastHops[hop] = true
				}
				if oldForwards == nil {
					oldForwards = make(map[string]bool)
				}
				for hop := range sst.forwardedTo {
					oldForwards[hop] = true
				}
			}
			// Withdraw the sources upstream and forward the merger instead.
			for _, src := range sources {
				sst := stateOf(src)
				if sst == nil {
					continue
				}
				for hop := range sst.forwardedTo {
					b.emit(hop, &Message{Type: MsgUnsubscribe, XPE: src.XPE})
				}
			}
			for _, hop := range b.subscriptionNextHops(mergerNode.XPE, "") {
				if st.forwardedTo[hop] {
					continue
				}
				st.forwardedTo[hop] = true
				b.emit(hop, &Message{Type: MsgSubscribe, XPE: mergerNode.XPE})
			}
		},
	}
	merge.Pass(b.prt, opts)
}

// --- publications ---

// handlePublish matches one publication and forwards it. It is the lock-free
// data plane: it loads the routing snapshot once and reads only that
// immutable view plus atomic counters — zero mutex acquisitions, so
// publications never contend with each other or with control-plane updates.
// Matching is one shared-automaton run per publication sym-path (the
// snapshot's pmatch NFA covers the PRT's last-hop entries and every client
// filter expression; see DESIGN.md §5c), falling back to the per-
// subscription covering tree walk when the automaton is absent. Whole
// documents are routed by the streaming matcher by default — one automaton
// pass over the raw bytes (Message.Raw, never parsed into a tree) or over
// the parsed tree (Message.Doc), see DESIGN.md §5e — with
// Config.DisableStreaming falling back to decompose-into-paths. A raw body
// that fails the streaming scan (malformed XML or the wire document
// bounds) is dropped and counted, never forwarded. Publication paths are
// matched in interned symbol form; a publication carrying no pre-interned
// path (hand-built, or a whole document) is converted on arrival. For
// traced publications it returns the hop event for the caller to record;
// untraced traffic returns nil.
func (b *Broker) handlePublish(m *Message, from string) *trace.Event {
	snap := b.snap.Load()
	// Per-stage spans are measured only when someone will read them — an
	// attached metrics registry, the flight recorder, or a trace. For
	// untraced publications on an uninstrumented broker, measure is false and
	// the handler performs no clock reads at all; sp lives on the stack
	// either way, so the span machinery costs the hot path zero allocations.
	var sp pubSpan
	measure := b.stageMatch != nil || b.slow != nil || m.TraceID != ""
	if measure {
		sp.start = time.Now()
		var enqueued time.Time
		sp.decode, enqueued = m.Arrival()
		if !enqueued.IsZero() {
			if sp.queue = sp.start.Sub(enqueued); sp.queue < 0 {
				sp.queue = 0
			}
		}
	}
	// Collect next hops from all matching subscriptions — one shared-NFA
	// run per document or path when the snapshot carries the automaton
	// (the default), else the covering-pruned tree traversal. The same run
	// also computes the per-client edge-filter verdicts (clientMatch
	// payloads), so delivery filtering below re-matches nothing. Attribute
	// predicates are evaluated in-network either way.
	hops := make(map[string]bool)
	var matchedClients map[string]bool
	collect := func(data any) {
		switch v := data.(type) {
		case []string:
			for _, hop := range v {
				if hop != from {
					hops[hop] = true
				}
			}
		case clientMatch:
			if matchedClients == nil {
				matchedClients = make(map[string]bool)
			}
			matchedClients[string(v)] = true
		}
	}
	// paths/attrs stay nil on the streaming routes; the edge filter below
	// only consults them when the automaton is absent, which implies the
	// decomposed route ran.
	var paths [][]symtab.Sym
	var attrs [][]map[string]string
	streaming := snap.auto != nil && !b.cfg.DisableStreaming
	switch {
	case streaming && len(m.Raw) > 0:
		// One pass over the bytes: syntax, wire bounds, and matching.
		if err := stream.Match(m.Raw, snap.auto, stream.WireLimits, collect); err != nil {
			b.stats.badDocs.Add(1)
			return nil
		}
	case streaming && m.Doc != nil:
		stream.MatchDoc(m.Doc, snap.auto, collect)
	default:
		doc := m.Doc
		if doc == nil && len(m.Raw) > 0 {
			// Ablation fallback for raw bodies: parse, then enforce the
			// same wire bounds the streaming scan checks incrementally.
			parsed, err := xmldoc.Parse(m.Raw)
			if err != nil || stream.CheckDoc(parsed, stream.WireLimits) != nil {
				b.stats.badDocs.Add(1)
				return nil
			}
			doc = parsed
		}
		if doc != nil {
			paths, attrs = doc.AnnotatedSymPaths()
		} else {
			sp := m.Pub.SymPath
			if sp == nil {
				sp = symtab.InternPath(m.Pub.Path)
			}
			paths = [][]symtab.Sym{sp}
			attrs = [][]map[string]string{m.Pub.Attrs}
		}
		if snap.auto != nil {
			for i, path := range paths {
				snap.auto.Match(path, attrs[i], collect)
			}
		} else {
			for i, path := range paths {
				snap.prt.MatchSymPathAttrs(path, attrs[i], func(n *subtree.Node) {
					for _, hop := range snapshotNodeHops(n) {
						if hop != from {
							hops[hop] = true
						}
					}
				})
			}
		}
	}
	var matchEnd time.Time
	if measure {
		matchEnd = time.Now()
		sp.match = matchEnd.Sub(sp.start)
		if b.matchSeconds != nil {
			b.matchSeconds.Observe(sp.match.Seconds())
		}
	}
	ordered := make([]string, 0, len(hops))
	for hop := range hops {
		ordered = append(ordered, hop)
	}
	sort.Strings(ordered)
	var ev *trace.Event
	var nowWall int64
	if m.TraceID != "" {
		nowWall = time.Now().UnixNano()
		ev = &trace.Event{
			TraceID:      m.TraceID,
			Broker:       b.cfg.ID,
			From:         from,
			RecvUnixNano: nowWall,
		}
	}
	// Filter pass: apply edge filtering and trace accounting, compacting the
	// surviving hops in place (kept shares ordered's backing array, so the
	// two-pass structure allocates nothing). Nothing is emitted yet — the
	// traced hop record sealed below can then carry the filter stage's
	// duration.
	kept := ordered[:0]
	for _, hop := range ordered {
		if snap.clients[hop] {
			// Edge filtering: imperfect mergers must not leak false
			// positives to clients. With the automaton the verdict was
			// computed in the same run that produced the hop set.
			passes := matchedClients[hop]
			if snap.auto == nil {
				passes = snap.matchesClient(hop, paths, attrs)
			}
			if !passes {
				b.stats.falsePositives.Add(1)
				if ev != nil {
					ev.FilteredFor = append(ev.FilteredFor, hop)
				}
				continue
			}
			b.stats.deliveries.Add(1)
			if ev != nil {
				ev.DeliveredTo = append(ev.DeliveredTo, hop)
			}
		} else if ev != nil {
			ev.ForwardedTo = append(ev.ForwardedTo, hop)
		}
		kept = append(kept, hop)
	}
	var filterEnd time.Time
	if measure {
		filterEnd = time.Now()
		sp.filter = filterEnd.Sub(matchEnd)
	}
	// Traced publications travel on as a copy with this broker appended to
	// the hop list; the received message is never mutated (simulator peers
	// share message pointers). The hop is sealed after the filter pass so its
	// stage list carries decode, queue, match, and filter; enqueue and flush
	// happen later and appear in histograms and the inter-hop wall-clock gap.
	fwd := m
	if ev != nil {
		hopList := make([]trace.Hop, 0, len(m.Hops)+1)
		hopList = append(hopList, m.Hops...)
		hopList = append(hopList, trace.Hop{
			Broker:   b.cfg.ID,
			UnixNano: nowWall,
			Epoch:    snap.epoch,
			Stages:   sp.hopStages(),
		})
		cp := *m
		cp.Hops = hopList
		fwd = &cp
		ev.Hops = hopList
	}
	for _, hop := range kept {
		b.emit(hop, fwd)
	}
	if measure {
		sp.enqueue = time.Since(filterEnd)
		b.observeSpan(&sp)
		if b.slow != nil && sp.total() >= b.slow.Threshold() {
			b.recordSlow(&sp, fwd, from, snap, len(paths), kept)
		}
	}
	return ev
}

// pubSpan accumulates one publication's per-stage timings on the broker's
// monotonic clock. It lives on the publish handler's stack; handlePublish
// decides whether it is measured at all.
type pubSpan struct {
	start   time.Time
	decode  time.Duration
	queue   time.Duration
	match   time.Duration
	filter  time.Duration
	enqueue time.Duration
}

// total is the publication's in-broker time — the value the flight
// recorder's threshold is compared against.
func (s *pubSpan) total() time.Duration {
	return s.decode + s.queue + s.match + s.filter + s.enqueue
}

// hopStages renders the stages known at hop-append time. Enqueue and flush
// happen after the hop record is sealed; across brokers they are part of the
// wall-clock gap between consecutive hop stamps.
func (s *pubSpan) hopStages() []trace.StageDur {
	return []trace.StageDur{
		{Stage: trace.StageDecode, Nanos: int64(s.decode)},
		{Stage: trace.StageQueue, Nanos: int64(s.queue)},
		{Stage: trace.StageMatch, Nanos: int64(s.match)},
		{Stage: trace.StageFilter, Nanos: int64(s.filter)},
	}
}

// observeSpan feeds the broker-side stage histograms. Decode and flush are
// observed by the transport that measures them (see package transport).
func (b *Broker) observeSpan(sp *pubSpan) {
	if b.stageQueue == nil {
		return
	}
	b.stageQueue.Observe(sp.queue.Seconds())
	b.stageMatch.Observe(sp.match.Seconds())
	b.stageFilter.Observe(sp.filter.Seconds())
	b.stageEnqueue.Observe(sp.enqueue.Seconds())
}

// recordSlow captures one over-threshold publication into the flight
// recorder. It runs only for already-slow publications, so its allocations
// and the QueueDepths callback stay off the healthy hot path.
func (b *Broker) recordSlow(sp *pubSpan, m *Message, from string, snap *routeSnapshot, pathCount int, dests []string) {
	e := slowlog.Entry{
		Broker:     b.cfg.ID,
		From:       from,
		TraceID:    m.TraceID,
		UnixNano:   time.Now().UnixNano(),
		TotalNanos: int64(sp.total()),
		Stages: append(sp.hopStages(),
			trace.StageDur{Stage: trace.StageEnqueue, Nanos: int64(sp.enqueue)}),
		DocBytes:     len(m.Raw),
		Paths:        pathCount,
		Epoch:        snap.epoch,
		Hops:         len(m.Hops),
		Destinations: append([]string(nil), dests...),
	}
	if b.cfg.QueueDepths != nil {
		e.QueueDepths = b.cfg.QueueDepths()
	}
	b.slow.Record(e)
}
