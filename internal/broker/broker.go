package broker

import (
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/advert"
	"repro/internal/merge"
	"repro/internal/metrics"
	"repro/internal/pmatch"
	"repro/internal/slowlog"
	"repro/internal/subtree"
	"repro/internal/trace"
)

// MergingMode selects the broker's merging optimisation.
type MergingMode uint8

const (
	// MergeOff disables merging.
	MergeOff MergingMode = iota
	// MergePerfect applies only perfect mergers (imperfect degree 0).
	MergePerfect
	// MergeImperfect applies mergers up to Config.ImperfectDegree.
	MergeImperfect
)

// String names the merging mode for logs and metric labels.
func (m MergingMode) String() string {
	switch m {
	case MergeOff:
		return "off"
	case MergePerfect:
		return "perfect"
	case MergeImperfect:
		return "imperfect"
	default:
		return "unknown"
	}
}

// Config selects the routing strategy, mirroring the paper's evaluated
// combinations (no-Adv-no-Cov ... with-Adv-with-CovIPM).
type Config struct {
	// ID names the broker; peers address it by ID.
	ID string
	// UseAdvertisements routes subscriptions toward matching advertisements
	// instead of flooding them.
	UseAdvertisements bool
	// UseCovering suppresses forwarding of covered subscriptions and
	// unsubscribes newly covered ones.
	UseCovering bool
	// Merging selects the merging optimisation. Merging presupposes
	// covering (the subscription tree orders merge candidates); enabling it
	// without UseCovering is unsupported.
	Merging MergingMode
	// ImperfectDegree is the D_imperfect tolerance for MergeImperfect.
	ImperfectDegree float64
	// Estimator computes imperfect degrees; required for any merging mode
	// (perfect merging needs it to prove degree 0).
	Estimator *merge.DegreeEstimator
	// MergeEvery runs a merge pass after this many new subscriptions
	// (default 64).
	MergeEvery int

	// DisableSharedNFA turns off the shared path-matching automaton and
	// routes publications by walking the covering tree per subscription, as
	// earlier versions did. The automaton is the default because one NFA
	// run per publication replaces O(subscriptions) per-XPE evaluations;
	// the flag exists as the ablation baseline and as an escape hatch.
	DisableSharedNFA bool

	// Shards partitions the shared matching automaton into this many
	// independently-recompiled shards keyed by the subscription's root
	// symbol (pmatch.ShardIndex; DESIGN.md §5g). A control-plane change
	// recompiles only the shard(s) its expression lives in, so recompile
	// work at large tables drops roughly with the shard count, and a
	// publication consults only its root's shard plus the wild shard.
	// 0 selects GOMAXPROCS; 1 is the single-automaton ablation (exactly
	// the pre-sharding behaviour). Ignored with DisableSharedNFA.
	Shards int

	// ParallelMatchPaths, when positive, fans a decomposed document's
	// sym-paths out across worker goroutines once the document yields at
	// least this many paths. It applies only to the decompose route
	// (streaming routes a whole document in one pass); 0 disables the
	// fan-out, keeping the decomposed publish path allocation-free.
	ParallelMatchPaths int

	// DisableStreaming turns off streaming SAX-path matching for
	// publications: raw document bodies (Message.Raw) are parsed into a
	// tree and decomposed into paths before matching, and parsed documents
	// (Message.Doc) are decomposed as earlier versions did, instead of
	// being routed by one automaton pass over the bytes/tree. Streaming is
	// the default because its routing cost is proportional to depth ×
	// automaton activity rather than document size; the flag exists as the
	// ablation baseline alongside DisableSharedNFA. (With DisableSharedNFA
	// set there is no automaton to stream against, so streaming is
	// implicitly off as well.)
	DisableStreaming bool

	// Metrics, when non-nil, receives the broker's instruments: the
	// match-latency histogram (labelled by routing strategy), the
	// per-stage publish-path histograms (xbroker_stage_seconds), plus
	// func-backed counters and gauges reading the broker's existing
	// atomics and table sizes at exposition time, so the publish data
	// plane gains no new contention. Nil disables instrumentation.
	Metrics *metrics.Registry
	// TraceSink, when non-nil, receives one trace.Event per traced
	// publication crossing this broker (see Message.TraceID). Events are
	// recorded after the routing lock is released.
	TraceSink trace.Sink
	// SlowLog, when non-nil, is the slow-publication flight recorder: any
	// publication whose measured in-broker time (decode + queue + match +
	// filter + enqueue) reaches SlowLog.Threshold() is captured with its
	// full stage breakdown. Healthy publications pay one comparison.
	SlowLog *slowlog.Log
	// QueueDepths, when non-nil, snapshots the transport's per-peer send
	// queue depths; it is called only when a slow publication is captured
	// (never on the healthy hot path). The TCP transport installs it.
	QueueDepths func() map[string]int

	// Durable, when non-nil, is the write-ahead publication log backing
	// durable named subscriptions (see DurableStore and DESIGN.md §5i).
	// Nil disables durability: MsgSubscribeDurable and MsgAck are ignored
	// and the publish path pays one snapshot-map length check per hop.
	Durable DurableStore
}

// StrategyName renders the routing strategy compactly for metric labels,
// mirroring the paper's strategy matrix: "adv+cov", "noadv+nocov",
// "adv+cov+merge-imperfect", ...
func (c Config) StrategyName() string {
	parts := make([]string, 0, 3)
	if c.UseAdvertisements {
		parts = append(parts, "adv")
	} else {
		parts = append(parts, "noadv")
	}
	if c.UseCovering {
		parts = append(parts, "cov")
	} else {
		parts = append(parts, "nocov")
	}
	if c.Merging != MergeOff {
		parts = append(parts, "merge-"+c.Merging.String())
	}
	return strings.Join(parts, "+")
}

// Stats counts a broker's activity.
type Stats struct {
	MsgsIn         map[MsgType]int64
	MsgsOut        map[MsgType]int64
	Deliveries     int64 // publications handed to clients
	FalsePositives int64 // publications reaching an edge broker's client filter without a matching client subscription
	Mergers        int64 // subscription mergers applied by the periodic pass
	BadDocuments   int64 // raw publication bodies dropped (malformed XML or wire document bounds)
}

// counters is the broker's internal, lock-free statistics representation.
// Publications are counted on the shared-lock hot path from many goroutines
// at once, so every counter is an atomic; message-type counters are fixed
// arrays indexed by MsgType (small and dense) rather than maps.
type counters struct {
	msgsIn         [msgTypeCount]atomic.Int64
	msgsOut        [msgTypeCount]atomic.Int64
	deliveries     atomic.Int64
	falsePositives atomic.Int64
	mergers        atomic.Int64
	badDocs        atomic.Int64
}

// msgTypeCount bounds the MsgType enum for array-indexed counters.
const msgTypeCount = int(MsgReplayEnd) + 1

// Broker is one content-based XML router, safe for concurrent use.
//
// Concurrency model: broker state splits into a control plane and a data
// plane. Control messages (advertise, unadvertise, subscribe, unsubscribe,
// and the merge pass they trigger) mutate the master SRT and PRT under the
// exclusive lock and, before releasing it, publish an immutable
// routeSnapshot through an atomic pointer. Publish — the hot path —
// acquires no mutex at all: it loads the snapshot once and matches against
// that consistent view (subtree.Match* are read-only, see that package's
// docs), so any number of publications are matched in parallel and never
// contend with control-plane updates. A publication racing a control change
// is routed by either the old or the new table, exactly as if it had
// arrived entirely before or after the change. Counters are atomics and
// never require the lock. The send callback must not mutate the broker from
// publish context; for control messages it is invoked while the exclusive
// lock is held and must not call back into the broker.
type Broker struct {
	cfg  Config
	send func(to string, m *Message)

	// mu serialises the control plane (and guards the master tables below).
	// The publish data plane never takes it.
	mu sync.RWMutex

	// snap is the immutable routing state the publish data plane reads,
	// swapped by publishSnapshot at the end of every control mutation.
	snap atomic.Pointer[routeSnapshot]
	// dirty tracks which master tables the current control message touched;
	// guarded by mu.
	dirty snapDirty

	neighbors []string        // broker peers
	clients   map[string]bool // client peers

	// SRT: advertisements with last hops, deduplicated by AdvID.
	srt     []*advEntry
	srtByID map[string]*advEntry

	// PRT: the subscription tree; node Data holds *subState.
	prt *subtree.Tree
	// clientSubs holds each client's original subscriptions for final
	// delivery filtering: mergers may overapproximate, and the paper's
	// semantics require that false positives never reach clients.
	clientSubs map[string]*subtree.Tree

	// durables holds the master durable-subscription states by name;
	// guarded by mu (the states themselves carry their own locks for the
	// publish plane — see durState).
	durables map[string]*durState
	// durable mirrors Config.Durable for nil checks off the lock.
	durable DurableStore

	sinceMerge int
	stats      counters

	// matchSeconds is the pre-resolved match-latency histogram (nil when
	// Config.Metrics is nil), so the hot path never touches the registry.
	matchSeconds *metrics.Histogram
	// Per-stage publish-path histograms (xbroker_stage_seconds{stage=...}),
	// pre-resolved like matchSeconds; all nil when Config.Metrics is nil.
	// The decode and flush stages live in the transport, which measures
	// them (see package transport).
	stageQueue, stageMatch, stageFilter, stageEnqueue *metrics.Histogram
	// slow mirrors Config.SlowLog for the hot-path nil check.
	slow *slowlog.Log
	// nfaBuildSeconds times shared-automaton recompilation at snapshot
	// publication (control-plane time; nil when Config.Metrics is nil).
	nfaBuildSeconds *metrics.Histogram
}

type advEntry struct {
	id      string
	adv     *advert.Advertisement
	lastHop string
	flat    []string // FlatNames for non-recursive advertisements, else nil
}

// subState is the routing payload of a PRT node.
type subState struct {
	lastHops    map[string]bool
	forwardedTo map[string]bool
	merger      bool
}

func stateOf(n *subtree.Node) *subState {
	s, _ := n.Data.(*subState)
	return s
}

// New constructs a broker. Neighbors and clients are registered afterwards
// with AddNeighbor/AddClient; send delivers a message to a peer by ID.
func New(cfg Config, send func(to string, m *Message)) *Broker {
	if cfg.MergeEvery <= 0 {
		cfg.MergeEvery = 64
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	b := &Broker{
		cfg:        cfg,
		send:       send,
		clients:    make(map[string]bool),
		srtByID:    make(map[string]*advEntry),
		prt:        subtree.New(),
		clientSubs: make(map[string]*subtree.Tree),
		durables:   make(map[string]*durState),
		durable:    cfg.Durable,
	}
	b.snap.Store(emptySnapshot())
	b.slow = cfg.SlowLog
	if cfg.Metrics != nil {
		b.registerMetrics(cfg.Metrics)
	}
	return b
}

// registerMetrics publishes the broker's instruments. Counters and table
// gauges are func-backed — they read the existing atomics and sizes at
// exposition time — so only the match-latency histogram adds work (two
// atomic adds) to the publish hot path.
func (b *Broker) registerMetrics(reg *metrics.Registry) {
	strategy := b.cfg.StrategyName()
	b.matchSeconds = reg.Histogram("xbroker_match_seconds",
		"Publication match latency in seconds, by routing strategy.",
		metrics.DefBuckets, "strategy", strategy)
	const stageHelp = "Publish-path stage latency in seconds, by pipeline stage " +
		"(decode, queue, match, filter, enqueue, flush — see DESIGN.md §5f)."
	b.stageQueue = reg.Histogram("xbroker_stage_seconds", stageHelp,
		metrics.DefBuckets, "stage", trace.StageQueue)
	b.stageMatch = reg.Histogram("xbroker_stage_seconds", stageHelp,
		metrics.DefBuckets, "stage", trace.StageMatch)
	b.stageFilter = reg.Histogram("xbroker_stage_seconds", stageHelp,
		metrics.DefBuckets, "stage", trace.StageFilter)
	b.stageEnqueue = reg.Histogram("xbroker_stage_seconds", stageHelp,
		metrics.DefBuckets, "stage", trace.StageEnqueue)
	if b.slow != nil {
		reg.CounterFunc("xbroker_slow_publications_total",
			"Publications captured by the slow-publication flight recorder (/debug/slow).",
			func() float64 { return float64(b.slow.Total()) })
		reg.GaugeFunc("xbroker_slow_threshold_seconds",
			"In-broker latency above which a publication is captured by the flight recorder.",
			func() float64 { return b.slow.Threshold().Seconds() })
	}
	reg.CounterFunc("xbroker_deliveries_total",
		"Publications handed to local clients.",
		func() float64 { return float64(b.stats.deliveries.Load()) })
	reg.CounterFunc("xbroker_false_positives_total",
		"Publications suppressed by the edge client filter (imperfect-merging false positives).",
		func() float64 { return float64(b.stats.falsePositives.Load()) })
	reg.CounterFunc("xbroker_mergers_total",
		"Subscription mergers applied by the periodic merge pass.",
		func() float64 { return float64(b.stats.mergers.Load()) })
	reg.CounterFunc("xbroker_bad_documents_total",
		"Raw publication bodies dropped: malformed XML or wire document bounds.",
		func() float64 { return float64(b.stats.badDocs.Load()) })
	for t := 1; t < msgTypeCount; t++ {
		t := MsgType(t)
		reg.CounterFunc("xbroker_msgs_in_total",
			"Messages received, by protocol type.",
			func() float64 { return float64(b.stats.msgsIn[t].Load()) }, "type", t.String())
		reg.CounterFunc("xbroker_msgs_out_total",
			"Messages sent, by protocol type.",
			func() float64 { return float64(b.stats.msgsOut[t].Load()) }, "type", t.String())
	}
	reg.GaugeFunc("xbroker_srt_advertisements",
		"Advertisements stored in the subscription routing table.",
		func() float64 { return float64(b.SRTSize()) })
	reg.GaugeFunc("xbroker_prt_subscriptions",
		"Subscriptions stored in the publication routing table.",
		func() float64 { return float64(b.PRTSize()) })
	reg.GaugeFunc("xbroker_prt_nodes",
		"Nodes in the covering tree.",
		func() float64 { return float64(b.PRTStats().Nodes) })
	reg.GaugeFunc("xbroker_prt_edges",
		"Parent-child (covering) edges in the covering tree.",
		func() float64 { return float64(b.PRTStats().Edges) })
	reg.GaugeFunc("xbroker_prt_super_edges",
		"Super-pointer edges (cross-subtree covering relations) in the covering tree.",
		func() float64 { return float64(b.PRTStats().SuperEdges) })
	reg.GaugeFunc("xbroker_snapshot_epoch",
		"Routing-snapshot epoch: increments each time a control-plane change swaps the publish view.",
		func() float64 { return float64(b.SnapshotEpoch()) })
	if b.durable != nil {
		reg.GaugeFunc("xbroker_durable_subscriptions",
			"Durable named subscriptions registered on this broker.",
			func() float64 { return float64(len(b.snap.Load().durables)) })
	}
	b.nfaBuildSeconds = reg.Histogram("xbroker_nfa_build_seconds",
		"Shared matching-automaton compile time at snapshot publication.",
		metrics.DefBuckets)
	reg.GaugeFunc("xbroker_nfa_states",
		"States in the shared path-matching automaton of the current snapshot.",
		func() float64 { return float64(b.NFAStats().States) })
	reg.GaugeFunc("xbroker_nfa_edges",
		"Transitions (symbol, wildcard, self-loop, and epsilon) in the shared matching automaton.",
		func() float64 { return float64(b.NFAStats().Edges) })
	reg.GaugeFunc("xbroker_nfa_entries",
		"Expressions compiled into the shared matching automaton (PRT last-hop nodes plus client filter entries).",
		func() float64 { return float64(b.NFAStats().Entries) })
	if b.cfg.DisableSharedNFA {
		return
	}
	for slot := 0; slot < pmatch.Slots(b.cfg.Shards); slot++ {
		slot := slot
		name := pmatch.SlotName(slot, b.cfg.Shards)
		reg.GaugeFunc("xbroker_nfa_shard_entries",
			"Expressions compiled into this shard of the sharded matching automaton.",
			func() float64 { return float64(b.shardSlotStatus(slot).Entries) }, "shard", name)
		reg.GaugeFunc("xbroker_nfa_shard_states",
			"States in this shard of the sharded matching automaton.",
			func() float64 { return float64(b.shardSlotStatus(slot).States) }, "shard", name)
		reg.GaugeFunc("xbroker_nfa_shard_epoch",
			"Snapshot epoch at which this shard was last recompiled.",
			func() float64 { return float64(b.shardSlotStatus(slot).Epoch) }, "shard", name)
		reg.GaugeFunc("xbroker_nfa_shard_build_seconds",
			"Duration of this shard's last recompilation.",
			func() float64 { return b.shardSlotStatus(slot).LastBuildSeconds }, "shard", name)
	}
}

// ID returns the broker's identifier.
func (b *Broker) ID() string { return b.cfg.ID }

// AddNeighbor registers a neighbouring broker.
func (b *Broker) AddNeighbor(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.neighbors = append(b.neighbors, id)
	sort.Strings(b.neighbors)
}

// AddClient registers a directly connected client.
func (b *Broker) AddClient(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.clients[id] = true
	b.dirty.clients = true
	if b.clientSubs[id] == nil {
		b.clientSubs[id] = subtree.New()
		b.dirty.markClientSubs(id)
	}
	b.publishSnapshot()
}

// Stats returns a snapshot of the broker's counters. It never blocks on the
// broker lock: counters are atomics.
func (b *Broker) Stats() Stats {
	out := Stats{
		MsgsIn:         make(map[MsgType]int64),
		MsgsOut:        make(map[MsgType]int64),
		Deliveries:     b.stats.deliveries.Load(),
		FalsePositives: b.stats.falsePositives.Load(),
		Mergers:        b.stats.mergers.Load(),
		BadDocuments:   b.stats.badDocs.Load(),
	}
	for t := 1; t < msgTypeCount; t++ {
		if v := b.stats.msgsIn[t].Load(); v != 0 {
			out.MsgsIn[MsgType(t)] = v
		}
		if v := b.stats.msgsOut[t].Load(); v != 0 {
			out.MsgsOut[MsgType(t)] = v
		}
	}
	return out
}

// PRTSize returns the number of subscriptions stored in the PRT. It reads
// the routing snapshot and never blocks on the broker lock.
func (b *Broker) PRTSize() int {
	return b.snap.Load().prt.Size()
}

// SRTSize returns the number of advertisements stored in the SRT. It reads
// the routing snapshot and never blocks on the broker lock.
func (b *Broker) SRTSize() int {
	return len(b.snap.Load().srt)
}

// PRT exposes the subscription tree for experiments and tests. The caller
// must not use it concurrently with message handling.
func (b *Broker) PRT() *subtree.Tree { return b.prt }

// TreeStats describes the covering tree's shape.
type TreeStats struct {
	Nodes      int
	Edges      int // parent-child (covering) edges
	SuperEdges int // cross-subtree covering relations
}

// PRTStats measures the covering tree. It walks the immutable routing
// snapshot, so metric exposition never blocks the control plane.
func (b *Broker) PRTStats() TreeStats {
	n, e, s := b.snap.Load().prt.Stats()
	return TreeStats{Nodes: n, Edges: e, SuperEdges: s}
}

// RouteTables is a JSON-serialisable snapshot of the broker's routing
// state, served by the admin endpoint /debug/routes.
type RouteTables struct {
	Broker         string     `json:"broker"`
	Strategy       string     `json:"strategy"`
	Neighbors      []string   `json:"neighbors"`
	Clients        []string   `json:"clients,omitempty"`
	Advertisements []AdvRoute `json:"advertisements"`
	Subscriptions  []SubRoute `json:"subscriptions"`
}

// AdvRoute is one SRT entry.
type AdvRoute struct {
	ID        string `json:"id"`
	Expr      string `json:"expr"`
	LastHop   string `json:"last_hop"`
	Recursive bool   `json:"recursive,omitempty"`
}

// SubRoute is one PRT entry.
type SubRoute struct {
	XPE         string   `json:"xpe"`
	LastHops    []string `json:"last_hops"`
	ForwardedTo []string `json:"forwarded_to,omitempty"`
	// Parent is the covering parent's expression ("" for top-level nodes).
	Parent string `json:"parent,omitempty"`
	Merger bool   `json:"merger,omitempty"`
}

// Routes snapshots both routing tables under the shared lock.
func (b *Broker) Routes() RouteTables {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := RouteTables{
		Broker:         b.cfg.ID,
		Strategy:       b.cfg.StrategyName(),
		Neighbors:      append([]string(nil), b.neighbors...),
		Clients:        sortedKeys(b.clients),
		Advertisements: make([]AdvRoute, 0, len(b.srt)),
		Subscriptions:  make([]SubRoute, 0, b.prt.Size()),
	}
	for _, e := range b.srt {
		out.Advertisements = append(out.Advertisements, AdvRoute{
			ID:        e.id,
			Expr:      e.adv.String(),
			LastHop:   e.lastHop,
			Recursive: e.adv.IsRecursive(),
		})
	}
	b.prt.Walk(func(n *subtree.Node) {
		sr := SubRoute{XPE: n.XPE.String()}
		if p := n.Parent(); p != nil {
			sr.Parent = p.XPE.String()
		}
		if st := stateOf(n); st != nil {
			sr.LastHops = sortedKeys(st.lastHops)
			sr.ForwardedTo = sortedKeys(st.forwardedTo)
			sr.Merger = st.merger
		}
		out.Subscriptions = append(out.Subscriptions, sr)
	})
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// HandleMessage processes one incoming message from peer `from`. It is safe
// for concurrent use: control messages serialise on the exclusive lock (and
// swap the routing snapshot before releasing it) while publications are
// matched lock-free against the snapshot, in parallel with each other and
// with control changes.
func (b *Broker) HandleMessage(m *Message, from string) {
	if int(m.Type) < msgTypeCount {
		b.stats.msgsIn[m.Type].Add(1)
	}
	switch m.Type {
	case MsgPublish:
		ev := b.handlePublish(m, from)
		// Trace events are recorded outside any routing structure, so the
		// sink may lock freely without entering the broker's hierarchy.
		if ev != nil && b.cfg.TraceSink != nil {
			b.cfg.TraceSink.Record(*ev)
		}
	case MsgAck:
		// Acks ride the data plane: a cursor advance is an atomic max plus
		// a store call, never a snapshot swap.
		b.handleAck(m)
	case MsgAdvertise, MsgUnadvertise, MsgSubscribe, MsgUnsubscribe, MsgResync, MsgSubscribeDurable:
		b.mu.Lock()
		defer b.mu.Unlock()
		switch m.Type {
		case MsgAdvertise:
			b.handleAdvertise(m, from)
		case MsgUnadvertise:
			b.handleUnadvertise(m, from)
		case MsgSubscribe:
			b.handleSubscribe(m, from)
		case MsgUnsubscribe:
			b.handleUnsubscribe(m, from)
		case MsgResync:
			b.handleResync(m, from)
		case MsgSubscribeDurable:
			b.handleSubscribeDurable(m, from)
		}
		// Swap the publish view before the lock drops: the next publication
		// to load the snapshot observes this control change in full.
		b.publishSnapshot()
	}
}

func (b *Broker) emit(to string, m *Message) {
	if int(m.Type) < msgTypeCount {
		b.stats.msgsOut[m.Type].Add(1)
	}
	b.send(to, m)
}
