package broker

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// docSink records every publish a broker emits with a mode-independent
// identity: raw bodies and parsed documents of the same content collapse to
// the same string, so runs that differ only in publication form can be
// compared byte for byte.
type docSink struct {
	mu   sync.Mutex
	sent []string
}

func (s *docSink) send(to string, m *Message) {
	if m.Type != MsgPublish {
		return
	}
	var body string
	switch {
	case len(m.Raw) > 0:
		body = string(m.Raw)
	case m.Doc != nil:
		body = string(m.Doc.Marshal())
	default:
		body = m.Pub.String()
	}
	s.mu.Lock()
	s.sent = append(s.sent, to+"<-"+body)
	s.mu.Unlock()
}

func (s *docSink) lines() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]string(nil), s.sent...)
	sort.Strings(out)
	return out
}

// randomBrokerDoc builds a small random document over the broker test
// alphabet, with k=a|b attributes that the predicate subscriptions from
// randomWorkloadXPE can hit.
func randomBrokerDoc(r *rand.Rand) *xmldoc.Document {
	alpha := []string{"a", "b", "c", "d", "zz"}
	var build func(depth int) *xmldoc.Elem
	build = func(depth int) *xmldoc.Elem {
		e := &xmldoc.Elem{Name: alpha[r.Intn(len(alpha))]}
		if r.Intn(3) == 0 {
			e.Attrs = append(e.Attrs, xmldoc.Attr{Name: "k", Value: alpha[r.Intn(2)]})
		}
		if depth < 4 {
			for i := r.Intn(3); i > 0; i-- {
				e.Children = append(e.Children, build(depth+1))
			}
		}
		return e
	}
	return &xmldoc.Document{Root: build(0)}
}

// streamTestModes enumerates the document-routing configurations whose
// forwarding must be indistinguishable: the streaming matcher over raw
// bytes, the streaming matcher over a parsed tree, decompose-into-paths
// (ablation) for both forms, and the full tree-walk fallback with the
// shared NFA off.
var streamTestModes = []struct {
	name    string
	cfg     Config
	sendRaw bool
}{
	{"stream-raw", Config{}, true},
	{"stream-doc", Config{}, false},
	{"decompose-raw", Config{DisableStreaming: true}, true},
	{"decompose-doc", Config{DisableStreaming: true}, false},
	{"treewalk-doc", Config{DisableSharedNFA: true}, false},
	// Sharded variants (Shards is explicit — the default is GOMAXPROCS,
	// which is 1 on single-core hosts): partitioning the automaton must not
	// change a single forwarded byte, streaming or decomposed, nor may the
	// parallel per-path fan-out.
	{"stream-raw-sharded", Config{Shards: 8}, true},
	{"stream-doc-sharded", Config{Shards: 8}, false},
	{"decompose-raw-sharded", Config{DisableStreaming: true, Shards: 8}, true},
	{"decompose-doc-parallel", Config{DisableStreaming: true, Shards: 8, ParallelMatchPaths: 1}, false},
	{"stream-raw-single", Config{Shards: 1}, true},
}

// TestStreamingRoutesLikeDecomposition is the broker-level differential
// contract for DESIGN.md §5e: the same control sequence and the same
// documents, routed under every mode in streamTestModes, must produce
// identical forwarding, deliveries, and false-positive counts. Raw bodies
// are the Marshal of the corresponding tree, so the docSink identities
// coincide exactly when routing agrees.
func TestStreamingRoutesLikeDecomposition(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			run := func(cfg Config, sendRaw bool) ([]string, Stats) {
				r := rand.New(rand.NewSource(seed))
				s := &docSink{}
				cfg.ID = "b1"
				cfg.UseCovering = true
				b := New(cfg, s.send)
				b.AddNeighbor("n1")
				b.AddNeighbor("n2")
				b.AddClient("c1")
				b.AddClient("c2")
				peers := []string{"n1", "n2", "c1", "c2"}
				var subs []*xpath.XPE
				for i := 0; i < 250; i++ {
					switch op := r.Intn(10); {
					case op < 4: // subscribe
						x := randomWorkloadXPE(r)
						subs = append(subs, x)
						b.HandleMessage(&Message{Type: MsgSubscribe, XPE: x}, peers[r.Intn(len(peers))])
					case op < 5 && len(subs) > 0: // unsubscribe
						b.HandleMessage(&Message{Type: MsgUnsubscribe, XPE: subs[r.Intn(len(subs))]}, peers[r.Intn(len(peers))])
					default: // publish a whole document
						doc := randomBrokerDoc(r)
						m := &Message{Type: MsgPublish}
						if sendRaw {
							m.Raw = doc.Marshal()
						} else {
							m.Doc = doc
						}
						b.HandleMessage(m, "producer")
					}
				}
				return s.lines(), b.Stats()
			}

			var wantLines []string
			var wantStats Stats
			for i, mode := range streamTestModes {
				gotLines, gotStats := run(mode.cfg, mode.sendRaw)
				if i == 0 {
					wantLines, wantStats = gotLines, gotStats
					continue
				}
				if !reflect.DeepEqual(gotLines, wantLines) {
					t.Fatalf("%s forwarding diverged from %s:\nwant: %v\ngot:  %v",
						mode.name, streamTestModes[0].name, wantLines, gotLines)
				}
				if gotStats.Deliveries != wantStats.Deliveries ||
					gotStats.FalsePositives != wantStats.FalsePositives ||
					gotStats.BadDocuments != 0 {
					t.Fatalf("%s stats diverged: want %+v got %+v", mode.name, wantStats, gotStats)
				}
			}
		})
	}
}

// TestStreamingForwardsRawUntouched pins the zero-copy contract: a raw body
// that matches a neighbour subscription is forwarded as the same bytes, not
// re-marshalled or parsed into a Doc.
func TestStreamingForwardsRawUntouched(t *testing.T) {
	var got *Message
	b := New(Config{ID: "b1"}, func(to string, m *Message) {
		if m.Type == MsgPublish && to == "n1" {
			got = m
		}
	})
	b.AddNeighbor("n1")
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: xpath.MustParse("/a//b")}, "n1")
	// Raw form with noise the tree would not round-trip: a comment and
	// single-quoted attributes.
	raw := []byte("<a k='1'><!-- noise --><x><b/></x></a>")
	b.HandleMessage(&Message{Type: MsgPublish, Raw: raw}, "producer")
	if got == nil {
		t.Fatal("matching raw publication was not forwarded")
	}
	if &got.Raw[0] != &raw[0] || got.Doc != nil {
		t.Fatal("raw body must be forwarded as the same bytes, without a parsed tree")
	}
}

// TestStreamingDropsBadRaw pins the failure contract in both the streaming
// and the parse-fallback configurations: malformed raw bodies and bodies
// over the wire document bounds are dropped — never forwarded, even to
// subscriptions that a prefix of the document matches — and counted in
// Stats.BadDocuments.
func TestStreamingDropsBadRaw(t *testing.T) {
	deep := "<a>" + strings.Repeat("<b>", 300) + strings.Repeat("</b>", 300) + "</a>"
	bad := []struct {
		name string
		raw  string
	}{
		{"malformed", "<a><b></a>"},
		{"truncated", "<a><b/>"},
		{"entity", "<a>&bogus;</a>"},
		{"over-depth", deep},
		{"two-roots", "<a/><a/>"},
	}
	for _, disable := range []bool{false, true} {
		name := "streaming"
		if disable {
			name = "fallback"
		}
		t.Run(name, func(t *testing.T) {
			s := &docSink{}
			b := New(Config{ID: "b1", DisableStreaming: disable}, s.send)
			b.AddNeighbor("n1")
			// Every bad body starts with <a>, so a prefix match exists.
			b.HandleMessage(&Message{Type: MsgSubscribe, XPE: xpath.MustParse("/a")}, "n1")
			for _, tc := range bad {
				b.HandleMessage(&Message{Type: MsgPublish, Raw: []byte(tc.raw)}, "producer")
			}
			if lines := s.lines(); len(lines) != 0 {
				t.Fatalf("bad documents were forwarded: %v", lines)
			}
			if st := b.Stats(); st.BadDocuments != int64(len(bad)) {
				t.Fatalf("BadDocuments = %d, want %d", st.BadDocuments, len(bad))
			}
			// A good document afterwards still routes.
			b.HandleMessage(&Message{Type: MsgPublish, Raw: []byte("<a/>")}, "producer")
			if lines := s.lines(); len(lines) != 1 {
				t.Fatalf("good document after bad ones: %v", lines)
			}
		})
	}
}
