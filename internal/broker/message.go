// Package broker implements the content-based XML router at the heart of the
// dissemination network: the subscription routing table (SRT, advertisements
// with their last hops), the publication routing table (PRT, a covering-
// ordered subscription tree with per-subscription last hops), and the
// handlers for the five protocol message types. The broker is transport-
// agnostic: a discrete-event simulator (package sim) and a TCP transport
// (package transport) both drive it through HandleMessage and an injected
// send function.
package broker

import (
	"fmt"
	"time"

	"repro/internal/advert"
	"repro/internal/trace"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// MsgType enumerates the protocol messages.
type MsgType uint8

const (
	// MsgAdvertise floods a producer advertisement through the overlay.
	MsgAdvertise MsgType = iota + 1
	// MsgUnadvertise withdraws an advertisement.
	MsgUnadvertise
	// MsgSubscribe registers an XPath subscription.
	MsgSubscribe
	// MsgUnsubscribe withdraws a subscription.
	MsgUnsubscribe
	// MsgPublish carries one publication (a root-to-leaf document path).
	MsgPublish
	// MsgResync carries one broker's full owed control state to a healed
	// neighbour (see Broker.ResyncFor): the advertisements it would have
	// flooded there and the subscriptions it has forwarded there. The
	// receiver applies it as a diff — missing entries are added, entries
	// attributed to the sender but absent from the message are withdrawn —
	// so a disconnect/reconnect cycle converges to the exact routing state
	// of a fault-free run.
	MsgResync
	// MsgHeartbeat is a transport-level liveness probe. The TCP transport
	// exchanges heartbeats on idle broker links for dead-peer detection and
	// consumes them before broker dispatch; brokers never see one.
	MsgHeartbeat
	// MsgSubscribeDurable registers a durable named subscription (Durable
	// carries the name, XPE the expression). The edge broker assigns every
	// matched publication a per-name sequence number, appends it to the
	// write-ahead publication log, and replays the unacknowledged gap when
	// the named subscription reattaches — see DESIGN.md §5i.
	MsgSubscribeDurable
	// MsgAck advances a durable subscription's acknowledged cursor: the
	// client has processed every sequence up to and including Seq.
	MsgAck
	// MsgReplayBegin brackets the start of a reattach replay on a client
	// link; Seq is the first sequence the replay covers (acked cursor + 1).
	MsgReplayBegin
	// MsgReplayEnd closes a replay; Seq is the highest sequence assigned at
	// replay time. Deliveries after it are live.
	MsgReplayEnd
)

// String returns the wire name of the message type.
func (t MsgType) String() string {
	switch t {
	case MsgAdvertise:
		return "advertise"
	case MsgUnadvertise:
		return "unadvertise"
	case MsgSubscribe:
		return "subscribe"
	case MsgUnsubscribe:
		return "unsubscribe"
	case MsgPublish:
		return "publish"
	case MsgResync:
		return "resync"
	case MsgHeartbeat:
		return "heartbeat"
	case MsgSubscribeDurable:
		return "subscribe-durable"
	case MsgAck:
		return "ack"
	case MsgReplayBegin:
		return "replay-begin"
	case MsgReplayEnd:
		return "replay-end"
	default:
		return fmt.Sprintf("msgtype(%d)", uint8(t))
	}
}

// Message is the unit exchanged between peers (brokers and clients).
type Message struct {
	Type MsgType

	// AdvID identifies an advertisement network-wide (advertise,
	// unadvertise). Advertisements are flooded; the ID deduplicates.
	AdvID string
	// Adv is the advertisement payload (advertise).
	Adv *advert.Advertisement

	// XPE is the subscription payload (subscribe, unsubscribe).
	XPE *xpath.XPE

	// Resync is the control-state payload of a resync message.
	Resync *ResyncState

	// Pub is the publication payload (publish). Routing is per path: either
	// Pub carries a single root-to-leaf path, or Doc carries a whole
	// document whose paths are all matched at each hop (publishers submit
	// entire documents; path decomposition is transparent to them).
	Pub xmldoc.Publication
	// Doc, when non-nil, is a whole-document publication.
	Doc *xmldoc.Document
	// Raw, when non-empty, is a whole-document publication as raw XML
	// bytes: the broker routes it with the streaming matcher in one pass
	// over the bytes — never parsing it into a tree — and forwards the
	// bytes untouched. Exactly one of Raw and Doc may be set. A raw body
	// that fails the scan (malformed XML or wire document bounds) is
	// dropped and counted in Stats.BadDocuments.
	Raw []byte

	// Durable names a durable subscription (subscribe-durable, ack,
	// replay-begin/end) and stamps durable deliveries: a publication
	// emitted to a durable subscriber carries the name and its assigned
	// sequence so the client can acknowledge it. Empty everywhere else.
	Durable string
	// Seq is the durable sequence number paired with Durable: the
	// delivery's assigned sequence, the cursor of an ack, the first
	// sequence of a replay (begin), or the last assigned sequence (end).
	Seq uint64

	// Stamp is the publication's emission time in nanoseconds on the
	// transport's clock (virtual for the simulator, wall for TCP); clients
	// compute notification delay from it.
	Stamp int64

	// TraceID, when non-empty, opts this publication into per-hop tracing:
	// every broker it crosses appends itself to Hops and records a trace
	// event (see package trace). Empty for untraced traffic — the hot path
	// then pays only a string comparison.
	TraceID string
	// Hops is the broker path the publication has taken so far, carried in
	// the frame so any single hop (and the final subscriber) can see the
	// full upstream path. Brokers never mutate a received hop list; they
	// forward an appended copy.
	Hops []trace.Hop

	// Receive-side span metadata, set by the local transport before the
	// publication reaches the broker. Unexported on purpose: gob skips
	// unexported fields, so the values are process-local and reset on every
	// wire crossing — a peer can neither see nor forge them.
	arrivalDecode   time.Duration // wire read + decode time of this frame
	arrivalEnqueued time.Time     // when the frame entered the matching queue
}

// SetArrival records the receive-side timings of a publication: how long
// the transport spent reading and decoding the frame, and when it was
// handed to the matching queue. The broker folds both into the publication's
// stage spans (decode and queue). The zero time disables the queue span.
func (m *Message) SetArrival(decode time.Duration, enqueued time.Time) {
	m.arrivalDecode = decode
	m.arrivalEnqueued = enqueued
}

// Arrival returns the receive-side timings recorded by SetArrival.
func (m *Message) Arrival() (decode time.Duration, enqueued time.Time) {
	return m.arrivalDecode, m.arrivalEnqueued
}

// String renders a short description for logs.
func (m *Message) String() string {
	switch m.Type {
	case MsgAdvertise, MsgUnadvertise:
		return fmt.Sprintf("%s %s", m.Type, m.AdvID)
	case MsgSubscribe, MsgUnsubscribe:
		return fmt.Sprintf("%s %s", m.Type, m.XPE)
	case MsgPublish:
		if len(m.Raw) > 0 {
			return fmt.Sprintf("%s raw-doc %dB", m.Type, len(m.Raw))
		}
		return fmt.Sprintf("%s %s", m.Type, m.Pub)
	case MsgResync:
		if m.Resync != nil {
			return fmt.Sprintf("%s advs=%d subs=%d", m.Type, len(m.Resync.Advs), len(m.Resync.Subs))
		}
		return m.Type.String()
	case MsgSubscribeDurable:
		return fmt.Sprintf("%s %s %s", m.Type, m.Durable, m.XPE)
	case MsgAck, MsgReplayBegin, MsgReplayEnd:
		return fmt.Sprintf("%s %s seq=%d", m.Type, m.Durable, m.Seq)
	default:
		return m.Type.String()
	}
}
