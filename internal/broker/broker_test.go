package broker

import (
	"testing"

	"repro/internal/advert"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// capture collects a broker's outgoing messages.
type capture struct {
	sent []struct {
		to  string
		msg *Message
	}
}

func (c *capture) send(to string, m *Message) {
	c.sent = append(c.sent, struct {
		to  string
		msg *Message
	}{to, m})
}

func (c *capture) count(t MsgType) int {
	n := 0
	for _, s := range c.sent {
		if s.msg.Type == t {
			n++
		}
	}
	return n
}

func newTestBroker(cfg Config) (*Broker, *capture) {
	cap := &capture{}
	cfg.ID = "b1"
	b := New(cfg, cap.send)
	return b, cap
}

func adv(id, s string) *Message {
	return &Message{Type: MsgAdvertise, AdvID: id, Adv: advert.MustParse(s)}
}

func sub(s string) *Message {
	return &Message{Type: MsgSubscribe, XPE: xpath.MustParse(s)}
}

func TestAdvertiseFloodAndDedup(t *testing.T) {
	b, cap := newTestBroker(Config{UseAdvertisements: true})
	b.AddNeighbor("b2")
	b.AddNeighbor("b3")
	b.HandleMessage(adv("a1", "/x/y"), "b2")
	if got := cap.count(MsgAdvertise); got != 1 {
		t.Fatalf("flooded %d advertise messages, want 1 (to b3 only)", got)
	}
	if cap.sent[0].to != "b3" {
		t.Errorf("flooded to %s", cap.sent[0].to)
	}
	// Flooding duplicate is dropped.
	b.HandleMessage(adv("a1", "/x/y"), "b3")
	if got := cap.count(MsgAdvertise); got != 1 {
		t.Errorf("duplicate advertisement reflooded")
	}
	if b.SRTSize() != 1 {
		t.Errorf("SRT = %d", b.SRTSize())
	}
}

func TestAdvertisementCoveringSameHopOnly(t *testing.T) {
	b, _ := newTestBroker(Config{UseAdvertisements: true, UseCovering: true})
	b.AddNeighbor("b2")
	b.AddNeighbor("b3")
	b.HandleMessage(adv("a1", "/x/*"), "b2")
	// Covered, same last hop: absorbed.
	b.HandleMessage(adv("a2", "/x/y"), "b2")
	if b.SRTSize() != 1 {
		t.Errorf("SRT = %d, want 1 (covered advertisement absorbed)", b.SRTSize())
	}
	// Covered but different last hop: must be kept, it leads elsewhere.
	b.HandleMessage(adv("a3", "/x/y"), "b3")
	if b.SRTSize() != 2 {
		t.Errorf("SRT = %d, want 2 (different producers)", b.SRTSize())
	}
}

func TestUnadvertise(t *testing.T) {
	b, cap := newTestBroker(Config{UseAdvertisements: true})
	b.AddNeighbor("b2")
	b.AddNeighbor("b3")
	b.HandleMessage(adv("a1", "/x/y"), "b2")
	b.HandleMessage(&Message{Type: MsgUnadvertise, AdvID: "a1"}, "b2")
	if b.SRTSize() != 0 {
		t.Errorf("SRT = %d after unadvertise", b.SRTSize())
	}
	if got := cap.count(MsgUnadvertise); got != 1 {
		t.Errorf("unadvertise flooded %d times, want 1", got)
	}
	// Unknown unadvertise is ignored.
	b.HandleMessage(&Message{Type: MsgUnadvertise, AdvID: "zz"}, "b2")
}

func TestSubscribeRoutesTowardMatchingAdvertisementsOnly(t *testing.T) {
	b, cap := newTestBroker(Config{UseAdvertisements: true})
	b.AddNeighbor("b2")
	b.AddNeighbor("b3")
	b.HandleMessage(adv("a1", "/stock/quote"), "b2")
	b.HandleMessage(adv("a2", "/weather/report"), "b3")
	b.AddClient("c1")
	b.HandleMessage(sub("/stock"), "c1")
	if got := cap.count(MsgSubscribe); got != 1 {
		t.Fatalf("forwarded %d subscribes, want 1", got)
	}
	last := cap.sent[len(cap.sent)-1]
	if last.to != "b2" {
		t.Errorf("subscription routed to %s, want b2", last.to)
	}
}

func TestSubscribeNotSentBackToOrigin(t *testing.T) {
	b, cap := newTestBroker(Config{UseAdvertisements: true})
	b.AddNeighbor("b2")
	b.HandleMessage(adv("a1", "/stock/quote"), "b2")
	before := cap.count(MsgSubscribe)
	b.HandleMessage(sub("/stock"), "b2")
	if got := cap.count(MsgSubscribe) - before; got != 0 {
		t.Errorf("subscription sent back toward its origin %d times", got)
	}
}

func TestPublishDeliveryAndStats(t *testing.T) {
	b, cap := newTestBroker(Config{})
	b.AddClient("c1")
	b.HandleMessage(sub("/a/b"), "c1")
	b.HandleMessage(&Message{Type: MsgPublish, Pub: xmldoc.Publication{Path: []string{"a", "b", "c"}}}, "b2")
	if got := cap.count(MsgPublish); got != 1 {
		t.Fatalf("published %d, want 1", got)
	}
	st := b.Stats()
	if st.Deliveries != 1 {
		t.Errorf("Deliveries = %d", st.Deliveries)
	}
	if st.MsgsIn[MsgPublish] != 1 || st.MsgsIn[MsgSubscribe] != 1 {
		t.Errorf("MsgsIn = %v", st.MsgsIn)
	}
	if st.MsgsOut[MsgPublish] != 1 {
		t.Errorf("MsgsOut = %v", st.MsgsOut)
	}
}

func TestPublishNotSentBackToSource(t *testing.T) {
	b, cap := newTestBroker(Config{})
	b.AddNeighbor("b2")
	b.HandleMessage(sub("/a"), "b2")
	b.HandleMessage(&Message{Type: MsgPublish, Pub: xmldoc.Publication{Path: []string{"a", "b"}}}, "b2")
	if got := cap.count(MsgPublish); got != 0 {
		t.Errorf("publication reflected to its source %d times", got)
	}
}

func TestDuplicateSubscriptionNotReforwarded(t *testing.T) {
	b, cap := newTestBroker(Config{UseAdvertisements: true})
	b.AddNeighbor("b2")
	b.HandleMessage(adv("a1", "/a/b"), "b2")
	b.AddClient("c1")
	b.AddClient("c2")
	b.HandleMessage(sub("/a"), "c1")
	first := cap.count(MsgSubscribe)
	b.HandleMessage(sub("/a"), "c2")
	if got := cap.count(MsgSubscribe); got != first {
		t.Errorf("duplicate subscription reforwarded")
	}
	// Both clients receive matching publications.
	b.HandleMessage(&Message{Type: MsgPublish, Pub: xmldoc.Publication{Path: []string{"a", "b"}}}, "b2")
	if got := b.Stats().Deliveries; got != 2 {
		t.Errorf("deliveries = %d, want 2", got)
	}
}

func TestUnsubscribeKeepsSharedSubscription(t *testing.T) {
	b, _ := newTestBroker(Config{})
	b.AddClient("c1")
	b.AddClient("c2")
	b.HandleMessage(sub("/a"), "c1")
	b.HandleMessage(sub("/a"), "c2")
	b.HandleMessage(&Message{Type: MsgUnsubscribe, XPE: xpath.MustParse("/a")}, "c1")
	if b.PRTSize() != 1 {
		t.Fatalf("PRT = %d, want 1 (c2 still subscribed)", b.PRTSize())
	}
	b.HandleMessage(&Message{Type: MsgPublish, Pub: xmldoc.Publication{Path: []string{"a"}}}, "b2")
	if got := b.Stats().Deliveries; got != 1 {
		t.Errorf("deliveries = %d, want 1 (only c2)", got)
	}
}

func unsubM(s string) *Message {
	return &Message{Type: MsgUnsubscribe, XPE: xpath.MustParse(s)}
}

// sentTo lists the expressions of messages of one type sent to one peer.
func (c *capture) sentTo(peer string, t MsgType) []string {
	var out []string
	for _, s := range c.sent {
		if s.to == peer && s.msg.Type == t && s.msg.XPE != nil {
			out = append(out, s.msg.XPE.String())
		}
	}
	return out
}

// A subscription quenched by a coverer must be promoted (re-forwarded) when
// that coverer is unsubscribed — even when the coverer has meanwhile been
// adopted under a broader subscription in the covering tree. Here /*
// arrived from the neighbour itself and was never forwarded anywhere, so it
// cannot serve the quenched child; skipping the promotion because /*/sec
// sat below /* black-holed the child subscription (found by the chaos
// equivalence test).
func TestUncoveringPromotesNestedCoveredSubscription(t *testing.T) {
	b, cap := newTestBroker(Config{UseCovering: true})
	b.AddNeighbor("n")
	b.AddClient("c")

	b.HandleMessage(sub("/*/sec"), "c")
	if got := cap.sentTo("n", MsgSubscribe); len(got) != 1 || got[0] != "/*/sec" {
		t.Fatalf("after /*/sec: forwarded %v, want [/*/sec]", got)
	}
	// Covered by /*/sec at hop n: quenched.
	b.HandleMessage(sub("/root/sec//*/par/*"), "c")
	if got := cap.sentTo("n", MsgSubscribe); len(got) != 1 {
		t.Fatalf("covered subscription should be quenched, forwarded %v", got)
	}
	// /* adopts /*/sec as a covering-tree child; it arrives from n, so it
	// is never forwarded and serves no hop.
	b.HandleMessage(sub("/*"), "n")

	b.HandleMessage(unsubM("/*/sec"), "c")
	if got := cap.sentTo("n", MsgUnsubscribe); len(got) != 1 || got[0] != "/*/sec" {
		t.Fatalf("withdrawal not propagated: %v", got)
	}
	if got := cap.sentTo("n", MsgSubscribe); len(got) != 2 || got[1] != "/root/sec//*/par/*" {
		t.Fatalf("quenched subscription not promoted on uncovering, forwarded %v", got)
	}
}

// When an unsubscribe leaves a subscription's only remaining interest
// direction equal to a hop it was forwarded to, that forward no longer
// serves anyone — the hop must receive a withdrawal, or it keeps a phantom
// entry pointing back here forever (found by the chaos equivalence test:
// the unsubscribe was lost to a crash and the resynced tables kept the
// phantom).
func TestUnsubscribeWithdrawsVacuousForward(t *testing.T) {
	b, cap := newTestBroker(Config{})
	b.AddNeighbor("n1")
	b.AddNeighbor("n2")
	b.AddNeighbor("n3")

	b.HandleMessage(sub("/root"), "n1") // forwarded to n2, n3
	b.HandleMessage(sub("/root"), "n2") // new direction: forwarded to n1
	if got := cap.count(MsgSubscribe); got != 3 {
		t.Fatalf("forwarded %d subscribes, want 3", got)
	}

	cap.sent = nil
	b.HandleMessage(unsubM("/root"), "n1")
	// n2 is now the only interested direction; the forward to n2 is vacuous
	// and must be withdrawn. n1 and n3 still serve n2's interest.
	if got := cap.sentTo("n2", MsgUnsubscribe); len(got) != 1 || got[0] != "/root" {
		t.Fatalf("vacuous forward to n2 not withdrawn: %v", got)
	}
	if got := cap.count(MsgUnsubscribe); got != 1 {
		t.Fatalf("emitted %d unsubscribes, want 1 (n2 only)", got)
	}
	// The entry itself must survive: n2's subscriber still needs delivery.
	for _, sr := range b.Routes().Subscriptions {
		if sr.XPE == "/root" {
			if len(sr.LastHops) != 1 || sr.LastHops[0] != "n2" {
				t.Fatalf("last hops = %v, want [n2]", sr.LastHops)
			}
			return
		}
	}
	t.Fatal("/root entry removed entirely")
}
