package broker

import (
	"testing"

	"repro/internal/advert"
	"repro/internal/dtd"
	"repro/internal/merge"
	"repro/internal/xpath"
)

// TestMergePassNetworkOperations verifies the message-level protocol of a
// merge pass: the sources are withdrawn from the hops they were forwarded
// to and the merger is subscribed instead, carrying the union of last hops.
func TestMergePassNetworkOperations(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT r (s)>
<!ELEMENT s (x | y | z)>
<!ELEMENT x (#PCDATA)>
<!ELEMENT y (#PCDATA)>
<!ELEMENT z (#PCDATA)>
`)
	advs, err := advert.Generate(d)
	if err != nil {
		t.Fatal(err)
	}
	est := merge.NewDegreeEstimator(advs, 10, 100)

	b, cap := newTestBroker(Config{
		UseAdvertisements: true,
		UseCovering:       true,
		Merging:           MergePerfect,
		Estimator:         est,
		MergeEvery:        3,
	})
	b.AddNeighbor("up")
	for i, a := range advs {
		b.HandleMessage(&Message{Type: MsgAdvertise, AdvID: string(rune('a' + i)), Adv: a}, "up")
	}
	b.AddClient("c1")
	b.AddClient("c2")

	// All three siblings of s: a perfect merger /r/s/*.
	b.HandleMessage(sub("/r/s/x"), "c1")
	b.HandleMessage(sub("/r/s/y"), "c2")
	b.HandleMessage(sub("/r/s/z"), "c1") // third insert triggers the pass

	if got := b.Stats().Mergers; got != 1 {
		t.Fatalf("mergers = %d, want 1", got)
	}
	merged := xpath.MustParse("/r/s/*")
	node := b.PRT().Lookup(merged)
	if node == nil {
		t.Fatalf("merger not in PRT:\n%s", b.PRT())
	}
	st := stateOf(node)
	if !st.lastHops["c1"] || !st.lastHops["c2"] {
		t.Errorf("merger lastHops = %v, want union of sources'", st.lastHops)
	}
	// Wire protocol: three subscribes up, then three unsubscribes for the
	// sources and one subscribe for the merger.
	var unsubs, mergerSubs int
	for _, sent := range cap.sent {
		switch sent.msg.Type {
		case MsgUnsubscribe:
			unsubs++
		case MsgSubscribe:
			if sent.msg.XPE.Equal(merged) {
				mergerSubs++
			}
		}
	}
	if unsubs != 3 {
		t.Errorf("unsubscribes = %d, want 3", unsubs)
	}
	if mergerSubs != 1 {
		t.Errorf("merger subscribes = %d, want 1", mergerSubs)
	}
	// The sources are gone from the PRT; the merger remains.
	if b.PRTSize() != 1 {
		t.Errorf("PRT size = %d, want 1:\n%s", b.PRTSize(), b.PRT())
	}
}

// TestImperfectMergeGate: with a zero tolerance an imperfect candidate stays
// unmerged; raising the tolerance merges it.
func TestImperfectMergeGate(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT r (s)>
<!ELEMENT s (x | y | z)>
<!ELEMENT x (#PCDATA)>
<!ELEMENT y (#PCDATA)>
<!ELEMENT z (#PCDATA)>
`)
	advs, err := advert.Generate(d)
	if err != nil {
		t.Fatal(err)
	}
	est := merge.NewDegreeEstimator(advs, 10, 100)

	for _, tc := range []struct {
		degree float64
		want   int64
	}{{0, 0}, {0.5, 1}} {
		b, _ := newTestBroker(Config{
			UseCovering:     true,
			Merging:         MergeImperfect,
			ImperfectDegree: tc.degree,
			Estimator:       est,
			MergeEvery:      2,
		})
		b.AddClient("c1")
		// Two of three siblings: degree 1/3.
		b.HandleMessage(sub("/r/s/x"), "c1")
		b.HandleMessage(sub("/r/s/y"), "c1")
		if got := b.Stats().Mergers; got != tc.want {
			t.Errorf("degree %.1f: mergers = %d, want %d", tc.degree, got, tc.want)
		}
	}
}
