package broker

import (
	"sync"
	"time"

	"repro/internal/pmatch"
	"repro/internal/subtree"
	"repro/internal/symtab"
	"repro/internal/xpath"
)

// routeSnapshot is the immutable routing state the publish data plane reads.
// The control plane mutates the broker's master tables under the exclusive
// lock and, before releasing it, publishes a fresh snapshot through an
// atomic pointer; Publish loads the pointer once and matches against a
// consistent view without acquiring any mutex. Components a control change
// did not touch are aliased from the previous snapshot — every component is
// immutable once published, so aliasing is free and a snapshot swap costs
// only the copies for what actually changed (copy-on-write).
//
// Snapshot PRT nodes carry the publish-plane projection of the routing
// state: Node.Data holds the subscription's sorted last-hop list ([]string,
// nil for stateless nodes) instead of the control plane's mutable *subState,
// so matching iterates a slice instead of a map and never sees a map the
// control plane might be writing.
type routeSnapshot struct {
	// epoch increments on every swap; 0 is the empty snapshot a new broker
	// starts with. Metrics expose it and traced publications record the
	// epoch they matched under. The epoch moves on EVERY effective control
	// change, even one that recompiled a single shard; shardMeta records per
	// shard which epoch last recompiled it (DESIGN.md §5g).
	epoch uint64
	// prt is a deep copy of the subscription tree (see subtree.CloneWithData).
	prt *subtree.Tree
	// clients is the client-peer set.
	clients map[string]bool
	// clientSubs holds each client's original subscriptions for the edge
	// delivery filter.
	clientSubs map[string]*subtree.Tree
	// srt is the advertisement table view (entries are immutable after
	// insertion; the slice is copied on change).
	srt []*advEntry
	// durables maps durable virtual-client keys (durKey(name)) to their
	// durable-subscription states. The states are shared with the master
	// map — each carries its own lock/atomics for the publish plane — so
	// the snapshot copy is pointer-shallow. Empty (never nil) without
	// durable subscriptions, keeping the publish filter pass to one map
	// length check.
	durables map[string]*durState
	// auto is the sharded path-matching automaton compiled from this
	// snapshot's PRT (payload: sorted last-hop slices) and per-client filter
	// trees (payload: clientMatch keys), partitioned by root symbol
	// (pmatch.ShardIndex). handlePublish runs the shard(s) a path can hit
	// instead of walking every subscription-tree node; a control change
	// recompiles only the shard(s) its expression lives in, aliasing the
	// other slots from the previous snapshot. Nil when the broker disables
	// the shared NFA (Config.DisableSharedNFA) or before any subscription
	// arrives with the empty snapshot — the publish path then falls back to
	// the covering tree walk.
	auto *pmatch.ShardedAutomaton
	// shardMeta parallels auto's slots: when and how expensively each shard
	// was last recompiled. Aliased slots keep their previous meta.
	shardMeta []shardMeta
}

// shardMeta records one shard's last recompilation for /statusz and the
// per-shard metrics.
type shardMeta struct {
	epoch        uint64  // snapshot epoch of the last rebuild of this shard
	buildSeconds float64 // duration of that rebuild
}

// clientMatch is the automaton payload type of a per-client filter-tree
// entry: the client's peer ID. Distinguished from PRT payloads ([]string
// last-hop slices) by type in handlePublish's single type switch.
type clientMatch string

// emptySnapshot is what a new broker publishes before any control traffic.
func emptySnapshot() *routeSnapshot {
	return &routeSnapshot{
		prt:        subtree.New(),
		clients:    map[string]bool{},
		clientSubs: map[string]*subtree.Tree{},
		durables:   map[string]*durState{},
	}
}

// snapDirty records which master tables a control message touched, so
// publishSnapshot copies only those — and which matching shards the
// change's expressions live in, so only those shards recompile.
type snapDirty struct {
	prt        bool
	srt        bool
	clients    bool
	durables   bool
	clientSubs map[string]bool // per-client filter trees
	// shards are the slots whose entry sets may have changed; shardsAll is
	// the conservative everything-changed mark (merge passes, resync).
	shards    map[int]bool
	shardsAll bool
}

func (d *snapDirty) markClientSubs(id string) {
	if d.clientSubs == nil {
		d.clientSubs = make(map[string]bool)
	}
	d.clientSubs[id] = true
}

func (d *snapDirty) markShard(slot int) {
	if d.shards == nil {
		d.shards = make(map[int]bool)
	}
	d.shards[slot] = true
}

func (d *snapDirty) any() bool {
	return d.prt || d.srt || d.clients || d.durables || len(d.clientSubs) > 0
}

// markShard records that a control change touched the matching entries of
// x's shard, so publishSnapshot recompiles only that slot. Handlers must
// call it whenever they change WHICH expressions carry routing state or a
// stateful expression's hop payload; structural-only changes (covering
// links, forwardedTo bookkeeping) don't move entries between shards and
// need no mark. Must run with b.mu held.
func (b *Broker) markShard(x *xpath.XPE) {
	b.dirty.markShard(pmatch.ShardIndex(x, b.cfg.Shards))
}

// publishSnapshot swaps in a new immutable snapshot reflecting the master
// tables. It must run with b.mu held exclusively (it reads the mutable
// tables) and is a no-op when the preceding handler changed nothing.
func (b *Broker) publishSnapshot() {
	if !b.dirty.any() {
		return
	}
	old := b.snap.Load()
	next := &routeSnapshot{
		epoch:      old.epoch + 1,
		prt:        old.prt,
		clients:    old.clients,
		clientSubs: old.clientSubs,
		srt:        old.srt,
		durables:   old.durables,
		auto:       old.auto,
		shardMeta:  old.shardMeta,
	}
	if b.dirty.prt {
		next.prt = b.prt.CloneWithData(snapshotHops)
	}
	if b.dirty.srt {
		next.srt = append([]*advEntry(nil), b.srt...)
	}
	if b.dirty.clients {
		clients := make(map[string]bool, len(b.clients))
		for id := range b.clients {
			clients[id] = true
		}
		next.clients = clients
	}
	if b.dirty.durables {
		durables := make(map[string]*durState, len(b.durables))
		for name, d := range b.durables {
			durables[durKey(name)] = d
		}
		next.durables = durables
	}
	if len(b.dirty.clientSubs) > 0 {
		subs := make(map[string]*subtree.Tree, len(b.clientSubs))
		for id, t := range old.clientSubs {
			subs[id] = t
		}
		for id := range b.dirty.clientSubs {
			if t := b.clientSubs[id]; t != nil {
				subs[id] = t.CloneWithData(nil)
			} else {
				delete(subs, id)
			}
		}
		next.clientSubs = subs
	}
	// Recompile only the marked matching shards; control messages touching
	// no entry (e.g. a pure client registration or an advertisement) alias
	// the previous automaton like any other snapshot component.
	if !b.cfg.DisableSharedNFA && (b.dirty.shardsAll || len(b.dirty.shards) > 0) {
		var start time.Time
		if b.nfaBuildSeconds != nil {
			start = time.Now()
		}
		b.rebuildShards(next, old)
		if b.nfaBuildSeconds != nil {
			b.nfaBuildSeconds.Observe(time.Since(start).Seconds())
		}
	}
	b.dirty = snapDirty{}
	b.snap.Store(next)
}

// rebuildShards compiles the dirty slots of the sharded automaton from the
// new snapshot's (immutable) PRT and client filter trees, aliasing every
// clean slot's automaton from the previous snapshot. One walk of the tables
// buckets the dirty slots' expressions; slots then build independently — on
// parallel goroutines when more than one is dirty, each with its own
// pmatch.Builder (the Builder's concurrency guard enforces that isolation).
func (b *Broker) rebuildShards(next, old *routeSnapshot) {
	n := b.cfg.Shards
	nslots := pmatch.Slots(n)
	dirty := make([]bool, nslots)
	if old.auto == nil || b.dirty.shardsAll {
		for i := range dirty {
			dirty[i] = true
		}
	} else {
		for slot := range b.dirty.shards {
			if slot >= 0 && slot < nslots {
				dirty[slot] = true
			}
		}
	}

	type pair struct {
		x    *xpath.XPE
		data any
	}
	buckets := make([][]pair, nslots)
	addTo := func(x *xpath.XPE, data any) {
		if slot := pmatch.ShardIndex(x, n); dirty[slot] {
			buckets[slot] = append(buckets[slot], pair{x, data})
		}
	}
	next.prt.Walk(func(nd *subtree.Node) {
		if hops := snapshotNodeHops(nd); len(hops) > 0 {
			addTo(nd.XPE, hops)
		}
	})
	for id, t := range next.clientSubs {
		key := clientMatch(id)
		t.Walk(func(nd *subtree.Node) { addTo(nd.XPE, key) })
	}

	autos := make([]*pmatch.Automaton, nslots)
	meta := make([]shardMeta, nslots)
	var todo []int
	for slot := 0; slot < nslots; slot++ {
		if dirty[slot] {
			todo = append(todo, slot)
		} else {
			autos[slot] = old.auto.Slot(slot)
			meta[slot] = old.shardMeta[slot]
		}
	}
	build := func(slot int) {
		start := time.Now()
		bld := pmatch.NewBuilder()
		for _, p := range buckets[slot] {
			bld.Add(p.x, p.data)
		}
		autos[slot] = bld.Build()
		meta[slot] = shardMeta{epoch: next.epoch, buildSeconds: time.Since(start).Seconds()}
	}
	if len(todo) > 1 {
		var wg sync.WaitGroup
		for _, slot := range todo {
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				build(slot)
			}(slot)
		}
		wg.Wait()
	} else {
		for _, slot := range todo {
			build(slot)
		}
	}
	next.auto = pmatch.NewSharded(n, autos)
	next.shardMeta = meta
}

// snapshotHops projects a PRT node's routing state into the snapshot form:
// the sorted last-hop slice, or nil for nodes without state.
func snapshotHops(n *subtree.Node) any {
	st := stateOf(n)
	if st == nil || len(st.lastHops) == 0 {
		return nil
	}
	return sortedKeys(st.lastHops)
}

// snapshotNodeHops reads the last-hop list of a snapshot PRT node.
func snapshotNodeHops(n *subtree.Node) []string {
	hops, _ := n.Data.([]string)
	return hops
}

// matchesClient evaluates the edge delivery filter against the snapshot's
// per-client subscription trees.
func (s *routeSnapshot) matchesClient(client string, paths [][]symtab.Sym, attrs [][]map[string]string) bool {
	tree := s.clientSubs[client]
	if tree == nil {
		return false
	}
	for i, path := range paths {
		if tree.MatchSymPathAnyAttrs(path, attrs[i]) {
			return true
		}
	}
	return false
}

// SnapshotEpoch returns the current routing-snapshot epoch without taking
// any lock. The epoch increments exactly when a control-plane change swaps
// the publish view; a run of publications observing one epoch matched one
// consistent routing table.
func (b *Broker) SnapshotEpoch() uint64 {
	return b.snap.Load().epoch
}

// NFAStats measures the current snapshot's shared matching automaton,
// summed across shards (zeroes when it is absent). Lock-free, like every
// snapshot reader.
func (b *Broker) NFAStats() pmatch.Stats {
	if a := b.snap.Load().auto; a != nil {
		return a.Stats()
	}
	return pmatch.Stats{}
}

// ShardStatus describes one slot of the current snapshot's sharded
// automaton for /statusz and cmd/xtop.
type ShardStatus struct {
	// Shard is the slot's name: "0".."N-1" for anchored shards, "wild" for
	// the slot every publication consults.
	Shard string `json:"shard"`
	// Entries and States size the slot's automaton.
	Entries int `json:"entries"`
	States  int `json:"states"`
	// Epoch is the snapshot epoch at which this shard was last recompiled
	// (it lags the broker's snapshot epoch while the shard is aliased).
	Epoch uint64 `json:"epoch"`
	// LastBuildSeconds is the duration of that recompilation.
	LastBuildSeconds float64 `json:"last_build_seconds"`
}

// ShardStatus reports the per-shard state of the current snapshot's
// matching automaton, in slot order (nil when the automaton is absent).
// Lock-free, like every snapshot reader.
func (b *Broker) ShardStatus() []ShardStatus {
	snap := b.snap.Load()
	if snap.auto == nil {
		return nil
	}
	out := make([]ShardStatus, snap.auto.SlotCount())
	for i := range out {
		slot := snap.auto.Slot(i)
		out[i] = ShardStatus{
			Shard:   pmatch.SlotName(i, snap.auto.N()),
			Entries: slot.NumEntries(),
			States:  slot.NumStates(),
		}
		if i < len(snap.shardMeta) {
			out[i].Epoch = snap.shardMeta[i].epoch
			out[i].LastBuildSeconds = snap.shardMeta[i].buildSeconds
		}
	}
	return out
}

// shardSlotStatus reads one slot's status from the current snapshot (zero
// value when absent) — the per-shard metrics gauges poll it.
func (b *Broker) shardSlotStatus(slot int) ShardStatus {
	snap := b.snap.Load()
	if snap.auto == nil || slot >= snap.auto.SlotCount() {
		return ShardStatus{}
	}
	a := snap.auto.Slot(slot)
	st := ShardStatus{Entries: a.NumEntries(), States: a.NumStates()}
	if slot < len(snap.shardMeta) {
		st.Epoch = snap.shardMeta[slot].epoch
		st.LastBuildSeconds = snap.shardMeta[slot].buildSeconds
	}
	return st
}
