package broker

import (
	"time"

	"repro/internal/pmatch"
	"repro/internal/subtree"
	"repro/internal/symtab"
)

// routeSnapshot is the immutable routing state the publish data plane reads.
// The control plane mutates the broker's master tables under the exclusive
// lock and, before releasing it, publishes a fresh snapshot through an
// atomic pointer; Publish loads the pointer once and matches against a
// consistent view without acquiring any mutex. Components a control change
// did not touch are aliased from the previous snapshot — every component is
// immutable once published, so aliasing is free and a snapshot swap costs
// only the copies for what actually changed (copy-on-write).
//
// Snapshot PRT nodes carry the publish-plane projection of the routing
// state: Node.Data holds the subscription's sorted last-hop list ([]string,
// nil for stateless nodes) instead of the control plane's mutable *subState,
// so matching iterates a slice instead of a map and never sees a map the
// control plane might be writing.
type routeSnapshot struct {
	// epoch increments on every swap; 0 is the empty snapshot a new broker
	// starts with. Metrics expose it and traced publications record the
	// epoch they matched under.
	epoch uint64
	// prt is a deep copy of the subscription tree (see subtree.CloneWithData).
	prt *subtree.Tree
	// clients is the client-peer set.
	clients map[string]bool
	// clientSubs holds each client's original subscriptions for the edge
	// delivery filter.
	clientSubs map[string]*subtree.Tree
	// srt is the advertisement table view (entries are immutable after
	// insertion; the slice is copied on change).
	srt []*advEntry
	// auto is the shared path-matching automaton compiled from this
	// snapshot's PRT (payload: sorted last-hop slices) and per-client filter
	// trees (payload: clientMatch keys). handlePublish does ONE automaton
	// run per publication sym-path instead of walking every
	// subscription-tree node. Nil when the broker disables the shared NFA
	// (Config.DisableSharedNFA) or before any subscription arrives with the
	// empty snapshot — the publish path then falls back to the covering
	// tree walk.
	auto *pmatch.Automaton
}

// clientMatch is the automaton payload type of a per-client filter-tree
// entry: the client's peer ID. Distinguished from PRT payloads ([]string
// last-hop slices) by type in handlePublish's single type switch.
type clientMatch string

// emptySnapshot is what a new broker publishes before any control traffic.
func emptySnapshot() *routeSnapshot {
	return &routeSnapshot{
		prt:        subtree.New(),
		clients:    map[string]bool{},
		clientSubs: map[string]*subtree.Tree{},
	}
}

// snapDirty records which master tables a control message touched, so
// publishSnapshot copies only those.
type snapDirty struct {
	prt        bool
	srt        bool
	clients    bool
	clientSubs map[string]bool // per-client filter trees
}

func (d *snapDirty) markClientSubs(id string) {
	if d.clientSubs == nil {
		d.clientSubs = make(map[string]bool)
	}
	d.clientSubs[id] = true
}

func (d *snapDirty) any() bool {
	return d.prt || d.srt || d.clients || len(d.clientSubs) > 0
}

// publishSnapshot swaps in a new immutable snapshot reflecting the master
// tables. It must run with b.mu held exclusively (it reads the mutable
// tables) and is a no-op when the preceding handler changed nothing.
func (b *Broker) publishSnapshot() {
	if !b.dirty.any() {
		return
	}
	old := b.snap.Load()
	next := &routeSnapshot{
		epoch:      old.epoch + 1,
		prt:        old.prt,
		clients:    old.clients,
		clientSubs: old.clientSubs,
		srt:        old.srt,
	}
	if b.dirty.prt {
		next.prt = b.prt.CloneWithData(snapshotHops)
	}
	if b.dirty.srt {
		next.srt = append([]*advEntry(nil), b.srt...)
	}
	if b.dirty.clients {
		clients := make(map[string]bool, len(b.clients))
		for id := range b.clients {
			clients[id] = true
		}
		next.clients = clients
	}
	if len(b.dirty.clientSubs) > 0 {
		subs := make(map[string]*subtree.Tree, len(b.clientSubs))
		for id, t := range old.clientSubs {
			subs[id] = t
		}
		for id := range b.dirty.clientSubs {
			if t := b.clientSubs[id]; t != nil {
				subs[id] = t.CloneWithData(nil)
			} else {
				delete(subs, id)
			}
		}
		next.clientSubs = subs
	}
	// Recompile the shared matching automaton only when a matched component
	// changed; control messages touching neither (e.g. a pure client
	// registration) alias the previous automaton like any other snapshot
	// component.
	next.auto = old.auto
	if !b.cfg.DisableSharedNFA && (b.dirty.prt || len(b.dirty.clientSubs) > 0) {
		var start time.Time
		if b.nfaBuildSeconds != nil {
			start = time.Now()
		}
		next.auto = buildRouteAutomaton(next.prt, next.clientSubs)
		if b.nfaBuildSeconds != nil {
			b.nfaBuildSeconds.Observe(time.Since(start).Seconds())
		}
	}
	b.dirty = snapDirty{}
	b.snap.Store(next)
}

// buildRouteAutomaton compiles one shared NFA covering every expression the
// publish path consults: PRT nodes carrying last-hop state (their sorted
// hop slice is the payload) and every client filter-tree node (the client
// ID is the payload). Stateless PRT nodes — pure covering structure — admit
// no routing decision and are left out.
func buildRouteAutomaton(prt *subtree.Tree, clientSubs map[string]*subtree.Tree) *pmatch.Automaton {
	bld := pmatch.NewBuilder()
	prt.Walk(func(n *subtree.Node) {
		if hops := snapshotNodeHops(n); len(hops) > 0 {
			bld.Add(n.XPE, hops)
		}
	})
	for id, t := range clientSubs {
		key := clientMatch(id)
		t.Walk(func(n *subtree.Node) { bld.Add(n.XPE, key) })
	}
	return bld.Build()
}

// snapshotHops projects a PRT node's routing state into the snapshot form:
// the sorted last-hop slice, or nil for nodes without state.
func snapshotHops(n *subtree.Node) any {
	st := stateOf(n)
	if st == nil || len(st.lastHops) == 0 {
		return nil
	}
	return sortedKeys(st.lastHops)
}

// snapshotNodeHops reads the last-hop list of a snapshot PRT node.
func snapshotNodeHops(n *subtree.Node) []string {
	hops, _ := n.Data.([]string)
	return hops
}

// matchesClient evaluates the edge delivery filter against the snapshot's
// per-client subscription trees.
func (s *routeSnapshot) matchesClient(client string, paths [][]symtab.Sym, attrs [][]map[string]string) bool {
	tree := s.clientSubs[client]
	if tree == nil {
		return false
	}
	for i, path := range paths {
		if tree.MatchSymPathAnyAttrs(path, attrs[i]) {
			return true
		}
	}
	return false
}

// SnapshotEpoch returns the current routing-snapshot epoch without taking
// any lock. The epoch increments exactly when a control-plane change swaps
// the publish view; a run of publications observing one epoch matched one
// consistent routing table.
func (b *Broker) SnapshotEpoch() uint64 {
	return b.snap.Load().epoch
}

// NFAStats measures the current snapshot's shared matching automaton
// (zeroes when it is absent). Lock-free, like every snapshot reader.
func (b *Broker) NFAStats() pmatch.Stats {
	if a := b.snap.Load().auto; a != nil {
		return a.Stats()
	}
	return pmatch.Stats{}
}
