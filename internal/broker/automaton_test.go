package broker

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/pmatch"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// shardIndexOf is the broker-side view of the shard key: the slot a
// subscription's automaton entry lands in for an N-shard configuration.
func shardIndexOf(x *xpath.XPE, n int) int {
	return pmatch.ShardIndex(x, n)
}

// pub builds a test publication with per-element attributes.
func pub(path []string, attrs []map[string]string, id int) xmldoc.Publication {
	return xmldoc.Publication{DocID: uint64(id), Path: path, Attrs: attrs}
}

// sink records every (to, publication) pair a broker emits, safe for
// concurrent sends.
type sink struct {
	mu   sync.Mutex
	sent []string
}

func (s *sink) send(to string, m *Message) {
	if m.Type != MsgPublish {
		return
	}
	s.mu.Lock()
	s.sent = append(s.sent, to+"<-"+m.Pub.String())
	s.mu.Unlock()
}

func (s *sink) sorted() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]string(nil), s.sent...)
	sort.Strings(out)
	return out
}

// randomWorkloadXPE mirrors the pmatch property generator but over a
// broker-sized alphabet, including predicates.
func randomWorkloadXPE(r *rand.Rand) *xpath.XPE {
	alpha := []string{"a", "b", "c", "d"}
	n := 1 + r.Intn(4)
	steps := make([]xpath.Step, n)
	for i := range steps {
		axis := xpath.Child
		if i > 0 && r.Intn(3) == 0 {
			axis = xpath.Descendant
		}
		name := alpha[r.Intn(len(alpha))]
		if r.Intn(6) == 0 {
			name = xpath.Wildcard
		}
		var preds string
		if r.Intn(7) == 0 {
			preds = xpath.EncodePreds([]xpath.Pred{{Attr: "k", Value: alpha[r.Intn(2)]}})
		}
		steps[i] = xpath.Step{Axis: axis, Name: name, Preds: preds}
	}
	return xpath.New(r.Intn(4) == 0, steps...)
}

// TestAutomatonRoutesLikeTreeWalk drives two brokers — shared NFA on
// (default) and off (fallback) — through identical random control and
// publication sequences and requires byte-identical forwarding and
// delivery. This is the broker-level equivalence contract on top of
// pmatch's own property tests.
func TestAutomatonRoutesLikeTreeWalk(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			run := func(cfg Config) ([]string, Stats) {
				r := rand.New(rand.NewSource(seed))
				s := &sink{}
				cfg.ID = "b1"
				cfg.UseCovering = true
				b := New(cfg, s.send)
				b.AddNeighbor("n1")
				b.AddNeighbor("n2")
				b.AddClient("c1")
				b.AddClient("c2")
				peers := []string{"n1", "n2", "c1", "c2"}
				var subs []*xpath.XPE
				for i := 0; i < 300; i++ {
					switch op := r.Intn(10); {
					case op < 4: // subscribe
						x := randomWorkloadXPE(r)
						subs = append(subs, x)
						b.HandleMessage(&Message{Type: MsgSubscribe, XPE: x}, peers[r.Intn(len(peers))])
					case op < 5 && len(subs) > 0: // unsubscribe
						b.HandleMessage(&Message{Type: MsgUnsubscribe, XPE: subs[r.Intn(len(subs))]}, peers[r.Intn(len(peers))])
					default: // publish
						alpha := []string{"a", "b", "c", "d", "zz"}
						n := 1 + r.Intn(5)
						path := make([]string, n)
						attrs := make([]map[string]string, n)
						for j := range path {
							path[j] = alpha[r.Intn(len(alpha))]
							if r.Intn(3) == 0 {
								attrs[j] = map[string]string{"k": alpha[r.Intn(2)]}
							}
						}
						b.HandleMessage(&Message{Type: MsgPublish, Pub: pub(path, attrs, r.Int())}, "producer")
					}
				}
				return s.sorted(), b.Stats()
			}
			gotNFA, statsNFA := run(Config{})
			gotTree, statsTree := run(Config{DisableSharedNFA: true})
			gotSharded, statsSharded := run(Config{Shards: 8})
			if !reflect.DeepEqual(gotNFA, gotTree) {
				t.Fatalf("forwarding diverged:\nnfa:  %v\ntree: %v", gotNFA, gotTree)
			}
			if !reflect.DeepEqual(gotNFA, gotSharded) {
				t.Fatalf("forwarding diverged:\nnfa:     %v\nsharded: %v", gotNFA, gotSharded)
			}
			if statsNFA.Deliveries != statsTree.Deliveries || statsNFA.FalsePositives != statsTree.FalsePositives {
				t.Fatalf("stats diverged: nfa=%+v tree=%+v", statsNFA, statsTree)
			}
			if statsNFA.Deliveries != statsSharded.Deliveries || statsNFA.FalsePositives != statsSharded.FalsePositives {
				t.Fatalf("stats diverged: nfa=%+v sharded=%+v", statsNFA, statsSharded)
			}
		})
	}
}

// TestAutomatonRebuildTracksControlPlane pins the copy-on-write lifecycle:
// the automaton is absent on an empty broker, grows with subscriptions,
// shrinks on unsubscribe, and is not recompiled by control changes that
// touch neither the PRT nor a client filter tree.
func TestAutomatonRebuildTracksControlPlane(t *testing.T) {
	b := New(Config{ID: "b1", UseCovering: true}, func(string, *Message) {})
	if s := b.NFAStats(); s.Entries != 0 {
		t.Fatalf("empty broker: %+v", s)
	}
	b.AddClient("c1")
	x1, x2 := xpath.MustParse("/a/b"), xpath.MustParse("/a//c")
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: x1}, "c1")
	// PRT node + client filter node.
	if s := b.NFAStats(); s.Entries != 2 {
		t.Fatalf("after one client subscription: %+v", s)
	}
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: x2}, "peer")
	if s := b.NFAStats(); s.Entries != 3 {
		t.Fatalf("after peer subscription: %+v", s)
	}
	before := b.SnapshotEpoch()
	// A duplicate subscription from the same peer changes nothing: no new
	// snapshot, same automaton.
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: x2}, "peer")
	if b.SnapshotEpoch() != before {
		t.Fatal("no-op control change must not swap the snapshot")
	}
	b.HandleMessage(&Message{Type: MsgUnsubscribe, XPE: x2}, "peer")
	if s := b.NFAStats(); s.Entries != 2 {
		t.Fatalf("after unsubscribe: %+v", s)
	}
}

// TestShardedRebuildGranularity pins the per-shard copy-on-write contract:
// a control change recompiles only the shard its expression hashes to, and
// each slot's ShardStatus epoch records the snapshot in which that slot was
// last rebuilt — untouched slots keep their old epoch because the new
// snapshot aliases their automatons.
func TestShardedRebuildGranularity(t *testing.T) {
	const n = 4
	b := New(Config{ID: "b1", UseCovering: true, Shards: n}, func(string, *Message) {})
	b.AddNeighbor("n1")
	// Find two root names that land in different anchored slots (the hash
	// over interned symbols is stable within a process but not chosen here).
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	x1 := xpath.MustParse("/" + names[0] + "/x")
	var x2 *xpath.XPE
	for _, nm := range names[1:] {
		cand := xpath.MustParse("/" + nm + "/y")
		if shardIndexOf(cand, n) != shardIndexOf(x1, n) {
			x2 = cand
			break
		}
	}
	if x2 == nil {
		t.Fatal("no two roots hash to distinct shards; widen the name set")
	}
	s1, s2 := shardIndexOf(x1, n), shardIndexOf(x2, n)

	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: x1}, "n1")
	e1 := b.SnapshotEpoch()
	st := b.ShardStatus()
	if len(st) != n+1 {
		t.Fatalf("ShardStatus slots = %d, want %d (N anchored + wild)", len(st), n+1)
	}
	if st[s1].Entries != 1 || st[s1].Epoch != e1 {
		t.Fatalf("slot %d after first subscription: %+v (epoch %d)", s1, st[s1], e1)
	}

	// A subscription in a different shard rebuilds only that shard: s1 keeps
	// its old epoch because its automaton is aliased, not recompiled.
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: x2}, "n1")
	e2 := b.SnapshotEpoch()
	if e2 == e1 {
		t.Fatal("effective control change must move the snapshot epoch")
	}
	st = b.ShardStatus()
	if st[s2].Entries != 1 || st[s2].Epoch != e2 {
		t.Fatalf("slot %d after second subscription: %+v (epoch %d)", s2, st[s2], e2)
	}
	if st[s1].Epoch != e1 {
		t.Fatalf("untouched slot %d was recompiled: epoch %d, want %d", s1, st[s1].Epoch, e1)
	}

	// A descendant-rooted expression goes to the wild slot; anchored slots
	// stay aliased.
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: xpath.MustParse("//z")}, "n1")
	e3 := b.SnapshotEpoch()
	st = b.ShardStatus()
	if wild := st[n]; wild.Shard != "wild" || wild.Entries != 1 || wild.Epoch != e3 {
		t.Fatalf("wild slot after relative subscription: %+v (epoch %d)", wild, e3)
	}
	if st[s1].Epoch != e1 || st[s2].Epoch != e2 {
		t.Fatalf("anchored slots recompiled by wild-slot change: %+v", st)
	}

	// Unsubscribe recompiles only the affected shard and shrinks it.
	b.HandleMessage(&Message{Type: MsgUnsubscribe, XPE: x2}, "n1")
	e4 := b.SnapshotEpoch()
	st = b.ShardStatus()
	if st[s2].Entries != 0 || st[s2].Epoch != e4 {
		t.Fatalf("slot %d after unsubscribe: %+v (epoch %d)", s2, st[s2], e4)
	}
	if st[s1].Epoch != e1 {
		t.Fatalf("untouched slot %d recompiled on unrelated unsubscribe", s1)
	}
}

// TestDisableSharedNFAFallback exercises the tree-walk fallback end to end:
// with the automaton off, the snapshot carries none and routing still
// works, including the edge client filter.
func TestDisableSharedNFAFallback(t *testing.T) {
	s := &sink{}
	b := New(Config{ID: "b1", UseCovering: true, DisableSharedNFA: true}, s.send)
	b.AddClient("c1")
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: xpath.MustParse("/a//b")}, "c1")
	if st := b.NFAStats(); st.States != 0 {
		t.Fatalf("automaton must be absent when disabled: %+v", st)
	}
	b.HandleMessage(&Message{Type: MsgPublish, Pub: pub([]string{"a", "x", "b"}, nil, 1)}, "producer")
	b.HandleMessage(&Message{Type: MsgPublish, Pub: pub([]string{"a", "x"}, nil, 2)}, "producer")
	if got := s.sorted(); len(got) != 1 {
		t.Fatalf("want exactly the matching publication delivered, got %v", got)
	}
	if st := b.Stats(); st.Deliveries != 1 {
		t.Fatalf("stats %+v", st)
	}
}
