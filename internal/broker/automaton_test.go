package broker

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// pub builds a test publication with per-element attributes.
func pub(path []string, attrs []map[string]string, id int) xmldoc.Publication {
	return xmldoc.Publication{DocID: uint64(id), Path: path, Attrs: attrs}
}

// sink records every (to, publication) pair a broker emits, safe for
// concurrent sends.
type sink struct {
	mu   sync.Mutex
	sent []string
}

func (s *sink) send(to string, m *Message) {
	if m.Type != MsgPublish {
		return
	}
	s.mu.Lock()
	s.sent = append(s.sent, to+"<-"+m.Pub.String())
	s.mu.Unlock()
}

func (s *sink) sorted() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]string(nil), s.sent...)
	sort.Strings(out)
	return out
}

// randomWorkloadXPE mirrors the pmatch property generator but over a
// broker-sized alphabet, including predicates.
func randomWorkloadXPE(r *rand.Rand) *xpath.XPE {
	alpha := []string{"a", "b", "c", "d"}
	n := 1 + r.Intn(4)
	steps := make([]xpath.Step, n)
	for i := range steps {
		axis := xpath.Child
		if i > 0 && r.Intn(3) == 0 {
			axis = xpath.Descendant
		}
		name := alpha[r.Intn(len(alpha))]
		if r.Intn(6) == 0 {
			name = xpath.Wildcard
		}
		var preds string
		if r.Intn(7) == 0 {
			preds = xpath.EncodePreds([]xpath.Pred{{Attr: "k", Value: alpha[r.Intn(2)]}})
		}
		steps[i] = xpath.Step{Axis: axis, Name: name, Preds: preds}
	}
	return xpath.New(r.Intn(4) == 0, steps...)
}

// TestAutomatonRoutesLikeTreeWalk drives two brokers — shared NFA on
// (default) and off (fallback) — through identical random control and
// publication sequences and requires byte-identical forwarding and
// delivery. This is the broker-level equivalence contract on top of
// pmatch's own property tests.
func TestAutomatonRoutesLikeTreeWalk(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			run := func(disable bool) ([]string, Stats) {
				r := rand.New(rand.NewSource(seed))
				s := &sink{}
				b := New(Config{ID: "b1", UseCovering: true, DisableSharedNFA: disable}, s.send)
				b.AddNeighbor("n1")
				b.AddNeighbor("n2")
				b.AddClient("c1")
				b.AddClient("c2")
				peers := []string{"n1", "n2", "c1", "c2"}
				var subs []*xpath.XPE
				for i := 0; i < 300; i++ {
					switch op := r.Intn(10); {
					case op < 4: // subscribe
						x := randomWorkloadXPE(r)
						subs = append(subs, x)
						b.HandleMessage(&Message{Type: MsgSubscribe, XPE: x}, peers[r.Intn(len(peers))])
					case op < 5 && len(subs) > 0: // unsubscribe
						b.HandleMessage(&Message{Type: MsgUnsubscribe, XPE: subs[r.Intn(len(subs))]}, peers[r.Intn(len(peers))])
					default: // publish
						alpha := []string{"a", "b", "c", "d", "zz"}
						n := 1 + r.Intn(5)
						path := make([]string, n)
						attrs := make([]map[string]string, n)
						for j := range path {
							path[j] = alpha[r.Intn(len(alpha))]
							if r.Intn(3) == 0 {
								attrs[j] = map[string]string{"k": alpha[r.Intn(2)]}
							}
						}
						b.HandleMessage(&Message{Type: MsgPublish, Pub: pub(path, attrs, r.Int())}, "producer")
					}
				}
				return s.sorted(), b.Stats()
			}
			gotNFA, statsNFA := run(false)
			gotTree, statsTree := run(true)
			if !reflect.DeepEqual(gotNFA, gotTree) {
				t.Fatalf("forwarding diverged:\nnfa:  %v\ntree: %v", gotNFA, gotTree)
			}
			if statsNFA.Deliveries != statsTree.Deliveries || statsNFA.FalsePositives != statsTree.FalsePositives {
				t.Fatalf("stats diverged: nfa=%+v tree=%+v", statsNFA, statsTree)
			}
		})
	}
}

// TestAutomatonRebuildTracksControlPlane pins the copy-on-write lifecycle:
// the automaton is absent on an empty broker, grows with subscriptions,
// shrinks on unsubscribe, and is not recompiled by control changes that
// touch neither the PRT nor a client filter tree.
func TestAutomatonRebuildTracksControlPlane(t *testing.T) {
	b := New(Config{ID: "b1", UseCovering: true}, func(string, *Message) {})
	if s := b.NFAStats(); s.Entries != 0 {
		t.Fatalf("empty broker: %+v", s)
	}
	b.AddClient("c1")
	x1, x2 := xpath.MustParse("/a/b"), xpath.MustParse("/a//c")
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: x1}, "c1")
	// PRT node + client filter node.
	if s := b.NFAStats(); s.Entries != 2 {
		t.Fatalf("after one client subscription: %+v", s)
	}
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: x2}, "peer")
	if s := b.NFAStats(); s.Entries != 3 {
		t.Fatalf("after peer subscription: %+v", s)
	}
	before := b.SnapshotEpoch()
	// A duplicate subscription from the same peer changes nothing: no new
	// snapshot, same automaton.
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: x2}, "peer")
	if b.SnapshotEpoch() != before {
		t.Fatal("no-op control change must not swap the snapshot")
	}
	b.HandleMessage(&Message{Type: MsgUnsubscribe, XPE: x2}, "peer")
	if s := b.NFAStats(); s.Entries != 2 {
		t.Fatalf("after unsubscribe: %+v", s)
	}
}

// TestDisableSharedNFAFallback exercises the tree-walk fallback end to end:
// with the automaton off, the snapshot carries none and routing still
// works, including the edge client filter.
func TestDisableSharedNFAFallback(t *testing.T) {
	s := &sink{}
	b := New(Config{ID: "b1", UseCovering: true, DisableSharedNFA: true}, s.send)
	b.AddClient("c1")
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: xpath.MustParse("/a//b")}, "c1")
	if st := b.NFAStats(); st.States != 0 {
		t.Fatalf("automaton must be absent when disabled: %+v", st)
	}
	b.HandleMessage(&Message{Type: MsgPublish, Pub: pub([]string{"a", "x", "b"}, nil, 1)}, "producer")
	b.HandleMessage(&Message{Type: MsgPublish, Pub: pub([]string{"a", "x"}, nil, 2)}, "producer")
	if got := s.sorted(); len(got) != 1 {
		t.Fatalf("want exactly the matching publication delivered, got %v", got)
	}
	if st := b.Stats(); st.Deliveries != 1 {
		t.Fatalf("stats %+v", st)
	}
}
