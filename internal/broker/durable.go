package broker

// Durable named subscriptions (DESIGN.md §5i). A durable subscription is a
// long-lived, named materialised view over the publication stream — the
// ViP2P model — owned by the edge broker it was registered on. The broker
// assigns every matched publication a monotonically increasing per-name
// sequence number, appends it to the write-ahead publication log
// (Config.Durable), and replays the gap above the acknowledged cursor when
// the subscriber reattaches. The at-least-once guarantee covers the
// subscriber-edge leg: once a publication reaches the edge broker and is
// appended, it survives client detach and broker crash. Publications lost
// in transit upstream are the overlay's resync/redundant-path story, not
// this one's.
//
// Mechanically, a durable subscription is a virtual client: its
// expressions register under the reserved peer key durKey(name) in the
// client set, the client filter trees, and the PRT, so matching and edge
// filtering need no new code — the publish filter pass finds the durable
// hop exactly as it finds a real client, and redirects delivery through
// durableDeliver.

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/subtree"
	"repro/internal/xpath"
)

// DurableStore is the persistence contract behind durable subscriptions —
// a per-broker segmented write-ahead publication log with acknowledged
// cursors (package publog implements it; the dependency points that way so
// the log can encode broker messages).
//
// Append must persist the record at-least-once semantics allow
// group-committed durability (a crash may lose the unsynced tail; the
// subscriber's unacknowledged window is replayed from what survived).
// Replay must hand back records for name with from <= seq <= to in
// sequence order; the messages it passes are fresh and may be retained.
// Recover reports the state rebuilt from disk after a restart.
type DurableStore interface {
	Append(name string, seq uint64, m *Message) error
	Ack(name string, seq uint64) error
	SaveSub(name string, xpes []string) error
	Replay(name string, from, to uint64, fn func(seq uint64, m *Message) error) error
	Recover() []DurableState
}

// DurableState is one durable subscription's recovered state.
type DurableState struct {
	Name    string
	LastSeq uint64
	Acked   uint64
	Subs    []string
}

// durPrefix namespaces durable virtual-client keys away from real peer
// IDs ('~' never appears in broker or client identifiers).
const durPrefix = "~dur:"

func durKey(name string) string { return durPrefix + name }

// durState is one durable subscription's live state. The control plane
// creates it under b.mu; the publish plane reaches it through the routing
// snapshot and synchronises on the state's own lock, so sequence
// assignment never touches the broker lock.
type durState struct {
	name string

	// mu serialises sequence assignment, the log append, and the peer
	// read, making log order identical to sequence order per name — and
	// making attach-time replay exact: reattach sets peer and reads the
	// last assigned sequence under this lock, so every later sequence
	// live-delivers and every earlier one is covered by the replay range.
	mu   sync.Mutex
	seq  uint64 // last assigned sequence, under mu
	peer string // attached client peer ID ("" while detached), under mu

	// acked is the acknowledged cursor, advanced lock-free by MsgAck.
	acked atomic.Uint64

	// xpes holds the subscription's expressions in canonical string form;
	// guarded by b.mu (control plane only).
	xpes map[string]bool
}

// handleSubscribeDurable registers (or reattaches) a durable named
// subscription. Runs under b.mu like every control handler.
func (b *Broker) handleSubscribeDurable(m *Message, from string) {
	if b.durable == nil || m.Durable == "" || m.XPE == nil {
		return
	}
	name := m.Durable
	key := durKey(name)
	d := b.durables[name]
	if d == nil {
		d = &durState{name: name, xpes: make(map[string]bool)}
		b.durables[name] = d
		b.dirty.durables = true
	}
	// Register the virtual client so matching, edge filtering, and the
	// snapshot's client set all see the durable subscription as an
	// ordinary local client.
	if !b.clients[key] {
		b.clients[key] = true
		b.dirty.clients = true
	}
	if b.clientSubs[key] == nil {
		b.clientSubs[key] = subtree.New()
		b.dirty.markClientSubs(key)
	}
	if expr := m.XPE.String(); !d.xpes[expr] {
		d.xpes[expr] = true
		// Delegate to the plain subscribe handler with the virtual client
		// as the last hop: PRT insertion, upstream forwarding, covering,
		// and merging all apply unchanged.
		b.handleSubscribe(&Message{Type: MsgSubscribe, XPE: m.XPE}, key)
		b.durable.SaveSub(name, sortedKeys(d.xpes))
	}
	// A directly connected client attaching (as opposed to a forwarded or
	// recovered registration) gets the unacknowledged gap replayed.
	if b.clients[from] {
		b.replayDurable(d, from)
	}
}

// replayDurable attaches peer to the durable subscription and replays the
// gap between its acknowledged cursor and the last assigned sequence.
// Setting the peer and reading the last sequence under d.mu leaves no gap
// with live delivery: a publication sequenced after the read observes the
// new peer and delivers live; one sequenced before it falls inside the
// replay range. (A delivery in flight to the previous attachment of the
// same client may be re-sent by the replay — at-least-once permits
// duplicates across reconnect boundaries.)
func (b *Broker) replayDurable(d *durState, peer string) {
	d.mu.Lock()
	d.peer = peer
	last := d.seq
	d.mu.Unlock()
	acked := d.acked.Load()
	from := acked + 1
	b.emit(peer, &Message{Type: MsgReplayBegin, Durable: d.name, Seq: from})
	if last > acked {
		b.durable.Replay(d.name, from, last, func(seq uint64, m *Message) error {
			cp := *m
			cp.Type = MsgPublish
			cp.Durable = d.name
			cp.Seq = seq
			b.emit(peer, &cp)
			return nil
		})
	}
	b.emit(peer, &Message{Type: MsgReplayEnd, Durable: d.name, Seq: last})
}

// durableDeliver sequences one matched publication for a durable
// subscription, appends it to the log, and forwards it to the attached
// client (if any) stamped with its name and sequence. Called from the
// lock-free publish path after the edge filter passed; d.mu is the only
// lock taken, and the log append behind it is a buffered write — the
// fsync happens in the store's group commit.
func (b *Broker) durableDeliver(d *durState, m *Message) {
	d.mu.Lock()
	d.seq++
	seq := d.seq
	if b.durable != nil {
		b.durable.Append(d.name, seq, m)
	}
	peer := d.peer
	d.mu.Unlock()
	if peer != "" {
		cp := *m
		cp.Durable = d.name
		cp.Seq = seq
		b.emit(peer, &cp)
	}
}

// handleAck advances a durable subscription's acknowledged cursor. It
// rides the data plane: an atomic max on the snapshot's state plus the
// store's cursor persistence, no broker lock and no snapshot swap.
func (b *Broker) handleAck(m *Message) {
	if b.durable == nil || m.Durable == "" {
		return
	}
	d := b.snap.Load().durables[durKey(m.Durable)]
	if d == nil {
		return
	}
	for {
		cur := d.acked.Load()
		if m.Seq <= cur {
			return
		}
		if d.acked.CompareAndSwap(cur, m.Seq) {
			break
		}
	}
	b.durable.Ack(m.Durable, m.Seq)
}

// RecoverDurable rebuilds durable subscriptions from the store after a
// restart: sequence counters resume above the highest logged sequence,
// acknowledged cursors are restored, and every persisted expression
// re-registers through the plain subscribe path (PRT, upstream
// forwarding, covering). It must run after AddNeighbor registration — the
// re-registered subscriptions forward upstream like fresh ones — and
// before traffic. The transport's server constructor and the simulator's
// restart path both call it at that point.
func (b *Broker) RecoverDurable() {
	if b.durable == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, st := range b.durable.Recover() {
		d := b.durables[st.Name]
		if d == nil {
			d = &durState{name: st.Name, xpes: make(map[string]bool)}
			b.durables[st.Name] = d
			b.dirty.durables = true
		}
		d.mu.Lock()
		if st.LastSeq > d.seq {
			d.seq = st.LastSeq
		}
		d.mu.Unlock()
		if st.Acked > d.acked.Load() {
			d.acked.Store(st.Acked)
		}
		key := durKey(st.Name)
		if !b.clients[key] {
			b.clients[key] = true
			b.dirty.clients = true
		}
		if b.clientSubs[key] == nil {
			b.clientSubs[key] = subtree.New()
			b.dirty.markClientSubs(key)
		}
		for _, expr := range st.Subs {
			if d.xpes[expr] {
				continue
			}
			x, err := xpath.Parse(expr)
			if err != nil {
				continue
			}
			d.xpes[expr] = true
			b.handleSubscribe(&Message{Type: MsgSubscribe, XPE: x}, key)
		}
	}
	b.publishSnapshot()
}

// DurableStatus is one durable subscription's live cursor state for
// /statusz and tests.
type DurableStatus struct {
	Name  string `json:"name"`
	Seq   uint64 `json:"seq"`
	Acked uint64 `json:"acked"`
	Peer  string `json:"peer,omitempty"`
}

// Durables snapshots the broker's durable subscriptions, sorted by name.
func (b *Broker) Durables() []DurableStatus {
	snap := b.snap.Load()
	out := make([]DurableStatus, 0, len(snap.durables))
	for _, d := range snap.durables {
		d.mu.Lock()
		st := DurableStatus{Name: d.name, Seq: d.seq, Peer: d.peer}
		d.mu.Unlock()
		st.Acked = d.acked.Load()
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
