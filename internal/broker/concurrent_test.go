package broker

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// recorder collects emitted messages; the broker may call send from many
// publishing goroutines at once, so it locks.
type recorder struct {
	mu   sync.Mutex
	msgs map[string][]*Message
}

func newRecorder() *recorder { return &recorder{msgs: make(map[string][]*Message)} }

func (r *recorder) send(to string, m *Message) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.msgs[to] = append(r.msgs[to], m)
}

// delivered returns the DocIDs of publications delivered to a peer.
func (r *recorder) delivered(to string) map[uint64]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[uint64]int)
	for _, m := range r.msgs[to] {
		if m.Type == MsgPublish {
			out[m.Pub.DocID]++
		}
	}
	return out
}

// stressWorkload is the shared fixture of the concurrent-vs-sequential runs:
// a stable client subscription plus a set of publications, some matching.
func stressWorkload() (stable *xpath.XPE, pubs []xmldoc.Publication) {
	stable = xpath.MustParse("/stock//price")
	paths := [][]string{
		{"stock", "quote", "price"},
		{"stock", "price"},
		{"stock", "quote", "volume"},
		{"weather", "report"},
		{"stock", "index", "price"},
		{"stock"},
	}
	for i := 0; i < 600; i++ {
		p := paths[i%len(paths)]
		pubs = append(pubs, xmldoc.Publication{DocID: uint64(i + 1), PathID: 0, Path: p})
	}
	return stable, pubs
}

// runSequential plays the whole workload through a broker one message at a
// time and returns the delivery multiset of the stable client.
func runSequential(stable *xpath.XPE, pubs []xmldoc.Publication) map[uint64]int {
	rec := newRecorder()
	b := New(Config{ID: "b1", UseCovering: true}, rec.send)
	b.AddClient("stable")
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: stable}, "stable")
	for i := range pubs {
		b.HandleMessage(&Message{Type: MsgPublish, Pub: pubs[i]}, "producer")
	}
	return rec.delivered("stable")
}

// TestConcurrentPublishMatchesSequential is the broker-level half of the
// delivery-equivalence stress test: many goroutines publish through one
// broker while other goroutines churn unrelated subscriptions, and the
// stable client must receive exactly the publication set of a sequential
// run — each matching publication once, nothing else. Run with -race.
func TestConcurrentPublishMatchesSequential(t *testing.T) {
	stable, pubs := stressWorkload()
	want := runSequential(stable, pubs)

	rec := newRecorder()
	b := New(Config{ID: "b1", UseCovering: true}, rec.send)
	b.AddClient("stable")
	b.AddClient("churn")
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: stable}, "stable")

	const publishers = 8
	// Subscription churn: the control plane runs concurrently with the
	// publish data plane. The churned expressions do not overlap the
	// publications' paths, so they cannot change the stable client's set.
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			x := xpath.MustParse(fmt.Sprintf("/churn/e%d", i%17))
			b.HandleMessage(&Message{Type: MsgSubscribe, XPE: x}, "churn")
			b.HandleMessage(&Message{Type: MsgUnsubscribe, XPE: x}, "churn")
		}
	}()
	var pub sync.WaitGroup
	for w := 0; w < publishers; w++ {
		pub.Add(1)
		go func(w int) {
			defer pub.Done()
			for i := w; i < len(pubs); i += publishers {
				b.HandleMessage(&Message{Type: MsgPublish, Pub: pubs[i]}, "producer")
			}
		}(w)
	}
	pub.Wait()
	close(stop)
	churn.Wait()

	got := rec.delivered("stable")
	if len(got) != len(want) {
		t.Fatalf("delivered %d distinct publications, want %d", len(got), len(want))
	}
	for id, n := range want {
		if got[id] != n {
			t.Errorf("publication doc%d delivered %d times, want %d", id, got[id], n)
		}
	}
	for id := range got {
		if _, ok := want[id]; !ok {
			t.Errorf("unexpected delivery doc%d", id)
		}
	}
}

// TestStatsSnapshotDuringPublish exercises the lock-free Stats path while
// publications run, a combination the map-based counters used to race on.
func TestStatsSnapshotDuringPublish(t *testing.T) {
	stable, pubs := stressWorkload()
	rec := newRecorder()
	b := New(Config{ID: "b1"}, rec.send)
	b.AddClient("stable")
	b.HandleMessage(&Message{Type: MsgSubscribe, XPE: stable}, "stable")

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(pubs); i += 4 {
				b.HandleMessage(&Message{Type: MsgPublish, Pub: pubs[i]}, "producer")
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			st := b.Stats()
			if st.Deliveries < 0 {
				t.Error("negative delivery counter")
			}
		}
	}()
	wg.Wait()
	st := b.Stats()
	if st.MsgsIn[MsgPublish] != int64(len(pubs)) {
		t.Errorf("MsgsIn[publish] = %d, want %d", st.MsgsIn[MsgPublish], len(pubs))
	}
}
