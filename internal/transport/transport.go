// Package transport deploys brokers over real TCP connections — the mode the
// paper ran on its cluster and on PlanetLab. Each connection begins with a
// gob-encoded hello frame identifying the peer and offering a wire codec;
// after the handshake both sides stream messages in the negotiated codec —
// the binary varint format of package wirefmt by default (with per-link
// symbol dictionaries and batched vectored writes), or gob for rollout and
// ablation (Options.Wire / -wire=gob).
//
// The discrete-event simulator (package sim) is the tool for controlled
// experiments; this package is the deployable counterpart with identical
// broker semantics.
//
// Concurrency: the server no longer serialises all broker handling behind
// one mutex. The broker itself orders its two planes (control messages
// exclusive, publications shared — see package broker); on top of that the
// server runs a bounded worker pool that matches publications from
// concurrent client connections in parallel. Publications are dispatched to
// a worker chosen by the source peer's ID, so the publications of one
// connection are processed in arrival order while different connections
// spread across workers. Outbound messages fan in to one ordered send queue
// per peer connection, drained by a single writer goroutine, so each peer
// observes deliveries in enqueue order.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/bits"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// wireAgg accumulates one codec's transmit totals across every connection
// that spoke it (connections come and go; these never reset).
type wireAgg struct {
	bytes, frames, batches atomic.Int64
}

// hello is the first frame on every connection, always gob-encoded (the
// pre-negotiation codec both ends share). Wire carries the dialler's offered
// codec; a non-empty offer obliges the acceptor to reply with its own hello
// naming the codec chosen for BOTH directions. An empty Wire is the legacy
// handshake: no reply, gob framing.
type hello struct {
	ID   string
	Wire string
}

// sendQueueDepth bounds each peer's outbound queue. A full queue blocks the
// matching worker (backpressure toward the producer) rather than growing
// without bound.
const sendQueueDepth = 256

// queuedMsg is one outbound message with its enqueue stamp (zero when flush
// timing is off or the frame is not a publication), so the writer goroutine
// can observe the flush stage: send-queue wait plus gob encode.
type queuedMsg struct {
	m   *broker.Message
	enq time.Time
}

// batchConfig is the resolved batching policy a peerConn writer runs with.
type batchConfig struct {
	interval  time.Duration // linger after the first staged frame; 0 = none
	maxBytes  int           // flush once this many bytes are staged
	maxFrames int           // flush once this many frames are staged
}

// peerConn is one live connection with its ordered send queue. All writes
// funnel through the queue and are encoded by a single writer goroutine, so
// messages reach the peer in enqueue order without a per-write lock. The
// queue channel itself is never closed (many goroutines may be sending);
// the writer is stopped via the stop channel and announces its exit on done.
//
// The writer batches: it stages the message it woke up for, opportunistically
// drains whatever else is already queued (up to maxFrames/maxBytes, lingering
// up to interval when configured), then flushes the whole batch in one
// vectored write. Under load batches grow toward the caps and the per-message
// syscall cost vanishes; an idle link flushes every message immediately, so
// batching adds no latency unless a linger interval explicitly asks for it.
type peerConn struct {
	conn  net.Conn
	fw    frameWriter
	queue chan queuedMsg
	flush *metrics.Histogram // flush-stage histogram; nil disables timing
	batch batchConfig
	agg   *wireAgg      // server-wide per-codec tx aggregates; nil in tests
	stop  chan struct{} // signalled by shutdown
	done  chan struct{} // closed when the writer exits
	once  sync.Once

	// batchCounts is a log2 histogram of frames-per-flush (bucket i covers
	// (2^(i-1), 2^i]); batches is its total. Read by LinkStatus.
	batchCounts [9]atomic.Int64
	batches     atomic.Int64
}

func newPeerConn(conn net.Conn, fw frameWriter, flush *metrics.Histogram, batch batchConfig, agg *wireAgg) *peerConn {
	p := &peerConn{
		conn:  conn,
		fw:    fw,
		queue: make(chan queuedMsg, sendQueueDepth),
		flush: flush,
		batch: batch,
		agg:   agg,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go p.runWriter()
	return p
}

// runWriter is the connection's single writer goroutine: stage, drain, flush.
func (p *peerConn) runWriter() {
	defer close(p.done)
	enqs := make([]time.Time, 0, 16)
	var timer *time.Timer
	var lastBytes int64
	for {
		var qm queuedMsg
		select {
		case <-p.stop:
			return
		case qm = <-p.queue:
		}
		enqs = enqs[:0]
		if err := p.fw.Queue(qm.m); err != nil {
			p.conn.Close() // unblocks the connection's read loop
			return
		}
		if !qm.enq.IsZero() {
			enqs = append(enqs, qm.enq)
		}
		frames := 1
		var timerC <-chan time.Time
		if p.batch.interval > 0 {
			if timer == nil {
				timer = time.NewTimer(p.batch.interval)
			} else {
				timer.Reset(p.batch.interval)
			}
			timerC = timer.C
		}
	fill:
		for frames < p.batch.maxFrames && p.fw.Pending() < p.batch.maxBytes {
			if timerC == nil {
				select {
				case <-p.stop:
					return
				case qm = <-p.queue:
				default:
					break fill
				}
			} else {
				select {
				case <-p.stop:
					return
				case qm = <-p.queue:
				case <-timerC:
					timerC = nil
					break fill
				}
			}
			if err := p.fw.Queue(qm.m); err != nil {
				p.conn.Close()
				return
			}
			if !qm.enq.IsZero() {
				enqs = append(enqs, qm.enq)
			}
			frames++
		}
		if timerC != nil && !timer.Stop() {
			<-timer.C
		}
		if err := p.fw.Flush(); err != nil {
			p.conn.Close()
			return
		}
		p.recordBatch(frames)
		if p.agg != nil {
			b := p.fw.TxBytes()
			p.agg.bytes.Add(b - lastBytes)
			lastBytes = b
			p.agg.frames.Add(int64(frames))
			p.agg.batches.Add(1)
		}
		if p.flush != nil && len(enqs) > 0 {
			now := time.Now()
			for _, e := range enqs {
				p.flush.Observe(now.Sub(e).Seconds())
			}
		}
	}
}

// recordBatch files one flush's frame count into the log2 histogram.
func (p *peerConn) recordBatch(frames int) {
	i := bits.Len(uint(frames - 1)) // 1→0, 2→1, 3..4→2, ...
	if i >= len(p.batchCounts) {
		i = len(p.batchCounts) - 1
	}
	p.batchCounts[i].Add(1)
	p.batches.Add(1)
}

// batchP50 returns the median frames-per-flush (bucket upper bound), or 0
// before the first flush.
func (p *peerConn) batchP50() float64 {
	total := p.batches.Load()
	if total == 0 {
		return 0
	}
	half := (total + 1) / 2
	var cum int64
	for i := range p.batchCounts {
		if cum += p.batchCounts[i].Load(); cum >= half {
			return float64(uint(1) << i)
		}
	}
	return float64(uint(1) << (len(p.batchCounts) - 1))
}

// write enqueues a message for the peer. It reports an error when the
// writer has already shut down (encode failure or connection close).
func (p *peerConn) write(m *broker.Message) error {
	qm := queuedMsg{m: m}
	if p.flush != nil && m.Type == broker.MsgPublish {
		qm.enq = time.Now()
	}
	select {
	case <-p.done:
		return errors.New("transport: peer writer closed")
	case <-p.stop:
		return errors.New("transport: peer shutting down")
	case p.queue <- qm:
		return nil
	}
}

// shutdown closes the connection and stops the writer goroutine.
func (p *peerConn) shutdown() {
	p.once.Do(func() { close(p.stop) })
	p.conn.Close()
}

// pubTask is one publication awaiting matching, tagged with its source.
type pubTask struct {
	m    *broker.Message
	from string
}

// Server hosts one broker behind a TCP listener.
type Server struct {
	cfg       broker.Config
	neighbors map[string]string // broker ID -> address
	opts      Options

	b     *broker.Broker
	ln    net.Listener
	peers sync.Map // peer ID -> *peerConn

	// links holds the self-healing state of each neighbour relationship
	// (retry buffer, reconnect loop, heartbeat liveness). Created lazily on
	// first contact because neighbour addresses may be filled in after
	// construction (listeners must bind before addresses exist).
	linkMu sync.Mutex
	links  map[string]*link

	// stats counts self-healing events; see Health.
	stats healthStats

	// pubQueues feeds the matching worker pool; queue index is chosen by
	// hashing the source peer ID, preserving per-connection order.
	pubQueues []chan pubTask

	// InFlight gauges publications currently queued or being matched; its
	// high-water mark shows how deep the pool has been driven.
	InFlight metrics.Gauge

	// reg mirrors cfg.Metrics: when non-nil the server registers its own
	// transport-level instruments (pool occupancy, per-peer send-queue
	// depths) next to the broker's.
	reg *metrics.Registry

	// stageDecode and stageFlush are the transport-measured spans of the
	// publish path (xbroker_stage_seconds{stage="decode"|"flush"}): the
	// broker cannot see wire read + decode time or the writer goroutine's
	// queue-drain + encode time, so the transport observes them. Nil without
	// a registry.
	stageDecode, stageFlush *metrics.Histogram

	// batchCfg is the resolved send-batching policy, shared by every
	// peerConn writer; wireTx aggregates transmit totals per codec
	// (index 0 binary, 1 gob) for the xbroker_wire_* metrics.
	batchCfg batchConfig
	wireTx   [2]wireAgg

	closed  chan struct{}
	closeMu sync.Once
	wg      sync.WaitGroup
}

// wireAggFor returns the server-wide transmit aggregate for a codec.
func (s *Server) wireAggFor(codec string) *wireAgg {
	if codec == WireBinary {
		return &s.wireTx[0]
	}
	return &s.wireTx[1]
}

// NewServer creates a broker server. neighbors maps neighbouring broker IDs
// to their TCP addresses; they are registered as overlay links immediately
// and dialled lazily. workers sizes the publication-matching pool; 0 means
// GOMAXPROCS.
func NewServer(cfg broker.Config, neighbors map[string]string) *Server {
	return NewServerWorkers(cfg, neighbors, 0)
}

// NewServerWorkers is NewServer with an explicit worker-pool size.
func NewServerWorkers(cfg broker.Config, neighbors map[string]string, workers int) *Server {
	return NewServerOptions(cfg, neighbors, Options{Workers: workers})
}

// NewServerOptions is NewServer with explicit self-healing options.
func NewServerOptions(cfg broker.Config, neighbors map[string]string, opts Options) *Server {
	opts = opts.withDefaults()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		cfg:       cfg,
		neighbors: neighbors,
		opts:      opts,
		closed:    make(chan struct{}),
		pubQueues: make([]chan pubTask, workers),
		links:     make(map[string]*link, len(neighbors)),
		batchCfg: batchConfig{
			interval:  opts.FlushInterval,
			maxBytes:  opts.MaxBatchBytes,
			maxFrames: opts.MaxBatchFrames,
		},
	}
	// The broker's flight recorder snapshots per-peer send-queue depths at
	// capture time; install the callback before the broker copies its config.
	if cfg.QueueDepths == nil {
		cfg.QueueDepths = s.QueueDepths
		s.cfg = cfg
	}
	s.b = broker.New(cfg, s.send)
	for id := range neighbors {
		s.b.AddNeighbor(id)
	}
	// Durable subscriptions recovered from the publication log re-register
	// through the normal subscribe path, which forwards upstream — hence
	// after the neighbour links exist and before any traffic.
	if cfg.Durable != nil {
		s.b.RecoverDurable()
	}
	for i := range s.pubQueues {
		s.pubQueues[i] = make(chan pubTask, sendQueueDepth)
	}
	if cfg.Metrics != nil {
		s.reg = cfg.Metrics
		const stageHelp = "Publish-path stage latency in seconds, by pipeline stage " +
			"(decode, queue, match, filter, enqueue, flush — see DESIGN.md §5f)."
		s.stageDecode = s.reg.Histogram("xbroker_stage_seconds", stageHelp,
			metrics.DefBuckets, "stage", trace.StageDecode)
		s.stageFlush = s.reg.Histogram("xbroker_stage_seconds", stageHelp,
			metrics.DefBuckets, "stage", trace.StageFlush)
		s.reg.GaugeFunc("xbroker_pool_in_flight",
			"Publications queued or being matched in the worker pool.",
			func() float64 { return float64(s.InFlight.Load()) })
		s.reg.GaugeFunc("xbroker_pool_in_flight_high",
			"High-water mark of worker-pool occupancy.",
			func() float64 { return float64(s.InFlight.High()) })
		s.reg.GaugeFunc("xbroker_pool_workers",
			"Size of the publication-matching worker pool.",
			func() float64 { return float64(len(s.pubQueues)) })
		s.registerHealthMetrics()
	}
	return s
}

// Broker exposes the underlying router for configuration before Listen. The
// broker is itself safe for concurrent use once the server is running.
func (s *Server) Broker() *broker.Broker { return s.b }

// PRTSize returns the broker's subscription-table size.
func (s *Server) PRTSize() int { return s.b.PRTSize() }

// SRTSize returns the broker's advertisement-table size.
func (s *Server) SRTSize() int { return s.b.SRTSize() }

// Stats returns the broker's counters.
func (s *Server) Stats() broker.Stats { return s.b.Stats() }

// Listen binds the server to addr (use "127.0.0.1:0" for tests), starts the
// matching worker pool and the accept loop. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s.ln = ln
	for _, q := range s.pubQueues {
		s.wg.Add(1)
		go s.matchLoop(q)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the server and drops all connections.
func (s *Server) Close() {
	s.closeMu.Do(func() { close(s.closed) })
	if s.ln != nil {
		s.ln.Close()
	}
	s.peers.Range(func(_, v any) bool {
		v.(*peerConn).shutdown()
		return true
	})
	s.wg.Wait()
}

// matchLoop is one worker of the publication-matching pool.
func (s *Server) matchLoop(q chan pubTask) {
	defer s.wg.Done()
	for {
		select {
		case <-s.closed:
			return
		case t := <-q:
			s.matchOne(t)
		}
	}
}

// matchOne matches one publication. A frame crafted to make matching panic
// (decoded off the wire from a hostile or corrupt peer) must cost that
// message, not the worker or the process; broker locks are deferred, so the
// unwind releases them.
func (s *Server) matchOne(t pubTask) {
	defer s.InFlight.Add(-1)
	defer func() { recover() }()
	s.b.HandleMessage(t.m, t.from)
}

// dispatchPublish hands a publication to the worker owning the source peer.
func (s *Server) dispatchPublish(m *broker.Message, from string) {
	h := fnv.New32a()
	h.Write([]byte(from))
	q := s.pubQueues[int(h.Sum32())%len(s.pubQueues)]
	s.InFlight.Add(1)
	select {
	case <-s.closed:
		s.InFlight.Add(-1)
	case q <- pubTask{m: m, from: from}:
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			return
		}
		if s.opts.ConnWrap != nil {
			conn = s.opts.ConnWrap(conn)
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn handles one inbound connection: the peer identifies itself with
// a hello frame, a codec is negotiated (see hello), and frames stream in it.
// Neighbour connections attach to the neighbour's link (with a control-state
// resync); client connections go straight to the peers map.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	cr := newConnReader(conn, s.timedReads())
	hdec := gob.NewDecoder(cr.br)
	var h hello
	if err := hdec.Decode(&h); err != nil {
		return
	}
	codec := chooseWire(h.Wire, s.opts.Wire)
	cw := &countWriter{w: conn}
	henc := gob.NewEncoder(cw)
	if h.Wire != "" {
		// The reply is written synchronously, before the peerConn writer
		// exists, so it is guaranteed first on the wire from this side.
		if err := henc.Encode(hello{ID: s.cfg.ID, Wire: codec}); err != nil {
			return
		}
	}
	id := h.ID
	pc := s.newPeerConn(conn, codec, henc, cw)
	fr := cr.reader(codec, hdec)
	if l := s.linkFor(id); l != nil {
		l.attach(pc)
		l.resyncAfterAttach()
		s.readLoop(fr, cr.tr, id, l)
		l.connLost(pc)
		return
	}
	s.addPeer(id, pc)
	defer s.dropPeer(id, pc)
	s.b.AddClient(id)
	s.readLoop(fr, cr.tr, id, nil)
}

// timedReads reports whether connections should be wrapped for decode-stage
// timing (a metrics registry or a flight recorder is attached);
// uninstrumented servers read exactly as before.
func (s *Server) timedReads() bool {
	return s.stageDecode != nil || s.cfg.SlowLog != nil
}

// newPeerConn builds the connection's send side: the negotiated codec's
// frameWriter behind the batching writer goroutine.
func (s *Server) newPeerConn(conn net.Conn, codec string, henc *gob.Encoder, cw *countWriter) *peerConn {
	var fw frameWriter
	if codec == WireBinary {
		// The binary encoder writes the connection directly: a wrapper would
		// hide the net.Conn and downgrade net.Buffers to one syscall per
		// segment, which is the cost batching exists to avoid.
		fw = newBinWriter(conn)
	} else {
		fw = newGobWriter(henc, cw)
	}
	return newPeerConn(conn, fw, s.stageFlush, s.batchCfg, s.wireAggFor(codec))
}

// timedReader wraps a connection so the read loop can time the decode stage
// without counting idle socket wait: it stamps the first Read of each frame
// that actually returns bytes — when data for the frame arrived — rather
// than when the read loop started blocking. Reads happen synchronously
// inside the decoder, so no locking is needed.
type timedReader struct {
	conn  net.Conn
	at    time.Time
	armed bool
}

func (r *timedReader) Read(p []byte) (int, error) {
	n, err := r.conn.Read(p)
	if !r.armed && n > 0 {
		r.at = time.Now()
		r.armed = true
	}
	return n, err
}

// frameStart returns when the current frame's bytes first arrived, falling
// back to the decode call time for frames served entirely from the
// decoder's internal buffer, and re-arms the reader for the next frame.
func (r *timedReader) frameStart(fallback time.Time) time.Time {
	if !r.armed {
		return fallback
	}
	r.armed = false
	return r.at
}

// addPeer publishes a live connection and its queue-depth gauge. The gauge
// reads len() of the peer's channel at exposition time — no bookkeeping on
// the send path. Reconnections replace the previous gauge callback.
func (s *Server) addPeer(id string, pc *peerConn) {
	s.peers.Store(id, pc)
	if s.reg != nil {
		s.reg.GaugeFunc("xbroker_send_queue_depth",
			"Outbound messages queued toward a peer connection.",
			func() float64 { return float64(len(pc.queue)) }, "peer", id)
	}
	// A connection attached while Close is sweeping the peers map would be
	// missed by the sweep and its read loop would outlive the server. The
	// store above and this check bracket Close's close(closed)+Range pair:
	// either the sweep sees the entry, or this check sees closed.
	select {
	case <-s.closed:
		pc.shutdown()
	default:
	}
}

// readLoop decodes frames from one connection. Control messages are handled
// inline (the broker serialises them on its exclusive lock), so a peer's
// subscribe is fully applied before its next frame is read; publications go
// to the worker pool. Ordering guarantee per connection: control messages
// stay ordered among themselves and publications among themselves; a
// control message may only overtake this connection's own still-queued
// publications (concurrent by design — see DESIGN.md "Concurrency model").
//
// Heartbeat frames refresh the link's liveness clock and stop here — they
// never reach the broker. A frame that decodes into something the broker
// chokes on must cost this connection, not the process, hence the recover.
func (s *Server) readLoop(fr frameReader, tr *timedReader, id string, l *link) {
	defer func() { recover() }()
	for {
		var m broker.Message
		var decodeStart time.Time
		if tr != nil {
			decodeStart = time.Now()
		}
		if err := fr.Decode(&m); err != nil {
			// A protocol violation (hostile varint, unknown dictionary id,
			// corrupt gob stream) is a bad frame; the connection merely
			// dropping is not.
			var ne net.Error
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
				!errors.Is(err, net.ErrClosed) && !errors.As(err, &ne) {
				s.stats.badFrames.Add(1)
			}
			return
		}
		var arrived time.Time
		if tr != nil {
			// Consumed for every frame so a control frame's arrival stamp
			// never leaks into the next publication's decode span.
			arrived = tr.frameStart(decodeStart)
		}
		if l != nil {
			l.lastRecv.Store(time.Now().UnixNano())
		}
		if err := checkWire(&m); err != nil {
			// A frame outside the wire bounds costs its connection: the
			// sender is broken or hostile either way, and nothing it sent
			// can be trusted past this point.
			s.stats.badFrames.Add(1)
			return
		}
		if m.Type == broker.MsgHeartbeat {
			continue
		}
		if m.Type == broker.MsgPublish {
			if tr != nil {
				now := time.Now()
				d := now.Sub(arrived)
				if d < 0 {
					d = 0
				}
				if s.stageDecode != nil {
					s.stageDecode.Observe(d.Seconds())
				}
				m.SetArrival(d, now)
			}
			s.dispatchPublish(&m, id)
			continue
		}
		s.b.HandleMessage(&m, id)
	}
}

// dropPeer removes a peer mapping (and its queue gauge) if it still refers
// to this connection.
func (s *Server) dropPeer(id string, pc *peerConn) {
	if cur, ok := s.peers.Load(id); ok && cur == pc {
		s.peers.Delete(id)
		if s.reg != nil {
			s.reg.Unregister("xbroker_send_queue_depth", "peer", id)
		}
	}
	pc.shutdown()
}

// send delivers a message to a peer. It is called by the broker with its
// lock held (shared for publications), so it must not call back into the
// broker; enqueueing on a send queue or retry buffer is all it does.
// Neighbour traffic goes through the neighbour's link, which buffers control
// messages across outages instead of dropping them; client traffic is
// best-effort on the live connection (a gone client is gone).
func (s *Server) send(to string, m *broker.Message) {
	if l := s.linkFor(to); l != nil {
		l.deliver(m)
		return
	}
	if pc, ok := s.peers.Load(to); ok {
		if err := pc.(*peerConn).write(m); err != nil {
			s.dropPeer(to, pc.(*peerConn))
		}
	}
}

// linkFor returns the link for a neighbour ID (creating it on first
// contact), or nil when the ID is not a configured neighbour. Link creation
// also starts the neighbour's heartbeat loop when heartbeats are enabled.
func (s *Server) linkFor(id string) *link {
	s.linkMu.Lock()
	defer s.linkMu.Unlock()
	if l := s.links[id]; l != nil {
		return l
	}
	addr, ok := s.neighbors[id]
	if !ok {
		return nil
	}
	l := &link{s: s, id: id, addr: addr}
	s.links[id] = l
	if s.opts.Heartbeat > 0 {
		select {
		case <-s.closed:
		default:
			s.wg.Add(1)
			go l.heartbeatLoop()
		}
	}
	return l
}

// dialNeighbor makes one dial attempt for a down link. On success the new
// connection is attached (flushing the retry buffer), the neighbour is
// resynced, and a read loop is started.
func (s *Server) dialNeighbor(l *link) error {
	conn, err := net.DialTimeout("tcp", l.addr, s.opts.DialTimeout)
	if err != nil {
		return fmt.Errorf("transport: dial %s (%s): %w", l.id, l.addr, err)
	}
	if s.opts.ConnWrap != nil {
		conn = s.opts.ConnWrap(conn)
	}
	cr := newConnReader(conn, s.timedReads())
	cw := &countWriter{w: conn}
	henc := gob.NewEncoder(cw)
	offer := ""
	if s.opts.Wire == WireBinary {
		offer = WireBinary
	}
	if err := henc.Encode(hello{ID: s.cfg.ID, Wire: offer}); err != nil {
		conn.Close()
		return fmt.Errorf("transport: hello to %s: %w", l.id, err)
	}
	hdec := gob.NewDecoder(cr.br)
	codec := WireGob
	if offer != "" {
		// An offer obliges a codec-aware acceptor to reply before anything
		// else. A peer that stays silent past the deadline predates the
		// negotiation (legacy peers never reply), so the dialer falls back
		// to gob — the codec every version speaks — and lets the heartbeat
		// machinery judge the connection from there. Any other failure is a
		// real protocol error and costs the dial attempt.
		conn.SetReadDeadline(time.Now().Add(s.opts.DialTimeout))
		var reply hello
		if err := hdec.Decode(&reply); err != nil {
			var ne net.Error
			if !errors.As(err, &ne) || !ne.Timeout() {
				conn.Close()
				return fmt.Errorf("transport: hello reply from %s: %w", l.id, err)
			}
		} else if reply.Wire != WireBinary && reply.Wire != WireGob {
			conn.Close()
			return fmt.Errorf("transport: %s negotiated unknown codec %q", l.id, reply.Wire)
		} else {
			codec = reply.Wire
		}
		conn.SetReadDeadline(time.Time{})
	}
	pc := s.newPeerConn(conn, codec, henc, cw)
	l.attach(pc)
	l.resyncAfterAttach()
	// The dialled neighbour speaks back on the same connection.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer conn.Close()
		s.readLoop(cr.reader(codec, hdec), cr.tr, l.id, l)
		l.connLost(pc)
	}()
	return nil
}

// ClientOptions tunes a client's reconnect behaviour. The zero value keeps
// the historical semantics: the connection dropping closes Deliveries.
type ClientOptions struct {
	// Reconnect makes the client redial its edge broker when the
	// connection drops, replay its recorded control state (live
	// subscriptions and advertisements), and keep the Deliveries channel
	// open across the swap.
	Reconnect bool
	// ReconnectMin and ReconnectMax bound the redial backoff (defaults
	// 50ms and 2s).
	ReconnectMin, ReconnectMax time.Duration
	// DialBudget caps consecutive failed redials per outage; once spent
	// the client gives up and closes Deliveries. 0 means unlimited.
	DialBudget int
	// Wire selects the codec the client offers: WireBinary (the default)
	// or WireGob. The broker may still negotiate a binary offer down to
	// gob; WireGob skips the offer entirely (legacy handshake).
	Wire string
	// Durable names a durable subscription on the edge broker. When set,
	// subscriptions sent through this client register under that name:
	// matched publications are sequenced and logged broker-side, and on
	// every (re)attach the broker replays the gap above the acknowledged
	// cursor. Deliveries then carry Durable and Seq, and the client (or
	// AutoAck) acknowledges them to advance the cursor.
	Durable string
	// AutoAck acknowledges each durable delivery as soon as it has been
	// handed to the Deliveries channel. Leave false to ack explicitly via
	// Ack after processing — the at-least-once window is then bounded by
	// the application, not the channel.
	AutoAck bool
	// OnAck, when set, observes every acknowledgement this client sends
	// (auto or explicit) after it has been queued to the broker.
	OnAck func(seq uint64)
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.ReconnectMin <= 0 {
		o.ReconnectMin = 50 * time.Millisecond
	}
	if o.ReconnectMax <= 0 {
		o.ReconnectMax = 2 * time.Second
	}
	if o.Wire == "" {
		o.Wire = WireBinary
	}
	return o
}

// Client is a publisher/subscriber endpoint over TCP.
type Client struct {
	ID string

	addr string
	opts ClientOptions

	mu   sync.Mutex
	conn net.Conn
	fw   frameWriter
	// record holds the client's live control state (subscriptions and
	// advertisements, withdrawals removed) — what a reconnect replays so
	// the restarted or recovered edge broker serves the client again.
	record []*broker.Message

	// Reconnects counts successful redials — observability for callers and
	// tests.
	Reconnects atomic.Int64

	// Deliveries receives publications matching the client's
	// subscriptions. The channel is closed when the connection drops and
	// reconnection is disabled, exhausted, or the client is closed.
	Deliveries chan *broker.Message

	closed    chan struct{}
	closeOnce sync.Once
}

// Dial connects a client to its edge broker. The connection dropping closes
// Deliveries; use DialOptions for a self-healing client.
func Dial(addr, id string) (*Client, error) {
	return DialOptions(addr, id, ClientOptions{})
}

// DialOptions is Dial with explicit reconnect options.
func DialOptions(addr, id string, opts ClientOptions) (*Client, error) {
	opts = opts.withDefaults()
	conn, fw, fr, err := clientHandshake(addr, id, opts)
	if err != nil {
		return nil, err
	}
	c := &Client{
		ID:         id,
		addr:       addr,
		opts:       opts,
		conn:       conn,
		fw:         fw,
		Deliveries: make(chan *broker.Message, 1024),
		closed:     make(chan struct{}),
	}
	go c.readLoop(conn, fr)
	return c, nil
}

// clientHandshake dials the edge broker and negotiates the wire codec,
// returning the connection with its frame writer and reader.
func clientHandshake(addr, id string, opts ClientOptions) (net.Conn, frameWriter, frameReader, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("transport: client dial %s: %w", addr, err)
	}
	cr := newConnReader(conn, false)
	cw := &countWriter{w: conn}
	henc := gob.NewEncoder(cw)
	offer := ""
	if opts.Wire == WireBinary {
		offer = WireBinary
	}
	if err := henc.Encode(hello{ID: id, Wire: offer}); err != nil {
		conn.Close()
		return nil, nil, nil, fmt.Errorf("transport: client hello: %w", err)
	}
	hdec := gob.NewDecoder(cr.br)
	codec := WireGob
	if offer != "" {
		// Same legacy fallback as dialNeighbor: a broker silent past the
		// deadline predates negotiation, so continue in gob.
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		var reply hello
		if err := hdec.Decode(&reply); err != nil {
			var ne net.Error
			if !errors.As(err, &ne) || !ne.Timeout() {
				conn.Close()
				return nil, nil, nil, fmt.Errorf("transport: client hello reply: %w", err)
			}
		} else if reply.Wire != WireBinary && reply.Wire != WireGob {
			conn.Close()
			return nil, nil, nil, fmt.Errorf("transport: broker negotiated unknown codec %q", reply.Wire)
		} else {
			codec = reply.Wire
		}
		conn.SetReadDeadline(time.Time{})
	}
	var fw frameWriter
	if codec == WireBinary {
		fw = newBinWriter(conn)
	} else {
		fw = newGobWriter(henc, cw)
	}
	return conn, fw, cr.reader(codec, hdec), nil
}

// Codec reports the wire codec the current connection negotiated.
func (c *Client) Codec() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fw.Codec()
}

func (c *Client) readLoop(conn net.Conn, fr frameReader) {
	for {
		for {
			var m broker.Message
			if err := fr.Decode(&m); err != nil {
				goto redial
			}
			c.Deliveries <- &m
			if c.opts.AutoAck && m.Type == broker.MsgPublish && m.Durable != "" {
				c.Ack(m.Seq)
			}
		}
	redial:
		conn.Close()
		next, nfr := c.redial()
		if next == nil {
			close(c.Deliveries)
			return
		}
		conn, fr = next, nfr
	}
}

// redial re-establishes the connection with exponential backoff — codec
// negotiation included, so a broker restarted in a different wire mode is
// still rejoined — replaying the recorded control state once connected. It
// returns nils when reconnection is disabled, the client was closed, or the
// dial budget ran out.
func (c *Client) redial() (net.Conn, frameReader) {
	if !c.opts.Reconnect {
		return nil, nil
	}
	backoff := c.opts.ReconnectMin
	attempts := 0
	for {
		select {
		case <-c.closed:
			return nil, nil
		default:
		}
		conn, fw, fr, err := clientHandshake(c.addr, c.ID, c.opts)
		if err == nil {
			// Swap and replay under the send lock so no Send interleaves
			// with the replayed record on the fresh stream.
			c.mu.Lock()
			c.conn, c.fw = conn, fw
			replayed := true
			for _, m := range c.record {
				if writeFrame(fw, m) != nil {
					replayed = false
					break
				}
			}
			c.mu.Unlock()
			if replayed {
				c.Reconnects.Add(1)
				return conn, fr
			}
			conn.Close()
		}
		attempts++
		if b := c.opts.DialBudget; b > 0 && attempts >= b {
			return nil, nil
		}
		select {
		case <-c.closed:
			return nil, nil
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > c.opts.ReconnectMax {
			backoff = c.opts.ReconnectMax
		}
	}
}

// recordControl maintains the replayable control state under c.mu:
// withdrawals cancel the matching prior message instead of being recorded.
// Replaying a recorded durable subscription doubles as reattach: the broker
// responds with the unacknowledged gap bracketed in replay markers.
func (c *Client) recordControl(m *broker.Message) {
	switch m.Type {
	case broker.MsgSubscribe, broker.MsgAdvertise, broker.MsgSubscribeDurable:
		c.record = append(c.record, m)
	case broker.MsgUnsubscribe:
		c.dropRecord(func(r *broker.Message) bool {
			return r.Type == broker.MsgSubscribe && r.XPE.Key() == m.XPE.Key()
		})
	case broker.MsgUnadvertise:
		c.dropRecord(func(r *broker.Message) bool {
			return r.Type == broker.MsgAdvertise && r.AdvID == m.AdvID
		})
	}
}

func (c *Client) dropRecord(match func(*broker.Message) bool) {
	for i, r := range c.record {
		if match(r) {
			c.record = append(c.record[:i], c.record[i+1:]...)
			return
		}
	}
}

// Send submits any message to the edge broker. With reconnection enabled, a
// control message that hits a dead connection is not an error: it is
// recorded and will be replayed when the redial succeeds. Publications are
// never deferred — the caller learns the connection is down and decides.
func (c *Client) Send(m *broker.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m.Type == broker.MsgPublish && m.Stamp == 0 {
		m.Stamp = time.Now().UnixNano()
	}
	// A durable client's subscriptions register under its durable name.
	if c.opts.Durable != "" && m.Type == broker.MsgSubscribe {
		m.Type = broker.MsgSubscribeDurable
		m.Durable = c.opts.Durable
	}
	if c.opts.Reconnect {
		c.recordControl(m)
	}
	if err := writeFrame(c.fw, m); err != nil {
		if c.opts.Reconnect && m.Type != broker.MsgPublish {
			return nil
		}
		return fmt.Errorf("transport: send: %w", err)
	}
	return nil
}

// Ack acknowledges every durable delivery up to and including seq,
// advancing the broker-side cursor. With reconnection enabled an ack that
// hits a dead connection is silently dropped — the cursor simply advances
// less far and the next reattach replays a little more, which
// at-least-once delivery permits.
func (c *Client) Ack(seq uint64) error {
	if c.opts.Durable == "" {
		return errors.New("transport: Ack on a non-durable client")
	}
	err := c.Send(&broker.Message{Type: broker.MsgAck, Durable: c.opts.Durable, Seq: seq})
	if c.opts.OnAck != nil {
		c.opts.OnAck(seq)
	}
	return err
}

// Close drops the connection and stops any reconnection.
func (c *Client) Close() {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.mu.Lock()
		c.conn.Close()
		c.mu.Unlock()
	})
}

// WaitDelivery receives one delivery with a timeout.
func (c *Client) WaitDelivery(timeout time.Duration) (*broker.Message, error) {
	select {
	case m, ok := <-c.Deliveries:
		if !ok {
			return nil, errors.New("transport: connection closed")
		}
		return m, nil
	case <-time.After(timeout):
		return nil, errors.New("transport: delivery timeout")
	}
}
