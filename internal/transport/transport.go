// Package transport deploys brokers over real TCP connections — the mode the
// paper ran on its cluster and on PlanetLab. Peers exchange gob-encoded
// frames over persistent connections; each connection begins with a hello
// frame identifying the peer, after which either side streams messages.
//
// The discrete-event simulator (package sim) is the tool for controlled
// experiments; this package is the deployable counterpart with identical
// broker semantics.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/broker"
)

// hello is the first frame on every connection.
type hello struct {
	ID string
}

// peerConn is one live connection with its write lock.
type peerConn struct {
	conn net.Conn
	enc  *gob.Encoder
	mu   sync.Mutex
}

func (p *peerConn) write(m *broker.Message) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.enc.Encode(m)
}

// Server hosts one broker behind a TCP listener.
type Server struct {
	cfg       broker.Config
	neighbors map[string]string // broker ID -> address

	mu    sync.Mutex // serialises broker handling
	b     *broker.Broker
	ln    net.Listener
	peers sync.Map // peer ID -> *peerConn

	closed  chan struct{}
	closeMu sync.Once
	wg      sync.WaitGroup
}

// NewServer creates a broker server. neighbors maps neighbouring broker IDs
// to their TCP addresses; they are registered as overlay links immediately
// and dialled lazily.
func NewServer(cfg broker.Config, neighbors map[string]string) *Server {
	s := &Server{
		cfg:       cfg,
		neighbors: neighbors,
		closed:    make(chan struct{}),
	}
	s.b = broker.New(cfg, s.send)
	for id := range neighbors {
		s.b.AddNeighbor(id)
	}
	return s
}

// Broker exposes the underlying router for configuration before Listen;
// once the server is running, use the locked accessors below.
func (s *Server) Broker() *broker.Broker { return s.b }

// PRTSize returns the broker's subscription-table size under the server
// lock.
func (s *Server) PRTSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.PRTSize()
}

// SRTSize returns the broker's advertisement-table size under the server
// lock.
func (s *Server) SRTSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.SRTSize()
}

// Stats returns the broker's counters under the server lock.
func (s *Server) Stats() broker.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Stats()
}

// Listen binds the server to addr (use "127.0.0.1:0" for tests) and starts
// the accept loop. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the server and drops all connections.
func (s *Server) Close() {
	s.closeMu.Do(func() { close(s.closed) })
	if s.ln != nil {
		s.ln.Close()
	}
	s.peers.Range(func(_, v any) bool {
		v.(*peerConn).conn.Close()
		return true
	})
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			return
		}
		s.wg.Add(1)
		go s.serveConn(conn, "")
	}
}

// serveConn handles one connection. If expectID is empty the peer
// identifies itself with a hello; otherwise the connection was dialled and
// the remote ID is already known (we still read its hello for symmetry).
func (s *Server) serveConn(conn net.Conn, expectID string) {
	defer s.wg.Done()
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var h hello
	if err := dec.Decode(&h); err != nil {
		return
	}
	id := h.ID
	if expectID != "" && id != expectID {
		return // neighbour misconfiguration
	}
	pc := &peerConn{conn: conn, enc: enc}
	s.peers.Store(id, pc)
	defer s.peers.Delete(id)
	if _, isNeighbor := s.neighbors[id]; !isNeighbor {
		s.mu.Lock()
		s.b.AddClient(id)
		s.mu.Unlock()
	}
	for {
		var m broker.Message
		if err := dec.Decode(&m); err != nil {
			return
		}
		s.mu.Lock()
		s.b.HandleMessage(&m, id)
		s.mu.Unlock()
	}
}

// send delivers a message to a peer, dialling neighbours on demand.
func (s *Server) send(to string, m *broker.Message) {
	if pc, ok := s.peers.Load(to); ok {
		if err := pc.(*peerConn).write(m); err != nil {
			s.peers.Delete(to)
		}
		return
	}
	addr, isNeighbor := s.neighbors[to]
	if !isNeighbor {
		return // disconnected client
	}
	pc, err := s.dial(to, addr)
	if err != nil {
		return
	}
	if err := pc.write(m); err != nil {
		s.peers.Delete(to)
	}
}

func (s *Server) dial(id, addr string) (*peerConn, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s (%s): %w", id, addr, err)
	}
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(hello{ID: s.cfg.ID}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: hello to %s: %w", id, err)
	}
	pc := &peerConn{conn: conn, enc: enc}
	s.peers.Store(id, pc)
	// The dialled neighbour may speak back on the same connection.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer conn.Close()
		defer s.peers.Delete(id)
		dec := gob.NewDecoder(conn)
		for {
			var m broker.Message
			if err := dec.Decode(&m); err != nil {
				return
			}
			s.mu.Lock()
			s.b.HandleMessage(&m, id)
			s.mu.Unlock()
		}
	}()
	return pc, nil
}

// Client is a publisher/subscriber endpoint over TCP.
type Client struct {
	ID string

	conn net.Conn
	enc  *gob.Encoder
	mu   sync.Mutex

	// Deliveries receives publications matching the client's
	// subscriptions. The channel is closed when the connection drops.
	Deliveries chan *broker.Message

	closeOnce sync.Once
}

// Dial connects a client to its edge broker.
func Dial(addr, id string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("transport: client dial %s: %w", addr, err)
	}
	c := &Client{
		ID:         id,
		conn:       conn,
		enc:        gob.NewEncoder(conn),
		Deliveries: make(chan *broker.Message, 1024),
	}
	if err := c.enc.Encode(hello{ID: id}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: client hello: %w", err)
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	dec := gob.NewDecoder(c.conn)
	for {
		var m broker.Message
		if err := dec.Decode(&m); err != nil {
			close(c.Deliveries)
			return
		}
		c.Deliveries <- &m
	}
}

// Send submits any message to the edge broker.
func (c *Client) Send(m *broker.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m.Type == broker.MsgPublish && m.Stamp == 0 {
		m.Stamp = time.Now().UnixNano()
	}
	if err := c.enc.Encode(m); err != nil {
		return fmt.Errorf("transport: send: %w", err)
	}
	return nil
}

// Close drops the connection.
func (c *Client) Close() {
	c.closeOnce.Do(func() { c.conn.Close() })
}

// WaitDelivery receives one delivery with a timeout.
func (c *Client) WaitDelivery(timeout time.Duration) (*broker.Message, error) {
	select {
	case m, ok := <-c.Deliveries:
		if !ok {
			return nil, errors.New("transport: connection closed")
		}
		return m, nil
	case <-time.After(timeout):
		return nil, errors.New("transport: delivery timeout")
	}
}
