// Package transport deploys brokers over real TCP connections — the mode the
// paper ran on its cluster and on PlanetLab. Peers exchange gob-encoded
// frames over persistent connections; each connection begins with a hello
// frame identifying the peer, after which either side streams messages.
//
// The discrete-event simulator (package sim) is the tool for controlled
// experiments; this package is the deployable counterpart with identical
// broker semantics.
//
// Concurrency: the server no longer serialises all broker handling behind
// one mutex. The broker itself orders its two planes (control messages
// exclusive, publications shared — see package broker); on top of that the
// server runs a bounded worker pool that matches publications from
// concurrent client connections in parallel. Publications are dispatched to
// a worker chosen by the source peer's ID, so the publications of one
// connection are processed in arrival order while different connections
// spread across workers. Outbound messages fan in to one ordered send queue
// per peer connection, drained by a single writer goroutine, so each peer
// observes deliveries in enqueue order.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/metrics"
)

// hello is the first frame on every connection.
type hello struct {
	ID string
}

// sendQueueDepth bounds each peer's outbound queue. A full queue blocks the
// matching worker (backpressure toward the producer) rather than growing
// without bound.
const sendQueueDepth = 256

// peerConn is one live connection with its ordered send queue. All writes
// funnel through the queue and are encoded by a single writer goroutine, so
// messages reach the peer in enqueue order without a per-write lock. The
// queue channel itself is never closed (many goroutines may be sending);
// the writer is stopped via the stop channel and announces its exit on done.
type peerConn struct {
	conn  net.Conn
	queue chan *broker.Message
	stop  chan struct{} // signalled by shutdown
	done  chan struct{} // closed when the writer exits
	once  sync.Once
}

func newPeerConn(conn net.Conn, enc *gob.Encoder) *peerConn {
	p := &peerConn{
		conn:  conn,
		queue: make(chan *broker.Message, sendQueueDepth),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go func() {
		defer close(p.done)
		for {
			select {
			case <-p.stop:
				return
			case m := <-p.queue:
				if err := enc.Encode(m); err != nil {
					p.conn.Close() // unblocks the connection's read loop
					return
				}
			}
		}
	}()
	return p
}

// write enqueues a message for the peer. It reports an error when the
// writer has already shut down (encode failure or connection close).
func (p *peerConn) write(m *broker.Message) error {
	select {
	case <-p.done:
		return errors.New("transport: peer writer closed")
	case <-p.stop:
		return errors.New("transport: peer shutting down")
	case p.queue <- m:
		return nil
	}
}

// shutdown closes the connection and stops the writer goroutine.
func (p *peerConn) shutdown() {
	p.once.Do(func() { close(p.stop) })
	p.conn.Close()
}

// pubTask is one publication awaiting matching, tagged with its source.
type pubTask struct {
	m    *broker.Message
	from string
}

// Server hosts one broker behind a TCP listener.
type Server struct {
	cfg       broker.Config
	neighbors map[string]string // broker ID -> address

	b     *broker.Broker
	ln    net.Listener
	peers sync.Map // peer ID -> *peerConn

	// pubQueues feeds the matching worker pool; queue index is chosen by
	// hashing the source peer ID, preserving per-connection order.
	pubQueues []chan pubTask

	// InFlight gauges publications currently queued or being matched; its
	// high-water mark shows how deep the pool has been driven.
	InFlight metrics.Gauge

	// reg mirrors cfg.Metrics: when non-nil the server registers its own
	// transport-level instruments (pool occupancy, per-peer send-queue
	// depths) next to the broker's.
	reg *metrics.Registry

	closed  chan struct{}
	closeMu sync.Once
	wg      sync.WaitGroup
}

// NewServer creates a broker server. neighbors maps neighbouring broker IDs
// to their TCP addresses; they are registered as overlay links immediately
// and dialled lazily. workers sizes the publication-matching pool; 0 means
// GOMAXPROCS.
func NewServer(cfg broker.Config, neighbors map[string]string) *Server {
	return NewServerWorkers(cfg, neighbors, 0)
}

// NewServerWorkers is NewServer with an explicit worker-pool size.
func NewServerWorkers(cfg broker.Config, neighbors map[string]string, workers int) *Server {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		cfg:       cfg,
		neighbors: neighbors,
		closed:    make(chan struct{}),
		pubQueues: make([]chan pubTask, workers),
	}
	s.b = broker.New(cfg, s.send)
	for id := range neighbors {
		s.b.AddNeighbor(id)
	}
	for i := range s.pubQueues {
		s.pubQueues[i] = make(chan pubTask, sendQueueDepth)
	}
	if cfg.Metrics != nil {
		s.reg = cfg.Metrics
		s.reg.GaugeFunc("xbroker_pool_in_flight",
			"Publications queued or being matched in the worker pool.",
			func() float64 { return float64(s.InFlight.Load()) })
		s.reg.GaugeFunc("xbroker_pool_in_flight_high",
			"High-water mark of worker-pool occupancy.",
			func() float64 { return float64(s.InFlight.High()) })
		s.reg.GaugeFunc("xbroker_pool_workers",
			"Size of the publication-matching worker pool.",
			func() float64 { return float64(len(s.pubQueues)) })
	}
	return s
}

// Broker exposes the underlying router for configuration before Listen. The
// broker is itself safe for concurrent use once the server is running.
func (s *Server) Broker() *broker.Broker { return s.b }

// PRTSize returns the broker's subscription-table size.
func (s *Server) PRTSize() int { return s.b.PRTSize() }

// SRTSize returns the broker's advertisement-table size.
func (s *Server) SRTSize() int { return s.b.SRTSize() }

// Stats returns the broker's counters.
func (s *Server) Stats() broker.Stats { return s.b.Stats() }

// Listen binds the server to addr (use "127.0.0.1:0" for tests), starts the
// matching worker pool and the accept loop. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s.ln = ln
	for _, q := range s.pubQueues {
		s.wg.Add(1)
		go s.matchLoop(q)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the server and drops all connections.
func (s *Server) Close() {
	s.closeMu.Do(func() { close(s.closed) })
	if s.ln != nil {
		s.ln.Close()
	}
	s.peers.Range(func(_, v any) bool {
		v.(*peerConn).shutdown()
		return true
	})
	s.wg.Wait()
}

// matchLoop is one worker of the publication-matching pool.
func (s *Server) matchLoop(q chan pubTask) {
	defer s.wg.Done()
	for {
		select {
		case <-s.closed:
			return
		case t := <-q:
			s.b.HandleMessage(t.m, t.from)
			s.InFlight.Add(-1)
		}
	}
}

// dispatchPublish hands a publication to the worker owning the source peer.
func (s *Server) dispatchPublish(m *broker.Message, from string) {
	h := fnv.New32a()
	h.Write([]byte(from))
	q := s.pubQueues[int(h.Sum32())%len(s.pubQueues)]
	s.InFlight.Add(1)
	select {
	case <-s.closed:
		s.InFlight.Add(-1)
	case q <- pubTask{m: m, from: from}:
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			return
		}
		s.wg.Add(1)
		go s.serveConn(conn, "")
	}
}

// serveConn handles one connection. If expectID is empty the peer
// identifies itself with a hello; otherwise the connection was dialled and
// the remote ID is already known (we still read its hello for symmetry).
func (s *Server) serveConn(conn net.Conn, expectID string) {
	defer s.wg.Done()
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var h hello
	if err := dec.Decode(&h); err != nil {
		return
	}
	id := h.ID
	if expectID != "" && id != expectID {
		return // neighbour misconfiguration
	}
	pc := newPeerConn(conn, enc)
	s.addPeer(id, pc)
	defer s.dropPeer(id, pc)
	if _, isNeighbor := s.neighbors[id]; !isNeighbor {
		s.b.AddClient(id)
	}
	s.readLoop(dec, id)
}

// addPeer publishes a live connection and its queue-depth gauge. The gauge
// reads len() of the peer's channel at exposition time — no bookkeeping on
// the send path. Reconnections replace the previous gauge callback.
func (s *Server) addPeer(id string, pc *peerConn) {
	s.peers.Store(id, pc)
	if s.reg != nil {
		s.reg.GaugeFunc("xbroker_send_queue_depth",
			"Outbound messages queued toward a peer connection.",
			func() float64 { return float64(len(pc.queue)) }, "peer", id)
	}
}

// readLoop decodes frames from one connection. Control messages are handled
// inline (the broker serialises them on its exclusive lock), so a peer's
// subscribe is fully applied before its next frame is read; publications go
// to the worker pool. Ordering guarantee per connection: control messages
// stay ordered among themselves and publications among themselves; a
// control message may only overtake this connection's own still-queued
// publications (concurrent by design — see DESIGN.md "Concurrency model").
func (s *Server) readLoop(dec *gob.Decoder, id string) {
	for {
		var m broker.Message
		if err := dec.Decode(&m); err != nil {
			return
		}
		if m.Type == broker.MsgPublish {
			s.dispatchPublish(&m, id)
			continue
		}
		s.b.HandleMessage(&m, id)
	}
}

// dropPeer removes a peer mapping (and its queue gauge) if it still refers
// to this connection.
func (s *Server) dropPeer(id string, pc *peerConn) {
	if cur, ok := s.peers.Load(id); ok && cur == pc {
		s.peers.Delete(id)
		if s.reg != nil {
			s.reg.Unregister("xbroker_send_queue_depth", "peer", id)
		}
	}
	pc.shutdown()
}

// send delivers a message to a peer, dialling neighbours on demand. It is
// called by the broker with its lock held (shared for publications), so it
// must not call back into the broker; enqueueing on the peer's send queue
// is all it does.
func (s *Server) send(to string, m *broker.Message) {
	if pc, ok := s.peers.Load(to); ok {
		if err := pc.(*peerConn).write(m); err != nil {
			s.dropPeer(to, pc.(*peerConn))
		}
		return
	}
	addr, isNeighbor := s.neighbors[to]
	if !isNeighbor {
		return // disconnected client
	}
	pc, err := s.dial(to, addr)
	if err != nil {
		return
	}
	if err := pc.write(m); err != nil {
		s.dropPeer(to, pc)
	}
}

func (s *Server) dial(id, addr string) (*peerConn, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s (%s): %w", id, addr, err)
	}
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(hello{ID: s.cfg.ID}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: hello to %s: %w", id, err)
	}
	pc := newPeerConn(conn, enc)
	s.addPeer(id, pc)
	// The dialled neighbour may speak back on the same connection.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer conn.Close()
		defer s.dropPeer(id, pc)
		dec := gob.NewDecoder(conn)
		s.readLoop(dec, id)
	}()
	return pc, nil
}

// Client is a publisher/subscriber endpoint over TCP.
type Client struct {
	ID string

	conn net.Conn
	enc  *gob.Encoder
	mu   sync.Mutex

	// Deliveries receives publications matching the client's
	// subscriptions. The channel is closed when the connection drops.
	Deliveries chan *broker.Message

	closeOnce sync.Once
}

// Dial connects a client to its edge broker.
func Dial(addr, id string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("transport: client dial %s: %w", addr, err)
	}
	c := &Client{
		ID:         id,
		conn:       conn,
		enc:        gob.NewEncoder(conn),
		Deliveries: make(chan *broker.Message, 1024),
	}
	if err := c.enc.Encode(hello{ID: id}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: client hello: %w", err)
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	dec := gob.NewDecoder(c.conn)
	for {
		var m broker.Message
		if err := dec.Decode(&m); err != nil {
			close(c.Deliveries)
			return
		}
		c.Deliveries <- &m
	}
}

// Send submits any message to the edge broker.
func (c *Client) Send(m *broker.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m.Type == broker.MsgPublish && m.Stamp == 0 {
		m.Stamp = time.Now().UnixNano()
	}
	if err := c.enc.Encode(m); err != nil {
		return fmt.Errorf("transport: send: %w", err)
	}
	return nil
}

// Close drops the connection.
func (c *Client) Close() {
	c.closeOnce.Do(func() { c.conn.Close() })
}

// WaitDelivery receives one delivery with a timeout.
func (c *Client) WaitDelivery(timeout time.Duration) (*broker.Message, error) {
	select {
	case m, ok := <-c.Deliveries:
		if !ok {
			return nil, errors.New("transport: connection closed")
		}
		return m, nil
	case <-time.After(timeout):
		return nil, errors.New("transport: delivery timeout")
	}
}
