package transport

import (
	"encoding/gob"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/faultinject"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

func fastClient() ClientOptions {
	return ClientOptions{
		Reconnect:    true,
		ReconnectMin: 2 * time.Millisecond,
		ReconnectMax: 20 * time.Millisecond,
	}
}

// startEdge boots a single broker with the given connection faults.
func startEdge(t *testing.T, wrap func(net.Conn) net.Conn) (*Server, string) {
	t.Helper()
	opts := fastHeal()
	opts.ConnWrap = wrap
	cfg := broker.Config{}
	cfg.ID = "b1"
	s := NewServerOptions(cfg, nil, opts)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, addr
}

// A reconnecting client whose connection is killed mid-stream must redial,
// replay its subscriptions, and keep delivering on the same Deliveries
// channel.
func TestClientReconnectReplaysSubscriptions(t *testing.T) {
	// The subscriber's first connection dies on the second raw read — at
	// latest right after the subscribe frame, whether or not it coalesced
	// with the hello; everything after reconnects cleanly.
	s, addr := startEdge(t, faultinject.Sequence(
		faultinject.ConnFaults{CloseAfterReads: 2},
	))

	sub, err := DialOptions(addr, "sub", fastClient())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	deliveries := sub.Deliveries // must be the same channel after the swap

	if err := sub.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/a")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.PRTSize() == 1 })
	// The injected fault kills the connection; the client must come back
	// and the replayed subscription must keep the table intact.
	waitFor(t, func() bool { return sub.Reconnects.Load() >= 1 })
	waitFor(t, func() bool { return s.PRTSize() == 1 })

	pub, err := Dial(addr, "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Send(&broker.Message{Type: broker.MsgPublish, Pub: xmldoc.Publication{Path: []string{"a", "b"}}}); err != nil {
		t.Fatal(err)
	}
	m, err := sub.WaitDelivery(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Pub.Path) != 2 || m.Pub.Path[0] != "a" {
		t.Errorf("delivered %v", m.Pub)
	}
	if sub.Deliveries != deliveries {
		t.Error("Deliveries channel was replaced across the reconnect")
	}
}

// Without Reconnect the historical contract holds: the connection dropping
// closes Deliveries.
func TestClientDefaultClosesOnDrop(t *testing.T) {
	_, addr := startEdge(t, faultinject.Sequence(
		faultinject.ConnFaults{CloseAfterReads: 2},
	))
	sub, err := Dial(addr, "sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/a")}); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.WaitDelivery(5 * time.Second); err == nil {
		t.Fatal("Deliveries stayed open after the connection dropped")
	}
}

// The outage-window contract: an edge broker that dies and comes back empty
// is repopulated by the client's replayed record, and publications issued
// after the heal are delivered. Publications during the outage are lost —
// only control state survives.
func TestClientOutageWindowDelivery(t *testing.T) {
	cfg := broker.Config{}
	cfg.ID = "b1"
	s1 := NewServerOptions(cfg, nil, fastHeal())
	addr, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	opts := fastClient()
	opts.ReconnectMax = 50 * time.Millisecond
	sub, err := DialOptions(addr, "sub", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/a")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s1.PRTSize() == 1 })

	// Crash the edge broker; its routing state is gone.
	s1.Close()

	// Restart empty on the same address; the client's replay must rebuild
	// the subscription without any help.
	s2 := NewServerOptions(cfg, nil, fastHeal())
	if _, err := s2.Listen(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.Close)
	waitFor(t, func() bool { return sub.Reconnects.Load() >= 1 })
	waitFor(t, func() bool { return s2.PRTSize() == 1 })

	pub, err := Dial(addr, "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Send(&broker.Message{Type: broker.MsgPublish, Pub: xmldoc.Publication{Path: []string{"a"}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.WaitDelivery(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// An unsubscribe during the session must also shrink the replayed record:
// after a reconnect the broker must only hold what is still live.
func TestClientReplaySkipsWithdrawnSubscriptions(t *testing.T) {
	cfg := broker.Config{}
	cfg.ID = "b1"
	s1 := NewServerOptions(cfg, nil, fastHeal())
	addr, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	sub, err := DialOptions(addr, "sub", fastClient())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for _, e := range []string{"/a", "/b"} {
		if err := sub.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse(e)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sub.Send(&broker.Message{Type: broker.MsgUnsubscribe, XPE: xpath.MustParse("/a")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s1.PRTSize() == 1 })

	s1.Close()
	s2 := NewServerOptions(cfg, nil, fastHeal())
	if _, err := s2.Listen(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.Close)
	waitFor(t, func() bool { return sub.Reconnects.Load() >= 1 })
	waitFor(t, func() bool { return s2.PRTSize() == 1 })
	time.Sleep(20 * time.Millisecond) // give a spurious /a replay time to land
	if got := s2.PRTSize(); got != 1 {
		t.Fatalf("PRT = %d after replay, want 1 (/a was unsubscribed)", got)
	}
}

// A corrupt frame must cost exactly the connection it arrived on: the server
// closes it, does not panic, and leaks no goroutines.
func TestCorruptFrameClosesConnNoGoroutineLeak(t *testing.T) {
	_, addr := startEdge(t, nil)
	time.Sleep(10 * time.Millisecond)
	base := runtime.NumGoroutine()

	for i := 0; i < 20; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		// A valid hello so the server registers the peer, then garbage.
		if err := sendRaw(conn, i); err != nil {
			t.Fatal(err)
		}
		// Half-close: junk that imitates an incomplete frame is legitimately
		// waited for until EOF proves it will never complete.
		if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
			t.Fatal(err)
		}
		// The server must close the connection: our read must return an
		// error and not hang.
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 256)
		var rerr error
		for rerr == nil {
			_, rerr = conn.Read(buf)
		}
		if ne, ok := rerr.(net.Error); ok && ne.Timeout() {
			t.Fatal("server left the connection open after a corrupt frame")
		}
		conn.Close()
	}

	// Every per-connection goroutine must be gone again.
	waitFor(t, func() bool { return runtime.NumGoroutine() <= base+1 })
}

// sendRaw writes a valid hello followed by a deterministically corrupt
// payload variant chosen by i.
func sendRaw(conn net.Conn, i int) error {
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(hello{ID: "evil"}); err != nil {
		return err
	}
	junk := [][]byte{
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		{0x03, 0x01, 0x02},       // plausible length prefix, bogus body
		{0x7f, 0x00},             // huge declared length, truncated
		{0x00},                   // zero-length message
		{0x41, 0x41, 0x41, 0x41}, // ASCII noise
	}
	_, err := conn.Write(junk[i%len(junk)])
	return err
}
