package transport

import (
	"net"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/faultinject"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// fastHeal returns reconnect options tuned for test time scales.
func fastHeal() Options {
	return Options{
		ReconnectMin: 2 * time.Millisecond,
		ReconnectMax: 20 * time.Millisecond,
		DialTimeout:  500 * time.Millisecond,
	}
}

// startPair boots two brokers connected to each other over loopback TCP,
// with per-server options. Like startChain, addresses are filled in after
// both listeners are bound.
func startPair(t *testing.T, cfg broker.Config, opts1, opts2 Options) (*Server, *Server, [2]string) {
	t.Helper()
	n1 := make(map[string]string)
	n2 := make(map[string]string)
	c1, c2 := cfg, cfg
	c1.ID, c2.ID = "b1", "b2"
	s1 := NewServerOptions(c1, n1, opts1)
	s2 := NewServerOptions(c2, n2, opts2)
	addr1, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr2, err := s2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n1["b2"] = addr2
	n2["b1"] = addr1
	s1.b.AddNeighbor("b2")
	s2.b.AddNeighbor("b1")
	t.Cleanup(s1.Close)
	t.Cleanup(s2.Close)
	return s1, s2, [2]string{addr1, addr2}
}

// Regression for the silent-drop bug: Server.send used to discard the
// message when the peer's connection was dead or the redial failed. Here the
// first broker-to-broker connection is killed mid-stream while a client is
// issuing subscriptions; every subscription must still reach the neighbour —
// through the retry buffer, the reconnect, and the resync that repairs
// whatever died inside the killed connection's send queue.
func TestPeerKilledMidStreamControlNotLost(t *testing.T) {
	opts1 := fastHeal()
	// First wrapped connection is the subscriber client's inbound conn
	// (untouched); the second is the dialled link to b2 — killed after a
	// handful of raw writes, mid-way through the subscription stream.
	opts1.ConnWrap = faultinject.Sequence(
		faultinject.ConnFaults{},
		faultinject.ConnFaults{CloseAfterWrites: 6},
	)
	s1, s2, _ := startPair(t, broker.Config{}, opts1, fastHeal())

	sub, err := Dial(s1.ln.Addr().String(), "c")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	const subs = 10
	for i := 0; i < subs; i++ {
		x := xpath.MustParse("/a/b" + string(rune('0'+i)))
		if err := sub.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: x}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return s2.PRTSize() == subs })

	h := s1.Health()
	if h.Disconnects == 0 {
		t.Error("the fault never fired: no disconnect recorded")
	}
	if h.Reconnects == 0 {
		t.Error("link was not re-established")
	}
	if h.Resyncs == 0 {
		t.Error("no resync after reconnect")
	}
}

// A neighbour that crashes and restarts empty must be repopulated: control
// messages issued during the outage are retry-buffered and flushed on
// reconnect, and the resync replays the state forwarded before the crash.
func TestNeighborRestartRepopulatedByResync(t *testing.T) {
	s1, s2, addrs := startPair(t, broker.Config{}, fastHeal(), fastHeal())

	sub, err := Dial(s1.ln.Addr().String(), "c")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	if err := sub.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/a")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s2.PRTSize() == 1 })

	// Crash b2. The subscription issued during the outage has nowhere to go
	// except b1's retry buffer.
	s2.Close()
	if err := sub.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/b")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s1.Health().RetryBuffered >= 1 })

	// Restart b2 empty on the same address; b1's reconnect loop finds it.
	c2 := broker.Config{}
	c2.ID = "b2"
	s3 := NewServerOptions(c2, map[string]string{"b1": addrs[0]}, fastHeal())
	if _, err := s3.Listen(addrs[1]); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s3.Close)

	// Both the buffered /b and the pre-crash /a must reappear.
	waitFor(t, func() bool { return s3.PRTSize() == 2 })

	h := s1.Health()
	if h.Reconnects == 0 {
		t.Error("no reconnect recorded")
	}
	if h.RetryFlushed == 0 {
		t.Error("retry buffer was never flushed")
	}
}

// Heartbeats must detect a peer that holds the TCP connection open but goes
// silent, and hand the connection back to the reconnect loop.
func TestHeartbeatDetectsDeadPeer(t *testing.T) {
	// A fake neighbour that accepts connections and never speaks.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()

	opts := fastHeal()
	opts.Heartbeat = 5 * time.Millisecond
	opts.DeadAfter = 20 * time.Millisecond
	cfg := broker.Config{}
	cfg.ID = "b1"
	s := NewServerOptions(cfg, map[string]string{"b2": ln.Addr().String()}, opts)
	if _, err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// Provoke the dial: any control message bound for b2.
	s.Broker().HandleMessage(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/a")}, "")
	waitFor(t, func() bool {
		h := s.Health()
		return h.HeartbeatsSent > 0 && h.DeadPeers > 0
	})
}

// An unreachable neighbour must not be redialled forever once the dial
// budget is spent — but new control traffic re-arms the link.
func TestDialBudgetExhaustionAndRevival(t *testing.T) {
	// An address nobody listens on: bind, note the port, close.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	opts := fastHeal()
	opts.DialBudget = 2
	cfg := broker.Config{}
	cfg.ID = "b1"
	s := NewServerOptions(cfg, map[string]string{"b2": deadAddr}, opts)
	if _, err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	s.Broker().HandleMessage(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/a")}, "")
	waitFor(t, func() bool { return s.Health().ReconnectAttempts == 2 })
	// The loop must now be quiescent: no further attempts accrue.
	time.Sleep(50 * time.Millisecond)
	if got := s.Health().ReconnectAttempts; got != 2 {
		t.Fatalf("dial budget ignored: %d attempts, want 2", got)
	}

	// Fresh control traffic revives the link with a reset budget.
	s.Broker().HandleMessage(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/b")}, "")
	waitFor(t, func() bool { return s.Health().ReconnectAttempts == 4 })
}

// The retry buffer is bounded: overflow evicts the oldest entries and is
// counted, so operators can see that resync had to repair the loss.
func TestRetryBufferOverflowCounted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	opts := fastHeal()
	opts.RetryBuffer = 2
	opts.DialBudget = 1
	cfg := broker.Config{}
	cfg.ID = "b1"
	s := NewServerOptions(cfg, map[string]string{"b2": deadAddr}, opts)
	t.Cleanup(s.Close)

	for _, e := range []string{"/a", "/b", "/c", "/d", "/e"} {
		s.Broker().HandleMessage(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse(e)}, "")
	}
	h := s.Health()
	if h.RetryBuffered != 5 {
		t.Errorf("RetryBuffered = %d, want 5", h.RetryBuffered)
	}
	if h.RetryOverflow != 3 {
		t.Errorf("RetryOverflow = %d, want 3", h.RetryOverflow)
	}
}

// Publications are never buffered across an outage — they are dropped and
// counted; only control state is retried.
func TestPublicationsDroppedNotBuffered(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	opts := fastHeal()
	opts.DialBudget = 1
	cfg := broker.Config{}
	cfg.ID = "b1"
	s := NewServerOptions(cfg, map[string]string{"b2": deadAddr}, opts)
	t.Cleanup(s.Close)

	// A subscription from b2's direction makes publications route there.
	s.Broker().HandleMessage(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/a")}, "b2")
	s.Broker().HandleMessage(&broker.Message{Type: broker.MsgPublish, Pub: xmldoc.Publication{Path: []string{"a", "b"}}}, "")
	waitFor(t, func() bool { return s.Health().DroppedPubs == 1 })
	if got := s.Health().RetryBuffered; got != 0 {
		t.Errorf("RetryBuffered = %d, want 0 (publications must not be buffered)", got)
	}
}
