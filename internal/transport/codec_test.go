package transport

import (
	"bytes"
	"encoding/gob"
	"net"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/advert"
	"repro/internal/broker"
	"repro/internal/trace"
	"repro/internal/wirefmt"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// diffMessages is one message per frame type with every optional field
// populated — the corpus the two codecs must agree on.
func diffMessages(t testing.TB) []*broker.Message {
	t.Helper()
	doc, err := xmldoc.Parse([]byte(`<inventory count="3"><book lang="en"><title>Routing</title></book><cd/></inventory>`))
	if err != nil {
		t.Fatal(err)
	}
	return []*broker.Message{
		{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/inventory/book/title")},
		{Type: broker.MsgSubscribe, XPE: xpath.MustParse(`//book[@lang="en"]/*`)},
		{Type: broker.MsgUnsubscribe, XPE: xpath.MustParse("/inventory//cd")},
		{
			Type:  broker.MsgAdvertise,
			AdvID: "adv-1",
			Adv: advert.NewAdvertisement(
				advert.Sym("inventory"),
				advert.Rep(advert.Sym("book"), advert.Sym("cd")),
			),
		},
		{Type: broker.MsgUnadvertise, AdvID: "adv-1"},
		{
			Type: broker.MsgPublish,
			Pub: xmldoc.Publication{
				DocID:  42,
				PathID: 7,
				Path:   []string{"inventory", "book", "title"},
				Attrs: []map[string]string{
					{"count": "3"},
					{"lang": "en", "id": "b1"},
					nil,
				},
			},
			Stamp:   1234567890,
			TraceID: "trace-abc",
			Hops: []trace.Hop{
				{Broker: "b1", UnixNano: 1700000000000000000, Epoch: 3, Stages: []trace.StageDur{
					{Stage: "decode", Nanos: 1200},
					{Stage: "match", Nanos: 340},
				}},
				{Broker: "b2", UnixNano: 1700000000000500000, Epoch: 9},
			},
		},
		{Type: broker.MsgPublish, Pub: xmldoc.Publication{DocID: 43}, Doc: doc},
		{Type: broker.MsgPublish, Pub: xmldoc.Publication{DocID: 44}, Raw: []byte(`<inventory><book/></inventory>`)},
		{Type: broker.MsgPublish, Pub: xmldoc.Publication{DocID: 45}, Raw: bytes.Repeat([]byte("x"), 4096)},
		{
			Type: broker.MsgResync,
			Resync: &broker.ResyncState{
				Advs: []broker.ResyncAdv{
					{ID: "adv-a", Adv: advert.NewAdvertisement(advert.Sym("inventory"))},
				},
				Subs: []*xpath.XPE{xpath.MustParse("/inventory/book"), xpath.MustParse("//title")},
			},
		},
		{Type: broker.MsgHeartbeat},
	}
}

// normalizeEmpties maps empty containers to nil in place. gob cannot tell a
// nil map or slice from an empty one (both arrive nil or empty depending on
// position), and neither can anything downstream of the decoder — the two
// forms are wire-equivalent, so the differential comparison folds them.
func normalizeEmpties(m *broker.Message) {
	if len(m.Pub.Path) == 0 {
		m.Pub.Path = nil
	}
	if len(m.Pub.Attrs) == 0 {
		m.Pub.Attrs = nil
	}
	for i, am := range m.Pub.Attrs {
		if len(am) == 0 {
			m.Pub.Attrs[i] = nil
		}
	}
	if len(m.Hops) == 0 {
		m.Hops = nil
	}
	for i := range m.Hops {
		if len(m.Hops[i].Stages) == 0 {
			m.Hops[i].Stages = nil
		}
	}
	if len(m.Raw) == 0 {
		m.Raw = nil
	}
}

// TestDifferentialCodecRoundTrip round-trips every frame type through both
// codecs and requires the decoded values to be deeply equal — the property
// that lets a deployment mix binary and gob links without the routing state
// diverging by codec.
func TestDifferentialCodecRoundTrip(t *testing.T) {
	for i, m := range diffMessages(t) {
		var gb bytes.Buffer
		if err := gob.NewEncoder(&gb).Encode(m); err != nil {
			t.Fatalf("msg %d: gob encode: %v", i, err)
		}
		var viaGob broker.Message
		if err := gob.NewDecoder(&gb).Decode(&viaGob); err != nil {
			t.Fatalf("msg %d: gob decode: %v", i, err)
		}

		var bb bytes.Buffer
		if err := wirefmt.NewEncoder(&bb, wirefmt.DefaultLimits).Encode(m); err != nil {
			t.Fatalf("msg %d: binary encode: %v", i, err)
		}
		var viaBin broker.Message
		if err := wirefmt.NewDecoder(&bb, wirefmt.DefaultLimits).Decode(&viaBin); err != nil {
			t.Fatalf("msg %d: binary decode: %v", i, err)
		}

		normalizeEmpties(&viaGob)
		normalizeEmpties(&viaBin)
		if !reflect.DeepEqual(&viaGob, &viaBin) {
			t.Errorf("msg %d (type %d): codecs disagree\ngob:    %+v\nbinary: %+v",
				i, m.Type, viaGob, viaBin)
		}
	}
}

// linkCodec returns the negotiated codec of s's link to peer ("" while the
// link is down).
func linkCodec(s *Server, peer string) string {
	for _, ls := range s.Links() {
		if ls.Peer == peer && ls.Up {
			return ls.Codec
		}
	}
	return ""
}

// TestMixedVersionNegotiation drives the codec negotiation matrix over real
// TCP pairs: binary is spoken only when both ends prefer it, a binary
// speaker attaching to a gob listener negotiates down cleanly, and traffic
// routes end to end either way.
func TestMixedVersionNegotiation(t *testing.T) {
	cases := []struct {
		name   string
		w1, w2 string
		want   string
	}{
		{"binary-binary", WireBinary, WireBinary, WireBinary},
		{"binary-to-gob", WireBinary, WireGob, WireGob},
		{"gob-to-binary", WireGob, WireBinary, WireGob},
		{"gob-gob", WireGob, WireGob, WireGob},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o1, o2 := fastHeal(), fastHeal()
			o1.Wire, o2.Wire = tc.w1, tc.w2
			s1, s2, _ := startPair(t, broker.Config{}, o1, o2)

			// Control traffic both ways proves both directions decode.
			s1.Broker().HandleMessage(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/a")}, "")
			s2.Broker().HandleMessage(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/b")}, "")
			waitFor(t, func() bool { return s1.PRTSize() == 2 && s2.PRTSize() == 2 })

			waitFor(t, func() bool {
				return linkCodec(s1, "b2") == tc.want && linkCodec(s2, "b1") == tc.want
			})
			if h := s1.Health().BadFrames + s2.Health().BadFrames; h != 0 {
				t.Errorf("negotiation produced %d bad frames", h)
			}
		})
	}
}

// TestRawPassthroughByteIdentical pins the Raw forwarding contract across
// the binary wire: the bytes a publisher hands in are the bytes every hop
// forwards and the subscriber receives — no copy may mutate, trim, or
// re-serialize them. The body is large enough to take the encoder's
// external-segment (writev by reference) path.
func TestRawPassthroughByteIdentical(t *testing.T) {
	servers := startChain(t, 3, broker.Config{})
	sub, err := Dial(servers[2].ln.Addr().String(), "sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := Dial(servers[0].ln.Addr().String(), "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	if err := sub.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("//leaf")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return servers[0].PRTSize() == 1 })

	var body bytes.Buffer
	body.WriteString("<root attr=\"v\">")
	for i := 0; i < 400; i++ {
		body.WriteString("<leaf>payload text that pushes the body over the external-segment threshold</leaf>")
	}
	body.WriteString("</root>")
	raw := body.Bytes()
	if len(raw) <= 4096 {
		t.Fatalf("test body too small (%d bytes) to exercise the ext path", len(raw))
	}

	if err := pub.Send(&broker.Message{Type: broker.MsgPublish, Raw: raw}); err != nil {
		t.Fatal(err)
	}
	m, err := sub.WaitDelivery(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.Raw, raw) {
		t.Errorf("raw body mutated in transit: sent %d bytes, received %d", len(raw), len(m.Raw))
	}
	if pub.Codec() != WireBinary || sub.Codec() != WireBinary {
		t.Errorf("clients negotiated %q/%q, want binary", pub.Codec(), sub.Codec())
	}
}

// TestHostileBinaryFramesCloseConnection sends a valid binary handshake
// followed by garbage and requires the server to tear down exactly that
// connection: the frame is counted as bad, the socket is closed from the
// server side, and no reader or writer goroutine is left behind.
func TestHostileBinaryFramesCloseConnection(t *testing.T) {
	cfg := broker.Config{}
	cfg.ID = "b1"
	s := NewServerOptions(cfg, nil, Options{})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		if err := gob.NewEncoder(conn).Encode(hello{ID: "evil", Wire: WireBinary}); err != nil {
			t.Fatal(err)
		}
		// A plausible-looking frame: sane length prefix, message kind,
		// publish type, then junk the cursor helpers must reject.
		conn.Write([]byte{0x09, 0x02, byte(broker.MsgPublish), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
		// The server must close on us; reading drains the hello reply and
		// then sees EOF.
		buf := make([]byte, 512)
		for {
			if _, err := conn.Read(buf); err != nil {
				break
			}
		}
		conn.Close()
	}

	waitFor(t, func() bool { return s.Health().BadFrames >= 20 })
	// Goroutine count settles back to the pre-connection baseline (the
	// accept loop and broker workers persist; per-connection reader/writer
	// pairs must not).
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before+2 })
}
