package transport

import (
	"bytes"
	"encoding/gob"
	"net"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/wirefmt"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// FuzzFrameDecode throws arbitrary byte streams at a live server's wire
// protocol. The invariant is process survival: whatever a connection sends —
// truncated frames, bit-flipped gob, hostile lengths, or valid frames with
// absurd contents — the server must at worst close that connection. A panic
// anywhere (decoder, broker matching, worker pool) fails the fuzz run.
func FuzzFrameDecode(f *testing.F) {
	// Seed corpus: a valid session prefix, then progressively damaged ones.
	valid := func(msgs ...any) []byte {
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		for _, m := range msgs {
			if err := enc.Encode(m); err != nil {
				f.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	session := valid(
		hello{ID: "fuzz"},
		&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/a/b")},
		&broker.Message{Type: broker.MsgPublish, Pub: xmldoc.Publication{DocID: 1, Path: []string{"a", "b"}}},
	)
	f.Add(session)
	f.Add(session[:len(session)/2]) // truncated mid-frame
	corrupt := bytes.Clone(session)
	for i := range corrupt {
		if i%7 == 0 {
			corrupt[i] ^= 0x80
		}
	}
	f.Add(corrupt)
	f.Add([]byte{0x7f, 0xff, 0xff, 0xff}) // huge declared length
	f.Add([]byte{})

	cfg := broker.Config{}
	cfg.ID = "b1"
	s := NewServerOptions(cfg, nil, Options{})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(s.Close)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Bounded dial: thousands of rapid-fire connections can fill the
		// accept queue, and an unbounded Dial then blocks for the OS connect
		// timeout (minutes) — long enough for the fuzz coordinator to declare
		// the worker hung.
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			t.Skip("dial failed; nothing to exercise")
		}
		conn.SetDeadline(time.Now().Add(2 * time.Second))
		conn.Write(data)
		// Closing hands the server an EOF after our bytes; it processes every
		// complete frame first. A server-side panic aborts this whole process
		// and fails the run — that is the assertion.
		conn.Close()
	})
}

// FuzzBinaryFrameDecode is FuzzFrameDecode for the binary wire: a valid
// handshake negotiating the binary codec, then arbitrary bytes where frames
// belong. Truncated batches, hostile varint lengths, unknown dictionary ids,
// and corrupt frames must at worst cost the connection — process survival is
// the invariant, exactly as for the gob target. The wirefmt package fuzzes
// its decoder in isolation; this target proves the transport around it
// (readLoop, bad-frame accounting, connection teardown) holds up too.
func FuzzBinaryFrameDecode(f *testing.F) {
	// Seed corpus: a valid binary session, then damaged variants. Frames are
	// built with the real encoder so the corpus starts structurally deep
	// (dictionary frames, symbol references, nested documents).
	valid := func(msgs ...*broker.Message) []byte {
		var buf bytes.Buffer
		enc := wirefmt.NewEncoder(&buf, wirefmt.DefaultLimits)
		for _, m := range msgs {
			if err := enc.Encode(m); err != nil {
				f.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	doc, err := xmldoc.Parse([]byte(`<stock><quote s="ACME"><price>42</price></quote></stock>`))
	if err != nil {
		f.Fatal(err)
	}
	session := valid(
		&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/a/b")},
		&broker.Message{Type: broker.MsgPublish, Pub: xmldoc.Publication{DocID: 1, Path: []string{"a", "b"}}},
		&broker.Message{Type: broker.MsgPublish, Pub: xmldoc.Publication{DocID: 2}, Doc: doc},
	)
	f.Add(session)
	f.Add(session[:len(session)/2]) // truncated mid-batch
	corrupt := bytes.Clone(session)
	for i := range corrupt {
		if i%5 == 0 {
			corrupt[i] ^= 0x40
		}
	}
	f.Add(corrupt)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x0f}) // hostile varint length
	f.Add([]byte{0x03, 0x01, 0x63, 0x00})             // dict frame with a gap
	f.Add([]byte{0x02, 0x02, 0x07})                   // message referencing an unknown id
	f.Add([]byte{})

	cfg := broker.Config{}
	cfg.ID = "b1"
	s := NewServerOptions(cfg, nil, Options{})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(s.Close)

	// The handshake prefix every fuzz connection sends before its payload:
	// the gob hello offering binary. Constant across iterations, so it is
	// encoded once.
	var hs bytes.Buffer
	if err := gob.NewEncoder(&hs).Encode(hello{ID: "fuzz", Wire: WireBinary}); err != nil {
		f.Fatal(err)
	}
	helloBytes := hs.Bytes()

	f.Fuzz(func(t *testing.T, data []byte) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			t.Skip("dial failed; nothing to exercise")
		}
		conn.SetDeadline(time.Now().Add(2 * time.Second))
		conn.Write(helloBytes)
		conn.Write(data)
		conn.Close()
	})
}
