package transport

import (
	"fmt"

	"repro/internal/advert"
	"repro/internal/broker"
	"repro/internal/stream"
	"repro/internal/wirefmt"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// Frames arrive decoded from whoever dialled us. gob reconstructs any value
// the field types allow, far outside what the parsers and constructors
// guarantee: subscription step lists that never saw Parse, advertisement
// trees of arbitrary depth, publication paths of arbitrary length, resync
// payloads of arbitrary size. The broker and matchers assume constructor
// invariants, so every inbound frame is checked here first; a frame that
// fails costs its connection (readLoop closes it) and is counted in
// HealthStats.BadFrames. The binary codec (package wirefmt) enforces the
// same bounds inside its decoder — before allocating, which gob cannot —
// and checkWire runs on its frames too, for the invariants that live above
// the codec (XPE validity, SymPath laundering). The bounds are aliased from
// wirefmt so the two codecs can never drift. They are far above anything
// the system generates — they exist to cap hostile input, not constrain use.
const (
	maxWireSteps     = wirefmt.MaxSteps    // location steps per subscription
	maxWireName      = wirefmt.MaxName     // bytes per element name, attribute, or ID
	maxWirePath      = wirefmt.MaxPath     // elements per publication path
	maxWireAdvItems  = wirefmt.MaxAdvItems // advertisement items, groups included
	maxWireAdvDepth  = wirefmt.MaxAdvDepth // advertisement group nesting
	maxWireResync    = wirefmt.MaxResync   // entries per resync list (a claim spans a whole SRT)
	maxWireDocElems  = wirefmt.MaxDocElems // elements per whole-document publication
	maxWireDocDepth  = wirefmt.MaxDocDepth
	maxWireHops      = wirefmt.MaxHops      // carried trace hops
	maxWireRawDoc    = wirefmt.MaxRawDoc    // bytes per raw-XML publication body
	maxWireHopStages = wirefmt.MaxHopStages // per-stage durations per carried hop
	maxWireStageName = wirefmt.MaxStageName // bytes per stage name (real names are ≤ 7)
)

// maxWireStageNanos caps a carried stage duration at one hour: durations are
// measured monotonic timings, so a larger (or negative) value can only be a
// forged frame, and admitting it would poison latency aggregation downstream.
const maxWireStageNanos = wirefmt.MaxStageNanos

// checkWire validates one inbound frame against the wire bounds and the
// constructor invariants of its payload. It also normalises the frame:
// Pub.SymPath is dropped, because symbols are process-local — a remote
// peer's (or attacker's) integers are meaningless here and the broker
// trusts SymPath when present. Receivers re-intern from Path.
func checkWire(m *broker.Message) error {
	switch m.Type {
	case broker.MsgSubscribe, broker.MsgUnsubscribe:
		return checkWireXPE(m.XPE)
	case broker.MsgAdvertise:
		if err := checkWireAdvID(m.AdvID); err != nil {
			return err
		}
		return checkWireAdv(m.Adv)
	case broker.MsgUnadvertise:
		return checkWireAdvID(m.AdvID)
	case broker.MsgPublish:
		return checkWirePublish(m)
	case broker.MsgResync:
		return checkWireResync(m.Resync)
	case broker.MsgHeartbeat:
		return nil
	case broker.MsgSubscribeDurable:
		if err := checkWireDurable(m.Durable); err != nil {
			return err
		}
		return checkWireXPE(m.XPE)
	case broker.MsgAck, broker.MsgReplayBegin, broker.MsgReplayEnd:
		return checkWireDurable(m.Durable)
	default:
		return fmt.Errorf("unknown message type %d", uint8(m.Type))
	}
}

// checkWireDurable validates a durable subscription name where one is
// mandatory (subscribe-durable, ack, replay markers).
func checkWireDurable(name string) error {
	if name == "" || len(name) > maxWireName {
		return fmt.Errorf("durable name of %d bytes", len(name))
	}
	return nil
}

func checkWireXPE(x *xpath.XPE) error {
	if x == nil {
		return fmt.Errorf("missing expression")
	}
	if len(x.Steps) > maxWireSteps {
		return fmt.Errorf("expression with %d steps exceeds %d", len(x.Steps), maxWireSteps)
	}
	for _, s := range x.Steps {
		if len(s.Name) > maxWireName {
			return fmt.Errorf("step name of %d bytes exceeds %d", len(s.Name), maxWireName)
		}
	}
	return x.Validate()
}

func checkWireAdvID(id string) error {
	if id == "" || len(id) > maxWireName {
		return fmt.Errorf("advertisement id of %d bytes", len(id))
	}
	return nil
}

func checkWireAdv(a *advert.Advertisement) error {
	if a == nil {
		return fmt.Errorf("missing advertisement")
	}
	n, err := checkWireAdvItems(a.Items, 0)
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("empty advertisement")
	}
	return nil
}

func checkWireAdvItems(items []advert.Item, depth int) (int, error) {
	if depth > maxWireAdvDepth {
		return 0, fmt.Errorf("advertisement groups nested deeper than %d", maxWireAdvDepth)
	}
	n := 0
	for _, it := range items {
		n++
		if n > maxWireAdvItems {
			return 0, fmt.Errorf("advertisement with more than %d items", maxWireAdvItems)
		}
		if it.IsGroup() {
			if len(it.Group) == 0 {
				return 0, fmt.Errorf("empty advertisement group")
			}
			k, err := checkWireAdvItems(it.Group, depth+1)
			if err != nil {
				return 0, err
			}
			if n += k; n > maxWireAdvItems {
				return 0, fmt.Errorf("advertisement with more than %d items", maxWireAdvItems)
			}
		} else if len(it.Name) > maxWireName {
			return 0, fmt.Errorf("advertisement name of %d bytes exceeds %d", len(it.Name), maxWireName)
		}
	}
	return n, nil
}

func checkWirePublish(m *broker.Message) error {
	if len(m.TraceID) > maxWireName {
		return fmt.Errorf("trace id of %d bytes", len(m.TraceID))
	}
	// Durable is optional on publications (set only on deliveries to a
	// durable subscriber), so only its length is bounded here.
	if len(m.Durable) > maxWireName {
		return fmt.Errorf("durable name of %d bytes exceeds %d", len(m.Durable), maxWireName)
	}
	if len(m.Hops) > maxWireHops {
		return fmt.Errorf("publication carrying %d hops exceeds %d", len(m.Hops), maxWireHops)
	}
	for _, h := range m.Hops {
		if len(h.Broker) > maxWireName {
			return fmt.Errorf("hop broker id of %d bytes exceeds %d", len(h.Broker), maxWireName)
		}
		if len(h.Stages) > maxWireHopStages {
			return fmt.Errorf("hop carrying %d stage durations exceeds %d", len(h.Stages), maxWireHopStages)
		}
		for _, sd := range h.Stages {
			if len(sd.Stage) > maxWireStageName {
				return fmt.Errorf("hop stage name of %d bytes exceeds %d", len(sd.Stage), maxWireStageName)
			}
			if sd.Nanos < 0 || sd.Nanos > maxWireStageNanos {
				return fmt.Errorf("hop stage duration %dns outside [0, %dns]", sd.Nanos, maxWireStageNanos)
			}
		}
	}
	if len(m.Raw) > maxWireRawDoc {
		return fmt.Errorf("raw document of %d bytes exceeds %d", len(m.Raw), maxWireRawDoc)
	}
	if len(m.Raw) > 0 && m.Doc != nil {
		return fmt.Errorf("publication carrying both raw and parsed document")
	}
	// Raw bodies are NOT scanned here: the broker's streaming matcher
	// validates syntax and the document bounds in the same pass that
	// routes them (and counts rejects in Stats.BadDocuments), so checking
	// here would double the work on every hop.
	if m.Doc != nil {
		if err := checkWireDoc(m.Doc); err != nil {
			return err
		}
	}
	if len(m.Pub.Path) > maxWirePath {
		return fmt.Errorf("publication path of %d elements exceeds %d", len(m.Pub.Path), maxWirePath)
	}
	for _, e := range m.Pub.Path {
		if len(e) > maxWireName {
			return fmt.Errorf("path element of %d bytes exceeds %d", len(e), maxWireName)
		}
	}
	if len(m.Pub.Attrs) > maxWirePath {
		return fmt.Errorf("publication with %d attribute maps exceeds %d", len(m.Pub.Attrs), maxWirePath)
	}
	// Symbols are process-local; a remote peer's SymPath is a different
	// table's integers and must never be trusted. Drop it — the broker
	// re-interns from Path on arrival.
	m.Pub.SymPath = nil
	return nil
}

// checkWireDoc delegates to stream.CheckDoc so the parsed-document bounds
// and the streaming scanner's incremental bounds can never drift apart
// (stream.WireLimits mirrors maxWireDocDepth/maxWireDocElems/maxWireName).
func checkWireDoc(d *xmldoc.Document) error {
	return stream.CheckDoc(d, stream.WireLimits)
}

func checkWireResync(r *broker.ResyncState) error {
	if r == nil {
		return fmt.Errorf("missing resync payload")
	}
	if len(r.Advs) > maxWireResync || len(r.Subs) > maxWireResync {
		return fmt.Errorf("resync with %d advs and %d subs exceeds %d", len(r.Advs), len(r.Subs), maxWireResync)
	}
	for _, a := range r.Advs {
		if err := checkWireAdvID(a.ID); err != nil {
			return err
		}
		if err := checkWireAdv(a.Adv); err != nil {
			return err
		}
	}
	for _, x := range r.Subs {
		if err := checkWireXPE(x); err != nil {
			return err
		}
	}
	return nil
}
