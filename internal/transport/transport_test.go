package transport

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/advert"
	"repro/internal/broker"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// startChain boots n brokers connected in a chain over loopback TCP and
// returns their addresses.
func startChain(t *testing.T, n int, cfg broker.Config) []*Server {
	t.Helper()
	addrs := make([]string, n)
	servers := make([]*Server, n)
	// Two passes: addresses must exist before neighbours maps are built, so
	// listeners are bound first with empty neighbour maps filled after.
	neighbors := make([]map[string]string, n)
	for i := range servers {
		neighbors[i] = make(map[string]string)
	}
	for i := range servers {
		c := cfg
		c.ID = fmt.Sprintf("b%d", i+1)
		servers[i] = NewServer(c, neighbors[i])
		addr, err := servers[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
		t.Cleanup(servers[i].Close)
	}
	for i := range servers {
		if i > 0 {
			neighbors[i][fmt.Sprintf("b%d", i)] = addrs[i-1]
			servers[i].b.AddNeighbor(fmt.Sprintf("b%d", i))
		}
		if i < n-1 {
			neighbors[i][fmt.Sprintf("b%d", i+2)] = addrs[i+1]
			servers[i].b.AddNeighbor(fmt.Sprintf("b%d", i+2))
		}
	}
	return servers
}

func TestEndToEndOverTCP(t *testing.T) {
	servers := startChain(t, 3, broker.Config{UseAdvertisements: true, UseCovering: true})
	pubAddr := servers[0].ln.Addr().String()
	subAddr := servers[2].ln.Addr().String()

	pub, err := Dial(pubAddr, "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	sub, err := Dial(subAddr, "sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	if err := pub.Send(&broker.Message{Type: broker.MsgAdvertise, AdvID: "a1", Adv: advert.MustParse("/stock/quote/price")}); err != nil {
		t.Fatal(err)
	}
	// Give the flood a moment to traverse the chain before subscribing.
	waitFor(t, func() bool { return servers[2].SRTSize() == 1 })

	if err := sub.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/stock")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return servers[0].PRTSize() == 1 })

	if err := pub.Send(&broker.Message{
		Type: broker.MsgPublish,
		Pub:  xmldoc.Publication{DocID: 1, Path: []string{"stock", "quote", "price"}},
	}); err != nil {
		t.Fatal(err)
	}
	m, err := sub.WaitDelivery(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Pub.Path) != 3 || m.Pub.Path[0] != "stock" {
		t.Errorf("delivered %v", m.Pub)
	}
	if m.Stamp == 0 {
		t.Error("publication stamp missing")
	}
}

func TestNonMatchingSubscriberGetsNothing(t *testing.T) {
	servers := startChain(t, 2, broker.Config{})
	sub, err := Dial(servers[1].ln.Addr().String(), "sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := Dial(servers[0].ln.Addr().String(), "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	if err := sub.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/none")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return servers[0].PRTSize() == 1 })
	if err := pub.Send(&broker.Message{
		Type: broker.MsgPublish,
		Pub:  xmldoc.Publication{Path: []string{"stock", "quote"}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.WaitDelivery(300 * time.Millisecond); err == nil {
		t.Error("non-matching subscriber received a publication")
	}
}

func TestWholeDocumentOverTCP(t *testing.T) {
	servers := startChain(t, 2, broker.Config{})
	sub, err := Dial(servers[1].ln.Addr().String(), "sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := Dial(servers[0].ln.Addr().String(), "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	if err := sub.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("//title")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return servers[0].PRTSize() == 1 })
	doc, err := xmldoc.Parse([]byte(`<catalog><book><title>Go</title></book></catalog>`))
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Send(&broker.Message{Type: broker.MsgPublish, Doc: doc}); err != nil {
		t.Fatal(err)
	}
	m, err := sub.WaitDelivery(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.Doc == nil || m.Doc.Root.Name != "catalog" {
		t.Errorf("delivered %v", m)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
