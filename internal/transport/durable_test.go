package transport

// End-to-end durable delivery over real TCP: a named client subscribes
// through the wire, its deliveries carry the durable name and sequence,
// acknowledgements advance the broker's cursor, and both kinds of outage —
// the client going away and the broker process dying — end in a replay of
// exactly the unacknowledged gap, bracketed by replay markers.

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/publog"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// startDurableEdge boots one broker backed by a real publication log in dir.
func startDurableEdge(t *testing.T, dir string) (*Server, string, *publog.Store) {
	t.Helper()
	store, err := publog.Open(dir, publog.Options{SyncAppend: true, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := broker.Config{ID: "b1", Durable: store}
	s := NewServerOptions(cfg, nil, fastHeal())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return s, addr, store
}

// durableOf fetches the broker-side status of one durable subscription.
func durableOf(s *Server, name string) (broker.DurableStatus, bool) {
	for _, st := range s.b.Durables() {
		if st.Name == name {
			return st, true
		}
	}
	return broker.DurableStatus{}, false
}

// nextDelivery pulls one message off the client within the deadline.
func nextDelivery(t *testing.T, c *Client) *broker.Message {
	t.Helper()
	m, err := c.WaitDelivery(5 * time.Second)
	if err != nil {
		t.Fatalf("WaitDelivery: %v", err)
	}
	return m
}

// expectReplayOverWire consumes one full replay bracket from the client and
// returns the replayed sequences.
func expectReplayOverWire(t *testing.T, c *Client, wantFrom, wantLast uint64) []uint64 {
	t.Helper()
	m := nextDelivery(t, c)
	if m.Type != broker.MsgReplayBegin || m.Seq != wantFrom {
		t.Fatalf("replay opened with %v seq %d, want begin seq %d", m.Type, m.Seq, wantFrom)
	}
	var seqs []uint64
	for {
		m = nextDelivery(t, c)
		if m.Type == broker.MsgReplayEnd {
			if m.Seq != wantLast {
				t.Fatalf("replay closed at seq %d, want %d", m.Seq, wantLast)
			}
			return seqs
		}
		if m.Type != broker.MsgPublish || m.Durable == "" {
			t.Fatalf("replay contained %v durable %q", m.Type, m.Durable)
		}
		seqs = append(seqs, m.Seq)
	}
}

// TestDurableClientGapReplayOverTCP is the client-outage half: publications
// that arrive while the durable client is disconnected are sequenced and
// logged, and the next attachment of the same name replays exactly the gap.
func TestDurableClientGapReplayOverTCP(t *testing.T) {
	s, addr, store := startDurableEdge(t, t.TempDir())
	t.Cleanup(func() { s.Close(); store.Close() })

	var acks atomic.Uint64
	sub, err := DialOptions(addr, "alice", ClientOptions{
		Durable: "orders",
		AutoAck: true,
		OnAck:   func(seq uint64) { acks.Store(seq) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// A plain subscribe from a durable client travels as subscribe-durable.
	if err := sub.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/a")}); err != nil {
		t.Fatal(err)
	}
	// First attachment replays the empty log: bracket only.
	if got := expectReplayOverWire(t, sub, 1, 0); len(got) != 0 {
		t.Fatalf("empty log replayed %d records", len(got))
	}

	pub, err := Dial(addr, "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	publish := func(doc uint64) {
		t.Helper()
		if err := pub.Send(&broker.Message{
			Type: broker.MsgPublish,
			Pub:  xmldoc.Publication{DocID: doc, Path: []string{"a", "b"}},
		}); err != nil {
			t.Fatal(err)
		}
	}

	publish(1)
	m := nextDelivery(t, sub)
	if m.Durable != "orders" || m.Seq != 1 || m.Pub.DocID != 1 {
		t.Fatalf("live delivery durable %q seq %d doc %d, want orders/1/1", m.Durable, m.Seq, m.Pub.DocID)
	}
	// AutoAck advances the broker-side cursor without any client code.
	waitFor(t, func() bool { st, ok := durableOf(s, "orders"); return ok && st.Acked == 1 })
	if acks.Load() != 1 {
		t.Fatalf("OnAck observed seq %d, want 1", acks.Load())
	}

	// Client vanishes; the broker keeps sequencing into the log.
	sub.Close()
	publish(2)
	publish(3)
	waitFor(t, func() bool { st, ok := durableOf(s, "orders"); return ok && st.Seq == 3 })

	// Same durable name reattaches (explicit acks this time): the replay is
	// exactly the unacked gap 2..3, in order.
	sub2, err := DialOptions(addr, "alice", ClientOptions{Durable: "orders"})
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	if err := sub2.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/a")}); err != nil {
		t.Fatal(err)
	}
	seqs := expectReplayOverWire(t, sub2, 2, 3)
	if len(seqs) != 2 || seqs[0] != 2 || seqs[1] != 3 {
		t.Fatalf("gap replay delivered %v, want [2 3]", seqs)
	}
	if err := sub2.Ack(3); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { st, ok := durableOf(s, "orders"); return ok && st.Acked == 3 })

	// Fully acked: one more attachment replays nothing.
	sub3, err := DialOptions(addr, "alice", ClientOptions{Durable: "orders"})
	if err != nil {
		t.Fatal(err)
	}
	defer sub3.Close()
	if err := sub3.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/a")}); err != nil {
		t.Fatal(err)
	}
	if got := expectReplayOverWire(t, sub3, 4, 3); len(got) != 0 {
		t.Fatalf("fully-acked reattach replayed %d records", len(got))
	}
}

// TestDurableReconnectReplaysGap drives the outage through the client's own
// reconnect machinery: the broker process dies and restarts on the same
// address and log directory, and the client's recorded subscription replay
// doubles as the durable reattach.
func TestDurableReconnectReplaysGap(t *testing.T) {
	dir := t.TempDir()
	s1, addr, store1 := startDurableEdge(t, dir)

	opts := fastClient()
	opts.Durable = "orders"
	sub, err := DialOptions(addr, "alice", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/a")}); err != nil {
		t.Fatal(err)
	}
	expectReplayOverWire(t, sub, 1, 0)

	pub, err := Dial(addr, "pub")
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Send(&broker.Message{Type: broker.MsgPublish, Pub: xmldoc.Publication{DocID: 1, Path: []string{"a"}}}); err != nil {
		t.Fatal(err)
	}
	m := nextDelivery(t, sub)
	if m.Seq != 1 {
		t.Fatalf("live delivery seq %d, want 1", m.Seq)
	}
	pub.Close()

	// Broker process dies without acks. The record survives in the log dir.
	s1.Close()
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same address and directory. NewServerOptions runs
	// durable recovery, so the subscription matches again before any client
	// reattaches.
	s2, _, store2 := func() (*Server, string, *publog.Store) {
		store, err := publog.Open(dir, publog.Options{SyncAppend: true, NoFsync: true})
		if err != nil {
			t.Fatal(err)
		}
		cfg := broker.Config{ID: "b1", Durable: store}
		s := NewServerOptions(cfg, nil, fastHeal())
		if _, err := s.Listen(addr); err != nil {
			t.Fatal(err)
		}
		return s, addr, store
	}()
	t.Cleanup(func() { s2.Close(); store2.Close() })

	waitFor(t, func() bool { return sub.Reconnects.Load() >= 1 })
	// The client's replayed record reattaches the durable name; seq 1 was
	// never acked, so the reconnect replays it — a duplicate across the
	// reconnect boundary, exactly what at-least-once promises.
	seqs := expectReplayOverWire(t, sub, 1, 1)
	if len(seqs) != 1 || seqs[0] != 1 {
		t.Fatalf("post-restart replay delivered %v, want [1]", seqs)
	}

	// New publications continue the recovered sequence.
	pub2, err := Dial(addr, "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub2.Close()
	if err := pub2.Send(&broker.Message{Type: broker.MsgPublish, Pub: xmldoc.Publication{DocID: 2, Path: []string{"a"}}}); err != nil {
		t.Fatal(err)
	}
	m = nextDelivery(t, sub)
	if m.Seq != 2 || m.Pub.DocID != 2 {
		t.Fatalf("post-restart live delivery seq %d doc %d, want 2/2", m.Seq, m.Pub.DocID)
	}
}

// TestAckFromNonDurableClientRejected pins the client-side guard.
func TestAckFromNonDurableClientRejected(t *testing.T) {
	s, addr, store := startDurableEdge(t, t.TempDir())
	t.Cleanup(func() { s.Close(); store.Close() })
	c, err := Dial(addr, "plain")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ack(1); err == nil {
		t.Fatal("Ack succeeded on a client with no durable name")
	}
}
