package transport

import (
	"encoding/gob"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/symtab"
	"repro/internal/trace"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// A structurally valid gob frame whose payload violates the wire bounds — a
// subscription no parser would ever produce — must cost the connection and
// never reach the broker.
func TestWireRejectsHostileSubscription(t *testing.T) {
	s, addr := startEdge(t, nil)

	steps := make([]xpath.Step, 100)
	for i := range steps {
		steps[i] = xpath.Step{Axis: xpath.Descendant, Name: xpath.Wildcard}
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(hello{ID: "evil"}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.New(false, steps...)}); err != nil {
		t.Fatal(err)
	}

	// The server must close the connection (our read errors out) ...
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	var rerr error
	for rerr == nil {
		_, rerr = conn.Read(buf)
	}
	if ne, ok := rerr.(net.Error); ok && ne.Timeout() {
		t.Fatal("server kept the connection after a hostile subscription")
	}
	// ... count the rejection, and keep the routing table untouched.
	waitFor(t, func() bool { return s.Health().BadFrames == 1 })
	if got := s.PRTSize(); got != 0 {
		t.Fatalf("hostile subscription reached the broker: PRT = %d", got)
	}
}

// Raw-document publications get exactly one transport-level check — the
// size cap. Syntax and the document bounds are the broker's streaming
// scan's job (it validates while routing), so a malformed body passes the
// wire check; but a body over the byte cap, or a frame smuggling both
// forms at once, must die here before the broker sees it.
func TestWireRawPublicationBounds(t *testing.T) {
	cases := []struct {
		name string
		msg  *broker.Message
		ok   bool
	}{
		{"raw-ok", &broker.Message{Type: broker.MsgPublish, Raw: []byte("<a><b/></a>")}, true},
		{"raw-at-cap", &broker.Message{Type: broker.MsgPublish, Raw: rawDocOfSize(maxWireRawDoc)}, true},
		{"raw-over-cap", &broker.Message{Type: broker.MsgPublish, Raw: rawDocOfSize(maxWireRawDoc + 1)}, false},
		{"raw-malformed-passes", &broker.Message{Type: broker.MsgPublish, Raw: []byte("<a><b></a>")}, true},
		{"raw-and-doc", &broker.Message{Type: broker.MsgPublish,
			Raw: []byte("<a/>"), Doc: &xmldoc.Document{Root: xmldoc.NewElem("a")}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkWire(tc.msg)
			if tc.ok && err != nil {
				t.Fatalf("checkWire: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("checkWire accepted a frame it must reject")
			}
		})
	}
}

// Carried trace hops ride every publication frame, stage durations
// included, so a hostile peer can try to smuggle unbounded hop lists,
// oversized stage names, or absurd durations that would poison latency
// aggregation downstream. Every bound — and both boundary-accept cases —
// is pinned here.
func TestWireHopStageBounds(t *testing.T) {
	// A full-width but legitimate hop: 16 stages, 1h durations, max-length
	// broker id — everything at the cap exactly.
	atCap := trace.Hop{Broker: strings.Repeat("b", maxWireName)}
	for i := 0; i < maxWireHopStages; i++ {
		atCap.Stages = append(atCap.Stages, trace.StageDur{
			Stage: strings.Repeat("s", maxWireStageName),
			Nanos: maxWireStageNanos,
		})
	}
	overStages := trace.Hop{Broker: "b1"}
	for i := 0; i < maxWireHopStages+1; i++ {
		overStages.Stages = append(overStages.Stages, trace.StageDur{Stage: "match", Nanos: 1})
	}
	pub := func(hops ...trace.Hop) *broker.Message {
		return &broker.Message{Type: broker.MsgPublish, Raw: []byte("<a/>"), Hops: hops}
	}
	cases := []struct {
		name string
		msg  *broker.Message
		ok   bool
	}{
		{"hop-with-stages", pub(trace.Hop{Broker: "b1", Stages: []trace.StageDur{
			{Stage: "decode", Nanos: 1200}, {Stage: "match", Nanos: 50000}}}), true},
		{"hop-at-every-cap", pub(atCap), true},
		{"hop-broker-over-name-cap", pub(trace.Hop{Broker: strings.Repeat("b", maxWireName+1)}), false},
		{"hop-over-stage-count", pub(overStages), false},
		{"stage-name-over-cap", pub(trace.Hop{Broker: "b1", Stages: []trace.StageDur{
			{Stage: strings.Repeat("s", maxWireStageName+1), Nanos: 1}}}), false},
		{"stage-negative-nanos", pub(trace.Hop{Broker: "b1", Stages: []trace.StageDur{
			{Stage: "match", Nanos: -1}}}), false},
		{"stage-absurd-nanos", pub(trace.Hop{Broker: "b1", Stages: []trace.StageDur{
			{Stage: "match", Nanos: maxWireStageNanos + 1}}}), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkWire(tc.msg)
			if tc.ok && err != nil {
				t.Fatalf("checkWire: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("checkWire accepted a frame it must reject")
			}
		})
	}
}

// rawDocOfSize builds a well-formed raw body of exactly n bytes.
func rawDocOfSize(n int) []byte {
	b := make([]byte, 0, n)
	b = append(b, "<a>"...)
	for len(b) < n-len("</a>") {
		b = append(b, 'x')
	}
	return append(b, "</a>"...)
}

// checkWireDoc delegates to stream.CheckDoc; the parsed-document bounds
// must still hold (a regression here would let deep gob-built trees reach
// the matcher's recursion).
func TestWireDocBoundsStillEnforced(t *testing.T) {
	deep := xmldoc.NewElem("a")
	cur := deep
	for i := 0; i < maxWireDocDepth+1; i++ {
		next := xmldoc.NewElem("b")
		cur.Children = append(cur.Children, next)
		cur = next
	}
	err := checkWire(&broker.Message{Type: broker.MsgPublish, Doc: &xmldoc.Document{Root: deep}})
	if err == nil {
		t.Fatal("over-depth parsed document passed the wire check")
	}
}

// Interned symbols are process-local: a publication's wire SymPath is a
// foreign table's integers and must be dropped on ingress, or a peer could
// steer matching away from (or toward) subscriptions at will.
func TestWireDropsForeignSymPath(t *testing.T) {
	s, addr := startEdge(t, nil)

	sub, err := Dial(addr, "sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/a")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.PRTSize() == 1 })

	pub, err := Dial(addr, "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	// Path says /a (matches); SymPath claims an element that was never
	// interned (would not match). The broker must believe Path.
	if err := pub.Send(&broker.Message{Type: broker.MsgPublish, Pub: xmldoc.Publication{
		Path:    []string{"a"},
		SymPath: []symtab.Sym{1 << 30},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.WaitDelivery(5 * time.Second); err != nil {
		t.Fatal("publication with a forged SymPath was not delivered by Path: ", err)
	}
}
