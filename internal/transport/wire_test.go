package transport

import (
	"encoding/gob"
	"net"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/symtab"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// A structurally valid gob frame whose payload violates the wire bounds — a
// subscription no parser would ever produce — must cost the connection and
// never reach the broker.
func TestWireRejectsHostileSubscription(t *testing.T) {
	s, addr := startEdge(t, nil)

	steps := make([]xpath.Step, 100)
	for i := range steps {
		steps[i] = xpath.Step{Axis: xpath.Descendant, Name: xpath.Wildcard}
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(hello{ID: "evil"}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.New(false, steps...)}); err != nil {
		t.Fatal(err)
	}

	// The server must close the connection (our read errors out) ...
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	var rerr error
	for rerr == nil {
		_, rerr = conn.Read(buf)
	}
	if ne, ok := rerr.(net.Error); ok && ne.Timeout() {
		t.Fatal("server kept the connection after a hostile subscription")
	}
	// ... count the rejection, and keep the routing table untouched.
	waitFor(t, func() bool { return s.Health().BadFrames == 1 })
	if got := s.PRTSize(); got != 0 {
		t.Fatalf("hostile subscription reached the broker: PRT = %d", got)
	}
}

// Interned symbols are process-local: a publication's wire SymPath is a
// foreign table's integers and must be dropped on ingress, or a peer could
// steer matching away from (or toward) subscriptions at will.
func TestWireDropsForeignSymPath(t *testing.T) {
	s, addr := startEdge(t, nil)

	sub, err := Dial(addr, "sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/a")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.PRTSize() == 1 })

	pub, err := Dial(addr, "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	// Path says /a (matches); SymPath claims an element that was never
	// interned (would not match). The broker must believe Path.
	if err := pub.Send(&broker.Message{Type: broker.MsgPublish, Pub: xmldoc.Publication{
		Path:    []string{"a"},
		SymPath: []symtab.Sym{1 << 30},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.WaitDelivery(5 * time.Second); err != nil {
		t.Fatal("publication with a forged SymPath was not delivered by Path: ", err)
	}
}
