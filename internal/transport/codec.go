package transport

import (
	"bufio"
	"encoding/gob"
	"io"
	"net"
	"sync/atomic"

	"repro/internal/broker"
	"repro/internal/wirefmt"
)

// Wire codec names, as negotiated in the hello exchange and selected by
// Options.Wire / ClientOptions.Wire / xbroker -wire.
const (
	// WireBinary is the hand-rolled varint codec (package wirefmt) with
	// per-link symbol dictionaries and batched vectored writes — the
	// default data plane.
	WireBinary = "binary"
	// WireGob is the reflection-based gob codec the system started with,
	// kept as the rollout fallback and the ablation baseline.
	WireGob = "gob"
)

// frameWriter is the single place a connection's outbound codec lives:
// every frame the transport writes — hellos excluded, those are always gob —
// goes through one of these. Implementations are not safe for concurrent
// use; the transport funnels each connection's writes through one goroutine
// (the peerConn writer) or one mutex (the client).
//
// Queue stages a message; Flush puts everything staged on the wire. The gob
// implementation writes in Queue (gob has no deferred form) and Flush is a
// no-op, so callers batch with Queue×N+Flush and get vectored writes when
// the codec supports them.
type frameWriter interface {
	Queue(m *broker.Message) error
	Flush() error
	// Codec names the wire format ("binary" or "gob").
	Codec() string
	// Pending approximates the staged-but-unflushed bytes (always 0 for gob).
	Pending() int
	// TxBytes and TxFrames are cumulative totals, readable from any
	// goroutine (link status and wire metrics).
	TxBytes() int64
	TxFrames() int64
}

// writeFrame is Queue+Flush — the unbatched path.
func writeFrame(w frameWriter, m *broker.Message) error {
	if err := w.Queue(m); err != nil {
		return err
	}
	return w.Flush()
}

// binWriter adapts wirefmt.Encoder to frameWriter.
type binWriter struct {
	enc    *wirefmt.Encoder
	bytes  atomic.Int64
	frames atomic.Int64
}

func newBinWriter(w io.Writer) *binWriter {
	return &binWriter{enc: wirefmt.NewEncoder(w, wirefmt.DefaultLimits)}
}

func (b *binWriter) Queue(m *broker.Message) error { return b.enc.Queue(m) }

func (b *binWriter) Flush() error {
	n, err := b.enc.Flush()
	if err != nil {
		return err
	}
	b.bytes.Add(n)
	b.frames.Store(b.enc.Frames)
	return nil
}

func (b *binWriter) Codec() string   { return WireBinary }
func (b *binWriter) Pending() int    { return b.enc.Pending() }
func (b *binWriter) TxBytes() int64  { return b.bytes.Load() }
func (b *binWriter) TxFrames() int64 { return b.frames.Load() }

// gobWriter adapts a gob.Encoder to frameWriter. The encoder must have been
// constructed over the countWriter so TxBytes sees what gob wrote.
type gobWriter struct {
	enc    *gob.Encoder
	cw     *countWriter
	frames atomic.Int64
}

func newGobWriter(enc *gob.Encoder, cw *countWriter) *gobWriter {
	return &gobWriter{enc: enc, cw: cw}
}

func (g *gobWriter) Queue(m *broker.Message) error {
	if err := g.enc.Encode(m); err != nil {
		return err
	}
	g.frames.Add(1)
	return nil
}

func (g *gobWriter) Flush() error    { return nil }
func (g *gobWriter) Codec() string   { return WireGob }
func (g *gobWriter) Pending() int    { return 0 }
func (g *gobWriter) TxBytes() int64  { return g.cw.n.Load() }
func (g *gobWriter) TxFrames() int64 { return g.frames.Load() }

// countWriter counts bytes through to an underlying writer — the gob path's
// substitute for the binary encoder's own flush accounting.
type countWriter struct {
	w io.Writer
	n atomic.Int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}

// frameReader is the inbound counterpart: one per connection, owned by its
// read loop.
type frameReader interface {
	Decode(m *broker.Message) error
	Codec() string
}

type binReader struct{ dec *wirefmt.Decoder }

func (b binReader) Decode(m *broker.Message) error { return b.dec.Decode(m) }
func (b binReader) Codec() string                  { return WireBinary }

type gobReader struct{ dec *gob.Decoder }

func (g gobReader) Decode(m *broker.Message) error { return g.dec.Decode(m) }
func (g gobReader) Codec() string                  { return WireGob }

// connReader is the read-side plumbing every connection starts with: an
// explicit bufio.Reader over the (optionally timing-instrumented) socket.
// The hello handshake is decoded through gob over this same bufio.Reader —
// gob sees an io.ByteReader, so it adds no buffering of its own, and the
// bytes following the handshake are still in OUR buffer wherever the
// negotiation lands. Without this, gob's internal bufio would swallow the
// head of the binary stream.
type connReader struct {
	br *bufio.Reader
	tr *timedReader // nil when decode timing is off
}

func newConnReader(conn net.Conn, timed bool) connReader {
	if !timed {
		return connReader{br: bufio.NewReader(conn)}
	}
	tr := &timedReader{conn: conn}
	return connReader{br: bufio.NewReader(tr), tr: tr}
}

// reader builds the post-handshake frame reader. For gob it continues with
// the handshake's decoder (the stream's type dictionary lives there); for
// binary it hands the buffered reader to a fresh wirefmt decoder.
func (cr connReader) reader(codec string, hdec *gob.Decoder) frameReader {
	if codec == WireBinary {
		return binReader{dec: wirefmt.NewDecoder(cr.br, wirefmt.DefaultLimits)}
	}
	return gobReader{dec: hdec}
}

// chooseWire resolves an offered codec against the local preference. An
// empty offer is the legacy gob handshake (no reply expected); otherwise
// binary is spoken only when both ends want it.
func chooseWire(offer, local string) string {
	if offer == WireBinary && local == WireBinary {
		return WireBinary
	}
	return WireGob
}
