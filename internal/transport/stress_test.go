package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// stressPaths mixes matching and non-matching publication paths for the
// stable subscription "/stock//price".
var stressPaths = [][]string{
	{"stock", "quote", "price"},
	{"stock", "price"},
	{"stock", "quote", "volume"},
	{"weather", "report"},
	{"stock", "index", "price"},
}

// sequentialDeliverySet routes the same workload through a bare broker one
// message at a time — the reference run the concurrent transport must match.
func sequentialDeliverySet(stable *xpath.XPE, pubs []xmldoc.Publication) map[uint64]bool {
	delivered := make(map[uint64]bool)
	b := broker.New(broker.Config{ID: "ref"}, func(to string, m *broker.Message) {
		if to == "stable" && m.Type == broker.MsgPublish {
			delivered[m.Pub.DocID] = true
		}
	})
	b.AddClient("stable")
	b.HandleMessage(&broker.Message{Type: broker.MsgSubscribe, XPE: stable}, "stable")
	for i := range pubs {
		b.HandleMessage(&broker.Message{Type: broker.MsgPublish, Pub: pubs[i]}, "producer")
	}
	return delivered
}

// TestConcurrentPublishStress drives one TCP broker with several concurrent
// publisher connections while another connection churns subscriptions, and
// asserts the delivery-equivalence invariant: the stable subscriber receives
// exactly the publication set of a sequential run — every matching
// publication exactly once, no duplicates, no strays. Run with -race: this
// test is the transport's main concurrency safety net.
func TestConcurrentPublishStress(t *testing.T) {
	const (
		publishers   = 6
		pubsPerConn  = 120
		churnRounds  = 150
		totalPubs    = publishers * pubsPerConn
		stableSubExp = "/stock//price"
	)
	stable := xpath.MustParse(stableSubExp)

	// Build the full publication list up front: publisher p sends DocIDs
	// p*pubsPerConn+1 ... (p+1)*pubsPerConn.
	var pubs []xmldoc.Publication
	for p := 0; p < publishers; p++ {
		for i := 0; i < pubsPerConn; i++ {
			id := uint64(p*pubsPerConn + i + 1)
			pubs = append(pubs, xmldoc.Publication{
				DocID: id,
				Path:  stressPaths[int(id)%len(stressPaths)],
			})
		}
	}
	want := sequentialDeliverySet(stable, pubs)
	if len(want) == 0 {
		t.Fatal("workload broken: sequential run delivered nothing")
	}

	srv := NewServerWorkers(broker.Config{ID: "b1"}, nil, 4)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sub, err := Dial(addr, "stable")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: stable}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.PRTSize() == 1 })

	// Subscription churn on a separate connection: control-plane writes
	// interleave with the publish data plane. The churned expressions never
	// match the publication paths, so the stable set is unaffected.
	churnDone := make(chan error, 1)
	go func() {
		c, err := Dial(addr, "churn")
		if err != nil {
			churnDone <- err
			return
		}
		defer c.Close()
		for i := 0; i < churnRounds; i++ {
			x := xpath.MustParse(fmt.Sprintf("/churn/e%d", i%13))
			if err := c.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: x}); err != nil {
				churnDone <- err
				return
			}
			if err := c.Send(&broker.Message{Type: broker.MsgUnsubscribe, XPE: x}); err != nil {
				churnDone <- err
				return
			}
		}
		churnDone <- nil
	}()

	var wg sync.WaitGroup
	pubErrs := make(chan error, publishers)
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c, err := Dial(addr, fmt.Sprintf("pub%d", p))
			if err != nil {
				pubErrs <- err
				return
			}
			defer c.Close()
			for i := 0; i < pubsPerConn; i++ {
				if err := c.Send(&broker.Message{Type: broker.MsgPublish, Pub: pubs[p*pubsPerConn+i]}); err != nil {
					pubErrs <- err
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(pubErrs)
	for err := range pubErrs {
		t.Fatal(err)
	}
	if err := <-churnDone; err != nil {
		t.Fatal(err)
	}

	// Collect until the expected set is complete, then linger briefly to
	// catch duplicates or strays.
	got := make(map[uint64]int)
	deadline := time.After(20 * time.Second)
	for len(got) < len(want) {
		select {
		case m, ok := <-sub.Deliveries:
			if !ok {
				t.Fatal("subscriber connection closed early")
			}
			got[m.Pub.DocID]++
		case <-deadline:
			t.Fatalf("timeout: received %d distinct publications, want %d", len(got), len(want))
		}
	}
drain:
	for {
		select {
		case m := <-sub.Deliveries:
			got[m.Pub.DocID]++
		case <-time.After(300 * time.Millisecond):
			break drain
		}
	}

	for id := range want {
		switch got[id] {
		case 1:
		case 0:
			t.Errorf("publication doc%d never delivered", id)
		default:
			t.Errorf("publication doc%d delivered %d times", id, got[id])
		}
	}
	for id := range got {
		if !want[id] {
			t.Errorf("stray delivery doc%d (does not match %s)", id, stableSubExp)
		}
	}
	if high := srv.InFlight.High(); high < 1 {
		t.Errorf("InFlight high-water = %d, want >= 1", high)
	}
	if n := srv.InFlight.Load(); n != 0 {
		t.Errorf("InFlight after drain = %d, want 0", n)
	}
}
