package transport

import (
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broker"
)

// Options tunes a Server's self-healing behaviour. The zero value gives a
// server that reconnects with the default backoff, buffers control messages
// during outages, and sends no heartbeats.
type Options struct {
	// Workers sizes the publication-matching pool; 0 means GOMAXPROCS.
	Workers int

	// ReconnectMin and ReconnectMax bound the exponential backoff between
	// redial attempts of a lost neighbour link (defaults 50ms and 2s). Each
	// wait gets up to 50% random jitter so two brokers redialling each
	// other do not stay in lockstep.
	ReconnectMin, ReconnectMax time.Duration

	// DialBudget caps consecutive failed dial attempts per outage; once
	// exhausted the link stays quiescent until new control traffic or an
	// inbound connection revives it. 0 means unlimited.
	DialBudget int

	// RetryBuffer bounds the control messages (advertise, subscribe,
	// unsubscribe, resync, ...) held per neighbour while its link is down;
	// they are flushed in order on reconnect. When the buffer is full the
	// oldest message is dropped and counted — the resync that follows every
	// reconnect repairs whatever the overflow lost. Default 1024.
	RetryBuffer int

	// Heartbeat, when positive, sends a heartbeat frame to every connected
	// neighbour at this interval. Heartbeats are consumed by the receiving
	// transport and never reach the broker.
	Heartbeat time.Duration

	// DeadAfter declares a neighbour dead when nothing (heartbeats
	// included) has been received for this long, dropping the connection so
	// the reconnect loop takes over. Default 3×Heartbeat; only active when
	// Heartbeat is set.
	DeadAfter time.Duration

	// ConnWrap, when non-nil, wraps every new connection (inbound and
	// dialled) before use — the fault-injection hook (see package
	// faultinject).
	ConnWrap func(net.Conn) net.Conn

	// DialTimeout bounds each TCP dial (default 2s).
	DialTimeout time.Duration

	// Wire selects the frame codec: WireBinary (the default) offers the
	// varint binary format of package wirefmt on every outbound connection
	// and accepts it inbound; WireGob forces the legacy gob framing in both
	// directions (rollout fallback, ablation baseline). A binary broker and
	// a gob broker interoperate: the pair negotiates down to gob.
	Wire string

	// FlushInterval makes the send-batching writer linger this long after
	// the first staged frame, growing the batch before the vectored write.
	// 0 (the default) flushes as soon as the queue is momentarily empty —
	// batching under load, zero added latency when idle. Values beyond a
	// few ms trade delivery latency for syscall amortisation.
	FlushInterval time.Duration

	// MaxBatchBytes flushes a batch once this many bytes are staged
	// (default 256KiB); MaxBatchFrames once this many frames are
	// (default 128).
	MaxBatchBytes  int
	MaxBatchFrames int
}

func (o Options) withDefaults() Options {
	if o.ReconnectMin <= 0 {
		o.ReconnectMin = 50 * time.Millisecond
	}
	if o.ReconnectMax <= 0 {
		o.ReconnectMax = 2 * time.Second
	}
	if o.RetryBuffer <= 0 {
		o.RetryBuffer = 1024
	}
	if o.DeadAfter <= 0 {
		o.DeadAfter = 3 * o.Heartbeat
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.Wire == "" {
		o.Wire = WireBinary
	}
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = 256 << 10
	}
	if o.MaxBatchFrames <= 0 {
		o.MaxBatchFrames = 128
	}
	return o
}

// healthStats counts self-healing events. All fields are atomics read by
// metric callbacks and by HealthStats().
type healthStats struct {
	reconnectAttempts atomic.Int64
	reconnects        atomic.Int64
	disconnects       atomic.Int64
	heartbeatsSent    atomic.Int64
	deadPeers         atomic.Int64
	droppedPubs       atomic.Int64
	retryBuffered     atomic.Int64
	retryFlushed      atomic.Int64
	retryOverflow     atomic.Int64
	resyncs           atomic.Int64
	badFrames         atomic.Int64
}

// HealthStats is a point-in-time copy of a server's self-healing counters.
type HealthStats struct {
	ReconnectAttempts int64 // dial attempts for lost neighbour links
	Reconnects        int64 // neighbour links successfully re-established
	Disconnects       int64 // neighbour connections lost
	HeartbeatsSent    int64
	DeadPeers         int64 // connections dropped by the dead-peer detector
	DroppedPubs       int64 // publications dropped because a link was down
	RetryBuffered     int64 // control messages buffered during outages
	RetryFlushed      int64 // buffered control messages delivered on reconnect
	RetryOverflow     int64 // control messages evicted from a full buffer
	Resyncs           int64 // control-state resyncs initiated after attach
	BadFrames         int64 // frames rejected by wire validation (see wire.go)
}

// Health snapshots the server's self-healing counters.
func (s *Server) Health() HealthStats {
	return HealthStats{
		ReconnectAttempts: s.stats.reconnectAttempts.Load(),
		Reconnects:        s.stats.reconnects.Load(),
		Disconnects:       s.stats.disconnects.Load(),
		HeartbeatsSent:    s.stats.heartbeatsSent.Load(),
		DeadPeers:         s.stats.deadPeers.Load(),
		DroppedPubs:       s.stats.droppedPubs.Load(),
		RetryBuffered:     s.stats.retryBuffered.Load(),
		RetryFlushed:      s.stats.retryFlushed.Load(),
		RetryOverflow:     s.stats.retryOverflow.Load(),
		Resyncs:           s.stats.resyncs.Load(),
		BadFrames:         s.stats.badFrames.Load(),
	}
}

// QueueDepths snapshots every live peer connection's outbound send-queue
// depth, keyed by peer ID. The broker's flight recorder calls it when
// capturing a slow publication, and /statusz serves it; it reads channel
// lengths only, so it is safe at any time.
func (s *Server) QueueDepths() map[string]int {
	out := make(map[string]int)
	s.peers.Range(func(k, v any) bool {
		out[k.(string)] = len(v.(*peerConn).queue)
		return true
	})
	return out
}

// LinkStatus is one neighbour link's health, served by /statusz.
type LinkStatus struct {
	Peer string `json:"peer"`
	// Up reports a live connection; false covers both an outage mid-redial
	// and a configured neighbour never yet contacted.
	Up bool `json:"up"`
	// QueueDepth is the outbound send queue's current length (0 when down).
	QueueDepth int `json:"queue_depth"`
	// Buffered counts control messages held for the next reconnect.
	Buffered int `json:"buffered,omitempty"`
	// LastRecvUnixNano is the wall-clock time of the last inbound frame
	// (heartbeats included); 0 before first contact.
	LastRecvUnixNano int64 `json:"last_recv_unix_nano,omitempty"`
	// Codec is the wire format the live connection negotiated ("binary" or
	// "gob"; empty when down).
	Codec string `json:"codec,omitempty"`
	// TxBytes counts bytes written to the live connection since it
	// attached (post-handshake frames only; resets on reconnect).
	TxBytes int64 `json:"tx_bytes,omitempty"`
	// BatchP50 is the connection's median frames-per-flush — 1.0 means
	// batching is doing nothing, larger means syscalls are being amortised.
	BatchP50 float64 `json:"batch_p50,omitempty"`
}

// Links snapshots the health of every configured neighbour link, sorted by
// peer ID.
func (s *Server) Links() []LinkStatus {
	s.linkMu.Lock()
	links := make([]*link, 0, len(s.links))
	for _, l := range s.links {
		links = append(links, l)
	}
	s.linkMu.Unlock()
	out := make([]LinkStatus, 0, len(links))
	seen := make(map[string]bool, len(links))
	for _, l := range links {
		l.mu.Lock()
		st := LinkStatus{Peer: l.id, Up: l.pc != nil, Buffered: len(l.buf)}
		if l.pc != nil {
			st.QueueDepth = len(l.pc.queue)
			st.Codec = l.pc.fw.Codec()
			st.TxBytes = l.pc.fw.TxBytes()
			st.BatchP50 = l.pc.batchP50()
		}
		l.mu.Unlock()
		st.LastRecvUnixNano = l.lastRecv.Load()
		out = append(out, st)
		seen[l.id] = true
	}
	for id := range s.neighbors {
		if !seen[id] {
			out = append(out, LinkStatus{Peer: id})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// link owns one neighbour relationship: the live connection (if any), the
// retry buffer that keeps control messages from being lost while the link is
// down, and the reconnect state machine. The broker's send callback routes
// every neighbour-bound message through deliver; connection loss anywhere
// (write failure, read failure, dead-peer detection) funnels through
// connLost, which starts the reconnect loop.
type link struct {
	s    *Server
	id   string
	addr string

	mu       sync.Mutex
	pc       *peerConn         // nil while the link is down
	buf      []*broker.Message // control messages awaiting a live connection
	dialing  bool              // a reconnect loop is running
	attempts int               // consecutive failed dials this outage

	// lastRecv is the unix-nano time of the last inbound frame, feeding
	// dead-peer detection.
	lastRecv atomic.Int64
}

// deliver sends a message over the link, buffering control messages and
// counting dropped publications while the link is down. Called by the broker
// with its routing lock held, so it must never call back into the broker.
func (l *link) deliver(m *broker.Message) {
	l.mu.Lock()
	pc := l.pc
	l.mu.Unlock()
	if pc != nil {
		if err := pc.write(m); err == nil {
			return
		}
		l.connLost(pc)
	}
	if m.Type == broker.MsgPublish {
		// Publications are not buffered: they are only meaningful promptly,
		// and the paper's delivery guarantee is re-established by resync
		// plus fresh publications. Count the loss instead of hiding it.
		l.s.stats.droppedPubs.Add(1)
		l.ensureDialing(false)
		return
	}
	if m.Type == broker.MsgHeartbeat {
		return // a heartbeat for a dead link is meaningless
	}
	l.mu.Lock()
	if len(l.buf) >= l.s.opts.RetryBuffer {
		// Evict the oldest: later control messages supersede earlier ones
		// more often than not, and the reconnect resync repairs the rest.
		l.buf = append(l.buf[:0:0], l.buf[1:]...)
		l.s.stats.retryOverflow.Add(1)
	}
	l.buf = append(l.buf, m)
	l.mu.Unlock()
	l.s.stats.retryBuffered.Add(1)
	l.ensureDialing(true)
}

// connLost records that a connection died. Only the goroutine that observes
// the currently-attached connection failing starts a reconnect; stale
// connections (already replaced by a newer attach) are just cleaned up.
func (l *link) connLost(pc *peerConn) {
	l.mu.Lock()
	current := l.pc == pc
	if current {
		l.pc = nil
	}
	l.mu.Unlock()
	pc.shutdown()
	l.s.dropPeer(l.id, pc)
	if current {
		l.s.stats.disconnects.Add(1)
		l.ensureDialing(false)
	}
}

// ensureDialing starts the reconnect loop if the link is down and no loop is
// already running. revive re-arms a link whose dial budget was exhausted —
// new control traffic is evidence the neighbour is still wanted.
func (l *link) ensureDialing(revive bool) {
	select {
	case <-l.s.closed:
		return
	default:
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.pc != nil || l.dialing {
		return
	}
	if b := l.s.opts.DialBudget; b > 0 && l.attempts >= b {
		if !revive {
			return
		}
		l.attempts = 0
	}
	l.dialing = true
	l.s.wg.Add(1)
	go l.reconnectLoop()
}

// reconnectLoop redials the neighbour with exponential backoff and jitter
// until it succeeds, the dial budget runs out, the server closes, or an
// inbound connection attaches first.
func (l *link) reconnectLoop() {
	defer l.s.wg.Done()
	backoff := l.s.opts.ReconnectMin
	for {
		l.mu.Lock()
		if l.pc != nil { // an inbound connection won the race
			l.dialing = false
			l.mu.Unlock()
			return
		}
		if b := l.s.opts.DialBudget; b > 0 && l.attempts >= b {
			l.dialing = false
			l.mu.Unlock()
			return
		}
		l.attempts++
		l.mu.Unlock()

		l.s.stats.reconnectAttempts.Add(1)
		if l.s.dialNeighbor(l) == nil {
			l.s.stats.reconnects.Add(1)
			return // dialNeighbor attached, flushed, and resynced
		}

		// Full jitter on the upper half of the window keeps two brokers
		// redialling each other from colliding in lockstep.
		d := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		select {
		case <-l.s.closed:
			l.mu.Lock()
			l.dialing = false
			l.mu.Unlock()
			return
		case <-time.After(d):
		}
		if backoff *= 2; backoff > l.s.opts.ReconnectMax {
			backoff = l.s.opts.ReconnectMax
		}
	}
}

// attach installs a new connection as the link's active one, replacing (and
// shutting down) any previous connection, and flushes the retry buffer in
// order. The caller must follow up with resyncAfterAttach once it is not
// holding any broker lock.
func (l *link) attach(pc *peerConn) {
	l.lastRecv.Store(time.Now().UnixNano())
	l.mu.Lock()
	old := l.pc
	l.pc = pc
	l.dialing = false
	l.attempts = 0
	buf := l.buf
	l.buf = nil
	// The peers-map update stays under the link lock: two racing attaches
	// (inbound accept vs outbound dial) must not leave the map pointing at
	// the losing connection, or Close would never reach the winner.
	if old != nil && old != pc {
		old.shutdown()
		l.s.dropPeer(l.id, old)
	}
	l.s.addPeer(l.id, pc)
	l.mu.Unlock()
	for i, m := range buf {
		if pc.write(m) != nil {
			// The fresh connection died mid-flush; keep the remainder for
			// the next attach.
			l.mu.Lock()
			l.buf = append(append([]*broker.Message{}, buf[i:]...), l.buf...)
			l.mu.Unlock()
			l.connLost(pc)
			return
		}
		l.s.stats.retryFlushed.Add(1)
	}
}

// resyncAfterAttach replays the control state owed to the neighbour. It must
// not run while a broker lock is held (ResyncFor takes the exclusive lock).
func (l *link) resyncAfterAttach() {
	l.s.stats.resyncs.Add(1)
	l.s.b.ResyncFor(l.id)
}

// heartbeatLoop periodically sends heartbeat frames on the link and drops
// connections that have gone silent past the dead-peer threshold.
func (l *link) heartbeatLoop() {
	defer l.s.wg.Done()
	t := time.NewTicker(l.s.opts.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-l.s.closed:
			return
		case <-t.C:
		}
		l.mu.Lock()
		pc := l.pc
		l.mu.Unlock()
		if pc == nil {
			continue
		}
		if silent := time.Since(time.Unix(0, l.lastRecv.Load())); silent > l.s.opts.DeadAfter {
			l.s.stats.deadPeers.Add(1)
			l.connLost(pc)
			continue
		}
		if err := pc.write(&broker.Message{Type: broker.MsgHeartbeat}); err != nil {
			l.connLost(pc)
			continue
		}
		l.s.stats.heartbeatsSent.Add(1)
	}
}

// registerHealthMetrics exposes the self-healing counters on the server's
// metrics registry.
func (s *Server) registerHealthMetrics() {
	counters := []struct {
		name, help string
		v          *atomic.Int64
	}{
		{"xbroker_link_reconnect_attempts", "Dial attempts for lost neighbour links.", &s.stats.reconnectAttempts},
		{"xbroker_link_reconnects", "Neighbour links successfully re-established.", &s.stats.reconnects},
		{"xbroker_link_disconnects", "Neighbour connections lost.", &s.stats.disconnects},
		{"xbroker_link_heartbeats_sent", "Heartbeat frames sent to neighbours.", &s.stats.heartbeatsSent},
		{"xbroker_link_dead_peers", "Connections dropped by dead-peer detection.", &s.stats.deadPeers},
		{"xbroker_link_dropped_publications", "Publications dropped while a link was down.", &s.stats.droppedPubs},
		{"xbroker_link_retry_buffered", "Control messages buffered during link outages.", &s.stats.retryBuffered},
		{"xbroker_link_retry_flushed", "Buffered control messages delivered on reconnect.", &s.stats.retryFlushed},
		{"xbroker_link_retry_overflow", "Control messages evicted from a full retry buffer.", &s.stats.retryOverflow},
		{"xbroker_link_resyncs", "Control-state resyncs initiated after (re)connects.", &s.stats.resyncs},
		{"xbroker_wire_bad_frames", "Inbound frames rejected by wire validation.", &s.stats.badFrames},
	}
	for _, c := range counters {
		v := c.v
		s.reg.CounterFunc(c.name, c.help, func() float64 { return float64(v.Load()) })
	}
	for codec, agg := range map[string]*wireAgg{
		WireBinary: &s.wireTx[0],
		WireGob:    &s.wireTx[1],
	} {
		a := agg
		s.reg.CounterFunc("xbroker_wire_tx_bytes_total",
			"Bytes written to peers, by wire codec (handshakes excluded).",
			func() float64 { return float64(a.bytes.Load()) }, "codec", codec)
		s.reg.CounterFunc("xbroker_wire_tx_frames_total",
			"Message frames written to peers, by wire codec.",
			func() float64 { return float64(a.frames.Load()) }, "codec", codec)
		s.reg.CounterFunc("xbroker_wire_tx_batches_total",
			"Vectored flushes toward peers, by wire codec; frames/batches is the mean batch size.",
			func() float64 { return float64(a.batches.Load()) }, "codec", codec)
	}
}
