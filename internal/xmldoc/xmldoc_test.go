package xmldoc

import (
	"reflect"
	"strings"
	"testing"
)

const sample = `<catalog><book isbn="1"><title>Go</title><author>Pike</author></book><book isbn="2"><title>XML</title></book><note/></catalog>`

func TestParseAndPaths(t *testing.T) {
	d, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	if d.Root.Name != "catalog" || len(d.Root.Children) != 3 {
		t.Fatalf("root = %+v", d.Root)
	}
	got := d.Paths()
	want := [][]string{
		{"catalog", "book", "title"},
		{"catalog", "book", "author"},
		{"catalog", "book", "title"},
		{"catalog", "note"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Paths = %v, want %v", got, want)
	}
	if d.Depth() != 3 {
		t.Errorf("Depth = %d, want 3", d.Depth())
	}
	if d.CountElements() != 7 {
		t.Errorf("CountElements = %d, want 7", d.CountElements())
	}
}

func TestRoundTrip(t *testing.T) {
	d, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	out := d.Marshal()
	d2, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
	if !reflect.DeepEqual(d.Paths(), d2.Paths()) {
		t.Error("paths changed across serialisation round trip")
	}
	if d.Size() != len(out) {
		t.Errorf("Size() = %d, Marshal length = %d", d.Size(), len(out))
	}
}

func TestAttributesAndText(t *testing.T) {
	d, err := Parse([]byte(`<a x="1 &amp; 2">hello <b>world</b> tail</a>`))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Root.Attrs) != 1 || d.Root.Attrs[0].Value != "1 & 2" {
		t.Errorf("attrs = %+v", d.Root.Attrs)
	}
	if !strings.Contains(d.Root.Text, "hello") {
		t.Errorf("text = %q", d.Root.Text)
	}
	out := string(d.Marshal())
	if !strings.Contains(out, "&amp;") {
		t.Errorf("escaping lost: %s", out)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"", "<a>", "<a></b>", "<a/><b/>", "text only",
	} {
		if _, err := Parse([]byte(in)); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

func TestExtract(t *testing.T) {
	d, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	pubs := Extract(d, 7)
	if len(pubs) != 4 {
		t.Fatalf("got %d publications", len(pubs))
	}
	if pubs[0].DocID != 7 || pubs[0].PathID != 0 {
		t.Errorf("pub ids = %+v", pubs[0])
	}
	if pubs[3].String() != "doc7#3:/catalog/note" {
		t.Errorf("String = %q", pubs[3].String())
	}
}

func TestSelfClosingLeaf(t *testing.T) {
	d, err := Parse([]byte(`<a><b/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	if got := string(d.Marshal()); got != `<a><b/></a>` {
		t.Errorf("Marshal = %q", got)
	}
}
