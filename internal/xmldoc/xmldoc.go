// Package xmldoc provides the XML document model of the routing system: a
// lightweight element tree, parsing and serialisation, and the decomposition
// of a document into its root-to-leaf paths — the publication units the
// routers actually forward (annotated with document and path identifiers, as
// in the paper this is transparent to publishers and subscribers, who handle
// entire documents).
package xmldoc

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"repro/internal/symtab"
)

// Elem is a node of the element tree.
type Elem struct {
	Name     string
	Attrs    []Attr
	Text     string // concatenated character data directly under this element
	Children []*Elem
}

// Attr is a name/value attribute pair.
type Attr struct {
	Name  string
	Value string
}

// Document is a parsed or generated XML document.
type Document struct {
	Root *Elem
}

// NewElem constructs an element with the given name and children.
func NewElem(name string, children ...*Elem) *Elem {
	return &Elem{Name: name, Children: children}
}

// Parse reads an XML document from data. It keeps element structure,
// attributes and character data, and ignores comments and processing
// instructions.
func Parse(data []byte) (*Document, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	var stack []*Elem
	var root *Elem
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmldoc: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el := &Elem{Name: t.Name.Local}
			for _, a := range t.Attr {
				el.Attrs = append(el.Attrs, Attr{Name: a.Name.Local, Value: a.Value})
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmldoc: parse: multiple root elements")
				}
				root = el
			} else {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, el)
			}
			stack = append(stack, el)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmldoc: parse: unbalanced end element %q", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				text := strings.TrimSpace(string(t))
				if text != "" {
					stack[len(stack)-1].Text += text
				}
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmldoc: parse: no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmldoc: parse: unclosed elements")
	}
	return &Document{Root: root}, nil
}

// WriteTo serialises the document as XML.
func (d *Document) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	err := writeElem(cw, d.Root)
	return cw.n, err
}

// Marshal serialises the document to a byte slice.
func (d *Document) Marshal() []byte {
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		// bytes.Buffer never fails; this guards future writer changes.
		panic(err)
	}
	return buf.Bytes()
}

// Size returns the serialised size in bytes.
func (d *Document) Size() int {
	cw := &countWriter{w: io.Discard}
	if err := writeElem(cw, d.Root); err != nil {
		panic(err)
	}
	return int(cw.n)
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeElem(w io.Writer, e *Elem) error {
	if _, err := io.WriteString(w, "<"+e.Name); err != nil {
		return err
	}
	for _, a := range e.Attrs {
		if _, err := io.WriteString(w, " "+a.Name+`="`+escapeAttr(a.Value)+`"`); err != nil {
			return err
		}
	}
	if len(e.Children) == 0 && e.Text == "" {
		_, err := io.WriteString(w, "/>")
		return err
	}
	if _, err := io.WriteString(w, ">"); err != nil {
		return err
	}
	if e.Text != "" {
		if _, err := io.WriteString(w, escapeText(e.Text)); err != nil {
			return err
		}
	}
	for _, c := range e.Children {
		if err := writeElem(w, c); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "</"+e.Name+">")
	return err
}

var attrEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", `"`, "&quot;")

var textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")

func escapeAttr(s string) string { return attrEscaper.Replace(s) }
func escapeText(s string) string { return textEscaper.Replace(s) }

// Paths returns the document's root-to-leaf element-name paths in document
// order. A leaf is an element without element children.
func (d *Document) Paths() [][]string {
	var out [][]string
	var prefix []string
	var walk func(e *Elem)
	walk = func(e *Elem) {
		prefix = append(prefix, e.Name)
		if len(e.Children) == 0 {
			p := make([]string, len(prefix))
			copy(p, prefix)
			out = append(out, p)
		}
		for _, c := range e.Children {
			walk(c)
		}
		prefix = prefix[:len(prefix)-1]
	}
	walk(d.Root)
	return out
}

// AnnotatedPaths returns the root-to-leaf paths together with each path
// element's attributes (nil for attribute-less elements). Attribute maps
// are shared between paths traversing the same element.
func (d *Document) AnnotatedPaths() ([][]string, [][]map[string]string) {
	var paths [][]string
	var attrs [][]map[string]string
	var prefix []string
	var prefixAttrs []map[string]string
	attrMap := func(e *Elem) map[string]string {
		if len(e.Attrs) == 0 {
			return nil
		}
		m := make(map[string]string, len(e.Attrs))
		for _, a := range e.Attrs {
			m[a.Name] = a.Value
		}
		return m
	}
	memo := make(map[*Elem]map[string]string)
	var walk func(e *Elem)
	walk = func(e *Elem) {
		m, ok := memo[e]
		if !ok {
			m = attrMap(e)
			memo[e] = m
		}
		prefix = append(prefix, e.Name)
		prefixAttrs = append(prefixAttrs, m)
		if len(e.Children) == 0 {
			p := make([]string, len(prefix))
			copy(p, prefix)
			paths = append(paths, p)
			a := make([]map[string]string, len(prefixAttrs))
			copy(a, prefixAttrs)
			attrs = append(attrs, a)
		}
		for _, c := range e.Children {
			walk(c)
		}
		prefix = prefix[:len(prefix)-1]
		prefixAttrs = prefixAttrs[:len(prefixAttrs)-1]
	}
	walk(d.Root)
	return paths, attrs
}

// SymPaths returns the document's root-to-leaf paths interned against the
// shared symbol table — the representation the brokers match. Element names
// are interned (not merely looked up) so a document introduces its alphabet
// exactly once; repeat documents convert with lock-free reads only.
func (d *Document) SymPaths() [][]symtab.Sym {
	paths := d.Paths()
	out := make([][]symtab.Sym, len(paths))
	for i, p := range paths {
		out[i] = symtab.InternPath(p)
	}
	return out
}

// AnnotatedSymPaths is AnnotatedPaths with the element-name paths interned;
// the attribute maps are shared with the string form.
func (d *Document) AnnotatedSymPaths() ([][]symtab.Sym, [][]map[string]string) {
	paths, attrs := d.AnnotatedPaths()
	out := make([][]symtab.Sym, len(paths))
	for i, p := range paths {
		out[i] = symtab.InternPath(p)
	}
	return out, attrs
}

// Depth returns the maximum element nesting depth (the root counts as 1).
func (d *Document) Depth() int {
	var depth func(e *Elem) int
	depth = func(e *Elem) int {
		best := 1
		for _, c := range e.Children {
			if dd := 1 + depth(c); dd > best {
				best = dd
			}
		}
		return best
	}
	return depth(d.Root)
}

// CountElements returns the total number of elements.
func (d *Document) CountElements() int {
	var count func(e *Elem) int
	count = func(e *Elem) int {
		n := 1
		for _, c := range e.Children {
			n += count(c)
		}
		return n
	}
	return count(d.Root)
}

// Publication is one root-to-leaf path of a document, the unit the routers
// forward. DocID identifies the originating document so that subscribers
// (or their edge brokers) can reassemble or deduplicate deliveries; PathID
// is the index of the path within the document.
type Publication struct {
	DocID  uint64
	PathID int
	Path   []string
	// SymPath is Path interned against the shared symbol table, filled by
	// Extract so every broker hop matches symbols without re-converting.
	// Nil is allowed (hand-built publications); brokers then intern Path on
	// arrival.
	SymPath []symtab.Sym
	// Attrs holds each path element's attributes (nil entries for
	// attribute-less elements; a nil slice means no attributes anywhere).
	// Subscriptions with attribute predicates are evaluated against it.
	Attrs []map[string]string
}

// String renders the publication path with its identifiers.
func (p Publication) String() string {
	return fmt.Sprintf("doc%d#%d:/%s", p.DocID, p.PathID, strings.Join(p.Path, "/"))
}

// Extract decomposes a document into its publications, attributes included.
func Extract(d *Document, docID uint64) []Publication {
	paths, attrs := d.AnnotatedPaths()
	pubs := make([]Publication, len(paths))
	for i, p := range paths {
		pubs[i] = Publication{DocID: docID, PathID: i, Path: p, SymPath: symtab.InternPath(p), Attrs: attrs[i]}
	}
	return pubs
}
