package xmldoc

import (
	"reflect"
	"testing"
)

func TestAnnotatedPaths(t *testing.T) {
	d, err := Parse([]byte(`<claims><claim lang="en" urgency="2"><detail/></claim><claim lang="fr"><detail/></claim></claims>`))
	if err != nil {
		t.Fatal(err)
	}
	paths, attrs := d.AnnotatedPaths()
	if len(paths) != 2 || len(attrs) != 2 {
		t.Fatalf("paths = %d, attrs = %d", len(paths), len(attrs))
	}
	want := []string{"claims", "claim", "detail"}
	if !reflect.DeepEqual(paths[0], want) {
		t.Errorf("path = %v", paths[0])
	}
	if attrs[0][0] != nil {
		t.Errorf("claims has no attributes, got %v", attrs[0][0])
	}
	if attrs[0][1]["lang"] != "en" || attrs[0][1]["urgency"] != "2" {
		t.Errorf("claim attrs = %v", attrs[0][1])
	}
	if attrs[1][1]["lang"] != "fr" {
		t.Errorf("second claim attrs = %v", attrs[1][1])
	}
	if attrs[0][2] != nil {
		t.Errorf("detail has no attributes, got %v", attrs[0][2])
	}
}

func TestExtractCarriesAttributes(t *testing.T) {
	d, err := Parse([]byte(`<a x="1"><b y="2"/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	pubs := Extract(d, 1)
	if len(pubs) != 1 {
		t.Fatalf("pubs = %d", len(pubs))
	}
	if pubs[0].Attrs[0]["x"] != "1" || pubs[0].Attrs[1]["y"] != "2" {
		t.Errorf("Attrs = %v", pubs[0].Attrs)
	}
}

// TestAnnotatedPathsShareMaps: the same element's attribute map is shared
// across the paths traversing it (memory matters for wide documents).
func TestAnnotatedPathsShareMaps(t *testing.T) {
	d, err := Parse([]byte(`<r k="v"><a/><b/></r>`))
	if err != nil {
		t.Fatal(err)
	}
	_, attrs := d.AnnotatedPaths()
	if len(attrs) != 2 {
		t.Fatalf("attrs = %d", len(attrs))
	}
	if &attrs[0][0] == &attrs[1][0] {
		t.Skip("slices differ; compare map identity below")
	}
	// Mutating through one view must be visible through the other: same map.
	attrs[0][0]["probe"] = "yes"
	if attrs[1][0]["probe"] != "yes" {
		t.Error("root attribute maps are not shared between paths")
	}
}
