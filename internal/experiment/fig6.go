package experiment

import (
	"repro/internal/dtddata"
	"repro/internal/subtree"
	"repro/internal/xpath"
)

// Fig6Options sizes the routing-table-size experiment. The paper inserts
// 100,000 NITF XPEs; the default here is 6,000 (see EXPERIMENTS.md on
// scale), with measurement checkpoints along the way as in Figure 6.
type Fig6Options struct {
	// N is the total number of XPEs per set (default 6000).
	N int
	// Checkpoints is the number of x-axis measurement points (default 10).
	Checkpoints int
	// RateA and RateB are the covering rates of Sets A and B (paper: 0.9
	// and 0.5).
	RateA, RateB float64
	// Seed fixes the workloads.
	Seed int64
}

func (o *Fig6Options) defaults() {
	if o.N <= 0 {
		o.N = 6000
	}
	if o.Checkpoints <= 0 {
		o.Checkpoints = 10
	}
	if o.RateA == 0 {
		o.RateA = 0.9
	}
	if o.RateB == 0 {
		o.RateB = 0.5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Fig6Result holds the routing-table-size series of Figure 6.
type Fig6Result struct {
	N          []int // x axis: number of XPEs inserted
	NoCovering []int // table size without covering (== N)
	CoveringA  []int // table size with covering, Set A
	CoveringB  []int // table size with covering, Set B
	RateA      float64
	RateB      float64
}

// RunFig6 reproduces Figure 6: routing table size as XPEs arrive, with and
// without the covering optimisation, on a high-overlap set (A) and a
// lower-overlap set (B). With covering, an arriving XPE covered by the
// table is not stored (it would not be forwarded to this downstream
// broker), and an arriving XPE that covers stored ones evicts them.
func RunFig6(opts Fig6Options) (*Fig6Result, error) {
	opts.defaults()
	setA, err := BuildCoveringSet(dtddata.NITF(), opts.N, opts.RateA, opts.Seed)
	if err != nil {
		return nil, err
	}
	setB, err := BuildCoveringSet(dtddata.NITF(), opts.N, opts.RateB, opts.Seed+1)
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{RateA: setA.MeasuredRate, RateB: setB.MeasuredRate}
	step := opts.N / opts.Checkpoints
	if step == 0 {
		step = 1
	}

	sizesA := coveringTableSizes(setA.XPEs, step)
	sizesB := coveringTableSizes(setB.XPEs, step)
	for i := 0; i < len(sizesA) && i < len(sizesB); i++ {
		n := (i + 1) * step
		res.N = append(res.N, n)
		res.NoCovering = append(res.NoCovering, n)
		res.CoveringA = append(res.CoveringA, sizesA[i])
		res.CoveringB = append(res.CoveringB, sizesB[i])
	}
	return res, nil
}

// coveringTableSizes simulates a downstream covering-based routing table:
// covered arrivals are rejected, covering arrivals evict what they cover.
// It returns the table size at every step-th insertion.
func coveringTableSizes(xpes []*xpath.XPE, step int) []int {
	tree := subtree.New()
	var sizes []int
	for i, x := range xpes {
		insertCovering(tree, x)
		if (i+1)%step == 0 {
			sizes = append(sizes, tree.Size())
		}
	}
	return sizes
}

// insertCovering applies the covering discipline to a table: drop covered
// arrivals, evict newly covered entries.
func insertCovering(tree *subtree.Tree, x *xpath.XPE) {
	if tree.IsCovered(x) {
		return
	}
	res := tree.Insert(x)
	for _, covered := range res.NewlyCovered {
		tree.Remove(covered)
	}
}

// Table renders the result in the shape of Figure 6.
func (r *Fig6Result) Table() *Table {
	t := &Table{
		Caption: "Figure 6 — Routing table size vs. number of XPath queries (NITF)",
		Columns: []string{"#XPEs", "NoCovering", "Covering(SetA)", "Covering(SetB)"},
		Notes: []string{
			"Set A measured covering rate: " + fpct(r.RateA),
			"Set B measured covering rate: " + fpct(r.RateB),
		},
	}
	for i := range r.N {
		t.AddRow(fint(r.N[i]), fint(r.NoCovering[i]), fint(r.CoveringA[i]), fint(r.CoveringB[i]))
	}
	return t
}
