package experiment

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dtddata"
)

func TestBuildCoveringSetRates(t *testing.T) {
	for _, rate := range []float64{0.5, 0.9} {
		set, err := BuildCoveringSet(dtddata.NITF(), 2000, rate, 11)
		if err != nil {
			t.Fatalf("rate %.1f: %v", rate, err)
		}
		if len(set.XPEs) != 2000 {
			t.Fatalf("rate %.1f: got %d XPEs", rate, len(set.XPEs))
		}
		if math.Abs(set.MeasuredRate-rate) > 0.08 {
			t.Errorf("rate %.1f: measured %.3f", rate, set.MeasuredRate)
		}
		// Distinctness.
		seen := make(map[string]bool)
		for _, x := range set.XPEs {
			if seen[x.Key()] {
				t.Fatalf("duplicate %s", x)
			}
			seen[x.Key()] = true
		}
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := RunFig6(Fig6Options{N: 2000, Checkpoints: 4})
	if err != nil {
		t.Fatal(err)
	}
	last := len(res.N) - 1
	// Covering must compact the table, and the higher-overlap Set A must
	// compact more than Set B — the paper's headline Figure 6 shape.
	if res.CoveringA[last] >= res.NoCovering[last] {
		t.Errorf("Set A covering table %d not smaller than %d", res.CoveringA[last], res.NoCovering[last])
	}
	if res.CoveringB[last] >= res.NoCovering[last] {
		t.Errorf("Set B covering table %d not smaller than %d", res.CoveringB[last], res.NoCovering[last])
	}
	if res.CoveringA[last] >= res.CoveringB[last] {
		t.Errorf("Set A (%d) should compact below Set B (%d)", res.CoveringA[last], res.CoveringB[last])
	}
	// The paper reports up to ~90% reduction on the high-overlap set.
	reduction := 1 - float64(res.CoveringA[last])/float64(res.NoCovering[last])
	if reduction < 0.7 {
		t.Errorf("Set A reduction = %.2f, want > 0.7", reduction)
	}
	if !strings.Contains(res.Table().String(), "Figure 6") {
		t.Error("table caption missing")
	}
}

func TestFig7Shape(t *testing.T) {
	res, err := RunFig7(Fig7Options{N: 2000, Checkpoints: 4})
	if err != nil {
		t.Fatal(err)
	}
	last := len(res.N) - 1
	// Merging compacts beyond covering; imperfect compacts beyond perfect.
	if res.PerfectMerging[last] > res.Covering[last] {
		t.Errorf("perfect merging (%d) did not compact below covering (%d)",
			res.PerfectMerging[last], res.Covering[last])
	}
	if res.ImperfectMerging[last] > res.PerfectMerging[last] {
		t.Errorf("imperfect merging (%d) did not compact below perfect (%d)",
			res.ImperfectMerging[last], res.PerfectMerging[last])
	}
	if res.ImperfectMerging[last] >= res.Covering[last] {
		t.Errorf("imperfect merging (%d) must compact strictly below covering (%d)",
			res.ImperfectMerging[last], res.Covering[last])
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := RunFig8(Fig8Options{N: 1000, BatchSize: 250})
	if err != nil {
		t.Fatal(err)
	}
	mean := func(xs []float64) float64 {
		total := 0.0
		for _, v := range xs {
			total += v
		}
		return total / float64(len(xs))
	}
	// Covering must cut processing time for both DTDs, more for NITF whose
	// advertisement set is far larger.
	if mean(res.NITFCov) >= mean(res.NITFNoCov) {
		t.Errorf("NITF covering %.4f >= no covering %.4f", mean(res.NITFCov), mean(res.NITFNoCov))
	}
	if mean(res.PSDCov) >= mean(res.PSDNoCov) {
		t.Errorf("PSD covering %.4f >= no covering %.4f", mean(res.PSDCov), mean(res.PSDNoCov))
	}
	if res.NITFAdvs < 20*res.PSDAdvs {
		t.Errorf("advertisement ratio %d/%d below expectation", res.NITFAdvs, res.PSDAdvs)
	}
}

func TestTable1Shape(t *testing.T) {
	res, err := RunTable1(Table1Options{N: 2000, Docs: 40})
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range []struct {
		name string
		s    struct {
			NoCovering       float64
			Covering         float64
			PerfectMerging   float64
			ImperfectMerging float64
			TableNoCov       int
			TableCov         int
			TablePM          int
			TableIPM         int
		}
	}{{"A", res.SetA}, {"B", res.SetB}} {
		if set.s.Covering >= set.s.NoCovering {
			t.Errorf("set %s: covering %.4f >= no covering %.4f", set.name, set.s.Covering, set.s.NoCovering)
		}
		if set.s.TableCov >= set.s.TableNoCov {
			t.Errorf("set %s: covering table not smaller", set.name)
		}
		if set.s.TableIPM > set.s.TablePM {
			t.Errorf("set %s: imperfect merging table larger than perfect", set.name)
		}
	}
	// Set A (higher overlap) must benefit more, as in the paper's 84.6%
	// vs 47.5%.
	gainA := 1 - res.SetA.Covering/res.SetA.NoCovering
	gainB := 1 - res.SetB.Covering/res.SetB.NoCovering
	if gainA <= gainB {
		t.Errorf("set A gain %.2f not above set B gain %.2f", gainA, gainB)
	}
}

func TestNetworkShape(t *testing.T) {
	res, err := RunNetwork(NetworkOptions{Levels: 3, SubsPerSubscriber: 60, Docs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Brokers != 7 || len(res.Rows) != 6 {
		t.Fatalf("brokers=%d rows=%d", res.Brokers, len(res.Rows))
	}
	byName := make(map[string]NetworkRow, len(res.Rows))
	for _, row := range res.Rows {
		byName[row.Strategy] = row
	}
	// Advertisements must cut traffic versus flooding.
	if byName["with-Adv-no-Cov"].Traffic >= byName["no-Adv-no-Cov"].Traffic {
		t.Errorf("advertisements did not reduce traffic: %d vs %d",
			byName["with-Adv-no-Cov"].Traffic, byName["no-Adv-no-Cov"].Traffic)
	}
	// Covering must cut traffic further.
	if byName["with-Adv-with-Cov"].Traffic >= byName["with-Adv-no-Cov"].Traffic {
		t.Errorf("covering did not reduce traffic: %d vs %d",
			byName["with-Adv-with-Cov"].Traffic, byName["with-Adv-no-Cov"].Traffic)
	}
	// Every strategy must deliver the same set of publications (routing
	// optimisations must not lose messages).
	want := byName["no-Adv-no-Cov"].Delivered
	for _, row := range res.Rows {
		if row.Delivered != want {
			t.Errorf("%s delivered %d, want %d", row.Strategy, row.Delivered, want)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := RunFig9(Fig9Options{Subs: 250, Docs: 50, Degrees: []float64{0, 0.2, 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Points[0].FalsePositives != 0 {
		t.Errorf("perfect merging produced %d false positives", res.Points[0].FalsePositives)
	}
	if res.Points[2].FalsePositives == 0 {
		t.Error("tolerant merging produced no in-network false positives at all")
	}
	if res.Points[2].FalsePositivePct < res.Points[1].FalsePositivePct {
		t.Errorf("false positives did not grow with the degree: %v", res.Points)
	}
	// Deliveries to clients must be identical across degrees: false
	// positives stay inside the network.
	for _, p := range res.Points[1:] {
		if p.Delivered != res.Points[0].Delivered {
			t.Errorf("deliveries changed with degree: %v", res.Points)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	res, err := RunFig10(DelayOptions{
		DocBytes:          []int{2 << 10, 20 << 10},
		Hops:              []int{2, 4, 6},
		DocsPerSize:       3,
		SubsPerSubscriber: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		// Delay grows with hops.
		if !(s.DelayMs[0] < s.DelayMs[len(s.DelayMs)-1]) {
			t.Errorf("series %+v: delay not increasing with hops", s)
		}
	}
	// Covering must not be slower than no covering at the far end.
	series := map[[2]interface{}]DelaySeries{}
	for _, s := range res.Series {
		series[[2]interface{}{s.DocBytes, s.Covering}] = s
	}
	for _, size := range []int{2 << 10, 20 << 10} {
		cov := series[[2]interface{}{size, true}]
		nocov := series[[2]interface{}{size, false}]
		last := len(cov.DelayMs) - 1
		if cov.DelayMs[last] > nocov.DelayMs[last]*1.1 {
			t.Errorf("size %d: covering slower (%.3f) than no covering (%.3f)",
				size, cov.DelayMs[last], nocov.DelayMs[last])
		}
	}
}
