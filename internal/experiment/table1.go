package experiment

import (
	"time"

	"repro/internal/dtddata"
	"repro/internal/gen"
	"repro/internal/merge"
	"repro/internal/subtree"
	"repro/internal/xmldoc"
)

// Table1Options sizes the publication-routing-time experiment (paper:
// 100,000 XPEs and 23,098 publications extracted from 500 documents;
// defaults here are 6,000 XPEs and 500 documents).
type Table1Options struct {
	N               int     // XPEs per set (default 20000)
	Docs            int     // documents to extract publications from (default 500)
	RateA, RateB    float64 // covering rates of the two sets
	ImperfectDegree float64 // tolerance of the imperfect-merging row (default 0.1)
	Seed            int64
}

func (o *Table1Options) defaults() {
	if o.N <= 0 {
		o.N = 6000
	}
	if o.Docs <= 0 {
		o.Docs = 500
	}
	if o.RateA == 0 {
		o.RateA = 0.9
	}
	if o.RateB == 0 {
		o.RateB = 0.5
	}
	if o.ImperfectDegree == 0 {
		o.ImperfectDegree = 0.1
	}
	if o.Seed == 0 {
		o.Seed = 4
	}
}

// Table1Result holds mean per-publication routing times in milliseconds for
// the paper's four methods on Sets A and B.
type Table1Result struct {
	Publications int
	SetA, SetB   struct {
		NoCovering       float64
		Covering         float64
		PerfectMerging   float64
		ImperfectMerging float64
		TableNoCov       int
		TableCov         int
		TablePM          int
		TableIPM         int
	}
	RateA, RateB float64
}

// RunTable1 reproduces Table 1: the time to route publications against a
// large subscription table, under no covering (flat table, full scan),
// covering (compacted table, pruned tree matching), and covering plus
// perfect/imperfect merging.
func RunTable1(opts Table1Options) (*Table1Result, error) {
	opts.defaults()
	setA, err := BuildCoveringSet(dtddata.NITF(), opts.N, opts.RateA, opts.Seed)
	if err != nil {
		return nil, err
	}
	setB, err := BuildCoveringSet(dtddata.NITF(), opts.N, opts.RateB, opts.Seed+1)
	if err != nil {
		return nil, err
	}

	// Publications extracted from generated NITF documents.
	dg := gen.NewDocGenerator(dtddata.NITF(), opts.Seed+2)
	dg.AvgRepeat = 1.5
	var pubs []xmldoc.Publication
	for i := 0; i < opts.Docs; i++ {
		doc := dg.Generate()
		pubs = append(pubs, xmldoc.Extract(doc, uint64(i))...)
	}

	est := merge.NewDegreeEstimator(GenerateAdvertisements(dtddata.NITF()), 10, 4000)
	res := &Table1Result{Publications: len(pubs), RateA: setA.MeasuredRate, RateB: setB.MeasuredRate}

	measure := func(set *CoveringSet, out *struct {
		NoCovering       float64
		Covering         float64
		PerfectMerging   float64
		ImperfectMerging float64
		TableNoCov       int
		TableCov         int
		TablePM          int
		TableIPM         int
	}) {
		// No covering: flat table, every publication scanned against every
		// XPE.
		flat := subtree.New()
		for _, x := range set.XPEs {
			flat.FlatInsert(x)
		}
		out.TableNoCov = flat.Size()
		out.NoCovering = routeAll(flat, pubs)

		// Covering: the downstream table holds only uncovered XPEs and
		// matching prunes subtrees.
		covTree := subtree.New()
		for _, x := range set.XPEs {
			insertCovering(covTree, x)
		}
		out.TableCov = covTree.Size()
		out.Covering = routeAll(covTree, pubs)

		// Perfect merging on top of covering.
		pmTree := subtree.New()
		for _, x := range set.XPEs {
			insertCovering(pmTree, x)
		}
		merge.PassToFixpoint(pmTree, merge.Options{MaxDegree: 0, Estimator: est})
		out.TablePM = pmTree.Size()
		out.PerfectMerging = routeAll(pmTree, pubs)

		// Imperfect merging.
		ipmTree := subtree.New()
		for _, x := range set.XPEs {
			insertCovering(ipmTree, x)
		}
		merge.PassToFixpoint(ipmTree, merge.Options{MaxDegree: opts.ImperfectDegree, Estimator: est})
		out.TableIPM = ipmTree.Size()
		out.ImperfectMerging = routeAll(ipmTree, pubs)
	}
	measure(setA, &res.SetA)
	measure(setB, &res.SetB)
	return res, nil
}

// routeAll matches every publication against the table and returns the mean
// per-publication routing time in milliseconds.
func routeAll(tree *subtree.Tree, pubs []xmldoc.Publication) float64 {
	if len(pubs) == 0 {
		return 0
	}
	sink := 0
	start := time.Now()
	for i := range pubs {
		tree.MatchPath(pubs[i].Path, func(n *subtree.Node) { sink++ })
	}
	elapsed := time.Since(start)
	_ = sink
	return float64(elapsed) / float64(len(pubs)) / float64(time.Millisecond)
}

// Table renders the result in the shape of Table 1.
func (r *Table1Result) Table() *Table {
	t := &Table{
		Caption: "Table 1 — Publication routing performance (ms per publication)",
		Columns: []string{"Method", "Set A (ms)", "Set B (ms)", "TableA", "TableB"},
		Notes: []string{
			fint(r.Publications) + " publications routed",
			"Set A covering rate " + fpct(r.RateA) + ", Set B " + fpct(r.RateB),
		},
	}
	t.AddRow("No Covering", fms(r.SetA.NoCovering), fms(r.SetB.NoCovering), fint(r.SetA.TableNoCov), fint(r.SetB.TableNoCov))
	t.AddRow("Covering", fms(r.SetA.Covering), fms(r.SetB.Covering), fint(r.SetA.TableCov), fint(r.SetB.TableCov))
	t.AddRow("Perfect Merging", fms(r.SetA.PerfectMerging), fms(r.SetB.PerfectMerging), fint(r.SetA.TablePM), fint(r.SetB.TablePM))
	t.AddRow("Imperfect Merging", fms(r.SetA.ImperfectMerging), fms(r.SetB.ImperfectMerging), fint(r.SetA.TableIPM), fint(r.SetB.TableIPM))
	return t
}
