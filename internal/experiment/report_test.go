package experiment

import (
	"strings"
	"testing"

	"repro/internal/dtd"
	"repro/internal/dtddata"
)

func nitfForTest() *dtd.DTD { return dtddata.NITF() }

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Caption: "Demo table",
		Columns: []string{"Method", "Value"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("covering", "42")
	tab.AddRow("a-much-longer-method-name", "7")
	out := tab.String()
	if !strings.Contains(out, "Demo table") {
		t.Error("caption missing")
	}
	if !strings.Contains(out, "note: a note") {
		t.Error("note missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Caption, header, rule, two rows, note.
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns align: "42" and "7" start at the same offset.
	r1 := lines[3]
	r2 := lines[4]
	if strings.Index(r1, "42") != strings.Index(r2, "7") {
		t.Errorf("columns misaligned:\n%s\n%s", r1, r2)
	}
}

func TestFormatHelpers(t *testing.T) {
	if fms(1.2345) != "1.234" && fms(1.2345) != "1.235" {
		t.Errorf("fms = %q", fms(1.2345))
	}
	if fint(42) != "42" || f64(7) != "7" {
		t.Error("integer formatting broken")
	}
	if fpct(0.5) != "50.0%" {
		t.Errorf("fpct = %q", fpct(0.5))
	}
	if ffrac(0.125) != "0.125" {
		t.Errorf("ffrac = %q", ffrac(0.125))
	}
}

func TestUncoveredHelper(t *testing.T) {
	set, err := BuildCoveringSet(nitfForTest(), 500, 0.6, 77)
	if err != nil {
		t.Fatal(err)
	}
	un := Uncovered(set.XPEs)
	want := int(float64(len(set.XPEs)) * (1 - set.MeasuredRate))
	if len(un) != want {
		t.Errorf("Uncovered = %d, want %d", len(un), want)
	}
}
