package experiment

import (
	"repro/internal/dtddata"
	"repro/internal/merge"
	"repro/internal/subtree"
	"repro/internal/xpath"
)

// Fig7Options sizes the merging experiment (paper: Set B, 100,000 XPEs;
// default 6,000 here).
type Fig7Options struct {
	N           int
	Checkpoints int
	Rate        float64 // covering rate of the input set (paper: Set B, 0.5)
	// ImperfectDegree is the D_imperfect tolerance of the imperfect series
	// (paper: 0.1).
	ImperfectDegree float64
	Seed            int64
}

func (o *Fig7Options) defaults() {
	if o.N <= 0 {
		o.N = 6000
	}
	if o.Checkpoints <= 0 {
		o.Checkpoints = 10
	}
	if o.Rate == 0 {
		o.Rate = 0.5
	}
	if o.ImperfectDegree == 0 {
		o.ImperfectDegree = 0.1
	}
	if o.Seed == 0 {
		o.Seed = 2
	}
}

// Fig7Result holds the Figure 7 series: table size under covering alone,
// covering plus perfect merging, and covering plus imperfect merging.
type Fig7Result struct {
	N                []int
	Covering         []int
	PerfectMerging   []int
	ImperfectMerging []int
	Rate             float64
	Degree           float64
}

// RunFig7 reproduces Figure 7 on a Set-B-like workload: merging compacts
// the covering-based routing table further, and tolerating an imperfect
// degree compacts it more.
func RunFig7(opts Fig7Options) (*Fig7Result, error) {
	opts.defaults()
	set, err := BuildCoveringSet(dtddata.NITF(), opts.N, opts.Rate, opts.Seed)
	if err != nil {
		return nil, err
	}
	est := merge.NewDegreeEstimator(GenerateAdvertisements(dtddata.NITF()), 10, 4000)
	res := &Fig7Result{Rate: set.MeasuredRate, Degree: opts.ImperfectDegree}
	step := opts.N / opts.Checkpoints
	if step == 0 {
		step = 1
	}
	res.Covering = mergingTableSizes(set.XPEs, step, nil, 0)
	res.PerfectMerging = mergingTableSizes(set.XPEs, step, est, 0)
	res.ImperfectMerging = mergingTableSizes(set.XPEs, step, est, opts.ImperfectDegree)
	for i := 1; i <= len(res.Covering); i++ {
		res.N = append(res.N, i*step)
	}
	return res, nil
}

// mergingTableSizes builds a covering table and, when an estimator is given,
// runs a merge pass at every checkpoint before measuring, as the paper's
// periodic merging does.
func mergingTableSizes(xpes []*xpath.XPE, step int, est *merge.DegreeEstimator, maxDegree float64) []int {
	tree := subtree.New()
	var sizes []int
	for i, x := range xpes {
		insertCovering(tree, x)
		if (i+1)%step == 0 {
			if est != nil {
				merge.Pass(tree, merge.Options{MaxDegree: maxDegree, Estimator: est})
			}
			sizes = append(sizes, tree.Size())
		}
	}
	return sizes
}

// Table renders the result in the shape of Figure 7.
func (r *Fig7Result) Table() *Table {
	t := &Table{
		Caption: "Figure 7 — Routing table size with merging (NITF, Set B)",
		Columns: []string{"#XPEs", "Covering", "PerfectMerging", "ImperfectMerging"},
		Notes: []string{
			"measured covering rate: " + fpct(r.Rate),
			"imperfect degree tolerance: " + ffrac(r.Degree),
		},
	}
	for i := range r.N {
		t.AddRow(fint(r.N[i]), fint(r.Covering[i]), fint(r.PerfectMerging[i]), fint(r.ImperfectMerging[i]))
	}
	return t
}
