package experiment

import (
	"fmt"
	"time"

	"repro/internal/broker"
	"repro/internal/dtddata"
	"repro/internal/gen"
	"repro/internal/merge"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/xmldoc"
)

// Strategy names one of the paper's six evaluated routing configurations.
type Strategy struct {
	Name    string
	Adv     bool
	Cov     bool
	Merging broker.MergingMode
	Degree  float64
}

// PaperStrategies returns the six rows of Tables 2 and 3 in paper order.
func PaperStrategies(imperfectDegree float64) []Strategy {
	return []Strategy{
		{Name: "no-Adv-no-Cov"},
		{Name: "no-Adv-with-Cov", Cov: true},
		{Name: "with-Adv-no-Cov", Adv: true},
		{Name: "with-Adv-with-Cov", Adv: true, Cov: true},
		{Name: "with-Adv-with-CovPM", Adv: true, Cov: true, Merging: broker.MergePerfect},
		{Name: "with-Adv-with-CovIPM", Adv: true, Cov: true, Merging: broker.MergeImperfect, Degree: imperfectDegree},
	}
}

// NetworkOptions sizes the Tables 2/3 experiment. The paper attaches one
// subscriber with 1000 distinct PSD XPEs to every leaf broker and publishes
// 50 documents (4182 publications) from one publisher; defaults here scale
// the subscriptions down (see EXPERIMENTS.md).
type NetworkOptions struct {
	// Levels of the complete binary broker tree (3 -> 7 brokers, the
	// paper's small overlay; 7 -> 127 brokers, the large one).
	Levels int
	// SubsPerSubscriber is the number of distinct XPEs per leaf subscriber
	// (paper: 1000).
	SubsPerSubscriber int
	// Docs is the number of published documents (paper: 50).
	Docs int
	// ImperfectDegree for the CovIPM row (default 0.1).
	ImperfectDegree float64
	Seed            int64
}

func (o *NetworkOptions) defaults() {
	if o.Levels <= 0 {
		o.Levels = 3
	}
	if o.SubsPerSubscriber <= 0 {
		o.SubsPerSubscriber = 250
	}
	if o.Docs <= 0 {
		o.Docs = 50
	}
	if o.ImperfectDegree == 0 {
		o.ImperfectDegree = 0.1
	}
	if o.Seed == 0 {
		o.Seed = 5
	}
}

// NetworkRow is one strategy's outcome.
type NetworkRow struct {
	Strategy  string
	Traffic   int64   // messages received by all brokers
	DelayMs   float64 // mean notification delay
	Delivered int64
}

// NetworkResult holds the rows of Table 2 or Table 3.
type NetworkResult struct {
	Brokers      int
	Subscribers  int
	Publications int
	Rows         []NetworkRow
}

// RunNetwork reproduces Table 2 (Levels=3) and Table 3 (Levels=7): total
// network traffic and mean notification delay in a binary-tree overlay
// under the six routing strategies.
func RunNetwork(opts NetworkOptions) (*NetworkResult, error) {
	opts.defaults()
	psd := dtddata.PSD()

	// Shared workloads across strategies: per-subscriber subscription sets
	// and one publisher's documents.
	docGen := gen.NewDocGenerator(psd, opts.Seed)
	docGen.AvgRepeat = 1.2
	docs := make([]*xmldoc.Document, opts.Docs)
	pubCount := 0
	for i := range docs {
		docs[i] = docGen.Generate()
		pubCount += len(docs[i].Paths())
	}

	leafCount := 1 << (opts.Levels - 1)
	sets := make([]*CoveringSet, leafCount)
	for i := range sets {
		set, err := buildPSDSet(opts.SubsPerSubscriber, 0.9, opts.Seed+int64(10+i))
		if err != nil {
			return nil, err
		}
		sets[i] = set
	}

	advs := GenerateAdvertisements(psd)
	est := merge.NewDegreeEstimator(advs, 10, 4000)

	res := &NetworkResult{Subscribers: leafCount, Publications: pubCount}
	for _, strat := range PaperStrategies(opts.ImperfectDegree) {
		row, brokers, err := runNetworkStrategy(opts, strat, sets, docs, est)
		if err != nil {
			return nil, err
		}
		res.Brokers = brokers
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func runNetworkStrategy(opts NetworkOptions, strat Strategy, sets []*CoveringSet, docs []*xmldoc.Document, est *merge.DegreeEstimator) (*NetworkRow, int, error) {
	net := sim.NewNetwork(opts.Seed)
	net.MeasureCompute = true
	net.Latency = sim.ConstantLatency(500 * time.Microsecond)

	cfg := broker.Config{
		UseAdvertisements: strat.Adv,
		UseCovering:       strat.Cov,
		Merging:           strat.Merging,
		ImperfectDegree:   strat.Degree,
		Estimator:         est,
		MergeEvery:        64,
	}
	leaves := sim.BuildCompleteBinaryTree(net, opts.Levels, sim.ConfigTemplate(cfg))
	brokers := (1 << opts.Levels) - 1

	// One publisher attached at the root broker ("publishers randomly
	// connect"; the root is the deterministic choice).
	pub := net.AddClient("pub", "b1")
	if strat.Adv {
		for i, a := range GenerateAdvertisements(dtddata.PSD()) {
			pub.Send(&broker.Message{Type: broker.MsgAdvertise, AdvID: fmt.Sprintf("a%d", i), Adv: a})
		}
		net.Run()
	}

	subs := make([]*sim.Client, len(leaves))
	for i, leaf := range leaves {
		subs[i] = net.AddClient(fmt.Sprintf("sub%d", i), leaf)
		for _, x := range sets[i].XPEs {
			subs[i].Send(&broker.Message{Type: broker.MsgSubscribe, XPE: x})
		}
	}
	net.Run()

	for i, doc := range docs {
		for _, p := range xmldoc.Extract(doc, uint64(i)) {
			pub.Send(&broker.Message{Type: broker.MsgPublish, Pub: p})
		}
	}
	net.Run()

	var delay metrics.Summary
	var delivered int64
	for _, s := range subs {
		for _, d := range s.Deliveries {
			delay.ObserveDuration(d.Delay)
			delivered++
		}
	}
	row := &NetworkRow{
		Strategy:  strat.Name,
		Traffic:   net.TotalBrokerMessages(),
		DelayMs:   delay.Mean(),
		Delivered: delivered,
	}
	return row, brokers, nil
}

// Table renders the result in the shape of Table 2 / Table 3.
func (r *NetworkResult) Table() *Table {
	t := &Table{
		Caption: fmt.Sprintf("Tables 2/3 — %d-broker network: traffic and notification delay", r.Brokers),
		Columns: []string{"Method", "Network Traffic", "Delay (ms)", "Delivered"},
		Notes: []string{
			fmt.Sprintf("%d leaf subscribers, %d publications", r.Subscribers, r.Publications),
		},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Strategy, f64(row.Traffic), fms(row.DelayMs), f64(row.Delivered))
	}
	return t
}
