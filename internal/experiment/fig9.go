package experiment

import (
	"fmt"

	"repro/internal/broker"
	"repro/internal/dtd"
	"repro/internal/dtddata"
	"repro/internal/gen"
	"repro/internal/merge"
	"repro/internal/sim"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// Fig9Options sizes the false-positive experiment.
type Fig9Options struct {
	// Degrees are the D_imperfect values to sweep (paper: 0 to 0.2).
	Degrees []float64
	// Subs is the subscriber's number of XPEs (default 1000).
	Subs int
	// Docs is the number of published documents (default 50).
	Docs int
	Seed int64
}

func (o *Fig9Options) defaults() {
	if len(o.Degrees) == 0 {
		// The paper sweeps 0-0.2; the tail is extended because this
		// corpus's mergers quantise to coarser degrees (see EXPERIMENTS.md).
		o.Degrees = []float64{0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4}
	}
	if o.Subs <= 0 {
		o.Subs = 1000
	}
	if o.Docs <= 0 {
		o.Docs = 50
	}
	if o.Seed == 0 {
		o.Seed = 6
	}
}

// Fig9Point is one sweep point: the imperfect-degree tolerance and the
// percentage of in-network false positives it induces.
type Fig9Point struct {
	Degree           float64
	FalsePositivePct float64
	Delivered        int64
	FalsePositives   int64
}

// Fig9Result holds the Figure 9 sweep.
type Fig9Result struct {
	Points []Fig9Point
}

// RunFig9 reproduces Figure 9: a larger tolerated imperfect degree merges
// more subscriptions, which routes more publications toward the edge; the
// excess is filtered at the edge broker (clients never see false positives)
// and counted as in-network false-positive traffic.
//
// The experiment runs on the NITF corpus: its elements have sibling
// fan-outs of 11-13, so mergers quantise to imperfect degrees inside the
// paper's 0-0.2 sweep (the PSD-like corpus's narrow fan-outs make the
// smallest non-zero degree 1/3, outside the sweep).
func RunFig9(opts Fig9Options) (*Fig9Result, error) {
	opts.defaults()
	d := dtddata.NITF()
	set := buildFig9Set(d, opts.Subs, opts.Seed)
	docGen := gen.NewDocGenerator(d, opts.Seed+1)
	docGen.AvgRepeat = 1.2
	docs := make([]*xmldoc.Document, opts.Docs)
	for i := range docs {
		docs[i] = docGen.Generate()
	}
	advs := GenerateAdvertisements(d)
	est := merge.NewDegreeEstimator(advs, 10, 4000)

	res := &Fig9Result{}
	for _, degree := range opts.Degrees {
		net := sim.NewNetwork(opts.Seed)
		cfg := broker.Config{
			UseAdvertisements: true,
			UseCovering:       true,
			Merging:           broker.MergeImperfect,
			ImperfectDegree:   degree,
			Estimator:         est,
			MergeEvery:        64,
		}
		if degree == 0 {
			cfg.Merging = broker.MergePerfect
		}
		ids := sim.BuildChain(net, 2, sim.ConfigTemplate(cfg))
		pub := net.AddClient("pub", ids[0])
		sub := net.AddClient("sub", ids[1])
		for i, a := range advs {
			pub.Send(&broker.Message{Type: broker.MsgAdvertise, AdvID: fmt.Sprintf("a%d", i), Adv: a})
		}
		net.Run()
		for _, x := range set.XPEs {
			sub.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: x})
		}
		net.Run()
		for i, doc := range docs {
			for _, p := range xmldoc.Extract(doc, uint64(i)) {
				pub.Send(&broker.Message{Type: broker.MsgPublish, Pub: p})
			}
		}
		net.Run()

		edge := net.Broker(ids[1]).Stats()
		point := Fig9Point{
			Degree:         degree,
			Delivered:      edge.Deliveries,
			FalsePositives: edge.FalsePositives,
		}
		if total := point.Delivered + point.FalsePositives; total > 0 {
			point.FalsePositivePct = 100 * float64(point.FalsePositives) / float64(total)
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// buildFig9Set builds deep, narrow subscriptions arranged in sibling
// families. Narrow subscriptions leave publications that match none of
// them, so the excess induced by imperfect mergers becomes visible; sibling
// families are the shape merging rule 1 aggregates.
func buildFig9Set(d *dtd.DTD, n int, seed int64) *CoveringSet {
	xg := gen.NewXPathGenerator(d, 0.1, 0.05, seed)
	xg.MinLen = 5
	var xpes []*xpath.XPE
	seen := make(map[string]bool, n)
	for guard := 0; len(xpes) < n && guard < 400*n; guard++ {
		x, trace := xg.GenerateWithTrace()
		kids := d.Children(trace[len(trace)-1])
		if len(kids) < 3 || x.Len() >= 10 {
			continue
		}
		fam := 2 + len(xpes)%3
		if fam > len(kids) {
			fam = len(kids)
		}
		for _, c := range kids[:fam] {
			y := x.Clone()
			y.Steps = append(y.Steps, xpath.Step{Axis: xpath.Child, Name: c})
			if !seen[y.Key()] {
				seen[y.Key()] = true
				xpes = append(xpes, y)
			}
		}
	}
	return &CoveringSet{XPEs: xpes, MeasuredRate: MeasureCoveringRate(xpes)}
}

// Table renders the result in the shape of Figure 9.
func (r *Fig9Result) Table() *Table {
	t := &Table{
		Caption: "Figure 9 — False positives vs. imperfect degree",
		Columns: []string{"D_imperfect", "FalsePositive(%)", "Delivered", "FalsePositives"},
	}
	for _, p := range r.Points {
		t.AddRow(ffrac(p.Degree), fmt.Sprintf("%.2f", p.FalsePositivePct), f64(p.Delivered), f64(p.FalsePositives))
	}
	return t
}
