package experiment

import (
	"time"

	"repro/internal/advert"
	"repro/internal/dtd"
	"repro/internal/dtddata"
	"repro/internal/subtree"
	"repro/internal/xpath"
)

// Fig8Options sizes the XPE processing-time experiment (paper: 5000 XPEs,
// reported as the average per batch of 500, for NITF and PSD).
type Fig8Options struct {
	N         int     // total XPEs (default 5000)
	BatchSize int     // reporting granularity (default 500)
	Rate      float64 // covering rate of the workloads (paper reports ~0.9)
	Seed      int64
}

func (o *Fig8Options) defaults() {
	if o.N <= 0 {
		o.N = 5000
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 500
	}
	if o.Rate == 0 {
		o.Rate = 0.9
	}
	if o.Seed == 0 {
		o.Seed = 3
	}
}

// Fig8Result holds per-batch average XPE processing times in milliseconds.
type Fig8Result struct {
	Batch        []int // x axis: number of XPEs processed so far
	NITFCov      []float64
	NITFNoCov    []float64
	PSDCov       []float64
	PSDNoCov     []float64
	NITFAdvs     int
	PSDAdvs      int
	MeasuredRate float64
}

// RunFig8 reproduces Figure 8. Processing an XPE without covering means
// matching it against every advertisement to compute its next hops.
// Covering-based processing first checks the subscription tree: a covered
// XPE is not forwarded, so advertisement matching is skipped entirely —
// which is where the savings come from, and why the much larger NITF
// advertisement set benefits more.
func RunFig8(opts Fig8Options) (*Fig8Result, error) {
	opts.defaults()
	res := &Fig8Result{}

	nitfSet, err := BuildCoveringSet(dtddata.NITF(), opts.N, opts.Rate, opts.Seed)
	if err != nil {
		return nil, err
	}
	psdSet, err := buildPSDSet(opts.N, opts.Rate, opts.Seed+1)
	if err != nil {
		return nil, err
	}
	res.MeasuredRate = nitfSet.MeasuredRate

	nitfAdvs := GenerateAdvertisements(dtddata.NITF())
	psdAdvs := GenerateAdvertisements(dtddata.PSD())
	res.NITFAdvs = len(nitfAdvs)
	res.PSDAdvs = len(psdAdvs)

	res.NITFNoCov = processingTimes(nitfSet.XPEs, nitfAdvs, false, opts.BatchSize)
	res.NITFCov = processingTimes(nitfSet.XPEs, nitfAdvs, true, opts.BatchSize)
	res.PSDNoCov = processingTimes(psdSet.XPEs, psdAdvs, false, opts.BatchSize)
	res.PSDCov = processingTimes(psdSet.XPEs, psdAdvs, true, opts.BatchSize)
	for i := 1; i <= len(res.NITFNoCov); i++ {
		res.Batch = append(res.Batch, i*opts.BatchSize)
	}
	return res, nil
}

// buildPSDSet builds the PSD workload. The PSD query space is small, so
// high covered fractions may be unreachable at larger sizes; the builder
// cascades to lower rates and finally to a plain draw, reporting whatever
// rate it measured.
func buildPSDSet(n int, rate float64, seed int64) (*CoveringSet, error) {
	for r := rate; r >= 0.45; r -= 0.2 {
		if set, err := BuildCoveringSet(dtddata.PSD(), n, r, seed); err == nil {
			return set, nil
		}
	}
	return buildPlainSet(dtddata.PSD(), n, seed)
}

func buildPlainSet(d *dtd.DTD, n int, seed int64) (*CoveringSet, error) {
	g := newDefaultXPathGen(d, seed)
	xpes, err := g.GenerateDistinct(n)
	if err != nil {
		return nil, err
	}
	return &CoveringSet{XPEs: xpes, MeasuredRate: MeasureCoveringRate(xpes)}, nil
}

// processingTimes replays the XPE arrival sequence and reports the average
// per-XPE processing time of each batch, in milliseconds.
func processingTimes(xpes []*xpath.XPE, advs []*advert.Advertisement, covering bool, batch int) []float64 {
	tree := subtree.New()
	var out []float64
	var batchTime time.Duration
	inBatch := 0
	for _, x := range xpes {
		start := time.Now()
		if covering {
			if !tree.IsCovered(x) {
				matchAllAdvs(advs, x)
				res := tree.Insert(x)
				for _, covered := range res.NewlyCovered {
					tree.Remove(covered)
				}
			}
		} else {
			matchAllAdvs(advs, x)
		}
		batchTime += time.Since(start)
		inBatch++
		if inBatch == batch {
			out = append(out, float64(batchTime)/float64(inBatch)/float64(time.Millisecond))
			batchTime, inBatch = 0, 0
		}
	}
	return out
}

// matchAllAdvs computes the advertisement matches of an XPE (the forwarding
// decision of an advertisement-based router); the count keeps the compiler
// from eliding the work.
func matchAllAdvs(advs []*advert.Advertisement, x *xpath.XPE) int {
	matches := 0
	for _, a := range advs {
		if a.Overlaps(x) {
			matches++
		}
	}
	return matches
}

// Table renders the result in the shape of Figure 8.
func (r *Fig8Result) Table() *Table {
	t := &Table{
		Caption: "Figure 8 — XPE processing time per batch (ms/XPE)",
		Columns: []string{"#XPEs", "NITF+cov", "NITF-cov", "PSD+cov", "PSD-cov"},
		Notes: []string{
			"advertisements: NITF " + fint(r.NITFAdvs) + ", PSD " + fint(r.PSDAdvs),
			"NITF workload covering rate: " + fpct(r.MeasuredRate),
		},
	}
	for i := range r.Batch {
		t.AddRow(fint(r.Batch[i]), fms(r.NITFCov[i]), fms(r.NITFNoCov[i]), fms(r.PSDCov[i]), fms(r.PSDNoCov[i]))
	}
	return t
}
