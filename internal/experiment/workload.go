// Package experiment reproduces every table and figure of the paper's
// evaluation section. Each experiment has a runner returning a printable
// result; cmd/experiments exposes them as subcommands and bench_test.go as
// testing.B benchmarks. EXPERIMENTS.md records paper-vs-measured outcomes.
package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/advert"
	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/subtree"
	"repro/internal/xpath"
)

// CoveringSet is a subscription workload with a controlled covering rate.
type CoveringSet struct {
	XPEs []*xpath.XPE
	// MeasuredRate is the fraction of expressions covered by another member
	// of the set.
	MeasuredRate float64
}

// BuildCoveringSet generates n distinct XPEs over the DTD with approximately
// the requested covering rate (the fraction of members covered by another
// member — the knob the paper turns via W and DO to build its Sets A and B).
//
// The paper's DTDs span a much larger query space than the embedded
// corpora, so tuning W/DO alone cannot reach low covering rates here at
// scale; instead the set is built directly as an antichain core (mutually
// non-covering expressions, found by rejection sampling) topped up with
// specialisations of core members (which are covered by construction).
// DESIGN.md documents this substitution.
func BuildCoveringSet(d *dtd.DTD, n int, coveredFrac float64, seed int64) (*CoveringSet, error) {
	if coveredFrac < 0 || coveredFrac >= 1 {
		return nil, fmt.Errorf("experiment: covered fraction %v out of [0,1)", coveredFrac)
	}
	r := rand.New(rand.NewSource(seed))
	g := &gen.XPathGenerator{
		DTD:        d,
		Wildcard:   0.2,
		Descendant: 0.1,
		MaxLen:     10,
		MinLen:     3,
		Relative:   0.1,
		Rand:       r,
	}
	coreTarget := n - int(float64(n)*coveredFrac)
	seen := make(map[string]bool, n)
	tree := subtree.New()
	core := make([]*xpath.XPE, 0, coreTarget)
	traces := make([][]string, 0, coreTarget)

	attempts := 0
	maxAttempts := 400*coreTarget + 40000
	for len(core) < coreTarget {
		attempts++
		if attempts > maxAttempts {
			return nil, fmt.Errorf("experiment: antichain core exhausted at %d/%d (space too small for n=%d at rate %.2f)",
				len(core), coreTarget, n, coveredFrac)
		}
		x, trace := g.GenerateWithTrace()
		key := x.Key()
		if seen[key] {
			continue
		}
		// Reject members related to the existing core in either direction.
		if tree.IsCovered(x) || len(tree.CoveredBy(x)) > 0 {
			continue
		}
		seen[key] = true
		tree.Insert(x)
		core = append(core, x)
		traces = append(traces, trace)
	}

	out := make([]*xpath.XPE, 0, n)
	out = append(out, core...)
	// Specialisations may serve as bases for further specialisations, which
	// compounds the variety available from a small core.
	bases := make([]*xpath.XPE, len(core))
	baseTraces := make([][]string, len(traces))
	copy(bases, core)
	copy(baseTraces, traces)
	for len(out) < n {
		attempts++
		if attempts > maxAttempts+400*n {
			return nil, fmt.Errorf("experiment: could not reach %d members (covered pool exhausted at %d)", n, len(out))
		}
		// Three ways to obtain covered members: emit a sibling family (one
		// extension per child of a base's final element — the shape the
		// merging rules aggregate), specialise an existing member, or draw
		// fresh and keep it only if the set already covers it (the natural
		// source in dense query spaces).
		if attempts%5 == 0 {
			i := r.Intn(len(bases))
			members, memberTraces := siblingFamily(r, d, bases[i], baseTraces[i])
			for j, m := range members {
				if len(out) == n || seen[m.Key()] {
					continue
				}
				seen[m.Key()] = true
				tree.Insert(m)
				out = append(out, m)
				bases = append(bases, m)
				baseTraces = append(baseTraces, memberTraces[j])
			}
			continue
		}
		if attempts%2 == 0 {
			x, trace := g.GenerateWithTrace()
			if seen[x.Key()] || !tree.IsCovered(x) {
				continue
			}
			seen[x.Key()] = true
			tree.Insert(x)
			out = append(out, x)
			bases = append(bases, x)
			baseTraces = append(baseTraces, trace)
			continue
		}
		i := r.Intn(len(bases))
		x, trace := specialize(r, d, bases[i], baseTraces[i])
		if x == nil || seen[x.Key()] {
			continue
		}
		seen[x.Key()] = true
		tree.Insert(x)
		out = append(out, x)
		bases = append(bases, x)
		baseTraces = append(baseTraces, trace)
	}
	// Shuffle so covered members arrive interleaved, as in a live workload.
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })

	set := &CoveringSet{XPEs: out}
	set.MeasuredRate = MeasureCoveringRate(out)
	return set, nil
}

// specialize derives an expression strictly covered by base AND still
// consistent with the DTD walk that produced base (its trace), so that the
// specialisation keeps overlapping the producer's advertisements and remains
// a realistic subscription: it narrows wildcards to their trace elements
// and/or extends the walk through real DTD children. It returns the derived
// expression together with its own trace, so specialisations can chain.
func specialize(r *rand.Rand, d *dtd.DTD, base *xpath.XPE, trace []string) (*xpath.XPE, []string) {
	x := base.Clone()
	newTrace := append([]string(nil), trace...)
	changed := false

	// Narrow a random non-empty subset of the wildcards to their concrete
	// trace elements.
	var wilds []int
	for i, st := range x.Steps {
		if st.IsWildcard() && i < len(trace) {
			wilds = append(wilds, i)
		}
	}
	if len(wilds) > 0 && r.Intn(2) == 0 {
		for _, i := range wilds {
			if r.Intn(2) == 0 {
				x.Steps[i].Name = trace[i]
				changed = true
			}
		}
	}

	// Extend the walk from the trace's final element through real children.
	if !changed || r.Intn(2) == 0 {
		cur := newTrace[len(newTrace)-1]
		for ext := 1 + r.Intn(3); ext > 0 && x.Len() < 10; ext-- {
			kids := d.Children(cur)
			if len(kids) == 0 {
				break
			}
			cur = kids[r.Intn(len(kids))]
			name := cur
			if r.Float64() < 0.2 {
				name = xpath.Wildcard
			}
			x.Steps = append(x.Steps, xpath.Step{Axis: xpath.Child, Name: name})
			newTrace = append(newTrace, cur)
			changed = true
		}
	}
	if !changed || x.Equal(base) {
		return nil, nil
	}
	return x, newTrace
}

// siblingFamily extends base by one step for several distinct children of
// its final trace element — a set of same-parent siblings differing only in
// the last element test, the exact shape merging rule 1 aggregates.
func siblingFamily(r *rand.Rand, d *dtd.DTD, base *xpath.XPE, trace []string) ([]*xpath.XPE, [][]string) {
	if base.Len() >= 10 {
		return nil, nil
	}
	kids := d.Children(trace[len(trace)-1])
	if len(kids) < 2 {
		return nil, nil
	}
	k := 2 + r.Intn(3)
	if k > len(kids) {
		k = len(kids)
	}
	perm := r.Perm(len(kids))
	members := make([]*xpath.XPE, 0, k)
	memberTraces := make([][]string, 0, k)
	for _, idx := range perm[:k] {
		child := kids[idx]
		x := base.Clone()
		x.Steps = append(x.Steps, xpath.Step{Axis: xpath.Child, Name: child})
		members = append(members, x)
		nt := append(append([]string(nil), trace...), child)
		memberTraces = append(memberTraces, nt)
	}
	return members, memberTraces
}

// newDefaultXPathGen returns the generator configuration shared by the
// experiments' plain (non-rate-controlled) workloads.
func newDefaultXPathGen(d *dtd.DTD, seed int64) *gen.XPathGenerator {
	return &gen.XPathGenerator{
		DTD:        d,
		Wildcard:   0.2,
		Descendant: 0.1,
		MaxLen:     10,
		MinLen:     2,
		Relative:   0.1,
		Rand:       rand.New(rand.NewSource(seed)),
	}
}

// MeasureCoveringRate computes the fraction of expressions covered by
// another member of the set.
func MeasureCoveringRate(xpes []*xpath.XPE) float64 {
	if len(xpes) == 0 {
		return 0
	}
	tree := subtree.New()
	for _, x := range xpes {
		tree.Insert(x)
	}
	return 1 - float64(len(tree.TopLevel()))/float64(len(xpes))
}

// Uncovered returns the members of the set not covered by any other member —
// what a covering-based downstream routing table would hold.
func Uncovered(xpes []*xpath.XPE) []*xpath.XPE {
	tree := subtree.New()
	for _, x := range xpes {
		tree.Insert(x)
	}
	top := tree.TopLevel()
	out := make([]*xpath.XPE, len(top))
	for i, n := range top {
		out[i] = n.XPE
	}
	return out
}

// GenerateAdvertisements derives the advertisement set of a DTD, failing the
// experiment on error.
func GenerateAdvertisements(d *dtd.DTD) []*advert.Advertisement {
	advs, err := advert.Generate(d)
	if err != nil {
		panic(fmt.Sprintf("experiment: advertisement generation: %v", err))
	}
	return advs
}
