package experiment

import (
	"fmt"
	"time"

	"repro/internal/advert"
	"repro/internal/broker"
	"repro/internal/dtd"
	"repro/internal/dtddata"
	"repro/internal/gen"
	"repro/internal/merge"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/xmldoc"
)

// DelayOptions sizes the notification-delay experiments of Figures 10
// (PSD) and 11 (NITF): a broker chain with subscribers at increasing hop
// distances, whole documents of several sizes published from one end, link
// latencies drawn from the PlanetLab-like model.
type DelayOptions struct {
	// DocBytes are the document sizes to sweep (Fig 10: 2K/10K/20K;
	// Fig 11: 2K/20K/40K).
	DocBytes []int
	// Hops are the broker-hop counts measured (paper: 2..6).
	Hops []int
	// DocsPerSize is the number of published documents per size (default 8).
	DocsPerSize int
	// SubsPerSubscriber is each subscriber's number of XPEs (default 500).
	SubsPerSubscriber int
	Seed              int64
}

func (o *DelayOptions) defaults() {
	if len(o.Hops) == 0 {
		o.Hops = []int{2, 3, 4, 5, 6}
	}
	if o.DocsPerSize <= 0 {
		o.DocsPerSize = 8
	}
	if o.SubsPerSubscriber <= 0 {
		o.SubsPerSubscriber = 500
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
}

// DelaySeries is the measured mean delay per hop count for one document
// size and covering setting.
type DelaySeries struct {
	DocBytes int
	Covering bool
	DelayMs  []float64 // indexed like Options.Hops
}

// DelayResult holds one figure's series.
type DelayResult struct {
	DTDName string
	Hops    []int
	Series  []DelaySeries
}

// RunFig10 reproduces Figure 10 (PSD documents of 2K/10K/20K).
func RunFig10(opts DelayOptions) (*DelayResult, error) {
	if len(opts.DocBytes) == 0 {
		opts.DocBytes = []int{2 << 10, 10 << 10, 20 << 10}
	}
	return runDelay(dtddata.PSD(), "PSD", opts)
}

// RunFig11 reproduces Figure 11 (NITF documents of 2K/20K/40K).
func RunFig11(opts DelayOptions) (*DelayResult, error) {
	if len(opts.DocBytes) == 0 {
		opts.DocBytes = []int{2 << 10, 20 << 10, 40 << 10}
	}
	return runDelay(dtddata.NITF(), "NITF", opts)
}

func runDelay(d *dtd.DTD, name string, opts DelayOptions) (*DelayResult, error) {
	opts.defaults()
	res := &DelayResult{DTDName: name, Hops: opts.Hops}

	// Pre-generate the documents once per size.
	docGen := gen.NewDocGenerator(d, opts.Seed)
	docsBySize := make(map[int][]*xmldoc.Document)
	for _, size := range opts.DocBytes {
		for i := 0; i < opts.DocsPerSize; i++ {
			doc, err := docGen.GenerateSized(size)
			if err != nil {
				return nil, fmt.Errorf("experiment: sizing %s doc to %d: %w", name, size, err)
			}
			docsBySize[size] = append(docsBySize[size], doc)
		}
	}
	// Subscriber workloads, one per hop position, shared across runs.
	maxHops := 0
	for _, h := range opts.Hops {
		if h > maxHops {
			maxHops = h
		}
	}
	sets := make([]*CoveringSet, maxHops)
	for i := range sets {
		set, err := buildWorkloadSet(d, opts.SubsPerSubscriber, 0.9, opts.Seed+int64(20+i))
		if err != nil {
			return nil, err
		}
		sets[i] = set
	}
	advs := GenerateAdvertisements(d)
	est := merge.NewDegreeEstimator(advs, 10, 4000)

	for _, size := range opts.DocBytes {
		for _, covering := range []bool{true, false} {
			series := DelaySeries{DocBytes: size, Covering: covering}
			delays, err := delayByHops(opts, covering, sets, docsBySize[size], advs, est, maxHops)
			if err != nil {
				return nil, err
			}
			series.DelayMs = delays
			res.Series = append(res.Series, series)
		}
	}
	return res, nil
}

// buildWorkloadSet prefers a rate-controlled set and falls back to a plain
// draw when the DTD's query space is too small for the antichain core.
func buildWorkloadSet(d *dtd.DTD, n int, rate float64, seed int64) (*CoveringSet, error) {
	set, err := BuildCoveringSet(d, n, rate, seed)
	if err == nil {
		return set, nil
	}
	return buildPlainSet(d, n, seed)
}

// delayByHops builds one broker chain with a subscriber at every hop
// distance, publishes the documents end to end, and returns the mean delay
// observed at each requested hop count. Per-hop delay combines the
// PlanetLab-like link latency, the serialisation time of the document, and
// the broker's measured matching time — which is what covering reduces.
func delayByHops(opts DelayOptions, covering bool, sets []*CoveringSet, docs []*xmldoc.Document, advs []*advert.Advertisement, est *merge.DegreeEstimator, maxHops int) ([]float64, error) {
	net := sim.NewNetwork(opts.Seed)
	net.MeasureCompute = true
	net.Latency = sim.PlanetLabLatency{Median: 800 * time.Microsecond, Sigma: 0.15}
	net.Bandwidth = 12.5e6 // 100 Mbit/s links

	cfg := broker.Config{
		UseAdvertisements: true,
		UseCovering:       covering,
		Estimator:         est,
	}
	ids := sim.BuildChain(net, maxHops, sim.ConfigTemplate(cfg))
	pub := net.AddClient("pub", ids[0])
	for i, a := range advs {
		pub.Send(&broker.Message{Type: broker.MsgAdvertise, AdvID: fmt.Sprintf("a%d", i), Adv: a})
	}
	net.Run()

	// One subscriber per broker hop distance h (its edge broker is the
	// h-th broker of the chain).
	subsByHop := make(map[int]*sim.Client, maxHops)
	for h := 2; h <= maxHops; h++ {
		c := net.AddClient(fmt.Sprintf("sub%d", h), ids[h-1])
		subsByHop[h] = c
		for _, x := range sets[h-1].XPEs {
			c.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: x})
		}
	}
	net.Run()

	for _, doc := range docs {
		pub.Send(&broker.Message{Type: broker.MsgPublish, Doc: doc})
		net.Run() // complete each document before publishing the next
	}

	out := make([]float64, len(opts.Hops))
	for i, h := range opts.Hops {
		c := subsByHop[h]
		if c == nil {
			return nil, fmt.Errorf("experiment: hop count %d beyond the chain", h)
		}
		var s metrics.Summary
		for _, dl := range c.Deliveries {
			s.ObserveDuration(dl.Delay)
		}
		out[i] = s.Mean()
	}
	return out, nil
}

// Table renders one figure's series in the paper's layout.
func (r *DelayResult) Table() *Table {
	t := &Table{
		Caption: fmt.Sprintf("Figures 10/11 — %s notification delay vs. hops (ms)", r.DTDName),
		Columns: append([]string{"Series"}, hopHeaders(r.Hops)...),
	}
	for _, s := range r.Series {
		label := fmt.Sprintf("%s %dK", r.DTDName, s.DocBytes>>10)
		if s.Covering {
			label += " with covering"
		} else {
			label += " without covering"
		}
		cells := []string{label}
		for _, d := range s.DelayMs {
			cells = append(cells, fms(d))
		}
		t.AddRow(cells...)
	}
	return t
}

func hopHeaders(hops []int) []string {
	out := make([]string, len(hops))
	for i, h := range hops {
		out[i] = fmt.Sprintf("%d hops", h)
	}
	return out
}
